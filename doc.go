// Package incentivetree is a reproduction of "Fair and resilient Incentive
// Tree mechanisms" by Yuezhou Lv and Thomas Moscibroda (PODC 2013; journal
// version in Distributed Computing 28(4), 2015).
//
// An Incentive Tree mechanism rewards participants of a crowdsourcing or
// multi-level-marketing system both for contributing and for soliciting new
// participants. The library implements the referral-tree substrate, the
// mechanisms analysed and introduced by the paper (the (a,b)-Geometric
// mechanism, the lifted Lottery-Tree mechanisms L-Luxor and L-Pachira, the
// topology-dependent TDRM, and the contribution-deterministic CDRM family),
// executable versions of the paper's eight axiomatic properties, Sybil
// attack strategies and search, and deployment-style simulations.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record. The packages live under internal/; the
// binaries under cmd/ and the runnable scenarios under examples/ show the
// intended entry points.
package incentivetree
