GO ?= go
BENCHTIME ?= 300ms
FUZZTIME ?= 10s

.PHONY: check build vet lint fmtcheck test race bench benchsmoke bench-json fuzzsmoke loadsmoke replicasmoke replicabench auditsmoke auditbench settlesmoke

check: build vet lint fmtcheck test race benchsmoke fuzzsmoke loadsmoke replicasmoke auditsmoke settlesmoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint builds and runs itreevet, the project-specific static-analysis
# suite (run `bin/itreevet -list` for the analyzer roster). Findings
# fail the build unless waived: either an inline
#   //itreevet:ignore <analyzer> <reason>
# annotation, or an entry in the committed vet.baseline.json (for
# findings that are accepted as-is, like the best-effort directory
# fsync). Every waiver is counted in the output; a stale baseline
# entry is reported so the file can be regenerated with
# `bin/itreevet -write-baseline vet.baseline.json` and the shrink
# reviewed.
#
# bin/itreevet is rebuilt unconditionally: `go build` is cached, so
# this costs ~nothing when sources are unchanged, and a $(shell find)
# prerequisite list would go stale on file deletions.
lint: bin/itreevet
	bin/itreevet -baseline vet.baseline.json

.PHONY: bin/itreevet
bin/itreevet:
	$(GO) build -o bin/itreevet ./cmd/itreevet

# fmtcheck fails if any tracked Go file is not gofmt-clean.
fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# benchsmoke compiles and runs every benchmark in the module for one
# iteration, so benchmarks (store scaling, mechanism throughput) cannot
# silently rot.
benchsmoke:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# fuzzsmoke runs each native fuzz target of the binary codecs for
# FUZZTIME: the journal record decoder and the snapshot codec must
# reject arbitrary corruption cleanly and round-trip accepted input
# byte-identically. Corpus finds are kept under testdata/fuzz/ by go
# test; commit any that reproduce bugs.
fuzzsmoke:
	$(GO) test -run=^$$ -fuzz=FuzzJournalRecordDecode -fuzztime=$(FUZZTIME) ./internal/journal/
	$(GO) test -run=^$$ -fuzz=FuzzEventConstructive -fuzztime=$(FUZZTIME) ./internal/journal/
	$(GO) test -run=^$$ -fuzz=FuzzSettleRecordDecode -fuzztime=$(FUZZTIME) ./internal/journal/
	$(GO) test -run=^$$ -fuzz=FuzzClaimRecordDecode -fuzztime=$(FUZZTIME) ./internal/journal/
	$(GO) test -run=^$$ -fuzz=FuzzSnapshotRoundTrip -fuzztime=$(FUZZTIME) ./internal/server/

# loadsmoke boots a real itreed on a temp data dir, runs a short
# itreeload burst through the batched ingest pipeline, and verifies
# zero failed requests plus a clean graceful shutdown.
loadsmoke:
	GO=$(GO) sh scripts/loadsmoke.sh

# replicasmoke boots a race-built primary plus a follower replicating
# from it, pushes a write burst, and verifies convergence to
# byte-identical reads, the X-Itree-Staleness header, the 307 write
# redirect, replica lag metrics, and clean shutdown of both daemons.
replicasmoke:
	GO=$(GO) RACE=1 sh scripts/replicasmoke.sh

# auditsmoke boots a race-built itreed with the audit service on,
# runs an adversarial itreeload mix (injected Sybil arrangements with
# ground truth) plus an honest-only mix, and verifies at least one
# matched finding, zero quarantined honest participants, and
# byte-identical quarantine state across kill -9 + restart.
auditsmoke:
	GO=$(GO) RACE=1 sh scripts/auditsmoke.sh

# settlesmoke boots a race-built itreed with epoch settlement on, runs
# an itreeload settlement storm (settles racing contributes, every
# settled share double-claimed), then checks a deterministic
# settle/claim/duplicate-claim sequence, the R(epoch) <= pool(epoch)
# ledger invariant, and byte-identical epoch tables plus refused
# duplicate claims across kill -9 + restart.
settlesmoke:
	GO=$(GO) RACE=1 sh scripts/settlesmoke.sh

# auditbench measures contribute throughput with the audit service off
# vs scanning every 250ms, writes the next free BENCH_<n>.json point,
# and fails if the auditor costs more than 5% (see
# scripts/auditbench.sh).
auditbench:
	GO=$(GO) sh scripts/auditbench.sh

# replicabench measures read throughput under write load on a single
# node vs fanned out across two followers, and writes the next free
# BENCH_<n>.json point (see scripts/replicabench.sh).
replicabench:
	GO=$(GO) sh scripts/replicabench.sh

# bench-json runs the root benchmark suite and writes the next free
# BENCH_<n>.json snapshot (ns/op, B/op, allocs/op per benchmark), the
# baseline trail for performance work. Compare against a committed
# baseline with:
#   go run ./cmd/benchjson -compare BENCH_0.json [-max-regress 1.3]
bench-json:
	$(GO) run ./cmd/benchjson -benchtime $(BENCHTIME)
