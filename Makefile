GO ?= go

.PHONY: check build vet test race bench benchsmoke

check: build vet race benchsmoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# benchsmoke compiles and runs every benchmark in the module for one
# iteration, so benchmarks (store scaling, mechanism throughput) cannot
# silently rot.
benchsmoke:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
