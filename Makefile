GO ?= go
BENCHTIME ?= 300ms

.PHONY: check build vet test race bench benchsmoke bench-json loadsmoke

check: build vet test race benchsmoke loadsmoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# benchsmoke compiles and runs every benchmark in the module for one
# iteration, so benchmarks (store scaling, mechanism throughput) cannot
# silently rot.
benchsmoke:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# loadsmoke boots a real itreed on a temp data dir, runs a short
# itreeload burst through the batched ingest pipeline, and verifies
# zero failed requests plus a clean graceful shutdown.
loadsmoke:
	GO=$(GO) sh scripts/loadsmoke.sh

# bench-json runs the root benchmark suite and writes the next free
# BENCH_<n>.json snapshot (ns/op, B/op, allocs/op per benchmark), the
# baseline trail for performance work. Compare against a committed
# baseline with:
#   go run ./cmd/benchjson -compare BENCH_0.json [-max-regress 1.3]
bench-json:
	$(GO) run ./cmd/benchjson -benchtime $(BENCHTIME)
