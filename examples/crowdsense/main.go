// Crowdsense: an indoor-localization style crowd-sensing campaign (the
// Zee / unsupervised-indoor-localization deployments cited in the
// paper's introduction). Contribution is sensing data uploaded, which in
// real deployments is heavy-tailed — a few power users do most of the
// mapping. The example compares how the suite mechanisms split the
// reward pool on identical campaigns: growth, inequality (Gini), and
// resilience when 25% of joiners forge identities.
//
// Run with:
//
//	go run ./examples/crowdsense
package main

import (
	"fmt"
	"log"

	"incentivetree/internal/core"
	"incentivetree/internal/experiments"
	"incentivetree/internal/sim"
	"incentivetree/internal/treegen"
)

func main() {
	mechs, err := experiments.Suite(core.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}

	cfg := sim.DefaultConfig(2026)
	cfg.Rounds = 30
	cfg.Contribution = treegen.Pareto(0.5, 1.5) // heavy-tailed sensing effort
	cfg.SybilFraction = 0.25

	results, err := sim.Compare(mechs, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("crowd-sensing campaign, Pareto(0.5, 1.5) contributions, 25% identity forgers")
	fmt.Println()
	fmt.Printf("%-42s %8s %8s %9s %7s %9s\n",
		"mechanism", "persons", "C(T)", "paid", "gini", "sybil adv")
	for _, r := range results {
		fmt.Printf("%-42s %8d %8.1f %9.2f %7.3f %8.2fx\n",
			r.Mechanism, r.Participants, r.Total, r.Rewards, r.RewardGini, r.SybilAdvantage())
	}

	fmt.Println()
	fmt.Println("reading the table:")
	fmt.Println("  - every mechanism stays within the Phi=0.5 budget on the same campaign;")
	fmt.Println("  - Geometric/L-Luxor leak reward to identity forgers (sybil adv > 1);")
	fmt.Println("  - TDRM and the CDRM family neutralize forgery (adv <= 1), matching")
	fmt.Println("    Theorems 4 and 5;")
	fmt.Println("  - reward inequality (Gini) mostly mirrors the heavy-tailed contribution")
	fmt.Println("    profile; topology-dependent mechanisms additionally concentrate")
	fmt.Println("    reward on early, well-connected recruiters.")
}
