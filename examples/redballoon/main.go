// Red Balloon: a DARPA Network Challenge-style hunt (the motivating
// deployment of the paper and of [13]). Ten balloons are hidden across a
// large field; a lone searcher is compared against a referral-recruited
// team paid through the Geometric mechanism — the strategy family the
// winning MIT team used.
//
// Run with:
//
//	go run ./examples/redballoon
package main

import (
	"fmt"
	"log"
	"math/rand"

	"incentivetree/internal/core"
	"incentivetree/internal/crowd"
	"incentivetree/internal/geometric"
	"incentivetree/internal/tree"
)

const (
	cells    = 2000
	balloons = 10
	prize    = 1.0 // contribution credited per balloon
)

func balloonValues() []float64 {
	v := make([]float64, balloons)
	for i := range v {
		v[i] = prize
	}
	return v
}

func main() {
	params := core.Params{Phi: 0.5, FairShare: 0.05}
	mech, err := geometric.Default(params)
	if err != nil {
		log.Fatal(err)
	}

	// Campaign 1: a lone searcher.
	rng := rand.New(rand.NewSource(7))
	soloField, err := crowd.NewField(rng, cells, balloonValues())
	if err != nil {
		log.Fatal(err)
	}
	solo := crowd.NewCampaign(mech, soloField)
	if _, err := solo.Recruit(tree.Root, "lone-wolf", 2); err != nil {
		log.Fatal(err)
	}
	soloReport, err := solo.Run(rng, 100000)
	if err != nil {
		log.Fatal(err)
	}

	// Campaign 2: a referral tree. The organizer recruits three captains,
	// each captain recruits four searchers — the recruiting paid for by
	// the mechanism's bubble-up rewards.
	rng = rand.New(rand.NewSource(7))
	teamField, err := crowd.NewField(rng, cells, balloonValues())
	if err != nil {
		log.Fatal(err)
	}
	team := crowd.NewCampaign(mech, teamField)
	organizer, err := team.Recruit(tree.Root, "organizer", 2)
	if err != nil {
		log.Fatal(err)
	}
	for c := 0; c < 3; c++ {
		captain, err := team.Recruit(organizer, fmt.Sprintf("captain-%d", c+1), 2)
		if err != nil {
			log.Fatal(err)
		}
		for s := 0; s < 4; s++ {
			if _, err := team.Recruit(captain, fmt.Sprintf("searcher-%d-%d", c+1, s+1), 2); err != nil {
				log.Fatal(err)
			}
		}
	}
	teamReport, err := team.Run(rng, 100000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("field: %d cells, %d balloons, mechanism %s\n\n", cells, balloons, mech.Name())
	fmt.Printf("lone searcher: found %2.0f balloons in %5d rounds\n", soloReport.Found, soloReport.Rounds)
	fmt.Printf("referral team: found %2.0f balloons in %5d rounds\n\n", teamReport.Found, teamReport.Rounds)

	fmt.Println("team settlement (finders are rewarded, and so are their recruiters):")
	tt := team.Tree()
	for _, u := range tt.Nodes() {
		if teamReport.Rewards.Of(u) == 0 && tt.Contribution(u) == 0 {
			continue
		}
		fmt.Printf("  %-13s found %.0f balloon(s), reward %.4f\n",
			tt.Label(u), tt.Contribution(u), teamReport.Rewards.Of(u))
	}
	fmt.Printf("\norganizer pays out %.4f (budget %.4f) and the hunt finished %.1fx faster\n",
		teamReport.PaidOut, params.Phi*tt.Total(),
		float64(soloReport.Rounds)/float64(teamReport.Rounds))
}
