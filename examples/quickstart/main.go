// Quickstart: build a referral tree, evaluate a mechanism, read the
// settlement.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"incentivetree/internal/core"
	"incentivetree/internal/tdrm"
	"incentivetree/internal/tree"
)

func main() {
	// A mechanism is parameterized by the budget fraction Phi (the
	// administrator returns at most Phi*C(T) as rewards) and the
	// fairness floor phi (everyone gets back at least phi*C(u)).
	params := core.Params{Phi: 0.5, FairShare: 0.05}
	mech, err := tdrm.Default(params)
	if err != nil {
		log.Fatal(err)
	}

	// Build the referral history: alice joined on her own, recruited bob
	// and carol; bob recruited dave.
	t := tree.New()
	alice := t.MustAdd(tree.Root, 0)
	bob := t.MustAdd(alice, 0)
	carol := t.MustAdd(alice, 0)
	dave := t.MustAdd(bob, 0)
	for id, name := range map[tree.NodeID]string{alice: "alice", bob: "bob", carol: "carol", dave: "dave"} {
		if err := t.SetLabel(id, name); err != nil {
			log.Fatal(err)
		}
	}

	// Record contributions (tasks solved, data uploaded, goods bought...).
	for id, c := range map[tree.NodeID]float64{alice: 2, bob: 3.5, carol: 1, dave: 4} {
		if err := t.SetContribution(id, c); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Print(t.Render())

	// Evaluate the mechanism and print everyone's settlement.
	rewards, err := mech.Rewards(t)
	if err != nil {
		log.Fatal(err)
	}
	if err := core.Audit(mech, t, rewards); err != nil {
		log.Fatal(err) // budget and sanity audit
	}
	fmt.Printf("\n%s on C(T) = %.4g (budget %.4g):\n\n", mech.Name(), t.Total(), params.Phi*t.Total())
	for _, u := range t.Nodes() {
		fmt.Printf("  %-6s contributed %-5.4g -> reward %.4f (profit %+.4f)\n",
			t.Label(u), t.Contribution(u), rewards.Of(u), core.Profit(t, rewards, u))
	}
	fmt.Printf("\ntotal paid: %.4f of %.4g budget\n", rewards.Total(), params.Phi*t.Total())

	// Soliciting pays: alice's reward strictly increases when dave's
	// subtree grows (CSI), and she is protected against bob splitting
	// into Sybil identities (USA).
	grown := t.Clone()
	grown.MustAdd(dave, 2)
	r2, err := mech.Rewards(grown)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter dave recruits a contributor of 2.0, alice's reward rises %.4f -> %.4f\n",
		rewards.Of(alice), r2.Of(alice))
}
