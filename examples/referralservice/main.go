// Referral service: drive the HTTP deployment end-to-end. The example
// starts the in-memory referral API (the same handler cmd/itreed
// serves), runs a small recruitment campaign over HTTP — joins with
// sponsor codes, contribution reports, reward queries — and prints the
// final dashboard a campaign operator would see.
//
// Run with:
//
//	go run ./examples/referralservice
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"incentivetree/internal/core"
	"incentivetree/internal/server"
	"incentivetree/internal/tdrm"
)

func post(base, path string, body any) (*http.Response, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	return http.Post(base+path, "application/json", bytes.NewReader(data))
}

func main() {
	mech, err := tdrm.Default(core.Params{Phi: 0.5, FairShare: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(server.New(mech).Handler())
	defer ts.Close()
	fmt.Printf("referral service running at %s (%s)\n\n", ts.URL, mech.Name())

	// The campaign, entirely over HTTP.
	joins := []struct{ name, sponsor string }{
		{"ada", ""}, // organic seed
		{"bryan", "ada"},
		{"chen", "ada"},
		{"diya", "bryan"},
		{"emeka", "bryan"},
		{"farid", "diya"},
	}
	for _, j := range joins {
		resp, err := post(ts.URL, "/v1/join", map[string]string{"name": j.name, "sponsor": j.sponsor})
		if err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			log.Fatalf("join %s: status %d", j.name, resp.StatusCode)
		}
	}
	contributions := map[string]float64{
		"ada": 1.5, "bryan": 2, "chen": 0.5, "diya": 3, "emeka": 1, "farid": 2.5,
	}
	for name, amount := range contributions {
		resp, err := post(ts.URL, "/v1/contribute", map[string]any{"name": name, "amount": amount})
		if err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("contribute %s: status %d", name, resp.StatusCode)
		}
	}

	// The operator dashboard.
	resp, err := http.Get(ts.URL + "/v1/rewards")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var dashboard struct {
		Mechanism    string               `json:"mechanism"`
		Total        float64              `json:"total_contribution"`
		TotalReward  float64              `json:"total_reward"`
		Budget       float64              `json:"budget"`
		Participants []server.Participant `json:"participants"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dashboard); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign dashboard — C(T) = %.2f, paid %.4f of %.2f budget\n\n",
		dashboard.Total, dashboard.TotalReward, dashboard.Budget)
	fmt.Printf("  %-7s %-8s %13s %9s %9s\n", "member", "sponsor", "contribution", "reward", "recruits")
	for _, p := range dashboard.Participants {
		sponsor := p.Sponsor
		if sponsor == "" {
			sponsor = "(organic)"
		}
		fmt.Printf("  %-7s %-9s %12.2f %9.4f %9d\n",
			p.Name, sponsor, p.Contribution, p.Reward, p.Recruits)
	}

	// One member checks their personal page.
	resp, err = http.Get(ts.URL + "/v1/participants/bryan")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var bryan server.Participant
	if err := json.NewDecoder(resp.Body).Decode(&bryan); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbryan's view: contributed %.2f, reward %.4f — recruiting diya and emeka\n",
		bryan.Contribution, bryan.Reward)
	fmt.Println("paid off thanks to the mechanism's solicitation incentive (CSI).")
}
