// MLM store: the generalized multi-level-marketing reading of the model
// (Sect. 2). Buyers purchase goods at arbitrary prices, refer friends,
// and the seller returns a fraction of his income as rewards. The same
// purchase history is settled under a contribution-deterministic
// mechanism (Sybil-proof, bounded rewards) and under the Geometric
// mechanism (unbounded rewards, Sybil-exploitable) to show the trade-off
// of Theorem 3.
//
// Run with:
//
//	go run ./examples/mlmstore
package main

import (
	"fmt"
	"log"

	"incentivetree/internal/cdrm"
	"incentivetree/internal/core"
	"incentivetree/internal/geometric"
	"incentivetree/internal/mlm"
	"incentivetree/internal/tree"
)

func buildMarket(m core.Mechanism) (*mlm.Market, error) {
	mk := mlm.NewMarket(m)
	ann, err := mk.Join(tree.Root, "ann")
	if err != nil {
		return nil, err
	}
	ben, err := mk.Join(ann, "ben")
	if err != nil {
		return nil, err
	}
	cho, err := mk.Join(ann, "cho")
	if err != nil {
		return nil, err
	}
	dee, err := mk.Join(ben, "dee")
	if err != nil {
		return nil, err
	}
	purchases := []struct {
		buyer  tree.NodeID
		amount float64
	}{
		{ann, 40}, {ben, 25}, {cho, 10}, {dee, 60}, {ben, 15}, {ann, 5},
	}
	for _, p := range purchases {
		if err := mk.Buy(p.buyer, p.amount); err != nil {
			return nil, err
		}
	}
	return mk, nil
}

func settleAndPrint(m core.Mechanism) error {
	mk, err := buildMarket(m)
	if err != nil {
		return err
	}
	books, err := mk.Settle()
	if err != nil {
		return err
	}
	fmt.Printf("== %s ==\n", m.Name())
	fmt.Printf("seller income %.2f, reward liability %.2f (cap %.2f), net %.2f\n",
		books.Income, books.Rewards, books.BudgetCap, books.Net)
	for _, st := range books.Statements {
		fmt.Printf("  %-4s spent %6.2f -> reward %7.4f, effective payment %7.4f (%d recruits)\n",
			st.Name, st.Spent, st.Reward, st.Payment, st.Recruits)
	}
	top := books.TopEarners(1)[0]
	fmt.Printf("top earner: %s with %.4f\n\n", top.Name, top.Reward)
	return nil
}

func main() {
	params := core.Params{Phi: 0.5, FairShare: 0.05}
	reciprocal, err := cdrm.DefaultReciprocal(params)
	if err != nil {
		log.Fatal(err)
	}
	geo, err := geometric.Default(params)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range []core.Mechanism{reciprocal, geo} {
		if err := settleAndPrint(m); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("CDRM keeps every payment positive (no buyer profits, so identity")
	fmt.Println("forgery never pays); Geometric lets heavy recruiters profit but is")
	fmt.Println("exploitable by chain Sybils — the impossibility of Theorem 3 in action.")
}
