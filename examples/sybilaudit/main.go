// Sybil audit: run the bounded best-attack search against a mechanism
// before deploying it. The audit enumerates multi-identity join plans
// (splits, chains, generalized contribution increases) and reports the
// most profitable attack it finds — the executable version of the
// paper's USA/UGSA analysis.
//
// Run with:
//
//	go run ./examples/sybilaudit
package main

import (
	"fmt"
	"log"

	"incentivetree/internal/core"
	"incentivetree/internal/experiments"
	"incentivetree/internal/sybil"
	"incentivetree/internal/tree"
)

func main() {
	mechs, err := experiments.Suite(core.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}

	// The audited join decision: a participant about to join a small
	// campaign with contribution 2, who will later solicit two subtrees.
	scenario := sybil.Scenario{
		Base:         tree.FromSpecs(tree.Spec{C: 1, Label: "existing"}),
		Parent:       1,
		Contribution: 2,
		ChildTrees:   []tree.Spec{{C: 1}, {C: 1.5, Kids: []tree.Spec{{C: 1}}}},
	}

	fmt.Println("USA audit: can the joiner earn more by splitting its identity?")
	fmt.Println()
	for _, m := range mechs {
		rep, err := sybil.BestRewardAttack(m, scenario, sybil.DefaultSearch())
		if err != nil {
			log.Fatal(err)
		}
		verdict := "SAFE   "
		detail := ""
		if sybil.ViolatesUSA(rep) {
			verdict = "EXPLOIT"
			detail = fmt.Sprintf("  split %v gains %+.4f reward",
				rep.Best.Arrangement.Parts, rep.RewardGain())
		}
		fmt.Printf("  [%s] %-40s honest %.4f, best attack %.4f%s\n",
			verdict, m.Name(), rep.Baseline.Reward, rep.Best.Reward, detail)
	}

	fmt.Println()
	fmt.Println("UGSA audit: can the joiner profit by splitting AND buying more?")
	fmt.Println()
	for _, m := range mechs {
		rep, err := sybil.BestProfitAttack(m, scenario, sybil.GeneralizedSearch())
		if err != nil {
			log.Fatal(err)
		}
		verdict := "SAFE   "
		detail := ""
		if sybil.ViolatesUGSA(rep) {
			verdict = "EXPLOIT"
			detail = fmt.Sprintf("  identities %v (total C %.3g) gain %+.4f profit",
				rep.Best.Arrangement.Parts, rep.Best.Contribution, rep.ProfitGain())
		}
		fmt.Printf("  [%s] %-40s honest profit %.4f, best attack %.4f%s\n",
			verdict, m.Name(), rep.Baseline.Profit(), rep.Best.Profit(), detail)
	}

	fmt.Println()
	fmt.Println("Per Theorem 3, no mechanism with SL can be SAFE in the UGSA audit while")
	fmt.Println("offering profitable opportunity: TDRM trades UGSA for URO, CDRM trades")
	fmt.Println("URO for UGSA. Pick per deployment threat model.")
}
