// Benchmarks for every reproduced experiment (E01-E12, one bench each —
// see DESIGN.md §4) plus throughput benchmarks for the mechanisms' hot
// path (reward evaluation) and the supporting substrates.
//
// Run with:
//
//	go test -bench=. -benchmem
package incentivetree_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"incentivetree/internal/core"
	"incentivetree/internal/experiments"
	"incentivetree/internal/geometric"
	"incentivetree/internal/incremental"
	"incentivetree/internal/ingest"
	"incentivetree/internal/journal"
	"incentivetree/internal/obs"
	"incentivetree/internal/server"
	"incentivetree/internal/sim"
	"incentivetree/internal/sybil"
	"incentivetree/internal/tdrm"
	"incentivetree/internal/tree"
	"incentivetree/internal/treegen"
)

// benchExperiment runs one DESIGN.md experiment per iteration and fails
// the benchmark if the reproduction stops matching the paper.
func benchExperiment(b *testing.B, run func() (experiments.Result, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := run()
		if err != nil {
			b.Fatal(err)
		}
		if !res.OK {
			b.Fatalf("%s no longer matches the paper:\n%s", res.ID, res.Render())
		}
	}
}

func BenchmarkE01PropertyMatrix(b *testing.B) {
	benchExperiment(b, experiments.E01PropertyMatrix)
}

func BenchmarkE02Impossibility(b *testing.B) {
	benchExperiment(b, experiments.E02Impossibility)
}

func BenchmarkE03TDRMCounterexample(b *testing.B) {
	benchExperiment(b, experiments.E03TDRMCounterexample)
}

func BenchmarkE04GeometricChainAttack(b *testing.B) {
	benchExperiment(b, experiments.E04GeometricChainAttack)
}

func BenchmarkE05Fig1Scenarios(b *testing.B) {
	benchExperiment(b, experiments.E05Fig1Scenarios)
}

func BenchmarkE06RCTTransform(b *testing.B) {
	benchExperiment(b, experiments.E06RCTTransform)
}

func BenchmarkE07EpsilonChainOptimality(b *testing.B) {
	benchExperiment(b, experiments.E07EpsilonChainOptimality)
}

func BenchmarkE08CDRMConditions(b *testing.B) {
	benchExperiment(b, experiments.E08CDRMConditions)
}

func BenchmarkE09BudgetAudit(b *testing.B) {
	benchExperiment(b, experiments.E09BudgetAudit)
}

func BenchmarkE10PachiraSLViolation(b *testing.B) {
	benchExperiment(b, experiments.E10PachiraSLViolation)
}

func BenchmarkE11RewardScaling(b *testing.B) {
	benchExperiment(b, experiments.E11RewardScaling)
}

func BenchmarkE12GrowthSimulation(b *testing.B) {
	benchExperiment(b, experiments.E12GrowthSimulation)
}

func BenchmarkX01EmekCSIFailure(b *testing.B) {
	benchExperiment(b, experiments.X01EmekCSIFailure)
}

func BenchmarkX02TDRMMuAblation(b *testing.B) {
	benchExperiment(b, experiments.X02TDRMMuAblation)
}

func BenchmarkX03GeometricDecayAblation(b *testing.B) {
	benchExperiment(b, experiments.X03GeometricDecayAblation)
}

func BenchmarkX04SearchConvergence(b *testing.B) {
	benchExperiment(b, experiments.X04SearchConvergence)
}

func BenchmarkX05EquilibriumContribution(b *testing.B) {
	benchExperiment(b, experiments.X05EquilibriumContribution)
}

func BenchmarkX06RewardFlow(b *testing.B) {
	benchExperiment(b, experiments.X06RewardFlow)
}

// benchTree builds a deterministic mixed-shape workload tree.
func benchTree(n int) *tree.Tree {
	r := rand.New(rand.NewSource(int64(n)))
	return treegen.Random(r, treegen.Config{
		N:       n,
		Contrib: treegen.Uniform(0.1, 5),
		Attach:  treegen.PreferentialAttach,
	})
}

// BenchmarkRewards measures reward-evaluation throughput for every suite
// mechanism across tree sizes — the hot path of any deployment.
func BenchmarkRewards(b *testing.B) {
	mechs, err := experiments.Suite(core.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{100, 1000, 10000} {
		t := benchTree(n)
		for _, m := range mechs {
			b.Run(fmt.Sprintf("%s/n=%d", m.Name(), n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := m.Rewards(t); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkRCTTransformSize measures the TDRM reward computation tree
// construction across sizes and contribution scales (larger contributions
// mean longer chains).
func BenchmarkRCTTransformSize(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		t := benchTree(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tdrm.Transform(t, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSybilSearch measures the bounded best-attack enumeration used
// by the USA/UGSA checkers.
func BenchmarkSybilSearch(b *testing.B) {
	m, err := tdrm.Default(core.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	s := sybil.Scenario{
		Base:         tree.FromSpecs(tree.Spec{C: 1}),
		Parent:       1,
		Contribution: 2,
		ChildTrees:   []tree.Spec{{C: 1}, {C: 1.5}},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sybil.BestRewardAttack(m, s, sybil.DefaultSearch()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSybilSearchWorkers measures the sharded best-attack search at
// fixed worker counts (1 is the serial legacy path; results are
// identical at every setting).
func BenchmarkSybilSearchWorkers(b *testing.B) {
	m, err := tdrm.Default(core.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	s := sybil.Scenario{
		Base:         tree.FromSpecs(tree.Spec{C: 1}),
		Parent:       1,
		Contribution: 2,
		ChildTrees:   []tree.Spec{{C: 1}, {C: 1.5}},
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			o := sybil.DefaultSearch()
			o.Workers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sybil.BestRewardAttack(m, s, o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGrowthSimulation measures one full campaign simulation.
func BenchmarkGrowthSimulation(b *testing.B) {
	m, err := tdrm.Default(core.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.DefaultConfig(1)
	cfg.SybilFraction = 0.3
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(m, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalVsFull contrasts O(depth) incremental reward
// maintenance with O(n) full re-evaluation on a growing campaign — the
// ablation for the live-service write path.
func BenchmarkIncrementalVsFull(b *testing.B) {
	p := core.DefaultParams()
	geo, err := geometric.Default(p)
	if err != nil {
		b.Fatal(err)
	}
	const joins = 2000
	workload := func(b *testing.B, e incremental.Engine) {
		b.Helper()
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < joins; i++ {
			parent := tree.NodeID(rng.Intn(e.Tree().Len()))
			if _, err := e.Join(parent, rng.Float64()*3); err != nil {
				b.Fatal(err)
			}
			_ = e.Reward(tree.NodeID(1 + rng.Intn(e.Tree().NumParticipants())))
		}
	}
	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			workload(b, incremental.NewGeometric(geo))
		}
	})
	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e, err := incremental.NewFull(geo)
			if err != nil {
				b.Fatal(err)
			}
			workload(b, e)
		}
	})
}

// BenchmarkInstrumentedRewards measures the observability tax on the
// rewards hot path: the same mechanism evaluation with and without the
// obs timed wrapper (experiments.Instrumented). The instrumented/bare
// ns-per-op ratio is the overhead the ISSUE demands stays under ~5% —
// two clock reads plus three atomic updates amortized over an O(n)
// tree evaluation.
func BenchmarkInstrumentedRewards(b *testing.B) {
	p := core.DefaultParams()
	geo, err := geometric.Default(p)
	if err != nil {
		b.Fatal(err)
	}
	td, err := tdrm.Default(p)
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range []core.Mechanism{geo, td} {
		for _, n := range []int{100, 1000} {
			t := benchTree(n)
			im := experiments.Instrumented(m, obs.NewRegistry())
			b.Run(fmt.Sprintf("bare/%s/n=%d", m.Name(), n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := m.Rewards(t); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("instrumented/%s/n=%d", m.Name(), n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := im.Rewards(t); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkObsPrimitives measures the raw cost of one metric recording
// — the unit the middleware and engine instrumentation pay per event.
func BenchmarkObsPrimitives(b *testing.B) {
	reg := obs.NewRegistry()
	c := reg.Counter("bench_total", "")
	h := reg.Histogram("bench_seconds", "", nil)
	b.Run("CounterInc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("HistogramObserve", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(float64(i%1000) * 1e-6)
		}
	})
	b.Run("HistogramObserveTimed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			start := time.Now()
			h.Observe(time.Since(start).Seconds())
		}
	})
	b.Run("RegistryLookup", func(b *testing.B) {
		// The price of not caching the handle (what Middleware pays
		// per request).
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			reg.Counter("bench_total", "").Inc()
		}
	})
}

// BenchmarkIngestBatchSizes measures the group-commit write path under
// contention at different batch caps, with a real fsync-per-commit
// journal (journal.SyncAlways) so the cost being amortized is the true
// one. batch=1 is the unbatched baseline: one fsync, one lock
// acquisition, and one reward recompute per operation; larger caps
// spread those over whole batches. ns/op here is per submitted
// contribution, end to end through the committer.
func BenchmarkIngestBatchSizes(b *testing.B) {
	const (
		population = 64
		workers    = 32
	)
	for _, batchMax := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("batch=%d", batchMax), func(b *testing.B) {
			m, err := geometric.Default(core.DefaultParams())
			if err != nil {
				b.Fatal(err)
			}
			fw, err := journal.OpenFile(filepath.Join(b.TempDir(), "journal.log"), journal.SyncAlways, 0)
			if err != nil {
				b.Fatal(err)
			}
			s := server.New(m,
				server.WithJournal(journal.NewWriter(fw, 1)),
				server.WithBatching(ingest.Options{BatchMax: batchMax, QueueDepth: 8192}))
			defer func() {
				s.CloseIngest()
				fw.Close()
			}()
			for i := 0; i < population; i++ {
				if err := s.Join(fmt.Sprintf("p%03d", i), ""); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			var (
				next   atomic.Int64
				failed atomic.Int64
				wg     sync.WaitGroup
			)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					ctx := context.Background()
					for {
						i := next.Add(1)
						if i > int64(b.N) {
							return
						}
						name := fmt.Sprintf("p%03d", i%population)
						if _, err := s.SubmitContribute(ctx, name, 1); err != nil {
							failed.Add(1)
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			if n := failed.Load(); n > 0 {
				b.Fatalf("%d submits failed", n)
			}
		})
	}
}

// BenchmarkTreeOps measures the substrate primitives the mechanisms are
// built from.
func BenchmarkTreeOps(b *testing.B) {
	t := benchTree(10000)
	b.Run("SubtreeSums", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = t.SubtreeSums()
		}
	})
	b.Run("Clone", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = t.Clone()
		}
	})
	b.Run("Walk", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n := 0
			t.Walk(tree.Root, func(tree.NodeID) bool { n++; return true })
		}
	})
	b.Run("MarshalJSON", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := json.Marshal(t); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("CloneInto", func(b *testing.B) {
		var dst tree.Tree
		t.CloneInto(&dst) // warm the backing arrays; steady state is 0 allocs
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t.CloneInto(&dst)
		}
	})
	b.Run("ResetTo", func(b *testing.B) {
		sc := t.Clone()
		mark := sc.Mark()
		for k := 0; k < 8; k++ { // warm the arena past the mark
			sc.MustAdd(tree.Root, 1)
		}
		if err := sc.ResetTo(mark); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for k := 0; k < 8; k++ {
				sc.MustAdd(tree.Root, 1)
			}
			if err := sc.ResetTo(mark); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchCodecSizes returns the campaign sizes the snapshot-codec and
// recovery benchmarks run at: 10^4 always, plus the 10^6 acceptance
// point when ITREE_BENCH_LARGE is set (a million-participant fixture is
// too slow for the 1x CI bench smoke).
func benchCodecSizes() []int {
	sizes := []int{10_000}
	if os.Getenv("ITREE_BENCH_LARGE") != "" {
		sizes = append(sizes, 1_000_000)
	}
	return sizes
}

// BenchmarkSnapshotCodec contrasts the JSON debug/export snapshot with
// the binary checkpoint format (DESIGN.md §8) on encode and decode.
func BenchmarkSnapshotCodec(b *testing.B) {
	for _, n := range benchCodecSizes() {
		snap := &server.Snapshot{
			LastSeq:     uint64(n),
			Tree:        benchTree(n),
			Quarantined: []string{"p3", "p7"},
		}
		jsonData, err := json.Marshal(snap)
		if err != nil {
			b.Fatal(err)
		}
		binData, err := server.EncodeSnapshotBinary(snap)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("encode/json/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := json.Marshal(snap); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("encode/binary/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := server.EncodeSnapshotBinary(snap); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("decode/json/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := server.DecodeSnapshot(jsonData); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("decode/binary/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := server.DecodeSnapshot(binData); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecovery measures cold campaign recovery — full journal
// replay vs snapshot adoption — in both wire formats. The n=1000000
// points (ITREE_BENCH_LARGE=1) are the acceptance numbers for the
// binary-codec work: binary recovery must beat JSON by 5x or more.
func BenchmarkRecovery(b *testing.B) {
	m, err := tdrm.Default(core.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range benchCodecSizes() {
		for _, mode := range []journal.Mode{journal.ModeJSON, journal.ModeBinary} {
			label := "json"
			if mode == journal.ModeBinary {
				label = "binary"
			}
			var log bytes.Buffer
			srv := server.New(m, server.WithJournal(journal.NewWriterMode(&log, 1, mode)))
			rng := rand.New(rand.NewSource(int64(n)))
			names := make([]string, 0, n)
			for i := 0; i < n; i++ {
				name := fmt.Sprintf("p%d", i)
				sponsor := ""
				if len(names) > 0 {
					sponsor = names[rng.Intn(len(names))]
				}
				if err := srv.Join(name, sponsor); err != nil {
					b.Fatal(err)
				}
				if err := srv.Contribute(name, 0.5+rng.Float64()*4); err != nil {
					b.Fatal(err)
				}
				names = append(names, name)
			}
			snap := srv.SnapshotAt(nil)
			var snapData []byte
			if mode == journal.ModeBinary {
				snapData, err = server.EncodeSnapshotBinary(&snap)
			} else {
				snapData, err = json.Marshal(&snap)
			}
			if err != nil {
				b.Fatal(err)
			}
			logData := log.Bytes()
			b.Run(fmt.Sprintf("journal/%s/n=%d", label, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					events, err := journal.Read(bytes.NewReader(logData))
					if err != nil {
						b.Fatal(err)
					}
					rec := server.New(m)
					if err := server.Recover(rec, nil, events); err != nil {
						b.Fatal(err)
					}
					if rec.LastSeq() != srv.LastSeq() {
						b.Fatalf("replay recovered seq %d, want %d", rec.LastSeq(), srv.LastSeq())
					}
				}
			})
			b.Run(fmt.Sprintf("snapshot/%s/n=%d", label, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					decoded, err := server.DecodeSnapshot(snapData)
					if err != nil {
						b.Fatal(err)
					}
					rec := server.New(m)
					if err := server.Recover(rec, decoded, nil); err != nil {
						b.Fatal(err)
					}
					if rec.LastSeq() != srv.LastSeq() {
						b.Fatalf("snapshot recovered seq %d, want %d", rec.LastSeq(), srv.LastSeq())
					}
				}
			})
		}
	}
}
