module incentivetree

go 1.23
