module incentivetree

go 1.22
