package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Binary journal record format. A journal is a byte stream of records;
// each record is self-describing via its first byte, so JSON lines and
// binary records can coexist in one file (which is exactly what happens
// when a binary-mode Writer appends to a journal recovered from an older
// JSON deployment). There is deliberately no stream-level header: the
// checkpointer's CompactTo keeps an arbitrary record-boundary suffix of
// the file, replication re-streams records from arbitrary offsets, and a
// follower's rolling hash must equal the hash of the primary's file
// bytes — all three would break if the format were negotiated anywhere
// but in the records themselves.
//
// Record framing (all integers little-endian, varints canonical):
//
//	0xB1                     tag: binary record, version 1
//	uvarint                  payload length in bytes
//	payload                  see below
//	4-byte LE uint32         CRC-32C (Castagnoli) of the payload
//
// Payload:
//
//	byte                     kind (0 join, 1 contribute, 2 quarantine,
//	                         3 unquarantine, 4 settle, 5 claim)
//	uvarint                  seq
//	uvarint + bytes          name
//	uvarint + bytes          sponsor ("" when absent)
//	8-byte LE float64        amount (0 for kinds that carry none)
//
// Settle and claim records extend the payload after the base fields
// (older decoders reject the unknown kind byte rather than
// misinterpreting the record):
//
//	claim:  uvarint epoch    — name/amount in the base fields are the
//	                           claimant and the claimed share
//	settle: uvarint epoch
//	        8-byte LE float64 pool
//	        8-byte LE float64 ctotal
//	        uvarint           share count
//	        per share:        uvarint + bytes name, 8-byte LE float64
//	                          amount (strictly ascending by name)
//
// A first byte of '{' (or whitespace) means a JSON-lines record —
// the format every journal used before the binary codec; '\n' alone is
// the stream heartbeat in both modes. Any other first byte is
// corruption.
//
// The encoding is canonical: one event has exactly one binary
// representation, so re-encoding a decoded record reproduces its bytes
// — the property replication's rolling SHA-256 and
// FuzzJournalRecordDecode both depend on.

// Mode selects the wire format of journal records.
type Mode int

const (
	// ModeJSON writes one JSON object per line — the legacy format,
	// kept as the debug/export representation (see `itree convert`).
	ModeJSON Mode = iota
	// ModeBinary writes length-prefixed CRC-checked binary records.
	ModeBinary
)

// String names the mode as used by flags and `itree convert`.
func (m Mode) String() string {
	switch m {
	case ModeJSON:
		return "json"
	case ModeBinary:
		return "binary"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode parses "json" or "binary".
func ParseMode(s string) (Mode, error) {
	switch s {
	case "json":
		return ModeJSON, nil
	case "binary":
		return ModeBinary, nil
	default:
		return 0, fmt.Errorf("journal: unknown format %q (want json or binary)", s)
	}
}

// tagBinaryV1 is the first byte of a version-1 binary record. It is not
// valid leading whitespace and not a valid first byte of a JSON value,
// so the three record classes (binary, JSON, heartbeat) are disjoint on
// their first byte.
const tagBinaryV1 = 0xB1

// maxBinaryPayload bounds the declared payload length, so a corrupt
// length prefix cannot make the decoder allocate gigabytes. Settle
// records carry a whole epoch's share table — roughly 20 bytes per
// participant — so the bound admits tables of a few million entries;
// the stream decoder reads frames in bounded chunks, so a corrupt
// prefix near the bound still cannot force one huge up-front
// allocation.
const maxBinaryPayload = 1 << 26

// castagnoli is the CRC-32C table (the polynomial with hardware support
// on both amd64 and arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

var errBinaryRecord = errors.New("journal: invalid binary record")

func kindToByte(k Kind) (byte, error) {
	switch k {
	case KindJoin:
		return 0, nil
	case KindContribute:
		return 1, nil
	case KindQuarantine:
		return 2, nil
	case KindUnquarantine:
		return 3, nil
	case KindSettle:
		return 4, nil
	case KindClaim:
		return 5, nil
	default:
		return 0, fmt.Errorf("journal: unknown event kind %q", k)
	}
}

func byteToKind(b byte) (Kind, error) {
	switch b {
	case 0:
		return KindJoin, nil
	case 1:
		return KindContribute, nil
	case 2:
		return KindQuarantine, nil
	case 3:
		return KindUnquarantine, nil
	case 4:
		return KindSettle, nil
	case 5:
		return KindClaim, nil
	default:
		return "", fmt.Errorf("%w: unknown kind byte %#x", errBinaryRecord, b)
	}
}

// uvarintLen returns the canonical varint length of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// binaryPayloadSize returns the payload length of e's binary record.
func binaryPayloadSize(e Event) int {
	n := 1 + uvarintLen(e.Seq) +
		uvarintLen(uint64(len(e.Name))) + len(e.Name) +
		uvarintLen(uint64(len(e.Sponsor))) + len(e.Sponsor) + 8
	switch e.Kind {
	case KindClaim:
		n += uvarintLen(e.Epoch)
	case KindSettle:
		n += uvarintLen(e.Epoch) + 8 + 8 + uvarintLen(uint64(len(e.Rewards)))
		for _, r := range e.Rewards {
			n += uvarintLen(uint64(len(r.Name))) + len(r.Name) + 8
		}
	}
	return n
}

// AppendBinaryRecord appends the framed binary encoding of e to dst.
// The event must already carry its sequence number and validate.
func AppendBinaryRecord(dst []byte, e Event) ([]byte, error) {
	if err := e.Validate(); err != nil {
		return dst, err
	}
	kb, err := kindToByte(e.Kind)
	if err != nil {
		return dst, err
	}
	dst = append(dst, tagBinaryV1)
	dst = binary.AppendUvarint(dst, uint64(binaryPayloadSize(e)))
	start := len(dst)
	dst = append(dst, kb)
	dst = binary.AppendUvarint(dst, e.Seq)
	dst = binary.AppendUvarint(dst, uint64(len(e.Name)))
	dst = append(dst, e.Name...)
	dst = binary.AppendUvarint(dst, uint64(len(e.Sponsor)))
	dst = append(dst, e.Sponsor...)
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(e.Amount))
	switch e.Kind {
	case KindClaim:
		dst = binary.AppendUvarint(dst, e.Epoch)
	case KindSettle:
		dst = binary.AppendUvarint(dst, e.Epoch)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(e.Pool))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(e.CTotal))
		dst = binary.AppendUvarint(dst, uint64(len(e.Rewards)))
		for _, r := range e.Rewards {
			dst = binary.AppendUvarint(dst, uint64(len(r.Name)))
			dst = append(dst, r.Name...)
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.Amount))
		}
	}
	crc := crc32.Checksum(dst[start:], castagnoli)
	dst = binary.LittleEndian.AppendUint32(dst, crc)
	return dst, nil
}

// decodeBinaryPayload decodes (and validates) the payload of a binary
// record whose CRC already checked out.
func decodeBinaryPayload(p []byte) (Event, error) {
	off := 0
	if len(p) == 0 {
		return Event{}, fmt.Errorf("%w: empty payload", errBinaryRecord)
	}
	kind, err := byteToKind(p[0])
	if err != nil {
		return Event{}, err
	}
	off++
	seq, err := readUvarint(p, &off, "seq")
	if err != nil {
		return Event{}, err
	}
	name, err := readString(p, &off, "name")
	if err != nil {
		return Event{}, err
	}
	sponsor, err := readString(p, &off, "sponsor")
	if err != nil {
		return Event{}, err
	}
	amount, err := readFloat(p, &off, "amount")
	if err != nil {
		return Event{}, err
	}
	e := Event{Seq: seq, Kind: kind, Name: name, Sponsor: sponsor, Amount: amount}
	switch kind {
	case KindClaim:
		if e.Epoch, err = readUvarint(p, &off, "epoch"); err != nil {
			return Event{}, err
		}
	case KindSettle:
		if e.Epoch, err = readUvarint(p, &off, "epoch"); err != nil {
			return Event{}, err
		}
		if e.Pool, err = readFloat(p, &off, "pool"); err != nil {
			return Event{}, err
		}
		if e.CTotal, err = readFloat(p, &off, "ctotal"); err != nil {
			return Event{}, err
		}
		count, err := readUvarint(p, &off, "share count")
		if err != nil {
			return Event{}, err
		}
		// Every share takes at least 9 payload bytes, so a corrupt
		// count cannot pre-allocate more than the payload itself.
		if count > uint64(len(p)-off)/9 {
			return Event{}, fmt.Errorf("%w: share count %d overruns payload", errBinaryRecord, count)
		}
		if count > 0 {
			e.Rewards = make([]RewardShare, 0, count)
			for i := uint64(0); i < count; i++ {
				rname, err := readString(p, &off, "share name")
				if err != nil {
					return Event{}, err
				}
				ramt, err := readFloat(p, &off, "share amount")
				if err != nil {
					return Event{}, err
				}
				e.Rewards = append(e.Rewards, RewardShare{Name: rname, Amount: ramt})
			}
		}
	}
	if off != len(p) {
		return Event{}, fmt.Errorf("%w: payload length mismatch", errBinaryRecord)
	}
	if err := e.Validate(); err != nil {
		return Event{}, err
	}
	return e, nil
}

// readFloat decodes an 8-byte little-endian float64 at *off.
func readFloat(p []byte, off *int, what string) (float64, error) {
	if len(p)-*off < 8 {
		return 0, fmt.Errorf("%w: truncated %s", errBinaryRecord, what)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(p[*off:]))
	*off += 8
	return v, nil
}

// readUvarint decodes a canonical uvarint at *off. Non-minimal
// encodings are rejected so decode∘encode is the identity on valid
// records.
func readUvarint(p []byte, off *int, what string) (uint64, error) {
	v, n := binary.Uvarint(p[*off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated %s varint", errBinaryRecord, what)
	}
	if n != uvarintLen(v) {
		return 0, fmt.Errorf("%w: non-canonical %s varint", errBinaryRecord, what)
	}
	*off += n
	return v, nil
}

// readString decodes a length-prefixed string at *off.
func readString(p []byte, off *int, what string) (string, error) {
	n, err := readUvarint(p, off, what+" length")
	if err != nil {
		return "", err
	}
	if n > uint64(len(p)-*off) {
		return "", fmt.Errorf("%w: %s overruns payload", errBinaryRecord, what)
	}
	s := string(p[*off : *off+int(n)])
	*off += int(n)
	return s, nil
}
