package journal

import (
	"bytes"
	"io"
	"testing"
)

// FuzzJournalRecordDecode throws arbitrary bytes at the stream decoder
// and checks the two safety properties of the binary codec:
//
//  1. No input panics or decodes into an invalid event — corruption is
//     always rejected with an error.
//  2. Decoding is canonical: any binary record the decoder accepts
//     re-encodes to exactly the bytes it was decoded from (the property
//     replication's rolling SHA-256 depends on).
func FuzzJournalRecordDecode(f *testing.F) {
	// Valid records of every kind, plus a mixed-format log.
	for _, e := range []Event{
		{Seq: 1, Kind: KindJoin, Name: "alice"},
		{Seq: 2, Kind: KindJoin, Name: "bob", Sponsor: "alice"},
		{Seq: 3, Kind: KindContribute, Name: "bob", Amount: 2.5},
		{Seq: 4, Kind: KindQuarantine, Name: "bob"},
		{Seq: 5, Kind: KindUnquarantine, Name: "bob"},
	} {
		rec, err := AppendBinaryRecord(nil, e)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(rec)
	}
	var mixed bytes.Buffer
	w := NewWriter(&mixed, 1)
	w.Append(Event{Kind: KindJoin, Name: "a"})
	bw := NewWriterMode(&mixed, 2, ModeBinary)
	bw.Append(Event{Kind: KindContribute, Name: "a", Amount: 1})
	f.Add(mixed.Bytes())
	// Adversarial shapes: bare tag, tag + huge length, truncated frames.
	f.Add([]byte{tagBinaryV1})
	f.Add([]byte{tagBinaryV1, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Add([]byte{tagBinaryV1, 0x05, 0x00, 0x01})

	f.Fuzz(checkDecodeRoundTrip)
}

// checkDecodeRoundTrip is the shared fuzz body of the record-decode
// targets: no input panics or decodes into an invalid event, and every
// accepted binary record re-encodes to exactly the bytes it was
// decoded from.
func checkDecodeRoundTrip(t *testing.T, data []byte) {
	d := NewDecoder(bytes.NewReader(data))
	var start int64
	for {
		e, err := d.Next()
		if err != nil {
			// io.EOF, torn tail, or hard corruption — all fine; the
			// decoder just must not accept garbage or panic.
			return
		}
		if verr := e.Validate(); verr != nil {
			t.Fatalf("decoder returned invalid event %+v: %v", e, verr)
		}
		consumed := data[start:d.Offset()]
		start = d.Offset()
		if d.Mode() != ModeBinary {
			continue // JSON accepts whitespace/field-order variants
		}
		// Strip heartbeat bytes the decoder skipped before the record.
		rec := consumed[bytes.IndexByte(consumed, tagBinaryV1):]
		reenc, err := AppendBinaryRecord(nil, e)
		if err != nil {
			t.Fatalf("accepted event failed to re-encode: %v", err)
		}
		if !bytes.Equal(rec, reenc) {
			t.Fatalf("decode∘encode not identity:\nin:  %x\nout: %x", rec, reenc)
		}
	}
}

// FuzzEventConstructive drives the encoder from arbitrary field values:
// every event that validates must round-trip exactly through the binary
// codec via the stream decoder.
func FuzzEventConstructive(f *testing.F) {
	f.Add(uint8(0), uint64(1), "alice", "", 0.0)
	f.Add(uint8(1), uint64(7), "bob", "alice", 3.5)
	f.Add(uint8(2), uint64(9), "x", "", 0.0)
	f.Fuzz(func(t *testing.T, kindByte uint8, seq uint64, name, sponsor string, amount float64) {
		kind, err := byteToKind(kindByte)
		if err != nil {
			return
		}
		e := Event{Seq: seq, Kind: kind, Name: name, Sponsor: sponsor, Amount: amount}
		if e.Validate() != nil {
			return
		}
		rec, err := AppendBinaryRecord(nil, e)
		if err != nil {
			t.Fatalf("valid event failed to encode: %v", err)
		}
		d := NewDecoder(bytes.NewReader(rec))
		if seq > 0 {
			d.ExpectSeq(seq)
		}
		got, err := d.Next()
		if err != nil {
			t.Fatalf("encoded event failed to decode: %v", err)
		}
		if !got.Equal(e) {
			t.Fatalf("round trip changed event: %+v != %+v", got, e)
		}
		if _, err := d.Next(); err != io.EOF {
			t.Fatalf("trailing bytes after one record: %v", err)
		}
	})
}
