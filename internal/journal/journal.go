// Package journal provides an append-only event log for Incentive Tree
// deployments: every state change (join, contribute, quarantine) is
// recorded as one JSON line, and a log replays into the exact referral
// tree — and payout-quarantine set — it witnessed. Together with the tree's JSON snapshot format this gives
// the in-memory HTTP service (internal/server) crash-recovery semantics:
// snapshot + suffix-of-journal = current state.
package journal

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"incentivetree/internal/obs"
	"incentivetree/internal/tree"
)

// Journal activity is recorded in the process-wide obs registry so a
// serving daemon can watch write rates and recovery health.
var (
	metricAppends     = obs.Default().Counter("itree_journal_appends_total", "Events appended to the journal.")
	metricAppendBytes = obs.Default().Counter("itree_journal_append_bytes_total", "Bytes appended to the journal.")
	metricReplays     = obs.Default().Counter("itree_journal_replay_events_total", "Events replayed from journals.")
	metricTornTails   = obs.Default().Counter("itree_journal_torn_tails_total", "Journal reads that found a torn final line.")
)

// Kind discriminates event types.
type Kind string

// The event kinds.
const (
	// KindJoin records a new participant (with optional sponsor).
	KindJoin Kind = "join"
	// KindContribute records a contribution increase.
	KindContribute Kind = "contribute"
	// KindQuarantine flags a participant: the whole subtree rooted at
	// the named node is withheld from payout (rewards served as zero)
	// while raw contributions stay intact. Journaled like any other
	// state change so the flag survives crashes and replicates.
	KindQuarantine Kind = "quarantine"
	// KindUnquarantine clears a previously set quarantine flag.
	KindUnquarantine Kind = "unquarantine"
	// KindSettle freezes one epoch of the payout ledger: the record
	// carries the epoch number, the budget pool the epoch accrued, the
	// campaign contribution total the accrual ran up to, and the
	// per-participant reward shares granted against the pool. Settled
	// epochs are immutable history; replay enforces that the shares
	// never exceed the pool (the paper's R(T) ≤ Φ·C(T) constraint,
	// ledger-ized per epoch).
	KindSettle Kind = "settle"
	// KindClaim records a participant collecting their share of one
	// settled epoch. Claims are idempotent per (participant, epoch):
	// replay rejects duplicates, so a crash between append and response
	// cannot double-credit.
	KindClaim Kind = "claim"
)

// RewardShare is one participant's granted share in a settle record.
type RewardShare struct {
	Name   string  `json:"name"`
	Amount float64 `json:"amount"`
}

// Event is one journal entry. Participants are identified by name, as in
// the HTTP API, so logs are stable across id renumbering.
type Event struct {
	Seq     uint64  `json:"seq"`
	Kind    Kind    `json:"kind"`
	Name    string  `json:"name"`
	Sponsor string  `json:"sponsor,omitempty"`
	Amount  float64 `json:"amount,omitempty"`
	// Epoch is the settled epoch a settle or claim record refers to
	// (1-based; zero — and absent from the wire — for other kinds).
	Epoch uint64 `json:"epoch,omitempty"`
	// Pool is the budget accrued by a settle record's epoch: the
	// mechanism share of the contribution delta since the previous
	// settle, plus the carry-over of whatever the previous epoch left
	// unallocated.
	Pool float64 `json:"pool,omitempty"`
	// CTotal is the campaign contribution total C(T) the settle's pool
	// accrual ran up to; the next epoch accrues from here.
	CTotal float64 `json:"ctotal,omitempty"`
	// Rewards is a settle record's frozen share table, strictly
	// ascending by name.
	Rewards []RewardShare `json:"rewards,omitempty"`
}

// Equal reports whether two events are field-wise identical. Event is
// not comparable with == (Rewards is a slice), so tests and replay
// checks use this instead.
func (e Event) Equal(o Event) bool {
	if e.Seq != o.Seq || e.Kind != o.Kind || e.Name != o.Name ||
		e.Sponsor != o.Sponsor || e.Amount != o.Amount ||
		e.Epoch != o.Epoch || e.Pool != o.Pool || e.CTotal != o.CTotal ||
		len(e.Rewards) != len(o.Rewards) {
		return false
	}
	for i, r := range e.Rewards {
		if r != o.Rewards[i] {
			return false
		}
	}
	return true
}

// finitePositive reports a finite, strictly positive float. NaN fails
// every comparison, so `<= 0` alone would wave it (and +Inf) through —
// and NaN/Inf are unencodable as JSON anyway.
func finitePositive(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v > 0
}

// Validate checks the event's internal consistency.
func (e Event) Validate() error {
	if e.Kind != KindSettle && e.Kind != KindClaim {
		// The ledger fields belong to settle/claim records only; a
		// canonical encoding demands they are absent elsewhere.
		if e.Epoch != 0 || e.Pool != 0 || e.CTotal != 0 || len(e.Rewards) != 0 {
			return fmt.Errorf("journal: %s event carries ledger fields", e.Kind)
		}
	}
	switch e.Kind {
	case KindJoin:
		if e.Name == "" {
			return errors.New("journal: join event without name")
		}
		if e.Amount != 0 {
			return errors.New("journal: join event carries an amount")
		}
	case KindContribute:
		if e.Name == "" {
			return errors.New("journal: contribute event without name")
		}
		if !finitePositive(e.Amount) {
			return fmt.Errorf("journal: contribute amount %v must be finite and positive", e.Amount)
		}
	case KindQuarantine, KindUnquarantine:
		if e.Name == "" {
			return fmt.Errorf("journal: %s event without name", e.Kind)
		}
		if e.Sponsor != "" {
			return fmt.Errorf("journal: %s event carries a sponsor", e.Kind)
		}
		if e.Amount != 0 {
			return fmt.Errorf("journal: %s event carries an amount", e.Kind)
		}
	case KindSettle:
		if e.Name != "" || e.Sponsor != "" || e.Amount != 0 {
			return errors.New("journal: settle event carries participant fields")
		}
		if e.Epoch == 0 {
			return errors.New("journal: settle event without epoch")
		}
		if math.IsNaN(e.Pool) || math.IsInf(e.Pool, 0) || e.Pool < 0 {
			return fmt.Errorf("journal: settle pool %v must be finite and non-negative", e.Pool)
		}
		if math.IsNaN(e.CTotal) || math.IsInf(e.CTotal, 0) || e.CTotal < 0 {
			return fmt.Errorf("journal: settle ctotal %v must be finite and non-negative", e.CTotal)
		}
		prev := ""
		for i, r := range e.Rewards {
			if r.Name == "" {
				return fmt.Errorf("journal: settle share %d without name", i)
			}
			if i > 0 && r.Name <= prev {
				return fmt.Errorf("journal: settle shares not strictly ascending at %q", r.Name)
			}
			prev = r.Name
			if !finitePositive(r.Amount) {
				return fmt.Errorf("journal: settle share for %q is %v, must be finite and positive", r.Name, r.Amount)
			}
		}
	case KindClaim:
		if e.Name == "" {
			return errors.New("journal: claim event without name")
		}
		if e.Sponsor != "" {
			return errors.New("journal: claim event carries a sponsor")
		}
		if e.Epoch == 0 {
			return errors.New("journal: claim event without epoch")
		}
		if e.Pool != 0 || e.CTotal != 0 || len(e.Rewards) != 0 {
			return errors.New("journal: claim event carries settle fields")
		}
		if !finitePositive(e.Amount) {
			return fmt.Errorf("journal: claim amount %v must be finite and positive", e.Amount)
		}
	default:
		return fmt.Errorf("journal: unknown event kind %q", e.Kind)
	}
	return nil
}

// Writer appends events in one of the journal wire formats (JSON lines
// or binary records; see binary.go). It is safe for concurrent use.
type Writer struct {
	mu   sync.Mutex
	w    io.Writer
	seq  uint64
	mode Mode
	buf  []byte // encode scratch, reused under mu
}

// NewWriter wraps w, writing JSON lines — the legacy format, still the
// default for callers that pin byte-level compatibility. Use nextSeq =
// 1 for a fresh log, or the successor of the last persisted sequence
// number when appending.
func NewWriter(w io.Writer, nextSeq uint64) *Writer {
	return NewWriterMode(w, nextSeq, ModeJSON)
}

// NewWriterMode is NewWriter with an explicit record format. Appending
// binary records to a journal holding JSON lines (or vice versa) is
// legal: records are self-describing, and every reader handles mixed
// logs — this is how existing deployments migrate in place.
func NewWriterMode(w io.Writer, nextSeq uint64, mode Mode) *Writer {
	if nextSeq == 0 {
		nextSeq = 1
	}
	return &Writer{w: w, seq: nextSeq, mode: mode}
}

// Mode reports the format the writer appends in.
func (jw *Writer) Mode() Mode { return jw.mode }

// Append assigns the next sequence number, validates, and writes the
// event as one record. It returns the persisted event.
func (jw *Writer) Append(e Event) (Event, error) {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	e.Seq = jw.seq
	data, err := appendRecord(jw.buf[:0], e, jw.mode)
	if err != nil {
		return Event{}, err
	}
	jw.buf = data[:0]
	if _, err := jw.w.Write(data); err != nil {
		return Event{}, fmt.Errorf("journal: write: %w", err)
	}
	jw.seq++
	metricAppends.Inc()
	metricAppendBytes.Add(uint64(len(data)))
	return e, nil
}

// AppendBatch assigns consecutive sequence numbers to events and writes
// them as records with a single Write to the underlying writer — the
// group-commit primitive: a FileWriter backing jw issues at most one
// fsync for the whole batch, and the bytes are identical to len(events)
// individual Appends. Validation and encoding happen before any byte is
// written, so a failed batch leaves the log and the sequence counter
// untouched. It returns the persisted events.
func (jw *Writer) AppendBatch(events []Event) ([]Event, error) {
	if len(events) == 0 {
		return nil, nil
	}
	jw.mu.Lock()
	defer jw.mu.Unlock()
	buf := jw.buf[:0]
	out := make([]Event, len(events))
	for i, e := range events {
		e.Seq = jw.seq + uint64(i)
		var err error
		buf, err = appendRecord(buf, e, jw.mode)
		if err != nil {
			return nil, err
		}
		out[i] = e
	}
	jw.buf = buf[:0]
	if _, err := jw.w.Write(buf); err != nil {
		return nil, fmt.Errorf("journal: write: %w", err)
	}
	jw.seq += uint64(len(events))
	metricAppends.Add(uint64(len(events)))
	metricAppendBytes.Add(uint64(len(buf)))
	return out, nil
}

// ErrTornTail reports that the final line of a journal was malformed —
// the signature of a crash mid-append. All complete events before it
// are returned alongside the error, so callers may treat it as a
// recoverable condition. Match with errors.Is; errors.As against
// *TornTailError yields the byte offset to truncate the log at before
// appending again.
var ErrTornTail = errors.New("journal: torn tail")

// TornTailError carries the location of a torn final line.
type TornTailError struct {
	// Offset is the byte offset where the torn line starts: the length
	// of the valid prefix of the log.
	Offset int64
	// Line is the 1-based line number of the torn line.
	Line int
	// Cause is the decode or validation error the line produced.
	Cause error
}

func (e *TornTailError) Error() string {
	return fmt.Sprintf("journal: torn tail at line %d (valid prefix %d bytes): %v", e.Line, e.Offset, e.Cause)
}

// Unwrap makes the error match both ErrTornTail and its cause.
func (e *TornTailError) Unwrap() []error { return []error{ErrTornTail, e.Cause} }

// Read decodes all events from r, checking sequence continuity. A
// malformed final line (crash mid-append) is tolerated: Read returns
// every complete event plus a *TornTailError wrapping ErrTornTail.
// Malformed lines with events after them, and sequence gaps anywhere,
// remain hard errors — they mean mid-log corruption, not a torn tail.
func Read(r io.Reader) ([]Event, error) {
	d := NewDecoder(r)
	var out []Event
	for {
		e, err := d.Next()
		switch {
		case err == nil:
			out = append(out, e)
		case err == io.EOF:
			return out, nil
		case errors.Is(err, ErrTornTail):
			metricTornTails.Inc()
			return out, err
		default:
			return nil, err
		}
	}
}

// hasContent reports whether anything beyond whitespace remains in br.
func hasContent(br *bufio.Reader) bool {
	for {
		b, err := br.ReadByte()
		if err != nil {
			return false
		}
		switch b {
		case ' ', '\t', '\r', '\n':
			continue
		default:
			return true
		}
	}
}

// State is the result of replaying a journal.
type State struct {
	// Tree is the reconstructed referral tree (labels carry names).
	Tree *tree.Tree
	// ByName maps participant names to node ids.
	ByName map[string]tree.NodeID
	// LastSeq is the sequence number of the last applied event (0 for an
	// empty journal).
	LastSeq uint64
	// Quarantined holds the names whose subtrees are currently withheld
	// from payout.
	Quarantined map[string]bool
	// Ledger holds the settled epochs and claims the journal witnessed.
	Ledger *Ledger
}

// Replay applies events (in order) on top of an optional base state.
// Pass nil to start from an empty tree.
func Replay(base *State, events []Event) (*State, error) {
	st := base
	if st == nil {
		st = &State{Tree: tree.New(), ByName: make(map[string]tree.NodeID)}
	}
	if st.Quarantined == nil {
		st.Quarantined = make(map[string]bool)
	}
	if st.Ledger == nil {
		st.Ledger = NewLedger()
	}
	for _, e := range events {
		if err := e.Validate(); err != nil {
			return nil, err
		}
		if e.Seq <= st.LastSeq {
			return nil, fmt.Errorf("journal: event %d replayed out of order (last %d)", e.Seq, st.LastSeq)
		}
		switch e.Kind {
		case KindJoin:
			if _, dup := st.ByName[e.Name]; dup {
				return nil, fmt.Errorf("journal: duplicate join of %q at seq %d", e.Name, e.Seq)
			}
			parent := tree.Root
			if e.Sponsor != "" {
				p, ok := st.ByName[e.Sponsor]
				if !ok {
					return nil, fmt.Errorf("journal: unknown sponsor %q at seq %d", e.Sponsor, e.Seq)
				}
				parent = p
			}
			id, err := st.Tree.Add(parent, 0)
			if err != nil {
				return nil, fmt.Errorf("journal: seq %d: %w", e.Seq, err)
			}
			if err := st.Tree.SetLabel(id, e.Name); err != nil {
				return nil, err
			}
			st.ByName[e.Name] = id
		case KindContribute:
			id, ok := st.ByName[e.Name]
			if !ok {
				return nil, fmt.Errorf("journal: contribution by unknown %q at seq %d", e.Name, e.Seq)
			}
			if err := st.Tree.AddContribution(id, e.Amount); err != nil {
				return nil, fmt.Errorf("journal: seq %d: %w", e.Seq, err)
			}
		case KindQuarantine:
			if _, ok := st.ByName[e.Name]; !ok {
				return nil, fmt.Errorf("journal: quarantine of unknown %q at seq %d", e.Name, e.Seq)
			}
			if st.Quarantined[e.Name] {
				return nil, fmt.Errorf("journal: duplicate quarantine of %q at seq %d", e.Name, e.Seq)
			}
			st.Quarantined[e.Name] = true
		case KindUnquarantine:
			if !st.Quarantined[e.Name] {
				return nil, fmt.Errorf("journal: unquarantine of unflagged %q at seq %d", e.Name, e.Seq)
			}
			delete(st.Quarantined, e.Name)
		case KindSettle:
			for _, r := range e.Rewards {
				if _, ok := st.ByName[r.Name]; !ok {
					return nil, fmt.Errorf("journal: settle share for unknown %q at seq %d", r.Name, e.Seq)
				}
			}
			if err := st.Ledger.ApplySettle(e); err != nil {
				return nil, fmt.Errorf("journal: seq %d: %w", e.Seq, err)
			}
		case KindClaim:
			if _, ok := st.ByName[e.Name]; !ok {
				return nil, fmt.Errorf("journal: claim by unknown %q at seq %d", e.Name, e.Seq)
			}
			if err := st.Ledger.ApplyClaim(e); err != nil {
				return nil, fmt.Errorf("journal: seq %d: %w", e.Seq, err)
			}
		}
		st.LastSeq = e.Seq
		metricReplays.Inc()
	}
	return st, nil
}

// StateFromTree rebuilds the replay state of an existing labelled tree
// (e.g. a decoded snapshot), assigning it the given last sequence
// number. Labels must be unique.
func StateFromTree(t *tree.Tree, lastSeq uint64) (*State, error) {
	st := &State{Tree: t, ByName: make(map[string]tree.NodeID, t.NumParticipants()), LastSeq: lastSeq, Quarantined: make(map[string]bool), Ledger: NewLedger()}
	for _, u := range t.Nodes() {
		name := t.Label(u)
		if _, dup := st.ByName[name]; dup {
			return nil, fmt.Errorf("journal: duplicate participant name %q in snapshot", name)
		}
		st.ByName[name] = u
	}
	return st, nil
}
