package journal

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// binaryTestEvents is a small log exercising every kind and both string
// fields.
var binaryTestEvents = []Event{
	{Seq: 1, Kind: KindJoin, Name: "alice"},
	{Seq: 2, Kind: KindJoin, Name: "bob", Sponsor: "alice"},
	{Seq: 3, Kind: KindContribute, Name: "bob", Amount: 2.5},
	{Seq: 4, Kind: KindQuarantine, Name: "bob"},
	{Seq: 5, Kind: KindUnquarantine, Name: "bob"},
	{Seq: 6, Kind: KindContribute, Name: "alice", Amount: 0.125},
}

// TestBinaryRecordRoundTrip: encode → decode through the stream Decoder
// → re-encode must reproduce the bytes exactly (the canonical-encoding
// property replication's rolling hash depends on).
func TestBinaryRecordRoundTrip(t *testing.T) {
	var log bytes.Buffer
	w := NewWriterMode(&log, 1, ModeBinary)
	for _, e := range binaryTestEvents {
		e.Seq = 0 // Writer assigns
		if _, err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	first := append([]byte(nil), log.Bytes()...)

	d := NewDecoder(bytes.NewReader(first))
	var reenc bytes.Buffer
	enc := NewEncoderMode(&reenc, ModeBinary)
	n := 0
	for {
		e, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("decode record %d: %v", n+1, err)
		}
		if d.Mode() != ModeBinary {
			t.Fatalf("record %d: Mode() = %v, want binary", n+1, d.Mode())
		}
		if !e.Equal(binaryTestEvents[n]) {
			t.Fatalf("record %d = %+v, want %+v", n+1, e, binaryTestEvents[n])
		}
		if err := enc.Encode(e); err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != len(binaryTestEvents) {
		t.Fatalf("decoded %d events, want %d", n, len(binaryTestEvents))
	}
	if !bytes.Equal(first, reenc.Bytes()) {
		t.Fatalf("re-encoded log differs from original\nfirst: %x\nreenc: %x", first, reenc.Bytes())
	}
	if d.Offset() != int64(len(first)) {
		t.Fatalf("Offset = %d, want %d", d.Offset(), len(first))
	}
}

// TestMixedFormatLog: JSON lines, heartbeats, and binary records in one
// stream — the in-place migration shape — decode in order, and
// Decoder.Mode tracks each record's own format.
func TestMixedFormatLog(t *testing.T) {
	var log bytes.Buffer
	jw := NewWriter(&log, 1) // JSON
	if _, err := jw.Append(Event{Kind: KindJoin, Name: "alice"}); err != nil {
		t.Fatal(err)
	}
	log.WriteString("\n") // heartbeat between formats
	bw := NewWriterMode(&log, 2, ModeBinary)
	if _, err := bw.Append(Event{Kind: KindContribute, Name: "alice", Amount: 1}); err != nil {
		t.Fatal(err)
	}
	jw2 := NewWriterMode(&log, 3, ModeJSON)
	if _, err := jw2.Append(Event{Kind: KindQuarantine, Name: "alice"}); err != nil {
		t.Fatal(err)
	}

	d := NewDecoder(bytes.NewReader(log.Bytes()))
	wantModes := []Mode{ModeJSON, ModeBinary, ModeJSON}
	for i, want := range wantModes {
		e, err := d.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i+1, err)
		}
		if e.Seq != uint64(i+1) {
			t.Fatalf("record %d: seq = %d", i+1, e.Seq)
		}
		if d.Mode() != want {
			t.Fatalf("record %d: mode = %v, want %v", i+1, d.Mode(), want)
		}
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("trailing Next = %v, want EOF", err)
	}
}

// TestWriterEncoderByteEquality: a Writer and an Encoder in the same
// mode must produce identical bytes for the same events, in both modes
// — the contract that lets a follower hash re-encoded events and match
// the primary's file.
func TestWriterEncoderByteEquality(t *testing.T) {
	for _, mode := range []Mode{ModeJSON, ModeBinary} {
		var viaWriter, viaEncoder bytes.Buffer
		w := NewWriterMode(&viaWriter, 1, mode)
		enc := NewEncoderMode(&viaEncoder, mode)
		for _, e := range binaryTestEvents {
			e.Seq = 0
			persisted, err := w.Append(e)
			if err != nil {
				t.Fatal(err)
			}
			if err := enc.Encode(persisted); err != nil {
				t.Fatal(err)
			}
		}
		if !bytes.Equal(viaWriter.Bytes(), viaEncoder.Bytes()) {
			t.Fatalf("%v: Writer and Encoder bytes differ", mode)
		}
	}
}

// TestBinaryTornTail: truncating a binary log mid-record yields a
// TornTailError whose Offset is the complete-record prefix, exactly as
// for a torn JSON line — the repair path is shared.
func TestBinaryTornTail(t *testing.T) {
	var log bytes.Buffer
	w := NewWriterMode(&log, 1, ModeBinary)
	var prefixAfter2, prefixAfter3 int
	for i, e := range binaryTestEvents {
		e.Seq = 0
		if _, err := w.Append(e); err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			prefixAfter2 = log.Len()
		}
		if i == 2 {
			prefixAfter3 = log.Len()
		}
	}
	// Truncate the log inside the third record, at every possible length.
	full := log.Bytes()
	for cut := prefixAfter2 + 1; cut < prefixAfter3; cut++ {
		events, err := Read(bytes.NewReader(full[:cut]))
		var torn *TornTailError
		if !errors.As(err, &torn) {
			t.Fatalf("cut at %d: err = %v, want torn tail", cut, err)
		}
		if torn.Offset != int64(prefixAfter2) {
			t.Fatalf("cut at %d: Offset = %d, want %d", cut, torn.Offset, prefixAfter2)
		}
		if len(events) != 2 {
			t.Fatalf("cut at %d: %d events survive, want 2", cut, len(events))
		}
	}
}

// TestBinaryCorruptTail: flipping a byte in the final record fails its
// CRC and is classified as a torn tail (repairable); the same flip
// mid-log is a hard error, because a valid record after it proves the
// damage is not an interrupted append.
func TestBinaryCorruptTail(t *testing.T) {
	var log bytes.Buffer
	w := NewWriterMode(&log, 1, ModeBinary)
	offsets := make([]int, 0, len(binaryTestEvents))
	for _, e := range binaryTestEvents {
		e.Seq = 0
		if _, err := w.Append(e); err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, log.Len())
	}
	full := log.Bytes()
	lastStart := offsets[len(offsets)-2]

	// Flip every byte of the final record in turn.
	for i := lastStart; i < len(full); i++ {
		data := append([]byte(nil), full...)
		data[i] ^= 0x40
		events, err := Read(bytes.NewReader(data))
		if err == nil {
			t.Fatalf("flip at %d: corrupt record decoded cleanly", i)
		}
		if !errors.Is(err, ErrTornTail) {
			t.Fatalf("flip at %d: err = %v, want torn tail", i, err)
		}
		var torn *TornTailError
		errors.As(err, &torn)
		if torn.Offset != int64(lastStart) {
			t.Fatalf("flip at %d: Offset = %d, want %d", i, torn.Offset, lastStart)
		}
		if len(events) != len(binaryTestEvents)-1 {
			t.Fatalf("flip at %d: %d events survive, want %d", i, len(events), len(binaryTestEvents)-1)
		}
	}

	// The same flip in a record with valid records behind it must be a
	// hard error, not a repair.
	data := append([]byte(nil), full...)
	data[offsets[1]+6] ^= 0x40 // inside the third record's payload
	if _, err := Read(bytes.NewReader(data)); err == nil || errors.Is(err, ErrTornTail) {
		t.Fatalf("mid-log corruption: err = %v, want hard error", err)
	}
}

// TestBinaryRejectsNonCanonicalVarint: a payload-length or field varint
// padded with a redundant continuation byte must not decode, even with
// a recomputed CRC — one event, one byte representation.
func TestBinaryRejectsNonCanonicalVarint(t *testing.T) {
	rec, err := AppendBinaryRecord(nil, Event{Seq: 1, Kind: KindJoin, Name: "a"})
	if err != nil {
		t.Fatal(err)
	}
	// rec[1] is the one-byte payload length; re-frame with the same
	// payload but a two-byte (non-minimal) length prefix.
	payload := rec[2 : len(rec)-4]
	crc := rec[len(rec)-4:]
	padded := append([]byte{tagBinaryV1, byte(len(payload)) | 0x80, 0x00}, payload...)
	padded = append(padded, crc...)
	if _, err := Read(bytes.NewReader(padded)); err == nil {
		t.Fatal("non-canonical length prefix decoded cleanly")
	}
}

// TestBinaryRejectsOversizedLength: a declared payload length beyond
// maxBinaryPayload must fail without attempting the allocation.
func TestBinaryRejectsOversizedLength(t *testing.T) {
	data := []byte{tagBinaryV1, 0xff, 0xff, 0xff, 0xff, 0x7f} // ~34 GiB
	data = append(data, strings.Repeat("x", 64)...)
	if _, err := Read(bytes.NewReader(data)); err == nil || errors.Is(err, ErrTornTail) {
		t.Fatalf("oversized length with content behind it: err = %v, want hard error", err)
	}
}

// TestParseMode covers the flag-facing parser.
func TestParseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
		ok   bool
	}{
		{"json", ModeJSON, true},
		{"binary", ModeBinary, true},
		{"ndjson", 0, false},
		{"", 0, false},
	} {
		got, err := ParseMode(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseMode(%q) = %v, %v", tc.in, got, err)
		}
	}
	if ModeBinary.String() != "binary" || ModeJSON.String() != "json" {
		t.Error("Mode.String mismatch")
	}
}
