package journal

import (
	"bytes"
	"strings"
	"testing"
)

// settleFixtureLog returns a log exercising every ledger interaction:
// two settled epochs with carry-over, claims against both, in the
// given record format.
func settleFixtureEvents() []Event {
	return []Event{
		{Seq: 1, Kind: KindJoin, Name: "alice"},
		{Seq: 2, Kind: KindJoin, Name: "bob", Sponsor: "alice"},
		{Seq: 3, Kind: KindContribute, Name: "bob", Amount: 10},
		{Seq: 4, Kind: KindSettle, Epoch: 1, Pool: 5, CTotal: 10,
			Rewards: []RewardShare{{Name: "alice", Amount: 2}, {Name: "bob", Amount: 1.5}}},
		{Seq: 5, Kind: KindClaim, Name: "bob", Epoch: 1, Amount: 1.5},
		{Seq: 6, Kind: KindContribute, Name: "alice", Amount: 4},
		{Seq: 7, Kind: KindSettle, Epoch: 2, Pool: 3.5, CTotal: 14,
			Rewards: []RewardShare{{Name: "alice", Amount: 3.5}}},
		{Seq: 8, Kind: KindClaim, Name: "alice", Epoch: 1, Amount: 2},
		{Seq: 9, Kind: KindClaim, Name: "alice", Epoch: 2, Amount: 3.5},
	}
}

func TestSettleClaimRoundTripBothFormats(t *testing.T) {
	events := settleFixtureEvents()
	for _, mode := range []Mode{ModeJSON, ModeBinary} {
		t.Run(mode.String(), func(t *testing.T) {
			var log bytes.Buffer
			w := NewWriterMode(&log, 1, mode)
			for _, e := range events {
				e.Seq = 0
				if _, err := w.Append(e); err != nil {
					t.Fatalf("append %+v: %v", e, err)
				}
			}
			got, err := Read(bytes.NewReader(log.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(events) {
				t.Fatalf("read %d events, want %d", len(got), len(events))
			}
			for i := range got {
				if !got[i].Equal(events[i]) {
					t.Fatalf("event %d = %+v, want %+v", i, got[i], events[i])
				}
			}
			// Re-encoding the decoded events reproduces the log byte for
			// byte (the replication property, now for settle/claim too).
			var reenc bytes.Buffer
			enc := NewEncoderMode(&reenc, mode)
			for _, e := range got {
				if err := enc.Encode(e); err != nil {
					t.Fatal(err)
				}
			}
			if !bytes.Equal(log.Bytes(), reenc.Bytes()) {
				t.Fatalf("re-encoded log differs from original in mode %v", mode)
			}
		})
	}
}

func TestReplayBuildsLedger(t *testing.T) {
	st, err := Replay(nil, settleFixtureEvents())
	if err != nil {
		t.Fatal(err)
	}
	l := st.Ledger
	if l.Epochs() != 2 {
		t.Fatalf("Epochs() = %d, want 2", l.Epochs())
	}
	if cPrev, carry := l.AccrualBasis(); cPrev != 14 || carry != 0 {
		t.Fatalf("AccrualBasis() = %v, %v, want 14, 0", cPrev, carry)
	}
	if c := l.CarryOut(1); c != 1.5 {
		t.Fatalf("CarryOut(1) = %v, want 1.5", c)
	}
	if got := l.SettledOf("alice"); got != 5.5 {
		t.Fatalf("SettledOf(alice) = %v, want 5.5", got)
	}
	if got := l.ClaimedOf("alice"); got != 5.5 {
		t.Fatalf("ClaimedOf(alice) = %v, want 5.5", got)
	}
	if got := l.ClaimedAmount(1); got != 3.5 {
		t.Fatalf("ClaimedAmount(1) = %v, want 3.5", got)
	}
	if !l.HasClaimed(1, "bob") || l.HasClaimed(2, "bob") {
		t.Fatal("claim flags wrong")
	}
	se, ok := l.Epoch(1)
	if !ok {
		t.Fatal("Epoch(1) missing")
	}
	// Claimed preserves journal arrival order: bob first (seq 5), then
	// alice (seq 8) — the order every recovery path reproduces.
	if len(se.Claimed) != 2 || se.Claimed[0] != "bob" || se.Claimed[1] != "alice" {
		t.Fatalf("Epoch(1).Claimed = %v, want [bob alice]", se.Claimed)
	}
}

func TestReplayRejectsLedgerViolations(t *testing.T) {
	base := settleFixtureEvents()[:4] // through the first settle
	cases := []struct {
		name string
		e    Event
		want string
	}{
		{"epoch out of order", Event{Kind: KindSettle, Epoch: 3, Pool: 1, CTotal: 10}, "out of order"},
		{"pool overdrawn", Event{Kind: KindSettle, Epoch: 2, Pool: 1, CTotal: 12,
			Rewards: []RewardShare{{Name: "alice", Amount: 2}}}, "overdraws pool"},
		{"ctotal regression", Event{Kind: KindSettle, Epoch: 2, Pool: 1, CTotal: 9}, "regresses"},
		{"share for unknown", Event{Kind: KindSettle, Epoch: 2, Pool: 1, CTotal: 10,
			Rewards: []RewardShare{{Name: "mallory", Amount: 1}}}, "unknown"},
		{"shares not ascending", Event{Kind: KindSettle, Epoch: 2, Pool: 4, CTotal: 12,
			Rewards: []RewardShare{{Name: "bob", Amount: 1}, {Name: "alice", Amount: 1}}}, "ascending"},
		{"claim unsettled epoch", Event{Kind: KindClaim, Name: "bob", Epoch: 2, Amount: 1}, "unsettled"},
		{"claim without share", Event{Kind: KindClaim, Name: "bob", Epoch: 1, Amount: 1}, ""},
		{"claim amount mismatch", Event{Kind: KindClaim, Name: "alice", Epoch: 1, Amount: 2.0000001}, "share is"},
		{"join with epoch", Event{Kind: KindJoin, Name: "carol", Epoch: 1}, "ledger fields"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := tc.e
			e.Seq = 5
			_, err := Replay(nil, append(append([]Event(nil), base...), e))
			if err == nil {
				t.Fatalf("replay accepted %+v", e)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// The same claim twice is the idempotency core: second apply fails.
	dup := Event{Seq: 6, Kind: KindClaim, Name: "bob", Epoch: 1, Amount: 1.5}
	first := Event{Seq: 5, Kind: KindClaim, Name: "bob", Epoch: 1, Amount: 1.5}
	if _, err := Replay(nil, append(append([]Event(nil), base...), first, dup)); err == nil {
		t.Fatal("replay accepted a duplicate claim")
	} else if !strings.Contains(err.Error(), "duplicate claim") {
		t.Fatalf("duplicate claim error = %q", err)
	}
}

func TestLedgerSnapshotRoundTrip(t *testing.T) {
	st, err := Replay(nil, settleFixtureEvents())
	if err != nil {
		t.Fatal(err)
	}
	epochs := st.Ledger.Snapshot()
	rebuilt, err := LedgerFromEpochs(epochs)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.Epochs() != st.Ledger.Epochs() {
		t.Fatalf("rebuilt %d epochs, want %d", rebuilt.Epochs(), st.Ledger.Epochs())
	}
	for _, name := range []string{"alice", "bob"} {
		if rebuilt.SettledOf(name) != st.Ledger.SettledOf(name) {
			t.Fatalf("SettledOf(%s) drifted through snapshot", name)
		}
		if rebuilt.ClaimedOf(name) != st.Ledger.ClaimedOf(name) {
			t.Fatalf("ClaimedOf(%s) drifted through snapshot", name)
		}
	}
	if c1, c2 := rebuilt.CarryOut(1), st.Ledger.CarryOut(1); c1 != c2 {
		t.Fatalf("CarryOut drifted: %v != %v", c1, c2)
	}
	// A corrupt snapshot — claim of a share that does not exist — is
	// rejected, not silently absorbed.
	bad := st.Ledger.Snapshot()
	bad[0].Claimed = append(bad[0].Claimed, "mallory")
	if _, err := LedgerFromEpochs(bad); err == nil {
		t.Fatal("LedgerFromEpochs accepted a claim without a share")
	}
	// Empty ledgers snapshot to nil so pre-settlement snapshot bytes
	// stay identical to older releases.
	if NewLedger().Snapshot() != nil {
		t.Fatal("empty ledger snapshot not nil")
	}
}
