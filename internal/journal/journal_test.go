package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"

	"incentivetree/internal/tree"
)

func TestEventValidate(t *testing.T) {
	tests := []struct {
		name    string
		e       Event
		wantErr bool
	}{
		{"valid join", Event{Seq: 1, Kind: KindJoin, Name: "a"}, false},
		{"valid sponsored join", Event{Seq: 1, Kind: KindJoin, Name: "b", Sponsor: "a"}, false},
		{"valid contribute", Event{Seq: 1, Kind: KindContribute, Name: "a", Amount: 2}, false},
		{"join without name", Event{Seq: 1, Kind: KindJoin}, true},
		{"join with amount", Event{Seq: 1, Kind: KindJoin, Name: "a", Amount: 1}, true},
		{"contribute without name", Event{Seq: 1, Kind: KindContribute, Amount: 1}, true},
		{"contribute zero", Event{Seq: 1, Kind: KindContribute, Name: "a"}, true},
		{"contribute negative", Event{Seq: 1, Kind: KindContribute, Name: "a", Amount: -1}, true},
		{"unknown kind", Event{Seq: 1, Kind: "frobnicate", Name: "a"}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.e.Validate(); (err != nil) != tc.wantErr {
				t.Fatalf("Validate() = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

func TestWriterAssignsSequence(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	e1, err := w.Append(Event{Kind: KindJoin, Name: "a"})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := w.Append(Event{Kind: KindContribute, Name: "a", Amount: 1})
	if err != nil {
		t.Fatal(err)
	}
	if e1.Seq != 1 || e2.Seq != 2 {
		t.Fatalf("sequences = %d, %d", e1.Seq, e2.Seq)
	}
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Fatalf("lines = %d", got)
	}
}

func TestWriterRejectsInvalid(t *testing.T) {
	w := NewWriter(&bytes.Buffer{}, 1)
	if _, err := w.Append(Event{Kind: KindContribute, Name: "a", Amount: -1}); err == nil {
		t.Fatal("invalid event should be rejected")
	}
	// Sequence not consumed by the failed append.
	e, err := w.Append(Event{Kind: KindJoin, Name: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if e.Seq != 1 {
		t.Fatalf("seq = %d, want 1", e.Seq)
	}
}

func TestWriterConcurrentAppends(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 1)
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := w.Append(Event{Kind: KindJoin, Name: "x"}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	// All 50 lines present with distinct, gap-free sequences. (The log
	// itself has duplicate names; Read only checks sequencing.)
	events, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 50 {
		t.Fatalf("events = %d", len(events))
	}
}

func TestReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 1)
	want := []Event{
		{Kind: KindJoin, Name: "ada"},
		{Kind: KindJoin, Name: "bo", Sponsor: "ada"},
		{Kind: KindContribute, Name: "bo", Amount: 2.5},
	}
	for _, e := range want {
		if _, err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("events = %d", len(got))
	}
	if got[2].Amount != 2.5 || got[1].Sponsor != "ada" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestReadDetectsGapsAndGarbage(t *testing.T) {
	gap := `{"seq":1,"kind":"join","name":"a"}
{"seq":3,"kind":"join","name":"b"}`
	if _, err := Read(strings.NewReader(gap)); err == nil {
		t.Fatal("sequence gap should be detected")
	}
	if _, err := Read(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage should be rejected")
	}
	// Blank lines are tolerated.
	ok := "{\"seq\":1,\"kind\":\"join\",\"name\":\"a\"}\n\n"
	if _, err := Read(strings.NewReader(ok)); err != nil {
		t.Fatalf("blank line rejected: %v", err)
	}
}

func TestReadTornTail(t *testing.T) {
	full := `{"seq":1,"kind":"join","name":"ada"}
{"seq":2,"kind":"contribute","name":"ada","amount":2}
`
	torn := full + `{"seq":3,"kind":"contri`
	events, err := Read(strings.NewReader(torn))
	if !errors.Is(err, ErrTornTail) {
		t.Fatalf("err = %v, want ErrTornTail", err)
	}
	if len(events) != 2 || events[1].Amount != 2 {
		t.Fatalf("events = %+v, want the 2 complete ones", events)
	}
	var tt *TornTailError
	if !errors.As(err, &tt) {
		t.Fatalf("err %v is not a *TornTailError", err)
	}
	if tt.Offset != int64(len(full)) {
		t.Fatalf("Offset = %d, want %d (length of valid prefix)", tt.Offset, len(full))
	}
	if tt.Line != 3 {
		t.Fatalf("Line = %d, want 3", tt.Line)
	}
	// Truncating at Offset and appending yields a clean log again.
	repaired := torn[:tt.Offset] + `{"seq":3,"kind":"contribute","name":"ada","amount":1}` + "\n"
	events, err = Read(strings.NewReader(repaired))
	if err != nil || len(events) != 3 {
		t.Fatalf("repaired log: events = %d, err = %v", len(events), err)
	}
}

func TestReadTornTailOnlyAtEnd(t *testing.T) {
	// A malformed line followed by a valid event is corruption, not a
	// torn tail: recovery must hard-fail rather than drop events.
	bad := `{"seq":1,"kind":"join","name":"ada"}
{"seq":2,"kind":"contri
{"seq":3,"kind":"join","name":"bo","sponsor":"ada"}
`
	if _, err := Read(strings.NewReader(bad)); errors.Is(err, ErrTornTail) || err == nil {
		t.Fatalf("mid-log corruption must be a hard error, got %v", err)
	}
	// Trailing whitespace after the torn line is still a torn tail.
	tornPlusBlank := "{\"seq\":1,\"kind\":\"join\",\"name\":\"ada\"}\n{\"seq\":2,\"ki\n \n\n"
	events, err := Read(strings.NewReader(tornPlusBlank))
	if !errors.Is(err, ErrTornTail) {
		t.Fatalf("err = %v, want ErrTornTail", err)
	}
	if len(events) != 1 {
		t.Fatalf("events = %d, want 1", len(events))
	}
}

func TestReadTornTailInvalidFinalEvent(t *testing.T) {
	// The final line parses as JSON but fails validation — e.g. a
	// truncated float left it with a zero amount. Still a torn tail.
	torn := `{"seq":1,"kind":"join","name":"ada"}
{"seq":2,"kind":"contribute","name":"ada","amount":0}
`
	events, err := Read(strings.NewReader(torn))
	if !errors.Is(err, ErrTornTail) {
		t.Fatalf("err = %v, want ErrTornTail", err)
	}
	if len(events) != 1 {
		t.Fatalf("events = %d, want 1", len(events))
	}
}

func TestReplayBuildsTree(t *testing.T) {
	events := []Event{
		{Seq: 1, Kind: KindJoin, Name: "ada"},
		{Seq: 2, Kind: KindJoin, Name: "bo", Sponsor: "ada"},
		{Seq: 3, Kind: KindContribute, Name: "ada", Amount: 2},
		{Seq: 4, Kind: KindContribute, Name: "bo", Amount: 3},
		{Seq: 5, Kind: KindContribute, Name: "bo", Amount: 1},
	}
	st, err := Replay(nil, events)
	if err != nil {
		t.Fatal(err)
	}
	if st.LastSeq != 5 {
		t.Fatalf("LastSeq = %d", st.LastSeq)
	}
	if got := st.Tree.Total(); got != 6 {
		t.Fatalf("Total = %v", got)
	}
	bo := st.ByName["bo"]
	if got := st.Tree.Contribution(bo); got != 4 {
		t.Fatalf("bo = %v", got)
	}
	if st.Tree.Parent(bo) != st.ByName["ada"] {
		t.Fatal("sponsorship lost")
	}
	if err := st.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReplayErrors(t *testing.T) {
	tests := []struct {
		name   string
		events []Event
	}{
		{"duplicate join", []Event{
			{Seq: 1, Kind: KindJoin, Name: "a"},
			{Seq: 2, Kind: KindJoin, Name: "a"},
		}},
		{"unknown sponsor", []Event{
			{Seq: 1, Kind: KindJoin, Name: "a", Sponsor: "ghost"},
		}},
		{"unknown contributor", []Event{
			{Seq: 1, Kind: KindContribute, Name: "ghost", Amount: 1},
		}},
		{"stale sequence", []Event{
			{Seq: 1, Kind: KindJoin, Name: "a"},
			{Seq: 1, Kind: KindJoin, Name: "b"},
		}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Replay(nil, tc.events); err == nil {
				t.Fatal("Replay should fail")
			}
		})
	}
}

func TestSnapshotPlusSuffixEqualsFullReplay(t *testing.T) {
	all := []Event{
		{Seq: 1, Kind: KindJoin, Name: "a"},
		{Seq: 2, Kind: KindContribute, Name: "a", Amount: 1},
		{Seq: 3, Kind: KindJoin, Name: "b", Sponsor: "a"},
		{Seq: 4, Kind: KindContribute, Name: "b", Amount: 2},
	}
	full, err := Replay(nil, all)
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot after the first two events...
	prefix, err := Replay(nil, all[:2])
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(prefix.Tree)
	if err != nil {
		t.Fatal(err)
	}
	var restored tree.Tree
	if err := json.Unmarshal(data, &restored); err != nil {
		t.Fatal(err)
	}
	base, err := StateFromTree(&restored, prefix.LastSeq)
	if err != nil {
		t.Fatal(err)
	}
	// ...then replay the suffix on top.
	recovered, err := Replay(base, all[2:])
	if err != nil {
		t.Fatal(err)
	}
	if !recovered.Tree.Equal(full.Tree) {
		t.Fatalf("snapshot+suffix != full replay:\n%s\nvs\n%s",
			recovered.Tree.Render(), full.Tree.Render())
	}
}

func TestStateFromTreeRejectsDuplicateNames(t *testing.T) {
	tr := tree.New()
	a := tr.MustAdd(tree.Root, 1)
	b := tr.MustAdd(tree.Root, 1)
	if err := tr.SetLabel(a, "same"); err != nil {
		t.Fatal(err)
	}
	if err := tr.SetLabel(b, "same"); err != nil {
		t.Fatal(err)
	}
	if _, err := StateFromTree(tr, 0); err == nil {
		t.Fatal("duplicate names should be rejected")
	}
}
