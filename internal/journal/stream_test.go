package journal

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// encodeAll renders events through a Writer, returning the exact
// on-disk byte form.
func encodeAll(t *testing.T, events []Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	jw := NewWriter(&buf, events[0].Seq)
	for _, e := range events {
		if _, err := jw.Append(Event{Kind: e.Kind, Name: e.Name, Sponsor: e.Sponsor, Amount: e.Amount}); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestDecoderYieldsEventsAndOffsets(t *testing.T) {
	events := []Event{
		{Seq: 1, Kind: KindJoin, Name: "a"},
		{Seq: 2, Kind: KindJoin, Name: "b", Sponsor: "a"},
		{Seq: 3, Kind: KindContribute, Name: "b", Amount: 2.5},
	}
	data := encodeAll(t, events)
	d := NewDecoder(bytes.NewReader(data))
	for i, want := range events {
		got, err := d.Next()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if !got.Equal(want) {
			t.Fatalf("event %d = %+v, want %+v", i, got, want)
		}
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("want io.EOF at end, got %v", err)
	}
	if d.Offset() != int64(len(data)) {
		t.Fatalf("Offset() = %d, want %d", d.Offset(), len(data))
	}
}

func TestDecoderSkipsBlankHeartbeats(t *testing.T) {
	data := "\n" + `{"seq":1,"kind":"join","name":"a"}` + "\n\n\n" + `{"seq":2,"kind":"contribute","name":"a","amount":1}` + "\n\n"
	d := NewDecoder(strings.NewReader(data))
	var seqs []uint64
	for {
		e, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, e.Seq)
	}
	if len(seqs) != 2 || seqs[0] != 1 || seqs[1] != 2 {
		t.Fatalf("decoded seqs %v, want [1 2]", seqs)
	}
	if d.Offset() != int64(len(data)) {
		t.Fatalf("Offset() = %d, want %d (blank lines count as consumed)", d.Offset(), len(data))
	}
}

func TestDecoderTornTailCarriesResumeOffset(t *testing.T) {
	whole := `{"seq":1,"kind":"join","name":"a"}` + "\n"
	data := whole + `{"seq":2,"kind":"contri` // append cut mid-record
	d := NewDecoder(strings.NewReader(data))
	if _, err := d.Next(); err != nil {
		t.Fatal(err)
	}
	_, err := d.Next()
	var torn *TornTailError
	if !errors.As(err, &torn) {
		t.Fatalf("want TornTailError, got %v", err)
	}
	if torn.Offset != int64(len(whole)) {
		t.Fatalf("torn offset %d, want %d", torn.Offset, len(whole))
	}
	if d.Offset() != int64(len(whole)) {
		t.Fatalf("decoder offset %d, want %d", d.Offset(), len(whole))
	}
	// Resuming from Offset on the completed stream yields the event the
	// tear hid — the tailing contract.
	completed := whole + `{"seq":2,"kind":"contribute","name":"a","amount":1}` + "\n"
	d2 := NewDecoder(strings.NewReader(completed[torn.Offset:]))
	d2.ExpectSeq(2)
	e, err := d2.Next()
	if err != nil || e.Seq != 2 {
		t.Fatalf("resume: got %+v, %v", e, err)
	}
}

func TestDecoderSequenceGap(t *testing.T) {
	data := `{"seq":1,"kind":"join","name":"a"}` + "\n" + `{"seq":3,"kind":"join","name":"b"}` + "\n"
	d := NewDecoder(strings.NewReader(data))
	if _, err := d.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Next(); err == nil || !strings.Contains(err.Error(), "sequence gap") {
		t.Fatalf("want sequence gap error, got %v", err)
	}
}

func TestDecoderExpectSeq(t *testing.T) {
	data := `{"seq":5,"kind":"join","name":"a"}` + "\n"
	d := NewDecoder(strings.NewReader(data))
	d.ExpectSeq(5)
	if _, err := d.Next(); err != nil {
		t.Fatalf("matching ExpectSeq failed: %v", err)
	}
	d2 := NewDecoder(strings.NewReader(data))
	d2.ExpectSeq(4)
	if _, err := d2.Next(); err == nil || !strings.Contains(err.Error(), "sequence gap") {
		t.Fatalf("want gap error for wrong first seq, got %v", err)
	}
}

func TestDecoderMidStreamCorruptionIsHard(t *testing.T) {
	data := "garbage not json\n" + `{"seq":1,"kind":"join","name":"a"}` + "\n"
	d := NewDecoder(strings.NewReader(data))
	_, err := d.Next()
	if err == nil || errors.Is(err, ErrTornTail) || err == io.EOF {
		t.Fatalf("mid-stream corruption must be a hard error, got %v", err)
	}
}

// TestEncoderMatchesWriterBytes pins the replication invariant: a
// re-encoded event is byte-identical to what the primary's Writer
// appended, so follower-side hashes of applied records equal hashes of
// the primary's journal file.
func TestEncoderMatchesWriterBytes(t *testing.T) {
	events := []Event{
		{Seq: 1, Kind: KindJoin, Name: "a"},
		{Seq: 2, Kind: KindJoin, Name: "b", Sponsor: "a"},
		{Seq: 3, Kind: KindContribute, Name: "b", Amount: 0.1},
		{Seq: 4, Kind: KindContribute, Name: "a", Amount: 1e-9},
	}
	want := encodeAll(t, events)

	// Round-trip: decode the journal bytes, re-encode with Encoder.
	var got bytes.Buffer
	enc := NewEncoder(&got)
	d := NewDecoder(bytes.NewReader(want))
	for {
		e, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(e); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("re-encoded stream differs from journal bytes:\n got %q\nwant %q", got.Bytes(), want)
	}
}

func TestEncoderRejectsInvalidEvents(t *testing.T) {
	enc := NewEncoder(io.Discard)
	if err := enc.Encode(Event{Seq: 1, Kind: KindContribute, Name: "a", Amount: -1}); err == nil {
		t.Fatal("want validation error for negative amount")
	}
}

func TestEncoderHeartbeatIsSkippedByDecoder(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.Heartbeat(); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(Event{Seq: 1, Kind: KindJoin, Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Heartbeat(); err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(&buf)
	if e, err := d.Next(); err != nil || e.Seq != 1 {
		t.Fatalf("got %+v, %v", e, err)
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("want io.EOF after trailing heartbeat, got %v", err)
	}
}

// TestReadMatchesDecoder cross-checks the batch reader against the
// incremental one on a log with a torn tail.
func TestReadMatchesDecoder(t *testing.T) {
	data := `{"seq":1,"kind":"join","name":"a"}` + "\n" +
		`{"seq":2,"kind":"contribute","name":"a","amount":3}` + "\n" +
		`{"seq":3,"kind":"contr`
	events, err := Read(strings.NewReader(data))
	var torn *TornTailError
	if !errors.As(err, &torn) {
		t.Fatalf("want torn tail from Read, got %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("Read returned %d events, want 2", len(events))
	}

	d := NewDecoder(strings.NewReader(data))
	var incr []Event
	for {
		e, derr := d.Next()
		if derr != nil {
			var dtorn *TornTailError
			if !errors.As(derr, &dtorn) || dtorn.Offset != torn.Offset || dtorn.Line != torn.Line {
				t.Fatalf("decoder end state %v, want torn tail at offset %d line %d", derr, torn.Offset, torn.Line)
			}
			break
		}
		incr = append(incr, e)
	}
	if len(incr) != len(events) {
		t.Fatalf("decoder yielded %d events, Read %d", len(incr), len(events))
	}
	for i := range incr {
		if !incr[i].Equal(events[i]) {
			t.Fatalf("event %d: decoder %+v vs Read %+v", i, incr[i], events[i])
		}
	}
}
