package journal

import (
	"fmt"
)

// The payout ledger. Settlement converts the continuously-recomputed
// reward table into immutable per-epoch history: each settle record
// freezes the shares granted against that epoch's budget pool, and
// each claim record marks one (participant, epoch) share as paid out.
// The Ledger is the replayed view of those records — it lives in this
// package, next to Quarantined, because it is journal state: every
// recovery path (checkpoint restore, kill -9 replay, follower
// bootstrap) rebuilds it through ApplySettle/ApplyClaim and therefore
// re-checks the same invariants the primary enforced at append time:
//
//   - epochs settle in order (epoch n+1 follows n, CTotal never
//     regresses);
//   - the shares of an epoch, subtracted sequentially in record order,
//     never overdraw its pool — the paper's R(T) ≤ Φ·C(T) budget
//     constraint as a per-epoch ledger invariant;
//   - a claim names a settled share, matches its amount bit for bit,
//     and is unique per (participant, epoch).
//
// Carry-over is derived, not stored: the pool minus the sequential sum
// of the shares is what the next epoch starts from. Deriving it from
// the record (rather than journaling it) keeps a single source of
// truth, and the sequential subtraction order makes the float result
// identical on every replica.

// SettledEpoch is one frozen epoch as carried in snapshots and served
// over HTTP. Rewards is strictly ascending by name; Claimed holds the
// claimants in journal arrival order (so snapshot encoding is
// deterministic and byte-stable across recovery paths).
type SettledEpoch struct {
	Epoch   uint64        `json:"epoch"`
	Pool    float64       `json:"pool"`
	CTotal  float64       `json:"ctotal"`
	Rewards []RewardShare `json:"rewards,omitempty"`
	Claimed []string      `json:"claimed,omitempty"`
}

// Ledger is the replayed settle/claim state of one campaign. Not safe
// for concurrent use; the server guards it with its state lock.
type Ledger struct {
	epochs []SettledEpoch
	// Per-epoch derived views, indexed epoch-1.
	shares     []map[string]float64 // name → granted share
	claimedSet []map[string]bool    // names already claimed
	carry      []float64            // pool minus sequential share sum
	settledSum []float64            // sequential share sum
	claimedSum []float64            // sequential claimed-amount sum
	// Cumulative per-participant accounting across all epochs, updated
	// in journal order.
	settledBy map[string]float64
	claimedBy map[string]float64
}

// NewLedger returns an empty ledger (no settled epochs).
func NewLedger() *Ledger {
	return &Ledger{settledBy: make(map[string]float64), claimedBy: make(map[string]float64)}
}

// Epochs reports the number of settled epochs.
func (l *Ledger) Epochs() int { return len(l.epochs) }

// NextEpoch is the epoch number the next settle must carry.
func (l *Ledger) NextEpoch() uint64 { return uint64(len(l.epochs)) + 1 }

// Epoch returns the settled epoch n (1-based). The returned value
// shares its slices with the ledger; callers must treat it as
// read-only.
func (l *Ledger) Epoch(n uint64) (SettledEpoch, bool) {
	if n == 0 || n > uint64(len(l.epochs)) {
		return SettledEpoch{}, false
	}
	return l.epochs[n-1], true
}

// AccrualBasis returns the contribution total the last settle ran up
// to and the carry-over it left unallocated — the basis the next
// epoch's pool accrues from. Both are zero for a fresh ledger.
func (l *Ledger) AccrualBasis() (cPrev, carry float64) {
	if len(l.epochs) == 0 {
		return 0, 0
	}
	n := len(l.epochs) - 1
	return l.epochs[n].CTotal, l.carry[n]
}

// SettledOf returns the cumulative amount settled to name across all
// epochs.
func (l *Ledger) SettledOf(name string) float64 { return l.settledBy[name] }

// ClaimedOf returns the cumulative amount name has claimed.
func (l *Ledger) ClaimedOf(name string) float64 { return l.claimedBy[name] }

// Share returns name's granted share in epoch n, if any.
func (l *Ledger) Share(n uint64, name string) (float64, bool) {
	if n == 0 || n > uint64(len(l.epochs)) {
		return 0, false
	}
	amt, ok := l.shares[n-1][name]
	return amt, ok
}

// HasClaimed reports whether name already claimed its share of epoch n.
func (l *Ledger) HasClaimed(n uint64, name string) bool {
	if n == 0 || n > uint64(len(l.epochs)) {
		return false
	}
	return l.claimedSet[n-1][name]
}

// SettledAmount returns the sequential sum of epoch n's shares (0 for
// unknown epochs).
func (l *Ledger) SettledAmount(n uint64) float64 {
	if n == 0 || n > uint64(len(l.epochs)) {
		return 0
	}
	return l.settledSum[n-1]
}

// ClaimedAmount returns the sequential sum of epoch n's claimed shares.
func (l *Ledger) ClaimedAmount(n uint64) float64 {
	if n == 0 || n > uint64(len(l.epochs)) {
		return 0
	}
	return l.claimedSum[n-1]
}

// CarryOut returns what epoch n left unallocated (derived: pool minus
// sequential share sum).
func (l *Ledger) CarryOut(n uint64) float64 {
	if n == 0 || n > uint64(len(l.epochs)) {
		return 0
	}
	return l.carry[n-1]
}

// ApplySettle validates and applies one settle event.
func (l *Ledger) ApplySettle(e Event) error {
	if e.Kind != KindSettle {
		return fmt.Errorf("journal: ApplySettle on %s event", e.Kind)
	}
	if err := e.Validate(); err != nil {
		return err
	}
	if e.Epoch != l.NextEpoch() {
		return fmt.Errorf("journal: settle of epoch %d out of order (next is %d)", e.Epoch, l.NextEpoch())
	}
	if cPrev, _ := l.AccrualBasis(); e.CTotal < cPrev {
		return fmt.Errorf("journal: settle ctotal %v regresses below %v", e.CTotal, cPrev)
	}
	// The budget invariant: subtracting the shares sequentially in
	// record order must never overdraw the pool. The same loop, in the
	// same order, computes the carry on every replica — no independent
	// re-summation that could disagree in the last ulp.
	remaining := e.Pool
	sum := 0.0
	shares := make(map[string]float64, len(e.Rewards))
	for _, r := range e.Rewards {
		remaining -= r.Amount
		sum += r.Amount
		if remaining < 0 {
			return fmt.Errorf("journal: settle of epoch %d overdraws pool %v at share %q", e.Epoch, e.Pool, r.Name)
		}
		shares[r.Name] = r.Amount
	}
	rewards := make([]RewardShare, len(e.Rewards))
	copy(rewards, e.Rewards)
	l.epochs = append(l.epochs, SettledEpoch{Epoch: e.Epoch, Pool: e.Pool, CTotal: e.CTotal, Rewards: rewards})
	l.shares = append(l.shares, shares)
	l.claimedSet = append(l.claimedSet, make(map[string]bool))
	l.carry = append(l.carry, remaining)
	l.settledSum = append(l.settledSum, sum)
	l.claimedSum = append(l.claimedSum, 0)
	for _, r := range rewards {
		l.settledBy[r.Name] += r.Amount
	}
	return nil
}

// ApplyClaim validates and applies one claim event.
func (l *Ledger) ApplyClaim(e Event) error {
	if e.Kind != KindClaim {
		return fmt.Errorf("journal: ApplyClaim on %s event", e.Kind)
	}
	if err := e.Validate(); err != nil {
		return err
	}
	if e.Epoch > uint64(len(l.epochs)) {
		return fmt.Errorf("journal: claim against unsettled epoch %d", e.Epoch)
	}
	i := e.Epoch - 1
	share, ok := l.shares[i][e.Name]
	if !ok {
		return fmt.Errorf("journal: claim by %q with no share in epoch %d", e.Name, e.Epoch)
	}
	if l.claimedSet[i][e.Name] {
		return fmt.Errorf("journal: duplicate claim by %q for epoch %d", e.Name, e.Epoch)
	}
	if e.Amount != share {
		return fmt.Errorf("journal: claim by %q for epoch %d carries %v, share is %v", e.Name, e.Epoch, e.Amount, share)
	}
	l.claimedSet[i][e.Name] = true
	l.epochs[i].Claimed = append(l.epochs[i].Claimed, e.Name)
	l.claimedSum[i] += e.Amount
	l.claimedBy[e.Name] += e.Amount
	return nil
}

// Snapshot returns a deep copy of the settled epochs, safe to hold
// after the ledger's lock is released (the checkpointer serializes it
// asynchronously). Nil for an empty ledger, so JSON snapshots of
// pre-settlement campaigns are byte-identical to older releases.
func (l *Ledger) Snapshot() []SettledEpoch {
	if len(l.epochs) == 0 {
		return nil
	}
	out := make([]SettledEpoch, len(l.epochs))
	for i, se := range l.epochs {
		cp := se
		cp.Rewards = append([]RewardShare(nil), se.Rewards...)
		cp.Claimed = append([]string(nil), se.Claimed...)
		out[i] = cp
	}
	return out
}

// LedgerFromEpochs rebuilds a ledger from snapshot data, re-checking
// every invariant by replaying each epoch through the same apply path
// the journal uses. A snapshot that violates the budget or claim rules
// is corrupt and rejected.
func LedgerFromEpochs(epochs []SettledEpoch) (*Ledger, error) {
	l := NewLedger()
	for _, se := range epochs {
		ev := Event{Kind: KindSettle, Epoch: se.Epoch, Pool: se.Pool, CTotal: se.CTotal, Rewards: se.Rewards}
		if err := l.ApplySettle(ev); err != nil {
			return nil, err
		}
		for _, name := range se.Claimed {
			amt, ok := l.Share(se.Epoch, name)
			if !ok {
				return nil, fmt.Errorf("journal: snapshot claim by %q with no share in epoch %d", name, se.Epoch)
			}
			if err := l.ApplyClaim(Event{Kind: KindClaim, Name: name, Epoch: se.Epoch, Amount: amt}); err != nil {
				return nil, err
			}
		}
	}
	return l, nil
}
