package journal

import (
	"bytes"
	"testing"
)

// mustRecord encodes e in the given mode or fails the fuzz setup.
func mustRecord(f *testing.F, e Event, mode Mode) []byte {
	f.Helper()
	rec, err := appendRecord(nil, e, mode)
	if err != nil {
		f.Fatal(err)
	}
	return rec
}

// settleSeedLog builds a small mixed-format log ending in a settle —
// the mixed-log legality the codec guarantees must extend to the new
// record kinds.
func settleSeedLog(f *testing.F) []byte {
	f.Helper()
	var log bytes.Buffer
	log.Write(mustRecord(f, Event{Seq: 1, Kind: KindJoin, Name: "alice"}, ModeJSON))
	log.Write(mustRecord(f, Event{Seq: 2, Kind: KindContribute, Name: "alice", Amount: 4}, ModeBinary))
	log.Write(mustRecord(f, Event{Seq: 3, Kind: KindSettle, Epoch: 1, Pool: 2, CTotal: 4,
		Rewards: []RewardShare{{Name: "alice", Amount: 1.5}}}, ModeBinary))
	log.Write(mustRecord(f, Event{Seq: 4, Kind: KindClaim, Name: "alice", Epoch: 1, Amount: 1.5}, ModeJSON))
	return log.Bytes()
}

// FuzzSettleRecordDecode extends the decode fuzzing to settle records:
// no input may panic or decode into an invalid event, and any accepted
// binary settle record must re-encode to the exact bytes it was
// decoded from (canonical encoding — replication's rolling hash and
// `itree convert` both depend on it). Seeds cover both formats and
// mixed logs.
func FuzzSettleRecordDecode(f *testing.F) {
	settle := Event{Seq: 7, Kind: KindSettle, Epoch: 3, Pool: 12.5, CTotal: 100,
		Rewards: []RewardShare{{Name: "alice", Amount: 4.25}, {Name: "bob", Amount: 8}}}
	empty := Event{Seq: 1, Kind: KindSettle, Epoch: 1, Pool: 0.5, CTotal: 1}
	for _, e := range []Event{settle, empty} {
		f.Add(mustRecord(f, e, ModeBinary))
		f.Add(mustRecord(f, e, ModeJSON))
	}
	f.Add(settleSeedLog(f))
	// Adversarial shapes: truncated share table, oversized share count,
	// non-ascending share names smuggled into a well-framed record.
	rec := mustRecord(f, settle, ModeBinary)
	f.Add(rec[:len(rec)-10])
	f.Add([]byte{tagBinaryV1, 0x10, 4, 1, 0, 0, 0xff, 0xff, 0xff, 0xff, 0x0f})
	bad := settle
	bad.Rewards = []RewardShare{{Name: "bob", Amount: 8}, {Name: "alice", Amount: 4.25}}
	if raw, err := AppendBinaryRecord(nil, bad); err == nil {
		f.Add(raw)
	}
	f.Fuzz(checkDecodeRoundTrip)
}

// FuzzClaimRecordDecode is the claim-record counterpart of
// FuzzSettleRecordDecode.
func FuzzClaimRecordDecode(f *testing.F) {
	claim := Event{Seq: 9, Kind: KindClaim, Name: "alice", Epoch: 2, Amount: 3.75}
	f.Add(mustRecord(f, claim, ModeBinary))
	f.Add(mustRecord(f, claim, ModeJSON))
	f.Add(settleSeedLog(f))
	// Truncated epoch varint and a claim with a zero epoch.
	rec := mustRecord(f, claim, ModeBinary)
	f.Add(rec[:len(rec)-5])
	f.Add([]byte(`{"seq":1,"kind":"claim","name":"a","amount":1}` + "\n"))
	f.Fuzz(checkDecodeRoundTrip)
}
