package journal

import (
	"bytes"
	"reflect"
	"testing"

	"incentivetree/internal/tree"
)

func TestQuarantineEventValidate(t *testing.T) {
	tests := []struct {
		name    string
		e       Event
		wantErr bool
	}{
		{"valid quarantine", Event{Seq: 1, Kind: KindQuarantine, Name: "a"}, false},
		{"valid unquarantine", Event{Seq: 1, Kind: KindUnquarantine, Name: "a"}, false},
		{"quarantine without name", Event{Seq: 1, Kind: KindQuarantine}, true},
		{"unquarantine without name", Event{Seq: 1, Kind: KindUnquarantine}, true},
		{"quarantine with sponsor", Event{Seq: 1, Kind: KindQuarantine, Name: "a", Sponsor: "b"}, true},
		{"quarantine with amount", Event{Seq: 1, Kind: KindQuarantine, Name: "a", Amount: 1}, true},
		{"unquarantine with amount", Event{Seq: 1, Kind: KindUnquarantine, Name: "a", Amount: 1}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.e.Validate(); (err != nil) != tc.wantErr {
				t.Fatalf("Validate() = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

func TestReplayQuarantine(t *testing.T) {
	st, err := Replay(nil, []Event{
		{Seq: 1, Kind: KindJoin, Name: "a"},
		{Seq: 2, Kind: KindJoin, Name: "b", Sponsor: "a"},
		{Seq: 3, Kind: KindContribute, Name: "b", Amount: 2},
		{Seq: 4, Kind: KindQuarantine, Name: "b"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Quarantined["b"] || len(st.Quarantined) != 1 {
		t.Fatalf("Quarantined = %v, want {b}", st.Quarantined)
	}
	// The raw contribution stays intact: quarantine only flags.
	id := st.ByName["b"]
	if got := st.Tree.Contribution(id); got != 2 {
		t.Fatalf("contribution after quarantine = %v, want 2", got)
	}
	st, err = Replay(st, []Event{{Seq: 5, Kind: KindUnquarantine, Name: "b"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Quarantined) != 0 {
		t.Fatalf("Quarantined after unquarantine = %v, want empty", st.Quarantined)
	}
}

func TestReplayQuarantineRejectsBadTransitions(t *testing.T) {
	base := []Event{{Seq: 1, Kind: KindJoin, Name: "a"}}
	tests := []struct {
		name string
		ev   Event
	}{
		{"unknown participant", Event{Seq: 2, Kind: KindQuarantine, Name: "ghost"}},
		{"unquarantine of unflagged", Event{Seq: 2, Kind: KindUnquarantine, Name: "a"}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			st, err := Replay(nil, base)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Replay(st, []Event{tc.ev}); err == nil {
				t.Fatal("Replay accepted invalid quarantine transition")
			}
		})
	}
	st, err := Replay(nil, append(base, Event{Seq: 2, Kind: KindQuarantine, Name: "a"}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(st, []Event{{Seq: 3, Kind: KindQuarantine, Name: "a"}}); err == nil {
		t.Fatal("Replay accepted a duplicate quarantine")
	}
}

func TestQuarantineRoundTripsThroughWriter(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 1)
	for _, e := range []Event{
		{Kind: KindJoin, Name: "a"},
		{Kind: KindQuarantine, Name: "a"},
		{Kind: KindUnquarantine, Name: "a"},
		{Kind: KindQuarantine, Name: "a"},
	} {
		if _, err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	events, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Replay(nil, events)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.Quarantined, map[string]bool{"a": true}) {
		t.Fatalf("Quarantined = %v, want {a}", st.Quarantined)
	}
}

func TestStateFromTreeInitializesQuarantine(t *testing.T) {
	tr := tree.New()
	if _, err := tr.Add(tree.Root, 1); err != nil {
		t.Fatal(err)
	}
	st, err := StateFromTree(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Quarantined == nil {
		t.Fatal("StateFromTree left Quarantined nil")
	}
	if _, err := Replay(st, []Event{{Seq: 2, Kind: KindQuarantine, Name: tr.Label(1)}}); err != nil {
		t.Fatalf("Replay on StateFromTree base: %v", err)
	}
}
