package journal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{
		"": SyncOS, "os": SyncOS, "interval": SyncInterval, "always": SyncAlways,
	} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseSyncPolicy(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	if _, err := ParseSyncPolicy("fsync-maybe"); err == nil {
		t.Error("unknown policy should fail")
	}
}

func TestOpenFileIntervalNeedsPositiveInterval(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	if _, err := OpenFile(path, SyncInterval, 0); err == nil {
		t.Fatal("interval policy without an interval should fail")
	}
	fw, err := OpenFile(path, SyncInterval, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	fw.Close()
}

func TestFileWriterAppendAndSize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	fw, err := OpenFile(path, SyncOS, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fw.Close()
	if fw.Size() != 0 {
		t.Fatalf("fresh file size = %d", fw.Size())
	}
	lines := []string{"one\n", "second line\n", "three\n"}
	var want int64
	for _, l := range lines {
		n, err := fw.Write([]byte(l))
		if err != nil || n != len(l) {
			t.Fatalf("Write = %d, %v", n, err)
		}
		want += int64(n)
		if fw.Size() != want {
			t.Fatalf("Size = %d, want %d", fw.Size(), want)
		}
	}
	// Reopening resumes at the existing size.
	fw.Close()
	fw2, err := OpenFile(path, SyncOS, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fw2.Close()
	if fw2.Size() != want {
		t.Fatalf("reopened Size = %d, want %d", fw2.Size(), want)
	}
}

func TestFileWriterSyncAlwaysCounts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	fw, err := OpenFile(path, SyncAlways, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fw.Close()
	before := metricSyncs.Value()
	for i := 0; i < 3; i++ {
		if _, err := fw.Write([]byte("x\n")); err != nil {
			t.Fatal(err)
		}
	}
	if got := metricSyncs.Value() - before; got != 3 {
		t.Fatalf("itree_journal_syncs_total advanced by %d, want 3", got)
	}
}

func TestFileWriterIntervalSyncs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	// A 1ns interval has always elapsed, so every append syncs.
	fw, err := OpenFile(path, SyncInterval, time.Nanosecond)
	if err != nil {
		t.Fatal(err)
	}
	defer fw.Close()
	before := metricSyncs.Value()
	if _, err := fw.Write([]byte("x\n")); err != nil {
		t.Fatal(err)
	}
	if metricSyncs.Value() == before {
		t.Fatal("elapsed interval should trigger a sync")
	}
	// A huge interval never elapses mid-test: appends stay unsynced.
	fw2, err := OpenFile(filepath.Join(t.TempDir(), "k.log"), SyncInterval, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	defer fw2.Close()
	before = metricSyncs.Value()
	if _, err := fw2.Write([]byte("x\n")); err != nil {
		t.Fatal(err)
	}
	if metricSyncs.Value() != before {
		t.Fatal("unelapsed interval must not sync on append")
	}
}

func TestFileWriterCompactTo(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	fw, err := OpenFile(path, SyncOS, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fw.Close()
	prefix, suffix := "aaa\nbbb\n", "ccc\nddd\n"
	if _, err := fw.Write([]byte(prefix)); err != nil {
		t.Fatal(err)
	}
	keep := fw.Size()
	if _, err := fw.Write([]byte(suffix)); err != nil {
		t.Fatal(err)
	}

	dropped, err := fw.CompactTo(keep)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != keep {
		t.Fatalf("dropped %d bytes, want %d", dropped, keep)
	}
	if fw.Size() != int64(len(suffix)) {
		t.Fatalf("post-compact Size = %d, want %d", fw.Size(), len(suffix))
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != suffix {
		t.Fatalf("post-compact file = %q, want %q", data, suffix)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("compaction temp file left behind: %v", err)
	}

	// Appends after compaction land in the replacement file.
	if _, err := fw.Write([]byte("eee\n")); err != nil {
		t.Fatal(err)
	}
	data, _ = os.ReadFile(path)
	if string(data) != suffix+"eee\n" {
		t.Fatalf("post-compact append: file = %q", data)
	}
}

func TestFileWriterCompactToEdgeCases(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	fw, err := OpenFile(path, SyncOS, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Write([]byte("abc\n")); err != nil {
		t.Fatal(err)
	}
	if n, err := fw.CompactTo(0); n != 0 || err != nil {
		t.Fatalf("CompactTo(0) = %d, %v; want no-op", n, err)
	}
	if _, err := fw.CompactTo(-1); err == nil {
		t.Error("negative offset should fail")
	}
	if _, err := fw.CompactTo(fw.Size() + 1); err == nil {
		t.Error("offset past EOF should fail")
	}
	fw.Close()
	if _, err := fw.Write([]byte("x")); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Errorf("write after close = %v", err)
	}
	if _, err := fw.CompactTo(1); err == nil {
		t.Error("compact after close should fail")
	}
	if err := fw.Close(); err != nil {
		t.Errorf("double close = %v", err)
	}
}

// TestFileWriterBacksJournalWriter wires a FileWriter under the event
// Writer and round-trips events through Read — the integration the
// store's campaigns rely on.
func TestFileWriterBacksJournalWriter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	fw, err := OpenFile(path, SyncAlways, 0)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(fw, 1)
	if _, err := w.Append(Event{Kind: KindJoin, Name: "ada"}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(Event{Kind: KindContribute, Name: "ada", Amount: 2}); err != nil {
		t.Fatal(err)
	}
	fw.Close()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[1].Seq != 2 || events[1].Amount != 2 {
		t.Fatalf("round-trip = %+v", events)
	}
}
