package journal

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestAppendBatchBytesIdentical: the group-commit primitive must write
// exactly the bytes N individual Appends would, with the same sequence
// numbers — this is what makes -batch-max=1 vs N a pure performance
// knob with no journal-format consequences.
func TestAppendBatchBytesIdentical(t *testing.T) {
	events := []Event{
		{Kind: KindJoin, Name: "ada"},
		{Kind: KindJoin, Name: "bob", Sponsor: "ada"},
		{Kind: KindContribute, Name: "ada", Amount: 1.5},
		{Kind: KindContribute, Name: "bob", Amount: 0.25},
	}

	var one, batch bytes.Buffer
	jw1 := NewWriter(&one, 1)
	for _, e := range events {
		if _, err := jw1.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	jw2 := NewWriter(&batch, 1)
	persisted, err := jw2.AppendBatch(events)
	if err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(one.Bytes(), batch.Bytes()) {
		t.Fatalf("batch bytes differ from sequential appends:\nseq:\n%s\nbatch:\n%s", one.String(), batch.String())
	}
	for i, e := range persisted {
		if e.Seq != uint64(i+1) {
			t.Fatalf("persisted[%d].Seq = %d, want %d", i, e.Seq, i+1)
		}
	}
	// Both writers continue from the same next sequence number.
	a, err := jw1.Append(Event{Kind: KindJoin, Name: "cora"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := jw2.Append(Event{Kind: KindJoin, Name: "cora"})
	if err != nil {
		t.Fatal(err)
	}
	if a.Seq != b.Seq || a.Seq != 5 {
		t.Fatalf("next seqs = %d, %d, want both 5", a.Seq, b.Seq)
	}
}

// TestAppendBatchSingleWrite: the whole batch must reach the
// underlying writer as one Write call (one fsync under SyncAlways).
func TestAppendBatchSingleWrite(t *testing.T) {
	cw := &countingWriter{}
	jw := NewWriter(cw, 1)
	_, err := jw.AppendBatch([]Event{
		{Kind: KindJoin, Name: "a"},
		{Kind: KindJoin, Name: "b"},
		{Kind: KindContribute, Name: "a", Amount: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cw.writes != 1 {
		t.Fatalf("writes = %d, want 1", cw.writes)
	}
}

type countingWriter struct {
	writes int
	buf    bytes.Buffer
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.writes++
	return w.buf.Write(p)
}

// TestAppendBatchValidationAtomic: one invalid event anywhere fails the
// whole batch before any byte is written or sequence consumed.
func TestAppendBatchValidationAtomic(t *testing.T) {
	var buf bytes.Buffer
	jw := NewWriter(&buf, 1)
	_, err := jw.AppendBatch([]Event{
		{Kind: KindJoin, Name: "a"},
		{Kind: KindContribute, Name: "a", Amount: -1}, // invalid
		{Kind: KindJoin, Name: "b"},
	})
	if err == nil {
		t.Fatal("expected validation error")
	}
	if buf.Len() != 0 {
		t.Fatalf("failed batch wrote %d bytes", buf.Len())
	}
	e, err := jw.Append(Event{Kind: KindJoin, Name: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if e.Seq != 1 {
		t.Fatalf("seq after failed batch = %d, want 1", e.Seq)
	}
}

func TestAppendBatchEmpty(t *testing.T) {
	var buf bytes.Buffer
	jw := NewWriter(&buf, 1)
	out, err := jw.AppendBatch(nil)
	if err != nil || out != nil {
		t.Fatalf("empty batch = %v, %v", out, err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty batch wrote %d bytes", buf.Len())
	}
}

// TestValidateNonFinite: NaN sails past `<= 0` comparisons (every NaN
// comparison is false) and none of NaN/±Inf are encodable as JSON —
// Validate must reject them before they reach the log.
func TestValidateNonFinite(t *testing.T) {
	for _, amount := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		e := Event{Seq: 1, Kind: KindContribute, Name: "a", Amount: amount}
		err := e.Validate()
		if err == nil {
			t.Fatalf("amount %v validated", amount)
		}
		if !strings.Contains(err.Error(), "finite") {
			t.Fatalf("amount %v error = %v, want mention of finiteness", amount, err)
		}
	}
	// The append paths both route through Validate.
	var buf bytes.Buffer
	jw := NewWriter(&buf, 1)
	if _, err := jw.Append(Event{Kind: KindContribute, Name: "a", Amount: math.NaN()}); err == nil {
		t.Fatal("Append accepted NaN")
	}
	if _, err := jw.AppendBatch([]Event{{Kind: KindContribute, Name: "a", Amount: math.Inf(1)}}); err == nil {
		t.Fatal("AppendBatch accepted +Inf")
	}
	if buf.Len() != 0 {
		t.Fatalf("rejected events wrote %d bytes", buf.Len())
	}
}
