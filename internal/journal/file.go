package journal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"incentivetree/internal/obs"
)

// metricSyncs counts explicit File.Sync calls issued by FileWriters, so
// operators can verify a sync policy is actually being exercised.
var metricSyncs = obs.Default().Counter("itree_journal_syncs_total",
	"Explicit fsync calls issued by journal file writers.")

// SyncPolicy selects when a FileWriter flushes appended events to stable
// storage.
type SyncPolicy string

// The sync policies.
const (
	// SyncOS leaves flushing to the operating system's page cache — the
	// historical behavior. A machine crash may lose recent events; a
	// process crash does not (writes go straight to the kernel).
	SyncOS SyncPolicy = "os"
	// SyncInterval fsyncs on the first append after SyncEvery has
	// elapsed since the previous sync, bounding machine-crash data loss
	// to roughly one interval of events.
	SyncInterval SyncPolicy = "interval"
	// SyncAlways fsyncs after every append. Durable but slow: every
	// write pays a device flush.
	SyncAlways SyncPolicy = "always"
)

// ParseSyncPolicy validates a policy string ("" means SyncOS).
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch SyncPolicy(s) {
	case "", SyncOS:
		return SyncOS, nil
	case SyncInterval:
		return SyncInterval, nil
	case SyncAlways:
		return SyncAlways, nil
	}
	return "", fmt.Errorf("journal: unknown sync policy %q (choose os, interval, always)", s)
}

// FileWriter is an append-only journal file with a configurable sync
// policy and support for checkpoint compaction. It is safe for
// concurrent use and implements io.Writer, so it can back a
// journal.Writer.
type FileWriter struct {
	path   string
	policy SyncPolicy
	every  time.Duration

	mu       sync.Mutex
	f        *os.File
	size     int64 // current file size in bytes
	lastSync time.Time
}

// OpenFile opens (creating if needed) the journal file at path for
// appending under the given sync policy. every is the flush period for
// SyncInterval and is ignored otherwise.
func OpenFile(path string, policy SyncPolicy, every time.Duration) (*FileWriter, error) {
	if policy == "" {
		policy = SyncOS
	}
	if policy == SyncInterval && every <= 0 {
		return nil, fmt.Errorf("journal: sync policy %q needs a positive interval", policy)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: stat %s: %w", path, err)
	}
	return &FileWriter{path: path, policy: policy, every: every, f: f, size: st.Size(), lastSync: time.Now()}, nil
}

// Write appends p and applies the sync policy. It implements io.Writer.
func (fw *FileWriter) Write(p []byte) (int, error) {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if fw.f == nil {
		return 0, errors.New("journal: file writer closed")
	}
	n, err := fw.f.Write(p)
	fw.size += int64(n)
	if err != nil {
		return n, err
	}
	switch fw.policy {
	case SyncAlways:
		err = fw.syncLocked()
	case SyncInterval:
		if time.Since(fw.lastSync) >= fw.every {
			err = fw.syncLocked()
		}
	}
	return n, err
}

// Sync flushes the file to stable storage regardless of policy.
func (fw *FileWriter) Sync() error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if fw.f == nil {
		return nil
	}
	return fw.syncLocked()
}

func (fw *FileWriter) syncLocked() error {
	if err := fw.f.Sync(); err != nil {
		return fmt.Errorf("journal: sync %s: %w", fw.path, err)
	}
	fw.lastSync = time.Now()
	metricSyncs.Inc()
	return nil
}

// Size returns the current file size in bytes. Because appends go
// through Write, the size observed between appends is exactly the byte
// offset of the next event.
func (fw *FileWriter) Size() int64 {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return fw.size
}

// CompactTo atomically replaces the journal file with its suffix
// starting at byte offset keep, returning the number of bytes dropped.
// The suffix is copied to a temporary file, fsynced, and renamed over
// the journal, so a crash at any point leaves either the full old file
// or the complete suffix — never a partial journal. Callers must only
// drop a prefix whose events are covered by a durable snapshot.
func (fw *FileWriter) CompactTo(keep int64) (int64, error) {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if fw.f == nil {
		return 0, errors.New("journal: file writer closed")
	}
	if keep < 0 || keep > fw.size {
		return 0, fmt.Errorf("journal: compact offset %d outside file of %d bytes", keep, fw.size)
	}
	if keep == 0 {
		return 0, nil // nothing to drop
	}
	src, err := os.Open(fw.path)
	if err != nil {
		return 0, fmt.Errorf("journal: compact open: %w", err)
	}
	defer src.Close()
	if _, err := src.Seek(keep, io.SeekStart); err != nil {
		return 0, fmt.Errorf("journal: compact seek: %w", err)
	}
	tmpPath := fw.path + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, fmt.Errorf("journal: compact tmp: %w", err)
	}
	if _, err := io.Copy(tmp, src); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return 0, fmt.Errorf("journal: compact copy: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return 0, fmt.Errorf("journal: compact sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return 0, fmt.Errorf("journal: compact close: %w", err)
	}
	if err := os.Rename(tmpPath, fw.path); err != nil {
		os.Remove(tmpPath)
		return 0, fmt.Errorf("journal: compact rename: %w", err)
	}
	syncDir(fw.path)
	// Reopen so appends land in the new file; the old inode is garbage.
	nf, err := os.OpenFile(fw.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return 0, fmt.Errorf("journal: compact reopen: %w", err)
	}
	fw.f.Close()
	fw.f = nf
	fw.size -= keep
	return keep, nil
}

// Close flushes (under SyncAlways/SyncInterval) and closes the file.
func (fw *FileWriter) Close() error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if fw.f == nil {
		return nil
	}
	var err error
	if fw.policy != SyncOS {
		err = fw.syncLocked()
	}
	if cerr := fw.f.Close(); err == nil {
		err = cerr
	}
	fw.f = nil
	return err
}

// syncDir best-effort fsyncs the directory containing path, making a
// preceding rename durable. Errors are ignored: not all filesystems
// support directory fsync, and the rename itself already happened.
func syncDir(path string) {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
