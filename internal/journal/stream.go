package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// Decoder incrementally decodes journal events from a byte stream — the
// same JSON-lines format Writer produces and Read consumes in one shot.
// Where Read materializes a whole log, a Decoder yields one event per
// Next call and tracks the byte offset of the last complete record, so
// callers can tail a live journal (or a replication stream) and resume
// from where they stopped: seek the underlying file to Offset and build
// a fresh Decoder.
//
// Next returns io.EOF when the stream ends at a record boundary and a
// *TornTailError (matching ErrTornTail) when it ends mid-record — on a
// live file that usually means a concurrent append is in flight, not
// corruption, and the caller retries from Offset. Blank lines are
// skipped, mirroring Read: a replication stream uses them as
// heartbeats. A Decoder that returned any error must not be reused; its
// buffered reader may have consumed bytes past Offset.
type Decoder struct {
	br     *bufio.Reader
	offset int64 // byte length of the consumed complete-record prefix
	line   int   // 1-based number of the last non-blank line seen
	last   uint64
	next   uint64 // expected seq of the next event; 0 = accept any
}

// NewDecoder wraps r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{br: bufio.NewReader(r)}
}

// ExpectSeq arms the continuity check before the first event: Next
// fails unless the first decoded event carries exactly seq. Subsequent
// events must always be contiguous, with or without ExpectSeq.
func (d *Decoder) ExpectSeq(seq uint64) { d.next = seq }

// Offset returns the byte length of the stream prefix consumed as
// complete records (including blank lines). After a torn tail this is
// the position to truncate at, or to resume tailing from.
func (d *Decoder) Offset() int64 { return d.offset }

// Next decodes and returns the next event.
func (d *Decoder) Next() (Event, error) {
	for {
		line, readErr := d.br.ReadBytes('\n')
		if readErr != nil && readErr != io.EOF {
			return Event{}, fmt.Errorf("journal: scan: %w", readErr)
		}
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) == 0 {
			// Blank line (or bare EOF): a stream heartbeat, not a record.
			d.offset += int64(len(line))
			if readErr == io.EOF {
				return Event{}, io.EOF
			}
			continue
		}
		d.line++
		var e Event
		decErr := json.Unmarshal(trimmed, &e)
		if decErr == nil {
			decErr = e.Validate()
		}
		switch {
		case decErr == nil:
			if d.last > 0 && e.Seq != d.last+1 {
				return Event{}, fmt.Errorf("journal: sequence gap: %d after %d", e.Seq, d.last)
			}
			if d.last == 0 && d.next != 0 && e.Seq != d.next {
				return Event{}, fmt.Errorf("journal: sequence gap: stream starts at %d, want %d", e.Seq, d.next)
			}
			d.last = e.Seq
			d.offset += int64(len(line))
			return e, nil
		case readErr == io.EOF || !hasContent(d.br):
			// Malformed final line: a torn tail (crash or in-flight
			// append). Offset excludes it.
			return Event{}, &TornTailError{Offset: d.offset, Line: d.line, Cause: decErr}
		default:
			return Event{}, fmt.Errorf("journal: line %d: %w", d.line, decErr)
		}
	}
}

// Encoder writes already-sequenced events as JSON lines — the exact
// on-disk journal format, byte for byte (Writer.Append of the same
// event produces identical output). Unlike Writer it assigns no
// sequence numbers and takes no lock: it is the wire half of
// replication, re-encoding events that were already committed by a
// primary's Writer. Not safe for concurrent use.
type Encoder struct {
	w io.Writer
}

// NewEncoder wraps w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

// Encode validates e and writes it as one JSON line.
func (enc *Encoder) Encode(e Event) error {
	if err := e.Validate(); err != nil {
		return err
	}
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("journal: encode: %w", err)
	}
	data = append(data, '\n')
	if _, err := enc.w.Write(data); err != nil {
		return fmt.Errorf("journal: write: %w", err)
	}
	return nil
}

// Heartbeat writes a blank line. Decoders skip it; replication streams
// send one periodically while idle so intermediaries keep the
// connection alive.
func (enc *Encoder) Heartbeat() error {
	if _, err := io.WriteString(enc.w, "\n"); err != nil {
		return fmt.Errorf("journal: write: %w", err)
	}
	return nil
}
