package journal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
)

// Decoder incrementally decodes journal events from a byte stream —
// JSON lines, binary records, or any record-wise mixture of the two
// (see binary.go for the framing; each record declares its own format
// in its first byte). Where Read materializes a whole log, a Decoder
// yields one event per Next call and tracks the byte offset of the last
// complete record, so callers can tail a live journal (or a replication
// stream) and resume from where they stopped: seek the underlying file
// to Offset and build a fresh Decoder.
//
// Next returns io.EOF when the stream ends at a record boundary and a
// *TornTailError (matching ErrTornTail) when it ends mid-record — on a
// live file that usually means a concurrent append is in flight, not
// corruption, and the caller retries from Offset. A failed CRC or
// malformed record with further content behind it is mid-log corruption
// and stays a hard error. Blank lines are skipped in both formats: a
// replication stream uses them as heartbeats. A Decoder that returned
// any error must not be reused; its buffered reader may have consumed
// bytes past Offset.
type Decoder struct {
	br     *bufio.Reader
	offset int64 // byte length of the consumed complete-record prefix
	line   int   // 1-based number of the last record seen (JSON or binary)
	last   uint64
	next   uint64 // expected seq of the next event; 0 = accept any
	mode   Mode   // format of the last decoded record
}

// NewDecoder wraps r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{br: bufio.NewReader(r)}
}

// ExpectSeq arms the continuity check before the first event: Next
// fails unless the first decoded event carries exactly seq. Subsequent
// events must always be contiguous, with or without ExpectSeq.
func (d *Decoder) ExpectSeq(seq uint64) { d.next = seq }

// Offset returns the byte length of the stream prefix consumed as
// complete records (including blank lines). After a torn tail this is
// the position to truncate at, or to resume tailing from.
func (d *Decoder) Offset() int64 { return d.offset }

// Mode reports the wire format of the record most recently returned by
// Next. Replication re-encodes each applied event in this mode, so the
// follower's rolling hash matches the primary's file bytes regardless
// of which format (or mixture) the journal uses.
func (d *Decoder) Mode() Mode { return d.mode }

// Next decodes and returns the next event.
func (d *Decoder) Next() (Event, error) {
	for {
		head, err := d.br.Peek(1)
		if err == io.EOF {
			return Event{}, io.EOF
		}
		if err != nil {
			return Event{}, fmt.Errorf("journal: scan: %w", err)
		}
		switch c := head[0]; {
		case c == '\n' || c == '\r' || c == ' ' || c == '\t':
			// Heartbeat / blank-line bytes between records.
			if _, err := d.br.ReadByte(); err != nil {
				return Event{}, fmt.Errorf("journal: scan: %w", err)
			}
			d.offset++
			continue
		case c == tagBinaryV1:
			return d.nextBinary()
		default:
			// Anything else is handed to the JSON-line path, whose
			// malformed-line handling classifies torn tails vs corruption.
			return d.nextJSON()
		}
	}
}

// checkSeq enforces sequence contiguity and records e as consumed.
func (d *Decoder) checkSeq(e Event) error {
	if d.last > 0 && e.Seq != d.last+1 {
		return fmt.Errorf("journal: sequence gap: %d after %d", e.Seq, d.last)
	}
	if d.last == 0 && d.next != 0 && e.Seq != d.next {
		return fmt.Errorf("journal: sequence gap: stream starts at %d, want %d", e.Seq, d.next)
	}
	d.last = e.Seq
	return nil
}

// nextJSON consumes one JSON line.
func (d *Decoder) nextJSON() (Event, error) {
	line, readErr := d.br.ReadBytes('\n')
	if readErr != nil && readErr != io.EOF {
		return Event{}, fmt.Errorf("journal: scan: %w", readErr)
	}
	d.line++
	trimmed := bytes.TrimSpace(line)
	var e Event
	decErr := json.Unmarshal(trimmed, &e)
	if decErr == nil {
		decErr = e.Validate()
	}
	switch {
	case decErr == nil:
		if err := d.checkSeq(e); err != nil {
			return Event{}, err
		}
		d.offset += int64(len(line))
		d.mode = ModeJSON
		return e, nil
	case readErr == io.EOF || !hasContent(d.br):
		// Malformed final line: a torn tail (crash or in-flight
		// append). Offset excludes it.
		return Event{}, &TornTailError{Offset: d.offset, Line: d.line, Cause: decErr}
	default:
		return Event{}, fmt.Errorf("journal: line %d: %w", d.line, decErr)
	}
}

// nextBinary consumes one framed binary record. The tag byte has been
// peeked but not consumed.
func (d *Decoder) nextBinary() (Event, error) {
	d.line++
	if _, err := d.br.ReadByte(); err != nil { // tag
		return Event{}, fmt.Errorf("journal: scan: %w", err)
	}
	fail := func(cause error) (Event, error) {
		return Event{}, &TornTailError{Offset: d.offset, Line: d.line, Cause: cause}
	}
	plen, n, err := readStreamUvarint(d.br)
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fail(fmt.Errorf("%w: truncated length prefix", errBinaryRecord))
		}
		return Event{}, fmt.Errorf("journal: record %d: %w", d.line, err)
	}
	if plen > maxBinaryPayload {
		// A length this large is a corrupt prefix, not a real record;
		// classify by whether the stream ends here like any other
		// malformed record.
		cause := fmt.Errorf("%w: declared payload of %d bytes", errBinaryRecord, plen)
		if !hasContent(d.br) {
			return fail(cause)
		}
		return Event{}, fmt.Errorf("journal: record %d: %w", d.line, cause)
	}
	frame, err := readFrame(d.br, int(plen)+4) // payload + CRC
	if err != nil {
		return fail(fmt.Errorf("%w: truncated record: %v", errBinaryRecord, err))
	}
	payload, sum := frame[:plen], binary.LittleEndian.Uint32(frame[plen:])
	var decErr error
	var e Event
	if got := crc32.Checksum(payload, castagnoli); got != sum {
		decErr = fmt.Errorf("%w: CRC mismatch (%08x != %08x)", errBinaryRecord, got, sum)
	} else {
		e, decErr = decodeBinaryPayload(payload)
	}
	switch {
	case decErr == nil:
		if err := d.checkSeq(e); err != nil {
			return Event{}, err
		}
		d.offset += int64(1 + n + len(frame))
		d.mode = ModeBinary
		return e, nil
	case !hasContent(d.br):
		// The damaged record is the last thing in the stream: a torn
		// tail (crash mid-append), repairable by truncating at Offset.
		return fail(decErr)
	default:
		return Event{}, fmt.Errorf("journal: record %d: %w", d.line, decErr)
	}
}

// readFrame reads exactly n bytes from br. Large frames are read via a
// growing buffer rather than one up-front allocation, so a corrupt
// length prefix just under maxBinaryPayload cannot force a 64 MiB
// allocation for a stream that ends after a handful of bytes.
func readFrame(br *bufio.Reader, n int) ([]byte, error) {
	const eager = 64 << 10
	if n <= eager {
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	var buf bytes.Buffer
	buf.Grow(eager)
	if _, err := io.CopyN(&buf, br, int64(n)); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf.Bytes(), nil
}

// readStreamUvarint reads a canonical uvarint from br, returning the
// value and the number of bytes consumed.
func readStreamUvarint(br *bufio.Reader) (uint64, int, error) {
	var v uint64
	var n int
	for shift := uint(0); ; shift += 7 {
		b, err := br.ReadByte()
		if err != nil {
			if err == io.EOF && n > 0 {
				err = io.ErrUnexpectedEOF
			}
			return 0, n, err
		}
		n++
		if n > binary.MaxVarintLen64 || (shift == 63 && b > 1) {
			return 0, n, fmt.Errorf("%w: varint overflow", errBinaryRecord)
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			if n != uvarintLen(v) {
				return 0, n, fmt.Errorf("%w: non-canonical varint", errBinaryRecord)
			}
			return v, n, nil
		}
	}
}

// Encoder writes already-sequenced events in the exact on-disk journal
// format, byte for byte (a Writer in the same mode produces identical
// output for the same event). Unlike Writer it assigns no sequence
// numbers and takes no lock: it is the wire half of replication,
// re-encoding events that were already committed by a primary's Writer.
// Not safe for concurrent use.
type Encoder struct {
	w    io.Writer
	mode Mode
	buf  []byte
}

// NewEncoder wraps w, encoding in ModeJSON.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

// NewEncoderMode wraps w, encoding in the given mode.
func NewEncoderMode(w io.Writer, m Mode) *Encoder { return &Encoder{w: w, mode: m} }

// SetMode switches the format of subsequent Encode calls. Replication
// sets it per record, from Decoder.Mode, so a re-encoded stream is
// byte-identical to the file it was decoded from.
func (enc *Encoder) SetMode(m Mode) { enc.mode = m }

// Encode validates e and writes it as one record in the current mode.
func (enc *Encoder) Encode(e Event) error {
	data, err := appendRecord(enc.buf[:0], e, enc.mode)
	if err != nil {
		return err
	}
	enc.buf = data[:0] // retain the grown buffer
	if _, err := enc.w.Write(data); err != nil {
		return fmt.Errorf("journal: write: %w", err)
	}
	return nil
}

// Heartbeat writes a blank line. Decoders skip it in both formats;
// replication streams send one periodically while idle so
// intermediaries keep the connection alive.
func (enc *Encoder) Heartbeat() error {
	if _, err := io.WriteString(enc.w, "\n"); err != nil {
		return fmt.Errorf("journal: write: %w", err)
	}
	return nil
}

// appendRecord appends the on-disk encoding of e in the given mode.
func appendRecord(dst []byte, e Event, mode Mode) ([]byte, error) {
	switch mode {
	case ModeBinary:
		return AppendBinaryRecord(dst, e)
	default:
		if err := e.Validate(); err != nil {
			return dst, err
		}
		data, err := json.Marshal(e)
		if err != nil {
			return dst, fmt.Errorf("journal: encode: %w", err)
		}
		dst = append(dst, data...)
		return append(dst, '\n'), nil
	}
}
