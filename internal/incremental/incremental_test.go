package incremental

import (
	"math/rand"
	"testing"

	"incentivetree/internal/cdrm"
	"incentivetree/internal/core"
	"incentivetree/internal/geometric"
	"incentivetree/internal/numeric"
	"incentivetree/internal/obs"
	"incentivetree/internal/tdrm"
	"incentivetree/internal/tree"
)

func geoEngine(t *testing.T) *GeometricEngine {
	t.Helper()
	m, err := geometric.Default(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return NewGeometric(m)
}

func cdrmEngine(t *testing.T) *CDRMEngine {
	t.Helper()
	m, err := cdrm.DefaultReciprocal(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return NewCDRM(m)
}

// opSequence drives an engine through a deterministic random workload
// and cross-checks every read against full re-evaluation.
func opSequence(t *testing.T, e Engine, seed int64, ops int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < ops; i++ {
		if e.Tree().NumParticipants() == 0 || rng.Float64() < 0.6 {
			parent := tree.NodeID(rng.Intn(e.Tree().Len()))
			if _, err := e.Join(parent, rng.Float64()*4); err != nil {
				t.Fatalf("op %d join: %v", i, err)
			}
		} else {
			u := tree.NodeID(1 + rng.Intn(e.Tree().NumParticipants()))
			if err := e.AddContribution(u, rng.Float64()*2); err != nil {
				t.Fatalf("op %d contribute: %v", i, err)
			}
		}
		if i%7 == 0 { // periodic full cross-check
			want, err := e.Mechanism().Rewards(e.Tree())
			if err != nil {
				t.Fatalf("op %d: full eval: %v", i, err)
			}
			got := e.Rewards()
			if len(got) != len(want) {
				t.Fatalf("op %d: %d rewards, want %d", i, len(got), len(want))
			}
			for id := range want {
				if !numeric.AlmostEqual(got[id], want[id], 1e-9) {
					t.Fatalf("op %d node %d: incremental %v != full %v", i, id, got[id], want[id])
				}
			}
		}
	}
}

func TestGeometricEngineMatchesFullEvaluation(t *testing.T) {
	opSequence(t, geoEngine(t), 1, 300)
}

func TestCDRMEngineMatchesFullEvaluation(t *testing.T) {
	opSequence(t, cdrmEngine(t), 2, 300)
}

func TestFullEngineMatchesItself(t *testing.T) {
	m, err := tdrm.Default(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewFull(m)
	if err != nil {
		t.Fatal(err)
	}
	opSequence(t, e, 3, 60)
}

func TestGeometricEngineHandComputed(t *testing.T) {
	// a = 1/3, b = (1-a)*Phi = 1/3 (defaults). Chain u -> v with C 1, 3:
	// R(v) = b*3, R(u) = b*(1 + a*3) = b*2.
	e := geoEngine(t)
	u, err := e.Join(tree.Root, 1)
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.Join(u, 3)
	if err != nil {
		t.Fatal(err)
	}
	b := 1.0 / 3.0
	if got := e.Reward(v); !numeric.AlmostEqual(got, b*3, 1e-12) {
		t.Fatalf("R(v) = %v", got)
	}
	if got := e.Reward(u); !numeric.AlmostEqual(got, b*2, 1e-12) {
		t.Fatalf("R(u) = %v", got)
	}
	// Contribution top-up at v bubbles a*delta to u.
	if err := e.AddContribution(v, 3); err != nil {
		t.Fatal(err)
	}
	if got := e.Reward(u); !numeric.AlmostEqual(got, b*3, 1e-12) {
		t.Fatalf("after top-up R(u) = %v", got)
	}
}

func TestCDRMEngineHandComputed(t *testing.T) {
	e := cdrmEngine(t)
	u, err := e.Join(tree.Root, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Join(u, 1); err != nil {
		t.Fatal(err)
	}
	want := e.mech.Func().Eval(2, 1)
	if got := e.Reward(u); !numeric.AlmostEqual(got, want, 1e-12) {
		t.Fatalf("R(u) = %v, want %v", got, want)
	}
}

func TestEngineErrorPaths(t *testing.T) {
	engines := []Engine{geoEngine(t), cdrmEngine(t)}
	for _, e := range engines {
		if _, err := e.Join(tree.NodeID(9), 1); err == nil {
			t.Fatal("join under missing parent should fail")
		}
		if err := e.AddContribution(tree.NodeID(9), 1); err == nil {
			t.Fatal("contribution to missing node should fail")
		}
		if _, err := e.Join(tree.Root, -1); err == nil {
			t.Fatal("negative contribution should fail")
		}
		if got := e.Reward(tree.Root); got != 0 {
			t.Fatalf("root reward = %v", got)
		}
		if got := e.Reward(tree.NodeID(99)); got != 0 {
			t.Fatalf("missing node reward = %v", got)
		}
	}
}

func TestFailedWriteLeavesStateConsistent(t *testing.T) {
	e := geoEngine(t)
	u, err := e.Join(tree.Root, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Underflowing contribution update must not corrupt the sums.
	if err := e.AddContribution(u, -5); err == nil {
		t.Fatal("underflow should fail")
	}
	want, err := e.Mechanism().Rewards(e.Tree())
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(e.Reward(u), want.Of(u), 1e-12) {
		t.Fatalf("state diverged after failed write: %v vs %v", e.Reward(u), want.Of(u))
	}
}

func TestRewardsSnapshotIsACopy(t *testing.T) {
	m, err := geometric.Default(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	full, err := NewFull(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := full.Join(tree.Root, 1); err != nil {
		t.Fatal(err)
	}
	snap := full.Rewards()
	snap[1] = 999
	if full.Reward(1) == 999 {
		t.Fatal("snapshot aliases engine state")
	}
}

// TestOpsAreInstrumented checks every engine write ticks the shared
// obs counters and latency histograms. Counters are process-wide and
// monotonic, so the test asserts deltas, not absolute values.
func TestOpsAreInstrumented(t *testing.T) {
	e := geoEngine(t)
	ops := obs.Default().Counter("itree_incremental_ops_total", "", "engine", "geometric", "op", "join")
	lat := obs.Default().Histogram("itree_incremental_op_seconds", "", nil, "engine", "geometric", "op", "contribute")
	opsBefore, latBefore := ops.Value(), lat.Count()
	u, err := e.Join(tree.Root, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddContribution(u, 2); err != nil {
		t.Fatal(err)
	}
	if got := ops.Value() - opsBefore; got != 1 {
		t.Fatalf("join counter delta = %d, want 1", got)
	}
	if got := lat.Count() - latBefore; got != 1 {
		t.Fatalf("contribute latency observations delta = %d, want 1", got)
	}
}
