// Package incremental maintains Incentive Tree rewards under a stream of
// joins and contribution updates without recomputing the whole tree.
//
// A live referral service (internal/server, cmd/itreed) processes two
// kinds of writes — "join" and "contribute" — and serves reward reads
// between them. Recomputing R(u) for all u is O(n) per read; the engines
// here exploit the recursive structure of the mechanisms to keep per-node
// reward state that a write updates in O(depth):
//
//   - Geometric: R(u) = b*S(u) with S(u) = C(u) + a*sum_children S, so a
//     contribution delta at v adds a^dist * delta to S along v's ancestor
//     path.
//   - CDRM: R(u) = f(C(u), Y(u)) with Y(u) the proper-descendant sum, so
//     a delta at v adds delta to Y along the ancestor path.
//
// Mechanisms whose rewards depend on global structure (L-Pachira) or on
// a non-local transformation (TDRM's reward computation tree) do not
// admit this decomposition and are served by full evaluation.
package incremental

import (
	"fmt"
	"time"

	"incentivetree/internal/cdrm"
	"incentivetree/internal/core"
	"incentivetree/internal/geometric"
	"incentivetree/internal/obs"
	"incentivetree/internal/tree"
)

// Engine writes are recorded in the process-wide obs registry, split by
// engine kind and operation, so an operator can compare incremental
// O(depth) maintenance against full O(n) recomputation in production:
// itree_incremental_ops_total{engine,op} counts writes and
// itree_incremental_op_seconds{engine,op} tracks their latency.
type opRecorder struct {
	ops *obs.Counter
	lat *obs.Histogram
}

func newOpRecorder(engine, op string) opRecorder {
	return opRecorder{
		ops: obs.Default().Counter("itree_incremental_ops_total",
			"Engine write operations, by engine kind and op.",
			"engine", engine, "op", op),
		lat: obs.Default().Histogram("itree_incremental_op_seconds",
			"Engine write latency in seconds, by engine kind and op.",
			nil, "engine", engine, "op", op),
	}
}

// done records one completed operation started at start.
func (r opRecorder) done(start time.Time) {
	r.ops.Inc()
	r.lat.Observe(time.Since(start).Seconds())
}

var (
	geoJoinOps  = newOpRecorder("geometric", "join")
	geoContrib  = newOpRecorder("geometric", "contribute")
	cdrmJoinOps = newOpRecorder("cdrm", "join")
	cdrmContrib = newOpRecorder("cdrm", "contribute")
	fullJoinOps = newOpRecorder("full", "join")
	fullContrib = newOpRecorder("full", "contribute")
)

// Engine maintains a referral tree and serves rewards under writes.
type Engine interface {
	// Join adds a participant under parent with contribution c.
	Join(parent tree.NodeID, c float64) (tree.NodeID, error)
	// AddContribution increases a participant's contribution.
	AddContribution(u tree.NodeID, delta float64) error
	// Reward returns the current R(u) in O(1).
	Reward(u tree.NodeID) float64
	// Rewards snapshots all rewards.
	Rewards() core.Rewards
	// Tree exposes the maintained referral tree (read-only by
	// convention).
	Tree() *tree.Tree
	// Mechanism returns the mechanism whose rewards are maintained.
	Mechanism() core.Mechanism
}

// ForMechanism returns an empty incremental engine when m's rewards
// admit O(depth) maintenance (Geometric, CDRM family), and (nil, false)
// otherwise. Mechanisms that need global structure (TDRM, L-Pachira)
// are better served by per-read full evaluation than by FullEngine's
// per-write recomputation.
func ForMechanism(m core.Mechanism) (Engine, bool) {
	switch mech := m.(type) {
	case *geometric.Mechanism:
		return NewGeometric(mech), true
	case *cdrm.Mechanism:
		return NewCDRM(mech), true
	}
	return nil, false
}

// ForTree is ForMechanism for a pre-existing tree (e.g. a restored
// snapshot): the returned engine adopts t — ownership transfers, the
// caller must route all further writes through the engine — with its
// per-node reward state rebuilt in O(n).
func ForTree(m core.Mechanism, t *tree.Tree) (Engine, bool) {
	switch mech := m.(type) {
	case *geometric.Mechanism:
		return NewGeometricFromTree(mech, t), true
	case *cdrm.Mechanism:
		return NewCDRMFromTree(mech, t), true
	}
	return nil, false
}

// GeometricEngine incrementally maintains the (a,b)-Geometric mechanism.
type GeometricEngine struct {
	mech *geometric.Mechanism
	t    *tree.Tree
	s    []float64 // weighted subtree sums: R(u) = b * s[u]
}

// NewGeometric starts an empty engine for m.
func NewGeometric(m *geometric.Mechanism) *GeometricEngine {
	return &GeometricEngine{mech: m, t: tree.New(), s: []float64{0}}
}

// NewGeometricFromTree adopts an existing tree, rebuilding the weighted
// subtree sums S(u) = C(u) + a*sum_children S in O(n). Valid trees have
// topological ids (parent < child), so one descending pass suffices.
func NewGeometricFromTree(m *geometric.Mechanism, t *tree.Tree) *GeometricEngine {
	e := &GeometricEngine{mech: m, t: t, s: make([]float64, t.Len())}
	for u := tree.NodeID(t.Len() - 1); u > tree.Root; u-- {
		e.s[u] += t.Contribution(u)
		e.s[t.Parent(u)] += m.A() * e.s[u]
	}
	return e
}

// Join implements Engine in O(depth).
func (e *GeometricEngine) Join(parent tree.NodeID, c float64) (tree.NodeID, error) {
	defer geoJoinOps.done(time.Now()) //itreevet:ignore floatorder wall clock feeds only the op-latency histogram, never reward state
	id, err := e.t.Add(parent, c)
	if err != nil {
		return tree.None, err
	}
	e.s = append(e.s, 0)
	e.bubble(id, c)
	return id, nil
}

// AddContribution implements Engine in O(depth).
func (e *GeometricEngine) AddContribution(u tree.NodeID, delta float64) error {
	defer geoContrib.done(time.Now()) //itreevet:ignore floatorder wall clock feeds only the op-latency histogram, never reward state
	if err := e.t.AddContribution(u, delta); err != nil {
		return err
	}
	e.bubble(u, delta)
	return nil
}

// bubble adds delta to s[u] and a^dist*delta to every ancestor.
func (e *GeometricEngine) bubble(u tree.NodeID, delta float64) {
	factor := 1.0
	for n := u; n != tree.Root; n = e.t.Parent(n) {
		e.s[n] += factor * delta
		factor *= e.mech.A()
	}
}

// Reward implements Engine.
func (e *GeometricEngine) Reward(u tree.NodeID) float64 {
	if u <= tree.Root || int(u) >= len(e.s) {
		return 0
	}
	return e.mech.B() * e.s[u]
}

// Rewards implements Engine.
func (e *GeometricEngine) Rewards() core.Rewards {
	out := make(core.Rewards, len(e.s))
	for id := 1; id < len(e.s); id++ {
		out[id] = e.mech.B() * e.s[id]
	}
	return out
}

// Tree implements Engine.
func (e *GeometricEngine) Tree() *tree.Tree { return e.t }

// Mechanism implements Engine.
func (e *GeometricEngine) Mechanism() core.Mechanism { return e.mech }

// CDRMEngine incrementally maintains any CDRM-family mechanism.
type CDRMEngine struct {
	mech *cdrm.Mechanism
	t    *tree.Tree
	desc []float64 // proper-descendant contribution sums y_u
}

// NewCDRM starts an empty engine for m.
func NewCDRM(m *cdrm.Mechanism) *CDRMEngine {
	return &CDRMEngine{mech: m, t: tree.New(), desc: []float64{0}}
}

// NewCDRMFromTree adopts an existing tree, rebuilding the
// proper-descendant contribution sums y_u in O(n).
func NewCDRMFromTree(m *cdrm.Mechanism, t *tree.Tree) *CDRMEngine {
	e := &CDRMEngine{mech: m, t: t, desc: make([]float64, t.Len())}
	for u := tree.NodeID(t.Len() - 1); u > tree.Root; u-- {
		e.desc[t.Parent(u)] += e.desc[u] + t.Contribution(u)
	}
	return e
}

// Join implements Engine in O(depth).
func (e *CDRMEngine) Join(parent tree.NodeID, c float64) (tree.NodeID, error) {
	defer cdrmJoinOps.done(time.Now()) //itreevet:ignore floatorder wall clock feeds only the op-latency histogram, never reward state
	id, err := e.t.Add(parent, c)
	if err != nil {
		return tree.None, err
	}
	e.desc = append(e.desc, 0)
	e.propagate(id, c)
	return id, nil
}

// AddContribution implements Engine in O(depth).
func (e *CDRMEngine) AddContribution(u tree.NodeID, delta float64) error {
	defer cdrmContrib.done(time.Now()) //itreevet:ignore floatorder wall clock feeds only the op-latency histogram, never reward state
	if err := e.t.AddContribution(u, delta); err != nil {
		return err
	}
	e.propagate(u, delta)
	return nil
}

// propagate adds delta to every proper ancestor's descendant sum.
func (e *CDRMEngine) propagate(u tree.NodeID, delta float64) {
	for n := e.t.Parent(u); n != tree.Root && n != tree.None; n = e.t.Parent(n) {
		e.desc[n] += delta
	}
}

// Reward implements Engine.
func (e *CDRMEngine) Reward(u tree.NodeID) float64 {
	if u <= tree.Root || int(u) >= len(e.desc) {
		return 0
	}
	return e.mech.Func().Eval(e.t.Contribution(u), e.desc[u])
}

// Rewards implements Engine.
func (e *CDRMEngine) Rewards() core.Rewards {
	out := make(core.Rewards, len(e.desc))
	for id := 1; id < len(e.desc); id++ {
		out[id] = e.Reward(tree.NodeID(id))
	}
	return out
}

// Tree implements Engine.
func (e *CDRMEngine) Tree() *tree.Tree { return e.t }

// Mechanism implements Engine.
func (e *CDRMEngine) Mechanism() core.Mechanism { return e.mech }

// FullEngine serves any mechanism by re-evaluating rewards after every
// write — the baseline the incremental engines are benchmarked against,
// and the fallback for mechanisms without an incremental decomposition
// (TDRM, L-Pachira).
type FullEngine struct {
	mech    core.Mechanism
	t       *tree.Tree
	rewards core.Rewards
}

// NewFull starts an empty full-evaluation engine.
func NewFull(m core.Mechanism) (*FullEngine, error) {
	e := &FullEngine{mech: m, t: tree.New()}
	if err := e.recompute(); err != nil {
		return nil, err
	}
	return e, nil
}

func (e *FullEngine) recompute() error {
	r, err := e.mech.Rewards(e.t)
	if err != nil {
		return fmt.Errorf("incremental: recompute: %w", err)
	}
	e.rewards = r
	return nil
}

// Join implements Engine in O(n).
func (e *FullEngine) Join(parent tree.NodeID, c float64) (tree.NodeID, error) {
	defer fullJoinOps.done(time.Now()) //itreevet:ignore floatorder wall clock feeds only the op-latency histogram, never reward state
	id, err := e.t.Add(parent, c)
	if err != nil {
		return tree.None, err
	}
	if err := e.recompute(); err != nil {
		return tree.None, err
	}
	return id, nil
}

// AddContribution implements Engine in O(n).
func (e *FullEngine) AddContribution(u tree.NodeID, delta float64) error {
	defer fullContrib.done(time.Now()) //itreevet:ignore floatorder wall clock feeds only the op-latency histogram, never reward state
	if err := e.t.AddContribution(u, delta); err != nil {
		return err
	}
	return e.recompute()
}

// Reward implements Engine.
func (e *FullEngine) Reward(u tree.NodeID) float64 { return e.rewards.Of(u) }

// Rewards implements Engine.
func (e *FullEngine) Rewards() core.Rewards {
	return append(core.Rewards(nil), e.rewards...)
}

// Tree implements Engine.
func (e *FullEngine) Tree() *tree.Tree { return e.t }

// Mechanism implements Engine.
func (e *FullEngine) Mechanism() core.Mechanism { return e.mech }
