package incremental

import (
	"math/rand"
	"testing"

	"incentivetree/internal/cdrm"
	"incentivetree/internal/core"
	"incentivetree/internal/geometric"
	"incentivetree/internal/numeric"
	"incentivetree/internal/tdrm"
	"incentivetree/internal/tree"
)

func TestForMechanism(t *testing.T) {
	p := core.DefaultParams()
	gm, err := geometric.Default(p)
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := ForMechanism(gm); !ok {
		t.Error("geometric should get an engine")
	} else if _, isGeo := e.(*GeometricEngine); !isGeo {
		t.Errorf("geometric engine type = %T", e)
	}
	cm, err := cdrm.DefaultReciprocal(p)
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := ForMechanism(cm); !ok {
		t.Error("cdrm should get an engine")
	} else if _, isCDRM := e.(*CDRMEngine); !isCDRM {
		t.Errorf("cdrm engine type = %T", e)
	}
	tm, err := tdrm.Default(p)
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := ForMechanism(tm); ok {
		t.Errorf("tdrm has no local decomposition, got %T", e)
	}
}

// randomTree grows a contribution-bearing tree the way a workload would.
func randomTree(t *testing.T, seed int64, n int) *tree.Tree {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tr := tree.New()
	for i := 0; i < n; i++ {
		if _, err := tr.Add(tree.NodeID(rng.Intn(tr.Len())), rng.Float64()*4); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

// TestForTreeMatchesFullEvaluation is the recovery path: an engine
// rebuilt from an existing tree must serve the same rewards as full
// evaluation, and stay correct under further writes.
func TestForTreeMatchesFullEvaluation(t *testing.T) {
	p := core.DefaultParams()
	gm, err := geometric.Default(p)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := cdrm.DefaultReciprocal(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, mech := range []core.Mechanism{gm, cm} {
		tr := randomTree(t, 7, 200)
		e, ok := ForTree(mech, tr)
		if !ok {
			t.Fatalf("%s: no engine", mech.Name())
		}
		if e.Tree() != tr {
			t.Fatalf("%s: engine must adopt the given tree", mech.Name())
		}
		check := func(when string) {
			want, err := mech.Rewards(e.Tree())
			if err != nil {
				t.Fatal(err)
			}
			got := e.Rewards()
			if len(got) != len(want) {
				t.Fatalf("%s %s: %d rewards, want %d", mech.Name(), when, len(got), len(want))
			}
			for id := range want {
				if !numeric.AlmostEqual(got[id], want[id], 1e-9) {
					t.Fatalf("%s %s node %d: rebuilt %v != full %v", mech.Name(), when, id, got[id], want[id])
				}
			}
		}
		check("after rebuild")
		// The rebuilt state must absorb new writes, not just reads.
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 50; i++ {
			if rng.Float64() < 0.5 {
				if _, err := e.Join(tree.NodeID(rng.Intn(e.Tree().Len())), rng.Float64()); err != nil {
					t.Fatal(err)
				}
			} else {
				u := tree.NodeID(1 + rng.Intn(e.Tree().NumParticipants()))
				if err := e.AddContribution(u, rng.Float64()); err != nil {
					t.Fatal(err)
				}
			}
		}
		check("after further writes")
	}
}

func TestForTreeEmptyTree(t *testing.T) {
	gm, err := geometric.Default(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	e, ok := ForTree(gm, tree.New())
	if !ok {
		t.Fatal("no engine for empty tree")
	}
	// Rewards are indexed by NodeID, so even an empty tree has the root
	// slot (always zero).
	if r := e.Rewards(); len(r) != 1 || r[0] != 0 {
		t.Fatalf("empty tree rewards = %v", r)
	}
	if _, err := e.Join(tree.Root, 1); err != nil {
		t.Fatal(err)
	}
}
