// Package ingest turns a per-request write path into a batched group
// commit pipeline. Writers submit operations onto a bounded queue; a
// single committer goroutine drains the queue into batches and hands
// each batch to an Applier, which applies it under one lock
// acquisition and persists all journal lines with a single sync.
// Every submitter is woken with its operation's individual result, so
// a validation error in one op never fails the rest of its batch.
//
// The pipeline's throughput win comes from amortization: one mutex
// acquisition, one journal write (and, under a synchronous durability
// policy, one fsync), and one reward recompute per batch instead of
// per event. Its resilience comes from admission control: when the
// queue is full, Submit fails fast with ErrQueueFull instead of
// blocking the accept loop, which the HTTP layer surfaces as
// 429 Too Many Requests + Retry-After.
//
// With BatchMax = 1 every batch holds exactly one operation, so the
// journal receives one write per event in queue (arrival) order —
// byte-identical to the unbatched path.
package ingest

import (
	"context"
	"errors"
	"sync"
	"time"

	"incentivetree/internal/obs"
)

// Defaults for Options fields left zero.
const (
	// DefaultBatchMax is the group commit size cap. Batches form by
	// commit coalescing: operations arriving while the previous batch
	// is committing are drained together into the next one.
	DefaultBatchMax = 64
	// DefaultQueueDepth is the admission-control bound: the number of
	// operations that may wait for the committer before Submit sheds
	// load.
	DefaultQueueDepth = 1024
)

// Kind discriminates operation types.
type Kind uint8

// The operation kinds.
const (
	// OpJoin registers a participant (with optional sponsor).
	OpJoin Kind = iota
	// OpContribute records a contribution by an existing participant.
	OpContribute
)

// Op is one queued write.
type Op struct {
	Kind    Kind
	Name    string
	Sponsor string  // OpJoin only
	Amount  float64 // OpContribute only
}

// Result is the per-operation outcome of a batch application.
type Result struct {
	// Err is the operation's individual error (nil on success).
	Err error
	// Value is an applier-defined success payload (e.g. the
	// participant's post-commit view, built from the batch's single
	// reward recompute).
	Value any
}

// Applier applies one batch of operations atomically with respect to
// readers: all mutations of the batch become visible together, journal
// lines for the batch are persisted with a single sync, and the
// returned slice carries one Result per op (same order). Implementations
// must not fail the whole batch for one op's validation error.
type Applier interface {
	ApplyBatch(ops []Op) []Result
}

// The sentinel errors surfaced by Submit.
var (
	// ErrQueueFull reports that admission control shed the operation:
	// the queue is at capacity and the caller should retry later
	// (HTTP: 429 + Retry-After).
	ErrQueueFull = errors.New("ingest: queue full")
	// ErrClosed reports a submit against a committer that has been
	// closed (daemon shutting down).
	ErrClosed = errors.New("ingest: committer closed")
)

// Options parameterizes a Committer.
type Options struct {
	// BatchMax caps the number of operations per group commit. Zero
	// means DefaultBatchMax; 1 commits per event (the unbatched
	// ordering, byte-identical journals).
	BatchMax int
	// BatchWait is how long the committer waits to fill a batch after
	// its first operation arrives. Zero (the default) commits as soon
	// as the queue stops yielding operations without blocking — batches
	// then form naturally while a previous commit is in flight, adding
	// no latency when idle. A positive wait trades first-op latency for
	// larger batches.
	BatchWait time.Duration
	// QueueDepth bounds the number of waiting operations. Zero means
	// DefaultQueueDepth.
	QueueDepth int
	// Registry, when set, receives the pipeline's metrics (queue depth
	// gauge, batch size and commit latency histograms, shed counter),
	// labelled with Labels.
	Registry *obs.Registry
	// Labels is the metric label set (variadic key/value pairs, e.g.
	// "campaign", id).
	Labels []string
}

// pending is one queued operation plus its wakeup channel.
type pending struct {
	op   Op
	done chan Result // buffered(1): commit never blocks on a gone waiter
}

// Committer owns the queue and the single commit loop in front of one
// Applier. It is safe for concurrent Submit.
type Committer struct {
	applier   Applier
	batchMax  int
	batchWait time.Duration

	queue   chan *pending
	stop    chan struct{} // closed by Close; loop drains and exits
	drained chan struct{} // closed by the loop on exit

	mu     sync.RWMutex // guards closed against racing Submit/Close
	closed bool

	reg      *obs.Registry
	labels   []string
	mShed    *obs.Counter
	mBatches *obs.Counter
	mSize    *obs.Histogram
	mCommit  *obs.Histogram
}

// New starts a committer in front of a. Close must be called to stop
// the commit loop and drain queued operations.
func New(a Applier, o Options) *Committer {
	if o.BatchMax <= 0 {
		o.BatchMax = DefaultBatchMax
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = DefaultQueueDepth
	}
	c := &Committer{
		applier:   a,
		batchMax:  o.BatchMax,
		batchWait: o.BatchWait,
		queue:     make(chan *pending, o.QueueDepth),
		stop:      make(chan struct{}),
		drained:   make(chan struct{}),
		reg:       o.Registry,
		labels:    o.Labels,
	}
	if c.reg != nil {
		c.reg.GaugeFunc("itree_ingest_queue_depth",
			"Operations waiting for the group committer.", func() float64 {
				return float64(len(c.queue))
			}, c.labels...)
		c.mShed = c.reg.Counter("itree_ingest_shed_total",
			"Writes shed by admission control (queue full).", c.labels...)
		c.mBatches = c.reg.Counter("itree_ingest_batches_total",
			"Group commits executed.", c.labels...)
		c.mSize = c.reg.Histogram("itree_ingest_batch_size",
			"Operations per group commit.",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}, c.labels...)
		c.mCommit = c.reg.Histogram("itree_ingest_commit_seconds",
			"Group commit latency (apply + journal + wakeups).", nil, c.labels...)
	}
	go c.loop()
	return c
}

// QueueLen reports how many operations are waiting for the committer
// (the same reading as the itree_ingest_queue_depth gauge).
func (c *Committer) QueueLen() int { return len(c.queue) }

// Submit enqueues op and blocks until its batch commits, returning the
// op's individual result. A full queue fails fast with ErrQueueFull
// (admission control); a closed committer with ErrClosed. If ctx ends
// first, Submit returns ctx.Err() — the operation may still commit.
func (c *Committer) Submit(ctx context.Context, op Op) (any, error) {
	p := &pending{op: op, done: make(chan Result, 1)}
	c.mu.RLock()
	if c.closed {
		c.mu.RUnlock()
		return nil, ErrClosed
	}
	select {
	case c.queue <- p:
		c.mu.RUnlock()
	default:
		c.mu.RUnlock()
		if c.mShed != nil {
			c.mShed.Inc()
		}
		return nil, ErrQueueFull
	}
	select {
	case r := <-p.done:
		return r.Value, r.Err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Close stops admission, drains every queued operation through the
// applier (waking its submitter), waits for the loop to exit, and
// releases the committer's metric series. It is idempotent.
func (c *Committer) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.drained
		return
	}
	c.closed = true
	c.mu.Unlock()
	close(c.stop)
	<-c.drained
	if c.reg != nil {
		for _, name := range []string{
			"itree_ingest_queue_depth",
			"itree_ingest_shed_total",
			"itree_ingest_batches_total",
			"itree_ingest_batch_size",
			"itree_ingest_commit_seconds",
		} {
			c.reg.Unregister(name, c.labels...)
		}
	}
}

// loop is the single committer goroutine: wait for a first operation,
// gather a batch, commit, repeat. On stop it drains the queue — Close
// already fenced new submits — so no waiter is ever abandoned.
func (c *Committer) loop() {
	defer close(c.drained)
	batch := make([]*pending, 0, c.batchMax)
	ops := make([]Op, 0, c.batchMax)
	for {
		var first *pending
		select {
		case first = <-c.queue:
		case <-c.stop:
			c.drain(batch[:0], ops)
			return
		}
		batch = c.gather(append(batch[:0], first))
		ops = c.commit(batch, ops)
	}
}

// gather extends batch up to batchMax: first by draining whatever is
// already queued, then — only when BatchWait is positive — by waiting
// up to that long for the batch to fill.
func (c *Committer) gather(batch []*pending) []*pending {
	for len(batch) < c.batchMax {
		select {
		case p := <-c.queue:
			batch = append(batch, p)
			continue
		default:
		}
		break
	}
	if c.batchWait <= 0 || len(batch) >= c.batchMax {
		return batch
	}
	timer := time.NewTimer(c.batchWait)
	defer timer.Stop()
	for len(batch) < c.batchMax {
		select {
		case p := <-c.queue:
			batch = append(batch, p)
		case <-timer.C:
			return batch
		case <-c.stop:
			return batch
		}
	}
	return batch
}

// commit applies one batch and wakes every submitter with its own
// result. It returns the reusable ops scratch slice.
func (c *Committer) commit(batch []*pending, ops []Op) []Op {
	ops = ops[:0]
	for _, p := range batch {
		ops = append(ops, p.op)
	}
	start := time.Now()
	results := c.applier.ApplyBatch(ops)
	if c.mCommit != nil {
		c.mCommit.Observe(time.Since(start).Seconds())
		c.mSize.Observe(float64(len(batch)))
		c.mBatches.Inc()
	}
	for i, p := range batch {
		r := Result{Err: errors.New("ingest: applier returned no result")}
		if i < len(results) {
			r = results[i]
		}
		p.done <- r
	}
	return ops
}

// drain commits everything left in the queue in batchMax-sized groups.
// Close has already set closed, so the queue can only shrink.
func (c *Committer) drain(batch []*pending, ops []Op) {
	for {
		batch = batch[:0]
		for len(batch) < c.batchMax {
			select {
			case p := <-c.queue:
				batch = append(batch, p)
				continue
			default:
			}
			break
		}
		if len(batch) == 0 {
			return
		}
		ops = c.commit(batch, ops)
	}
}
