package ingest

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"incentivetree/internal/obs"
)

// fakeApplier records batches and can block inside ApplyBatch (gate)
// or fail individual ops (errFor).
type fakeApplier struct {
	mu      sync.Mutex
	batches [][]Op

	entered chan struct{} // receives one token per ApplyBatch entry
	gate    chan struct{} // when non-nil, ApplyBatch blocks until it closes
	errFor  func(Op) error
	short   bool // return an empty result slice
}

func (f *fakeApplier) ApplyBatch(ops []Op) []Result {
	if f.entered != nil {
		f.entered <- struct{}{}
	}
	if f.gate != nil {
		<-f.gate
	}
	f.mu.Lock()
	f.batches = append(f.batches, append([]Op(nil), ops...))
	f.mu.Unlock()
	if f.short {
		return nil
	}
	out := make([]Result, len(ops))
	for i, op := range ops {
		if f.errFor != nil {
			out[i].Err = f.errFor(op)
		}
		if out[i].Err == nil {
			out[i].Value = op.Name
		}
	}
	return out
}

func (f *fakeApplier) batchSizes() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	sizes := make([]int, len(f.batches))
	for i, b := range f.batches {
		sizes[i] = len(b)
	}
	return sizes
}

func TestSubmitReturnsValue(t *testing.T) {
	f := &fakeApplier{}
	c := New(f, Options{})
	defer c.Close()
	v, err := c.Submit(context.Background(), Op{Kind: OpJoin, Name: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	if v != "alice" {
		t.Fatalf("value = %v, want alice", v)
	}
}

// TestBatchFormation blocks the applier on a first op so later submits
// pile up in the queue, then checks they commit as one batch.
func TestBatchFormation(t *testing.T) {
	f := &fakeApplier{entered: make(chan struct{}, 8), gate: make(chan struct{})}
	c := New(f, Options{BatchMax: 64})
	defer c.Close()

	errs := make(chan error, 6)
	go func() {
		_, err := c.Submit(context.Background(), Op{Kind: OpJoin, Name: "first"})
		errs <- err
	}()
	<-f.entered // the committer is now inside ApplyBatch for "first"

	for i := 0; i < 5; i++ {
		go func(i int) {
			_, err := c.Submit(context.Background(), Op{Kind: OpJoin, Name: fmt.Sprintf("p%d", i)})
			errs <- err
		}(i)
	}
	// Wait for all five to be queued behind the in-flight commit.
	deadline := time.Now().Add(5 * time.Second)
	for c.QueueLen() != 5 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: len=%d", c.QueueLen())
		}
		time.Sleep(time.Millisecond)
	}
	close(f.gate)
	<-f.entered // second batch entered
	for i := 0; i < 6; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	sizes := f.batchSizes()
	if len(sizes) != 2 || sizes[0] != 1 || sizes[1] != 5 {
		t.Fatalf("batch sizes = %v, want [1 5]", sizes)
	}
}

// TestBatchMaxCap checks queued work is split into batches of at most
// BatchMax ops.
func TestBatchMaxCap(t *testing.T) {
	f := &fakeApplier{entered: make(chan struct{}, 16), gate: make(chan struct{})}
	c := New(f, Options{BatchMax: 2})

	errs := make(chan error, 7)
	go func() {
		_, err := c.Submit(context.Background(), Op{Kind: OpJoin, Name: "first"})
		errs <- err
	}()
	<-f.entered
	for i := 0; i < 6; i++ {
		go func(i int) {
			_, err := c.Submit(context.Background(), Op{Kind: OpJoin, Name: fmt.Sprintf("p%d", i)})
			errs <- err
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.QueueLen() != 6 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: len=%d", c.QueueLen())
		}
		time.Sleep(time.Millisecond)
	}
	close(f.gate)
	for i := 0; i < 7; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	for i, n := range f.batchSizes() {
		if n > 2 {
			t.Fatalf("batch %d has %d ops, want <= 2", i, n)
		}
	}
}

// TestPerOpErrorIsolation: one op's failure must not fail its
// batchmates.
func TestPerOpErrorIsolation(t *testing.T) {
	bad := errors.New("bad op")
	f := &fakeApplier{errFor: func(op Op) error {
		if op.Name == "bad" {
			return bad
		}
		return nil
	}}
	c := New(f, Options{})
	defer c.Close()
	if _, err := c.Submit(context.Background(), Op{Kind: OpJoin, Name: "bad"}); !errors.Is(err, bad) {
		t.Fatalf("bad op err = %v, want %v", err, bad)
	}
	if v, err := c.Submit(context.Background(), Op{Kind: OpJoin, Name: "good"}); err != nil || v != "good" {
		t.Fatalf("good op = %v, %v", v, err)
	}
}

// TestQueueFullSheds fills a depth-1 queue while the applier is blocked
// and checks the next submit fails fast with ErrQueueFull.
func TestQueueFullSheds(t *testing.T) {
	f := &fakeApplier{entered: make(chan struct{}, 4), gate: make(chan struct{})}
	reg := obs.NewRegistry()
	c := New(f, Options{QueueDepth: 1, Registry: reg})

	done := make(chan error, 2)
	go func() {
		_, err := c.Submit(context.Background(), Op{Kind: OpJoin, Name: "inflight"})
		done <- err
	}()
	<-f.entered // "inflight" dequeued; the queue is empty again
	go func() {
		_, err := c.Submit(context.Background(), Op{Kind: OpJoin, Name: "queued"})
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for c.QueueLen() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := c.Submit(context.Background(), Op{Kind: OpJoin, Name: "shed"}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if got := reg.Counter("itree_ingest_shed_total", "").Value(); got != 1 {
		t.Fatalf("itree_ingest_shed_total = %d, want 1", got)
	}
	close(f.gate)
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
}

// TestCloseDrains: ops admitted before Close must still commit, and
// submits after Close fail with ErrClosed.
func TestCloseDrains(t *testing.T) {
	f := &fakeApplier{entered: make(chan struct{}, 8), gate: make(chan struct{})}
	c := New(f, Options{})

	errs := make(chan error, 4)
	go func() {
		_, err := c.Submit(context.Background(), Op{Kind: OpJoin, Name: "first"})
		errs <- err
	}()
	<-f.entered
	for i := 0; i < 3; i++ {
		go func(i int) {
			_, err := c.Submit(context.Background(), Op{Kind: OpJoin, Name: fmt.Sprintf("q%d", i)})
			errs <- err
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.QueueLen() != 3 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}
	closed := make(chan struct{})
	go func() {
		c.Close()
		close(closed)
	}()
	close(f.gate)
	<-closed
	for i := 0; i < 4; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("queued op lost at close: %v", err)
		}
	}
	if _, err := c.Submit(context.Background(), Op{Kind: OpJoin, Name: "late"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close err = %v, want ErrClosed", err)
	}
	c.Close() // idempotent
}

// TestContextCancellation: an abandoned submitter gets ctx.Err while
// its op still commits.
func TestContextCancellation(t *testing.T) {
	f := &fakeApplier{entered: make(chan struct{}, 4), gate: make(chan struct{})}
	c := New(f, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Submit(ctx, Op{Kind: OpJoin, Name: "abandoned"})
		done <- err
	}()
	<-f.entered
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(f.gate)
	c.Close()
	if sizes := f.batchSizes(); len(sizes) != 1 || sizes[0] != 1 {
		t.Fatalf("the abandoned op should still have committed: %v", sizes)
	}
}

// TestShortResultSlice: an applier returning too few results must not
// strand its waiters.
func TestShortResultSlice(t *testing.T) {
	f := &fakeApplier{short: true}
	c := New(f, Options{})
	defer c.Close()
	_, err := c.Submit(context.Background(), Op{Kind: OpJoin, Name: "x"})
	if err == nil || !strings.Contains(err.Error(), "no result") {
		t.Fatalf("err = %v, want applier-returned-no-result", err)
	}
}

// TestMetricsLifecycle: New registers the pipeline's series, Close
// removes them (so deleted campaigns leave no orphan series behind).
func TestMetricsLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(&fakeApplier{}, Options{Registry: reg, Labels: []string{"campaign", "acme"}})
	if _, err := c.Submit(context.Background(), Op{Kind: OpJoin, Name: "a"}); err != nil {
		t.Fatal(err)
	}
	names := func() map[string]bool {
		out := map[string]bool{}
		for _, mv := range reg.Snapshot() {
			out[mv.Name] = true
		}
		return out
	}
	for _, want := range []string{"itree_ingest_queue_depth", "itree_ingest_shed_total", "itree_ingest_batches_total", "itree_ingest_batch_size", "itree_ingest_commit_seconds"} {
		if !names()[want] {
			t.Fatalf("metric %s not registered", want)
		}
	}
	c.Close()
	for name := range names() {
		if strings.HasPrefix(name, "ingest_") {
			t.Fatalf("metric %s still registered after Close", name)
		}
	}
}

// TestBatchWait: a positive BatchWait holds the first op long enough
// for stragglers to join its batch.
func TestBatchWait(t *testing.T) {
	f := &fakeApplier{}
	c := New(f, Options{BatchWait: 200 * time.Millisecond, BatchMax: 8})
	defer c.Close()
	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func(i int) {
			_, err := c.Submit(context.Background(), Op{Kind: OpJoin, Name: fmt.Sprintf("w%d", i)})
			errs <- err
		}(i)
		time.Sleep(10 * time.Millisecond)
	}
	for i := 0; i < 3; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if sizes := f.batchSizes(); len(sizes) != 1 || sizes[0] != 3 {
		t.Fatalf("batch sizes = %v, want one batch of 3", sizes)
	}
}
