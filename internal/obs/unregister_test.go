package obs

import (
	"strings"
	"testing"
)

func TestUnregister(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "hits", "campaign", "a").Inc()
	r.Counter("hits_total", "hits", "campaign", "b").Inc()
	r.GaugeFunc("size", "size", func() float64 { return 1 }, "campaign", "a")

	if !r.Unregister("hits_total", "campaign", "a") {
		t.Fatal("existing series should unregister")
	}
	if r.Unregister("hits_total", "campaign", "a") {
		t.Fatal("second unregister should report missing")
	}
	if r.Unregister("no_such_metric") {
		t.Fatal("unknown family should report missing")
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, `campaign="a"`) && strings.Contains(out, "hits_total") &&
		strings.Contains(out, `hits_total{campaign="a"}`) {
		t.Fatalf("unregistered series still exposed:\n%s", out)
	}
	if !strings.Contains(out, `hits_total{campaign="b"}`) {
		t.Fatalf("sibling series lost:\n%s", out)
	}

	// Removing the last series drops the whole family from exposition.
	if !r.Unregister("size", "campaign", "a") {
		t.Fatal("gauge func should unregister")
	}
	sb.Reset()
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "size") {
		t.Fatalf("empty family still exposed:\n%s", sb.String())
	}
}
