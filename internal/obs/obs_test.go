package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value() = %d, want 5", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("Value() = %v, want 1.5", got)
	}
	g.Add(math.Inf(1))
	if got := g.Value(); !math.IsInf(got, 1) {
		t.Fatalf("Value() = %v, want +Inf", got)
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("Count() = %d, want 5", got)
	}
	if got := h.Sum(); got != 106 {
		t.Fatalf("Sum() = %v, want 106", got)
	}
	want := []uint64{2, 3, 4, 5} // cumulative: <=1, <=2, <=4, +Inf
	got := h.bucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucketCounts() = %v, want %v", got, want)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30})
	// 10 observations uniformly in (0, 10]: median interpolates to ~5.
	for i := 1; i <= 10; i++ {
		h.Observe(float64(i))
	}
	if q := h.Quantile(0.5); q != 5 {
		t.Fatalf("Quantile(0.5) = %v, want 5", q)
	}
	if q := h.Quantile(1); q != 10 {
		t.Fatalf("Quantile(1) = %v, want 10", q)
	}
	// Values beyond the last bound clamp to it.
	h2 := NewHistogram([]float64{1, 2})
	h2.Observe(50)
	if q := h2.Quantile(0.99); q != 2 {
		t.Fatalf("Quantile(0.99) = %v, want clamp to 2", q)
	}
	// Empty histogram.
	h3 := NewHistogram(nil)
	if q := h3.Quantile(0.5); q != 0 {
		t.Fatalf("empty Quantile(0.5) = %v, want 0", q)
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing bounds should panic")
		}
	}()
	NewHistogram([]float64{1, 1})
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("ops_total", "ops", "kind", "x")
	b := r.Counter("ops_total", "ops", "kind", "x")
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	c := r.Counter("ops_total", "ops", "kind", "y")
	if a == c {
		t.Fatal("distinct labels must return distinct counters")
	}
	// Label order must not matter.
	d := r.Gauge("g", "", "a", "1", "b", "2")
	e := r.Gauge("g", "", "b", "2", "a", "1")
	if d != e {
		t.Fatal("label order must not change series identity")
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge should panic")
		}
	}()
	r.Gauge("m", "")
}

func TestGaugeFuncReplaces(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("live", "", func() float64 { return 1 })
	r.GaugeFunc("live", "", func() float64 { return 2 })
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Value != 2 {
		t.Fatalf("Snapshot() = %+v, want single value 2", snap)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "").Add(3)
	r.Gauge("a_gauge", "").Set(1.5)
	h := r.Histogram("c_seconds", "", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("Snapshot() has %d entries, want 3", len(snap))
	}
	// Sorted by name.
	if snap[0].Name != "a_gauge" || snap[1].Name != "b_total" || snap[2].Name != "c_seconds" {
		t.Fatalf("Snapshot() order = %v %v %v", snap[0].Name, snap[1].Name, snap[2].Name)
	}
	if snap[1].Value != 3 {
		t.Fatalf("counter value = %v, want 3", snap[1].Value)
	}
	hs := snap[2]
	if hs.Count != 2 || hs.Sum != 2 || hs.P50 == 0 {
		t.Fatalf("histogram snapshot = %+v", hs)
	}
}

// TestConcurrentRecording hammers one registry from many goroutines —
// registration races, counter increments, histogram observations, and
// concurrent scrapes — and checks nothing is lost. Run under -race.
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("hits_total", "h", "route", "/x").Inc()
				r.Gauge("depth", "d").Set(float64(i))
				r.Histogram("lat_seconds", "l", nil, "route", "/x").Observe(float64(i) * 1e-6)
			}
		}()
	}
	// Concurrent scrapes must not race registrations.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = r.Snapshot()
		}
	}()
	wg.Wait()
	if got := r.Counter("hits_total", "h", "route", "/x").Value(); got != workers*perWorker {
		t.Fatalf("hits_total = %d, want %d", got, workers*perWorker)
	}
	h := r.Histogram("lat_seconds", "l", nil, "route", "/x")
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestConcurrentGaugeAdd(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 8000 {
		t.Fatalf("gauge = %v, want 8000 (CAS add lost updates)", got)
	}
}

func TestLabelKeyEscaping(t *testing.T) {
	got := labelKey([]string{"k", "a\"b\\c\nd"})
	want := `k="a\"b\\c\nd"`
	if got != want {
		t.Fatalf("labelKey = %s, want %s", got, want)
	}
}
