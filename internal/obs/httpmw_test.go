package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func newInstrumentedMux(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/ok", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("okay"))
	})
	mux.HandleFunc("GET /v1/items/{id}", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("item"))
	})
	mux.HandleFunc("GET /v1/fail", func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "boom", http.StatusBadRequest)
	})
	return Middleware(reg, mux)
}

func TestMiddlewareRecordsRoutesAndClasses(t *testing.T) {
	reg := NewRegistry()
	ts := httptest.NewServer(newInstrumentedMux(reg))
	defer ts.Close()

	get := func(path string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	get("/v1/ok")
	get("/v1/ok")
	get("/v1/items/1")
	get("/v1/items/2")
	get("/v1/fail")
	get("/nowhere")

	if got := reg.Counter("itree_http_requests_total", "", "route", "GET /v1/ok", "code", "2xx").Value(); got != 2 {
		t.Fatalf("ok 2xx count = %d, want 2", got)
	}
	// Wildcard paths collapse into one pattern label.
	if got := reg.Counter("itree_http_requests_total", "", "route", "GET /v1/items/{id}", "code", "2xx").Value(); got != 2 {
		t.Fatalf("items 2xx count = %d, want 2", got)
	}
	if got := reg.Counter("itree_http_requests_total", "", "route", "GET /v1/fail", "code", "4xx").Value(); got != 1 {
		t.Fatalf("fail 4xx count = %d, want 1", got)
	}
	if got := reg.Counter("itree_http_requests_total", "", "route", "unmatched", "code", "4xx").Value(); got != 1 {
		t.Fatalf("unmatched 4xx count = %d, want 1", got)
	}
	// Latency histogram observed every ok request.
	h := reg.Histogram("itree_http_request_duration_seconds", "", nil, "route", "GET /v1/ok")
	if got := h.Count(); got != 2 {
		t.Fatalf("latency observations = %d, want 2", got)
	}
	if h.Sum() <= 0 {
		t.Fatalf("latency sum = %v, want > 0", h.Sum())
	}
	// Response bytes counted ("okay" is 4 bytes).
	if got := reg.Counter("itree_http_response_bytes_total", "", "route", "GET /v1/ok").Value(); got != 8 {
		t.Fatalf("response bytes = %d, want 8", got)
	}
	// In-flight gauge returned to zero.
	if got := reg.Gauge("itree_http_requests_in_flight", "").Value(); got != 0 {
		t.Fatalf("in-flight = %v, want 0", got)
	}
}

func TestMiddlewareConcurrent(t *testing.T) {
	reg := NewRegistry()
	ts := httptest.NewServer(newInstrumentedMux(reg))
	defer ts.Close()
	var wg sync.WaitGroup
	const n = 50
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/ok")
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("itree_http_requests_total", "", "route", "GET /v1/ok", "code", "2xx").Value(); got != n {
		t.Fatalf("count = %d, want %d", got, n)
	}
}

func TestMiddlewareExposition(t *testing.T) {
	reg := NewRegistry()
	ts := httptest.NewServer(newInstrumentedMux(reg))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/ok")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		`itree_http_requests_total{code="2xx",route="GET /v1/ok"} 1`,
		`http_request_duration_seconds_bucket{route="GET /v1/ok",le="+Inf"} 1`,
		`http_request_duration_seconds_count{route="GET /v1/ok"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
}

func TestStatusRecorderDefaults(t *testing.T) {
	if got := statusClass(204); got != "2xx" {
		t.Fatalf("statusClass(204) = %q", got)
	}
	if got := statusClass(999); got != "other" {
		t.Fatalf("statusClass(999) = %q", got)
	}
}
