package obs

import (
	"bufio"
	"io"
	"net/http"
	"strconv"
)

// WritePrometheus emits every registered metric in the Prometheus text
// exposition format (version 0.0.4): # HELP / # TYPE headers followed
// by one line per series, histograms expanded into cumulative _bucket
// series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, fam := range r.collect() {
		if fam.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(fam.name)
			bw.WriteByte(' ')
			bw.WriteString(fam.help)
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(fam.name)
		bw.WriteByte(' ')
		bw.WriteString(fam.typ)
		bw.WriteByte('\n')
		for _, s := range fam.series {
			switch m := s.metric.(type) {
			case *Counter:
				writeSeries(bw, fam.name, "", s.key, "", formatUint(m.Value()))
			case *Gauge:
				writeSeries(bw, fam.name, "", s.key, "", formatFloat(m.Value()))
			case func() float64:
				writeSeries(bw, fam.name, "", s.key, "", formatFloat(m()))
			case *Histogram:
				cum := m.bucketCounts()
				for i, c := range cum {
					le := "+Inf"
					if i < len(m.bounds) {
						le = formatFloat(m.bounds[i])
					}
					writeSeries(bw, fam.name, "_bucket", s.key, `le="`+le+`"`, formatUint(c))
				}
				writeSeries(bw, fam.name, "_sum", s.key, "", formatFloat(m.Sum()))
				writeSeries(bw, fam.name, "_count", s.key, "", formatUint(m.Count()))
			}
		}
	}
	return bw.Flush()
}

// writeSeries emits one `name_suffix{labels,extra} value` line; either
// label part may be empty.
func writeSeries(w *bufio.Writer, name, suffix, labels, extra, value string) {
	w.WriteString(name)
	w.WriteString(suffix)
	if labels != "" || extra != "" {
		w.WriteByte('{')
		w.WriteString(labels)
		if labels != "" && extra != "" {
			w.WriteByte(',')
		}
		w.WriteString(extra)
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(value)
	w.WriteByte('\n')
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Handler serves the registry as a Prometheus scrape target.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Write errors mean the scraper hung up; nothing to do.
		_ = r.WritePrometheus(w)
	})
}
