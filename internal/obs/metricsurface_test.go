package obs_test

import (
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"incentivetree/internal/core"
	"incentivetree/internal/experiments"
	"incentivetree/internal/geometric"
	"incentivetree/internal/obs"
	"incentivetree/internal/server"

	// Registers the journal and sybil metric families on the default
	// registry at package init.
	_ "incentivetree/internal/journal"
	_ "incentivetree/internal/sybil"
)

// metricNamePattern is the module-wide naming contract, enforced
// statically by cmd/itreevet's metricname analyzer. This test is the
// runtime regression for the itree_ namespace migration: every metric
// any subsystem actually registers must land in the shared namespace,
// so a rename that drifts off-convention fails here even before the
// linter runs.
var metricNamePattern = regexp.MustCompile(`^itree_[a-z0-9_]+(_total|_seconds|_bytes)?$`)

func TestRegisteredMetricSurfaceIsItreeNamespaced(t *testing.T) {
	m, err := geometric.Default(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s := server.New(experiments.Instrumented(m, reg), server.WithMetrics(reg))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Drive the surface so lazily created series exist: joins and a
	// contribution populate the domain gauges, the HTTP middleware
	// counters, and the instrumented-mechanism histograms.
	for _, body := range []string{
		`{"name":"ada"}`,
		`{"name":"bob","sponsor":"ada"}`,
	} {
		resp, err := ts.Client().Post(ts.URL+"/join", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := ts.Client().Post(ts.URL+"/contribute", "application/json", strings.NewReader(`{"name":"bob","amount":2}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = ts.Client().Get(ts.URL + "/tree")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	seen := 0
	for _, snap := range [][]obs.MetricValue{reg.Snapshot(), obs.Default().Snapshot()} {
		for _, mv := range snap {
			seen++
			if !metricNamePattern.MatchString(mv.Name) {
				t.Errorf("metric %q (type %s) escapes the itree_ namespace contract", mv.Name, mv.Type)
			}
		}
	}
	// The two registries together carry the server gauges, middleware
	// counters, mechanism histograms, and the journal/sybil families; a
	// collapse of that surface means registration silently broke.
	if seen < 15 {
		t.Fatalf("only %d metric series registered, expected the full instrumented surface", seen)
	}
}
