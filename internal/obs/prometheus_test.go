package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total", "Total requests.", "route", "/v1/join", "code", "2xx").Add(7)
	r.Gauge("participants", "Current participants.").Set(42)
	r.GaugeFunc("utilization", "Budget utilization.", func() float64 { return 0.25 })
	h := r.Histogram("latency_seconds", "Request latency.", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP requests_total Total requests.",
		"# TYPE requests_total counter",
		`requests_total{code="2xx",route="/v1/join"} 7`,
		"# TYPE participants gauge",
		"participants 42",
		"utilization 0.25",
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.001"} 1`,
		`latency_seconds_bucket{le="0.01"} 2`,
		`latency_seconds_bucket{le="+Inf"} 3`,
		"latency_seconds_sum 5.0055",
		"latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusHistogramLabels(t *testing.T) {
	r := NewRegistry()
	r.Histogram("lat", "", []float64{1}, "route", "/x").Observe(0.5)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if want := `lat_bucket{route="/x",le="1"} 1`; !strings.Contains(buf.String(), want) {
		t.Fatalf("exposition missing %q:\n%s", want, buf.String())
	}
	if want := `lat_sum{route="/x"}`; !strings.Contains(buf.String(), want) {
		t.Fatalf("exposition missing %q:\n%s", want, buf.String())
	}
}

// TestExpositionParses validates the output's line grammar: every
// non-comment line is `name{labels} value` with a parseable value, and
// histogram bucket counts are monotonically non-decreasing.
func TestExpositionParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "help").Inc()
	h := r.Histogram("b_seconds", "help", nil, "op", "join")
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) * 1e-4)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	var lastBucket uint64
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("no value separator in %q", line)
		}
		name, val := line[:sp], line[sp+1:]
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		if strings.Contains(name, "_bucket{") {
			c := uint64(f)
			if c < lastBucket {
				t.Fatalf("bucket counts not cumulative at %q", line)
			}
			lastBucket = c
			if strings.Contains(name, `le="+Inf"`) {
				lastBucket = 0
			}
		}
	}
}

func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "").Add(3)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 3") {
		t.Fatalf("body = %q", rec.Body.String())
	}
}

func ExampleRegistry_WritePrometheus() {
	r := NewRegistry()
	r.Counter("joins_total", "Participants joined.").Add(2)
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	fmt.Print(buf.String())
	// Output:
	// # HELP joins_total Participants joined.
	// # TYPE joins_total counter
	// joins_total 2
}
