// Package obs is a dependency-free observability toolkit for the
// Incentive Tree serving stack: atomic counters, float gauges,
// fixed-bucket latency histograms with percentile estimation, a
// concurrent metric registry, Prometheus text-format exposition, and
// HTTP middleware that records per-route traffic.
//
// Design goals, in order:
//
//  1. Zero dependencies — stdlib only, so every internal package may
//     import it without widening the module graph.
//  2. Cheap hot paths — recording a metric is a handful of atomic
//     operations; callers keep *Counter/*Gauge/*Histogram handles so
//     the registry map is only consulted at registration time.
//  3. Scrape-friendly — Registry.WritePrometheus emits the text
//     exposition format, and Registry.Snapshot returns the same data
//     structured for JSON APIs like the daemon's /v1/stats.
//
// Library packages (journal, incremental) record into the process-wide
// Default registry; the HTTP server takes an explicit *Registry so
// tests can isolate their recordings.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count. The zero value is
// ready to use; all methods are safe for concurrent use.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) { c.n.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Gauge is an instantaneous float64 value (queue depth, utilization,
// in-flight requests). The zero value is ready to use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adds delta (may be negative).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefLatencyBuckets are the default histogram bounds, in seconds,
// spanning sub-microsecond incremental-engine updates up to multi-second
// full-tree evaluations.
var DefLatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram with cumulative "le" semantics
// (bucket i counts observations <= bounds[i]; the final implicit bucket
// is +Inf). Observations are lock-free; reads see a consistent-enough
// view for monitoring (bucket counts and sum may momentarily disagree
// under concurrent writes).
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    Gauge
	count  atomic.Uint64
}

// NewHistogram builds a histogram over the given strictly increasing
// upper bounds. Pass nil for DefLatencyBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not increasing: %v", bounds))
		}
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Latency buckets are log-spaced and short; linear scan beats
	// sort.SearchFloat64s for the < ~25 bounds used here.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation inside the bucket containing the target rank, the same
// estimate Prometheus' histogram_quantile computes. Observations in the
// +Inf bucket clamp to the largest finite bound. Returns 0 with no
// observations.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if cum+n >= rank || i == len(h.counts)-1 {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			if n == 0 {
				return hi
			}
			return lo + (hi-lo)*((rank-cum)/n)
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// bucketCounts returns the cumulative count per bound plus +Inf, in
// exposition order.
func (h *Histogram) bucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

// Metric kinds as reported by Snapshot and the exposition writer.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// family groups all label-series of one metric name.
type family struct {
	name   string
	help   string
	typ    string
	series map[string]any // canonical label string -> *Counter | *Gauge | func() float64 | *Histogram
}

// Registry is a concurrent collection of named metrics. Registration
// methods are get-or-create: calling Counter twice with the same name
// and labels returns the same handle, so instrumented packages can
// register at init and hot paths never touch the registry map.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry used by library
// instrumentation (journal appends, incremental engine ops) and served
// by cmd/itreed's /metrics endpoint.
func Default() *Registry { return defaultRegistry }

// labelKey renders variadic "k1, v1, k2, v2, ..." pairs as the
// canonical `k1="v1",k2="v2"` series key, escaping per the Prometheus
// text format. Pairs are sorted by key.
func labelKey(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", labels))
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// register finds or creates the series for (name, labels), using make
// to build a fresh metric. It panics if name is already registered with
// a different type — a programming error, not a runtime condition.
func (r *Registry) register(name, help, typ string, labels []string, make func() any) any {
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.families[name]
	if !ok {
		fam = &family{name: name, help: help, typ: typ, series: map[string]any{}}
		r.families[name] = fam
	}
	if fam.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, fam.typ, typ))
	}
	if fam.help == "" {
		fam.help = help
	}
	m, ok := fam.series[key]
	if !ok {
		m = make()
		fam.series[key] = m
	}
	return m
}

// Counter returns the counter for (name, labels), creating it on first
// use. Labels are variadic key/value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return r.register(name, help, TypeCounter, labels, func() any { return new(Counter) }).(*Counter)
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return r.register(name, help, TypeGauge, labels, func() any { return new(Gauge) }).(*Gauge)
}

// GaugeFunc registers (or replaces) a gauge whose value is computed by
// fn at scrape time — for values derived from live state, like tree
// size or budget utilization. fn must be safe for concurrent calls.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.families[name]
	if !ok {
		fam = &family{name: name, help: help, typ: TypeGauge, series: map[string]any{}}
		r.families[name] = fam
	}
	if fam.typ != TypeGauge {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as gauge func", name, fam.typ))
	}
	fam.series[key] = fn
}

// Histogram returns the histogram for (name, labels), creating it with
// the given bounds on first use (nil bounds = DefLatencyBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	return r.register(name, help, TypeHistogram, labels, func() any { return NewHistogram(bounds) }).(*Histogram)
}

// Unregister removes the series for (name, labels) from the registry,
// reporting whether it existed. When the last series of a family is
// removed the family itself disappears from exposition. It exists for
// dynamically-scoped metrics — e.g. per-campaign gauges whose campaign
// has been deleted — and is a no-op for unknown names. Outstanding
// metric handles stay usable but are no longer scraped.
func (r *Registry) Unregister(name string, labels ...string) bool {
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.families[name]
	if !ok {
		return false
	}
	if _, ok := fam.series[key]; !ok {
		return false
	}
	delete(fam.series, key)
	if len(fam.series) == 0 {
		delete(r.families, name)
	}
	return true
}

// MetricValue is one series in a Snapshot.
type MetricValue struct {
	Name   string `json:"name"`
	Labels string `json:"labels,omitempty"`
	Type   string `json:"type"`
	// Value holds the counter or gauge value (counters are exact
	// integers below 2^53).
	Value float64 `json:"value"`
	// Histogram-only summary statistics.
	Count uint64  `json:"count,omitempty"`
	Sum   float64 `json:"sum,omitempty"`
	P50   float64 `json:"p50,omitempty"`
	P95   float64 `json:"p95,omitempty"`
	P99   float64 `json:"p99,omitempty"`
}

// Snapshot returns every series' current value, sorted by name then
// label key — the structured twin of WritePrometheus for JSON APIs.
func (r *Registry) Snapshot() []MetricValue {
	var out []MetricValue
	for _, fam := range r.collect() {
		for _, s := range fam.series {
			mv := MetricValue{Name: fam.name, Labels: s.key, Type: fam.typ}
			switch m := s.metric.(type) {
			case *Counter:
				mv.Value = float64(m.Value())
			case *Gauge:
				mv.Value = m.Value()
			case func() float64:
				mv.Value = m()
			case *Histogram:
				mv.Count = m.Count()
				mv.Sum = m.Sum()
				mv.P50 = m.Quantile(0.50)
				mv.P95 = m.Quantile(0.95)
				mv.P99 = m.Quantile(0.99)
			}
			out = append(out, mv)
		}
	}
	return out
}

// series is one (label set, metric) pair of a collected family.
type series struct {
	key    string
	metric any
}

// collectedFamily is a point-in-time copy of a family's series list,
// sorted for deterministic output.
type collectedFamily struct {
	name, help, typ string
	series          []series
}

// collect copies the registry's structure under the read lock so
// exposition can iterate without racing concurrent registrations.
// Metric values themselves are read atomically afterwards.
func (r *Registry) collect() []collectedFamily {
	r.mu.RLock()
	out := make([]collectedFamily, 0, len(r.families))
	for _, f := range r.families {
		cf := collectedFamily{name: f.name, help: f.help, typ: f.typ}
		for key, m := range f.series {
			cf.series = append(cf.series, series{key, m})
		}
		sort.Slice(cf.series, func(i, j int) bool { return cf.series[i].key < cf.series[j].key })
		out = append(out, cf)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
