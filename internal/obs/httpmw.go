package obs

import (
	"net/http"
	"strconv"
	"time"
)

// Middleware wraps next so every request is recorded into reg:
//
//	itree_http_requests_total{route,code}      request count by status class
//	itree_http_request_duration_seconds{route} latency histogram
//	itree_http_response_bytes_total{route}     response body bytes
//	itree_http_requests_in_flight              gauge of concurrent requests
//
// The route label is the ServeMux pattern that matched (e.g.
// "POST /v1/join"), so path wildcards like {name} do not explode label
// cardinality; requests that matched no pattern are labelled
// "unmatched". Metrics are recorded after next returns, when the mux
// has stamped the pattern onto the request.
func Middleware(reg *Registry, next http.Handler) http.Handler {
	inFlight := reg.Gauge("itree_http_requests_in_flight",
		"Number of HTTP requests currently being served.")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		inFlight.Add(1)
		defer inFlight.Add(-1)
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r)
		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		reg.Counter("itree_http_requests_total",
			"HTTP requests served, by route and status class.",
			"route", route, "code", statusClass(rec.status())).Inc()
		reg.Histogram("itree_http_request_duration_seconds",
			"HTTP request latency in seconds, by route.",
			nil, "route", route).Observe(time.Since(start).Seconds())
		reg.Counter("itree_http_response_bytes_total",
			"HTTP response body bytes written, by route.",
			"route", route).Add(uint64(rec.bytes))
	})
}

// statusRecorder captures the status code and body size a handler
// writes, defaulting to 200 when the handler never calls WriteHeader.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	bytes int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(p)
	r.bytes += n
	return n, err
}

func (r *statusRecorder) status() int {
	if r.code == 0 {
		return http.StatusOK
	}
	return r.code
}

// statusClass collapses a status code into its class ("2xx", "4xx", …)
// to keep label cardinality bounded.
func statusClass(code int) string {
	if code < 100 || code > 599 {
		return "other"
	}
	return strconv.Itoa(code/100) + "xx"
}

// Since is a convenience for timing a code section into a latency
// histogram: defer a call with the section's start time.
func Since(h *Histogram, start time.Time) {
	h.Observe(time.Since(start).Seconds())
}
