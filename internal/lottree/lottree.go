// Package lottree implements the fixed-total-reward Lottery Tree model of
// Douceur and Moscibroda (SIGCOMM 2007), the source of the Luxor and
// Pachira mechanisms, together with the "L-" lifting of Sect. 4.2 of the
// Incentive Tree paper that transforms any fixed-reward mechanism into an
// Incentive Tree mechanism by scaling its (normalized) reward shares by
// Phi * C(T).
//
// In the Lottery Tree model the system organizer spends a fixed amount of
// money; a mechanism therefore computes, for each participant, its
// expected share of a single normalized prize, with shares summing to at
// most 1.
//
// The paper does not restate Luxor's formula (only that L-Luxor "is very
// similar to the (a,b)-Geometric Mechanism, and achieves the same
// properties"); Luxor here is reconstructed accordingly as a normalized
// own-contribution term plus a geometrically decaying solicitation bonus.
// This reconstruction is documented in DESIGN.md; only its property
// profile is load-bearing for the paper's argument, and our property
// checkers confirm it matches the profile of Theorem 1.
package lottree

import (
	"fmt"
	"math"

	"incentivetree/internal/core"
	"incentivetree/internal/tree"
)

// Shares maps every node of a tree to its expected fraction of the fixed
// prize. Shares sum to at most 1; the imaginary root's entry is zero.
type Shares []float64

// Of returns the share of id, or 0 outside the tree.
func (s Shares) Of(id tree.NodeID) float64 {
	if id < 0 || int(id) >= len(s) {
		return 0
	}
	return s[id]
}

// Total returns the summed shares.
func (s Shares) Total() float64 {
	t := 0.0
	for _, v := range s {
		t += v
	}
	return t
}

// Mechanism is a fixed-total-reward (Lottery Tree) mechanism.
type Mechanism interface {
	Name() string
	Shares(t *tree.Tree) (Shares, error)
}

// sharesInto is the optional allocation-free fast path of a lottery
// mechanism, mirroring core.IntoMechanism: compute the same shares as
// Shares, writing into buf when capacity allows.
type sharesInto interface {
	SharesInto(t *tree.Tree, buf Shares) (Shares, error)
}

// resizeShares returns buf resized to n zeroed entries, reusing its
// backing array when capacity allows.
func resizeShares(buf Shares, n int) Shares {
	if cap(buf) < n {
		return make(Shares, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// Luxor is the reconstructed Luxor mechanism: participant u's expected
// share is
//
//	beta * C(u)/C(T)
//	  + (1-beta) * ((1-a)/a) * sum_{v in T_u \ u} a^{dep_u(v)} C(v)/C(T).
//
// The solicitation coefficient is normalized so that each contribution
// hands out at most (1-beta) of itself along its ancestor chain, keeping
// total shares at most 1.
type Luxor struct {
	beta, a float64
}

// NewLuxor validates 0 < beta <= 1 and 0 < a < 1.
func NewLuxor(beta, a float64) (*Luxor, error) {
	if !(beta > 0 && beta <= 1) {
		return nil, fmt.Errorf("%w: luxor beta = %v, need 0 < beta <= 1", core.ErrBadParams, beta)
	}
	if !(a > 0 && a < 1) {
		return nil, fmt.Errorf("%w: luxor a = %v, need 0 < a < 1", core.ErrBadParams, a)
	}
	return &Luxor{beta: beta, a: a}, nil
}

// Name implements Mechanism.
func (l *Luxor) Name() string { return fmt.Sprintf("Luxor(beta=%.3g,a=%.3g)", l.beta, l.a) }

// Shares implements Mechanism in O(n) via bottom-up weighted sums.
func (l *Luxor) Shares(t *tree.Tree) (Shares, error) {
	return l.SharesInto(t, nil)
}

// SharesInto is the allocation-free variant of Shares: buf first
// accumulates the bubble sums bottom-up, then is rewritten in place in id
// order (entry u only reads bubble[u], still intact when u is reached).
func (l *Luxor) SharesInto(t *tree.Tree, buf Shares) (Shares, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	total := t.Total()
	s := resizeShares(buf, t.Len())
	if total == 0 {
		return s, nil
	}
	// bubble[u] = sum_{v in T_u \ u} a^{dep_u(v)} C(v)
	bubble := s
	for id := t.Len() - 1; id >= 1; id-- {
		u := tree.NodeID(id)
		p := t.Parent(u)
		bubble[p] += l.a * (bubble[u] + t.Contribution(u))
	}
	coeff := (1 - l.beta) * (1 - l.a) / l.a
	for id := 1; id < t.Len(); id++ {
		u := tree.NodeID(id)
		s[u] = (l.beta*t.Contribution(u) + coeff*bubble[u]) / total
	}
	s[tree.Root] = 0
	return s, nil
}

// Pachira is the Pachira mechanism from [7]: with the concave weighting
// pi(x) = beta*x + (1-beta)*x^(1+delta), participant u's expected share is
//
//	pi(C(T_u)/C(T)) - sum_{children q} pi(C(T_q)/C(T)).
//
// The concavity of the splitting argument (Jensen) is what buys USA.
type Pachira struct {
	beta, delta float64
}

// NewPachira validates 0 <= beta <= 1 and delta > 0.
func NewPachira(beta, delta float64) (*Pachira, error) {
	if !(beta >= 0 && beta <= 1) {
		return nil, fmt.Errorf("%w: pachira beta = %v, need 0 <= beta <= 1", core.ErrBadParams, beta)
	}
	if !(delta > 0) {
		return nil, fmt.Errorf("%w: pachira delta = %v, need delta > 0", core.ErrBadParams, delta)
	}
	return &Pachira{beta: beta, delta: delta}, nil
}

// Name implements Mechanism.
func (p *Pachira) Name() string {
	return fmt.Sprintf("Pachira(beta=%.3g,delta=%.3g)", p.beta, p.delta)
}

// Pi evaluates the weighting function pi(x) = beta*x + (1-beta)*x^(1+delta).
func (p *Pachira) Pi(x float64) float64 {
	return p.beta*x + (1-p.beta)*math.Pow(x, 1+p.delta)
}

// Shares implements Mechanism.
func (p *Pachira) Shares(t *tree.Tree) (Shares, error) {
	return p.SharesInto(t, nil)
}

// SharesInto is the allocation-free variant of Shares. buf first holds
// the subtree sums and is rewritten in place in id order: entry u reads
// its own sum and those of its children, whose ids are strictly larger
// and therefore not yet overwritten.
func (p *Pachira) SharesInto(t *tree.Tree, buf Shares) (Shares, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	total := t.Total()
	if total == 0 {
		return resizeShares(buf, t.Len()), nil
	}
	sums := t.SubtreeSumsInto([]float64(buf))
	s := Shares(sums)
	for id := 1; id < t.Len(); id++ {
		u := tree.NodeID(id)
		share := p.Pi(sums[u] / total)
		// Sibling-chain order is join order, keeping the float
		// subtraction sequence — and thus the bytes — unchanged.
		for q := t.FirstChild(u); q != tree.None; q = t.NextSibling(q) {
			share -= p.Pi(sums[q] / total)
		}
		if share < 0 {
			// Guard against float noise; pi's superadditivity on [0,1]
			// makes the exact value non-negative.
			share = 0
		}
		s[u] = share
	}
	s[tree.Root] = 0
	return s, nil
}

// Lifted adapts a fixed-reward mechanism to the Incentive Tree model
// (Sect. 4.2): R(u) = Phi * C(T) * share(u).
type Lifted struct {
	inner  Mechanism
	params core.Params
}

// Lift wraps a lottery mechanism. Fairness-specific parameter regimes are
// validated by the NewL* helpers.
func Lift(inner Mechanism, p core.Params) (*Lifted, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Lifted{inner: inner, params: p}, nil
}

// NewLPachira builds the (beta, delta)-L-Pachira mechanism of Theorem 2,
// validating beta >= phi/Phi so that phi-RPC holds.
func NewLPachira(p core.Params, beta, delta float64) (*Lifted, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if beta < p.FairShare/p.Phi {
		return nil, fmt.Errorf("%w: L-Pachira beta = %v below phi/Phi = %v",
			core.ErrBadParams, beta, p.FairShare/p.Phi)
	}
	inner, err := NewPachira(beta, delta)
	if err != nil {
		return nil, err
	}
	return Lift(inner, p)
}

// NewLLuxor builds the L-Luxor mechanism, validating beta >= phi/Phi for
// the fairness floor.
func NewLLuxor(p core.Params, beta, a float64) (*Lifted, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if beta < p.FairShare/p.Phi {
		return nil, fmt.Errorf("%w: L-Luxor beta = %v below phi/Phi = %v",
			core.ErrBadParams, beta, p.FairShare/p.Phi)
	}
	inner, err := NewLuxor(beta, a)
	if err != nil {
		return nil, err
	}
	return Lift(inner, p)
}

// Name implements core.Mechanism.
func (l *Lifted) Name() string { return "L-" + l.inner.Name() }

// Params implements core.Mechanism.
func (l *Lifted) Params() core.Params { return l.params }

// Rewards implements core.Mechanism.
func (l *Lifted) Rewards(t *tree.Tree) (core.Rewards, error) {
	shares, err := l.inner.Shares(t)
	if err != nil {
		return nil, err
	}
	scale := l.params.Phi * t.Total()
	r := make(core.Rewards, len(shares))
	for i, s := range shares {
		r[i] = scale * s
	}
	return r, nil
}

// RewardsInto implements core.IntoMechanism when the inner lottery
// mechanism exposes a SharesInto fast path (both Luxor and Pachira do):
// the shares are computed into buf and scaled in place. Inner mechanisms
// without the fast path fall back to the allocating Rewards.
func (l *Lifted) RewardsInto(t *tree.Tree, buf core.Rewards) (core.Rewards, error) {
	si, ok := l.inner.(sharesInto)
	if !ok {
		return l.Rewards(t)
	}
	shares, err := si.SharesInto(t, Shares(buf))
	if err != nil {
		return nil, err
	}
	scale := l.params.Phi * t.Total()
	r := core.Rewards(shares)
	for i, s := range shares {
		r[i] = scale * s
	}
	return r, nil
}
