package lottree

import (
	"errors"
	"math"
	"strings"
	"testing"

	"incentivetree/internal/core"
	"incentivetree/internal/numeric"
	"incentivetree/internal/tree"
	"incentivetree/internal/treegen"
)

func TestNewLuxorValidation(t *testing.T) {
	tests := []struct {
		beta, a float64
		wantErr bool
	}{
		{0.5, 0.5, false},
		{1, 0.9, false},
		{0, 0.5, true},
		{1.2, 0.5, true},
		{0.5, 0, true},
		{0.5, 1, true},
	}
	for _, tc := range tests {
		_, err := NewLuxor(tc.beta, tc.a)
		if (err != nil) != tc.wantErr {
			t.Errorf("NewLuxor(%v, %v) err = %v, wantErr %v", tc.beta, tc.a, err, tc.wantErr)
		}
		if err != nil && !errors.Is(err, core.ErrBadParams) {
			t.Errorf("error should wrap ErrBadParams: %v", err)
		}
	}
}

func TestNewPachiraValidation(t *testing.T) {
	tests := []struct {
		beta, delta float64
		wantErr     bool
	}{
		{0.5, 1, false},
		{0, 0.5, false},
		{1, 2, false},
		{-0.1, 1, true},
		{1.1, 1, true},
		{0.5, 0, true},
		{0.5, -1, true},
	}
	for _, tc := range tests {
		_, err := NewPachira(tc.beta, tc.delta)
		if (err != nil) != tc.wantErr {
			t.Errorf("NewPachira(%v, %v) err = %v, wantErr %v", tc.beta, tc.delta, err, tc.wantErr)
		}
	}
}

func TestLuxorSharesSumAtMostOne(t *testing.T) {
	l, err := NewLuxor(0.4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range treegen.Corpus(21, 20, 60) {
		s, err := l.Shares(tr)
		if err != nil {
			t.Fatalf("tree %d: %v", i, err)
		}
		if got := s.Total(); !numeric.LessOrAlmostEqual(got, 1, numeric.Eps) {
			t.Fatalf("tree %d: luxor shares sum to %v > 1", i, got)
		}
		for _, u := range tr.Nodes() {
			if s.Of(u) < 0 {
				t.Fatalf("negative share %v", s.Of(u))
			}
		}
	}
}

func TestPachiraSharesSumAtMostOne(t *testing.T) {
	p, err := NewPachira(0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range treegen.Corpus(22, 20, 60) {
		s, err := p.Shares(tr)
		if err != nil {
			t.Fatalf("tree %d: %v", i, err)
		}
		if got := s.Total(); !numeric.LessOrAlmostEqual(got, 1, numeric.Eps) {
			t.Fatalf("tree %d: pachira shares sum to %v > 1", i, got)
		}
	}
}

// TestPachiraSharesHandComputed validates a fully hand-evaluated case.
//
// Tree: r -> u(1) -> v(1). Total = 2. With beta = 0, delta = 1
// (pi(x) = x^2): share(v) = (1/2)^2 = 1/4,
// share(u) = 1^2 - (1/2)^2 = 3/4.
func TestPachiraSharesHandComputed(t *testing.T) {
	p, err := NewPachira(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr := tree.FromSpecs(tree.Chain(1, 1))
	s, err := p.Shares(tr)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Of(1); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("share(u) = %v, want 0.75", got)
	}
	if got := s.Of(2); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("share(v) = %v, want 0.25", got)
	}
}

// TestLuxorSharesHandComputed validates a hand-evaluated Luxor case.
//
// Tree: r -> u(2) -> v(2). Total = 4. With beta = 1/2, a = 1/2, the
// solicitation coefficient is (1-beta)(1-a)/a = 1/2:
//
//	share(v) = (0.5*2) / 4              = 0.25
//	share(u) = (0.5*2 + 0.5*(0.5*2))/4  = 0.375
func TestLuxorSharesHandComputed(t *testing.T) {
	l, err := NewLuxor(0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	tr := tree.FromSpecs(tree.Chain(2, 2))
	s, err := l.Shares(tr)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Of(2); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("share(v) = %v, want 0.25", got)
	}
	if got := s.Of(1); math.Abs(got-0.375) > 1e-12 {
		t.Errorf("share(u) = %v, want 0.375", got)
	}
}

func TestSharesOnEmptyAndZeroTrees(t *testing.T) {
	l, _ := NewLuxor(0.5, 0.5)
	p, _ := NewPachira(0.5, 1)
	for _, m := range []Mechanism{l, p} {
		s, err := m.Shares(tree.New())
		if err != nil {
			t.Fatalf("%s on empty tree: %v", m.Name(), err)
		}
		if got := s.Total(); got != 0 {
			t.Fatalf("%s: empty tree shares = %v", m.Name(), got)
		}
		zero := tree.FromSpecs(tree.Spec{C: 0, Kids: []tree.Spec{{C: 0}}})
		s, err = m.Shares(zero)
		if err != nil {
			t.Fatalf("%s on zero tree: %v", m.Name(), err)
		}
		if got := s.Total(); got != 0 {
			t.Fatalf("%s: zero-contribution shares = %v", m.Name(), got)
		}
	}
}

func TestLiftScalesByPhiTimesTotal(t *testing.T) {
	p := core.Params{Phi: 0.5, FairShare: 0.05}
	lm, err := NewLPachira(p, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr := tree.FromSpecs(tree.Chain(1, 1))
	inner, _ := NewPachira(0.5, 1)
	shares, err := inner.Shares(tr)
	if err != nil {
		t.Fatal(err)
	}
	r, err := lm.Rewards(tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range tr.Nodes() {
		want := p.Phi * tr.Total() * shares.Of(u)
		if got := r.Of(u); math.Abs(got-want) > 1e-12 {
			t.Errorf("R(%d) = %v, want %v", u, got, want)
		}
	}
}

func TestLiftedBudgetOnCorpus(t *testing.T) {
	params := core.DefaultParams()
	lp, err := NewLPachira(params, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	ll, err := NewLLuxor(params, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []core.Mechanism{lp, ll} {
		for i, tr := range treegen.Corpus(23, 15, 60) {
			r, err := m.Rewards(tr)
			if err != nil {
				t.Fatalf("%s tree %d: %v", m.Name(), i, err)
			}
			if err := core.Audit(m, tr, r); err != nil {
				t.Fatalf("tree %d: %v", i, err)
			}
		}
	}
}

func TestLPachiraFairnessFloor(t *testing.T) {
	params := core.Params{Phi: 0.5, FairShare: 0.1}
	m, err := NewLPachira(params, 0.3, 1) // beta >= phi/Phi = 0.2
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range treegen.Corpus(24, 10, 40) {
		r, err := m.Rewards(tr)
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range tr.Nodes() {
			floor := params.FairShare * tr.Contribution(u)
			if !numeric.LessOrAlmostEqual(floor, r.Of(u), numeric.Eps) {
				t.Fatalf("R(%d) = %v below floor %v", u, r.Of(u), floor)
			}
		}
	}
}

func TestNewLPachiraRejectsLowBeta(t *testing.T) {
	params := core.Params{Phi: 0.5, FairShare: 0.2} // phi/Phi = 0.4
	if _, err := NewLPachira(params, 0.3, 1); err == nil {
		t.Fatal("beta below phi/Phi should be rejected")
	}
	if _, err := NewLLuxor(params, 0.3, 0.5); err == nil {
		t.Fatal("beta below phi/Phi should be rejected")
	}
}

func TestLiftedNames(t *testing.T) {
	params := core.DefaultParams()
	lp, _ := NewLPachira(params, 0.5, 1)
	if !strings.HasPrefix(lp.Name(), "L-Pachira") {
		t.Fatalf("Name = %q", lp.Name())
	}
	ll, _ := NewLLuxor(params, 0.5, 0.5)
	if !strings.HasPrefix(ll.Name(), "L-Luxor") {
		t.Fatalf("Name = %q", ll.Name())
	}
}

// TestLPachiraDependsOnGlobalTotal is the structural reason L-Pachira
// fails SL (Theorem 2): adding contribution OUTSIDE u's subtree changes
// u's reward.
func TestLPachiraDependsOnGlobalTotal(t *testing.T) {
	params := core.DefaultParams()
	m, err := NewLPachira(params, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	before := tree.FromSpecs(tree.Spec{C: 1, Kids: []tree.Spec{{C: 1}}})
	rBefore, err := m.Rewards(before)
	if err != nil {
		t.Fatal(err)
	}
	after := before.Clone()
	after.MustAdd(tree.Root, 10) // disjoint branch
	rAfter, err := m.Rewards(after)
	if err != nil {
		t.Fatal(err)
	}
	if numeric.AlmostEqual(rBefore.Of(2), rAfter.Of(2), numeric.Eps) {
		t.Fatal("L-Pachira should violate SL: reward unchanged by outside growth")
	}
}

// TestPachiraSplitPenalty spot-checks the Jensen argument behind USA: a
// node of contribution 2 earns more as one node than as a 1+1 chain of
// Sybils, all else equal.
func TestPachiraSplitPenalty(t *testing.T) {
	params := core.DefaultParams()
	m, err := NewLPachira(params, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	single := tree.FromSpecs(tree.Spec{C: 2})
	split := tree.FromSpecs(tree.Chain(1, 1))
	rs, err := m.Rewards(single)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := m.Rewards(split)
	if err != nil {
		t.Fatal(err)
	}
	if got := rp.Of(1) + rp.Of(2); got > rs.Of(1)+1e-12 {
		t.Fatalf("split reward %v exceeds single reward %v", got, rs.Of(1))
	}
}
