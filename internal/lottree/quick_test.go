package lottree

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"incentivetree/internal/core"
	"incentivetree/internal/numeric"
	"incentivetree/internal/tree"
)

// randomTree generates arbitrary referral trees for share-invariant
// checks.
type randomTree struct {
	T *tree.Tree
}

// Generate implements quick.Generator.
func (randomTree) Generate(r *rand.Rand, size int) reflect.Value {
	t := tree.New()
	n := 1 + r.Intn(size+1)
	for i := 0; i < n; i++ {
		parent := tree.NodeID(r.Intn(t.Len()))
		t.MustAdd(parent, r.Float64()*5)
	}
	return reflect.ValueOf(randomTree{T: t})
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(141))}
}

// TestQuickSharesAreDistribution: for arbitrary trees, both lottery
// mechanisms hand out non-negative shares summing to at most one.
func TestQuickSharesAreDistribution(t *testing.T) {
	luxor, err := NewLuxor(0.4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	pachira, err := NewPachira(0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Mechanism{luxor, pachira} {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			f := func(rt randomTree) bool {
				s, err := m.Shares(rt.T)
				if err != nil {
					return false
				}
				for _, v := range s {
					if v < 0 || math.IsNaN(v) {
						return false
					}
				}
				return numeric.LessOrAlmostEqual(s.Total(), 1, numeric.Eps)
			}
			if err := quick.Check(f, quickCfg()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestQuickPachiraSharesExhaustTree: in Pachira the shares of all
// participants telescope to sum exactly pi of each root-branch share;
// with a single root branch holding everything they sum to pi(1) = 1.
func TestQuickPachiraSharesExhaustTree(t *testing.T) {
	pachira, err := NewPachira(0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := func(rt randomTree) bool {
		total := rt.T.Total()
		if total == 0 {
			return true
		}
		s, err := pachira.Shares(rt.T)
		if err != nil {
			return false
		}
		want := 0.0
		sums := rt.T.SubtreeSums()
		for _, branch := range rt.T.Children(tree.Root) {
			want += pachira.Pi(sums[branch] / total)
		}
		return numeric.AlmostEqual(s.Total(), want, 1e-9)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLiftedBudget: lifting any lottery mechanism keeps the budget
// on arbitrary trees.
func TestQuickLiftedBudget(t *testing.T) {
	p := core.DefaultParams()
	lp, err := NewLPachira(p, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	ll, err := NewLLuxor(p, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []core.Mechanism{lp, ll} {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			f := func(rt randomTree) bool {
				r, err := m.Rewards(rt.T)
				if err != nil {
					return false
				}
				return core.Audit(m, rt.T, r) == nil
			}
			if err := quick.Check(f, quickCfg()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestQuickPachiraMergeBeatsSplit is the Jensen/USA structure at the
// share level: merging a leaf child into its parent never lowers the
// pair's combined share.
func TestQuickPachiraMergeBeatsSplit(t *testing.T) {
	pachira, err := NewPachira(0.3, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	f := func(rawParent, rawChild uint8) bool {
		cp := 0.1 + float64(rawParent)/32
		cc := 0.1 + float64(rawChild)/32
		split := tree.FromSpecs(tree.Spec{C: 5, Kids: []tree.Spec{
			{C: cp, Kids: []tree.Spec{{C: cc}}},
		}})
		merged := tree.FromSpecs(tree.Spec{C: 5, Kids: []tree.Spec{{C: cp + cc}}})
		ss, err := pachira.Shares(split)
		if err != nil {
			return false
		}
		sm, err := pachira.Shares(merged)
		if err != nil {
			return false
		}
		return numeric.LessOrAlmostEqual(ss.Of(2)+ss.Of(3), sm.Of(2), numeric.Eps)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}
