package properties_test

import (
	"strings"
	"testing"

	"incentivetree/internal/core"
	"incentivetree/internal/properties"
	"incentivetree/internal/tree"
)

// depthPayer rewards participants more the deeper they join — a
// deliberately USB-violating mechanism used to prove the checker's
// teeth (a joiner would bypass its solicitor to join deeper).
type depthPayer struct{}

func (depthPayer) Name() string        { return "depth-payer" }
func (depthPayer) Params() core.Params { return core.DefaultParams() }
func (depthPayer) Rewards(t *tree.Tree) (core.Rewards, error) {
	r := make(core.Rewards, t.Len())
	depths := t.Depths()
	for id := 1; id < t.Len(); id++ {
		r[id] = 0.001 * float64(depths[id]) * (1 + t.Contribution(tree.NodeID(id)))
	}
	return r, nil
}

func TestUSBCheckerDetectsPositionDependence(t *testing.T) {
	cfg := properties.DefaultConfig()
	cfg.Corpus = 4
	v := properties.CheckUSB(depthPayer{}, cfg)
	if v.Holds {
		t.Fatal("USB checker passed a position-dependent payer")
	}
	if !strings.Contains(v.Witness, "joining under") {
		t.Fatalf("witness = %q", v.Witness)
	}
}

// slowlyLeaky pays a node a tiny share of the GLOBAL total — an SL
// violation too small for coarse eyeballing but within the checker's
// tolerance discrimination.
type slowlyLeaky struct{}

func (slowlyLeaky) Name() string        { return "slowly-leaky" }
func (slowlyLeaky) Params() core.Params { return core.DefaultParams() }
func (slowlyLeaky) Rewards(t *tree.Tree) (core.Rewards, error) {
	r := make(core.Rewards, t.Len())
	total := t.Total()
	for id := 1; id < t.Len(); id++ {
		r[id] = 0.01*t.Contribution(tree.NodeID(id)) + 1e-6*total
	}
	return r, nil
}

func TestSLCheckerDetectsTinyGlobalLeak(t *testing.T) {
	cfg := properties.DefaultConfig()
	cfg.Corpus = 3
	v := properties.CheckSL(slowlyLeaky{}, cfg)
	if v.Holds {
		t.Fatal("SL checker passed a globally-coupled mechanism")
	}
}

// erroring fails mid-evaluation; every checker must surface the error as
// a failed verdict rather than panic.
type erroring struct{}

func (erroring) Name() string        { return "erroring" }
func (erroring) Params() core.Params { return core.DefaultParams() }
func (erroring) Rewards(t *tree.Tree) (core.Rewards, error) {
	return nil, core.ErrBadParams
}

func TestCheckersSurfaceMechanismErrors(t *testing.T) {
	cfg := properties.DefaultConfig()
	cfg.Corpus = 2
	for _, p := range properties.All() {
		v := properties.Check(p, erroring{}, cfg)
		if v.Holds {
			t.Errorf("%s: erroring mechanism passed", p)
		}
		if v.Witness == "" {
			t.Errorf("%s: no witness for the error", p)
		}
	}
}
