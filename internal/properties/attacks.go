package properties

import (
	"fmt"
	"sync"

	"incentivetree/internal/core"
	"incentivetree/internal/sybil"
	"incentivetree/internal/tree"
)

var (
	attackScenariosOnce sync.Once
	attackScenariosList []sybil.Scenario
)

// attackScenarios returns the falsification workload for USA/UGSA: the
// empty tree and a small populated base; joiners with and without future
// solicitees, including the many-mu-children shape from the paper's TDRM
// counterexample (scaled down so the bounded search stays fast). The
// workload is built once and shared across every checker invocation;
// searches never mutate scenario bases (they clone them), so sharing is
// safe even under RunParallel.
func attackScenarios() []sybil.Scenario {
	attackScenariosOnce.Do(func() { attackScenariosList = buildAttackScenarios() })
	return attackScenariosList
}

func buildAttackScenarios() []sybil.Scenario {
	base := tree.FromSpecs(tree.Spec{C: 2, Kids: []tree.Spec{{C: 1}}})
	// The many-children shape of the paper's TDRM counterexample: with the
	// default TDRM parameters the violation needs k > 1/(a*b*lambda) = 25
	// children of contribution mu = 1.
	manyKids := make([]tree.Spec, 30)
	for i := range manyKids {
		manyKids[i] = tree.Spec{C: 1}
	}
	return []sybil.Scenario{
		{Base: tree.New(), Parent: tree.Root, Contribution: 2},
		{Base: tree.New(), Parent: tree.Root, Contribution: 1,
			ChildTrees: []tree.Spec{{C: 1.5, Kids: []tree.Spec{{C: 0.5}}}}},
		{Base: base, Parent: 2, Contribution: 2.5,
			ChildTrees: []tree.Spec{{C: 1}, {C: 2}}},
		{Base: tree.New(), Parent: tree.Root, Contribution: 0.5,
			ChildTrees: manyKids},
		// A single heavy solicitee: the shape that exposes topology-global
		// mechanisms (L-Pachira with convex-enough pi) to generalized
		// attacks via dR/dC > 1.
		{Base: tree.New(), Parent: tree.Root, Contribution: 1,
			ChildTrees: []tree.Spec{{C: 20}}},
	}
}

// CheckUSA searches for a reward-increasing identity split at fixed total
// contribution.
func CheckUSA(m core.Mechanism, cfg Config) Verdict {
	v := Verdict{Property: USA, Mechanism: m.Name(), Holds: true}
	for i, s := range attackScenarios() {
		rep, err := sybil.BestRewardAttack(m, s, cfg.Sybil)
		if err != nil {
			return fail(v, fmt.Sprintf("scenario %d: %v", i, err))
		}
		v.Checks += rep.Evaluated
		if sybil.ViolatesUSA(rep) {
			return fail(v, fmt.Sprintf(
				"scenario %d: split %v (parents %v) lifts reward from %.6g to %.6g",
				i, rep.Best.Arrangement.Parts, rep.Best.Arrangement.ParentIdx,
				rep.Baseline.Reward, rep.Best.Reward))
		}
	}
	return v
}

// CheckUGSA searches for a profit-increasing generalized attack
// (identities may also increase total contribution).
func CheckUGSA(m core.Mechanism, cfg Config) Verdict {
	v := Verdict{Property: UGSA, Mechanism: m.Name(), Holds: true}
	for i, s := range attackScenarios() {
		rep, err := sybil.BestProfitAttack(m, s, cfg.GenSybil)
		if err != nil {
			return fail(v, fmt.Sprintf("scenario %d: %v", i, err))
		}
		v.Checks += rep.Evaluated
		if sybil.ViolatesUGSA(rep) {
			return fail(v, fmt.Sprintf(
				"scenario %d: identities %v (parents %v, total C %.4g) lift profit from %.6g to %.6g",
				i, rep.Best.Arrangement.Parts, rep.Best.Arrangement.ParentIdx,
				rep.Best.Contribution, rep.Baseline.Profit(), rep.Best.Profit()))
		}
	}
	return v
}
