package properties_test

import (
	"strings"
	"testing"

	"incentivetree/internal/cdrm"
	"incentivetree/internal/core"
	"incentivetree/internal/geometric"
	"incentivetree/internal/lottree"
	"incentivetree/internal/properties"
	"incentivetree/internal/tdrm"
	"incentivetree/internal/tree"
)

// suite builds the six canonical mechanism instances used across the
// repository's experiments (see DESIGN.md).
func suite(t *testing.T) []core.Mechanism {
	t.Helper()
	p := core.DefaultParams()
	geo, err := geometric.Default(p)
	if err != nil {
		t.Fatal(err)
	}
	luxor, err := lottree.NewLLuxor(p, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	pachira, err := lottree.NewLPachira(p, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	td, err := tdrm.Default(p)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := cdrm.DefaultReciprocal(p)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := cdrm.DefaultLog(p)
	if err != nil {
		t.Fatal(err)
	}
	return []core.Mechanism{geo, luxor, pachira, td, rec, lg}
}

// expectedFailures is the paper's property matrix (Theorems 1, 2, 4, 5):
// for each mechanism, the set of properties it does NOT achieve.
func expectedFailures() []map[properties.Property]bool {
	return []map[properties.Property]bool{
		{properties.USA: true, properties.UGSA: true}, // Geometric (Thm 1)
		{properties.USA: true, properties.UGSA: true}, // L-Luxor ("same properties")
		{properties.SL: true, properties.UGSA: true},  // L-Pachira (Thm 2)
		{properties.UGSA: true},                       // TDRM (Thm 4)
		{properties.URO: true, properties.PO: true},   // CDRM-Reciprocal (Thm 5)
		{properties.URO: true, properties.PO: true},   // CDRM-Log (Thm 5)
	}
}

// TestMatrixMatchesPaper is the headline reproduction (experiment E1):
// every cell of the property matrix must match the paper's theorems.
func TestMatrixMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run is a second-scale test")
	}
	mechs := suite(t)
	expected := expectedFailures()
	mat := properties.Run(mechs, properties.DefaultConfig())
	if len(mat.Rows) != len(mechs) {
		t.Fatalf("matrix has %d rows, want %d", len(mat.Rows), len(mechs))
	}
	for i, row := range mat.Rows {
		for _, p := range mat.Properties {
			v := row.Verdicts[p]
			wantHolds := !expected[i][p]
			if v.Holds != wantHolds {
				t.Errorf("%s / %s: got holds=%v, paper says %v\n  witness: %s",
					row.Mechanism, p, v.Holds, wantHolds, v.Witness)
			}
			if v.Checks == 0 {
				t.Errorf("%s / %s: zero checks performed", row.Mechanism, p)
			}
		}
	}
	if t.Failed() {
		t.Logf("matrix:\n%s", mat.Render())
	}
}

func TestPropertyStrings(t *testing.T) {
	for _, p := range properties.All() {
		if p.String() == "" || strings.HasPrefix(p.String(), "Property(") {
			t.Fatalf("bad string for property %d: %q", int(p), p)
		}
	}
	if got := properties.Property(99).String(); !strings.HasPrefix(got, "Property(") {
		t.Fatalf("unknown property string = %q", got)
	}
}

func TestVerdictString(t *testing.T) {
	v := properties.Verdict{Property: properties.CCI, Mechanism: "m", Holds: true, Checks: 3}
	if s := v.String(); !strings.Contains(s, "PASS") {
		t.Fatalf("String = %q", s)
	}
	v.Holds = false
	v.Witness = "boom"
	if s := v.String(); !strings.Contains(s, "FAIL") || !strings.Contains(s, "boom") {
		t.Fatalf("String = %q", s)
	}
}

// overpayer violates the budget (and nothing pays the root).
type overpayer struct{}

func (overpayer) Name() string        { return "overpayer" }
func (overpayer) Params() core.Params { return core.DefaultParams() }
func (overpayer) Rewards(t *tree.Tree) (core.Rewards, error) {
	r := make(core.Rewards, t.Len())
	for id := 1; id < t.Len(); id++ {
		r[id] = 2 * t.Contribution(tree.NodeID(id))
	}
	return r, nil
}

// flatPayer pays a constant and thus fails CCI/CSI/RPC.
type flatPayer struct{}

func (flatPayer) Name() string        { return "flat" }
func (flatPayer) Params() core.Params { return core.DefaultParams() }
func (flatPayer) Rewards(t *tree.Tree) (core.Rewards, error) {
	r := make(core.Rewards, t.Len())
	for id := 1; id < t.Len(); id++ {
		r[id] = 0.01
	}
	return r, nil
}

func TestCheckersDetectBrokenMechanisms(t *testing.T) {
	cfg := properties.DefaultConfig()
	cfg.Corpus = 4

	if v := properties.CheckBudget(overpayer{}, cfg); v.Holds {
		t.Error("budget checker passed an overpayer")
	}
	if v := properties.CheckCCI(flatPayer{}, cfg); v.Holds {
		t.Error("CCI checker passed a flat payer")
	}
	if v := properties.CheckCSI(flatPayer{}, cfg); v.Holds {
		t.Error("CSI checker passed a flat payer")
	}
	if v := properties.CheckRPC(flatPayer{}, cfg); v.Holds {
		t.Error("RPC checker passed a flat payer")
	}
	if v := properties.CheckPO(flatPayer{}, cfg); v.Holds {
		t.Error("PO checker passed a flat payer")
	}
}

func TestSLFailureWitnessForLPachira(t *testing.T) {
	p := core.DefaultParams()
	m, err := lottree.NewLPachira(p, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := properties.DefaultConfig()
	cfg.Corpus = 4
	v := properties.CheckSL(m, cfg)
	if v.Holds {
		t.Fatal("L-Pachira should fail SL")
	}
	if !strings.Contains(v.Witness, "R") {
		t.Fatalf("uninformative witness: %q", v.Witness)
	}
}

func TestUROFailureMentionsLadder(t *testing.T) {
	m, err := cdrm.DefaultReciprocal(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	v := properties.CheckURO(m, properties.DefaultConfig())
	if v.Holds {
		t.Fatal("CDRM should fail URO")
	}
	if !strings.Contains(v.Witness, "ladder exhausted") {
		t.Fatalf("witness = %q", v.Witness)
	}
}

func TestUnknownPropertyVerdict(t *testing.T) {
	m, err := geometric.Default(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	v := properties.Check(properties.Property(77), m, properties.DefaultConfig())
	if v.Holds {
		t.Fatal("unknown property should not hold")
	}
}

func TestMatrixRenderAndFailures(t *testing.T) {
	m, err := geometric.Default(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cfg := properties.DefaultConfig()
	cfg.Corpus = 3
	cfg.NodeSample = 4
	mat := properties.Run([]core.Mechanism{m}, cfg)
	out := mat.Render()
	if !strings.Contains(out, "Geometric") || !strings.Contains(out, "UGSA") {
		t.Fatalf("render missing headers:\n%s", out)
	}
	fails := mat.Failures()
	if len(fails) == 0 {
		t.Fatal("geometric should have failing properties (USA, UGSA)")
	}
	for _, f := range fails {
		if f.Witness == "" {
			t.Fatalf("failure without witness: %+v", f)
		}
	}
}
