package properties

import (
	"fmt"

	"incentivetree/internal/core"
	"incentivetree/internal/tree"
)

// opportunityShapes are the escalation constructions for PO/URO. The
// property quantifies over arbitrary attached trees, so the checker tries
// the two canonical growth channels and takes the best:
//
//   - direct: u solicits fanout unit-contribution children. This is the
//     channel for mechanisms that harvest direct solicitation mass
//     (Geometric, L-Luxor, TDRM) and the only unbounded channel for
//     L-Pachira (whose reward through a single child saturates at
//     Phi * pi'(1)).
//   - grand: u solicits one child who solicits fanout children — the
//     shape used by the paper's TDRM URO proof.
type opportunityShape struct {
	name  string
	build func() (*tree.Tree, tree.NodeID)
}

func opportunityShapes(c float64, fanout int) []opportunityShape {
	return []opportunityShape{
		{"direct", func() (*tree.Tree, tree.NodeID) {
			t := tree.New()
			u := t.MustAdd(tree.Root, c)
			for i := 0; i < fanout; i++ {
				t.MustAdd(u, 1)
			}
			return t, u
		}},
		{"grand", func() (*tree.Tree, tree.NodeID) {
			t := tree.New()
			u := t.MustAdd(tree.Root, c)
			v := t.MustAdd(u, 1)
			for i := 0; i < fanout; i++ {
				t.MustAdd(v, 1)
			}
			return t, u
		}},
	}
}

// CheckPO checks Profitable Opportunity: escalating attachments must at
// some point push R(u) to at least C(u).
func CheckPO(m core.Mechanism, cfg Config) Verdict {
	return checkOpportunity(m, cfg, PO, 1)
}

// CheckURO checks Unbounded Reward Opportunity: escalating attachments
// must push R(u) past UROFactor * C(u) (the bounded-search analogue of
// "for every R there is an attachment exceeding it").
func CheckURO(m core.Mechanism, cfg Config) Verdict {
	return checkOpportunity(m, cfg, URO, cfg.UROFactor)
}

func checkOpportunity(m core.Mechanism, cfg Config, prop Property, factor float64) Verdict {
	v := Verdict{Property: prop, Mechanism: m.Name()}
	const c = 1.0
	target := factor * c
	best := 0.0
	for _, fanout := range cfg.Ladder {
		for _, shape := range opportunityShapes(c, fanout) {
			t, u := shape.build()
			r, err := m.Rewards(t)
			if err != nil {
				return fail(v, fmt.Sprintf("rewards error: %v", err))
			}
			v.Checks++
			if got := r.Of(u); got > best {
				best = got
			}
			if best >= target {
				v.Holds = true
				v.Witness = fmt.Sprintf("%s star of fanout %d lifts R(u) to %.4g >= target %.4g",
					shape.name, fanout, best, target)
				return v
			}
		}
	}
	return fail(v, fmt.Sprintf(
		"ladder exhausted at fanout %d: best R(u) = %.4g < target %.4g (C(u) = %v)",
		cfg.Ladder[len(cfg.Ladder)-1], best, target, c))
}
