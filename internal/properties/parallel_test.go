package properties_test

import (
	"testing"

	"incentivetree/internal/core"
	"incentivetree/internal/properties"
)

// TestRunParallelMatchesSequential: the parallel matrix must be verdict-
// identical to the sequential one (checkers are deterministic).
func TestRunParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("two full matrix runs are second-scale")
	}
	mechs := suite(t)
	cfg := properties.DefaultConfig()
	seq := properties.Run(mechs, cfg)
	par := properties.RunParallel(mechs, cfg)
	if len(seq.Rows) != len(par.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(seq.Rows), len(par.Rows))
	}
	for i := range seq.Rows {
		if seq.Rows[i].Mechanism != par.Rows[i].Mechanism {
			t.Fatalf("row %d mechanism mismatch", i)
		}
		for _, p := range seq.Properties {
			a := seq.Rows[i].Verdicts[p]
			b := par.Rows[i].Verdicts[p]
			if a.Holds != b.Holds || a.Checks != b.Checks || a.Witness != b.Witness {
				t.Errorf("%s/%s: sequential %+v != parallel %+v", a.Mechanism, p, a, b)
			}
		}
	}
}

func TestRunParallelEmptyInput(t *testing.T) {
	mat := properties.RunParallel(nil, properties.DefaultConfig())
	if len(mat.Rows) != 0 {
		t.Fatalf("rows = %d", len(mat.Rows))
	}
	_ = core.DefaultParams()
}
