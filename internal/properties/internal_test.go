package properties

import (
	"testing"

	"incentivetree/internal/tree"
	"incentivetree/internal/treegen"
)

func TestSampleNodesAll(t *testing.T) {
	tr := treegen.ChainTree(5, 1)
	if got := sampleNodes(tr, 0); len(got) != 5 {
		t.Fatalf("limit 0 should return all nodes, got %d", len(got))
	}
	if got := sampleNodes(tr, 10); len(got) != 5 {
		t.Fatalf("limit above size should return all nodes, got %d", len(got))
	}
}

func TestSampleNodesSpread(t *testing.T) {
	tr := treegen.ChainTree(100, 1)
	got := sampleNodes(tr, 4)
	if len(got) != 4 {
		t.Fatalf("len = %d, want 4", len(got))
	}
	seen := map[tree.NodeID]bool{}
	for _, u := range got {
		if seen[u] {
			t.Fatalf("duplicate sample %d", u)
		}
		seen[u] = true
		if !tr.Exists(u) || u == tree.Root {
			t.Fatalf("invalid sample %d", u)
		}
	}
	// Samples should span the id range, not cluster at the front.
	if got[3] < 50 {
		t.Fatalf("samples not spread: %v", got)
	}
}

func TestFailHelper(t *testing.T) {
	v := Verdict{Property: CCI, Mechanism: "m", Holds: true}
	f := fail(v, "boom")
	if f.Holds || f.Witness != "boom" {
		t.Fatalf("fail() = %+v", f)
	}
}
