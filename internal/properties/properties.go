// Package properties turns the paper's desirable properties (Sect. 3)
// into executable checkers. Each checker attempts to FALSIFY its property
// on a deterministic corpus of random trees plus the targeted
// perturbations from the paper's own proofs and counterexamples; it
// returns a Verdict carrying either "no violation found" or a concrete
// witness.
//
// Universally quantified properties (CCI, CSI, phi-RPC, SL, USB, USA,
// UGSA, budget) are checked by bounded search, so Holds == true means
// "not falsified within the configured bounds". Existentially quantified
// properties (PO, URO) are checked constructively by escalating
// attachment sizes, so Holds == true is a proof on the tested instance
// while Holds == false means the escalation ladder was exhausted (for the
// mechanisms at hand this coincides with the analytic truth: CDRM rewards
// are capped at Phi * C(u)).
package properties

import (
	"fmt"

	"incentivetree/internal/sybil"
	"incentivetree/internal/tree"
)

// Property enumerates the paper's desirable properties plus the model's
// budget constraint.
type Property int

// The properties of Sect. 3 (and the Sect. 2 budget constraint).
const (
	// Budget is the model constraint R(T) <= Phi * C(T).
	Budget Property = iota
	// CCI is Continuing Contribution Incentive.
	CCI
	// CSI is Continuing Solicitation Incentive.
	CSI
	// RPC is phi-Reward Proportional to Contribution.
	RPC
	// URO is Unbounded Reward Opportunity.
	URO
	// PO is Profitable Opportunity.
	PO
	// SL is Subtree Locality.
	SL
	// USB is Unprofitable Solicitor Bypassing (subsumed by SL).
	USB
	// USA is Unprofitable Sybil Attack.
	USA
	// UGSA is Unprofitable Generalized Sybil Attack.
	UGSA
)

// All lists every property in display order.
func All() []Property {
	return []Property{Budget, CCI, CSI, RPC, URO, PO, SL, USB, USA, UGSA}
}

// String implements fmt.Stringer.
func (p Property) String() string {
	switch p {
	case Budget:
		return "Budget"
	case CCI:
		return "CCI"
	case CSI:
		return "CSI"
	case RPC:
		return "phi-RPC"
	case URO:
		return "URO"
	case PO:
		return "PO"
	case SL:
		return "SL"
	case USB:
		return "USB"
	case USA:
		return "USA"
	case UGSA:
		return "UGSA"
	default:
		return fmt.Sprintf("Property(%d)", int(p))
	}
}

// Verdict is the outcome of checking one property against one mechanism.
type Verdict struct {
	Property  Property
	Mechanism string
	// Holds reports whether the property survived the check (see the
	// package comment for the exact semantics per quantifier class).
	Holds bool
	// Witness describes the violation when Holds is false; for
	// existential properties it describes the construction when Holds is
	// true.
	Witness string
	// Checks counts the individual comparisons performed.
	Checks int
}

func (v Verdict) String() string {
	mark := "PASS"
	if !v.Holds {
		mark = "FAIL"
	}
	s := fmt.Sprintf("%-8s %-40s %s (%d checks)", v.Property, v.Mechanism, mark, v.Checks)
	if v.Witness != "" {
		s += "\n  witness: " + v.Witness
	}
	return s
}

// Config bounds the falsification search.
type Config struct {
	// Seed drives the deterministic corpus.
	Seed int64
	// Corpus is the number of random trees.
	Corpus int
	// TreeSize is the maximum participants per corpus tree.
	TreeSize int
	// NodeSample caps the number of nodes perturbed per tree (0 = all).
	NodeSample int
	// Deltas are the contribution increments tried for CCI.
	Deltas []float64
	// Joiner is the contribution of the new solicitee used for CSI/USB.
	Joiner float64
	// Ladder is the sequence of fan-outs used to escalate PO/URO
	// constructions.
	Ladder []int
	// UROFactor is the multiple of C(u) the reward must exceed for URO.
	UROFactor float64
	// Sybil bounds the USA attack search.
	Sybil sybil.SearchOptions
	// GenSybil bounds the UGSA attack search.
	GenSybil sybil.SearchOptions
	// Workers bounds the goroutines RunParallel uses for matrix cells:
	// 0 means GOMAXPROCS, 1 forces sequential checking. Per-search
	// parallelism is bounded separately by Sybil.Workers and
	// GenSybil.Workers.
	Workers int
}

// DefaultConfig returns bounds that reproduce every violation the paper
// exhibits while completing in well under a second per mechanism.
func DefaultConfig() Config {
	return Config{
		Seed:       1,
		Corpus:     12,
		TreeSize:   28,
		NodeSample: 10,
		Deltas:     []float64{0.1, 1, 7.5},
		Joiner:     1,
		Ladder:     []int{1, 4, 16, 64, 256, 1024, 4096},
		UROFactor:  25,
		Sybil:      sybil.DefaultSearch(),
		GenSybil:   sybil.GeneralizedSearch(),
	}
}

// sampleNodes returns up to limit participant ids of t, spread across the
// id range (deterministic).
func sampleNodes(t *tree.Tree, limit int) []tree.NodeID {
	nodes := t.Nodes()
	if limit <= 0 || len(nodes) <= limit {
		return nodes
	}
	out := make([]tree.NodeID, 0, limit)
	step := float64(len(nodes)) / float64(limit)
	for i := 0; i < limit; i++ {
		out = append(out, nodes[int(float64(i)*step)])
	}
	return out
}
