package properties

import (
	"fmt"
	"strings"

	"incentivetree/internal/core"
	"incentivetree/internal/pool"
)

// Check runs the checker for a single property.
func Check(p Property, m core.Mechanism, cfg Config) Verdict {
	switch p {
	case Budget:
		return CheckBudget(m, cfg)
	case CCI:
		return CheckCCI(m, cfg)
	case CSI:
		return CheckCSI(m, cfg)
	case RPC:
		return CheckRPC(m, cfg)
	case URO:
		return CheckURO(m, cfg)
	case PO:
		return CheckPO(m, cfg)
	case SL:
		return CheckSL(m, cfg)
	case USB:
		return CheckUSB(m, cfg)
	case USA:
		return CheckUSA(m, cfg)
	case UGSA:
		return CheckUGSA(m, cfg)
	default:
		return Verdict{Property: p, Mechanism: m.Name(),
			Witness: fmt.Sprintf("unknown property %d", int(p))}
	}
}

// Row is the full verdict vector of one mechanism.
type Row struct {
	Mechanism string
	Verdicts  map[Property]Verdict
}

// Matrix is the property matrix of Theorems 1, 2, 4 and 5: one row per
// mechanism, one column per property.
type Matrix struct {
	Properties []Property
	Rows       []Row
}

// Run evaluates every property against every mechanism.
func Run(mechanisms []core.Mechanism, cfg Config) Matrix {
	mat := Matrix{Properties: All()}
	for _, m := range mechanisms {
		row := Row{Mechanism: m.Name(), Verdicts: make(map[Property]Verdict, len(mat.Properties))}
		for _, p := range mat.Properties {
			row.Verdicts[p] = Check(p, m, cfg)
		}
		mat.Rows = append(mat.Rows, row)
	}
	return mat
}

// RunParallel is Run with the (mechanism, property) cells checked across
// a bounded worker pool (cfg.Workers goroutines; 0 means GOMAXPROCS).
// Checkers only share the immutable config and their mechanism (whose
// Rewards must be safe for concurrent use — all mechanisms in this
// repository are stateless after construction), so the cells are
// independent: each worker writes its verdicts into pre-sized slots, no
// lock needed. Results are identical to Run.
func RunParallel(mechanisms []core.Mechanism, cfg Config) Matrix {
	mat := Matrix{Properties: All()}
	mat.Rows = make([]Row, len(mechanisms))
	props := mat.Properties
	cells := make([]Verdict, len(mechanisms)*len(props))
	pool.ForEach(len(cells), cfg.Workers, func(i int) {
		cells[i] = Check(props[i%len(props)], mechanisms[i/len(props)], cfg)
	})
	for i, m := range mechanisms {
		row := Row{Mechanism: m.Name(), Verdicts: make(map[Property]Verdict, len(props))}
		for j, p := range props {
			row.Verdicts[p] = cells[i*len(props)+j]
		}
		mat.Rows[i] = row
	}
	return mat
}

// Render formats the matrix as a fixed-width text table with ✓/✗ cells.
func (m Matrix) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-42s", "mechanism")
	for _, p := range m.Properties {
		fmt.Fprintf(&b, "%-9s", p)
	}
	b.WriteByte('\n')
	for _, row := range m.Rows {
		fmt.Fprintf(&b, "%-42s", row.Mechanism)
		for _, p := range m.Properties {
			cell := "✗"
			if row.Verdicts[p].Holds {
				cell = "✓"
			}
			fmt.Fprintf(&b, "%-9s", cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Failures returns every failing verdict with its witness, for detailed
// reporting below the matrix.
func (m Matrix) Failures() []Verdict {
	var out []Verdict
	for _, row := range m.Rows {
		for _, p := range m.Properties {
			if v := row.Verdicts[p]; !v.Holds {
				out = append(out, v)
			}
		}
	}
	return out
}
