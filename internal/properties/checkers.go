package properties

import (
	"fmt"

	"incentivetree/internal/core"
	"incentivetree/internal/numeric"
	"incentivetree/internal/tree"
	"incentivetree/internal/treegen"
)

// CheckBudget verifies R(T) <= Phi * C(T) (plus non-negativity) on the
// corpus.
func CheckBudget(m core.Mechanism, cfg Config) Verdict {
	v := Verdict{Property: Budget, Mechanism: m.Name(), Holds: true}
	for i, t := range treegen.Corpus(cfg.Seed, cfg.Corpus, cfg.TreeSize) {
		r, err := m.Rewards(t)
		if err != nil {
			return fail(v, fmt.Sprintf("rewards error on tree %d: %v", i, err))
		}
		v.Checks++
		if err := core.Audit(m, t, r); err != nil {
			return fail(v, err.Error())
		}
	}
	return v
}

// CheckCCI verifies that increasing a node's contribution strictly
// increases its reward.
func CheckCCI(m core.Mechanism, cfg Config) Verdict {
	v := Verdict{Property: CCI, Mechanism: m.Name(), Holds: true}
	for ti, t := range treegen.Corpus(cfg.Seed, cfg.Corpus, cfg.TreeSize) {
		base, err := m.Rewards(t)
		if err != nil {
			return fail(v, fmt.Sprintf("rewards error: %v", err))
		}
		for _, u := range sampleNodes(t, cfg.NodeSample) {
			if t.Contribution(u) == 0 {
				continue // properties are quantified over x_p > 0 (Sect. 6)
			}
			for _, d := range cfg.Deltas {
				mut := t.Clone()
				if err := mut.AddContribution(u, d); err != nil {
					return fail(v, fmt.Sprintf("perturbation error: %v", err))
				}
				r, err := m.Rewards(mut)
				if err != nil {
					return fail(v, fmt.Sprintf("rewards error: %v", err))
				}
				v.Checks++
				if !numeric.StrictlyGreater(r.Of(u), base.Of(u), numeric.Eps) {
					return fail(v, fmt.Sprintf(
						"tree %d node %d: C +%v moved R from %v to %v (no strict increase)",
						ti, u, d, base.Of(u), r.Of(u)))
				}
			}
		}
	}
	return v
}

// CheckCSI verifies that soliciting a new participant strictly increases
// the solicitor's reward.
func CheckCSI(m core.Mechanism, cfg Config) Verdict {
	v := Verdict{Property: CSI, Mechanism: m.Name(), Holds: true}
	for ti, t := range treegen.Corpus(cfg.Seed, cfg.Corpus, cfg.TreeSize) {
		base, err := m.Rewards(t)
		if err != nil {
			return fail(v, fmt.Sprintf("rewards error: %v", err))
		}
		for _, u := range sampleNodes(t, cfg.NodeSample) {
			if t.Contribution(u) == 0 {
				continue
			}
			mut := t.Clone()
			if _, err := mut.Add(u, cfg.Joiner); err != nil {
				return fail(v, fmt.Sprintf("join error: %v", err))
			}
			r, err := m.Rewards(mut)
			if err != nil {
				return fail(v, fmt.Sprintf("rewards error: %v", err))
			}
			v.Checks++
			if !numeric.StrictlyGreater(r.Of(u), base.Of(u), numeric.Eps) {
				return fail(v, fmt.Sprintf(
					"tree %d node %d: new solicitee moved R from %v to %v (no strict increase)",
					ti, u, base.Of(u), r.Of(u)))
			}
		}
	}
	return v
}

// CheckRPC verifies the fairness floor R(u) >= phi * C(u).
func CheckRPC(m core.Mechanism, cfg Config) Verdict {
	v := Verdict{Property: RPC, Mechanism: m.Name(), Holds: true}
	phi := m.Params().FairShare
	for ti, t := range treegen.Corpus(cfg.Seed, cfg.Corpus, cfg.TreeSize) {
		r, err := m.Rewards(t)
		if err != nil {
			return fail(v, fmt.Sprintf("rewards error: %v", err))
		}
		for _, u := range t.Nodes() {
			v.Checks++
			floor := phi * t.Contribution(u)
			if !numeric.LessOrAlmostEqual(floor, r.Of(u), numeric.Eps) {
				return fail(v, fmt.Sprintf("tree %d node %d: R = %v below phi*C = %v",
					ti, u, r.Of(u), floor))
			}
		}
	}
	return v
}

// CheckSL verifies Subtree Locality two ways: (1) growing or perturbing
// the tree OUTSIDE T_u leaves R(u) unchanged; (2) R(u) computed on the
// extracted subtree T_u alone equals R(u) in the full tree.
func CheckSL(m core.Mechanism, cfg Config) Verdict {
	v := Verdict{Property: SL, Mechanism: m.Name(), Holds: true}
	for ti, t := range treegen.Corpus(cfg.Seed, cfg.Corpus, cfg.TreeSize) {
		base, err := m.Rewards(t)
		if err != nil {
			return fail(v, fmt.Sprintf("rewards error: %v", err))
		}
		for _, u := range sampleNodes(t, cfg.NodeSample) {
			// (1) Outside growth: a new branch under the imaginary root is
			// outside T_u for every participant u.
			mut := t.Clone()
			if _, err := mut.Add(tree.Root, 13); err != nil {
				return fail(v, fmt.Sprintf("perturbation error: %v", err))
			}
			r, err := m.Rewards(mut)
			if err != nil {
				return fail(v, fmt.Sprintf("rewards error: %v", err))
			}
			v.Checks++
			if !numeric.AlmostEqual(r.Of(u), base.Of(u), numeric.Eps) {
				return fail(v, fmt.Sprintf(
					"tree %d node %d: outside growth moved R from %v to %v",
					ti, u, base.Of(u), r.Of(u)))
			}
			// (2) Extraction: reward must be a function of T_u alone.
			sub, err := t.Extract(u)
			if err != nil {
				return fail(v, fmt.Sprintf("extract error: %v", err))
			}
			rs, err := m.Rewards(sub)
			if err != nil {
				return fail(v, fmt.Sprintf("rewards error: %v", err))
			}
			v.Checks++
			if !numeric.AlmostEqual(rs.Of(1), base.Of(u), numeric.Eps) {
				return fail(v, fmt.Sprintf(
					"tree %d node %d: R in full tree %v != R on extracted subtree %v",
					ti, u, base.Of(u), rs.Of(1)))
			}
		}
	}
	return v
}

// CheckUSB verifies Unprofitable Solicitor Bypassing: a new participant's
// reward does not depend on which node it joins under, so it has no
// incentive to bypass its solicitor.
func CheckUSB(m core.Mechanism, cfg Config) Verdict {
	v := Verdict{Property: USB, Mechanism: m.Name(), Holds: true}
	for ti, t := range treegen.Corpus(cfg.Seed, cfg.Corpus, cfg.TreeSize) {
		var want float64
		first := true
		for _, parent := range append([]tree.NodeID{tree.Root}, sampleNodes(t, cfg.NodeSample)...) {
			mut := t.Clone()
			id, err := mut.Add(parent, cfg.Joiner)
			if err != nil {
				return fail(v, fmt.Sprintf("join error: %v", err))
			}
			r, err := m.Rewards(mut)
			if err != nil {
				return fail(v, fmt.Sprintf("rewards error: %v", err))
			}
			v.Checks++
			if first {
				want = r.Of(id)
				first = false
				continue
			}
			if !numeric.AlmostEqual(r.Of(id), want, numeric.Eps) {
				return fail(v, fmt.Sprintf(
					"tree %d: joining under %d yields %v, elsewhere %v (bypassing pays)",
					ti, parent, r.Of(id), want))
			}
		}
	}
	return v
}

func fail(v Verdict, witness string) Verdict {
	v.Holds = false
	v.Witness = witness
	return v
}
