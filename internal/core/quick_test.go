package core_test

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"incentivetree/internal/core"
	"incentivetree/internal/experiments"
	"incentivetree/internal/numeric"
	"incentivetree/internal/tree"
)

// randomTree generates arbitrary referral trees for mechanism-level
// invariant checking.
type randomTree struct {
	T *tree.Tree
}

// Generate implements quick.Generator.
func (randomTree) Generate(r *rand.Rand, size int) reflect.Value {
	t := tree.New()
	n := 1 + r.Intn(size+1)
	for i := 0; i < n; i++ {
		parent := tree.NodeID(r.Intn(t.Len()))
		c := r.Float64() * 8
		t.MustAdd(parent, c)
	}
	return reflect.ValueOf(randomTree{T: t})
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(314))}
}

func suite(t *testing.T) []core.Mechanism {
	t.Helper()
	mechs, err := experiments.Suite(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return mechs
}

// TestQuickAuditHoldsForArbitraryTrees is the model contract under
// arbitrary inputs: every suite mechanism returns one non-negative reward
// per node, pays the root nothing, and respects the budget.
func TestQuickAuditHoldsForArbitraryTrees(t *testing.T) {
	for _, m := range suite(t) {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			f := func(rt randomTree) bool {
				r, err := m.Rewards(rt.T)
				if err != nil {
					return false
				}
				return core.Audit(m, rt.T, r) == nil
			}
			if err := quick.Check(f, quickCfg()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestQuickFairnessFloor checks phi-RPC pointwise under arbitrary trees.
func TestQuickFairnessFloor(t *testing.T) {
	for _, m := range suite(t) {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			phi := m.Params().FairShare
			f := func(rt randomTree) bool {
				r, err := m.Rewards(rt.T)
				if err != nil {
					return false
				}
				for _, u := range rt.T.Nodes() {
					if !numeric.LessOrAlmostEqual(phi*rt.T.Contribution(u), r.Of(u), numeric.Eps) {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, quickCfg()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestQuickDeterminism: equal trees always settle identically.
func TestQuickDeterminism(t *testing.T) {
	for _, m := range suite(t) {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			f := func(rt randomTree) bool {
				r1, err := m.Rewards(rt.T)
				if err != nil {
					return false
				}
				r2, err := m.Rewards(rt.T.Clone())
				if err != nil {
					return false
				}
				for i := range r1 {
					if r1[i] != r2[i] {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, quickCfg()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestQuickSubtreeLocalMechanismsSurviveExtraction: for the mechanisms
// the paper proves subtree-local (Geometric, L-Luxor, TDRM, CDRM), the
// reward of any node equals its reward on the extracted subtree.
func TestQuickSubtreeLocalMechanismsSurviveExtraction(t *testing.T) {
	mechs := suite(t)
	local := []core.Mechanism{mechs[0], mechs[1], mechs[3], mechs[4], mechs[5]}
	for _, m := range local {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			f := func(rt randomTree, pick uint8) bool {
				if rt.T.NumParticipants() == 0 {
					return true
				}
				u := tree.NodeID(1 + int(pick)%rt.T.NumParticipants())
				full, err := m.Rewards(rt.T)
				if err != nil {
					return false
				}
				sub, err := rt.T.Extract(u)
				if err != nil {
					return false
				}
				rs, err := m.Rewards(sub)
				if err != nil {
					return false
				}
				return numeric.AlmostEqual(full.Of(u), rs.Of(1), 1e-7)
			}
			if err := quick.Check(f, quickCfg()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestQuickMonotoneUnderContribution: raising any node's contribution
// never reduces that node's reward (the weak form of CCI that holds even
// at zero contributions).
func TestQuickMonotoneUnderContribution(t *testing.T) {
	for _, m := range suite(t) {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			f := func(rt randomTree, pick uint8, rawDelta uint8) bool {
				if rt.T.NumParticipants() == 0 {
					return true
				}
				u := tree.NodeID(1 + int(pick)%rt.T.NumParticipants())
				delta := 0.01 + float64(rawDelta)/64
				before, err := m.Rewards(rt.T)
				if err != nil {
					return false
				}
				mut := rt.T.Clone()
				if err := mut.AddContribution(u, delta); err != nil {
					return false
				}
				after, err := m.Rewards(mut)
				if err != nil {
					return false
				}
				return after.Of(u) >= before.Of(u)-1e-9
			}
			if err := quick.Check(f, quickCfg()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestQuickRewardsTotalMatchesKahan: the Total accessor agrees with a
// plain sum within float tolerance.
func TestQuickRewardsTotalMatchesKahan(t *testing.T) {
	m := suite(t)[0]
	f := func(rt randomTree) bool {
		r, err := m.Rewards(rt.T)
		if err != nil {
			return false
		}
		naive := 0.0
		for _, v := range r {
			naive += v
		}
		return math.Abs(naive-r.Total()) < 1e-6
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}
