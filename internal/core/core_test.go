package core

import (
	"errors"
	"strings"
	"testing"

	"incentivetree/internal/tree"
)

// fixedMechanism returns canned rewards, for testing the audit logic.
type fixedMechanism struct {
	params  Params
	rewards Rewards
}

func (f fixedMechanism) Name() string   { return "fixed" }
func (f fixedMechanism) Params() Params { return f.params }
func (f fixedMechanism) Rewards(*tree.Tree) (Rewards, error) {
	return f.rewards, nil
}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name    string
		p       Params
		wantErr bool
	}{
		{"defaults", DefaultParams(), false},
		{"full budget", Params{Phi: 1, FairShare: 0}, false},
		{"fair equals budget", Params{Phi: 0.5, FairShare: 0.5}, false},
		{"zero budget", Params{Phi: 0, FairShare: 0}, true},
		{"negative budget", Params{Phi: -0.5, FairShare: 0}, true},
		{"budget above one", Params{Phi: 1.5, FairShare: 0}, true},
		{"negative fair share", Params{Phi: 0.5, FairShare: -0.1}, true},
		{"fair share above budget", Params{Phi: 0.5, FairShare: 0.6}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.p.Validate()
			if (err != nil) != tc.wantErr {
				t.Fatalf("Validate(%+v) err = %v, wantErr %v", tc.p, err, tc.wantErr)
			}
			if err != nil && !errors.Is(err, ErrBadParams) {
				t.Fatalf("error %v should wrap ErrBadParams", err)
			}
		})
	}
}

func TestRewardsAccessors(t *testing.T) {
	r := Rewards{0, 1.5, 2.5}
	if got := r.Of(1); got != 1.5 {
		t.Errorf("Of(1) = %v", got)
	}
	if got := r.Of(tree.NodeID(99)); got != 0 {
		t.Errorf("Of(out of range) = %v", got)
	}
	if got := r.Of(tree.None); got != 0 {
		t.Errorf("Of(None) = %v", got)
	}
	if got := r.Total(); got != 4 {
		t.Errorf("Total = %v", got)
	}
}

func TestProfitAndPayment(t *testing.T) {
	tr := tree.FromSpecs(tree.Spec{C: 3})
	r := Rewards{0, 1}
	if got := Profit(tr, r, 1); got != -2 {
		t.Errorf("Profit = %v, want -2", got)
	}
	if got := Payment(tr, r, 1); got != 2 {
		t.Errorf("Payment = %v, want 2", got)
	}
}

func TestAuditAccepts(t *testing.T) {
	tr := tree.FromSpecs(tree.Spec{C: 4, Kids: []tree.Spec{{C: 6}}})
	m := fixedMechanism{params: Params{Phi: 0.5, FairShare: 0}, rewards: Rewards{0, 2, 3}}
	r, _ := m.Rewards(tr)
	if err := Audit(m, tr, r); err != nil {
		t.Fatalf("Audit: %v", err)
	}
}

func TestAuditRejections(t *testing.T) {
	tr := tree.FromSpecs(tree.Spec{C: 4, Kids: []tree.Spec{{C: 6}}})
	tests := []struct {
		name    string
		rewards Rewards
		wantSub string
	}{
		{"wrong length", Rewards{0, 1}, "entries"},
		{"root rewarded", Rewards{1, 1, 1}, "root"},
		{"negative reward", Rewards{0, -1, 1}, "negative"},
		{"over budget", Rewards{0, 3, 3}, "budget"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			m := fixedMechanism{params: Params{Phi: 0.5}, rewards: tc.rewards}
			err := Audit(m, tr, tc.rewards)
			if err == nil {
				t.Fatal("Audit should fail")
			}
			var av *AuditViolation
			if !errors.As(err, &av) {
				t.Fatalf("error %T is not *AuditViolation", err)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q missing %q", err.Error(), tc.wantSub)
			}
		})
	}
}

func TestAuditToleratesFloatNoiseAtBudget(t *testing.T) {
	tr := tree.FromSpecs(tree.Spec{C: 1})
	m := fixedMechanism{params: Params{Phi: 0.5}, rewards: Rewards{0, 0.5 + 1e-13}}
	if err := Audit(m, tr, m.rewards); err != nil {
		t.Fatalf("noise-level overshoot should pass: %v", err)
	}
}

func TestRewardsOrPanic(t *testing.T) {
	tr := tree.FromSpecs(tree.Spec{C: 1})
	m := fixedMechanism{params: DefaultParams(), rewards: Rewards{0, 0.1}}
	if got := RewardsOrPanic(m, tr); got.Of(1) != 0.1 {
		t.Fatalf("RewardsOrPanic = %v", got)
	}
}
