// Package core defines the Incentive Tree mechanism abstraction from the
// paper's model section: a reward mechanism is a function taking a weighted
// referral tree T and computing a non-negative reward R(u) for every
// participant, subject to the budget constraint R(T) <= Phi * C(T).
//
// Mechanism implementations live in sibling packages (geometric, lottree,
// tdrm, cdrm); the executable versions of the paper's desirable properties
// live in internal/properties.
package core

import (
	"errors"
	"fmt"

	"incentivetree/internal/numeric"
	"incentivetree/internal/tree"
)

// Params holds the two global parameters every mechanism shares.
type Params struct {
	// Phi is the budget fraction: the system administrator pays out at
	// most Phi * C(T) in total reward. 0 < Phi <= 1.
	Phi float64
	// FairShare is the paper's lower-case phi: the phi-RPC fairness floor
	// demanding R(u) >= FairShare * C(u) for every participant.
	// 0 <= FairShare <= Phi.
	FairShare float64
}

// ErrBadParams reports an invalid parameterization at mechanism
// construction time.
var ErrBadParams = errors.New("core: invalid mechanism parameters")

// Validate checks the admissible region for the shared parameters.
func (p Params) Validate() error {
	if !(p.Phi > 0 && p.Phi <= 1) {
		return fmt.Errorf("%w: Phi = %v, need 0 < Phi <= 1", ErrBadParams, p.Phi)
	}
	if !(p.FairShare >= 0 && p.FairShare <= p.Phi) {
		return fmt.Errorf("%w: FairShare = %v, need 0 <= FairShare <= Phi (%v)",
			ErrBadParams, p.FairShare, p.Phi)
	}
	return nil
}

// DefaultParams is the parameterization used throughout the experiments:
// the administrator returns at most half of the contribution as reward and
// guarantees every participant at least 5% of its own contribution back.
func DefaultParams() Params { return Params{Phi: 0.5, FairShare: 0.05} }

// Rewards maps every node of a tree (by NodeID) to its reward. The
// imaginary root's entry is always zero.
type Rewards []float64

// Of returns R(u), or 0 for ids outside the tree.
func (r Rewards) Of(id tree.NodeID) float64 {
	if id < 0 || int(id) >= len(r) {
		return 0
	}
	return r[id]
}

// Total returns R(T), the sum of all rewards, using compensated summation.
func (r Rewards) Total() float64 { return numeric.KahanSum(r) }

// Mechanism is an Incentive Tree reward mechanism.
//
// Rewards must be deterministic in the tree: equal trees yield equal
// rewards. Implementations must return an entry for every node and must
// never return negative rewards.
type Mechanism interface {
	// Name identifies the mechanism (including its parameterization)
	// in experiment output.
	Name() string
	// Params returns the shared budget/fairness parameters.
	Params() Params
	// Rewards computes R(u) for every node of t.
	Rewards(t *tree.Tree) (Rewards, error)
}

// IntoMechanism is the optional allocation-free fast path of a Mechanism:
// RewardsInto computes the same vector as Rewards but writes it into buf
// when buf's capacity allows, so tight evaluation loops (the Sybil attack
// search, property checkers, benchmarks) can reuse one buffer across
// evaluations.
//
// Contract: the returned slice must equal Rewards(t) exactly (same
// floating-point results); it aliases buf whenever cap(buf) >= t.Len();
// buf's previous contents are ignored. Implementations must remain safe
// for concurrent use as long as distinct goroutines pass distinct
// buffers.
type IntoMechanism interface {
	Mechanism
	RewardsInto(t *tree.Tree, buf Rewards) (Rewards, error)
}

// EvalInto evaluates m on t through the RewardsInto fast path when m
// implements IntoMechanism, falling back to plain Rewards (ignoring buf)
// otherwise. Callers keep the returned slice as the buffer for the next
// call.
func EvalInto(m Mechanism, t *tree.Tree, buf Rewards) (Rewards, error) {
	if im, ok := m.(IntoMechanism); ok {
		return im.RewardsInto(t, buf)
	}
	return m.Rewards(t)
}

// ResizeRewards returns buf resized to n zeroed entries, reusing its
// backing array when capacity allows — the shared scratch-sizing helper
// for RewardsInto implementations.
func ResizeRewards(buf Rewards, n int) Rewards {
	if cap(buf) < n {
		return make(Rewards, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// Profit returns P(u) = R(u) - C(u), the multi-level-marketing profit of a
// participant (Sect. 2 of the paper).
func Profit(t *tree.Tree, r Rewards, u tree.NodeID) float64 {
	return r.Of(u) - t.Contribution(u)
}

// Payment returns Pay(u) = C(u) - R(u), the amount a buyer effectively
// pays for its goods.
func Payment(t *tree.Tree, r Rewards, u tree.NodeID) float64 {
	return t.Contribution(u) - r.Of(u)
}

// AuditViolation describes a failed audit of a mechanism's output.
type AuditViolation struct {
	Mechanism string
	Reason    string
}

func (v *AuditViolation) Error() string {
	return fmt.Sprintf("core: audit of %s failed: %s", v.Mechanism, v.Reason)
}

// Audit verifies the model-level contract of a mechanism's output on a
// tree: one entry per node, non-negative rewards, a zero entry for the
// imaginary root, and the budget constraint R(T) <= Phi * C(T).
func Audit(m Mechanism, t *tree.Tree, r Rewards) error {
	if len(r) != t.Len() {
		return &AuditViolation{m.Name(), fmt.Sprintf("%d reward entries for %d nodes", len(r), t.Len())}
	}
	if r.Of(tree.Root) != 0 {
		return &AuditViolation{m.Name(), fmt.Sprintf("imaginary root rewarded %v", r.Of(tree.Root))}
	}
	for id := 1; id < t.Len(); id++ {
		if r[id] < 0 {
			return &AuditViolation{m.Name(), fmt.Sprintf("negative reward %v for node %d", r[id], id)}
		}
	}
	budget := m.Params().Phi * t.Total()
	if total := r.Total(); !numeric.LessOrAlmostEqual(total, budget, numeric.Eps) {
		return &AuditViolation{m.Name(),
			fmt.Sprintf("total reward %v exceeds budget %v (Phi=%v, C(T)=%v)",
				total, budget, m.Params().Phi, t.Total())}
	}
	return nil
}

// RewardsOrPanic is a convenience for examples and benchmarks where the
// tree is known to be valid; it panics on error.
func RewardsOrPanic(m Mechanism, t *tree.Tree) Rewards {
	r, err := m.Rewards(t)
	if err != nil {
		panic(fmt.Sprintf("core: %s.Rewards: %v", m.Name(), err))
	}
	return r
}
