package store

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"incentivetree/internal/core"
	"incentivetree/internal/experiments"
	"incentivetree/internal/obs"
)

// testConfig builds a Config with manual checkpointing, suitable for
// deterministic tests.
func testConfig(dir string) Config {
	return Config{
		DataDir:            dir,
		CheckpointInterval: -1, // checkpoints only when tests ask
		CheckpointBytes:    -1,
		NewMechanism: func(name string, p core.Params) (core.Mechanism, error) {
			return experiments.ByName(p, name)
		},
	}
}

func openStore(t *testing.T, cfg Config) *Store {
	t.Helper()
	st, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// do sends one request through the store handler and decodes the JSON
// response into out (skipped when out is nil).
func do(t *testing.T, h http.Handler, method, path, body string, out any) int {
	t.Helper()
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, path, nil)
	} else {
		r = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if out != nil {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, path, w.Body.String(), err)
		}
	}
	return w.Code
}

func TestValidateID(t *testing.T) {
	for _, ok := range []string{"a", "default", "camp-1", "x_y", "0z", strings.Repeat("a", 64)} {
		if err := ValidateID(ok); err != nil {
			t.Errorf("ValidateID(%q) = %v", ok, err)
		}
	}
	for _, bad := range []string{"", "Big", "-lead", "_lead", "has space", "a/b", "a.b", strings.Repeat("a", 65)} {
		if err := ValidateID(bad); err == nil {
			t.Errorf("ValidateID(%q) should fail", bad)
		}
	}
}

func TestStoreLifecycleHTTP(t *testing.T) {
	st := openStore(t, testConfig(t.TempDir()))
	h := st.Handler()

	// The default campaign exists from the start.
	var infos []campaignInfo
	if code := do(t, h, "GET", "/v1/campaigns", "", &infos); code != http.StatusOK {
		t.Fatalf("list = %d", code)
	}
	if len(infos) != 1 || infos[0].ID != DefaultID {
		t.Fatalf("initial campaigns = %+v", infos)
	}

	// Create a second campaign with its own mechanism.
	var created campaignInfo
	if code := do(t, h, "POST", "/v1/campaigns",
		`{"id":"acme","mechanism":"geometric","phi":0.6,"fair":0.05}`, &created); code != http.StatusCreated {
		t.Fatalf("create = %d", code)
	}
	if created.ID != "acme" || created.Mechanism != "geometric" || created.Phi != 0.6 {
		t.Fatalf("created = %+v", created)
	}
	if _, err := os.Stat(filepath.Join(st.cfg.DataDir, "campaigns", "acme", "meta.json")); err != nil {
		t.Fatalf("meta.json missing: %v", err)
	}

	// Duplicates and bad ids are rejected.
	if code := do(t, h, "POST", "/v1/campaigns", `{"id":"acme"}`, nil); code != http.StatusBadRequest {
		t.Fatalf("duplicate create = %d", code)
	}
	if code := do(t, h, "POST", "/v1/campaigns", `{"id":"Not Valid"}`, nil); code != http.StatusBadRequest {
		t.Fatalf("invalid id create = %d", code)
	}
	if code := do(t, h, "POST", "/v1/campaigns", `{"id":"bad-mech","mechanism":"nope"}`, nil); code != http.StatusBadRequest {
		t.Fatalf("unknown mechanism create = %d", code)
	}

	// Campaign sub-routes are the plain server API.
	if code := do(t, h, "POST", "/v1/campaigns/acme/join", `{"name":"ada"}`, nil); code != http.StatusCreated {
		t.Fatalf("campaign join = %d", code)
	}
	if code := do(t, h, "POST", "/v1/campaigns/acme/contribute", `{"name":"ada","amount":3}`, nil); code != http.StatusOK {
		t.Fatalf("campaign contribute = %d", code)
	}
	var info campaignInfo
	if code := do(t, h, "GET", "/v1/campaigns/acme", "", &info); code != http.StatusOK {
		t.Fatalf("info = %d", code)
	}
	if info.Participants != 1 || info.Contribution != 3 {
		t.Fatalf("info = %+v", info)
	}

	// Legacy /v1/* aliases hit the default campaign, not acme.
	if code := do(t, h, "POST", "/v1/join", `{"name":"zed"}`, nil); code != http.StatusCreated {
		t.Fatalf("legacy join = %d", code)
	}
	var defInfo campaignInfo
	do(t, h, "GET", "/v1/campaigns/"+DefaultID, "", &defInfo)
	if defInfo.Participants != 1 {
		t.Fatalf("default campaign = %+v", defInfo)
	}
	do(t, h, "GET", "/v1/campaigns/acme", "", &info)
	if info.Participants != 1 {
		t.Fatalf("acme leaked the legacy join: %+v", info)
	}
	// And reads through both spellings agree for the default campaign.
	var direct, aliased map[string]any
	do(t, h, "GET", "/v1/campaigns/"+DefaultID+"/rewards", "", &direct)
	do(t, h, "GET", "/v1/rewards", "", &aliased)
	if len(direct) == 0 || direct["total_contribution"] != aliased["total_contribution"] {
		t.Fatalf("alias mismatch: %v vs %v", direct, aliased)
	}

	// Unknown campaigns 404 on every sub-route.
	if code := do(t, h, "GET", "/v1/campaigns/ghost", "", nil); code != http.StatusNotFound {
		t.Fatalf("unknown info = %d", code)
	}
	if code := do(t, h, "POST", "/v1/campaigns/ghost/join", `{"name":"x"}`, nil); code != http.StatusNotFound {
		t.Fatalf("unknown route = %d", code)
	}

	// Delete removes the campaign and its directory; default is protected.
	if code := do(t, h, "DELETE", "/v1/campaigns/acme", "", nil); code != http.StatusOK {
		t.Fatalf("delete = %d", code)
	}
	if code := do(t, h, "GET", "/v1/campaigns/acme", "", nil); code != http.StatusNotFound {
		t.Fatalf("deleted campaign still served")
	}
	if _, err := os.Stat(filepath.Join(st.cfg.DataDir, "campaigns", "acme")); !os.IsNotExist(err) {
		t.Fatalf("campaign dir survived delete: %v", err)
	}
	if code := do(t, h, "DELETE", "/v1/campaigns/acme", "", nil); code != http.StatusNotFound {
		t.Fatalf("double delete = %d", code)
	}
	if code := do(t, h, "DELETE", "/v1/campaigns/"+DefaultID, "", nil); code != http.StatusBadRequest {
		t.Fatalf("default delete = %d", code)
	}
}

// TestStoreEphemeral runs the store without a data directory: fully
// servable, no files, checkpoints are no-ops.
func TestStoreEphemeral(t *testing.T) {
	cfg := testConfig("")
	st := openStore(t, cfg)
	h := st.Handler()
	if code := do(t, h, "POST", "/v1/campaigns", `{"id":"mem"}`, nil); code != http.StatusCreated {
		t.Fatalf("create = %d", code)
	}
	if code := do(t, h, "POST", "/v1/campaigns/mem/join", `{"name":"ada"}`, nil); code != http.StatusCreated {
		t.Fatalf("join = %d", code)
	}
	c, _ := st.Get("mem")
	if reclaimed, err := st.Checkpoint(c); err != nil || reclaimed != 0 {
		t.Fatalf("ephemeral checkpoint = %d, %v", reclaimed, err)
	}
	var out map[string]any
	if code := do(t, h, "POST", "/v1/campaigns/mem/checkpoint", "", &out); code != http.StatusOK {
		t.Fatalf("checkpoint endpoint = %d (%v)", code, out)
	}
}

// TestPerCampaignMetrics checks the campaign-labelled gauges appear on
// create and disappear on delete, alongside the store's own gauges.
func TestPerCampaignMetrics(t *testing.T) {
	cfg := testConfig(t.TempDir())
	cfg.Metrics = obs.NewRegistry()
	st := openStore(t, cfg)
	h := st.Handler()
	do(t, h, "POST", "/v1/campaigns", `{"id":"acme"}`, nil)
	do(t, h, "POST", "/v1/campaigns/acme/join", `{"name":"ada"}`, nil)
	do(t, h, "POST", "/v1/campaigns/acme/contribute", `{"name":"ada","amount":2}`, nil)

	var sb strings.Builder
	if err := cfg.Metrics.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"itree_campaigns 2",
		`itree_participants{campaign="acme"} 1`,
		`itree_contribution_total{campaign="acme"} 2`,
		`itree_participants{campaign="default"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	do(t, h, "DELETE", "/v1/campaigns/acme", "", nil)
	sb.Reset()
	if err := cfg.Metrics.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out = sb.String()
	if strings.Contains(out, `campaign="acme"`) {
		t.Errorf("deleted campaign still scraped:\n%s", out)
	}
	if !strings.Contains(out, "itree_campaigns 1") {
		t.Errorf("campaign gauge not decremented")
	}
}

// TestCreateDefaultsInherit checks mechanism/params fall back to the
// store-wide defaults.
func TestCreateDefaultsInherit(t *testing.T) {
	cfg := testConfig(t.TempDir())
	cfg.DefaultMechanism = "geometric"
	cfg.DefaultParams = core.Params{Phi: 0.3, FairShare: 0.01}
	st := openStore(t, cfg)
	var created campaignInfo
	if code := do(t, st.Handler(), "POST", "/v1/campaigns", `{"id":"plain"}`, &created); code != http.StatusCreated {
		t.Fatalf("create = %d", code)
	}
	if created.Mechanism != "geometric" || created.Phi != 0.3 {
		t.Fatalf("defaults not inherited: %+v", created)
	}
}
