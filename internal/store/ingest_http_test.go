package store

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"incentivetree/internal/ingest"
)

// TestLeaderboardRouting: the per-campaign splice and the legacy alias
// both reach the leaderboard endpoint, and its error paths surface
// through the store handler with the right status codes.
func TestLeaderboardRouting(t *testing.T) {
	st := openStore(t, testConfig(t.TempDir()))
	h := st.Handler()

	if code := do(t, h, "POST", "/v1/campaigns", `{"id":"acme","mechanism":"geometric"}`, nil); code != http.StatusCreated {
		t.Fatalf("create campaign: %d", code)
	}
	c, _ := st.Get("acme")
	for _, name := range []string{"alice", "bob"} {
		sponsor := ""
		if name != "alice" {
			sponsor = "alice"
		}
		if err := c.Server().Join(name, sponsor); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Server().Contribute("bob", 3); err != nil {
		t.Fatal(err)
	}

	var board struct {
		K       int `json:"k"`
		Leaders []struct {
			Name   string  `json:"name"`
			Reward float64 `json:"reward"`
		} `json:"leaders"`
	}
	if code := do(t, h, "GET", "/v1/campaigns/acme/leaderboard?k=1", "", &board); code != http.StatusOK {
		t.Fatalf("campaign leaderboard: %d", code)
	}
	if board.K != 1 || len(board.Leaders) != 1 || board.Leaders[0].Name != "bob" {
		t.Fatalf("leaderboard = %+v, want bob on top", board)
	}

	// Legacy alias serves the default campaign.
	if code := do(t, h, "GET", "/v1/leaderboard", "", nil); code != http.StatusOK {
		t.Fatalf("legacy leaderboard: %d", code)
	}

	// Unknown campaign is a JSON 404.
	var e errorResponse
	if code := do(t, h, "GET", "/v1/campaigns/ghost/leaderboard", "", &e); code != http.StatusNotFound {
		t.Fatalf("ghost leaderboard: %d", code)
	}
	if !strings.Contains(e.Error, "ghost") {
		t.Fatalf("404 body = %+v, want the campaign named", e)
	}

	// Malformed k is the endpoint's own 400, not a routing error.
	if code := do(t, h, "GET", "/v1/campaigns/acme/leaderboard?k=zero", "", &e); code != http.StatusBadRequest {
		t.Fatalf("k=zero: %d", code)
	}
	if !strings.Contains(e.Error, "k must be") {
		t.Fatalf("400 body = %+v", e)
	}
}

// TestShedOverStoreHandler wedges the default campaign's committer
// behind a held snapshot read lock, fills its depth-1 queue, and checks
// the store handler relays the shed as 429 with Retry-After and a JSON
// error body.
func TestShedOverStoreHandler(t *testing.T) {
	cfg := testConfig(t.TempDir())
	cfg.BatchMax = 1
	cfg.QueueDepth = 1
	st := openStore(t, cfg)
	h := st.Handler()

	c, ok := st.Get(DefaultID)
	if !ok {
		t.Fatal("no default campaign")
	}
	srv := c.Server()
	if err := srv.Join("alice", ""); err != nil {
		t.Fatal(err)
	}

	held := make(chan struct{})
	release := make(chan struct{})
	snapDone := make(chan struct{})
	go func() {
		srv.SnapshotAt(func() {
			close(held)
			<-release
		})
		close(snapDone)
	}()
	<-held

	// Same wedge as the server-level test: with two submits pending and
	// the queue reading 1, one op is in flight against the held lock and
	// the other occupies the queue's only slot.
	resc := make(chan error, 8)
	submit := func() {
		go func() {
			_, err := srv.SubmitContribute(context.Background(), "alice", 1)
			resc <- err
		}()
	}
	pending := 2
	submit()
	submit()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if srv.IngestQueueLen() == 1 && pending == 2 {
			break
		}
		select {
		case err := <-resc:
			if !errors.Is(err, ingest.ErrQueueFull) {
				t.Fatalf("unexpected early result: %v", err)
			}
			pending--
			submit()
			pending++
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("pipeline never wedged: queue=%d", srv.IngestQueueLen())
		}
		time.Sleep(time.Millisecond)
	}

	r := httptest.NewRequest("POST", "/v1/contribute", strings.NewReader(`{"name":"alice","amount":1}`))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %q)", w.Code, w.Body.String())
	}
	if got := w.Header().Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", got)
	}
	var body errorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil || body.Error == "" {
		t.Fatalf("429 body %q not a JSON error: %v", w.Body.String(), err)
	}

	close(release)
	<-snapDone
	for i := 0; i < pending; i++ {
		if err := <-resc; err != nil {
			t.Fatalf("wedged op failed after release: %v", err)
		}
	}
}

// TestBatchingDisabled: a negative BatchMax turns the pipeline off;
// writes go straight through and the queue always reads empty.
func TestBatchingDisabled(t *testing.T) {
	cfg := testConfig(t.TempDir())
	cfg.BatchMax = -1
	st := openStore(t, cfg)
	h := st.Handler()

	if code := do(t, h, "POST", "/v1/join", `{"name":"solo"}`, nil); code != http.StatusCreated {
		t.Fatalf("join: %d", code)
	}
	c, _ := st.Get(DefaultID)
	if n := c.Server().IngestQueueLen(); n != 0 {
		t.Fatalf("queue len without batching = %d", n)
	}
}

// TestBatchedWritesAcrossCampaigns: each campaign gets its own
// committer; concurrent writes land in the right journals and survive
// a store reopen.
func TestBatchedWritesAcrossCampaigns(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	st := openStore(t, cfg)
	h := st.Handler()

	if code := do(t, h, "POST", "/v1/campaigns", `{"id":"acme","mechanism":"geometric"}`, nil); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	for _, id := range []string{DefaultID, "acme"} {
		if code := do(t, h, "POST", "/v1/campaigns/"+id+"/join", `{"name":"root"}`, nil); code != http.StatusCreated {
			t.Fatalf("join %s: %d", id, code)
		}
		for i := 0; i < 8; i++ {
			body := fmt.Sprintf(`{"name":"root","amount":%d}`, i+1)
			if code := do(t, h, "POST", "/v1/campaigns/"+id+"/contribute", body, nil); code != http.StatusOK {
				t.Fatalf("contribute %s: %d", id, code)
			}
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, cfg)
	for _, id := range []string{DefaultID, "acme"} {
		var resp struct {
			Total float64 `json:"total_contribution"`
		}
		if code := do(t, st2.Handler(), "GET", "/v1/campaigns/"+id+"/rewards", "", &resp); code != http.StatusOK {
			t.Fatalf("rewards %s after reopen: %d", id, code)
		}
		if resp.Total != 36 {
			t.Fatalf("campaign %s total = %v, want 36", id, resp.Total)
		}
	}
}
