package store

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"incentivetree/internal/journal"
)

// getBody fetches one GET path's raw response body through the store
// handler — settlement recovery is asserted byte-for-byte, like the
// reward tables in recovery_test.go.
func getBody(t *testing.T, h http.Handler, path string) []byte {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
	if w.Code != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", path, w.Code, w.Body.String())
	}
	return append([]byte(nil), w.Body.Bytes()...)
}

// ledgerBytes concatenates every settlement-visible surface of one
// campaign: the epoch list, one participant's claims account, and the
// reward table.
func ledgerBytes(t *testing.T, h http.Handler, id, name string) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.Write(getBody(t, h, "/v1/campaigns/"+id+"/epochs"))
	buf.Write(getBody(t, h, "/v1/campaigns/"+id+"/claims?name="+name))
	buf.Write(getBody(t, h, "/v1/campaigns/"+id+"/rewards"))
	return buf.Bytes()
}

// TestSettleSurvivesStoreRecovery settles and claims across a
// checkpoint, crashes the store with a torn journal tail, and requires
// the recovered ledger — one epoch from the snapshot, one from the
// journal suffix — to be byte-identical, in both on-disk formats. The
// recovered claim must stay claimed: a retry answers 409 and credits
// nothing.
func TestSettleSurvivesStoreRecovery(t *testing.T) {
	for _, format := range []string{"binary", "json"} {
		t.Run(format, func(t *testing.T) {
			dir := t.TempDir()
			cfg := testConfig(dir)
			cfg.Format = format
			st, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// No Close: this store "crashes" below.
			h := st.Handler()
			if _, err := st.Create(Meta{ID: "pay", Mechanism: "geometric"}); err != nil {
				t.Fatal(err)
			}
			workload(t, h, "pay", 2, 5)

			if code := do(t, h, "POST", "/v1/campaigns/pay/epochs/settle", "", nil); code != http.StatusOK {
				t.Fatalf("settle = %d", code)
			}
			if err := postJSON(h, "/v1/campaigns/pay/claims", `{"name":"pay-w0-0","epoch":1}`); err != nil {
				t.Fatal(err)
			}
			// Checkpoint: epoch 1 and its claim now live only in the snapshot.
			c, _ := st.Get("pay")
			if _, err := st.Checkpoint(c); err != nil {
				t.Fatal(err)
			}
			// Epoch 2 and its claim live only in the journal suffix.
			if err := postJSON(h, "/v1/campaigns/pay/contribute", `{"name":"pay-w1-0","amount":2.75}`); err != nil {
				t.Fatal(err)
			}
			if code := do(t, h, "POST", "/v1/campaigns/pay/epochs/settle", "", nil); code != http.StatusOK {
				t.Fatalf("second settle = %d", code)
			}
			if err := postJSON(h, "/v1/campaigns/pay/claims", `{"name":"pay-w1-0","epoch":2}`); err != nil {
				t.Fatal(err)
			}

			pre := ledgerBytes(t, h, "pay", "pay-w0-0")
			seq := c.Server().LastSeq()

			// Hard crash mid-append.
			logPath := filepath.Join(dir, "campaigns", "pay", "journal.log")
			f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteString(`{"seq":99999,"kind":"cla`); err != nil {
				t.Fatal(err)
			}
			f.Close()

			st2 := openStore(t, cfg)
			h2 := st2.Handler()
			if post := ledgerBytes(t, h2, "pay", "pay-w0-0"); !bytes.Equal(pre, post) {
				t.Errorf("recovered ledger differs from pre-crash\npre:  %s\npost: %s", pre, post)
			}
			c2, _ := st2.Get("pay")
			if got := c2.Server().LastSeq(); got != seq {
				t.Errorf("recovered lastSeq = %d, want %d", got, seq)
			}
			// The replayed claims stay claimed: retries are conflicts, not
			// double credits.
			for _, body := range []string{
				`{"name":"pay-w0-0","epoch":1}`,
				`{"name":"pay-w1-0","epoch":2}`,
			} {
				if code := do(t, h2, "POST", "/v1/campaigns/pay/claims", body, nil); code != http.StatusConflict {
					t.Errorf("re-claim %s = %d, want 409", body, code)
				}
			}
			// And the ledger surface is still what it was before the retries.
			if post := ledgerBytes(t, h2, "pay", "pay-w0-0"); !bytes.Equal(pre, post) {
				t.Error("rejected re-claims changed the ledger")
			}
		})
	}
}

// TestClaimReplayIdempotentAfterCrash simulates the exact kill -9
// window of the claim path: the journal append is durable but the
// process dies before the response (and the in-memory apply, as far as
// disk can tell). Replay must credit the claim once; the client's
// retry answers 409.
func TestClaimReplayIdempotentAfterCrash(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	st, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := st.Handler()
	if _, err := st.Create(Meta{ID: "pay", Mechanism: "geometric"}); err != nil {
		t.Fatal(err)
	}
	if err := postJSON(h, "/v1/campaigns/pay/join", `{"name":"a"}`); err != nil {
		t.Fatal(err)
	}
	if err := postJSON(h, "/v1/campaigns/pay/contribute", `{"name":"a","amount":4}`); err != nil {
		t.Fatal(err)
	}
	if code := do(t, h, "POST", "/v1/campaigns/pay/epochs/settle", "", nil); code != http.StatusOK {
		t.Fatalf("settle = %d", code)
	}
	var detail struct {
		Rewards []journal.RewardShare `json:"rewards"`
	}
	if code := do(t, h, "GET", "/v1/campaigns/pay/epochs/1", "", &detail); code != http.StatusOK {
		t.Fatalf("epoch detail = %d", code)
	}
	if len(detail.Rewards) != 1 || detail.Rewards[0].Name != "a" {
		t.Fatalf("unexpected epoch 1 shares: %+v", detail.Rewards)
	}
	c, _ := st.Get("pay")
	lastSeq := c.Server().LastSeq()
	// Crash now: abandon st and append the claim record the way the dying
	// process already had — durably, with no response ever sent.
	fw, err := journal.OpenFile(filepath.Join(dir, "campaigns", "pay", "journal.log"), journal.SyncOS, 0)
	if err != nil {
		t.Fatal(err)
	}
	jw := journal.NewWriterMode(fw, lastSeq+1, journal.ModeBinary)
	if _, err := jw.Append(journal.Event{Kind: journal.KindClaim, Name: "a", Epoch: 1, Amount: detail.Rewards[0].Amount}); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, cfg)
	h2 := st2.Handler()
	// The retry the client sends after its lost response: a conflict.
	if code := do(t, h2, "POST", "/v1/campaigns/pay/claims", `{"name":"a","epoch":1}`, nil); code != http.StatusConflict {
		t.Fatalf("post-crash re-claim = %d, want 409", code)
	}
	var acct struct {
		Settled   float64 `json:"settled"`
		Claimed   float64 `json:"claimed"`
		Unclaimed float64 `json:"unclaimed"`
		Claims    int     `json:"claims"`
	}
	if code := do(t, h2, "GET", "/v1/campaigns/pay/claims?name=a", "", &acct); code != http.StatusOK {
		t.Fatalf("claims account = %d", code)
	}
	if acct.Claims != 1 || acct.Claimed != detail.Rewards[0].Amount || acct.Unclaimed != 0 {
		t.Fatalf("replayed claim credited wrong: %+v (share %v)", acct, detail.Rewards[0].Amount)
	}
}

// TestEpochTickerSettles runs the store's Run loop with a fast
// EpochInterval and waits for it to settle an epoch on its own, with
// the pool accrued at the configured EpochBudget override.
func TestEpochTickerSettles(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.EpochInterval = 5 * time.Millisecond
	cfg.EpochBudget = 0.25
	st := openStore(t, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go st.Run(ctx)
	h := st.Handler()

	if err := postJSON(h, "/v1/join", `{"name":"p0"}`); err != nil {
		t.Fatal(err)
	}
	if err := postJSON(h, "/v1/contribute", `{"name":"p0","amount":4}`); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		var resp struct {
			BudgetFrac float64 `json:"budget_frac"`
			Epochs     []struct {
				Pool float64 `json:"pool"`
			} `json:"epochs"`
		}
		body := getBody(t, h, "/v1/epochs")
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatalf("bad /v1/epochs body %q: %v", body, err)
		}
		if len(resp.Epochs) >= 1 {
			if resp.BudgetFrac != 0.25 {
				t.Fatalf("budget_frac = %v, want the 0.25 override", resp.BudgetFrac)
			}
			if resp.Epochs[0].Pool != 1 {
				t.Fatalf("epoch 1 pool = %v, want 0.25*4", resp.Epochs[0].Pool)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("epoch ticker never settled")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSettleAllSkipsIdleCampaigns: a quiet campaign yields no empty
// epochs no matter how often the ticker fires.
func TestSettleAllSkipsIdleCampaigns(t *testing.T) {
	st := openStore(t, testConfig(t.TempDir()))
	h := st.Handler()
	if err := postJSON(h, "/v1/join", `{"name":"p0"}`); err != nil {
		t.Fatal(err)
	}
	if err := postJSON(h, "/v1/contribute", `{"name":"p0","amount":2}`); err != nil {
		t.Fatal(err)
	}
	st.SettleAll()
	st.SettleAll()
	st.SettleAll()
	var resp struct {
		Epochs []json.RawMessage `json:"epochs"`
	}
	if code := do(t, h, "GET", "/v1/epochs", "", &resp); code != http.StatusOK {
		t.Fatalf("epochs = %d", code)
	}
	if len(resp.Epochs) != 1 {
		t.Fatalf("idle ticks settled %d epochs, want 1", len(resp.Epochs))
	}
}

// TestSettleEndpointRouting sanity-checks the multi-tenant routing of
// the new endpoints: per-campaign paths hit their own ledger, legacy
// paths the default campaign's.
func TestSettleEndpointRouting(t *testing.T) {
	st := openStore(t, testConfig(t.TempDir()))
	h := st.Handler()
	if _, err := st.Create(Meta{ID: "acme"}); err != nil {
		t.Fatal(err)
	}
	if err := postJSON(h, "/v1/campaigns/acme/join", `{"name":"a"}`); err != nil {
		t.Fatal(err)
	}
	if err := postJSON(h, "/v1/campaigns/acme/contribute", `{"name":"a","amount":3}`); err != nil {
		t.Fatal(err)
	}
	if code := do(t, h, "POST", "/v1/campaigns/acme/epochs/settle", "", nil); code != http.StatusOK {
		t.Fatalf("settle acme = %d", code)
	}
	var resp struct {
		Epochs []json.RawMessage `json:"epochs"`
	}
	if code := do(t, h, "GET", "/v1/campaigns/acme/epochs", "", &resp); code != http.StatusOK || len(resp.Epochs) != 1 {
		t.Fatalf("acme epochs = %d, %d epochs", code, len(resp.Epochs))
	}
	// The default campaign saw none of that.
	resp.Epochs = nil
	if code := do(t, h, "GET", "/v1/epochs", "", &resp); code != http.StatusOK || len(resp.Epochs) != 0 {
		t.Fatalf("default epochs = %d, %d epochs, want 0", code, len(resp.Epochs))
	}
	// Nothing to settle on the empty default campaign: 409 via routing.
	if code := do(t, h, "POST", "/v1/epochs/settle", "", nil); code != http.StatusConflict {
		t.Fatalf("idle default settle = %d, want 409", code)
	}
}
