package store

import (
	"errors"
	"net/http"
	"path/filepath"

	"incentivetree/internal/replica"
	"incentivetree/internal/server"
)

// journalFile is the campaign journal's file name under its directory
// (see the package comment's data-directory layout).
const journalFile = "journal.log"

// journalPath locates the campaign's journal file; empty for
// ephemeral or caller-managed campaigns, which cannot stream.
func (c *Campaign) journalPath() string {
	if c.dir == "" {
		return ""
	}
	return filepath.Join(c.dir, journalFile)
}

// primaryCampaign adapts a hosted campaign to the replication
// publisher's read-side view.
func (st *Store) primaryCampaign(c *Campaign) replica.PrimaryCampaign {
	return replica.PrimaryCampaign{
		Meta: replica.Meta{
			ID:          c.Meta.ID,
			Mechanism:   c.Meta.Mechanism,
			Params:      c.Meta.Params,
			Incremental: c.Meta.Incremental,
		},
		Snapshot:        c.srv.SnapshotState,
		LastSeq:         c.srv.LastSeq,
		CheckpointedSeq: c.checkpointedSeqHint,
		JournalPath:     c.journalPath(),
	}
}

func (st *Store) handleReplicaSnapshot(w http.ResponseWriter, r *http.Request) {
	c, ok := st.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{"unknown campaign " + r.PathValue("id")})
		return
	}
	st.pub.ServeSnapshot(w, r, st.primaryCampaign(c))
}

func (st *Store) handleReplicaJournal(w http.ResponseWriter, r *http.Request) {
	c, ok := st.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{"unknown campaign " + r.PathValue("id")})
		return
	}
	st.pub.ServeJournal(w, r, st.primaryCampaign(c))
}

// Adopt installs (or refreshes) a campaign from a replicated snapshot,
// satisfying replica.Target. When the campaign already exists with the
// same mechanism configuration its deployment is restored in place
// (metric series and handler identity survive a re-bootstrap);
// otherwise a fresh deployment replaces it. Adopted campaigns run
// without journal, ingest pipeline, or incremental engine: writes
// never reach a follower (the replica middleware redirects them), and
// full evaluation keeps reward bytes identical to the primary's.
func (st *Store) Adopt(meta replica.Meta, snap server.Snapshot) (replica.Applier, error) {
	if !st.cfg.Follower {
		return nil, errors.New("store: Adopt requires a follower-mode store")
	}
	if err := ValidateID(meta.ID); err != nil {
		return nil, err
	}
	sh := st.shardFor(meta.ID)
	sh.mu.RLock()
	old := sh.m[meta.ID]
	sh.mu.RUnlock()
	if old != nil && old.Meta.Mechanism == meta.Mechanism && old.Meta.Params == meta.Params {
		if err := old.srv.RestoreState(snap); err != nil {
			return nil, err
		}
		return old.srv, nil
	}
	mech, err := st.newMechanism(Meta{ID: meta.ID, Mechanism: meta.Mechanism, Params: meta.Params})
	if err != nil {
		return nil, err
	}
	c := &Campaign{Meta: Meta{
		ID:          meta.ID,
		Mechanism:   meta.Mechanism,
		Params:      meta.Params,
		Incremental: meta.Incremental,
	}}
	var opts []server.Option
	if st.cfg.Metrics != nil {
		opts = append(opts, server.WithMetricsLabels(st.cfg.Metrics, "campaign", meta.ID))
	}
	if st.cfg.EpochBudget != 0 {
		// Followers never settle locally, but /v1/epochs reports the
		// accrual fraction; match the primary's override when configured.
		opts = append(opts, server.WithEpochBudget(st.cfg.EpochBudget))
	}
	c.srv = server.New(mech, opts...)
	c.handler = c.srv.Handler()
	if err := c.srv.RestoreState(snap); err != nil {
		if st.cfg.Metrics != nil {
			server.UnregisterMetrics(st.cfg.Metrics, "campaign", meta.ID)
		}
		return nil, err
	}
	sh.mu.Lock()
	sh.m[meta.ID] = c
	sh.mu.Unlock()
	return c.srv, nil
}

// Drop removes a replicated campaign, satisfying replica.Target. It is
// idempotent and — unlike Delete — applies to the default campaign too
// and touches no files (follower campaigns have none).
func (st *Store) Drop(id string) error {
	sh := st.shardFor(id)
	sh.mu.Lock()
	c, ok := sh.m[id]
	delete(sh.m, id)
	sh.mu.Unlock()
	if !ok {
		return nil
	}
	c.srv.CloseIngest()
	if st.cfg.Metrics != nil {
		server.UnregisterMetrics(st.cfg.Metrics, "campaign", id)
	}
	return nil
}
