package store

import (
	"fmt"
	"sync/atomic"
	"testing"

	"incentivetree/internal/core"
	"incentivetree/internal/experiments"
)

// BenchmarkStoreParallelCampaigns measures concurrent writes spread
// across many campaigns. Each campaign has its own server lock, so the
// only shared state on the hot path is the campaign lookup — the
// benchmark's shard dimension shows cross-campaign writes scaling with
// the stripe count (shards=1 funnels every lookup through one RWMutex).
func BenchmarkStoreParallelCampaigns(b *testing.B) {
	const campaigns = 16
	for _, shards := range []int{1, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			st, err := Open(Config{
				Shards:             shards,
				CheckpointInterval: -1,
				CheckpointBytes:    -1,
				NewMechanism: func(name string, p core.Params) (core.Mechanism, error) {
					return experiments.ByName(p, name)
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			ids := make([]string, campaigns)
			for i := range ids {
				ids[i] = fmt.Sprintf("bench-%02d", i)
				c, err := st.Create(Meta{ID: ids[i], Mechanism: "geometric"})
				if err != nil {
					b.Fatal(err)
				}
				if err := c.Server().Join("seed", ""); err != nil {
					b.Fatal(err)
				}
			}
			var next atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// Each goroutine writes to its own campaign so server
				// locks never contend; lookup striping is what's measured.
				id := ids[int(next.Add(1))%campaigns]
				for pb.Next() {
					c, ok := st.Get(id)
					if !ok {
						b.Fatal("campaign vanished")
					}
					if err := c.Server().Contribute("seed", 1); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
