package store

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// rewardsBytes fetches the raw /v1/rewards body of one campaign — the
// byte-identity currency of the recovery tests.
func rewardsBytes(t *testing.T, h http.Handler, id string) []byte {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/v1/campaigns/"+id+"/rewards", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("rewards %s = %d: %s", id, w.Code, w.Body.String())
	}
	return append([]byte(nil), w.Body.Bytes()...)
}

// postJSON sends one write through the handler, failing on any
// non-2xx status (safe to call from worker goroutines).
func postJSON(h http.Handler, path, body string) error {
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("POST", path, strings.NewReader(body)))
	if w.Code < 200 || w.Code >= 300 {
		return fmt.Errorf("POST %s = %d: %s", path, w.Code, w.Body.String())
	}
	return nil
}

// workload drives one campaign with conc concurrent writers, each
// joining a private chain and contributing deterministic amounts.
func workload(t *testing.T, h http.Handler, id string, conc, ops int) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, conc)
	for g := 0; g < conc; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)*97 + 13))
			sponsor := ""
			for i := 0; i < ops; i++ {
				name := fmt.Sprintf("%s-w%d-%d", id, g, i)
				if err := postJSON(h, "/v1/campaigns/"+id+"/join",
					fmt.Sprintf(`{"name":%q,"sponsor":%q}`, name, sponsor)); err != nil {
					errs <- err
					return
				}
				if err := postJSON(h, "/v1/campaigns/"+id+"/contribute",
					fmt.Sprintf(`{"name":%q,"amount":%v}`, name, 0.5+rng.Float64()*3)); err != nil {
					errs <- err
					return
				}
				sponsor = name
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestKillRestartEquivalence is the acceptance test: several campaigns
// written concurrently, checkpointed mid-stream, hard-crashed (no
// Close) with a torn journal tail, then recovered — every campaign's
// /v1/rewards table must be byte-identical to its pre-crash one.
func TestKillRestartEquivalence(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	st, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// No Close: the first store "crashes" — its journal file handles are
	// simply abandoned.
	h := st.Handler()

	campaigns := map[string]string{"alpha": "tdrm", "beta": "geometric", "gamma": "cdrm-reciprocal"}
	for id, mech := range campaigns {
		if _, err := st.Create(Meta{ID: id, Mechanism: mech}); err != nil {
			t.Fatal(err)
		}
	}

	// Concurrent writers on every campaign, with checkpoints racing the
	// write stream (the checkpointer goroutine in production).
	stop := make(chan struct{})
	var cpWG sync.WaitGroup
	cpWG.Add(1)
	go func() {
		defer cpWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				st.CheckpointAll()
			}
		}
	}()
	var wg sync.WaitGroup
	for id := range campaigns {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			workload(t, h, id, 4, 15)
		}(id)
	}
	wg.Wait()
	close(stop)
	cpWG.Wait()
	// One final mid-stream checkpoint so part of the state is only in
	// snapshots, then a few more writes so part is only in journals.
	if err := st.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	for id := range campaigns {
		if err := postJSON(h, "/v1/campaigns/"+id+"/contribute",
			fmt.Sprintf(`{"name":%q,"amount":1.25}`, id+"-w0-0")); err != nil {
			t.Fatal(err)
		}
	}

	pre := map[string][]byte{}
	seqs := map[string]uint64{}
	for id := range campaigns {
		pre[id] = rewardsBytes(t, h, id)
		c, _ := st.Get(id)
		seqs[id] = c.Server().LastSeq()
	}

	// Hard crash: tear beta's journal tail mid-append.
	betaLog := filepath.Join(dir, "campaigns", "beta", "journal.log")
	f, err := os.OpenFile(betaLog, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := `{"seq":99999,"kind":"contrib`
	if _, err := f.WriteString(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Recover into a second store over the same directory.
	st2, err := Open(cfg)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer st2.Close()
	h2 := st2.Handler()
	if got := st2.Len(); got != len(campaigns)+1 { // + default
		t.Fatalf("recovered %d campaigns, want %d", got, len(campaigns)+1)
	}
	for id := range campaigns {
		post := rewardsBytes(t, h2, id)
		if !bytes.Equal(pre[id], post) {
			t.Errorf("%s: recovered rewards differ from pre-crash\npre:  %s\npost: %s", id, pre[id], post)
		}
		c, _ := st2.Get(id)
		if got := c.Server().LastSeq(); got != seqs[id] {
			t.Errorf("%s: recovered lastSeq = %d, want %d", id, got, seqs[id])
		}
	}

	// The torn fragment is gone from disk and appends continue cleanly.
	data, err := os.ReadFile(betaLog)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "99999") {
		t.Fatalf("torn tail survived recovery: %q", data)
	}
	for id := range campaigns {
		if err := postJSON(h2, "/v1/campaigns/"+id+"/join", `{"name":"post-crash"}`); err != nil {
			t.Fatalf("%s: write after recovery: %v", id, err)
		}
		c, _ := st2.Get(id)
		if got := c.Server().LastSeq(); got != seqs[id]+1 {
			t.Errorf("%s: post-recovery seq = %d, want %d", id, got, seqs[id]+1)
		}
	}
}

// TestCheckpointCompactsJournal asserts the second acceptance
// invariant: a checkpoint cycle strictly reduces the on-disk journal.
func TestCheckpointCompactsJournal(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, testConfig(dir))
	h := st.Handler()
	if _, err := st.Create(Meta{ID: "acme"}); err != nil {
		t.Fatal(err)
	}
	workload(t, h, "acme", 2, 10)

	logPath := filepath.Join(dir, "campaigns", "acme", "journal.log")
	before, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if before.Size() == 0 {
		t.Fatal("workload wrote no journal bytes")
	}
	preRewards := rewardsBytes(t, h, "acme")

	c, _ := st.Get("acme")
	reclaimed, err := st.Checkpoint(c)
	if err != nil {
		t.Fatal(err)
	}
	if reclaimed != before.Size() {
		t.Fatalf("reclaimed %d bytes, want the whole %d-byte journal", reclaimed, before.Size())
	}
	after, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("journal grew: %d -> %d bytes", before.Size(), after.Size())
	}
	if _, err := os.Stat(filepath.Join(dir, "campaigns", "acme", "snapshot.bin")); err != nil {
		t.Fatalf("snapshot missing after checkpoint: %v", err)
	}

	// A second checkpoint with nothing new is a no-op.
	if reclaimed, err := st.Checkpoint(c); err != nil || reclaimed != 0 {
		t.Fatalf("idle checkpoint = %d, %v", reclaimed, err)
	}

	// Snapshot-only recovery (empty journal suffix) is still exact.
	st.Close()
	st2 := openStore(t, testConfig(dir))
	if post := rewardsBytes(t, st2.Handler(), "acme"); !bytes.Equal(preRewards, post) {
		t.Fatalf("snapshot-only recovery differs\npre:  %s\npost: %s", preRewards, post)
	}
}

// TestRecoveryGapDetection: a journal whose first event does not
// directly extend the snapshot means lost events — startup must fail
// loudly rather than serve silently wrong state.
func TestRecoveryGapDetection(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.Format = "json" // the doctoring below splices line-based records
	st, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Create(Meta{ID: "gappy"}); err != nil {
		t.Fatal(err)
	}
	c, _ := st.Get("gappy")
	for i := 0; i < 3; i++ {
		if err := c.Server().Join(fmt.Sprintf("p%d", i), ""); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Checkpoint(c); err != nil {
		t.Fatal(err)
	}
	for i := 3; i < 6; i++ {
		if err := c.Server().Join(fmt.Sprintf("p%d", i), ""); err != nil {
			t.Fatal(err)
		}
	}
	// Crash without Close — a graceful Close would checkpoint and empty
	// the journal, leaving nothing to doctor.

	// Lose the journal's first post-snapshot event (seq 4).
	logPath := filepath.Join(dir, "campaigns", "gappy", "journal.log")
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 2 {
		t.Fatalf("journal too short to doctor: %q", data)
	}
	if err := os.WriteFile(logPath, []byte(strings.Join(lines[1:], "")), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(cfg); err == nil || !strings.Contains(err.Error(), "missing events") {
		t.Fatalf("gap must fail startup, got %v", err)
	}
}

// TestSizeTriggeredCheckpoint runs the background checkpointer with a
// tiny byte threshold and waits for it to compact on its own.
func TestSizeTriggeredCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.CheckpointBytes = 64 // a couple of events
	st := openStore(t, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go st.Run(ctx)
	h := st.Handler()

	snapPath := filepath.Join(dir, "campaigns", DefaultID, "snapshot.bin")
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; ; i++ {
		if err := postJSON(h, "/v1/join", fmt.Sprintf(`{"name":"p%d"}`, i)); err != nil {
			t.Fatal(err)
		}
		if _, err := os.Stat(snapPath); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("size trigger never produced a snapshot")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCloseCheckpoints: a graceful shutdown leaves every campaign
// snapshotted with an empty journal, so the next boot replays nothing.
func TestCloseCheckpoints(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	st, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := st.Handler()
	if _, err := st.Create(Meta{ID: "acme"}); err != nil {
		t.Fatal(err)
	}
	workload(t, h, "acme", 1, 5)
	pre := rewardsBytes(t, h, "acme")
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	logStat, err := os.Stat(filepath.Join(dir, "campaigns", "acme", "journal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if logStat.Size() != 0 {
		t.Fatalf("journal not compacted on close: %d bytes", logStat.Size())
	}
	st2 := openStore(t, cfg)
	if post := rewardsBytes(t, st2.Handler(), "acme"); !bytes.Equal(pre, post) {
		t.Fatalf("post-close recovery differs\npre:  %s\npost: %s", pre, post)
	}
}
