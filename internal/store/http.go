package store

import (
	"encoding/json"
	"net/http"
	"strings"

	"incentivetree/internal/core"
)

// Handler returns the store's HTTP API:
//
//	POST   /v1/campaigns                  {"id","mechanism","phi","fair","incremental"} -> create
//	GET    /v1/campaigns                  -> campaign summaries
//	GET    /v1/campaigns/{id}             -> one summary
//	DELETE /v1/campaigns/{id}             -> delete campaign and its data
//	POST   /v1/campaigns/{id}/checkpoint  -> force a checkpoint now
//	GET    /v1/campaigns/{id}/replica/... -> replication endpoints
//	                                         (snapshot, journal stream;
//	                                         see internal/replica)
//	*      /v1/campaigns/{id}/...         -> the campaign's server API
//	                                         (join, contribute, rewards, ...)
//	*      /v1/...                        -> legacy aliases served by the
//	                                         "default" campaign
//
// Campaign sub-routes are the exact internal/server API with the
// "/campaigns/{id}" segment spliced in, so existing single-campaign
// clients keep working unchanged against the legacy aliases.
func (st *Store) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", st.handleCreate)
	mux.HandleFunc("GET /v1/campaigns", st.handleList)
	mux.HandleFunc("GET /v1/campaigns/{id}", st.handleInfo)
	mux.HandleFunc("DELETE /v1/campaigns/{id}", st.handleDelete)
	mux.HandleFunc("POST /v1/campaigns/{id}/checkpoint", st.handleCheckpoint)
	mux.HandleFunc("GET /v1/campaigns/{id}/replica/snapshot", st.handleReplicaSnapshot)
	mux.HandleFunc("GET /v1/campaigns/{id}/replica/journal", st.handleReplicaJournal)
	mux.HandleFunc("/v1/campaigns/{id}/{rest...}", st.handleCampaignRoute)
	mux.HandleFunc("/v1/", st.handleLegacy)
	return mux
}

// createRequest is the wire format of POST /v1/campaigns.
type createRequest struct {
	ID          string  `json:"id"`
	Mechanism   string  `json:"mechanism,omitempty"`
	Phi         float64 `json:"phi,omitempty"`
	Fair        float64 `json:"fair,omitempty"`
	Incremental bool    `json:"incremental,omitempty"`
}

// campaignInfo is the wire format of a campaign summary.
type campaignInfo struct {
	ID           string  `json:"id"`
	Mechanism    string  `json:"mechanism"`
	Phi          float64 `json:"phi"`
	Fair         float64 `json:"fair"`
	Incremental  bool    `json:"incremental,omitempty"`
	Participants int     `json:"participants"`
	Contribution float64 `json:"total_contribution"`
	LastSeq      uint64  `json:"last_seq"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (st *Store) info(c *Campaign) campaignInfo {
	snap := c.srv.SnapshotState()
	return campaignInfo{
		ID:           c.Meta.ID,
		Mechanism:    c.Meta.Mechanism,
		Phi:          c.Meta.Params.Phi,
		Fair:         c.Meta.Params.FairShare,
		Incremental:  c.Meta.Incremental,
		Participants: snap.Tree.NumParticipants(),
		Contribution: snap.Tree.Total(),
		LastSeq:      snap.LastSeq,
	}
}

func (st *Store) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"malformed JSON: " + err.Error()})
		return
	}
	params := core.Params{Phi: req.Phi, FairShare: req.Fair}
	if params == (core.Params{}) {
		params = st.cfg.DefaultParams
	}
	c, err := st.Create(Meta{
		ID:          req.ID,
		Mechanism:   req.Mechanism,
		Params:      params,
		Incremental: req.Incremental,
	})
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	writeJSON(w, http.StatusCreated, st.info(c))
}

func (st *Store) handleList(w http.ResponseWriter, _ *http.Request) {
	out := []campaignInfo{}
	for _, c := range st.List() {
		out = append(out, st.info(c))
	}
	writeJSON(w, http.StatusOK, out)
}

func (st *Store) handleInfo(w http.ResponseWriter, r *http.Request) {
	c, ok := st.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{"unknown campaign " + r.PathValue("id")})
		return
	}
	writeJSON(w, http.StatusOK, st.info(c))
}

func (st *Store) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := st.Delete(id); err != nil {
		status := http.StatusBadRequest
		if _, ok := st.Get(id); !ok && id != DefaultID {
			status = http.StatusNotFound
		}
		writeJSON(w, status, errorResponse{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"deleted": id})
}

func (st *Store) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	c, ok := st.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{"unknown campaign " + r.PathValue("id")})
		return
	}
	reclaimed, err := st.Checkpoint(c)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"campaign":         c.Meta.ID,
		"last_seq":         c.srv.LastSeq(),
		"reclaimed_bytes":  reclaimed,
		"journal_bytes":    journalBytes(c),
		"checkpointed_seq": c.checkpointedSeqHint(),
	})
}

// checkpointedSeqHint reads the checkpointed sequence for reporting.
func (c *Campaign) checkpointedSeqHint() uint64 {
	c.cpMu.Lock()
	defer c.cpMu.Unlock()
	return c.checkpointedSeq
}

func journalBytes(c *Campaign) int64 {
	if c.fw == nil {
		return 0
	}
	return c.fw.Size()
}

// handleCampaignRoute dispatches /v1/campaigns/{id}/<rest> to the
// campaign's own server handler as /v1/<rest>. After a successful write
// it checks the journal size trigger.
func (st *Store) handleCampaignRoute(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	c, ok := st.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{"unknown campaign " + id})
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/v1/campaigns/"+id)
	r2 := r.Clone(r.Context())
	r2.URL.Path = "/v1" + rest
	r2.URL.RawPath = ""
	// The inner mux re-resolves its own pattern; clear the outer one so
	// metrics label by the inner route ("POST /v1/join"), which keeps
	// cardinality independent of campaign count.
	r2.Pattern = ""
	c.handler.ServeHTTP(w, r2)
	if r.Method == http.MethodPost {
		st.maybeKick(c)
	}
}

// handleLegacy serves the pre-multi-tenant /v1/* surface from the
// default campaign, so existing clients keep working.
func (st *Store) handleLegacy(w http.ResponseWriter, r *http.Request) {
	c, ok := st.Get(DefaultID)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{"no default campaign"})
		return
	}
	c.handler.ServeHTTP(w, r)
	if r.Method == http.MethodPost {
		st.maybeKick(c)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
