package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// corruptionFixture provisions a campaign with a binary journal of a
// few events (no checkpoint, so recovery replays everything), crashes
// the store without Close, and returns the journal path plus the
// pre-crash rewards table.
func corruptionFixture(t *testing.T) (cfg Config, logPath string, preRewards []byte) {
	t.Helper()
	dir := t.TempDir()
	cfg = testConfig(dir)
	st, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Create(Meta{ID: "acme"}); err != nil {
		t.Fatal(err)
	}
	c, _ := st.Get("acme")
	sponsor := ""
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("p%d", i)
		if err := c.Server().Join(name, sponsor); err != nil {
			t.Fatal(err)
		}
		if err := c.Server().Contribute(name, 1.5+float64(i)); err != nil {
			t.Fatal(err)
		}
		sponsor = name
	}
	pre := rewardsBytes(t, st.Handler(), "acme")
	// No Close: the journal keeps all 12 events for recovery to chew on.
	return cfg, filepath.Join(dir, "campaigns", "acme", "journal.log"), pre
}

// lastRecordStart returns the byte offset where the final binary
// record of the journal begins (records start with the 0xB1 tag; the
// payload-length byte pins down the frame walk from offset 0).
func lastRecordStart(t *testing.T, data []byte) int {
	t.Helper()
	off, last := 0, -1
	for off < len(data) {
		if data[off] != 0xb1 {
			t.Fatalf("offset %d: not a binary record (byte %#x)", off, data[off])
		}
		last = off
		plen := int(data[off+1]) // test journals have sub-128-byte payloads
		off += 2 + plen + 4
	}
	if off != len(data) || last < 0 {
		t.Fatalf("journal did not parse as whole binary records (%d != %d)", off, len(data))
	}
	return last
}

// TestBinaryJournalCorruptTailRecovers: a bit flip anywhere in the
// final binary record fails its CRC, which feeds the existing
// torn-tail repair — recovery truncates the record away and serves the
// state of the surviving prefix.
func TestBinaryJournalCorruptTailRecovers(t *testing.T) {
	cfg, logPath, _ := corruptionFixture(t)
	full, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	tail := lastRecordStart(t, full)

	for _, flip := range []int{tail, tail + 1, tail + 2, (tail + len(full)) / 2, len(full) - 1} {
		data := append([]byte(nil), full...)
		data[flip] ^= 0x20
		if err := os.WriteFile(logPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(cfg)
		if err != nil {
			t.Fatalf("flip at %d: recovery failed: %v", flip, err)
		}
		c, _ := st.Get("acme")
		if got := c.Server().LastSeq(); got != 11 {
			t.Fatalf("flip at %d: recovered lastSeq = %d, want 11 (final record dropped)", flip, got)
		}
		repaired, err := os.ReadFile(logPath)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(repaired, full[:tail]) {
			t.Fatalf("flip at %d: journal not truncated at the damaged record (len %d, want %d)",
				flip, len(repaired), tail)
		}
		st.Close()
	}
}

// TestBinaryJournalTruncatedTailRecovers: a crash mid-append leaves a
// partial final frame; recovery keeps every complete record and trims
// the fragment.
func TestBinaryJournalTruncatedTailRecovers(t *testing.T) {
	cfg, logPath, _ := corruptionFixture(t)
	full, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	tail := lastRecordStart(t, full)
	if err := os.Truncate(logPath, int64(tail+3)); err != nil {
		t.Fatal(err)
	}
	st, err := Open(cfg)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer st.Close()
	c, _ := st.Get("acme")
	if got := c.Server().LastSeq(); got != 11 {
		t.Fatalf("recovered lastSeq = %d, want 11", got)
	}
	repaired, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(repaired) != tail {
		t.Fatalf("journal trimmed to %d bytes, want %d", len(repaired), tail)
	}
	// Appends continue cleanly after the repair.
	if err := c.Server().Join("post-crash", ""); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
}

// TestBinaryJournalMidLogCorruptionFailsLoudly: damage with valid
// records behind it is not a torn tail — startup must refuse to serve
// rather than silently drop interior events.
func TestBinaryJournalMidLogCorruptionFailsLoudly(t *testing.T) {
	cfg, logPath, _ := corruptionFixture(t)
	full, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), full...)
	data[len(full)/3] ^= 0x20
	if err := os.WriteFile(logPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(cfg); err == nil {
		t.Fatal("mid-log corruption recovered silently; want a hard startup error")
	}
	// The damaged journal must be left untouched for forensics.
	after, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, data) {
		t.Fatal("failed recovery modified the corrupt journal")
	}
}

// TestRecoveryAfterFormatFlip: a JSON-era campaign recovered by a
// binary-format store keeps its state, appends binary records to the
// same journal, and its next checkpoint converts the snapshot file —
// the in-place migration path.
func TestRecoveryAfterFormatFlip(t *testing.T) {
	dir := t.TempDir()
	jsonCfg := testConfig(dir)
	jsonCfg.Format = "json"
	st, err := Open(jsonCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Create(Meta{ID: "acme"}); err != nil {
		t.Fatal(err)
	}
	c, _ := st.Get("acme")
	for i := 0; i < 3; i++ {
		if err := c.Server().Join(fmt.Sprintf("p%d", i), ""); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Checkpoint(c); err != nil {
		t.Fatal(err)
	}
	if err := c.Server().Join("p3", ""); err != nil {
		t.Fatal(err)
	}
	pre := rewardsBytes(t, st.Handler(), "acme")
	// Crash (no Close); reopen with the binary default.
	st2 := openStore(t, testConfig(dir))
	defer st2.Close()
	if post := rewardsBytes(t, st2.Handler(), "acme"); !bytes.Equal(pre, post) {
		t.Fatalf("format-flip recovery differs\npre:  %s\npost: %s", pre, post)
	}
	c2, _ := st2.Get("acme")
	if err := c2.Server().Join("p4", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Checkpoint(c2); err != nil {
		t.Fatal(err)
	}
	campDir := filepath.Join(dir, "campaigns", "acme")
	if _, err := os.Stat(filepath.Join(campDir, "snapshot.bin")); err != nil {
		t.Fatalf("binary snapshot missing after migration checkpoint: %v", err)
	}
	if _, err := os.Stat(filepath.Join(campDir, "snapshot.json")); !os.IsNotExist(err) {
		t.Fatalf("stale JSON snapshot survived migration: %v", err)
	}
	// And the migrated directory still recovers.
	st3 := openStore(t, testConfig(dir))
	defer st3.Close()
	c3, _ := st3.Get("acme")
	if got := c3.Server().LastSeq(); got != c2.Server().LastSeq() {
		t.Fatalf("post-migration recovery lastSeq = %d, want %d", got, c2.Server().LastSeq())
	}
}
