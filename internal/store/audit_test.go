package store

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// auditConfig enables the audit service with a long interval (tests
// drive scans via the HTTP scan endpoint or AuditAll, never the timer).
func auditConfig(dir string) Config {
	cfg := testConfig(dir)
	cfg.AuditInterval = time.Hour
	return cfg
}

// plantChain joins an ε-chain of n identities under sponsor through
// the campaign's HTTP surface.
func plantChain(t *testing.T, h http.Handler, base, sponsor string, n int) []string {
	t.Helper()
	names := make([]string, n)
	parent := sponsor
	for i := range names {
		names[i] = fmt.Sprintf("syb-%02d", i)
		if code := do(t, h, "POST", base+"/join",
			fmt.Sprintf(`{"name":%q,"sponsor":%q}`, names[i], parent), nil); code != http.StatusCreated {
			t.Fatalf("join %s: %d", names[i], code)
		}
		if code := do(t, h, "POST", base+"/contribute",
			fmt.Sprintf(`{"name":%q,"amount":0.8}`, names[i]), nil); code != http.StatusOK {
			t.Fatalf("contribute %s: %d", names[i], code)
		}
		parent = names[i]
	}
	return names
}

// auditReport mirrors the GET .../audit wire shape.
type auditReport struct {
	Enabled     bool     `json:"enabled"`
	Quarantined []string `json:"quarantined"`
	Report      *struct {
		Scans    uint64 `json:"scans"`
		Flagged  int    `json:"flagged"`
		Findings []struct {
			Root            string   `json:"root"`
			Shape           string   `json:"shape"`
			Flagged         bool     `json:"flagged"`
			Members         []string `json:"members"`
			AutoQuarantined bool     `json:"auto_quarantined"`
		} `json:"findings"`
	} `json:"report"`
}

// TestAuditServiceHTTP drives the full loop over the campaign-scoped
// routes: plant an ε-chain, scan twice, read the flagged finding, see
// the auto-quarantine zero the subtree's payout, then lift it by hand.
func TestAuditServiceHTTP(t *testing.T) {
	cfg := auditConfig(t.TempDir())
	cfg.AuditQuarantine = true
	st := openStore(t, cfg)
	h := st.Handler()
	if code := do(t, h, "POST", "/v1/campaigns", `{"id":"c1"}`, nil); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	base := "/v1/campaigns/c1"
	do(t, h, "POST", base+"/join", `{"name":"alice"}`, nil)
	do(t, h, "POST", base+"/join", `{"name":"bob","sponsor":"alice"}`, nil)
	do(t, h, "POST", base+"/contribute", `{"name":"bob","amount":3}`, nil)
	names := plantChain(t, h, base, "alice", 5)

	var rep auditReport
	if code := do(t, h, "GET", base+"/audit", "", &rep); code != http.StatusOK {
		t.Fatalf("audit report: %d", code)
	}
	if !rep.Enabled || rep.Report == nil {
		t.Fatalf("audit service not enabled: %+v", rep)
	}
	var scan struct {
		Flagged     int `json:"flagged"`
		Quarantined int `json:"quarantined"`
	}
	do(t, h, "POST", base+"/audit/scan", "", &scan)
	if code := do(t, h, "POST", base+"/audit/scan", "", &scan); code != http.StatusOK {
		t.Fatalf("scan: %d", code)
	}
	if scan.Flagged != 1 || scan.Quarantined != 1 {
		t.Fatalf("second scan %+v, want one flagged, one quarantined", scan)
	}
	do(t, h, "GET", base+"/audit", "", &rep)
	if len(rep.Quarantined) != 1 || rep.Quarantined[0] != names[0] {
		t.Fatalf("quarantined %v, want the chain head %q", rep.Quarantined, names[0])
	}
	if len(rep.Report.Findings) != 1 || !rep.Report.Findings[0].AutoQuarantined ||
		rep.Report.Findings[0].Shape != "epsilon-chain" {
		t.Fatalf("findings %+v, want one auto-quarantined ε-chain", rep.Report.Findings)
	}

	// The quarantined subtree's payout is zero; honest rewards stay.
	rewards := func() map[string]float64 {
		var doc struct {
			Participants []struct {
				Name   string  `json:"name"`
				Reward float64 `json:"reward"`
			} `json:"participants"`
		}
		do(t, h, "GET", base+"/rewards", "", &doc)
		out := make(map[string]float64)
		for _, p := range doc.Participants {
			out[p.Name] = p.Reward
		}
		return out
	}
	paid := rewards()
	for _, n := range names {
		if paid[n] != 0 {
			t.Fatalf("quarantined %s still paid %v", n, paid[n])
		}
	}
	if paid["bob"] <= 0 {
		t.Fatalf("honest bob unpaid: %v", paid)
	}

	// An operator can lift the flag (head only was quarantined).
	if code := do(t, h, "DELETE", base+"/audit/quarantine/"+names[0], "", nil); code != http.StatusOK {
		t.Fatalf("unquarantine: %d", code)
	}
	if paid = rewards(); paid[names[0]] <= 0 {
		t.Fatalf("unquarantined head still zeroed: %v", paid)
	}
}

func TestAuditQuarantineHTTPErrors(t *testing.T) {
	st := openStore(t, auditConfig(t.TempDir()))
	h := st.Handler()
	do(t, h, "POST", "/v1/join", `{"name":"alice"}`, nil)

	if code := do(t, h, "POST", "/v1/audit/quarantine", `{"name":"ghost"}`, nil); code != http.StatusNotFound {
		t.Fatalf("unknown name: %d, want 404", code)
	}
	if code := do(t, h, "DELETE", "/v1/audit/quarantine/alice", "", nil); code != http.StatusConflict {
		t.Fatalf("unquarantine of clean name: %d, want 409", code)
	}
	if code := do(t, h, "POST", "/v1/audit/quarantine", `{"name":"alice"}`, nil); code != http.StatusOK {
		t.Fatalf("quarantine: %d", code)
	}
	if code := do(t, h, "POST", "/v1/audit/quarantine", `{"name":"alice"}`, nil); code != http.StatusConflict {
		t.Fatalf("double quarantine: %d, want 409", code)
	}
}

func TestAuditDisabledStillServesQuarantine(t *testing.T) {
	st := openStore(t, testConfig(t.TempDir())) // no AuditInterval
	h := st.Handler()
	do(t, h, "POST", "/v1/join", `{"name":"alice"}`, nil)

	var rep auditReport
	if code := do(t, h, "GET", "/v1/audit", "", &rep); code != http.StatusOK {
		t.Fatalf("audit report: %d", code)
	}
	if rep.Enabled || rep.Report != nil {
		t.Fatalf("audit reported enabled without the service: %+v", rep)
	}
	if code := do(t, h, "POST", "/v1/audit/scan", "", nil); code != http.StatusConflict {
		t.Fatalf("scan without service: %d, want 409", code)
	}
	if code := do(t, h, "POST", "/v1/audit/quarantine", `{"name":"alice"}`, nil); code != http.StatusOK {
		t.Fatalf("manual quarantine without service: %d", code)
	}
	do(t, h, "GET", "/v1/audit", "", &rep)
	if len(rep.Quarantined) != 1 || rep.Quarantined[0] != "alice" {
		t.Fatalf("quarantined = %v, want [alice]", rep.Quarantined)
	}
}

// TestQuarantineSurvivesStoreRecovery is the store-level durability
// contract: quarantine flags — journaled, then checkpointed — come
// back byte-identically across reopen, both from a journal suffix and
// from a snapshot.
func TestQuarantineSurvivesStoreRecovery(t *testing.T) {
	dir := t.TempDir()
	readRewards := func(st *Store) string {
		r := httptest.NewRequest("GET", "/v1/campaigns/c1/rewards", nil)
		w := httptest.NewRecorder()
		st.Handler().ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			t.Fatalf("rewards: %d", w.Code)
		}
		return w.Body.String()
	}

	st := openStore(t, auditConfig(dir))
	h := st.Handler()
	do(t, h, "POST", "/v1/campaigns", `{"id":"c1"}`, nil)
	do(t, h, "POST", "/v1/campaigns/c1/join", `{"name":"alice"}`, nil)
	do(t, h, "POST", "/v1/campaigns/c1/contribute", `{"name":"alice","amount":2}`, nil)
	plantChain(t, h, "/v1/campaigns/c1", "alice", 4)
	if code := do(t, h, "POST", "/v1/campaigns/c1/audit/quarantine", `{"name":"syb-00"}`, nil); code != http.StatusOK {
		t.Fatalf("quarantine: %d", code)
	}
	before := readRewards(st)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen #1: the checkpoint taken by Close covers the quarantine —
	// recovery is snapshot-only.
	st2 := openStore(t, auditConfig(dir))
	if got := readRewards(st2); got != before {
		t.Fatalf("snapshot recovery changed rewards:\n before %s\n after  %s", before, got)
	}
	// Write more, skip checkpointing, and recover the quarantine record
	// from the journal suffix this time.
	h2 := st2.Handler()
	do(t, h2, "POST", "/v1/campaigns/c1/join", `{"name":"carol","sponsor":"alice"}`, nil)
	do(t, h2, "POST", "/v1/campaigns/c1/contribute", `{"name":"carol","amount":1}`, nil)
	do(t, h2, "POST", "/v1/campaigns/c1/audit/quarantine", `{"name":"carol"}`, nil)
	mid := readRewards(st2)
	c, _ := st2.Get("c1")
	c.srv.CloseIngest()
	if c.fw != nil {
		c.fw.Close() // simulate a crash: journal written, no checkpoint
	}

	st3 := openStore(t, auditConfig(dir))
	if got := readRewards(st3); got != mid {
		t.Fatalf("journal recovery changed rewards:\n before %s\n after  %s", mid, got)
	}
	if a := func() *Campaign { c, _ := st3.Get("c1"); return c }(); a.Auditor() == nil {
		t.Fatal("recovered campaign has no auditor attached")
	}
}
