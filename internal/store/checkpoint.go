package store

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"time"

	"incentivetree/internal/journal"
	"incentivetree/internal/server"
)

// Run drives the store's background services until ctx is cancelled:
// every CheckpointInterval it checkpoints campaigns with
// uncheckpointed events, in between it services size-trigger kicks
// posted by the HTTP layer when a journal passes CheckpointBytes,
// every AuditInterval it runs one incremental audit scan per campaign,
// and every EpochInterval it settles each campaign's next payout
// epoch.
func (st *Store) Run(ctx context.Context) {
	var tick <-chan time.Time
	if st.cfg.CheckpointInterval > 0 {
		t := time.NewTicker(st.cfg.CheckpointInterval)
		defer t.Stop()
		tick = t.C
	}
	var auditTick <-chan time.Time
	if st.cfg.AuditInterval > 0 && !st.cfg.Follower {
		t := time.NewTicker(st.cfg.AuditInterval)
		defer t.Stop()
		auditTick = t.C
	}
	var epochTick <-chan time.Time
	if st.cfg.EpochInterval > 0 && !st.cfg.Follower {
		t := time.NewTicker(st.cfg.EpochInterval)
		defer t.Stop()
		epochTick = t.C
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick:
			st.CheckpointAll()
		case <-auditTick:
			st.AuditAll()
		case <-epochTick:
			st.SettleAll()
		case c := <-st.kick:
			c.kickMu.Lock()
			c.kicked = false
			c.kickMu.Unlock()
			if _, err := st.Checkpoint(c); err != nil {
				log.Printf("store: checkpoint %s: %v", c.Meta.ID, err)
			}
		}
	}
}

// maybeKick posts a size-trigger checkpoint request for c if its
// journal has outgrown CheckpointBytes. Requests are coalesced per
// campaign and dropped (to be retried by the periodic tick) when the
// queue is full.
func (st *Store) maybeKick(c *Campaign) {
	if c.fw == nil || st.cfg.CheckpointBytes <= 0 || c.fw.Size() < st.cfg.CheckpointBytes {
		return
	}
	c.kickMu.Lock()
	already := c.kicked
	if !already {
		c.kicked = true
	}
	c.kickMu.Unlock()
	if already {
		return
	}
	select {
	case st.kick <- c:
	default:
		c.kickMu.Lock()
		c.kicked = false
		c.kickMu.Unlock()
	}
}

// AuditAll runs one audit scan on every campaign with an attached
// auditor. Scans with nothing dirty return immediately; scans that
// auto-quarantined appended journal records, so the size trigger is
// re-checked.
func (st *Store) AuditAll() {
	for _, c := range st.List() {
		if c.auditor == nil {
			continue
		}
		if stats := c.auditor.Scan(); stats.Quarantined > 0 {
			st.maybeKick(c)
		}
	}
}

// SettleAll settles the next payout epoch on every campaign. Idle
// campaigns (no contribution growth, nothing grantable) are skipped —
// server.ErrNothingToSettle is the expected steady-state answer, not a
// failure — so quiet campaigns do not accumulate empty epochs. A
// settle appends a journal record, so the size trigger is re-checked.
func (st *Store) SettleAll() {
	for _, c := range st.List() {
		if _, err := c.srv.Settle(); err != nil {
			if !errors.Is(err, server.ErrNothingToSettle) {
				log.Printf("store: settle %s: %v", c.Meta.ID, err)
			}
			continue
		}
		st.maybeKick(c)
	}
}

// CheckpointAll checkpoints every campaign with uncheckpointed events,
// returning the first error encountered (the sweep continues past
// failures).
func (st *Store) CheckpointAll() error {
	var first error
	for _, c := range st.List() {
		if _, err := st.Checkpoint(c); err != nil {
			log.Printf("store: checkpoint %s: %v", c.Meta.ID, err)
			if first == nil {
				first = err
			}
		}
	}
	return first
}

// Snapshot checkpoint files. Binary-format stores write snapBinFile;
// JSON-format stores write snapJSONFile. Recovery prefers the binary
// file when both exist, which is safe because a checkpoint removes the
// other-format file *before* compacting the journal: a crash in the
// window where both files exist always leaves a journal that still
// covers every event past the older file's sequence.
const (
	snapBinFile  = "snapshot.bin"
	snapJSONFile = "snapshot.json"
)

// Checkpoint atomically snapshots one campaign and compacts its
// journal, returning the number of journal bytes reclaimed. The
// protocol is crash-safe at every step:
//
//  1. Under the server's read lock, clone the state at sequence k and
//     record the journal byte offset holding exactly events 1..k.
//  2. Write the snapshot file via temp + fsync + rename — the snapshot
//     is now durable; every event <= k is garbage. Remove the
//     other-format snapshot file if a previous configuration left one.
//  3. Compact the journal to its suffix after the recorded offset
//     (copy + fsync + rename, see journal.FileWriter.CompactTo).
//
// A crash before step 2's rename leaves the old snapshot + full
// journal; after it, the new snapshot + a journal whose covered prefix
// is dropped during recovery by sequence-number filtering. No window
// loses events. Campaigns without a store-managed journal are no-ops.
func (st *Store) Checkpoint(c *Campaign) (reclaimed int64, err error) {
	if c.fw == nil {
		return 0, nil
	}
	c.cpMu.Lock()
	defer c.cpMu.Unlock()

	var offset int64
	snap := c.srv.SnapshotAt(func() { offset = c.fw.Size() })
	if snap.LastSeq == c.checkpointedSeq && offset == 0 {
		return 0, nil // nothing new since the last checkpoint
	}
	start := time.Now()
	if err := st.writeSnapshot(c.dir, &snap); err != nil {
		if st.mCPErrors != nil {
			st.mCPErrors.Inc()
		}
		return 0, err
	}
	reclaimed, err = c.fw.CompactTo(offset)
	if err != nil {
		if st.mCPErrors != nil {
			st.mCPErrors.Inc()
		}
		return 0, err
	}
	c.checkpointedSeq = snap.LastSeq
	if st.mCheckpoints != nil {
		st.mCheckpoints.Inc()
		st.mCPSeconds.Observe(time.Since(start).Seconds())
		st.mReclaimed.Add(uint64(reclaimed))
	}
	return reclaimed, nil
}

// writeSnapshot durably writes the checkpoint snapshot in the store's
// configured format and clears the other format's file, so a campaign
// directory holds one authoritative snapshot (modulo the documented
// crash window, which recovery resolves by preferring the binary file).
func (st *Store) writeSnapshot(dir string, snap *server.Snapshot) error {
	if st.mode == journal.ModeBinary {
		data, err := server.EncodeSnapshotBinary(snap)
		if err != nil {
			return fmt.Errorf("store: encode snapshot: %w", err)
		}
		if err := writeFileAtomic(filepath.Join(dir, snapBinFile), data); err != nil {
			return err
		}
		os.Remove(filepath.Join(dir, snapJSONFile))
		return nil
	}
	if err := writeFileAtomic(filepath.Join(dir, snapJSONFile), mustJSON(snap)); err != nil {
		return err
	}
	os.Remove(filepath.Join(dir, snapBinFile))
	return nil
}

// recoverAll scans the data directory and rebuilds every campaign
// found there.
func (st *Store) recoverAll() error {
	entries, err := os.ReadDir(st.campaignsRoot())
	if err != nil {
		return fmt.Errorf("store: scan %s: %w", st.campaignsRoot(), err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if err := st.recoverCampaign(e.Name()); err != nil {
			return err
		}
	}
	return nil
}

// recoverCampaign rebuilds one campaign from its directory: meta.json
// for configuration, snapshot.json for the checkpointed base state, and
// journal.log for the suffix of events after it. A torn final journal
// line is truncated away (counted on itree_journal_torn_tails_total); stray
// .tmp files from interrupted checkpoints are removed.
func (st *Store) recoverCampaign(id string) error {
	if err := ValidateID(id); err != nil {
		return fmt.Errorf("store: recover: %w", err)
	}
	dir := filepath.Join(st.campaignsRoot(), id)
	metaRaw, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return fmt.Errorf("store: recover %s: %w", id, err)
	}
	var meta Meta
	if err := unmarshalStrictID(metaRaw, &meta, id); err != nil {
		return err
	}
	mech, err := st.newMechanism(meta)
	if err != nil {
		return err
	}
	// Interrupted atomic writes never got renamed; they are garbage.
	os.Remove(filepath.Join(dir, snapBinFile+".tmp"))
	os.Remove(filepath.Join(dir, snapJSONFile+".tmp"))
	os.Remove(filepath.Join(dir, "journal.log.tmp"))
	os.Remove(filepath.Join(dir, "meta.json.tmp"))

	snap, err := readSnapshot(dir)
	if err != nil {
		return fmt.Errorf("store: recover %s: %w", id, err)
	}
	events, err := recoverJournal(filepath.Join(dir, journalFile))
	if err != nil {
		return fmt.Errorf("store: recover %s: %w", id, err)
	}
	// The journal may still contain events the snapshot covers (crash
	// between snapshot rename and compaction); server.Recover filters
	// them by sequence number. What it cannot detect is a *gap* between
	// snapshot and suffix, so check that here.
	lastSeq := uint64(0)
	if snap != nil {
		lastSeq = snap.LastSeq
	}
	for _, e := range events {
		if e.Seq > lastSeq {
			if e.Seq != lastSeq+1 {
				return fmt.Errorf("store: recover %s: journal starts at seq %d but snapshot covers %d — missing events", id, e.Seq, lastSeq)
			}
			break
		}
	}
	if n := len(events); n > 0 && events[n-1].Seq > lastSeq {
		lastSeq = events[n-1].Seq
	}

	c := &Campaign{Meta: meta, dir: dir, checkpointedSeq: 0}
	if snap != nil {
		c.checkpointedSeq = snap.LastSeq
	}
	fw, err := journal.OpenFile(filepath.Join(dir, journalFile), st.cfg.Sync, st.cfg.SyncInterval)
	if err != nil {
		return err
	}
	c.fw = fw
	c.srv = server.New(mech, st.serverOptions(c, lastSeq+1)...)
	if err := server.Recover(c.srv, snap, events); err != nil {
		fw.Close()
		return fmt.Errorf("store: recover %s: %w", id, err)
	}
	c.handler = c.srv.Handler()
	if !st.put(c) {
		fw.Close()
		return fmt.Errorf("store: duplicate campaign %q on disk", id)
	}
	st.attachAudit(c)
	return nil
}

// readSnapshot loads the campaign's checkpoint snapshot, preferring the
// binary file (see the crash-window note on the file constants). Either
// file may hold either representation — server.DecodeSnapshot detects
// the format from the leading bytes — so hand-converted files recover
// too. No file at all means no checkpoint has been taken yet.
func readSnapshot(dir string) (*server.Snapshot, error) {
	for _, name := range []string{snapBinFile, snapJSONFile} {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if errors.Is(err, fs.ErrNotExist) {
			continue
		}
		if err != nil {
			return nil, err
		}
		snap, err := server.DecodeSnapshot(data)
		if err != nil {
			return nil, fmt.Errorf("snapshot %s: %w", path, err)
		}
		return snap, nil
	}
	return nil, nil
}

// recoverJournal reads a journal file, repairing a torn tail by
// truncating the partial final line so appends can continue. A missing
// file is an empty journal.
func recoverJournal(path string) ([]journal.Event, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	events, err := journal.Read(bytes.NewReader(data))
	var torn *journal.TornTailError
	switch {
	case err == nil:
	case errors.As(err, &torn):
		if terr := os.Truncate(path, torn.Offset); terr != nil {
			return nil, fmt.Errorf("truncate torn tail: %w", terr)
		}
	default:
		return nil, err
	}
	return events, nil
}

// unmarshalStrictID decodes meta.json and cross-checks the embedded id
// against the directory name, catching manual copy mistakes.
func unmarshalStrictID(data []byte, meta *Meta, id string) error {
	if err := json.Unmarshal(data, meta); err != nil {
		return fmt.Errorf("store: recover %s: meta.json: %w", id, err)
	}
	if meta.ID != id {
		return fmt.Errorf("store: recover %s: meta.json claims id %q", id, meta.ID)
	}
	return nil
}
