// Package store is the multi-tenant serving layer of the Incentive Tree
// daemon: it owns many independent campaigns per process, each a full
// server.Server deployment (referral tree + name index + optional
// incremental reward engine + its own write-ahead journal under a data
// directory), with campaign lookup sharded across lock-striped maps so
// campaigns never contend with each other.
//
// # Data directory layout
//
//	<data-dir>/campaigns/<id>/meta.json      campaign config (mechanism, params)
//	<data-dir>/campaigns/<id>/snapshot.bin   last durable checkpoint (binary;
//	                                         snapshot.json under Format "json")
//	<data-dir>/campaigns/<id>/journal.log    events after the checkpoint
//
// # Durability contract
//
// Every write is appended to the campaign's journal before the HTTP
// response is sent (see internal/journal for the sync policy knob). A
// background checkpointer periodically — and whenever a journal exceeds
// a size threshold — writes an atomic snapshot (temp file + fsync +
// rename) and then compacts the journal down to the events the snapshot
// does not cover, so recovery cost is O(snapshot + suffix) instead of
// O(all events ever). Recovery rebuilds each campaign from snapshot +
// journal suffix — either snapshot file, either journal record format,
// in any mixture, regardless of Config.Format — tolerating a torn final
// journal record (crash mid-append) by truncating it away.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"time"

	"incentivetree/internal/audit"
	"incentivetree/internal/core"
	"incentivetree/internal/ingest"
	"incentivetree/internal/journal"
	"incentivetree/internal/obs"
	"incentivetree/internal/replica"
	"incentivetree/internal/server"
)

// DefaultID is the campaign that backs the legacy single-campaign
// /v1/* endpoints.
const DefaultID = "default"

// Defaults for Config fields left zero.
const (
	DefaultShards           = 16
	DefaultCheckpointBytes  = 1 << 20 // compact once a journal passes 1 MiB
	DefaultCheckpointEvery  = 30 * time.Second
	defaultMechanismFallbck = "tdrm"
)

// Config parameterizes a Store.
type Config struct {
	// DataDir is the root of the on-disk layout. Empty means ephemeral:
	// campaigns live in memory only, with no journals or checkpoints.
	DataDir string
	// Shards is the number of lock stripes for campaign lookup, rounded
	// up to a power of two. Zero means DefaultShards.
	Shards int
	// CheckpointInterval is the period of the background checkpointer;
	// every tick checkpoints campaigns with uncheckpointed events. Zero
	// means DefaultCheckpointEvery; negative disables periodic
	// checkpoints (size-triggered ones still run).
	CheckpointInterval time.Duration
	// CheckpointBytes checkpoints a campaign as soon as its journal
	// exceeds this many bytes. Zero means DefaultCheckpointBytes;
	// negative disables the size trigger.
	CheckpointBytes int64
	// Format selects the on-disk wire format for campaign journals and
	// checkpoint snapshots: "binary" (length-prefixed CRC-checked
	// records + flat-array snapshots, the default) or "json" (one JSON
	// object per journal line, JSON snapshots — the debug/export
	// format, and the only format older deployments wrote). Recovery
	// reads either format regardless of this setting; the knob only
	// governs what new bytes look like, so flipping it migrates a data
	// directory in place.
	Format string
	// Sync is the journal sync policy for campaign journals (see
	// journal.SyncPolicy). Empty means journal.SyncOS, the historical
	// behavior.
	Sync journal.SyncPolicy
	// SyncInterval is the flush period under journal.SyncInterval.
	SyncInterval time.Duration
	// BatchMax caps operations per group commit in each campaign's
	// ingest pipeline (see internal/ingest). Zero means
	// ingest.DefaultBatchMax; 1 commits per event in arrival order
	// (byte-identical journals to the unbatched path); negative
	// disables the pipeline entirely and writes apply inline.
	BatchMax int
	// BatchWait is how long a committer waits to fill a batch after its
	// first operation (0 = commit as soon as the queue stops yielding).
	BatchWait time.Duration
	// QueueDepth bounds each campaign's ingest queue (admission
	// control); a full queue sheds writes with 429. Zero means
	// ingest.DefaultQueueDepth.
	QueueDepth int
	// AuditInterval enables the online Sybil audit service: every
	// campaign gets a background auditor (see internal/audit) whose
	// incremental scans run on this period from the store's Run loop.
	// Zero or negative disables the service; followers never audit (the
	// primary's quarantine decisions replicate like any other write).
	AuditInterval time.Duration
	// AuditQuarantine lets auditors auto-quarantine flagged findings of
	// quarantine-grade severity (ε-chains, star bursts). Off, the
	// auditor only reports; quarantine stays an operator action.
	AuditQuarantine bool
	// EpochInterval enables periodic epoch settlement: every period the
	// store's Run loop settles each campaign's next payout epoch (see
	// internal/settle), freezing the served reward table into a journal
	// settle record. Zero or negative disables the ticker (settlement
	// stays an operator action via POST .../epochs/settle); followers
	// never settle — the primary's settle records replicate like any
	// other write.
	EpochInterval time.Duration
	// EpochBudget overrides the epoch pool accrual fraction (budget
	// reserved per unit of new contribution). Zero means each campaign
	// accrues at its mechanism's own Phi.
	EpochBudget float64
	// Metrics, when set, receives the store's gauges/counters and every
	// campaign's per-campaign domain gauges (labelled campaign="<id>").
	Metrics *obs.Registry
	// NewMechanism constructs the mechanism for a campaign; required.
	NewMechanism func(name string, p core.Params) (core.Mechanism, error)
	// DefaultMechanism and DefaultParams configure the auto-created
	// "default" campaign (empty mechanism name means "tdrm").
	DefaultMechanism string
	DefaultParams    core.Params
	// DefaultServer, when set, is adopted as the "default" campaign
	// instead of creating one. Its persistence (if any) is managed by
	// the caller, not the store — cmd/itreed uses this to keep the
	// legacy flat-file -journal mode byte-compatible.
	DefaultServer *server.Server
	// Follower marks the store as a replication follower: campaigns are
	// installed by a replica.Manager (Adopt/Drop) rather than created
	// locally, no default campaign is provisioned, and DataDir must be
	// empty — follower state is rebuilt from the primary on start, by
	// design (see internal/replica).
	Follower bool
}

// Meta is the persisted configuration of one campaign (meta.json).
type Meta struct {
	ID          string      `json:"id"`
	Mechanism   string      `json:"mechanism"`
	Params      core.Params `json:"params"`
	Incremental bool        `json:"incremental,omitempty"`
	CreatedUnix int64       `json:"created_unix,omitempty"`
}

// Campaign is one tenant: a server.Server deployment plus its
// durability state.
type Campaign struct {
	Meta Meta

	srv     *server.Server
	handler http.Handler        // cached srv.Handler()
	dir     string              // "" = ephemeral
	fw      *journal.FileWriter // nil = ephemeral or caller-managed
	auditor *audit.Auditor      // nil = audit service disabled

	// cpMu serializes checkpoints of this campaign.
	cpMu sync.Mutex
	// checkpointedSeq is the last sequence number covered by a durable
	// snapshot (guarded by cpMu for writes; reads are racy but only
	// used as a pending-work hint and re-checked under cpMu).
	checkpointedSeq uint64
	// kicked coalesces size-trigger checkpoint requests.
	kicked bool
	kickMu sync.Mutex
}

// Server exposes the campaign's underlying deployment (for seeding,
// tests, and direct programmatic writes).
func (c *Campaign) Server() *server.Server { return c.srv }

// Auditor exposes the campaign's background auditor; nil when the
// audit service is disabled.
func (c *Campaign) Auditor() *audit.Auditor { return c.auditor }

// attachAudit wires the audit service onto a freshly installed
// campaign: the auditor subscribes to committed batches through the
// server's commit observer and backs the audit HTTP endpoints. The
// auditor's first scan is always a full pass, so installation order
// relative to early writes does not matter.
func (st *Store) attachAudit(c *Campaign) {
	if st.cfg.AuditInterval <= 0 || st.cfg.Follower {
		return
	}
	var labels []string
	if st.cfg.Metrics != nil {
		labels = []string{"campaign", c.Meta.ID}
	}
	a := audit.New(audit.Config{
		AutoQuarantine: st.cfg.AuditQuarantine,
		Registry:       st.cfg.Metrics,
		Labels:         labels,
	}, c.srv)
	c.auditor = a
	c.srv.SetCommitObserver(a.NotifyCommit)
	c.srv.SetAuditor(a)
}

var idPattern = regexp.MustCompile(`^[a-z0-9][a-z0-9_-]{0,63}$`)

// ValidateID checks that a campaign id is usable as a directory name
// and URL path segment: lowercase alphanumerics, '-' and '_', at most
// 64 characters, not starting with punctuation.
func ValidateID(id string) error {
	if !idPattern.MatchString(id) {
		return fmt.Errorf("store: invalid campaign id %q (want %s)", id, idPattern)
	}
	return nil
}

// shard is one lock stripe of the campaign map.
type shard struct {
	mu sync.RWMutex
	m  map[string]*Campaign
}

// Store is a sharded collection of campaigns with a background
// checkpointer. Create/Get/Delete are safe for concurrent use.
type Store struct {
	cfg    Config
	shards []shard
	mask   uint32
	mode   journal.Mode // parsed cfg.Format

	// checkpoint instrumentation (nil-safe wrappers when cfg.Metrics is
	// unset).
	mCheckpoints *obs.Counter
	mCPErrors    *obs.Counter
	mCPSeconds   *obs.Histogram
	mReclaimed   *obs.Counter

	// pub serves the primary side of the replication protocol (see
	// internal/replica and the replica routes in Handler).
	pub *replica.Publisher

	kick    chan *Campaign
	closeMu sync.Mutex
	closed  bool
}

// Open builds a store from cfg and, when cfg.DataDir is set, recovers
// every campaign found on disk (snapshot + journal suffix, tolerating
// torn tails). The "default" campaign is created (or adopted from
// cfg.DefaultServer) if it does not exist yet. Call Run to start the
// background checkpointer and Close to flush and release journals.
func Open(cfg Config) (*Store, error) {
	if cfg.NewMechanism == nil && cfg.DefaultServer == nil {
		return nil, errors.New("store: Config.NewMechanism is required")
	}
	if cfg.Follower {
		if cfg.DataDir != "" {
			return nil, errors.New("store: a follower store cannot have a DataDir (state is replicated, not persisted)")
		}
		if cfg.DefaultServer != nil {
			return nil, errors.New("store: a follower store cannot adopt a DefaultServer")
		}
	}
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	n := 1
	for n < cfg.Shards {
		n <<= 1
	}
	if cfg.CheckpointInterval == 0 {
		cfg.CheckpointInterval = DefaultCheckpointEvery
	}
	if cfg.CheckpointBytes == 0 {
		cfg.CheckpointBytes = DefaultCheckpointBytes
	}
	if cfg.DefaultMechanism == "" {
		cfg.DefaultMechanism = defaultMechanismFallbck
	}
	if cfg.DefaultParams == (core.Params{}) {
		cfg.DefaultParams = core.DefaultParams()
	}
	mode := journal.ModeBinary
	if cfg.Format != "" {
		var err error
		if mode, err = journal.ParseMode(cfg.Format); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	st := &Store{
		mode:   mode,
		cfg:    cfg,
		shards: make([]shard, n),
		mask:   uint32(n - 1),
		kick:   make(chan *Campaign, 64),
	}
	for i := range st.shards {
		st.shards[i].m = make(map[string]*Campaign)
	}
	if reg := cfg.Metrics; reg != nil {
		reg.GaugeFunc("itree_campaigns",
			"Number of campaigns hosted by the store.", func() float64 {
				return float64(st.Len())
			})
		st.mCheckpoints = reg.Counter("itree_checkpoints_total",
			"Campaign checkpoints completed (snapshot written + journal compacted).")
		st.mCPErrors = reg.Counter("itree_checkpoint_errors_total",
			"Campaign checkpoints that failed.")
		st.mCPSeconds = reg.Histogram("itree_checkpoint_seconds",
			"Campaign checkpoint latency in seconds.", nil)
		st.mReclaimed = reg.Counter("itree_journal_reclaimed_bytes_total",
			"Journal bytes dropped by checkpoint compaction.")
	}
	if cfg.DataDir != "" {
		if err := os.MkdirAll(st.campaignsRoot(), 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		if err := st.recoverAll(); err != nil {
			return nil, err
		}
	}
	st.pub = replica.NewPublisher(cfg.Metrics)
	if cfg.Follower {
		// Campaigns arrive via Adopt once the replica.Manager syncs.
		return st, nil
	}
	if cfg.DefaultServer != nil {
		if _, ok := st.Get(DefaultID); ok {
			return nil, fmt.Errorf("store: %s campaign exists on disk and a DefaultServer was supplied", DefaultID)
		}
		c := &Campaign{
			Meta: Meta{ID: DefaultID, Mechanism: cfg.DefaultMechanism, Params: cfg.DefaultParams},
			srv:  cfg.DefaultServer,
		}
		c.handler = c.srv.Handler()
		st.put(c)
		st.attachAudit(c)
	} else if _, ok := st.Get(DefaultID); !ok {
		if _, err := st.Create(Meta{ID: DefaultID, Mechanism: cfg.DefaultMechanism, Params: cfg.DefaultParams}); err != nil {
			return nil, fmt.Errorf("store: default campaign: %w", err)
		}
	}
	return st, nil
}

func (st *Store) campaignsRoot() string {
	return filepath.Join(st.cfg.DataDir, "campaigns")
}

func (st *Store) shardFor(id string) *shard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return &st.shards[h.Sum32()&st.mask]
}

// Get returns the campaign with the given id.
func (st *Store) Get(id string) (*Campaign, bool) {
	sh := st.shardFor(id)
	sh.mu.RLock()
	c, ok := sh.m[id]
	sh.mu.RUnlock()
	return c, ok
}

// Len returns the number of campaigns.
func (st *Store) Len() int {
	n := 0
	for i := range st.shards {
		st.shards[i].mu.RLock()
		n += len(st.shards[i].m)
		st.shards[i].mu.RUnlock()
	}
	return n
}

// List returns all campaigns sorted by id.
func (st *Store) List() []*Campaign {
	var out []*Campaign
	for i := range st.shards {
		st.shards[i].mu.RLock()
		for _, c := range st.shards[i].m {
			out = append(out, c)
		}
		st.shards[i].mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Meta.ID < out[j].Meta.ID })
	return out
}

func (st *Store) put(c *Campaign) bool {
	sh := st.shardFor(c.Meta.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.m[c.Meta.ID]; dup {
		return false
	}
	sh.m[c.Meta.ID] = c
	return true
}

// Create provisions a new campaign: its directory, meta.json, journal,
// and server. The campaign is immediately servable.
func (st *Store) Create(meta Meta) (*Campaign, error) {
	if err := ValidateID(meta.ID); err != nil {
		return nil, err
	}
	if meta.Mechanism == "" {
		meta.Mechanism = st.cfg.DefaultMechanism
	}
	if meta.Params == (core.Params{}) {
		meta.Params = st.cfg.DefaultParams
	}
	if _, exists := st.Get(meta.ID); exists {
		return nil, fmt.Errorf("store: campaign %q already exists", meta.ID)
	}
	if meta.CreatedUnix == 0 {
		meta.CreatedUnix = time.Now().Unix()
	}
	mech, err := st.newMechanism(meta)
	if err != nil {
		return nil, err
	}
	c := &Campaign{Meta: meta}
	if st.cfg.DataDir != "" {
		c.dir = filepath.Join(st.campaignsRoot(), meta.ID)
		if err := os.MkdirAll(c.dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		if err := writeFileAtomic(filepath.Join(c.dir, "meta.json"), mustJSON(meta)); err != nil {
			return nil, err
		}
		fw, err := journal.OpenFile(filepath.Join(c.dir, journalFile), st.cfg.Sync, st.cfg.SyncInterval)
		if err != nil {
			return nil, err
		}
		c.fw = fw
	}
	c.srv = server.New(mech, st.serverOptions(c, 1)...)
	c.handler = c.srv.Handler()
	if !st.put(c) {
		// Lost a create race: release what we provisioned. The ingest
		// pipeline stops first so nothing appends past the journal close.
		c.srv.CloseIngest()
		if c.fw != nil {
			c.fw.Close()
		}
		if st.cfg.Metrics != nil {
			server.UnregisterMetrics(st.cfg.Metrics, "campaign", meta.ID)
		}
		return nil, fmt.Errorf("store: campaign %q already exists", meta.ID)
	}
	st.attachAudit(c)
	return c, nil
}

// newMechanism builds (and validates) the campaign's mechanism.
func (st *Store) newMechanism(meta Meta) (core.Mechanism, error) {
	if st.cfg.NewMechanism == nil {
		return nil, errors.New("store: no mechanism factory configured")
	}
	mech, err := st.cfg.NewMechanism(meta.Mechanism, meta.Params)
	if err != nil {
		return nil, fmt.Errorf("store: campaign %q: %w", meta.ID, err)
	}
	return mech, nil
}

// serverOptions assembles the per-campaign server options: journal
// writer (starting at nextSeq), labelled metrics, incremental engine.
func (st *Store) serverOptions(c *Campaign, nextSeq uint64) []server.Option {
	var opts []server.Option
	if c.fw != nil {
		opts = append(opts, server.WithJournal(journal.NewWriterMode(c.fw, nextSeq, st.mode)))
	}
	if st.cfg.Metrics != nil {
		opts = append(opts, server.WithMetricsLabels(st.cfg.Metrics, "campaign", c.Meta.ID))
	}
	if c.Meta.Incremental {
		opts = append(opts, server.WithIncremental())
	}
	if st.cfg.EpochBudget != 0 {
		opts = append(opts, server.WithEpochBudget(st.cfg.EpochBudget))
	}
	if st.cfg.BatchMax >= 0 {
		opts = append(opts, server.WithBatching(ingest.Options{
			BatchMax:   st.cfg.BatchMax,
			BatchWait:  st.cfg.BatchWait,
			QueueDepth: st.cfg.QueueDepth,
		}))
	}
	return opts
}

// Delete removes a campaign from the store, closes its journal, and
// deletes its directory. In-flight requests against the campaign may
// fail with a journal-append error; new lookups 404.
func (st *Store) Delete(id string) error {
	if id == DefaultID {
		return fmt.Errorf("store: the %q campaign cannot be deleted", DefaultID)
	}
	sh := st.shardFor(id)
	sh.mu.Lock()
	c, ok := sh.m[id]
	delete(sh.m, id)
	sh.mu.Unlock()
	if !ok {
		return fmt.Errorf("store: unknown campaign %q", id)
	}
	// Drain the ingest pipeline (new submits already fail: the campaign
	// is out of the map, and post-drain ones get ErrClosed), then
	// exclude a concurrent checkpoint before tearing down files.
	c.srv.CloseIngest()
	if c.auditor != nil {
		c.auditor.Close()
	}
	c.cpMu.Lock()
	defer c.cpMu.Unlock()
	if c.fw != nil {
		c.fw.Close()
	}
	if st.cfg.Metrics != nil {
		server.UnregisterMetrics(st.cfg.Metrics, "campaign", id)
	}
	if c.dir != "" {
		if err := os.RemoveAll(c.dir); err != nil {
			return fmt.Errorf("store: delete %q: %w", id, err)
		}
	}
	return nil
}

// Close checkpoints every campaign with pending events and closes all
// journals. The store must not serve requests afterwards.
func (st *Store) Close() error {
	st.closeMu.Lock()
	if st.closed {
		st.closeMu.Unlock()
		return nil
	}
	st.closed = true
	st.closeMu.Unlock()
	var first error
	for _, c := range st.List() {
		// Drain queued writes into the journal before the final
		// checkpoint so shutdown loses nothing that was admitted.
		c.srv.CloseIngest()
		if c.auditor != nil {
			c.auditor.Close()
		}
		if _, err := st.Checkpoint(c); err != nil && first == nil {
			first = err
		}
		if c.fw != nil {
			if err := c.fw.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// mustJSON marshals v, panicking on failure (the store's wire types
// cannot fail to encode).
func mustJSON(v any) []byte {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		panic(err)
	}
	return append(data, '\n')
}

// writeFileAtomic writes data to path via a same-directory temp file,
// fsync, and rename, so readers never observe a partial file.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: rename %s: %w", tmp, err)
	}
	return nil
}
