package settle

import (
	"math"
	"testing"

	"incentivetree/internal/journal"
)

func settledOfMap(m map[string]float64) func(string) float64 {
	return func(name string) float64 { return m[name] }
}

func TestComputeGrantsDeltasAscending(t *testing.T) {
	entries := []Entry{{"carol", 3}, {"alice", 2}, {"bob", 1}}
	in := Input{Epoch: 1, BudgetFrac: 0.5, CNow: 20, CPrev: 0}
	ev, stats, ok := Compute(in, entries, settledOfMap(nil))
	if !ok {
		t.Fatal("Compute found nothing to settle")
	}
	if ev.Kind != journal.KindSettle || ev.Epoch != 1 || ev.Pool != 10 || ev.CTotal != 20 {
		t.Fatalf("event = %+v", ev)
	}
	want := []journal.RewardShare{{Name: "alice", Amount: 2}, {Name: "bob", Amount: 1}, {Name: "carol", Amount: 3}}
	if len(ev.Rewards) != len(want) {
		t.Fatalf("shares = %v, want %v", ev.Rewards, want)
	}
	for i := range want {
		if ev.Rewards[i] != want[i] {
			t.Fatalf("share %d = %v, want %v", i, ev.Rewards[i], want[i])
		}
	}
	if stats.Settled != 6 || stats.Carry != 4 || stats.Capped != 0 || stats.Shares != 3 {
		t.Fatalf("stats = %+v", stats)
	}
	if err := ev.Validate(); err != nil {
		t.Fatalf("computed event invalid: %v", err)
	}
}

func TestComputeCapsAtPool(t *testing.T) {
	entries := []Entry{{"alice", 6}, {"bob", 7}}
	in := Input{Epoch: 1, BudgetFrac: 0.1, CNow: 100, CPrev: 0}
	ev, stats, ok := Compute(in, entries, settledOfMap(nil))
	if !ok {
		t.Fatal("Compute found nothing to settle")
	}
	// Pool is 10: alice takes her full 6, bob is capped to the 4 left,
	// and the pool drains to exactly zero.
	if len(ev.Rewards) != 2 || ev.Rewards[0].Amount != 6 || ev.Rewards[1].Amount != 4 {
		t.Fatalf("shares = %v", ev.Rewards)
	}
	if stats.Capped != 1 || stats.Carry != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	// The record must replay cleanly: the budget invariant holds by
	// construction.
	l := journal.NewLedger()
	if err := l.ApplySettle(ev); err != nil {
		t.Fatalf("computed settle fails replay: %v", err)
	}
	if l.CarryOut(1) != 0 {
		t.Fatalf("replayed carry = %v, want 0", l.CarryOut(1))
	}
}

func TestComputeDeltasAgainstSettled(t *testing.T) {
	settled := map[string]float64{"alice": 2, "bob": 5}
	entries := []Entry{{"alice", 3.5}, {"bob", 5}, {"carol", 1}}
	in := Input{Epoch: 2, BudgetFrac: 0.5, CNow: 30, CPrev: 20, Carry: 0.5}
	ev, stats, ok := Compute(in, entries, settledOfMap(settled))
	if !ok {
		t.Fatal("Compute found nothing to settle")
	}
	// Pool = 0.5·10 + 0.5 = 5.5. Alice's delta is 1.5, bob's 0 (fully
	// settled), carol's 1.
	if stats.Pool != 5.5 {
		t.Fatalf("pool = %v, want 5.5", stats.Pool)
	}
	if len(ev.Rewards) != 2 || ev.Rewards[0] != (journal.RewardShare{Name: "alice", Amount: 1.5}) ||
		ev.Rewards[1] != (journal.RewardShare{Name: "carol", Amount: 1}) {
		t.Fatalf("shares = %v", ev.Rewards)
	}
	if stats.Carry != 3 {
		t.Fatalf("carry = %v, want 3", stats.Carry)
	}
}

func TestComputeNothingToSettle(t *testing.T) {
	// No contribution growth, no deltas: skip the epoch entirely.
	settled := map[string]float64{"alice": 2}
	if _, _, ok := Compute(Input{Epoch: 2, BudgetFrac: 0.5, CNow: 4, CPrev: 4, Carry: 1},
		[]Entry{{"alice", 2}}, settledOfMap(settled)); ok {
		t.Fatal("Compute settled an idle epoch")
	}
	// Contribution growth alone settles (the pool must advance even if
	// every grantable delta is zero — e.g. the growth happened inside a
	// quarantined subtree).
	ev, stats, ok := Compute(Input{Epoch: 2, BudgetFrac: 0.5, CNow: 6, CPrev: 4, Carry: 1},
		[]Entry{{"alice", 2}}, settledOfMap(settled))
	if !ok {
		t.Fatal("Compute skipped an epoch with accrual")
	}
	if len(ev.Rewards) != 0 || ev.Pool != 2 || stats.Carry != 2 {
		t.Fatalf("ev = %+v stats = %+v", ev, stats)
	}
	// A reward decrease (quarantine imposed after settlement) grants
	// nothing and never claws back.
	if _, _, ok := Compute(Input{Epoch: 2, BudgetFrac: 0.5, CNow: 4, CPrev: 4},
		[]Entry{{"alice", 1}}, settledOfMap(settled)); ok {
		t.Fatal("Compute settled a clawback")
	}
}

func TestComputeSequentialDrainMatchesReplay(t *testing.T) {
	// Adversarial floats: many irrational-ish deltas against a pool that
	// cannot hold them all. Whatever Compute emits must replay with the
	// identical sequential subtraction — no ulp disagreement.
	entries := make([]Entry, 0, 101)
	for i := 0; i < 101; i++ {
		entries = append(entries, Entry{Name: string(rune('a'+i%26)) + string(rune('a'+i/26)), Reward: math.Sqrt(float64(i + 2))})
	}
	in := Input{Epoch: 1, BudgetFrac: 0.1, CNow: math.Pi * 100, CPrev: 0}
	ev, stats, ok := Compute(in, entries, settledOfMap(nil))
	if !ok {
		t.Fatal("Compute found nothing to settle")
	}
	l := journal.NewLedger()
	if err := l.ApplySettle(ev); err != nil {
		t.Fatalf("computed settle fails replay: %v", err)
	}
	if got := l.CarryOut(1); got != stats.Carry {
		t.Fatalf("replay carry %v != compute carry %v", got, stats.Carry)
	}
	if got := l.SettledAmount(1); got != stats.Settled {
		t.Fatalf("replay settled %v != compute settled %v", got, stats.Settled)
	}
}
