// Package settle implements epoch settlement: the conversion of the
// continuously-recomputed reward table into immutable per-epoch payout
// history backed by a budget pool.
//
// The paper's budget constraint R(T) ≤ Φ·C(T) is a property of the
// live reward table; a deployed campaign pays out in epochs. Each
// epoch accrues a pool of Φ·ΔC — the mechanism share of the
// contributions collected since the previous settle — plus whatever
// the previous epoch left unallocated (the carry-over). Settling
// freezes, per participant, the amount their served reward has grown
// beyond everything already settled to them, capped so the epoch's
// grants never exceed its pool. The result is a single journal record
// (journal.KindSettle); replaying it re-checks the cap, which turns
// the budget constraint into a ledger invariant every recovery path
// enforces.
//
// Determinism: entries are processed in ascending name order, and the
// pool is drawn down by sequential subtraction in that same order.
// Replay (journal.Ledger.ApplySettle) performs the identical
// subtraction over the record's share order, so the two computations
// agree bit for bit — there is no independent re-summation that could
// disagree in the last ulp.
package settle

import (
	"math"
	"sort"

	"incentivetree/internal/journal"
)

// Entry is one participant's served reward at settlement time. The
// caller supplies the table as the API serves it — in particular with
// quarantined subtrees already masked to zero, which is how a
// quarantine in force at settle time excludes its subtree from the
// frozen table.
type Entry struct {
	Name   string
	Reward float64
}

// Input carries the accrual basis for one settlement.
type Input struct {
	// Epoch is the epoch number the settle record will carry
	// (Ledger.NextEpoch()).
	Epoch uint64
	// BudgetFrac is the pool accrual fraction: the mechanism's Φ, or
	// the -epoch-budget override.
	BudgetFrac float64
	// CNow is the campaign contribution total C(T) now; CPrev is the
	// total the previous settle ran up to (0 for the first epoch).
	CNow, CPrev float64
	// Carry is what the previous epoch's pool left unallocated
	// (Ledger.AccrualBasis()).
	Carry float64
}

// Stats summarizes a computed settlement.
type Stats struct {
	// Pool is the epoch's accrued budget: BudgetFrac·(CNow−CPrev) + Carry.
	Pool float64
	// Settled is the sequential sum of the granted shares.
	Settled float64
	// Carry is what the pool leaves unallocated for the next epoch.
	Carry float64
	// Shares counts granted shares; Capped counts participants whose
	// grant was reduced or dropped because the pool ran out.
	Shares, Capped int
}

// Compute builds the settle record for one epoch. settledOf reports
// the cumulative amount already settled to a name in prior epochs
// (Ledger.SettledOf). It returns ok=false when there is nothing to
// settle — no contribution growth and no grantable delta — in which
// case no record should be journaled: epochs without activity do not
// exist, they are skipped, and the would-be pool stays in the accrual
// basis.
func Compute(in Input, entries []Entry, settledOf func(string) float64) (journal.Event, Stats, bool) {
	sorted := make([]Entry, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })

	accrued := in.BudgetFrac * (in.CNow - in.CPrev)
	if !(accrued > 0) { // negative or NaN: accrue nothing
		accrued = 0
	}
	pool := accrued + in.Carry
	remaining := pool
	stats := Stats{Pool: pool}
	var shares []journal.RewardShare
	for _, e := range sorted {
		delta := e.Reward - settledOf(e.Name)
		if !(delta > 0) || math.IsInf(delta, 0) {
			continue
		}
		grant := delta
		if grant > remaining {
			grant = remaining
			stats.Capped++
		}
		if !(grant > 0) {
			continue
		}
		// Sequential draw-down: remaining -= grant is the exact loop
		// replay re-runs over the record, so a grant that empties the
		// pool leaves remaining at exactly zero on both sides.
		remaining -= grant
		stats.Settled += grant
		shares = append(shares, journal.RewardShare{Name: e.Name, Amount: grant})
	}
	stats.Carry = remaining
	stats.Shares = len(shares)
	if len(shares) == 0 && in.CNow == in.CPrev {
		return journal.Event{}, stats, false
	}
	ev := journal.Event{Kind: journal.KindSettle, Epoch: in.Epoch, Pool: pool, CTotal: in.CNow, Rewards: shares}
	return ev, stats, true
}
