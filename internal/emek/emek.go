// Package emek implements a reconstruction of the split-proof
// multi-level-marketing mechanism of Emek, Karidi, Tennenholtz and Zohar
// (EC 2011), which the paper reviews in Sect. 4.3: rewards are computed
// over a DEEPEST BINARY SUBTREE of the referral tree rather than over the
// tree itself, which buys Sybil resilience in the unit-price model but —
// as the paper points out — breaks the basic Continuing Solicitation
// Incentive: "depending on the number of direct children it has, a node
// may no longer have an incentive to directly solicit additional
// children."
//
// Reconstruction (documented in DESIGN.md): every node keeps at most two
// of its children — those rooting the tallest binary subtrees, ties
// broken by join order — and the geometric bubble-up runs only along the
// kept edges. Contributions of pruned branches still earn their own
// subtree's rewards but never reach the pruning ancestor, which is
// exactly the CSI failure mode the paper describes. Only this property
// profile is load-bearing for the paper's argument.
package emek

import (
	"fmt"
	"sort"
	"sync"

	"incentivetree/internal/core"
	"incentivetree/internal/tree"
)

// Mechanism is the reconstructed binary-subtree mechanism. Construct with
// New.
type Mechanism struct {
	params core.Params
	a, b   float64
}

// New validates the same parameter regime as the Geometric mechanism
// (0 < a < 1, phi <= b <= (1-a)*Phi): the binary restriction only prunes
// bubble-up paths, so the geometric budget argument carries over.
func New(p core.Params, a, b float64) (*Mechanism, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !(a > 0 && a < 1) {
		return nil, fmt.Errorf("%w: emek a = %v, need 0 < a < 1", core.ErrBadParams, a)
	}
	if !(b > 0 && b >= p.FairShare && b <= (1-a)*p.Phi) {
		return nil, fmt.Errorf("%w: emek b = %v, need phi <= b <= (1-a)*Phi", core.ErrBadParams, b)
	}
	return &Mechanism{params: p, a: a, b: b}, nil
}

// Default returns the instance used by the experiments (same decay as
// the default Geometric mechanism, for comparability).
func Default(p core.Params) (*Mechanism, error) {
	const a = 1.0 / 3.0
	return New(p, a, (1-a)*p.Phi)
}

// Name implements core.Mechanism.
func (m *Mechanism) Name() string {
	return fmt.Sprintf("Emek-Binary(a=%.3g,b=%.3g)", m.a, m.b)
}

// Params implements core.Mechanism.
func (m *Mechanism) Params() core.Params { return m.params }

// BinaryChildren returns, for every node, the at-most-two children kept
// in the deepest binary subtree: the children rooting the tallest binary
// subtrees (ties broken by join order). Exported for tests and for the
// Sect. 4.3 experiment.
func BinaryChildren(t *tree.Tree) [][]tree.NodeID {
	height := make([]int, t.Len())
	kept := make([][]tree.NodeID, t.Len())
	// Reverse id order is bottom-up (ids are topological).
	for id := t.Len() - 1; id >= 0; id-- {
		u := tree.NodeID(id)
		kids := append([]tree.NodeID(nil), t.Children(u)...)
		sort.SliceStable(kids, func(i, j int) bool {
			if height[kids[i]] != height[kids[j]] {
				return height[kids[i]] > height[kids[j]]
			}
			return kids[i] < kids[j]
		})
		if len(kids) > 2 {
			kids = kids[:2]
		}
		kept[u] = kids
		h := 0
		for _, k := range kids {
			if height[k]+1 > h {
				h = height[k] + 1
			}
		}
		height[u] = h
	}
	return kept
}

// Rewards implements core.Mechanism: geometric bubble-up restricted to
// the deepest binary subtree's edges.
func (m *Mechanism) Rewards(t *tree.Tree) (core.Rewards, error) {
	return m.RewardsInto(t, nil)
}

// evalScratch holds the per-node binary-subtree heights between
// evaluations; pooled because evaluations are short and concurrent.
type evalScratch struct {
	height []int
}

var scratchPool = sync.Pool{
	New: func() any { return new(evalScratch) },
}

// RewardsInto implements core.IntoMechanism. A single bottom-up pass
// selects each node's two tallest children by linear scan — the same pair,
// folded in the same (height desc, join order) sequence, as
// BinaryChildren's sorted slices — and accumulates the weighted sums
// directly in buf, so steady-state evaluation allocates nothing.
func (m *Mechanism) RewardsInto(t *tree.Tree, buf core.Rewards) (core.Rewards, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	n := t.Len()
	sc := scratchPool.Get().(*evalScratch)
	defer scratchPool.Put(sc)
	if cap(sc.height) < n {
		sc.height = make([]int, n)
	}
	height := sc.height[:n]
	s := core.ResizeRewards(buf, n)
	// Ids are topological, so children's sums and heights are final when
	// their parent is reached. The sibling chain ascends in id (= join)
	// order, so strict comparisons reproduce the sort's tie-break exactly.
	for id := n - 1; id >= 0; id-- {
		u := tree.NodeID(id)
		b1, b2 := tree.None, tree.None
		for k := t.FirstChild(u); k != tree.None; k = t.NextSibling(k) {
			if b1 == tree.None || height[k] > height[b1] {
				b1, b2 = k, b1
			} else if b2 == tree.None || height[k] > height[b2] {
				b2 = k
			}
		}
		if id >= 1 {
			s[u] += t.Contribution(u)
		}
		if b1 != tree.None {
			s[u] += m.a * s[b1]
			height[u] = height[b1] + 1
		} else {
			height[u] = 0
		}
		if b2 != tree.None {
			s[u] += m.a * s[b2]
		}
	}
	for id := 1; id < n; id++ {
		s[id] = m.b * s[id]
	}
	s[tree.Root] = 0
	return s, nil
}
