package emek

import (
	"math"
	"testing"

	"incentivetree/internal/core"
	"incentivetree/internal/geometric"
	"incentivetree/internal/numeric"
	"incentivetree/internal/tree"
	"incentivetree/internal/treegen"
)

func defaultMech(t *testing.T) *Mechanism {
	t.Helper()
	m, err := Default(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	p := core.Params{Phi: 0.5, FairShare: 0.05}
	if _, err := New(p, 0.5, 0.2); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	for _, tc := range []struct{ a, b float64 }{
		{0, 0.2}, {1, 0.2}, {0.5, 0}, {0.5, 0.01}, {0.5, 0.3},
	} {
		if _, err := New(p, tc.a, tc.b); err == nil {
			t.Errorf("New(a=%v, b=%v) should fail", tc.a, tc.b)
		}
	}
	if _, err := New(core.Params{Phi: 0}, 0.5, 0.2); err == nil {
		t.Error("bad shared params should fail")
	}
}

func TestBinaryChildrenKeepsDeepest(t *testing.T) {
	// u has three children: a bare leaf (id 2), a chain of 2 (id 3) and a
	// chain of 3 (id 5). The leaf must be pruned.
	tr := tree.FromSpecs(tree.Spec{C: 1, Kids: []tree.Spec{
		{C: 1},                            // id 2: leaf
		{C: 1, Kids: []tree.Spec{{C: 1}}}, // id 3: height 1
		{C: 1, Kids: []tree.Spec{{C: 1, Kids: []tree.Spec{{C: 1}}}}}, // id 5: height 2
	}})
	kept := BinaryChildren(tr)
	got := kept[1]
	if len(got) != 2 {
		t.Fatalf("kept %v, want 2 children", got)
	}
	if got[0] != 5 || got[1] != 3 {
		t.Fatalf("kept %v, want [5 3] (deepest first)", got)
	}
}

func TestBinaryChildrenTieBreaksByJoinOrder(t *testing.T) {
	tr := tree.FromSpecs(tree.Spec{C: 1, Kids: []tree.Spec{{C: 1}, {C: 2}, {C: 3}}})
	kept := BinaryChildren(tr)
	if len(kept[1]) != 2 || kept[1][0] != 2 || kept[1][1] != 3 {
		t.Fatalf("kept %v, want the two earliest joiners [2 3]", kept[1])
	}
}

func TestRewardsMatchGeometricOnBinaryTrees(t *testing.T) {
	// On trees with fanout <= 2, pruning is a no-op and the mechanism
	// must coincide with the (a,b)-Geometric mechanism.
	p := core.DefaultParams()
	em, err := Default(p)
	if err != nil {
		t.Fatal(err)
	}
	geo, err := geometric.Default(p)
	if err != nil {
		t.Fatal(err)
	}
	tr := treegen.KAry(2, 4, 1.5)
	re, err := em.Rewards(tr)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := geo.Rewards(tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range tr.Nodes() {
		if !numeric.AlmostEqual(re.Of(u), rg.Of(u), numeric.Eps) {
			t.Fatalf("R(%d): emek %v != geometric %v", u, re.Of(u), rg.Of(u))
		}
	}
}

func TestPrunedBranchDoesNotPayAncestor(t *testing.T) {
	m := defaultMech(t)
	// u with two tall children; a third, shallow child contributes a lot
	// but must not change R(u).
	base := tree.FromSpecs(tree.Spec{C: 1, Kids: []tree.Spec{
		{C: 1, Kids: []tree.Spec{{C: 1}}},
		{C: 1, Kids: []tree.Spec{{C: 1}}},
	}})
	before, err := m.Rewards(base)
	if err != nil {
		t.Fatal(err)
	}
	grown := base.Clone()
	grown.MustAdd(1, 100) // shallow third child, pruned
	after, err := m.Rewards(grown)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(before.Of(1), after.Of(1), numeric.Eps) {
		t.Fatalf("pruned branch changed R(u): %v -> %v", before.Of(1), after.Of(1))
	}
}

// TestCSIFailure is the Sect. 4.3 claim: a node with two established
// children gains nothing from soliciting a third (CSI violated), whereas
// the plain Geometric mechanism always rewards new solicitation.
func TestCSIFailure(t *testing.T) {
	m := defaultMech(t)
	base := tree.FromSpecs(tree.Spec{C: 1, Kids: []tree.Spec{
		{C: 1, Kids: []tree.Spec{{C: 1}}},
		{C: 1, Kids: []tree.Spec{{C: 1}}},
	}})
	before, err := m.Rewards(base)
	if err != nil {
		t.Fatal(err)
	}
	grown := base.Clone()
	grown.MustAdd(1, 1) // newly solicited third child
	after, err := m.Rewards(grown)
	if err != nil {
		t.Fatal(err)
	}
	if numeric.StrictlyGreater(after.Of(1), before.Of(1), numeric.Eps) {
		t.Fatal("third child increased the solicitor's reward; CSI failure not reproduced")
	}
}

func TestBudgetOnCorpus(t *testing.T) {
	m := defaultMech(t)
	for i, tr := range treegen.Corpus(61, 20, 60) {
		r, err := m.Rewards(tr)
		if err != nil {
			t.Fatalf("tree %d: %v", i, err)
		}
		if err := core.Audit(m, tr, r); err != nil {
			t.Fatalf("tree %d: %v", i, err)
		}
	}
}

func TestRewardNeverExceedsGeometric(t *testing.T) {
	// Pruning only removes bubble-up paths, so Emek rewards are
	// pointwise at most the Geometric rewards with equal parameters.
	p := core.DefaultParams()
	em, err := Default(p)
	if err != nil {
		t.Fatal(err)
	}
	geo, err := geometric.Default(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range treegen.Corpus(62, 10, 50) {
		re, err := em.Rewards(tr)
		if err != nil {
			t.Fatal(err)
		}
		rg, err := geo.Rewards(tr)
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range tr.Nodes() {
			if re.Of(u) > rg.Of(u)+1e-9 {
				t.Fatalf("R(%d): emek %v > geometric %v", u, re.Of(u), rg.Of(u))
			}
		}
	}
}

func TestRewardsHandComputed(t *testing.T) {
	// a = 0.5, b = 0.25. u(2) with kids v(4) [chain of one] and w(8)
	// [leaf], plus x(16) [leaf, pruned since v and w tie at height 0 and
	// join earlier].
	p := core.Params{Phi: 0.5, FairShare: 0}
	m, err := New(p, 0.5, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	tr := tree.FromSpecs(tree.Spec{C: 2, Kids: []tree.Spec{{C: 4}, {C: 8}, {C: 16}}})
	r, err := m.Rewards(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Kept children of u: ids 2 and 3 (join order). S(u) = 2 + 0.5*(4+8) = 8.
	if got, want := r.Of(1), 0.25*8.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("R(u) = %v, want %v", got, want)
	}
	if got, want := r.Of(4), 0.25*16.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("pruned child keeps its own reward: R = %v, want %v", got, want)
	}
}

func TestName(t *testing.T) {
	if defaultMech(t).Name() == "" {
		t.Fatal("empty name")
	}
}

func TestRewardsRejectsInvalidTree(t *testing.T) {
	var empty tree.Tree
	if _, err := defaultMech(t).Rewards(&empty); err == nil {
		t.Fatal("rootless tree should be rejected")
	}
}
