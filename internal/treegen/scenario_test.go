package treegen

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

var testMix = ScenarioConfig{
	Honest:        48,
	EpsilonChains: 2,
	Chains:        2,
	Stars:         2,
}

// TestMixDeterministic is the seed-reproducibility contract: identical
// seeds generate identical op streams, byte for byte.
func TestMixDeterministic(t *testing.T) {
	a := Mix(rand.New(rand.NewSource(7)), testMix)
	b := Mix(rand.New(rand.NewSource(7)), testMix)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different scenarios")
	}
	c := Mix(rand.New(rand.NewSource(8)), testMix)
	if reflect.DeepEqual(a.Ops(), c.Ops()) {
		t.Fatal("different seeds produced identical op streams")
	}
}

// TestMixStreamIsApplicable replays the flattened stream against a map,
// checking every op references existing names in schedule order.
func TestMixStreamIsApplicable(t *testing.T) {
	sc := Mix(rand.New(rand.NewSource(7)), testMix)
	joined := make(map[string]bool)
	for i, op := range sc.Ops() {
		switch op.Kind {
		case OpJoin:
			if joined[op.Name] {
				t.Fatalf("op %d: duplicate join of %q", i, op.Name)
			}
			if op.Sponsor != "" && !joined[op.Sponsor] {
				t.Fatalf("op %d: %q joins under %q before the sponsor joined", i, op.Name, op.Sponsor)
			}
			joined[op.Name] = true
		case OpContribute:
			if !joined[op.Name] {
				t.Fatalf("op %d: contribution by unjoined %q", i, op.Name)
			}
			if op.Amount <= 0 {
				t.Fatalf("op %d: non-positive amount %v", i, op.Amount)
			}
		}
	}
}

func TestMixGroundTruth(t *testing.T) {
	sc := Mix(rand.New(rand.NewSource(7)), testMix)
	if got, want := len(sc.Injected), testMix.EpsilonChains+testMix.Chains+testMix.Stars; got != want {
		t.Fatalf("injections = %d, want %d", got, want)
	}
	syb := sc.SybilNames()
	for name := range syb {
		if !strings.HasPrefix(name, "syb-") {
			t.Fatalf("sybil name %q lacks the syb- prefix", name)
		}
	}
	for _, h := range sc.Honest {
		if syb[h] {
			t.Fatalf("honest name %q is also a sybil member", h)
		}
	}
	for _, inj := range sc.Injected {
		if inj.Shape == "star" {
			// Star roots are honest sponsors; members carry the truth.
			for _, m := range inj.Members {
				if !syb[m] {
					t.Fatalf("star member %q not in sybil set", m)
				}
			}
			continue
		}
		if !syb[inj.Root] {
			t.Fatalf("%s root %q not in sybil set", inj.Shape, inj.Root)
		}
	}
}

func TestMixHonestOnly(t *testing.T) {
	sc := Mix(rand.New(rand.NewSource(3)), ScenarioConfig{Honest: 32})
	if len(sc.Injected) != 0 {
		t.Fatalf("honest-only mix has %d injections", len(sc.Injected))
	}
	for _, op := range sc.Ops() {
		if strings.HasPrefix(op.Name, "syb-") {
			t.Fatalf("honest-only mix emitted sybil op %+v", op)
		}
	}
}
