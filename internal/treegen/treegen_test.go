package treegen

import (
	"math"
	"math/rand"
	"testing"

	"incentivetree/internal/tree"
)

func TestRandomProducesValidTrees(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		tr := Random(r, Config{N: 1 + r.Intn(100)})
		if err := tr.Validate(); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
}

func TestRandomSize(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	tr := Random(r, Config{N: 42})
	if got := tr.NumParticipants(); got != 42 {
		t.Fatalf("participants = %d, want 42", got)
	}
}

func TestRandomDeterministicFromSeed(t *testing.T) {
	a := Random(rand.New(rand.NewSource(5)), Config{N: 30})
	b := Random(rand.New(rand.NewSource(5)), Config{N: 30})
	if !a.Equal(b) {
		t.Fatal("same seed should produce identical trees")
	}
	c := Random(rand.New(rand.NewSource(6)), Config{N: 30})
	if a.Equal(c) {
		t.Fatal("different seeds should (overwhelmingly) differ")
	}
}

func TestDistributions(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	tests := []struct {
		name string
		dist ContributionDist
		lo   float64
		hi   float64 // inclusive sanity cap; generous for heavy tails
	}{
		{"constant", Constant(2.5), 2.5, 2.5},
		{"uniform", Uniform(1, 2), 1, 2},
		{"exponential", Exponential(1), 0, math.Inf(1)},
		{"pareto", Pareto(1, 2), 1, math.Inf(1)},
		{"lognormal", LogNormal(0, 0.5), 0, math.Inf(1)},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			for i := 0; i < 1000; i++ {
				v := tc.dist(r)
				if v < tc.lo || v > tc.hi {
					t.Fatalf("draw %v outside [%v, %v]", v, tc.lo, tc.hi)
				}
				if math.IsNaN(v) {
					t.Fatal("NaN draw")
				}
			}
		})
	}
}

func TestParetoMinimum(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	d := Pareto(3, 1.2)
	for i := 0; i < 1000; i++ {
		if v := d(r); v < 3 {
			t.Fatalf("Pareto draw %v below scale 3", v)
		}
	}
}

func TestPreferentialAttachSkew(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	pref := Random(r, Config{N: 400, Attach: PreferentialAttach})
	uni := Random(r, Config{N: 400, Attach: UniformAttach})
	if pref.ComputeStats().MaxFanout <= uni.ComputeStats().MaxFanout {
		t.Logf("pref max fanout %d, uniform %d (soft expectation)",
			pref.ComputeStats().MaxFanout, uni.ComputeStats().MaxFanout)
	}
	if err := pref.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeepAttachGoesDeep(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	deep := Random(r, Config{N: 300, Attach: DeepAttach})
	shallow := Random(r, Config{N: 300, Attach: UniformAttach})
	if deep.ComputeStats().MaxDepth <= shallow.ComputeStats().MaxDepth {
		t.Errorf("DeepAttach depth %d not deeper than uniform %d",
			deep.ComputeStats().MaxDepth, shallow.ComputeStats().MaxDepth)
	}
}

func TestGaltonWatson(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	tr := GaltonWatson(r, 3, 4, 0.6, 200, Constant(1))
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NumParticipants() > 200 {
		t.Fatalf("exceeded node cap: %d", tr.NumParticipants())
	}
	if tr.NumParticipants() < 3 {
		t.Fatalf("seeds missing: %d", tr.NumParticipants())
	}
	if got := len(tr.Children(tree.Root)); got != 3 {
		t.Fatalf("seed count = %d, want 3", got)
	}
}

func TestGaltonWatsonSubcriticalDiesOut(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	tr := GaltonWatson(r, 1, 2, 0.1, 100000, Constant(1))
	if tr.NumParticipants() >= 100000 {
		t.Fatal("subcritical process should die out well before the cap")
	}
}

func TestKAry(t *testing.T) {
	tr := KAry(2, 3, 1)
	if got := tr.NumParticipants(); got != 7 {
		t.Fatalf("binary depth-3 tree has %d nodes, want 7", got)
	}
	if got := tr.ComputeStats().MaxDepth; got != 3 {
		t.Fatalf("MaxDepth = %d, want 3", got)
	}
	if got := KAry(3, 0, 1).NumParticipants(); got != 0 {
		t.Fatalf("depth-0 tree has %d nodes", got)
	}
}

func TestChainTree(t *testing.T) {
	tr := ChainTree(5, 2)
	if got := tr.NumParticipants(); got != 5 {
		t.Fatalf("participants = %d, want 5", got)
	}
	if got := tr.ComputeStats().MaxDepth; got != 5 {
		t.Fatalf("MaxDepth = %d, want 5", got)
	}
	if got := tr.Total(); got != 10 {
		t.Fatalf("Total = %v, want 10", got)
	}
}

func TestStarTree(t *testing.T) {
	tr := StarTree(3, 4, 0.5)
	if got := tr.NumParticipants(); got != 5 {
		t.Fatalf("participants = %d, want 5", got)
	}
	if got := len(tr.Children(1)); got != 4 {
		t.Fatalf("hub fanout = %d, want 4", got)
	}
	if got := tr.Total(); got != 5 {
		t.Fatalf("Total = %v, want 5", got)
	}
}

func TestCorpusDeterministicAndValid(t *testing.T) {
	a := Corpus(42, 20, 50)
	b := Corpus(42, 20, 50)
	if len(a) != 20 {
		t.Fatalf("corpus size = %d", len(a))
	}
	for i := range a {
		if err := a[i].Validate(); err != nil {
			t.Fatalf("tree %d invalid: %v", i, err)
		}
		if !a[i].Equal(b[i]) {
			t.Fatalf("corpus not deterministic at %d", i)
		}
	}
}

func TestCorpusVariety(t *testing.T) {
	corpus := Corpus(1, 30, 60)
	sizes := map[int]bool{}
	for _, tr := range corpus {
		sizes[tr.NumParticipants()] = true
	}
	if len(sizes) < 5 {
		t.Fatalf("corpus sizes not varied: %v", sizes)
	}
}
