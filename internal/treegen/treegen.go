// Package treegen generates random referral trees and contribution
// distributions for property checking, experiments and benchmarks.
//
// All randomness flows through an injected *rand.Rand so that every
// experiment in the repository is reproducible from its seed.
package treegen

import (
	"fmt"
	"math"
	"math/rand"

	"incentivetree/internal/tree"
)

// ContributionDist draws a participant contribution.
type ContributionDist func(r *rand.Rand) float64

// Constant returns a distribution that always yields c.
func Constant(c float64) ContributionDist {
	return func(*rand.Rand) float64 { return c }
}

// Uniform returns a distribution over [lo, hi).
func Uniform(lo, hi float64) ContributionDist {
	return func(r *rand.Rand) float64 { return lo + r.Float64()*(hi-lo) }
}

// Exponential returns an exponential distribution with the given mean.
func Exponential(mean float64) ContributionDist {
	return func(r *rand.Rand) float64 { return r.ExpFloat64() * mean }
}

// Pareto returns a Pareto distribution with scale xm and shape alpha,
// modelling the heavy-tailed contributions common in crowdsourcing
// deployments (a few participants do most of the work).
func Pareto(xm, alpha float64) ContributionDist {
	return func(r *rand.Rand) float64 {
		u := 1 - r.Float64() // (0, 1]
		return xm / math.Pow(u, 1/alpha)
	}
}

// LogNormal returns a log-normal distribution with the given parameters of
// the underlying normal.
func LogNormal(mu, sigma float64) ContributionDist {
	return func(r *rand.Rand) float64 { return math.Exp(mu + sigma*r.NormFloat64()) }
}

// Config controls random tree generation.
type Config struct {
	// N is the number of participants to generate.
	N int
	// Contrib draws each participant's contribution. Defaults to
	// Uniform(0.1, 10) when nil.
	Contrib ContributionDist
	// Attach selects the parent for the next joiner given the current
	// tree. Defaults to UniformAttach when nil.
	Attach AttachPolicy
}

// AttachPolicy selects the parent of the next participant to join.
type AttachPolicy func(r *rand.Rand, t *tree.Tree) tree.NodeID

// UniformAttach joins under a uniformly random existing node (including
// the imaginary root, i.e. independent joins are possible).
func UniformAttach(r *rand.Rand, t *tree.Tree) tree.NodeID {
	return tree.NodeID(r.Intn(t.Len()))
}

// PreferentialAttach joins under an existing participant with probability
// proportional to 1 + its current number of children, yielding the
// heavy-tailed fanouts seen in viral recruitment campaigns.
func PreferentialAttach(r *rand.Rand, t *tree.Tree) tree.NodeID {
	total := 0
	for id := 0; id < t.Len(); id++ {
		total += 1 + t.NumChildren(tree.NodeID(id))
	}
	pick := r.Intn(total)
	for id := 0; id < t.Len(); id++ {
		pick -= 1 + t.NumChildren(tree.NodeID(id))
		if pick < 0 {
			return tree.NodeID(id)
		}
	}
	return tree.Root
}

// DeepAttach biases joins toward recently joined nodes, producing deep,
// chain-like trees (the regime where geometric bubble-up decays matter).
func DeepAttach(r *rand.Rand, t *tree.Tree) tree.NodeID {
	n := t.Len()
	// Quadratic bias toward large ids (recent joiners).
	i := int(math.Sqrt(r.Float64()) * float64(n))
	if i >= n {
		i = n - 1
	}
	return tree.NodeID(i)
}

// Random generates a random referral tree from cfg using r.
func Random(r *rand.Rand, cfg Config) *tree.Tree {
	contrib := cfg.Contrib
	if contrib == nil {
		contrib = Uniform(0.1, 10)
	}
	attach := cfg.Attach
	if attach == nil {
		attach = UniformAttach
	}
	t := tree.New()
	for i := 0; i < cfg.N; i++ {
		t.MustAdd(attach(r, t), contrib(r))
	}
	return t
}

// GaltonWatson generates a branching-process tree: starting from seeds
// independent joiners, every participant solicits Binomial(maxKids, p)
// children, each of whom contributes according to contrib. Generation
// stops at maxNodes participants.
func GaltonWatson(r *rand.Rand, seeds, maxKids int, p float64, maxNodes int, contrib ContributionDist) *tree.Tree {
	if contrib == nil {
		contrib = Uniform(0.1, 10)
	}
	t := tree.New()
	queue := make([]tree.NodeID, 0, seeds)
	for i := 0; i < seeds && t.NumParticipants() < maxNodes; i++ {
		queue = append(queue, t.MustAdd(tree.Root, contrib(r)))
	}
	for len(queue) > 0 && t.NumParticipants() < maxNodes {
		u := queue[0]
		queue = queue[1:]
		for k := 0; k < maxKids && t.NumParticipants() < maxNodes; k++ {
			if r.Float64() < p {
				queue = append(queue, t.MustAdd(u, contrib(r)))
			}
		}
	}
	return t
}

// KAry generates a complete k-ary tree of the given depth where every
// participant contributes c. Depth 1 is a single node under the root.
func KAry(k, depth int, c float64) *tree.Tree {
	t := tree.New()
	if depth < 1 {
		return t
	}
	var rec func(parent tree.NodeID, d int)
	rec = func(parent tree.NodeID, d int) {
		id := t.MustAdd(parent, c)
		if d < depth {
			for i := 0; i < k; i++ {
				rec(id, d+1)
			}
		}
	}
	rec(tree.Root, 1)
	return t
}

// ChainTree generates a single downward chain of n participants, each with
// contribution c.
func ChainTree(n int, c float64) *tree.Tree {
	t := tree.New()
	parent := tree.Root
	for i := 0; i < n; i++ {
		parent = t.MustAdd(parent, c)
	}
	return t
}

// StarTree generates a hub with contribution hub and n leaves with
// contribution leaf each.
func StarTree(hub float64, n int, leaf float64) *tree.Tree {
	t := tree.New()
	h := t.MustAdd(tree.Root, hub)
	for i := 0; i < n; i++ {
		t.MustAdd(h, leaf)
	}
	return t
}

// Corpus generates count random trees with varying shapes and
// contribution distributions, deterministically from the seed. It is the
// standard falsification workload for property checkers.
func Corpus(seed int64, count, size int) []*tree.Tree {
	r := rand.New(rand.NewSource(seed))
	dists := []ContributionDist{
		Constant(1),
		Uniform(0.1, 10),
		Exponential(2),
		Pareto(0.5, 1.5),
		LogNormal(0, 1),
	}
	policies := []AttachPolicy{UniformAttach, PreferentialAttach, DeepAttach}
	out := make([]*tree.Tree, 0, count)
	for i := 0; i < count; i++ {
		cfg := Config{
			N:       1 + r.Intn(size),
			Contrib: dists[i%len(dists)],
			Attach:  policies[i%len(policies)],
		}
		t := Random(r, cfg)
		if err := t.Validate(); err != nil {
			panic(fmt.Sprintf("treegen: generated invalid tree: %v", err))
		}
		out = append(out, t)
	}
	return out
}
