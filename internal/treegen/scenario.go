package treegen

import (
	"fmt"
	"math/rand"
)

// This file generates *operation streams* rather than trees: scripted
// scenarios for the load generator (cmd/itreeload) and the audit tests,
// mixing organic growth patterns — preferential attachment, viral
// cascades, churn — with injected Sybil arrangements whose identities
// are known, so auditor precision and recall can be computed against
// ground truth. All randomness flows through the injected *rand.Rand:
// identical seeds generate identical op streams.

// OpKind discriminates scenario operations.
type OpKind int

// The scenario operation kinds.
const (
	// OpJoin registers Name under Sponsor ("" = top level).
	OpJoin OpKind = iota
	// OpContribute adds Amount to Name's contribution.
	OpContribute
)

// Op is one API operation of a scenario.
type Op struct {
	Kind    OpKind
	Name    string
	Sponsor string
	Amount  float64
}

// Unit is a sequence of ops that must execute in order (a join before
// its contributions, a Sybil arrangement bottom-up); independent units
// may interleave freely.
type Unit []Op

// Injection is one planted Sybil arrangement with its ground truth.
type Injection struct {
	// Shape is the planted shape: audit's "epsilon-chain", "chain", or
	// "star" (string-typed here to keep treegen free of audit imports).
	Shape string
	// Root is the name a correct auditor anchors the finding at: the
	// chain head identity, or the star's sponsor (which may be honest —
	// match stars by Members, not Root).
	Root string
	// Members are the planted identity names.
	Members []string
}

// ScenarioConfig controls Mix. The zero value yields a small default
// mix; sybil counts of zero with Honest > 0 yield honest-only traffic.
type ScenarioConfig struct {
	// Honest is the number of organically joining participants.
	// Default 32.
	Honest int
	// Contributions is the number of honest contribution ops streamed
	// over the population. Default 4 * Honest.
	Contributions int
	// Cascades is the number of viral bursts: a random recent joiner
	// recruits a flurry of direct children in one unit. Default
	// Honest/16.
	Cascades int
	// ChurnWindow focuses contribution traffic: 70% of contributions
	// target the most recent ChurnWindow joiners, modelling cohorts
	// that go quiet. Default Honest/2, minimum 4.
	ChurnWindow int
	// EpsilonChains, Chains, Stars count the injected arrangements of
	// each canonical shape. All default to 0 (honest-only).
	EpsilonChains int
	Chains        int
	Stars         int
	// ChainLen is the identity count of injected chains. Default 6.
	ChainLen int
	// StarFanout is the identity count of injected stars. Default 8.
	StarFanout int
	// Prefix names honest participants ("<prefix>-h0001"). Default
	// "load". Sybil identities are always prefixed "syb-".
	Prefix string
}

func (c ScenarioConfig) withDefaults() ScenarioConfig {
	if c.Honest <= 0 {
		c.Honest = 32
	}
	if c.Contributions <= 0 {
		c.Contributions = 4 * c.Honest
	}
	if c.Cascades < 0 {
		c.Cascades = 0
	} else if c.Cascades == 0 {
		c.Cascades = c.Honest / 16
	}
	if c.ChurnWindow <= 0 {
		c.ChurnWindow = c.Honest / 2
	}
	if c.ChurnWindow < 4 {
		c.ChurnWindow = 4
	}
	if c.ChainLen <= 0 {
		c.ChainLen = 6
	}
	if c.StarFanout <= 0 {
		c.StarFanout = 8
	}
	if c.Prefix == "" {
		c.Prefix = "load"
	}
	return c
}

// Scenario is a generated op stream plus its ground truth.
type Scenario struct {
	// Units execute in order within themselves; the slice order is a
	// valid (deterministic) global schedule.
	Units []Unit
	// Honest lists the honest participant names in join order.
	Honest []string
	// Injected lists the planted Sybil arrangements.
	Injected []Injection
}

// Ops flattens the units into one sequential op stream.
func (s Scenario) Ops() []Op {
	var out []Op
	for _, u := range s.Units {
		out = append(out, u...)
	}
	return out
}

// SybilNames returns the set of planted identity names.
func (s Scenario) SybilNames() map[string]bool {
	set := make(map[string]bool)
	for _, inj := range s.Injected {
		for _, m := range inj.Members {
			set[m] = true
		}
	}
	return set
}

// Mix generates a scenario from cfg, drawing all randomness from r.
// Honest growth uses preferential attachment with continuous
// contribution amounts (so equal-split detectors cannot fire on it);
// Sybil units are spliced into the honest stream at random positions,
// each attached under a random honest sponsor, with identities confined
// to the arrangement (no honest descendants), so quarantining exactly
// the planted names is the correct outcome.
func Mix(r *rand.Rand, cfg ScenarioConfig) Scenario {
	cfg = cfg.withDefaults()
	var sc Scenario

	// Honest joins: preferential attachment over the honest population.
	// weights[i] = 1 + children(i); index -1 is "top level".
	children := make([]int, 0, cfg.Honest)
	pickSponsor := func() int {
		total := 1 + len(children) // top level weight 1
		for _, k := range children {
			total += k
		}
		pick := r.Intn(total)
		if pick == 0 {
			return -1
		}
		pick--
		for i, k := range children {
			if pick < 1+k {
				return i
			}
			pick -= 1 + k
		}
		return len(children) - 1
	}
	amount := func() float64 { return 0.5 + 4*r.Float64() }

	var honestUnits []Unit
	join := func() {
		name := fmt.Sprintf("%s-h%04d", cfg.Prefix, len(sc.Honest))
		sponsor := ""
		if s := pickSponsor(); s >= 0 {
			sponsor = sc.Honest[s]
			children[s]++
		}
		honestUnits = append(honestUnits, Unit{
			{Kind: OpJoin, Name: name, Sponsor: sponsor},
			{Kind: OpContribute, Name: name, Amount: amount()},
		})
		sc.Honest = append(sc.Honest, name)
		children = append(children, 0)
	}
	for i := 0; i < cfg.Honest; i++ {
		join()
	}
	// Sybil sponsors are drawn from this base population (and cascade
	// sponsors may extend past it): every base join precedes every
	// spliced unit in the schedule, so sponsors always exist by the
	// time they are referenced.
	basePop := len(sc.Honest)
	baseChildren := append([]int{}, children...)

	// Viral cascades: one recent joiner recruits a burst of children.
	for b := 0; b < cfg.Cascades && len(sc.Honest) > 0; b++ {
		lo := len(sc.Honest) - cfg.ChurnWindow
		if lo < 0 {
			lo = 0
		}
		sponsor := sc.Honest[lo+r.Intn(len(sc.Honest)-lo)]
		burst := Unit{}
		for n := 2 + r.Intn(4); n > 0; n-- {
			name := fmt.Sprintf("%s-h%04d", cfg.Prefix, len(sc.Honest))
			burst = append(burst,
				Op{Kind: OpJoin, Name: name, Sponsor: sponsor},
				Op{Kind: OpContribute, Name: name, Amount: amount()})
			sc.Honest = append(sc.Honest, name)
			children = append(children, 0)
		}
		honestUnits = append(honestUnits, burst)
	}

	// Churned contribution stream: mostly the recent cohort.
	for i := 0; i < cfg.Contributions; i++ {
		var name string
		if r.Float64() < 0.7 {
			lo := len(sc.Honest) - cfg.ChurnWindow
			if lo < 0 {
				lo = 0
			}
			name = sc.Honest[lo+r.Intn(len(sc.Honest)-lo)]
		} else {
			name = sc.Honest[r.Intn(len(sc.Honest))]
		}
		honestUnits = append(honestUnits, Unit{{Kind: OpContribute, Name: name, Amount: amount()}})
	}

	// Sybil units. Each is self-contained: identities join top-down,
	// then contribute, all under one honest sponsor from the base
	// population.
	sponsorName := func() string { return sc.Honest[r.Intn(basePop)] }
	// Chain sponsors need a second child, or the auditor's chain-head
	// walk would (correctly, structurally) ascend into the honest
	// sponsor and the ground-truth root would be off by one.
	chainSponsor := func() string {
		for attempt := 0; attempt < 4*basePop; attempt++ {
			i := r.Intn(basePop)
			if baseChildren[i] >= 1 {
				return sc.Honest[i]
			}
		}
		return sponsorName()
	}
	// Distinct star sponsors: two equal-split bursts under one center
	// would merge into a single finding and cost recall.
	usedStar := make(map[string]bool)
	starSponsor := func() string {
		s := sponsorName()
		for attempt := 0; usedStar[s] && attempt < 4*basePop; attempt++ {
			s = sponsorName()
		}
		usedStar[s] = true
		return s
	}
	var sybilUnits []Unit
	sybIdx := 0
	addInjection := func(shape string, unit Unit, root string, members []string) {
		sybilUnits = append(sybilUnits, unit)
		sc.Injected = append(sc.Injected, Injection{Shape: shape, Root: root, Members: members})
	}
	for i := 0; i < cfg.EpsilonChains; i++ {
		// Equal mu-blocks down a chain, head holding one block too —
		// the TDRM reward-tree split.
		mu := 0.25 + r.Float64()
		names := sybNames(&sybIdx, cfg.ChainLen)
		unit := chainUnit(names, chainSponsor(), func(int) float64 { return mu })
		addInjection("epsilon-chain", unit, names[0], names)
	}
	for i := 0; i < cfg.Chains; i++ {
		// Irregular parts: hits the depth detector, not the ε-fit.
		names := sybNames(&sybIdx, cfg.ChainLen)
		unit := chainUnit(names, chainSponsor(), func(int) float64 { return 0.5 + 3*r.Float64() })
		addInjection("chain", unit, names[0], names)
	}
	for i := 0; i < cfg.Stars; i++ {
		part := 0.5 + 2*r.Float64()
		names := sybNames(&sybIdx, cfg.StarFanout)
		sponsor := starSponsor()
		unit := Unit{}
		for _, n := range names {
			unit = append(unit,
				Op{Kind: OpJoin, Name: n, Sponsor: sponsor},
				Op{Kind: OpContribute, Name: n, Amount: part})
		}
		addInjection("star", unit, sponsor, names)
	}

	// Splice: honest units in order, sybil units at random positions
	// after the sponsor pool exists (sponsors were drawn from the full
	// honest population, so sybil units go after all honest joins but
	// shuffled among the contribution stream tail).
	joins := cfg.Honest
	if joins > len(honestUnits) {
		joins = len(honestUnits)
	}
	tail := append([]Unit{}, honestUnits[joins:]...)
	for _, u := range sybilUnits {
		pos := r.Intn(len(tail) + 1)
		tail = append(tail[:pos], append([]Unit{u}, tail[pos:]...)...)
	}
	sc.Units = append(append([]Unit{}, honestUnits[:joins]...), tail...)
	return sc
}

// sybNames allocates the next n planted identity names.
func sybNames(idx *int, n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("syb-%03d-%02d", *idx, i)
	}
	*idx++
	return names
}

// chainUnit joins names as a descending chain under sponsor, each
// contributing part(i).
func chainUnit(names []string, sponsor string, part func(i int) float64) Unit {
	unit := Unit{}
	parent := sponsor
	for i, n := range names {
		unit = append(unit,
			Op{Kind: OpJoin, Name: n, Sponsor: parent},
			Op{Kind: OpContribute, Name: n, Amount: part(i)})
		parent = n
	}
	return unit
}
