package analysis

import (
	"math"
	"testing"

	"incentivetree/internal/cdrm"
	"incentivetree/internal/core"
	"incentivetree/internal/geometric"
	"incentivetree/internal/numeric"
	"incentivetree/internal/tdrm"
	"incentivetree/internal/tree"
	"incentivetree/internal/treegen"
)

func geoMech(t *testing.T) *geometric.Mechanism {
	t.Helper()
	m, err := geometric.New(core.Params{Phi: 0.5, FairShare: 0}, 0.5, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAttributionHandComputedGeometric(t *testing.T) {
	// a=0.5, b=0.25: u(2) -> v(4). R(u) = 0.25*(2 + 0.5*4) = 1.
	// Share[u][u] = 0.25*2 = 0.5, Share[u][v] = 0.25*0.5*4 = 0.5.
	m := geoMech(t)
	tr := tree.FromSpecs(tree.Spec{C: 2, Kids: []tree.Spec{{C: 4}}})
	att, err := Compute(m, tr)
	if err != nil {
		t.Fatal(err)
	}
	if got := att.Share[1][1]; math.Abs(got-0.5) > 1e-12 {
		t.Errorf("self share = %v, want 0.5", got)
	}
	if got := att.Share[1][2]; math.Abs(got-0.5) > 1e-12 {
		t.Errorf("child share = %v, want 0.5", got)
	}
	if got := att.Share[2][1]; got != 0 {
		t.Errorf("upward share = %v, want 0 (ancestors don't fund descendants)", got)
	}
	if got := att.MaxResidual(); got > 1e-12 {
		t.Errorf("geometric residual = %v, want 0 (linear mechanism)", got)
	}
	if got := att.SelfShare(1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("SelfShare = %v, want 0.5", got)
	}
	// v's contribution funds its own reward (1.0) plus 0.5 at u.
	if got := att.FundedBy(2); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("FundedBy(v) = %v, want 1.5", got)
	}
}

func TestLinearMechanismsHaveZeroResidual(t *testing.T) {
	m := geoMech(t)
	for _, tr := range treegen.Corpus(71, 8, 30) {
		att, err := Compute(m, tr)
		if err != nil {
			t.Fatal(err)
		}
		if got := att.MaxResidual(); got > 1e-9 {
			t.Fatalf("residual = %v on linear mechanism", got)
		}
	}
}

func TestNonlinearMechanismsReportResidual(t *testing.T) {
	// TDRM's quadratic term multiplies a node's own contribution with its
	// descendants', so removing u and removing its child each subtract
	// the cross term once: the leave-one-out row over-counts and the
	// residual must be visible.
	m, err := tdrm.Default(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	tr := tree.FromSpecs(tree.Spec{C: 0.8, Kids: []tree.Spec{{C: 0.6}}})
	att, err := Compute(m, tr)
	if err != nil {
		t.Fatal(err)
	}
	if att.MaxResidual() == 0 {
		t.Fatal("quadratic mechanism should show an attribution residual")
	}
}

func TestDepthFlowGeometricDecay(t *testing.T) {
	// On a long unit chain the flow at distance d is proportional to
	// a^d: each consecutive ratio must be ~a (up to end effects, so use
	// the asymptotic interior of a long chain).
	m := geoMech(t)
	tr := treegen.ChainTree(30, 1)
	att, err := Compute(m, tr)
	if err != nil {
		t.Fatal(err)
	}
	byDepth, nonLocal := DepthFlow(tr, att)
	if nonLocal != 0 {
		t.Fatalf("SL mechanism leaked %v non-local flow", nonLocal)
	}
	for d := 1; d < 10; d++ {
		ratio := byDepth[d] / byDepth[d-1]
		// End effects shrink the pool of (u, v) pairs at distance d by
		// one per level on a 30-chain; tolerate 10%.
		if math.Abs(ratio-0.5) > 0.05 {
			t.Fatalf("flow ratio at depth %d = %v, want ~a = 0.5", d, ratio)
		}
	}
}

func TestDepthFlowCDRMSelfShare(t *testing.T) {
	// CDRM rewards are paid for one's own contribution (topology-free):
	// depth-0 flow dominates and equals most of the pool.
	m, err := cdrm.DefaultReciprocal(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	tr := tree.FromSpecs(tree.Spec{C: 2, Kids: []tree.Spec{{C: 1}, {C: 3}}})
	att, err := Compute(m, tr)
	if err != nil {
		t.Fatal(err)
	}
	byDepth, _ := DepthFlow(tr, att)
	if len(byDepth) == 0 || byDepth[0] <= 0 {
		t.Fatalf("byDepth = %v", byDepth)
	}
	total := 0.0
	for _, v := range byDepth {
		total += v
	}
	if byDepth[0]/total < 0.5 {
		t.Fatalf("CDRM self flow = %v of %v, expected dominant", byDepth[0], total)
	}
}

func TestAttributionRowsSumToReward(t *testing.T) {
	m := geoMech(t)
	tr := treegen.StarTree(1, 5, 2)
	att, err := Compute(m, tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range tr.Nodes() {
		sum := 0.0
		for _, s := range att.Share[u] {
			sum += s
		}
		if !numeric.AlmostEqual(sum+att.Residual[u], att.Rewards.Of(u), 1e-9) {
			t.Fatalf("row %d: %v + residual %v != R %v", u, sum, att.Residual[u], att.Rewards.Of(u))
		}
	}
}

func TestAccessorsOutOfRange(t *testing.T) {
	m := geoMech(t)
	tr := tree.FromSpecs(tree.Spec{C: 1})
	att, err := Compute(m, tr)
	if err != nil {
		t.Fatal(err)
	}
	if got := att.FundedBy(tree.NodeID(99)); got != 0 {
		t.Fatalf("FundedBy(out of range) = %v", got)
	}
	if got := att.SelfShare(tree.NodeID(99)); got != 0 {
		t.Fatalf("SelfShare(out of range) = %v", got)
	}
}

func TestComputeInputUntouched(t *testing.T) {
	m := geoMech(t)
	tr := tree.FromSpecs(tree.Spec{C: 2, Kids: []tree.Spec{{C: 1}}})
	before := tr.Clone()
	if _, err := Compute(m, tr); err != nil {
		t.Fatal(err)
	}
	if !tr.Equal(before) {
		t.Fatal("Compute mutated its input")
	}
}
