// Package analysis provides reward-flow attribution for Incentive Tree
// mechanisms: how much of each participant's reward is funded by which
// contributor, and how far reward travels up the solicitation chain.
//
// Attribution is computed mechanism-agnostically by leave-one-out
// differencing: the share of R(u) attributable to contributor v is
// R(u) evaluated on T minus R(u) evaluated on T with C(v) zeroed. For
// mechanisms that are linear in contributions (Geometric, L-Luxor,
// Emek-Binary) the rows decompose R(u) exactly; for nonlinear mechanisms
// (TDRM's quadratic term, CDRM, L-Pachira) the leave-one-out shares are
// a first-order attribution and the per-row residual is reported so
// callers can see the nonlinearity.
package analysis

import (
	"fmt"
	"math"

	"incentivetree/internal/core"
	"incentivetree/internal/tree"
)

// Attribution holds the leave-one-out reward decomposition of one tree
// under one mechanism.
type Attribution struct {
	Mechanism string
	// Share[u][v] is the part of R(u) attributable to contributor v.
	// Both indices are NodeIDs; the root row and column are zero.
	Share [][]float64
	// Residual[u] = R(u) - sum_v Share[u][v]: zero (up to float noise)
	// for contribution-linear mechanisms.
	Residual []float64
	// Rewards are the baseline rewards on the unmodified tree.
	Rewards core.Rewards
}

// Compute evaluates the attribution matrix with n+1 mechanism
// evaluations (one baseline, one per participant).
func Compute(m core.Mechanism, t *tree.Tree) (*Attribution, error) {
	base, err := m.Rewards(t)
	if err != nil {
		return nil, fmt.Errorf("analysis: baseline: %w", err)
	}
	n := t.Len()
	att := &Attribution{
		Mechanism: m.Name(),
		Share:     make([][]float64, n),
		Residual:  make([]float64, n),
		Rewards:   base,
	}
	for u := range att.Share {
		att.Share[u] = make([]float64, n)
	}
	work := t.Clone()
	for _, v := range t.Nodes() {
		c := t.Contribution(v)
		if c == 0 {
			continue
		}
		if err := work.SetContribution(v, 0); err != nil {
			return nil, err
		}
		without, err := m.Rewards(work)
		if err != nil {
			return nil, fmt.Errorf("analysis: leave-out %d: %w", v, err)
		}
		if err := work.SetContribution(v, c); err != nil {
			return nil, err
		}
		for _, u := range t.Nodes() {
			att.Share[u][v] = base.Of(u) - without.Of(u)
		}
	}
	for _, u := range t.Nodes() {
		sum := 0.0
		for _, s := range att.Share[u] {
			sum += s
		}
		att.Residual[u] = base.Of(u) - sum
	}
	return att, nil
}

// MaxResidual returns the largest absolute residual — zero means the
// mechanism is contribution-linear on this tree.
func (a *Attribution) MaxResidual() float64 {
	max := 0.0
	for _, r := range a.Residual {
		if v := math.Abs(r); v > max {
			max = v
		}
	}
	return max
}

// FundedBy returns contributor v's total funding across all rewards:
// how much of the whole reward pool exists because of v.
func (a *Attribution) FundedBy(v tree.NodeID) float64 {
	if int(v) >= len(a.Share) {
		return 0
	}
	total := 0.0
	for u := range a.Share {
		total += a.Share[u][v]
	}
	return total
}

// SelfShare returns the fraction of R(u) funded by u's own contribution
// (0 when R(u) is 0).
func (a *Attribution) SelfShare(u tree.NodeID) float64 {
	if int(u) >= len(a.Share) {
		return 0
	}
	if r := a.Rewards.Of(u); r > 0 {
		return a.Share[u][u] / r
	}
	return 0
}

// DepthFlow aggregates the attribution by solicitation distance: entry d
// is the total reward that travelled exactly d edges from contributor to
// rewardee (d = 0 is reward from one's own contribution; contributors
// outside the rewardee's subtree — possible only for non-SL mechanisms —
// are aggregated under distance -1, returned separately).
func DepthFlow(t *tree.Tree, a *Attribution) (byDepth []float64, nonLocal float64) {
	for _, u := range t.Nodes() {
		for _, v := range t.Nodes() {
			s := a.Share[u][v]
			if s == 0 {
				continue
			}
			d := t.DepthFrom(u, v)
			if d < 0 {
				nonLocal += s
				continue
			}
			for len(byDepth) <= d {
				byDepth = append(byDepth, 0)
			}
			byDepth[d] += s
		}
	}
	return byDepth, nonLocal
}
