// Package strategic models participants as rational contribution
// choosers, turning the paper's marginal-incentive axioms (CCI, and the
// dR/dx < 1 condition behind UGSA) into observable behaviour.
//
// Each participant u has a private per-unit value v(u) for contributing
// (consumer surplus on purchased goods, enjoyment or side-benefit of the
// crowd task) and picks its contribution level from a grid to maximize
//
//	U_u(c) = v(u)*c + R_u(c) - c,
//
// where R_u(c) is u's reward when it contributes c and everyone else
// stays fixed. Best-response dynamics iterate this choice across all
// participants until a fixed point: an equilibrium contribution profile
// for the mechanism. Comparing equilibria across mechanisms measures how
// much contribution each reward schedule actually elicits — the
// deployment question behind the paper's axioms.
package strategic

import (
	"errors"
	"fmt"

	"incentivetree/internal/core"
	"incentivetree/internal/tree"
)

// Config bounds the dynamics.
type Config struct {
	// Grid is the menu of contribution levels agents choose from; must
	// be non-empty with non-negative entries.
	Grid []float64
	// MaxRounds caps the best-response sweeps.
	MaxRounds int
	// Tol is the utility improvement below which an agent keeps its
	// current level (prevents float-noise oscillation).
	Tol float64
}

// DefaultConfig uses a coarse grid of five levels up to 4.0.
func DefaultConfig() Config {
	return Config{
		Grid:      []float64{0, 0.5, 1, 2, 4},
		MaxRounds: 30,
		Tol:       1e-9,
	}
}

func (c Config) validate() error {
	if len(c.Grid) == 0 {
		return errors.New("strategic: empty contribution grid")
	}
	for _, g := range c.Grid {
		if g < 0 {
			return fmt.Errorf("strategic: negative grid level %v", g)
		}
	}
	if c.MaxRounds <= 0 {
		return errors.New("strategic: MaxRounds must be positive")
	}
	return nil
}

// Utility returns U_u(c) for the CURRENT tree state: the intrinsic value
// plus profit at u's present contribution.
func Utility(t *tree.Tree, r core.Rewards, u tree.NodeID, value float64) float64 {
	c := t.Contribution(u)
	return value*c + r.Of(u) - c
}

// BestContribution evaluates the mechanism for every grid level of u's
// contribution (others fixed) and returns the utility-maximizing level
// and its utility. The input tree is not modified.
func BestContribution(m core.Mechanism, t *tree.Tree, u tree.NodeID, value float64, cfg Config) (float64, float64, error) {
	if err := cfg.validate(); err != nil {
		return 0, 0, err
	}
	if !t.Exists(u) || u == tree.Root {
		return 0, 0, fmt.Errorf("strategic: no such participant %d", u)
	}
	work := t.Clone()
	bestC, bestU := 0.0, 0.0
	first := true
	for _, c := range cfg.Grid {
		if err := work.SetContribution(u, c); err != nil {
			return 0, 0, err
		}
		r, err := m.Rewards(work)
		if err != nil {
			return 0, 0, err
		}
		util := value*c + r.Of(u) - c
		if first || util > bestU+cfg.Tol {
			bestC, bestU = c, util
			first = false
		}
	}
	return bestC, bestU, nil
}

// Equilibrium is the outcome of best-response dynamics.
type Equilibrium struct {
	Mechanism string
	// Rounds is the number of full sweeps executed.
	Rounds int
	// Converged reports whether a fixed point was reached within
	// MaxRounds.
	Converged bool
	// Tree is the final contribution profile.
	Tree *tree.Tree
	// Total is the equilibrium total contribution C(T).
	Total float64
	// Participation is the fraction of agents contributing a positive
	// amount.
	Participation float64
	// Welfare is the summed equilibrium utility over all agents.
	Welfare float64
}

// BestResponse runs synchronous-sweep best-response dynamics from the
// given tree: in id order, every participant moves to its best grid
// level; sweeps repeat until nobody moves. Values maps each participant
// to its per-unit intrinsic value (missing entries default to 0). The
// input tree is not modified.
func BestResponse(m core.Mechanism, t *tree.Tree, values map[tree.NodeID]float64, cfg Config) (Equilibrium, error) {
	if err := cfg.validate(); err != nil {
		return Equilibrium{}, err
	}
	work := t.Clone()
	eq := Equilibrium{Mechanism: m.Name(), Tree: work}
	for eq.Rounds = 1; eq.Rounds <= cfg.MaxRounds; eq.Rounds++ {
		moved := false
		for _, u := range work.Nodes() {
			best, _, err := BestContribution(m, work, u, values[u], cfg)
			if err != nil {
				return Equilibrium{}, err
			}
			if best != work.Contribution(u) {
				if err := work.SetContribution(u, best); err != nil {
					return Equilibrium{}, err
				}
				moved = true
			}
		}
		if !moved {
			eq.Converged = true
			break
		}
	}
	if eq.Rounds > cfg.MaxRounds {
		eq.Rounds = cfg.MaxRounds
	}
	r, err := m.Rewards(work)
	if err != nil {
		return Equilibrium{}, err
	}
	eq.Total = work.Total()
	contributors := 0
	for _, u := range work.Nodes() {
		if work.Contribution(u) > 0 {
			contributors++
		}
		eq.Welfare += Utility(work, r, u, values[u])
	}
	if n := work.NumParticipants(); n > 0 {
		eq.Participation = float64(contributors) / float64(n)
	}
	return eq, nil
}
