package strategic

import (
	"math"
	"testing"

	"incentivetree/internal/cdrm"
	"incentivetree/internal/core"
	"incentivetree/internal/geometric"
	"incentivetree/internal/tree"
)

func geoMech(t *testing.T) core.Mechanism {
	t.Helper()
	m, err := geometric.Default(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidation(t *testing.T) {
	m := geoMech(t)
	tr := tree.FromSpecs(tree.Spec{C: 1})
	bad := []Config{
		{Grid: nil, MaxRounds: 5},
		{Grid: []float64{-1}, MaxRounds: 5},
		{Grid: []float64{1}, MaxRounds: 0},
	}
	for i, cfg := range bad {
		if _, _, err := BestContribution(m, tr, 1, 0.5, cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
		if _, err := BestResponse(m, tr, nil, cfg); err == nil {
			t.Errorf("config %d should be rejected by BestResponse", i)
		}
	}
}

func TestBestContributionThreshold(t *testing.T) {
	// Under the Geometric mechanism a lone participant's reward is b*c,
	// so utility is (v + b - 1)*c: corner solutions at the grid ends with
	// threshold v = 1 - b = 2/3.
	m := geoMech(t)
	tr := tree.FromSpecs(tree.Spec{C: 1})
	cfg := DefaultConfig()

	low, _, err := BestContribution(m, tr, 1, 0.5, cfg) // below threshold
	if err != nil {
		t.Fatal(err)
	}
	if low != 0 {
		t.Fatalf("low-value agent contributes %v, want 0", low)
	}
	high, _, err := BestContribution(m, tr, 1, 0.9, cfg) // above threshold
	if err != nil {
		t.Fatal(err)
	}
	if high != 4 {
		t.Fatalf("high-value agent contributes %v, want grid max 4", high)
	}
}

func TestBestContributionDoesNotMutate(t *testing.T) {
	m := geoMech(t)
	tr := tree.FromSpecs(tree.Spec{C: 1.5})
	if _, _, err := BestContribution(m, tr, 1, 0.9, DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if got := tr.Contribution(1); got != 1.5 {
		t.Fatalf("input tree mutated: C = %v", got)
	}
}

func TestBestContributionErrors(t *testing.T) {
	m := geoMech(t)
	tr := tree.FromSpecs(tree.Spec{C: 1})
	if _, _, err := BestContribution(m, tr, tree.Root, 0.5, DefaultConfig()); err == nil {
		t.Fatal("root is not a participant")
	}
	if _, _, err := BestContribution(m, tr, tree.NodeID(7), 0.5, DefaultConfig()); err == nil {
		t.Fatal("missing node should fail")
	}
}

func TestBestResponseConvergesAndIsFixedPoint(t *testing.T) {
	m := geoMech(t)
	tr := tree.FromSpecs(tree.Spec{C: 1, Kids: []tree.Spec{{C: 1}, {C: 1}}})
	values := map[tree.NodeID]float64{1: 0.9, 2: 0.5, 3: 0.8}
	cfg := DefaultConfig()
	eq, err := BestResponse(m, tr, values, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !eq.Converged {
		t.Fatalf("dynamics did not converge in %d rounds", eq.Rounds)
	}
	// Fixed point: nobody wants to move.
	for _, u := range eq.Tree.Nodes() {
		best, _, err := BestContribution(m, eq.Tree, u, values[u], cfg)
		if err != nil {
			t.Fatal(err)
		}
		if best != eq.Tree.Contribution(u) {
			t.Fatalf("node %d would deviate from %v to %v", u, eq.Tree.Contribution(u), best)
		}
	}
	if eq.Total != eq.Tree.Total() {
		t.Fatalf("Total = %v, tree says %v", eq.Total, eq.Tree.Total())
	}
	if eq.Participation < 0 || eq.Participation > 1 {
		t.Fatalf("Participation = %v", eq.Participation)
	}
}

func TestBestResponseInputUntouched(t *testing.T) {
	m := geoMech(t)
	tr := tree.FromSpecs(tree.Spec{C: 1, Kids: []tree.Spec{{C: 2}}})
	before := tr.Clone()
	if _, err := BestResponse(m, tr, map[tree.NodeID]float64{1: 0.9, 2: 0.9}, DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if !tr.Equal(before) {
		t.Fatal("BestResponse mutated its input tree")
	}
}

func TestHigherValuesRaiseEquilibriumTotal(t *testing.T) {
	m := geoMech(t)
	tr := tree.FromSpecs(tree.Spec{C: 1, Kids: []tree.Spec{{C: 1}, {C: 1}}})
	lowValues := map[tree.NodeID]float64{1: 0.2, 2: 0.2, 3: 0.2}
	highValues := map[tree.NodeID]float64{1: 0.9, 2: 0.9, 3: 0.9}
	low, err := BestResponse(m, tr, lowValues, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	high, err := BestResponse(m, tr, highValues, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if high.Total <= low.Total {
		t.Fatalf("high-value equilibrium %v not above low-value %v", high.Total, low.Total)
	}
}

// TestCDRMElicitsMidValueAgents: CDRM's marginal reward approaches Phi
// when the agent sits above a large subtree, so agents with
// 1-Phi < 1-v < b-threshold contribute under CDRM but not under the
// Geometric schedule whose slope is only b.
func TestCDRMElicitsMidValueAgents(t *testing.T) {
	p := core.DefaultParams() // Phi = 0.5; geometric slope b = 1/3
	rec, err := cdrm.DefaultReciprocal(p)
	if err != nil {
		t.Fatal(err)
	}
	geo := geoMech(t)
	// u sits above a heavy established subtree (large y), with a value
	// between the two thresholds: 1 - Phi = 0.5 < ... < 1 - b = 2/3.
	tr := tree.FromSpecs(tree.Spec{C: 0, Kids: []tree.Spec{{C: 40}}})
	const v = 0.58
	cfg := DefaultConfig()
	cRec, _, err := BestContribution(rec, tr, 1, v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cGeo, _, err := BestContribution(geo, tr, 1, v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cRec == 0 {
		t.Fatal("CDRM should elicit contribution from the mid-value agent")
	}
	if cGeo != 0 {
		t.Fatalf("Geometric slope b=1/3 should not elicit v=0.58, got %v", cGeo)
	}
}

func TestUtilityAccessor(t *testing.T) {
	tr := tree.FromSpecs(tree.Spec{C: 2})
	r := core.Rewards{0, 0.5}
	// U = 0.7*2 + 0.5 - 2 = -0.1
	if got := Utility(tr, r, 1, 0.7); math.Abs(got-(-0.1)) > 1e-12 {
		t.Fatalf("Utility = %v", got)
	}
}
