package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"incentivetree/internal/core"
	"incentivetree/internal/geometric"
	"incentivetree/internal/journal"
)

// newSettleFixture builds a journaled server with the quarantine
// fixture population, in the given journal format.
func newSettleFixture(t *testing.T, mode journal.Mode) (*Server, *bytes.Buffer) {
	t.Helper()
	m, err := geometric.Default(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var log bytes.Buffer
	s := New(m, WithJournal(journal.NewWriterMode(&log, 1, mode)))
	buildQuarantineFixture(t, s)
	return s, &log
}

// checkLedgerInvariant asserts, for every settled epoch of s, that the
// sequential share sum stays within the accrued pool and that each
// participant's claims stay within what was settled to them — the
// acceptance invariant of the settlement subsystem.
func checkLedgerInvariant(t *testing.T, s *Server) {
	t.Helper()
	s.mu.RLock()
	defer s.mu.RUnlock()
	l := s.ledger
	for n := uint64(1); n <= uint64(l.Epochs()); n++ {
		se, ok := l.Epoch(n)
		if !ok {
			t.Fatalf("epoch %d missing", n)
		}
		remaining := se.Pool
		for _, r := range se.Rewards {
			remaining -= r.Amount
			if remaining < 0 {
				t.Fatalf("epoch %d: shares exceed pool %v at %q", n, se.Pool, r.Name)
			}
		}
		if l.ClaimedAmount(n) > l.SettledAmount(n) {
			t.Fatalf("epoch %d: claimed %v > settled %v", n, l.ClaimedAmount(n), l.SettledAmount(n))
		}
		for _, name := range se.Claimed {
			if l.ClaimedOf(name) > l.SettledOf(name) {
				t.Fatalf("participant %q claimed %v > settled %v", name, l.ClaimedOf(name), l.SettledOf(name))
			}
		}
	}
}

func TestSettleAndClaimHTTP(t *testing.T) {
	s, _ := newSettleFixture(t, journal.ModeJSON)
	ts := newHTTPServer(t, s)

	// First settle: pool = Phi * C(T), shares are the full served table.
	resp := postJSON(t, ts+"/v1/epochs/settle", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("settle status = %d", resp.StatusCode)
	}
	var sum EpochSummary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	if sum.Epoch != 1 || sum.Shares == 0 {
		t.Fatalf("settle summary = %+v", sum)
	}
	phi := s.Mechanism().Params().Phi
	if want := phi * 14; sum.Pool != want { // fixture contributes 4+3+2+5
		t.Fatalf("pool = %v, want %v", sum.Pool, want)
	}
	if sum.Settled > sum.Pool {
		t.Fatalf("settled %v exceeds pool %v", sum.Settled, sum.Pool)
	}

	// Settling again with no new contributions is a 409.
	if resp := postJSON(t, ts+"/v1/epochs/settle", nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("idle settle status = %d, want 409", resp.StatusCode)
	}

	// Claim a's share; a second claim must 409 without double credit.
	var receipt ClaimReceipt
	resp = postJSON(t, ts+"/v1/claims", map[string]any{"name": "a", "epoch": 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("claim status = %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&receipt); err != nil {
		t.Fatal(err)
	}
	if receipt.Amount <= 0 {
		t.Fatalf("claim receipt = %+v", receipt)
	}
	if resp := postJSON(t, ts+"/v1/claims", map[string]any{"name": "a", "epoch": 1}); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate claim status = %d, want 409", resp.StatusCode)
	}
	var acct claimsAccount
	getJSON(t, ts+"/v1/claims?name=a", &acct)
	if acct.Claimed != receipt.Amount || acct.Claims != 1 {
		t.Fatalf("claims account = %+v, want claimed %v", acct, receipt.Amount)
	}

	// Unknown participant and unsettled epoch are 404s.
	if resp := postJSON(t, ts+"/v1/claims", map[string]any{"name": "zz", "epoch": 1}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown claimant status = %d, want 404", resp.StatusCode)
	}
	if resp := postJSON(t, ts+"/v1/claims", map[string]any{"name": "a", "epoch": 9}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unsettled epoch claim status = %d, want 404", resp.StatusCode)
	}
	if resp := getJSON(t, ts+"/v1/epochs/9", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unsettled epoch get status = %d, want 404", resp.StatusCode)
	}

	// Epoch listing and detail agree.
	var list epochsResponse
	getJSON(t, ts+"/v1/epochs", &list)
	if list.NextEpoch != 2 || len(list.Epochs) != 1 || list.ClaimedTotal != receipt.Amount {
		t.Fatalf("epochs = %+v", list)
	}
	var detail epochDetail
	getJSON(t, ts+"/v1/epochs/1", &detail)
	if detail.Epoch != 1 || len(detail.Rewards) != detail.Shares || len(detail.Claimed) != 1 || detail.Claimed[0] != "a" {
		t.Fatalf("epoch detail = %+v", detail)
	}
	checkLedgerInvariant(t, s)
}

func TestSettleAccruesDeltaAndCarry(t *testing.T) {
	s, _ := newSettleFixture(t, journal.ModeJSON)
	first, err := s.Settle()
	if err != nil {
		t.Fatal(err)
	}
	// New contribution, then settle again: the second pool accrues only
	// the delta (plus carry-over), and shares are reward growth only.
	if err := s.Contribute("c", 6); err != nil {
		t.Fatal(err)
	}
	second, err := s.Settle()
	if err != nil {
		t.Fatal(err)
	}
	phi := s.Mechanism().Params().Phi
	if want := phi*6 + first.CarryOut; second.Pool != want {
		t.Fatalf("second pool = %v, want phi*6+carry = %v", second.Pool, want)
	}
	if second.CTotal != 20 {
		t.Fatalf("second ctotal = %v, want 20", second.CTotal)
	}
	// Cumulative settled per participant never exceeds the served
	// reward, and claims of both epochs pay distinct deltas.
	for _, name := range []string{"a", "b", "c", "d"} {
		p, err := s.participant(name)
		if err != nil {
			t.Fatal(err)
		}
		s.mu.RLock()
		settled := s.ledger.SettledOf(name)
		s.mu.RUnlock()
		if settled > p.Reward+1e-12 {
			t.Fatalf("%s: settled %v > reward %v", name, settled, p.Reward)
		}
	}
	checkLedgerInvariant(t, s)
}

func TestSettleExcludesQuarantined(t *testing.T) {
	s, _ := newSettleFixture(t, journal.ModeBinary)
	if err := s.Quarantine("b"); err != nil {
		t.Fatal(err)
	}
	sum, err := s.Settle()
	if err != nil {
		t.Fatal(err)
	}
	s.mu.RLock()
	se, _ := s.ledger.Epoch(1)
	s.mu.RUnlock()
	for _, r := range se.Rewards {
		if r.Name == "b" || r.Name == "c" { // c is inside b's subtree
			t.Fatalf("quarantined subtree settled: %v", se.Rewards)
		}
	}
	// The pool still accrues on raw C(T); the withheld share stays as
	// carry for later epochs.
	phi := s.Mechanism().Params().Phi
	if sum.Pool != phi*14 {
		t.Fatalf("pool = %v, want %v", sum.Pool, phi*14)
	}
	if sum.CarryOut <= 0 {
		t.Fatalf("carry = %v, want > 0 (withheld rewards)", sum.CarryOut)
	}
	// A claim by the quarantined participant finds no share: 404 path.
	if _, err := s.Claim("b", 1); !errors.Is(err, ErrNoShare) {
		t.Fatalf("claim by quarantined = %v, want ErrNoShare", err)
	}
	// After unquarantine, the next settle grants the subtree's deltas
	// out of the carried budget.
	if err := s.Unquarantine("b"); err != nil {
		t.Fatal(err)
	}
	sum2, err := s.Settle()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	s.mu.RLock()
	se2, _ := s.ledger.Epoch(2)
	s.mu.RUnlock()
	for _, r := range se2.Rewards {
		if r.Name == "b" {
			found = true
		}
	}
	if !found {
		t.Fatalf("unquarantined participant not settled in epoch 2: %+v", sum2)
	}
	checkLedgerInvariant(t, s)
}

// TestSettleLedgerInvariantAcrossRecovery is the acceptance matrix:
// settle+claim history must survive (1) pure journal replay, (2)
// snapshot ("checkpoint") recovery, (3) snapshot + journal-suffix
// recovery, and (4) a torn-tail (kill -9) replay, in both journal
// formats — with the ledger invariant and the HTTP surface intact.
func TestSettleLedgerInvariantAcrossRecovery(t *testing.T) {
	for _, mode := range []journal.Mode{journal.ModeJSON, journal.ModeBinary} {
		t.Run(mode.String(), func(t *testing.T) {
			s, log := newSettleFixture(t, mode)
			if _, err := s.Settle(); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Claim("a", 1); err != nil {
				t.Fatal(err)
			}
			snap := s.SnapshotState() // checkpoint between the two epochs
			if err := s.Contribute("d", 8); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Settle(); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Claim("d", 2); err != nil {
				t.Fatal(err)
			}
			want := httpBody(t, s, "/v1/epochs") + httpBody(t, s, "/v1/claims?name=a") + httpBody(t, s, "/v1/rewards")

			m := s.Mechanism()
			events, err := journal.Read(bytes.NewReader(log.Bytes()))
			if err != nil {
				t.Fatal(err)
			}

			// (1) Pure journal replay.
			r1 := New(m)
			if err := Recover(r1, nil, events); err != nil {
				t.Fatal(err)
			}
			// (2) Snapshot-only recovery reaches the checkpoint state.
			r2 := New(m)
			if err := Recover(r2, &snap, nil); err != nil {
				t.Fatal(err)
			}
			r2.mu.RLock()
			if r2.ledger.Epochs() != 1 || !r2.ledger.HasClaimed(1, "a") {
				t.Fatalf("snapshot recovery ledger: epochs=%d", r2.ledger.Epochs())
			}
			r2.mu.RUnlock()
			checkLedgerInvariant(t, r2)
			// (3) Snapshot + journal suffix.
			r3 := New(m)
			if err := Recover(r3, &snap, events); err != nil {
				t.Fatal(err)
			}
			// (4) Torn tail: append garbage, replay tolerates and truncates.
			torn := append(append([]byte(nil), log.Bytes()...), "{\"seq\":99,"...)
			tornEvents, err := journal.Read(bytes.NewReader(torn))
			if !errors.Is(err, journal.ErrTornTail) {
				t.Fatalf("torn log error = %v, want ErrTornTail", err)
			}
			r4 := New(m)
			if err := Recover(r4, nil, tornEvents); err != nil {
				t.Fatal(err)
			}

			for i, r := range []*Server{r1, r3, r4} {
				got := httpBody(t, r, "/v1/epochs") + httpBody(t, r, "/v1/claims?name=a") + httpBody(t, r, "/v1/rewards")
				if got != want {
					t.Fatalf("recovery path %d diverged:\n got %s\nwant %s", i+1, got, want)
				}
				checkLedgerInvariant(t, r)
				// Idempotency across recovery: the claimed share stays
				// claimed — a retry is a conflict, not a double credit.
				if _, err := r.Claim("a", 1); !errors.Is(err, ErrAlreadyClaimed) {
					t.Fatalf("recovery path %d: re-claim = %v, want ErrAlreadyClaimed", i+1, err)
				}
			}
		})
	}
}

// TestSettleSnapshotCodecRoundTrip proves settled epochs survive both
// snapshot representations byte-exactly.
func TestSettleSnapshotCodecRoundTrip(t *testing.T) {
	s, _ := newSettleFixture(t, journal.ModeBinary)
	if _, err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Claim("a", 1); err != nil {
		t.Fatal(err)
	}
	snap := s.SnapshotState()
	if len(snap.Epochs) != 1 || len(snap.Epochs[0].Claimed) != 1 {
		t.Fatalf("snapshot epochs = %+v", snap.Epochs)
	}

	bin, err := EncodeSnapshotBinary(&snap)
	if err != nil {
		t.Fatal(err)
	}
	if bin[4] != snapshotVersionLedger {
		t.Fatalf("version byte = %d, want %d", bin[4], snapshotVersionLedger)
	}
	dec, err := DecodeSnapshot(bin)
	if err != nil {
		t.Fatal(err)
	}
	re, err := EncodeSnapshotBinary(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bin, re) {
		t.Fatal("binary snapshot decode∘encode not identity with epochs")
	}

	jsonData, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	jdec, err := DecodeSnapshot(jsonData)
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := New(s.Mechanism()), New(s.Mechanism())
	if err := r1.RestoreState(*dec); err != nil {
		t.Fatal(err)
	}
	if err := r2.RestoreState(*jdec); err != nil {
		t.Fatal(err)
	}
	if got, want := httpBody(t, r1, "/v1/epochs"), httpBody(t, r2, "/v1/epochs"); got != want {
		t.Fatalf("binary and JSON restores diverge:\n%s\n%s", got, want)
	}

	// A server without settled epochs still writes version-1 bytes.
	s2, _ := newSettleFixture(t, journal.ModeBinary)
	empty := s2.SnapshotState()
	bin2, err := EncodeSnapshotBinary(&empty)
	if err != nil {
		t.Fatal(err)
	}
	if bin2[4] != snapshotVersion {
		t.Fatalf("empty-ledger snapshot version = %d, want %d", bin2[4], snapshotVersion)
	}

	// A corrupt snapshot whose shares overdraw the pool is rejected on
	// restore (the invariant is re-checked, not trusted).
	bad := snap
	bad.Epochs = []journal.SettledEpoch{{Epoch: 1, Pool: 0.5, CTotal: 14,
		Rewards: []journal.RewardShare{{Name: "a", Amount: 1}}}}
	if err := New(s.Mechanism()).RestoreState(bad); err == nil {
		t.Fatal("restore accepted an overdrawn ledger snapshot")
	}
}

// TestSettleReplicates proves ApplyReplicated carries settle/claim
// records to a follower that then serves the identical ledger.
func TestSettleReplicates(t *testing.T) {
	s, log := newSettleFixture(t, journal.ModeBinary)
	if _, err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Claim("b", 1); err != nil {
		t.Fatal(err)
	}
	events, err := journal.Read(bytes.NewReader(log.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	f := New(s.Mechanism())
	if err := f.ApplyReplicated(events); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/v1/epochs", "/v1/claims", "/v1/rewards"} {
		if got, want := httpBody(t, f, path), httpBody(t, s, path); got != want {
			t.Fatalf("follower %s diverged:\n got %s\nwant %s", path, got, want)
		}
	}
	checkLedgerInvariant(t, f)
}

// newHTTPServer starts an httptest server over s and returns its URL.
func newHTTPServer(t *testing.T, s *Server) string {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}
