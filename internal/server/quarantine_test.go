package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"incentivetree/internal/core"
	"incentivetree/internal/geometric"
	"incentivetree/internal/journal"
)

// buildQuarantineFixture populates s with a sponsor chain a<-b<-c plus
// an independent d, all with contributions.
func buildQuarantineFixture(t *testing.T, s *Server) {
	t.Helper()
	for _, j := range []struct{ name, sponsor string }{
		{"a", ""}, {"b", "a"}, {"c", "b"}, {"d", ""},
	} {
		if err := s.Join(j.name, j.sponsor); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range []struct {
		name   string
		amount float64
	}{
		{"a", 4}, {"b", 3}, {"c", 2}, {"d", 5},
	} {
		if err := s.Contribute(c.name, c.amount); err != nil {
			t.Fatal(err)
		}
	}
}

func TestQuarantineZeroesSubtreePayout(t *testing.T) {
	s, ts := newTestServer(t)
	buildQuarantineFixture(t, s)

	var before rewardsResponse
	getJSON(t, ts.URL+"/v1/rewards", &before)

	if err := s.Quarantine("b"); err != nil {
		t.Fatal(err)
	}
	var after rewardsResponse
	getJSON(t, ts.URL+"/v1/rewards", &after)

	byName := func(resp rewardsResponse, name string) Participant {
		for _, p := range resp.Participants {
			if p.Name == name {
				return p
			}
		}
		t.Fatalf("no participant %q", name)
		return Participant{}
	}
	for _, name := range []string{"b", "c"} {
		p := byName(after, name)
		if p.Reward != 0 || !p.Quarantined {
			t.Fatalf("%s after quarantine of b: reward=%v quarantined=%v, want 0/true", name, p.Reward, p.Quarantined)
		}
		if p.Contribution != byName(before, name).Contribution {
			t.Fatalf("%s: quarantine changed the raw contribution", name)
		}
	}
	for _, name := range []string{"a", "d"} {
		p := byName(after, name)
		if p.Quarantined {
			t.Fatalf("%s wrongly masked by quarantine of b", name)
		}
		if p.Reward != byName(before, name).Reward {
			t.Fatalf("%s: reward changed from %v to %v; quarantine must not disturb others", name, byName(before, name).Reward, p.Reward)
		}
	}
	if after.Total != before.Total {
		t.Fatalf("total contribution changed %v -> %v", before.Total, after.Total)
	}
	if after.TotalReward >= before.TotalReward {
		t.Fatalf("served total reward %v not reduced from %v", after.TotalReward, before.TotalReward)
	}

	// Unquarantine restores the exact pre-quarantine table.
	if err := s.Unquarantine("b"); err != nil {
		t.Fatal(err)
	}
	var restored rewardsResponse
	getJSON(t, ts.URL+"/v1/rewards", &restored)
	if restored.TotalReward != before.TotalReward {
		t.Fatalf("total reward after unquarantine = %v, want %v", restored.TotalReward, before.TotalReward)
	}
	for _, p := range restored.Participants {
		if p.Quarantined {
			t.Fatalf("%s still flagged after unquarantine", p.Name)
		}
	}
}

// TestQuarantineInvalidatesRewardCache is the regression test for the
// stale-cache bug class: the versioned cache must rebuild on quarantine
// and unquarantine, never serving a pre-quarantine table.
func TestQuarantineInvalidatesRewardCache(t *testing.T) {
	s, ts := newTestServer(t)
	buildQuarantineFixture(t, s)

	read := func() (rewardsResponse, leaderboardResponse) {
		var rw rewardsResponse
		getJSON(t, ts.URL+"/v1/rewards", &rw)
		var lb leaderboardResponse
		getJSON(t, ts.URL+"/v1/leaderboard?k=10", &lb)
		return rw, lb
	}
	// Prime the cache, then read twice to pin the cached view.
	read()
	before, _ := read()

	if err := s.Quarantine("d"); err != nil {
		t.Fatal(err)
	}
	rw, lb := read()
	for _, p := range rw.Participants {
		if p.Name == "d" && (p.Reward != 0 || !p.Quarantined) {
			t.Fatalf("rewards served stale post-quarantine view: %+v", p)
		}
	}
	for _, p := range lb.Leaders {
		if p.Name == "d" && p.Reward != 0 {
			t.Fatalf("leaderboard served stale post-quarantine view: %+v", p)
		}
	}

	if err := s.Unquarantine("d"); err != nil {
		t.Fatal(err)
	}
	rw, _ = read()
	for i, p := range rw.Participants {
		if p != before.Participants[i] {
			t.Fatalf("stale view after unquarantine: got %+v, want %+v", p, before.Participants[i])
		}
	}
}

func TestQuarantineErrors(t *testing.T) {
	s, _ := newTestServer(t)
	buildQuarantineFixture(t, s)

	if err := s.Quarantine("ghost"); !errors.Is(err, ErrUnknownParticipant) {
		t.Fatalf("quarantine of unknown = %v, want ErrUnknownParticipant", err)
	}
	if err := s.Unquarantine("a"); !errors.Is(err, ErrNotQuarantined) {
		t.Fatalf("unquarantine of unflagged = %v, want ErrNotQuarantined", err)
	}
	if err := s.Quarantine("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Quarantine("a"); !errors.Is(err, ErrAlreadyQuarantined) {
		t.Fatalf("duplicate quarantine = %v, want ErrAlreadyQuarantined", err)
	}
	if got := s.QuarantinedNames(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("QuarantinedNames = %v, want [a]", got)
	}
}

// TestQuarantineRecoversFromJournal proves the flag is durable: a fresh
// server recovered from the journal serves byte-identical rewards.
func TestQuarantineRecoversFromJournal(t *testing.T) {
	m, err := geometric.Default(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var log bytes.Buffer
	s := New(m, WithJournal(journal.NewWriter(&log, 1)))
	buildQuarantineFixture(t, s)
	if err := s.Quarantine("b"); err != nil {
		t.Fatal(err)
	}
	if err := s.Quarantine("d"); err != nil {
		t.Fatal(err)
	}
	if err := s.Unquarantine("d"); err != nil {
		t.Fatal(err)
	}
	want := httpBody(t, s, "/v1/rewards")

	events, err := journal.Read(bytes.NewReader(log.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(m)
	if err := Recover(s2, nil, events); err != nil {
		t.Fatal(err)
	}
	if got := httpBody(t, s2, "/v1/rewards"); got != want {
		t.Fatalf("recovered rewards differ:\n got %s\nwant %s", got, want)
	}
	if got := s2.QuarantinedNames(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("recovered quarantine set = %v, want [b]", got)
	}
}

// TestQuarantineSnapshotRoundTrip proves flags survive the snapshot
// path (and the snapshot+suffix recovery combination).
func TestQuarantineSnapshotRoundTrip(t *testing.T) {
	m, err := geometric.Default(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var log bytes.Buffer
	s := New(m, WithJournal(journal.NewWriter(&log, 1)))
	buildQuarantineFixture(t, s)
	if err := s.Quarantine("b"); err != nil {
		t.Fatal(err)
	}
	snap := s.SnapshotState()
	if len(snap.Quarantined) != 1 || snap.Quarantined[0] != "b" {
		t.Fatalf("snapshot.Quarantined = %v, want [b]", snap.Quarantined)
	}
	// JSON round trip, as the checkpointer stores it.
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}

	// Events after the snapshot: one more quarantine.
	if err := s.Unquarantine("b"); err != nil {
		t.Fatal(err)
	}
	if err := s.Quarantine("d"); err != nil {
		t.Fatal(err)
	}
	want := httpBody(t, s, "/v1/rewards")

	events, err := journal.Read(bytes.NewReader(log.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(m)
	if err := Recover(s2, &decoded, events); err != nil {
		t.Fatal(err)
	}
	if got := httpBody(t, s2, "/v1/rewards"); got != want {
		t.Fatalf("snapshot+suffix recovery differs:\n got %s\nwant %s", got, want)
	}
}

// TestQuarantineReplicates proves a follower applying the primary's
// journal stream reaches the same quarantine-consistent reads.
func TestQuarantineReplicates(t *testing.T) {
	m, err := geometric.Default(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var log bytes.Buffer
	primary := New(m, WithJournal(journal.NewWriter(&log, 1)))
	buildQuarantineFixture(t, primary)
	if err := primary.Quarantine("b"); err != nil {
		t.Fatal(err)
	}

	events, err := journal.Read(bytes.NewReader(log.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	follower := New(m)
	if err := follower.ApplyReplicated(events); err != nil {
		t.Fatal(err)
	}
	if got, want := httpBody(t, follower, "/v1/rewards"), httpBody(t, primary, "/v1/rewards"); got != want {
		t.Fatalf("follower rewards differ:\n got %s\nwant %s", got, want)
	}
	if !follower.IsQuarantined("b") {
		t.Fatal("follower did not apply the quarantine record")
	}
}

// httpBody serves one GET through the real handler and returns the body.
func httpBody(t *testing.T, s *Server, path string) string {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", path, rec.Code, rec.Body.String())
	}
	return rec.Body.String()
}
