package server

import (
	"bytes"
	"testing"

	"incentivetree/internal/tree"
)

// FuzzSnapshotRoundTrip throws arbitrary bytes at DecodeSnapshot and
// checks the binary snapshot codec's safety properties:
//
//  1. No input panics; corrupt input is rejected with an error, never
//     decoded into a tree that fails validation.
//  2. Decoding is canonical: any binary snapshot the decoder accepts
//     re-encodes to exactly the input bytes.
func FuzzSnapshotRoundTrip(f *testing.F) {
	// Seed with real snapshots: labelled chain, star with quarantines,
	// bare single node.
	chain := tree.New()
	p := tree.Root
	for i, name := range []string{"alice", "bob", "carol"} {
		id, _ := chain.Add(p, float64(i)+0.5)
		chain.SetLabel(id, name)
		p = id
	}
	star := tree.FromSpecs(tree.Star(2, 1, 1, 1))
	for _, snap := range []*Snapshot{
		{LastSeq: 3, Tree: chain},
		{LastSeq: 9, Tree: star, Quarantined: []string{"2", "4"}},
		{Tree: tree.New()},
	} {
		data, err := EncodeSnapshotBinary(snap)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	// A JSON document, so the fallback path gets fuzzed too.
	f.Add([]byte(`{"last_seq":1,"tree":{"nodes":[]}}`))
	// Magic with a garbage body.
	f.Add(append([]byte("ITS1"), 0x01, 0xff, 0xff))

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeSnapshot(data)
		if err != nil {
			return // rejected cleanly
		}
		if snap.Tree != nil {
			if verr := snap.Tree.Validate(); verr != nil {
				t.Fatalf("decoded snapshot holds an invalid tree: %v", verr)
			}
		}
		if !IsBinarySnapshot(data) {
			return // JSON tolerates whitespace/field-order variants
		}
		reenc, err := EncodeSnapshotBinary(snap)
		if err != nil {
			t.Fatalf("accepted snapshot failed to re-encode: %v", err)
		}
		if !bytes.Equal(data, reenc) {
			t.Fatalf("decode∘encode not identity:\nin:  %x\nout: %x", data, reenc)
		}
	})
}
