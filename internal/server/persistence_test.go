package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"incentivetree/internal/core"
	"incentivetree/internal/geometric"
	"incentivetree/internal/journal"
)

func mech(t *testing.T) core.Mechanism {
	t.Helper()
	m, err := geometric.Default(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func populate(t *testing.T, s *Server) {
	t.Helper()
	if err := s.Join("ada", ""); err != nil {
		t.Fatal(err)
	}
	if err := s.Join("bo", "ada"); err != nil {
		t.Fatal(err)
	}
	if err := s.Contribute("ada", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Contribute("bo", 3); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s := New(mech(t))
	populate(t, s)
	snap := s.SnapshotState()

	restored := New(mech(t))
	if err := restored.RestoreState(snap); err != nil {
		t.Fatal(err)
	}
	p, err := restored.participant("bo")
	if err != nil {
		t.Fatal(err)
	}
	if p.Contribution != 3 || p.Sponsor != "ada" {
		t.Fatalf("restored bo = %+v", p)
	}
	// Writes continue to work after restore.
	if err := restored.Contribute("bo", 1); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotIsIsolatedCopy(t *testing.T) {
	s := New(mech(t))
	populate(t, s)
	snap := s.SnapshotState()
	if err := s.Contribute("ada", 10); err != nil {
		t.Fatal(err)
	}
	if got := snap.Tree.Total(); got != 5 {
		t.Fatalf("snapshot mutated: total = %v", got)
	}
}

func TestRestoreRejectsBadSnapshots(t *testing.T) {
	s := New(mech(t))
	if err := s.RestoreState(Snapshot{}); err == nil {
		t.Fatal("nil tree should be rejected")
	}
	// Duplicate names.
	dupe := New(mech(t))
	populate(t, dupe)
	snap := dupe.SnapshotState()
	if err := snap.Tree.SetLabel(2, "ada"); err != nil {
		t.Fatal(err)
	}
	if err := s.RestoreState(snap); err == nil {
		t.Fatal("duplicate names should be rejected")
	}
}

func TestJournalRecordsWrites(t *testing.T) {
	var wal bytes.Buffer
	s := New(mech(t), WithJournal(journal.NewWriter(&wal, 1)))
	populate(t, s)
	events, err := journal.Read(&wal)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("journal has %d events, want 4", len(events))
	}
	if events[0].Kind != journal.KindJoin || events[2].Kind != journal.KindContribute {
		t.Fatalf("unexpected kinds: %+v", events)
	}
}

func TestRecoverFromJournalOnly(t *testing.T) {
	var wal bytes.Buffer
	s := New(mech(t), WithJournal(journal.NewWriter(&wal, 1)))
	populate(t, s)
	want := s.SnapshotState()

	events, err := journal.Read(&wal)
	if err != nil {
		t.Fatal(err)
	}
	fresh := New(mech(t))
	if err := Recover(fresh, nil, events); err != nil {
		t.Fatal(err)
	}
	if !fresh.SnapshotState().Tree.Equal(want.Tree) {
		t.Fatal("journal-only recovery diverged")
	}
}

func TestRecoverFromSnapshotPlusSuffix(t *testing.T) {
	var wal bytes.Buffer
	s := New(mech(t), WithJournal(journal.NewWriter(&wal, 1)))
	if err := s.Join("ada", ""); err != nil {
		t.Fatal(err)
	}
	if err := s.Contribute("ada", 2); err != nil {
		t.Fatal(err)
	}
	snap := s.SnapshotState() // covers seq 1-2
	if err := s.Join("bo", "ada"); err != nil {
		t.Fatal(err)
	}
	if err := s.Contribute("bo", 5); err != nil {
		t.Fatal(err)
	}
	want := s.SnapshotState()

	events, err := journal.Read(&wal)
	if err != nil {
		t.Fatal(err)
	}
	fresh := New(mech(t))
	if err := Recover(fresh, &snap, events); err != nil {
		t.Fatal(err)
	}
	if !fresh.SnapshotState().Tree.Equal(want.Tree) {
		t.Fatalf("snapshot+suffix recovery diverged:\n%s\nvs\n%s",
			fresh.SnapshotState().Tree.Render(), want.Tree.Render())
	}
	if fresh.SnapshotState().LastSeq != want.LastSeq {
		t.Fatalf("LastSeq = %d, want %d", fresh.SnapshotState().LastSeq, want.LastSeq)
	}
}

func TestSnapshotAndRestoreEndpoints(t *testing.T) {
	s, ts := newTestServer(t)
	if err := s.Join("ada", ""); err != nil {
		t.Fatal(err)
	}
	if err := s.Contribute("ada", 4); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	getJSON(t, ts.URL+"/v1/snapshot", &snap)
	if snap.Tree == nil || snap.Tree.Total() != 4 {
		t.Fatalf("snapshot = %+v", snap)
	}

	// Restore into a second server over HTTP.
	_, ts2 := newTestServer(t)
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts2.URL+"/v1/restore", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restore status = %d", resp.StatusCode)
	}
	var ada Participant
	getJSON(t, ts2.URL+"/v1/participants/ada", &ada)
	if ada.Contribution != 4 {
		t.Fatalf("restored ada = %+v", ada)
	}

	// Malformed restore.
	resp, err = http.Post(ts2.URL+"/v1/restore", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed restore status = %d", resp.StatusCode)
	}
}
