package server

import (
	"net/http"
	"sort"
	"strconv"

	"incentivetree/internal/query"
)

// queryView is the cached read-side view of one committed state: the
// full reward table sorted by name (GET /v1/rewards) and the same
// participants ranked by reward (GET /v1/leaderboard). One view is
// built per committed batch version, so bursts of reads between writes
// cost one mechanism evaluation total.
type queryView struct {
	rewards rewardsResponse
	leaders []Participant // by reward desc, name asc on ties
}

// initCache wires the versioned read cache; called at the end of New
// so it sees the final metrics registry and labels.
func (s *Server) initCache() {
	s.cache = query.New(s.stateVersion, s.buildQueryView)
	if s.metrics != nil {
		s.cache.Counters(
			s.metrics.Counter("itree_rewards_cache_hits_total",
				"Reward-table reads served from the versioned cache.", s.labels...),
			s.metrics.Counter("itree_rewards_cache_misses_total",
				"Reward-table cache rebuilds (one mechanism evaluation each).", s.labels...),
		)
	}
}

// stateVersion reads the commit version: bumped once per applied batch
// and per state restore, so any cached view keyed to it is a
// consistent batch-boundary snapshot — never a torn mid-batch state
// (batches hold the write lock end to end).
func (s *Server) stateVersion() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// buildQueryView evaluates the mechanism once and derives both read
// views under the read lock, returning the version they correspond to.
func (s *Server) buildQueryView() (uint64, *queryView, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	// servedRewardsLocked zeroes quarantined subtrees, so both views —
	// and TotalReward, which sums the served table — reflect withheld
	// payouts while Total (raw contribution) stays as recorded.
	rewards, mask, err := s.servedRewardsLocked()
	if err != nil {
		return 0, nil, err
	}
	resp := rewardsResponse{
		Mechanism:    s.mech.Name(),
		Total:        s.tree.Total(),
		TotalReward:  rewards.Total(),
		Budget:       s.mech.Params().Phi * s.tree.Total(),
		Participants: make([]Participant, 0, s.tree.NumParticipants()),
	}
	for _, u := range s.tree.Nodes() {
		resp.Participants = append(resp.Participants, s.viewLocked(u, rewards, mask))
	}
	// Sorted by name so the table is deterministic even across snapshot
	// restores, which renumber node ids in DFS preorder.
	sort.Slice(resp.Participants, func(i, j int) bool {
		return resp.Participants[i].Name < resp.Participants[j].Name
	})
	leaders := make([]Participant, len(resp.Participants))
	copy(leaders, resp.Participants)
	sort.SliceStable(leaders, func(i, j int) bool {
		return leaders[i].Reward > leaders[j].Reward
	})
	return s.version, &queryView{rewards: resp, leaders: leaders}, nil
}

func (s *Server) handleRewards(w http.ResponseWriter, _ *http.Request) {
	view, err := s.cache.Get()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, view.rewards)
}

// leaderboardResponse is the wire format of GET /v1/leaderboard.
type leaderboardResponse struct {
	Mechanism    string        `json:"mechanism"`
	K            int           `json:"k"`
	Participants int           `json:"participants"`
	Leaders      []Participant `json:"leaders"`
}

// handleLeaderboard serves the top-K participants by reward from the
// versioned cache. ?k=N defaults to 10 and is clamped to the
// participant count; a malformed or non-positive k is a 400.
func (s *Server) handleLeaderboard(w http.ResponseWriter, r *http.Request) {
	k := 10
	if q := r.URL.Query().Get("k"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			writeJSON(w, http.StatusBadRequest, errorResponse{"k must be a positive integer, got " + strconv.Quote(q)})
			return
		}
		k = n
	}
	view, err := s.cache.Get()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{err.Error()})
		return
	}
	if k > len(view.leaders) {
		k = len(view.leaders)
	}
	writeJSON(w, http.StatusOK, leaderboardResponse{
		Mechanism:    s.mech.Name(),
		K:            k,
		Participants: len(view.leaders),
		Leaders:      view.leaders[:k],
	})
}
