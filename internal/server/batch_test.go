package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"incentivetree/internal/core"
	"incentivetree/internal/geometric"
	"incentivetree/internal/ingest"
	"incentivetree/internal/journal"
	"incentivetree/internal/obs"
)

// failWriter passes writes through until fail is set.
type failWriter struct {
	w    io.Writer
	fail bool
}

func (f *failWriter) Write(p []byte) (int, error) {
	if f.fail {
		return 0, errors.New("disk full")
	}
	return f.w.Write(p)
}

func newBatchedServer(t *testing.T, o ingest.Options) (*Server, *httptest.Server) {
	t.Helper()
	m, err := geometric.Default(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s := New(m, WithBatching(o))
	t.Cleanup(s.CloseIngest)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// TestContributeRejectsNonFinite: NaN fails every comparison, so the
// positivity check alone would admit it — and a NaN contribution would
// poison every reward downstream.
func TestContributeRejectsNonFinite(t *testing.T) {
	s, _ := newTestServer(t)
	if err := s.Join("alice", ""); err != nil {
		t.Fatal(err)
	}
	for _, amount := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		err := s.Contribute("alice", amount)
		if err == nil {
			t.Fatalf("Contribute(%v) succeeded", amount)
		}
		if !strings.Contains(err.Error(), "finite") {
			t.Fatalf("Contribute(%v) error = %v, want mention of finiteness", amount, err)
		}
	}
	p, err := s.participant("alice")
	if err != nil {
		t.Fatal(err)
	}
	if p.Contribution != 0 {
		t.Fatalf("contribution after rejected amounts = %v, want 0", p.Contribution)
	}
}

// TestRollbackOnJournalFailure injects a journal write failure and
// checks every in-memory mutation of the failed batch is undone, so
// memory never diverges from what a restart would replay. Runs with
// and without the incremental engine (which needs a rebuild to roll
// back its derived sums).
func TestRollbackOnJournalFailure(t *testing.T) {
	for _, useEngine := range []bool{false, true} {
		t.Run(fmt.Sprintf("incremental=%v", useEngine), func(t *testing.T) {
			m, err := geometric.Default(core.DefaultParams())
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			fw := &failWriter{w: &buf}
			opts := []Option{WithJournal(journal.NewWriter(fw, 1))}
			if useEngine {
				opts = append(opts, WithIncremental())
			}
			s := New(m, opts...)
			if err := s.Join("alice", ""); err != nil {
				t.Fatal(err)
			}
			if err := s.Contribute("alice", 2); err != nil {
				t.Fatal(err)
			}

			fw.fail = true
			if err := s.Join("bob", "alice"); err == nil || !strings.Contains(err.Error(), "journal append") {
				t.Fatalf("join during failure = %v, want journal append error", err)
			}
			if _, err := s.participant("bob"); err == nil {
				t.Fatal("bob exists after rolled-back join")
			}
			if err := s.Contribute("alice", 5); err == nil {
				t.Fatal("contribute during journal failure succeeded")
			}
			p, err := s.participant("alice")
			if err != nil {
				t.Fatal(err)
			}
			if p.Contribution != 2 {
				t.Fatalf("alice contribution = %v, want 2 (rolled back)", p.Contribution)
			}

			// A mixed batch fails atomically: the join and the contribute
			// both report the append error and both roll back.
			results := s.ApplyBatch([]ingest.Op{
				{Kind: ingest.OpJoin, Name: "carol", Sponsor: "alice"},
				{Kind: ingest.OpContribute, Name: "alice", Amount: 3},
			})
			for i, r := range results {
				if r.Err == nil || !strings.Contains(r.Err.Error(), "journal append") {
					t.Fatalf("batch result %d = %v, want journal append error", i, r.Err)
				}
			}
			if _, err := s.participant("carol"); err == nil {
				t.Fatal("carol exists after rolled-back batch")
			}
			if p, _ := s.participant("alice"); p.Contribution != 2 {
				t.Fatalf("alice contribution after rolled-back batch = %v, want 2", p.Contribution)
			}

			// The deployment heals once the disk does, and the journal
			// replays to exactly the in-memory state.
			fw.fail = false
			if err := s.Join("bob", "alice"); err != nil {
				t.Fatalf("join after heal: %v", err)
			}
			if err := s.Contribute("alice", 1); err != nil {
				t.Fatal(err)
			}
			events, err := journal.Read(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("journal unreadable after failures: %v", err)
			}
			st, err := journal.Replay(nil, events)
			if err != nil {
				t.Fatal(err)
			}
			if st.Tree.NumParticipants() != 2 || st.Tree.Total() != 3 {
				t.Fatalf("replayed state: %d participants, total %v, want 2 and 3",
					st.Tree.NumParticipants(), st.Tree.Total())
			}
			if s.LastSeq() != st.LastSeq {
				t.Fatalf("server lastSeq %d != replayed %d", s.LastSeq(), st.LastSeq)
			}
		})
	}
}

// TestBatchMaxOneByteIdentity: the same operation sequence driven
// through the ingest pipeline at -batch-max=1 must produce a journal
// byte-identical to the direct (unbatched) write path.
func TestBatchMaxOneByteIdentity(t *testing.T) {
	type op struct {
		join    bool
		name    string
		sponsor string
		amount  float64
	}
	script := []op{
		{join: true, name: "ada"},
		{join: true, name: "bob", sponsor: "ada"},
		{name: "ada", amount: 1.5},
		{name: "bob", amount: 0.25},
	}
	for i := 0; i < 20; i++ {
		script = append(script,
			op{join: true, name: fmt.Sprintf("p%03d", i), sponsor: "ada"},
			op{name: fmt.Sprintf("p%03d", i), amount: float64(i) + 0.125},
		)
	}
	run := func(batched bool) []byte {
		m, err := geometric.Default(core.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		opts := []Option{WithJournal(journal.NewWriter(&buf, 1))}
		if batched {
			opts = append(opts, WithBatching(ingest.Options{BatchMax: 1}))
		}
		s := New(m, opts...)
		defer s.CloseIngest()
		ctx := context.Background()
		for _, o := range script {
			var err error
			switch {
			case o.join && batched:
				_, err = s.SubmitJoin(ctx, o.name, o.sponsor)
			case o.join:
				err = s.Join(o.name, o.sponsor)
			case batched:
				_, err = s.SubmitContribute(ctx, o.name, o.amount)
			default:
				err = s.Contribute(o.name, o.amount)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	direct, batched := run(false), run(true)
	if !bytes.Equal(direct, batched) {
		t.Fatalf("journals differ:\ndirect:\n%s\nbatched:\n%s", direct, batched)
	}
}

// TestBatchedWritesOverHTTP drives the full pipeline end to end:
// concurrent HTTP writes through the committer, then reads from the
// versioned cache.
func TestBatchedWritesOverHTTP(t *testing.T) {
	s, ts := newBatchedServer(t, ingest.Options{BatchMax: 16})
	if err := s.Join("seed", ""); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("user%d", i)
			if resp := postJSON(t, ts.URL+"/v1/join", map[string]string{"name": name, "sponsor": "seed"}); resp.StatusCode != http.StatusCreated {
				t.Errorf("join %s status = %d", name, resp.StatusCode)
				return
			}
			if resp := postJSON(t, ts.URL+"/v1/contribute", map[string]any{"name": name, "amount": 1.0}); resp.StatusCode != http.StatusOK {
				t.Errorf("contribute %s status = %d", name, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	var resp rewardsResponse
	getJSON(t, ts.URL+"/v1/rewards", &resp)
	if len(resp.Participants) != 21 || resp.Total != 20 {
		t.Fatalf("participants = %d total = %v, want 21 and 20", len(resp.Participants), resp.Total)
	}
	// Validation errors stay per-op under batching.
	if resp := postJSON(t, ts.URL+"/v1/join", map[string]string{"name": "seed"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("duplicate join status = %d", resp.StatusCode)
	}
}

func TestLeaderboardEndpoint(t *testing.T) {
	s, ts := newTestServer(t)
	for _, name := range []string{"alice", "bob", "cora"} {
		sponsor := ""
		if name != "alice" {
			sponsor = "alice"
		}
		if err := s.Join(name, sponsor); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Contribute("bob", 5); err != nil {
		t.Fatal(err)
	}
	if err := s.Contribute("cora", 2); err != nil {
		t.Fatal(err)
	}

	var resp leaderboardResponse
	getJSON(t, ts.URL+"/v1/leaderboard", &resp)
	if resp.K != 3 || resp.Participants != 3 || len(resp.Leaders) != 3 {
		t.Fatalf("default leaderboard = %+v (k should clamp to population)", resp)
	}
	for i := 1; i < len(resp.Leaders); i++ {
		if resp.Leaders[i].Reward > resp.Leaders[i-1].Reward {
			t.Fatalf("leaders not sorted by reward: %+v", resp.Leaders)
		}
	}

	var top1 leaderboardResponse
	getJSON(t, ts.URL+"/v1/leaderboard?k=1", &top1)
	if top1.K != 1 || len(top1.Leaders) != 1 {
		t.Fatalf("k=1 leaderboard = %+v", top1)
	}
	if top1.Leaders[0].Name != resp.Leaders[0].Name {
		t.Fatalf("k=1 top = %s, want %s", top1.Leaders[0].Name, resp.Leaders[0].Name)
	}

	for _, q := range []string{"0", "-3", "abc", "1.5"} {
		r := getJSON(t, ts.URL+"/v1/leaderboard?k="+q, nil)
		if r.StatusCode != http.StatusBadRequest {
			t.Fatalf("k=%s status = %d, want 400", q, r.StatusCode)
		}
	}
}

// TestWriteOpErrorMapping checks the write path's error-to-HTTP
// contract: admission-control sheds are 429 with a Retry-After hint
// and a JSON body; shutdown and abandonment are 503; everything else
// is the op's own 400.
func TestWriteOpErrorMapping(t *testing.T) {
	cases := []struct {
		err        error
		status     int
		retryAfter string
	}{
		{ingest.ErrQueueFull, http.StatusTooManyRequests, "1"},
		{ingest.ErrClosed, http.StatusServiceUnavailable, ""},
		{context.Canceled, http.StatusServiceUnavailable, ""},
		{context.DeadlineExceeded, http.StatusServiceUnavailable, ""},
		{errors.New("amount must be positive"), http.StatusBadRequest, ""},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		writeOpError(rec, tc.err)
		if rec.Code != tc.status {
			t.Errorf("%v: status = %d, want %d", tc.err, rec.Code, tc.status)
		}
		if got := rec.Header().Get("Retry-After"); got != tc.retryAfter {
			t.Errorf("%v: Retry-After = %q, want %q", tc.err, got, tc.retryAfter)
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("%v: Content-Type = %q", tc.err, ct)
		}
		if !strings.Contains(rec.Body.String(), `"error"`) {
			t.Errorf("%v: body %q lacks JSON error field", tc.err, rec.Body.String())
		}
	}
}

// TestRewardsCacheVersioning: repeated reads between writes hit the
// versioned cache; any committed write invalidates it exactly once.
func TestRewardsCacheVersioning(t *testing.T) {
	m, err := geometric.Default(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s := New(m, WithMetrics(reg))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	if err := s.Join("alice", ""); err != nil {
		t.Fatal(err)
	}

	hits := reg.Counter("itree_rewards_cache_hits_total", "")
	misses := reg.Counter("itree_rewards_cache_misses_total", "")

	getJSON(t, ts.URL+"/v1/rewards", nil)
	getJSON(t, ts.URL+"/v1/rewards", nil)
	getJSON(t, ts.URL+"/v1/leaderboard", nil) // same view, same cache
	if h, m := hits.Value(), misses.Value(); h != 2 || m != 1 {
		t.Fatalf("after reads: hits=%d misses=%d, want 2/1", h, m)
	}

	if err := s.Contribute("alice", 1); err != nil {
		t.Fatal(err)
	}
	var resp rewardsResponse
	getJSON(t, ts.URL+"/v1/rewards", &resp)
	if resp.Total != 1 {
		t.Fatalf("post-write total = %v, want 1 (stale cache served?)", resp.Total)
	}
	if h, m := hits.Value(), misses.Value(); h != 2 || m != 2 {
		t.Fatalf("after write: hits=%d misses=%d, want 2/2", h, m)
	}

	// A state restore must also invalidate, even though lastSeq moves
	// backwards.
	snap := s.SnapshotState()
	if err := s.Contribute("alice", 5); err != nil {
		t.Fatal(err)
	}
	if err := s.RestoreState(snap); err != nil {
		t.Fatal(err)
	}
	getJSON(t, ts.URL+"/v1/rewards", &resp)
	if resp.Total != 1 {
		t.Fatalf("post-restore total = %v, want 1", resp.Total)
	}
}

// TestShedUnderBackpressure deterministically wedges the committer
// behind a held read lock, fills the depth-1 queue, and checks the
// next HTTP write sheds with 429.
func TestShedUnderBackpressure(t *testing.T) {
	s, ts := newBatchedServer(t, ingest.Options{BatchMax: 1, QueueDepth: 1})
	if err := s.Join("alice", ""); err != nil {
		t.Fatal(err)
	}

	held := make(chan struct{})
	release := make(chan struct{})
	snapDone := make(chan struct{})
	go func() {
		s.SnapshotAt(func() {
			close(held)
			<-release
		})
		close(snapDone)
	}()
	<-held

	// Two submits: once the queue reads 1 with both still pending, one
	// op is necessarily in flight (blocked on the held lock) and the
	// other fills the queue — steady state until release.
	resc := make(chan error, 8)
	submit := func() {
		go func() {
			_, err := s.SubmitContribute(context.Background(), "alice", 1)
			resc <- err
		}()
	}
	pending := 2
	submit()
	submit()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if s.IngestQueueLen() == 1 && pending == 2 {
			break
		}
		select {
		case err := <-resc:
			// Nothing can commit while the lock is held, so an early
			// result can only be a shed from racing the first dequeue.
			if !errors.Is(err, ingest.ErrQueueFull) {
				t.Fatalf("unexpected early result: %v", err)
			}
			pending--
			submit()
			pending++
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("pipeline never wedged: queue=%d", s.IngestQueueLen())
		}
		time.Sleep(time.Millisecond)
	}

	resp := postJSON(t, ts.URL+"/v1/contribute", map[string]any{"name": "alice", "amount": 1.0})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", got)
	}
	var body errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error == "" {
		t.Fatalf("429 body not a JSON error: %v %+v", err, body)
	}

	close(release)
	<-snapDone
	for i := 0; i < pending; i++ {
		if err := <-resc; err != nil {
			t.Fatalf("wedged op failed after release: %v", err)
		}
	}
}
