package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"

	"incentivetree/internal/core"
	"incentivetree/internal/geometric"
	"incentivetree/internal/numeric"
	"incentivetree/internal/tdrm"
)

// TestWithIncrementalMatchesFullEvaluation drives a geometric server
// with the incremental engine enabled and cross-checks every
// participant's reward against a plain full-evaluation server fed the
// same workload.
func TestWithIncrementalMatchesFullEvaluation(t *testing.T) {
	p := core.DefaultParams()
	m1, err := geometric.Default(p)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := geometric.Default(p)
	if err != nil {
		t.Fatal(err)
	}
	fast := New(m1, WithIncremental())
	slow := New(m2)

	rng := rand.New(rand.NewSource(3))
	names := []string{}
	for i := 0; i < 120; i++ {
		if len(names) == 0 || rng.Float64() < 0.5 {
			name := fmt.Sprintf("p%03d", len(names))
			sponsor := ""
			if len(names) > 0 {
				sponsor = names[rng.Intn(len(names))]
			}
			for _, s := range []*Server{fast, slow} {
				if err := s.Join(name, sponsor); err != nil {
					t.Fatalf("join %s: %v", name, err)
				}
			}
			names = append(names, name)
		} else {
			name := names[rng.Intn(len(names))]
			amount := rng.Float64() * 3
			for _, s := range []*Server{fast, slow} {
				if err := s.Contribute(name, amount); err != nil {
					t.Fatalf("contribute %s: %v", name, err)
				}
			}
		}
	}

	for _, name := range names {
		pf, err := fast.participant(name)
		if err != nil {
			t.Fatal(err)
		}
		ps, err := slow.participant(name)
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.AlmostEqual(pf.Reward, ps.Reward, 1e-9) {
			t.Fatalf("%s: incremental reward %v != full %v", name, pf.Reward, ps.Reward)
		}
	}
}

// TestWithIncrementalFallsBackForTDRM checks that mechanisms without a
// local decomposition silently keep full evaluation.
func TestWithIncrementalFallsBackForTDRM(t *testing.T) {
	m, err := tdrm.Default(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s := New(m, WithIncremental())
	if s.engine != nil {
		t.Fatal("TDRM must not get an incremental engine")
	}
	if err := s.Join("ada", ""); err != nil {
		t.Fatal(err)
	}
	if err := s.Contribute("ada", 2); err != nil {
		t.Fatal(err)
	}
	if p, err := s.participant("ada"); err != nil || p.Contribution != 2 {
		t.Fatalf("participant = %+v, %v", p, err)
	}
}

// TestWithIncrementalSurvivesRestore checks the engine is rebuilt from
// the restored tree, not left pointing at the old one.
func TestWithIncrementalSurvivesRestore(t *testing.T) {
	m, err := geometric.Default(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s := New(m, WithIncremental())
	for _, step := range [][2]string{{"ada", ""}, {"bo", "ada"}, {"cy", "bo"}} {
		if err := s.Join(step[0], step[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Contribute("cy", 4); err != nil {
		t.Fatal(err)
	}
	snap := s.SnapshotState()

	m2, err := geometric.Default(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(m2, WithIncremental())
	if err := s2.RestoreState(snap); err != nil {
		t.Fatal(err)
	}
	if s2.engine == nil {
		t.Fatal("restore must rebuild the engine")
	}
	// Writes against the restored engine stay consistent with full eval.
	if err := s2.Contribute("ada", 1); err != nil {
		t.Fatal(err)
	}
	want, err := s2.mech.Rewards(s2.tree)
	if err != nil {
		t.Fatal(err)
	}
	got := s2.engine.Rewards()
	for id := range want {
		if !numeric.AlmostEqual(got[id], want[id], 1e-9) {
			t.Fatalf("node %d: engine %v != full %v", id, got[id], want[id])
		}
	}
}

// TestRewardsSortedByName pins the /v1/rewards participant order to the
// name sort: snapshot round-trips renumber NodeIDs in DFS preorder, so
// id order would make reward tables incomparable across recovery.
func TestRewardsSortedByName(t *testing.T) {
	m, err := geometric.Default(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s := New(m)
	// Join in an order that differs from the name sort.
	for _, step := range [][2]string{{"zoe", ""}, {"mia", "zoe"}, {"ada", "zoe"}, {"bo", "mia"}} {
		if err := s.Join(step[0], step[1]); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/rewards")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body rewardsResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Participants) != 4 {
		t.Fatalf("%d participants", len(body.Participants))
	}
	if !sort.SliceIsSorted(body.Participants, func(i, j int) bool {
		return body.Participants[i].Name < body.Participants[j].Name
	}) {
		t.Fatalf("participants not sorted by name: %+v", body.Participants)
	}
}
