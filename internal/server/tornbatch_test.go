package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"incentivetree/internal/core"
	"incentivetree/internal/geometric"
	"incentivetree/internal/ingest"
	"incentivetree/internal/journal"
)

// tornWriter passes writes through until torn is set; from then on it
// persists only a fragment of the first line of each write before
// failing — the disk-full-mid-write shape, which leaves a torn tail on
// disk rather than the clean nothing that failWriter models.
type tornWriter struct {
	w    io.Writer
	torn bool
}

func (tw *tornWriter) Write(p []byte) (int, error) {
	if !tw.torn {
		return tw.w.Write(p)
	}
	cut := len(p) / 3
	if nl := bytes.IndexByte(p, '\n'); nl >= 0 && cut >= nl {
		cut = nl / 2 // stay inside the first line: no complete event may land
	}
	tw.w.Write(p[:cut])
	return cut, errors.New("injected torn write")
}

// TestAppendBatchTornWriteReplayIdentity injects a mid-batch journal
// failure that leaves partial bytes on disk and checks the recovery
// contract end to end: the server rolls the whole batch back, the
// journal reads back as a torn tail (not corruption), and a fresh
// replay of the surviving bytes rebuilds a tree byte-identical to the
// in-memory one — before and after the log is truncated and healed.
func TestAppendBatchTornWriteReplayIdentity(t *testing.T) {
	for _, useEngine := range []bool{false, true} {
		t.Run(fmt.Sprintf("incremental=%v", useEngine), func(t *testing.T) {
			m, err := geometric.Default(core.DefaultParams())
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			tw := &tornWriter{w: &buf}
			opts := []Option{WithJournal(journal.NewWriter(tw, 1))}
			if useEngine {
				opts = append(opts, WithIncremental())
			}
			s := New(m, opts...)
			for _, op := range []ingest.Op{
				{Kind: ingest.OpJoin, Name: "ada"},
				{Kind: ingest.OpJoin, Name: "bob", Sponsor: "ada"},
				{Kind: ingest.OpContribute, Name: "ada", Amount: 1.5},
				{Kind: ingest.OpContribute, Name: "bob", Amount: 0.25},
			} {
				for _, r := range s.ApplyBatch([]ingest.Op{op}) {
					if r.Err != nil {
						t.Fatal(r.Err)
					}
				}
			}

			tw.torn = true
			results := s.ApplyBatch([]ingest.Op{
				{Kind: ingest.OpJoin, Name: "carol", Sponsor: "bob"},
				{Kind: ingest.OpContribute, Name: "ada", Amount: 7},
			})
			for i, r := range results {
				if r.Err == nil || !strings.Contains(r.Err.Error(), "journal append") {
					t.Fatalf("batch result %d = %v, want journal append error", i, r.Err)
				}
			}
			if _, err := s.participant("carol"); err == nil {
				t.Fatal("carol exists after torn batch")
			}

			// The on-disk log now ends in a torn line. Read must classify
			// it as a recoverable torn tail, and replaying the complete
			// prefix must reproduce the rolled-back in-memory tree
			// byte for byte.
			events, readErr := journal.Read(bytes.NewReader(buf.Bytes()))
			var tte *journal.TornTailError
			if !errors.As(readErr, &tte) {
				t.Fatalf("Read after torn write = %v, want *TornTailError", readErr)
			}
			assertReplayMatches(t, s, events)

			// Crash-recovery truncates at the torn offset; after that the
			// same writer (its sequence counter untouched by the failed
			// batch) appends cleanly and the identity still holds.
			buf.Truncate(int(tte.Offset))
			tw.torn = false
			if err := s.Join("carol", "bob"); err != nil {
				t.Fatalf("join after truncation: %v", err)
			}
			if err := s.Contribute("carol", 3); err != nil {
				t.Fatal(err)
			}
			events, readErr = journal.Read(bytes.NewReader(buf.Bytes()))
			if readErr != nil {
				t.Fatalf("journal unreadable after heal: %v", readErr)
			}
			assertReplayMatches(t, s, events)
		})
	}
}

// assertReplayMatches replays events from scratch and requires the
// rebuilt tree to marshal to exactly the server's current tree.
func assertReplayMatches(t *testing.T, s *Server, events []journal.Event) {
	t.Helper()
	st, err := journal.Replay(nil, events)
	if err != nil {
		t.Fatal(err)
	}
	snap := s.SnapshotState()
	if snap.LastSeq != st.LastSeq {
		t.Fatalf("server lastSeq %d != replayed %d", snap.LastSeq, st.LastSeq)
	}
	got, err := json.Marshal(snap.Tree)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(st.Tree)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("in-memory tree diverges from fresh replay:\n mem: %s\nlog: %s", got, want)
	}
}
