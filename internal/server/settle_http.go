package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"incentivetree/internal/journal"
	"incentivetree/internal/obs"
	"incentivetree/internal/settle"
)

// Epoch settlement and the claims ledger. Settle freezes the current
// served reward table (quarantined subtrees already masked to zero)
// into one journal.KindSettle record against the epoch's budget pool;
// Claim pays out one (participant, epoch) share as a journal.KindClaim
// record. Both are journal-first like every other write: nothing
// mutates until the record is durable. The replayed ledger state lives
// in journal.Ledger, so checkpoint recovery, kill -9 replay, and
// follower replication all rebuild it through the same code path and
// re-check the same invariants.

// Settlement error sentinels, matched with errors.Is by the HTTP layer.
var (
	// ErrNothingToSettle reports a settle with no contribution growth
	// and no grantable reward delta; no epoch is created.
	ErrNothingToSettle = errors.New("nothing to settle")
	// ErrEpochNotSettled reports a claim or lookup against an epoch that
	// has not been settled.
	ErrEpochNotSettled = errors.New("epoch not settled")
	// ErrNoShare reports a claim by a participant with no share in the
	// epoch.
	ErrNoShare = errors.New("no share in epoch")
	// ErrAlreadyClaimed reports a duplicate claim — the idempotency
	// conflict, served as 409.
	ErrAlreadyClaimed = errors.New("already claimed")
)

// WithEpochBudget overrides the epoch pool accrual fraction. The
// default (0) accrues the mechanism's own Phi per unit of
// contribution; operators use -epoch-budget to reserve a different
// share for payout.
func WithEpochBudget(frac float64) Option {
	return func(s *Server) { s.epochBudget = frac }
}

// settleCounters aggregates the settle/claim op counters registered
// when metrics are attached.
type settleCounters struct {
	settles        *obs.Counter
	capped         *obs.Counter
	claims         *obs.Counter
	claimConflicts *obs.Counter
}

func newSettleCounters(reg *obs.Registry, labels ...string) *settleCounters {
	return &settleCounters{
		settles:        reg.Counter("itree_settle_commits_total", "Epoch settle records committed.", labels...),
		capped:         reg.Counter("itree_settle_capped_total", "Settled shares reduced or dropped by pool exhaustion.", labels...),
		claims:         reg.Counter("itree_claims_commits_total", "Claim records committed.", labels...),
		claimConflicts: reg.Counter("itree_claims_conflicts_total", "Claims rejected as duplicates (409).", labels...),
	}
}

// budgetFracLocked is the pool accrual fraction in force.
func (s *Server) budgetFracLocked() float64 {
	if s.epochBudget != 0 {
		return s.epochBudget
	}
	return s.mech.Params().Phi
}

// EpochSummary is the wire accounting view of one settled epoch.
type EpochSummary struct {
	Epoch     uint64  `json:"epoch"`
	Pool      float64 `json:"pool"`
	CTotal    float64 `json:"ctotal"`
	Settled   float64 `json:"settled"`
	Claimed   float64 `json:"claimed"`
	Unclaimed float64 `json:"unclaimed"`
	CarryOut  float64 `json:"carry_out"`
	Shares    int     `json:"shares"`
	Claims    int     `json:"claims"`
}

// epochDetail is EpochSummary plus the frozen share table and the
// claimants so far (journal arrival order).
type epochDetail struct {
	EpochSummary
	Rewards []journal.RewardShare `json:"rewards,omitempty"`
	Claimed []string              `json:"claimed,omitempty"`
}

// epochsResponse is the GET /v1/epochs payload.
type epochsResponse struct {
	NextEpoch    uint64         `json:"next_epoch"`
	BudgetFrac   float64        `json:"budget_frac"`
	CSettled     float64        `json:"ctotal_settled"`
	Carry        float64        `json:"carry"`
	SettledTotal float64        `json:"settled_total"`
	ClaimedTotal float64        `json:"claimed_total"`
	Epochs       []EpochSummary `json:"epochs,omitempty"`
}

// ClaimReceipt is the wire acknowledgment of a successful claim.
type ClaimReceipt struct {
	Name   string  `json:"name"`
	Epoch  uint64  `json:"epoch"`
	Amount float64 `json:"amount"`
	Seq    uint64  `json:"seq"`
}

// claimStatus is one epoch's entry in a participant's claims account.
type claimStatus struct {
	Epoch   uint64  `json:"epoch"`
	Amount  float64 `json:"amount"`
	Claimed bool    `json:"claimed"`
}

// claimsAccount is the GET /v1/claims payload: per-participant with
// ?name=, campaign-wide without.
type claimsAccount struct {
	Name      string        `json:"name,omitempty"`
	Settled   float64       `json:"settled"`
	Claimed   float64       `json:"claimed"`
	Unclaimed float64       `json:"unclaimed"`
	Claims    int           `json:"claims"`
	Epochs    []claimStatus `json:"epochs,omitempty"`
}

func (s *Server) epochSummaryLocked(n uint64) EpochSummary {
	se, _ := s.ledger.Epoch(n)
	settled := s.ledger.SettledAmount(n)
	claimed := s.ledger.ClaimedAmount(n)
	return EpochSummary{
		Epoch:     se.Epoch,
		Pool:      se.Pool,
		CTotal:    se.CTotal,
		Settled:   settled,
		Claimed:   claimed,
		Unclaimed: settled - claimed,
		CarryOut:  s.ledger.CarryOut(n),
		Shares:    len(se.Rewards),
		Claims:    len(se.Claimed),
	}
}

// Settle freezes the next epoch: it accrues the pool (budget fraction
// times the contribution growth since the last settle, plus carry),
// grants each participant the growth of their served reward beyond
// what prior epochs settled to them — capped so the epoch never
// overdraws its pool — and journals the result atomically as one
// settle record. Quarantined subtrees are served as zero and therefore
// excluded; their deltas settle after an unquarantine. Returns
// ErrNothingToSettle (409) when no pool accrual and no grant would
// result.
func (s *Server) Settle() (EpochSummary, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rewards, _, err := s.servedRewardsLocked()
	if err != nil {
		return EpochSummary{}, fmt.Errorf("server: settle: %w", err)
	}
	nodes := s.tree.Nodes()
	entries := make([]settle.Entry, 0, len(nodes))
	for _, u := range nodes {
		entries = append(entries, settle.Entry{Name: s.tree.Label(u), Reward: rewards.Of(u)})
	}
	cPrev, carry := s.ledger.AccrualBasis()
	in := settle.Input{
		Epoch:      s.ledger.NextEpoch(),
		BudgetFrac: s.budgetFracLocked(),
		CNow:       s.tree.Total(),
		CPrev:      cPrev,
		Carry:      carry,
	}
	ev, stats, ok := settle.Compute(in, entries, s.ledger.SettledOf)
	if !ok {
		return EpochSummary{}, ErrNothingToSettle
	}
	// Journal first: nothing mutates until the record is durable, so a
	// failed append leaves memory and log in agreement.
	if s.journal != nil {
		//itreevet:ignore journalfirst servedRewardsLocked above only refreshes the derived reward memo, which recovery recomputes; ledger state mutates after the append
		pe, err := s.journal.Append(ev)
		if err != nil {
			return EpochSummary{}, fmt.Errorf("server: journal append: %w", err)
		}
		ev = pe
	} else {
		ev.Seq = s.lastSeq + 1
	}
	if err := s.ledger.ApplySettle(ev); err != nil {
		// Compute produces records that satisfy the ledger invariants by
		// construction; a refusal here is a bug, surfaced loudly rather
		// than leaving the durable record unapplied.
		return EpochSummary{}, fmt.Errorf("server: settle apply: %w", err)
	}
	s.lastSeq = ev.Seq
	if s.settleObs != nil {
		s.settleObs.settles.Inc()
		s.settleObs.capped.Add(uint64(stats.Capped))
	}
	return s.epochSummaryLocked(ev.Epoch), nil
}

// Claim pays out name's share of the given settled epoch (0 means the
// latest). Claims are idempotent per (participant, epoch): a second
// claim fails with ErrAlreadyClaimed (409) and credits nothing — the
// journal-first order guarantees that holds across a crash between
// append and response, too.
func (s *Server) Claim(name string, epoch uint64) (ClaimReceipt, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byKey[name]; !ok {
		return ClaimReceipt{}, fmt.Errorf("%w %q", ErrUnknownParticipant, name)
	}
	if epoch == 0 {
		epoch = uint64(s.ledger.Epochs())
	}
	if epoch == 0 || epoch > uint64(s.ledger.Epochs()) {
		return ClaimReceipt{}, fmt.Errorf("%w: epoch %d", ErrEpochNotSettled, epoch)
	}
	share, ok := s.ledger.Share(epoch, name)
	if !ok {
		return ClaimReceipt{}, fmt.Errorf("%w %d for %q", ErrNoShare, epoch, name)
	}
	if s.ledger.HasClaimed(epoch, name) {
		if s.settleObs != nil {
			s.settleObs.claimConflicts.Inc()
		}
		return ClaimReceipt{}, fmt.Errorf("share of epoch %d %w by %q", epoch, ErrAlreadyClaimed, name)
	}
	ev := journal.Event{Kind: journal.KindClaim, Name: name, Epoch: epoch, Amount: share}
	if s.journal != nil {
		//itreevet:ignore journalfirst the earlier mutation is the conflict metrics counter on the already-claimed return path, not journaled state
		pe, err := s.journal.Append(ev)
		if err != nil {
			return ClaimReceipt{}, fmt.Errorf("server: journal append: %w", err)
		}
		ev = pe
	} else {
		ev.Seq = s.lastSeq + 1
	}
	if err := s.ledger.ApplyClaim(ev); err != nil {
		return ClaimReceipt{}, fmt.Errorf("server: claim apply: %w", err)
	}
	s.lastSeq = ev.Seq
	if s.settleObs != nil {
		s.settleObs.claims.Inc()
	}
	return ClaimReceipt{Name: name, Epoch: epoch, Amount: share, Seq: ev.Seq}, nil
}

// LedgerView returns the number of settled epochs plus cumulative
// settled/claimed totals (for gauges and store-level summaries).
func (s *Server) LedgerView() (epochs int, settled, claimed, carry float64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	epochs = s.ledger.Epochs()
	for n := uint64(1); n <= uint64(epochs); n++ {
		settled += s.ledger.SettledAmount(n)
		claimed += s.ledger.ClaimedAmount(n)
	}
	_, carry = s.ledger.AccrualBasis()
	return epochs, settled, claimed, carry
}

func (s *Server) handleEpochs(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	n := s.ledger.Epochs()
	resp := epochsResponse{
		NextEpoch:  s.ledger.NextEpoch(),
		BudgetFrac: s.budgetFracLocked(),
	}
	resp.CSettled, resp.Carry = s.ledger.AccrualBasis()
	for i := uint64(1); i <= uint64(n); i++ {
		sum := s.epochSummaryLocked(i)
		resp.SettledTotal += sum.Settled
		resp.ClaimedTotal += sum.Claimed
		resp.Epochs = append(resp.Epochs, sum)
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleEpoch(w http.ResponseWriter, r *http.Request) {
	n, err := strconv.ParseUint(r.PathValue("n"), 10, 64)
	if err != nil || n == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{"epoch must be a positive integer"})
		return
	}
	s.mu.RLock()
	se, ok := s.ledger.Epoch(n)
	var detail epochDetail
	if ok {
		detail = epochDetail{EpochSummary: s.epochSummaryLocked(n), Rewards: se.Rewards, Claimed: se.Claimed}
	}
	s.mu.RUnlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{fmt.Sprintf("epoch %d not settled", n)})
		return
	}
	writeJSON(w, http.StatusOK, detail)
}

func (s *Server) handleSettle(w http.ResponseWriter, _ *http.Request) {
	sum, err := s.Settle()
	if err != nil {
		writeSettleError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sum)
}

type claimRequest struct {
	Name  string `json:"name"`
	Epoch uint64 `json:"epoch"`
}

func (s *Server) handleClaim(w http.ResponseWriter, r *http.Request) {
	var req claimRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"malformed JSON: " + err.Error()})
		return
	}
	receipt, err := s.Claim(req.Name, req.Epoch)
	if err != nil {
		writeSettleError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, receipt)
}

func (s *Server) handleClaims(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	s.mu.RLock()
	defer s.mu.RUnlock()
	if name == "" {
		acct := claimsAccount{}
		for n := uint64(1); n <= uint64(s.ledger.Epochs()); n++ {
			acct.Settled += s.ledger.SettledAmount(n)
			acct.Claimed += s.ledger.ClaimedAmount(n)
			se, _ := s.ledger.Epoch(n)
			acct.Claims += len(se.Claimed)
		}
		acct.Unclaimed = acct.Settled - acct.Claimed
		writeJSON(w, http.StatusOK, acct)
		return
	}
	if _, ok := s.byKey[name]; !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{fmt.Sprintf("unknown participant %q", name)})
		return
	}
	acct := claimsAccount{
		Name:    name,
		Settled: s.ledger.SettledOf(name),
		Claimed: s.ledger.ClaimedOf(name),
	}
	acct.Unclaimed = acct.Settled - acct.Claimed
	for n := uint64(1); n <= uint64(s.ledger.Epochs()); n++ {
		amt, ok := s.ledger.Share(n, name)
		if !ok {
			continue
		}
		claimed := s.ledger.HasClaimed(n, name)
		if claimed {
			acct.Claims++
		}
		acct.Epochs = append(acct.Epochs, claimStatus{Epoch: n, Amount: amt, Claimed: claimed})
	}
	writeJSON(w, http.StatusOK, acct)
}

// writeSettleError maps settlement failures to HTTP: unknown names and
// unsettled epochs 404, idle settles and duplicate claims 409, journal
// failures 500.
func writeSettleError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrUnknownParticipant), errors.Is(err, ErrEpochNotSettled), errors.Is(err, ErrNoShare):
		writeJSON(w, http.StatusNotFound, errorResponse{err.Error()})
	case errors.Is(err, ErrNothingToSettle), errors.Is(err, ErrAlreadyClaimed):
		writeJSON(w, http.StatusConflict, errorResponse{err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorResponse{err.Error()})
	}
}
