package server

import (
	"encoding/json"
	"errors"
	"net/http"

	"incentivetree/internal/audit"
)

// SetAuditor mounts a background auditor on the audit endpoints. The
// store calls this when the audit service is enabled; a server without
// an auditor still serves GET /v1/audit (quarantine status only) and
// the quarantine write endpoints, which act on the server's own
// journaled quarantine state.
func (s *Server) SetAuditor(a *audit.Auditor) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.auditor = a
}

func (s *Server) getAuditor() *audit.Auditor {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.auditor
}

// auditResponse is the wire format of GET /v1/audit.
type auditResponse struct {
	// Enabled reports whether a background auditor is attached; without
	// one only the quarantine fields are populated.
	Enabled bool `json:"enabled"`
	// Quarantined lists the quarantined participant names, sorted.
	Quarantined []string `json:"quarantined"`
	// Report is the auditor's scored findings (enabled only).
	Report *audit.Report `json:"report,omitempty"`
}

func (s *Server) handleAudit(w http.ResponseWriter, _ *http.Request) {
	resp := auditResponse{Quarantined: s.QuarantinedNames()}
	if resp.Quarantined == nil {
		resp.Quarantined = []string{}
	}
	if a := s.getAuditor(); a != nil {
		resp.Enabled = true
		rep := a.Report()
		resp.Report = &rep
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleAuditScan(w http.ResponseWriter, _ *http.Request) {
	a := s.getAuditor()
	if a == nil {
		writeJSON(w, http.StatusConflict, errorResponse{"audit service disabled"})
		return
	}
	st := a.Scan()
	writeJSON(w, http.StatusOK, map[string]any{
		"skipped":     st.Skipped,
		"candidates":  st.Candidates,
		"detected":    st.Detected,
		"flagged":     st.Flagged,
		"quarantined": st.Quarantined,
	})
}

// quarantineRequest is the wire format of POST /v1/audit/quarantine.
type quarantineRequest struct {
	Name string `json:"name"`
}

func (s *Server) handleQuarantine(w http.ResponseWriter, r *http.Request) {
	var req quarantineRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"malformed JSON: " + err.Error()})
		return
	}
	if err := s.Quarantine(req.Name); err != nil {
		writeQuarantineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"name": req.Name, "quarantined": true})
}

func (s *Server) handleUnquarantine(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.Unquarantine(name); err != nil {
		writeQuarantineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"name": name, "quarantined": false})
}

// writeQuarantineError maps quarantine transitions to HTTP: unknown
// names 404, redundant transitions 409, journal failures 500.
func writeQuarantineError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrUnknownParticipant):
		writeJSON(w, http.StatusNotFound, errorResponse{err.Error()})
	case errors.Is(err, ErrAlreadyQuarantined), errors.Is(err, ErrNotQuarantined):
		writeJSON(w, http.StatusConflict, errorResponse{err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorResponse{err.Error()})
	}
}
