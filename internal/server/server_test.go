package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"incentivetree/internal/core"
	"incentivetree/internal/geometric"
	"incentivetree/internal/obs"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	m, err := geometric.Default(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s := New(m)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	return resp
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp := getJSON(t, ts.URL+"/v1/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestJoinContributeAndQuery(t *testing.T) {
	_, ts := newTestServer(t)

	resp := postJSON(t, ts.URL+"/v1/join", map[string]string{"name": "alice"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("join status = %d", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/v1/join", map[string]string{"name": "bob", "sponsor": "alice"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("sponsored join status = %d", resp.StatusCode)
	}

	resp = postJSON(t, ts.URL+"/v1/contribute", map[string]any{"name": "bob", "amount": 4.0})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("contribute status = %d", resp.StatusCode)
	}
	var bob Participant
	if err := json.NewDecoder(resp.Body).Decode(&bob); err != nil {
		t.Fatal(err)
	}
	if bob.Contribution != 4 || bob.Sponsor != "alice" {
		t.Fatalf("bob = %+v", bob)
	}
	if bob.Reward <= 0 {
		t.Fatalf("bob reward = %v", bob.Reward)
	}

	var alice Participant
	getJSON(t, ts.URL+"/v1/participants/alice", &alice)
	if alice.Recruits != 1 {
		t.Fatalf("alice = %+v", alice)
	}
	// Alice earns from bob's contribution via bubble-up.
	if alice.Reward <= 0 {
		t.Fatalf("alice reward = %v", alice.Reward)
	}
}

func TestJoinErrors(t *testing.T) {
	_, ts := newTestServer(t)
	tests := []struct {
		name string
		body any
		want int
	}{
		{"empty name", map[string]string{"name": ""}, http.StatusBadRequest},
		{"unknown sponsor", map[string]string{"name": "x", "sponsor": "ghost"}, http.StatusBadRequest},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if resp := postJSON(t, ts.URL+"/v1/join", tc.body); resp.StatusCode != tc.want {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}
	// Duplicate join.
	postJSON(t, ts.URL+"/v1/join", map[string]string{"name": "dup"})
	if resp := postJSON(t, ts.URL+"/v1/join", map[string]string{"name": "dup"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("duplicate join status = %d", resp.StatusCode)
	}
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/v1/join", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed join status = %d", resp.StatusCode)
	}
}

func TestContributeErrors(t *testing.T) {
	_, ts := newTestServer(t)
	postJSON(t, ts.URL+"/v1/join", map[string]string{"name": "alice"})
	tests := []struct {
		name string
		body any
	}{
		{"unknown participant", map[string]any{"name": "ghost", "amount": 1.0}},
		{"zero amount", map[string]any{"name": "alice", "amount": 0.0}},
		{"negative amount", map[string]any{"name": "alice", "amount": -2.0}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if resp := postJSON(t, ts.URL+"/v1/contribute", tc.body); resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d", resp.StatusCode)
			}
		})
	}
}

func TestParticipantNotFound(t *testing.T) {
	_, ts := newTestServer(t)
	if resp := getJSON(t, ts.URL+"/v1/participants/nobody", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestRewardsEndpoint(t *testing.T) {
	s, ts := newTestServer(t)
	if err := s.Join("alice", ""); err != nil {
		t.Fatal(err)
	}
	if err := s.Join("bob", "alice"); err != nil {
		t.Fatal(err)
	}
	if err := s.Contribute("alice", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Contribute("bob", 3); err != nil {
		t.Fatal(err)
	}
	var resp rewardsResponse
	getJSON(t, ts.URL+"/v1/rewards", &resp)
	if resp.Total != 5 {
		t.Fatalf("total = %v", resp.Total)
	}
	if len(resp.Participants) != 2 {
		t.Fatalf("participants = %d", len(resp.Participants))
	}
	if resp.TotalReward > resp.Budget+1e-9 {
		t.Fatalf("reward %v over budget %v", resp.TotalReward, resp.Budget)
	}
	if resp.Mechanism == "" {
		t.Fatal("mechanism name missing")
	}
}

func TestTreeAndStatsEndpoints(t *testing.T) {
	s, ts := newTestServer(t)
	if err := s.Join("alice", ""); err != nil {
		t.Fatal(err)
	}
	if err := s.Contribute("alice", 1); err != nil {
		t.Fatal(err)
	}
	var treeResp struct {
		Participants []json.RawMessage `json:"participants"`
	}
	getJSON(t, ts.URL+"/v1/tree", &treeResp)
	if len(treeResp.Participants) != 1 {
		t.Fatalf("tree participants = %d", len(treeResp.Participants))
	}
	var stats statsResponse
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.Tree.Participants != 1 || stats.Tree.Total != 1 {
		t.Fatalf("stats tree = %+v", stats.Tree)
	}
	if stats.Mechanism == "" || stats.Params.Phi != 0.5 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Budget != 0.5 {
		t.Fatalf("budget = %v, want Phi*C(T) = 0.5", stats.Budget)
	}
	if stats.BudgetUtilization < 0 || stats.BudgetUtilization > 1+1e-9 {
		t.Fatalf("budget utilization = %v, want within [0, 1]", stats.BudgetUtilization)
	}
	if stats.TotalReward <= 0 {
		t.Fatalf("total reward = %v, want > 0", stats.TotalReward)
	}
}

// newMeteredServer builds a server with an isolated metrics registry.
func newMeteredServer(t *testing.T) (*Server, *httptest.Server, *obs.Registry) {
	t.Helper()
	m, err := geometric.Default(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s := New(m, WithMetrics(reg))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, reg
}

// TestErrorPathsOverHTTP exercises every client-error path end to end
// and, through the middleware, checks each is recorded under the right
// route and status class.
func TestErrorPathsOverHTTP(t *testing.T) {
	_, ts, reg := newMeteredServer(t)

	// Bad JSON bodies on both POST routes.
	for _, route := range []string{"/v1/join", "/v1/contribute"} {
		resp, err := http.Post(ts.URL+route, "application/json", bytes.NewReader([]byte("{nope")))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s bad JSON status = %d", route, resp.StatusCode)
		}
	}
	// Unknown sponsor.
	if resp := postJSON(t, ts.URL+"/v1/join", map[string]string{"name": "a", "sponsor": "ghost"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown sponsor status = %d", resp.StatusCode)
	}
	// Contribute before join.
	if resp := postJSON(t, ts.URL+"/v1/contribute", map[string]any{"name": "a", "amount": 1.0}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("contribute-before-join status = %d", resp.StatusCode)
	}
	// Duplicate join.
	if resp := postJSON(t, ts.URL+"/v1/join", map[string]string{"name": "a"}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("first join status = %d", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/v1/join", map[string]string{"name": "a"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("duplicate join status = %d", resp.StatusCode)
	}

	// The middleware saw it all: 4 join requests (3 bad, 1 created), 2
	// contribute requests (both bad).
	join4xx := reg.Counter("itree_http_requests_total", "", "route", "POST /v1/join", "code", "4xx").Value()
	join2xx := reg.Counter("itree_http_requests_total", "", "route", "POST /v1/join", "code", "2xx").Value()
	contrib4xx := reg.Counter("itree_http_requests_total", "", "route", "POST /v1/contribute", "code", "4xx").Value()
	if join4xx != 3 || join2xx != 1 || contrib4xx != 2 {
		t.Fatalf("recorded join4xx=%d join2xx=%d contrib4xx=%d, want 3/1/2", join4xx, join2xx, contrib4xx)
	}
	// Latency histograms observed every request on the route.
	h := reg.Histogram("itree_http_request_duration_seconds", "", nil, "route", "POST /v1/join")
	if h.Count() != 4 {
		t.Fatalf("join latency observations = %d, want 4", h.Count())
	}
	if h.Sum() <= 0 {
		t.Fatalf("join latency sum = %v, want > 0", h.Sum())
	}
}

// TestDomainGauges checks the scrape-time gauges track live state,
// including the paper's budget utilization R(T)/(Phi*C(T)).
func TestDomainGauges(t *testing.T) {
	s, ts, reg := newMeteredServer(t)
	if err := s.Join("alice", ""); err != nil {
		t.Fatal(err)
	}
	if err := s.Join("bob", "alice"); err != nil {
		t.Fatal(err)
	}
	if err := s.Contribute("bob", 4); err != nil {
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"itree_participants 2",
		"itree_tree_depth_max 2",
		"itree_contribution_total 4",
		"itree_journal_last_seq 3",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
	// Utilization is in (0, 1] for a funded geometric tree.
	var snap statsResponse
	getJSON(t, ts.URL+"/v1/stats", &snap)
	if snap.BudgetUtilization <= 0 || snap.BudgetUtilization > 1+1e-9 {
		t.Fatalf("budget utilization = %v", snap.BudgetUtilization)
	}
	// The enriched stats carry the metrics snapshot.
	found := false
	for _, mv := range snap.Metrics {
		if mv.Name == "itree_budget_utilization" {
			found = true
			if mv.Value != snap.BudgetUtilization {
				t.Fatalf("gauge %v != stats utilization %v", mv.Value, snap.BudgetUtilization)
			}
		}
	}
	if !found {
		t.Fatal("stats metrics snapshot missing itree_budget_utilization")
	}
}

// TestEmptyDeploymentGauges: utilization must report 0, not NaN, when
// C(T) = 0.
func TestEmptyDeploymentGauges(t *testing.T) {
	_, ts, _ := newMeteredServer(t)
	var snap statsResponse
	getJSON(t, ts.URL+"/v1/stats", &snap)
	if snap.BudgetUtilization != 0 {
		t.Fatalf("empty utilization = %v, want 0", snap.BudgetUtilization)
	}
}

func TestConcurrentJoinsAndReads(t *testing.T) {
	s, ts := newTestServer(t)
	if err := s.Join("seed", ""); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("user%d", i)
			if err := s.Join(name, "seed"); err != nil {
				t.Errorf("join %s: %v", name, err)
				return
			}
			if err := s.Contribute(name, 1); err != nil {
				t.Errorf("contribute %s: %v", name, err)
			}
			getJSON(t, ts.URL+"/v1/rewards", nil)
		}(i)
	}
	wg.Wait()
	var resp rewardsResponse
	getJSON(t, ts.URL+"/v1/rewards", &resp)
	if len(resp.Participants) != 21 {
		t.Fatalf("participants = %d, want 21", len(resp.Participants))
	}
	if resp.Total != 20 {
		t.Fatalf("total = %v, want 20", resp.Total)
	}
}
