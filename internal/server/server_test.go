package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"incentivetree/internal/core"
	"incentivetree/internal/geometric"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	m, err := geometric.Default(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s := New(m)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	return resp
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp := getJSON(t, ts.URL+"/v1/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestJoinContributeAndQuery(t *testing.T) {
	_, ts := newTestServer(t)

	resp := postJSON(t, ts.URL+"/v1/join", map[string]string{"name": "alice"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("join status = %d", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/v1/join", map[string]string{"name": "bob", "sponsor": "alice"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("sponsored join status = %d", resp.StatusCode)
	}

	resp = postJSON(t, ts.URL+"/v1/contribute", map[string]any{"name": "bob", "amount": 4.0})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("contribute status = %d", resp.StatusCode)
	}
	var bob Participant
	if err := json.NewDecoder(resp.Body).Decode(&bob); err != nil {
		t.Fatal(err)
	}
	if bob.Contribution != 4 || bob.Sponsor != "alice" {
		t.Fatalf("bob = %+v", bob)
	}
	if bob.Reward <= 0 {
		t.Fatalf("bob reward = %v", bob.Reward)
	}

	var alice Participant
	getJSON(t, ts.URL+"/v1/participants/alice", &alice)
	if alice.Recruits != 1 {
		t.Fatalf("alice = %+v", alice)
	}
	// Alice earns from bob's contribution via bubble-up.
	if alice.Reward <= 0 {
		t.Fatalf("alice reward = %v", alice.Reward)
	}
}

func TestJoinErrors(t *testing.T) {
	_, ts := newTestServer(t)
	tests := []struct {
		name string
		body any
		want int
	}{
		{"empty name", map[string]string{"name": ""}, http.StatusBadRequest},
		{"unknown sponsor", map[string]string{"name": "x", "sponsor": "ghost"}, http.StatusBadRequest},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if resp := postJSON(t, ts.URL+"/v1/join", tc.body); resp.StatusCode != tc.want {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}
	// Duplicate join.
	postJSON(t, ts.URL+"/v1/join", map[string]string{"name": "dup"})
	if resp := postJSON(t, ts.URL+"/v1/join", map[string]string{"name": "dup"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("duplicate join status = %d", resp.StatusCode)
	}
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/v1/join", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed join status = %d", resp.StatusCode)
	}
}

func TestContributeErrors(t *testing.T) {
	_, ts := newTestServer(t)
	postJSON(t, ts.URL+"/v1/join", map[string]string{"name": "alice"})
	tests := []struct {
		name string
		body any
	}{
		{"unknown participant", map[string]any{"name": "ghost", "amount": 1.0}},
		{"zero amount", map[string]any{"name": "alice", "amount": 0.0}},
		{"negative amount", map[string]any{"name": "alice", "amount": -2.0}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if resp := postJSON(t, ts.URL+"/v1/contribute", tc.body); resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d", resp.StatusCode)
			}
		})
	}
}

func TestParticipantNotFound(t *testing.T) {
	_, ts := newTestServer(t)
	if resp := getJSON(t, ts.URL+"/v1/participants/nobody", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestRewardsEndpoint(t *testing.T) {
	s, ts := newTestServer(t)
	if err := s.Join("alice", ""); err != nil {
		t.Fatal(err)
	}
	if err := s.Join("bob", "alice"); err != nil {
		t.Fatal(err)
	}
	if err := s.Contribute("alice", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Contribute("bob", 3); err != nil {
		t.Fatal(err)
	}
	var resp rewardsResponse
	getJSON(t, ts.URL+"/v1/rewards", &resp)
	if resp.Total != 5 {
		t.Fatalf("total = %v", resp.Total)
	}
	if len(resp.Participants) != 2 {
		t.Fatalf("participants = %d", len(resp.Participants))
	}
	if resp.TotalReward > resp.Budget+1e-9 {
		t.Fatalf("reward %v over budget %v", resp.TotalReward, resp.Budget)
	}
	if resp.Mechanism == "" {
		t.Fatal("mechanism name missing")
	}
}

func TestTreeAndStatsEndpoints(t *testing.T) {
	s, ts := newTestServer(t)
	if err := s.Join("alice", ""); err != nil {
		t.Fatal(err)
	}
	if err := s.Contribute("alice", 1); err != nil {
		t.Fatal(err)
	}
	var treeResp struct {
		Participants []json.RawMessage `json:"participants"`
	}
	getJSON(t, ts.URL+"/v1/tree", &treeResp)
	if len(treeResp.Participants) != 1 {
		t.Fatalf("tree participants = %d", len(treeResp.Participants))
	}
	var stats struct {
		Participants int
		Total        float64
	}
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.Participants != 1 || stats.Total != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestConcurrentJoinsAndReads(t *testing.T) {
	s, ts := newTestServer(t)
	if err := s.Join("seed", ""); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("user%d", i)
			if err := s.Join(name, "seed"); err != nil {
				t.Errorf("join %s: %v", name, err)
				return
			}
			if err := s.Contribute(name, 1); err != nil {
				t.Errorf("contribute %s: %v", name, err)
			}
			getJSON(t, ts.URL+"/v1/rewards", nil)
		}(i)
	}
	wg.Wait()
	var resp rewardsResponse
	getJSON(t, ts.URL+"/v1/rewards", &resp)
	if len(resp.Participants) != 21 {
		t.Fatalf("participants = %d, want 21", len(resp.Participants))
	}
	if resp.Total != 20 {
		t.Fatalf("total = %v, want 20", resp.Total)
	}
}
