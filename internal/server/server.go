// Package server exposes an Incentive Tree deployment as an in-memory
// JSON-over-HTTP referral service: participants join (optionally naming
// their solicitor), record contributions, and query their reward under
// the configured mechanism. This is the shape of the web campaign
// deployments the paper's introduction describes (sign-up links,
// referral codes, reward dashboards).
//
// Endpoints:
//
//	POST /v1/join        {"name": "...", "sponsor": "..."}   -> participant
//	POST /v1/contribute  {"name": "...", "amount": 1.5}      -> participant
//	GET  /v1/participants/{name}                             -> participant
//	GET  /v1/rewards                                         -> reward table
//	GET  /v1/leaderboard?k=N                                 -> top-K by reward
//	GET  /v1/tree                                            -> referral tree (nested JSON)
//	GET  /v1/stats                                           -> tree statistics
//	GET  /v1/epochs[/{n}]                                    -> settled payout epochs
//	POST /v1/epochs/settle                                   -> settle the next epoch
//	POST /v1/claims      {"name": "...", "epoch": N}         -> claim a settled share
//	GET  /v1/claims[?name=...]                               -> claims accounting
//	GET  /v1/healthz                                         -> 200 ok
//
// All state lives in memory behind a single RWMutex. With WithBatching,
// writes flow through a group-commit ingest pipeline (one lock
// acquisition, journal sync, and reward recompute per batch; full
// queues shed with 429); reward reads are served from a versioned
// cache invalidated by commit version (internal/query).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"incentivetree/internal/audit"
	"incentivetree/internal/core"
	"incentivetree/internal/incremental"
	"incentivetree/internal/ingest"
	"incentivetree/internal/journal"
	"incentivetree/internal/obs"
	"incentivetree/internal/query"
	"incentivetree/internal/tree"
)

// Server is the shared state behind the HTTP handler.
type Server struct {
	mech      core.Mechanism
	journal   *journal.Writer
	metrics   *obs.Registry // nil = uninstrumented
	labels    []string      // metric labels from WithMetricsLabels
	useEngine bool          // WithIncremental requested
	batching  *ingest.Options
	committer *ingest.Committer        // non-nil iff WithBatching
	cache     *query.Cache[*queryView] // versioned read-side views

	mu      sync.RWMutex
	tree    *tree.Tree
	byKey   map[string]tree.NodeID
	lastSeq uint64
	// quarantined holds names whose subtrees are withheld from payout;
	// journaled alongside joins/contributions (see quarantine.go).
	quarantined map[string]bool
	// commitHook, when set, observes committed batches and restores; it
	// runs under the write lock (see SetCommitObserver).
	commitHook func(version uint64, touched []string)
	// auditor, when set, backs the audit report/scan endpoints (see
	// audit_http.go and SetAuditor).
	auditor *audit.Auditor
	// ledger holds the settled epochs and claims (see settle_http.go);
	// epochBudget, when non-zero, overrides the mechanism's Phi as the
	// pool accrual fraction (WithEpochBudget).
	ledger      *journal.Ledger
	epochBudget float64
	// settleObs, when metrics are attached, counts settle/claim
	// operations (see settle_http.go).
	settleObs *settleCounters
	// version counts committed batches and state restores; it keys the
	// read cache and, unlike lastSeq, never moves backwards in-process.
	version uint64
	// engine, when non-nil, owns tree and maintains rewards in O(depth)
	// per write; all writes must route through it.
	engine incremental.Engine
}

// New creates an empty deployment under the mechanism.
func New(m core.Mechanism, opts ...Option) *Server {
	s := &Server{mech: m, tree: tree.New(), byKey: make(map[string]tree.NodeID), quarantined: make(map[string]bool), ledger: journal.NewLedger()}
	for _, opt := range opts {
		opt(s)
	}
	if s.useEngine {
		if e, ok := incremental.ForMechanism(m); ok {
			s.engine = e
			s.tree = e.Tree()
		}
	}
	s.initCache()
	if s.batching != nil {
		// Deferred past option application so the pipeline inherits the
		// final registry/labels regardless of option order.
		o := *s.batching
		if o.Registry == nil {
			o.Registry = s.metrics
			o.Labels = s.labels
		}
		s.committer = ingest.New(s, o)
	}
	return s
}

// WithIncremental serves rewards from an incrementally-maintained
// engine (internal/incremental) when the mechanism admits one
// (Geometric, CDRM family): writes cost O(depth) and reward reads skip
// the O(n) mechanism evaluation. Mechanisms without a local
// decomposition (TDRM, L-Pachira) silently keep per-read full
// evaluation. Engine-served rewards equal full evaluation up to
// floating-point summation order; deployments that need bit-identical
// reward tables across snapshot recovery should leave this off.
func WithIncremental() Option {
	return func(s *Server) { s.useEngine = true }
}

// Participant is the wire representation of one participant's state.
type Participant struct {
	Name         string  `json:"name"`
	Sponsor      string  `json:"sponsor,omitempty"`
	Contribution float64 `json:"contribution"`
	Reward       float64 `json:"reward"`
	Profit       float64 `json:"profit"`
	Recruits     int     `json:"recruits"`
	// Quarantined marks a participant whose payout is withheld because
	// it (or an ancestor) carries a quarantine flag; the contribution
	// stays as recorded.
	Quarantined bool `json:"quarantined,omitempty"`
}

type joinRequest struct {
	Name    string `json:"name"`
	Sponsor string `json:"sponsor"`
}

type contributeRequest struct {
	Name   string  `json:"name"`
	Amount float64 `json:"amount"`
}

type rewardsResponse struct {
	Mechanism    string        `json:"mechanism"`
	Total        float64       `json:"total_contribution"`
	TotalReward  float64       `json:"total_reward"`
	Budget       float64       `json:"budget"`
	Participants []Participant `json:"participants"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the HTTP API. With WithMetrics configured, every
// route is wrapped in obs.Middleware, recording request counts, status
// classes, and latency histograms keyed by route pattern.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/join", s.handleJoin)
	mux.HandleFunc("POST /v1/contribute", s.handleContribute)
	mux.HandleFunc("GET /v1/participants/{name}", s.handleParticipant)
	mux.HandleFunc("GET /v1/rewards", s.handleRewards)
	mux.HandleFunc("GET /v1/leaderboard", s.handleLeaderboard)
	mux.HandleFunc("GET /v1/tree", s.handleTree)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("POST /v1/restore", s.handleRestore)
	mux.HandleFunc("GET /v1/epochs", s.handleEpochs)
	mux.HandleFunc("GET /v1/epochs/{n}", s.handleEpoch)
	mux.HandleFunc("POST /v1/epochs/settle", s.handleSettle)
	mux.HandleFunc("POST /v1/claims", s.handleClaim)
	mux.HandleFunc("GET /v1/claims", s.handleClaims)
	mux.HandleFunc("GET /v1/audit", s.handleAudit)
	mux.HandleFunc("POST /v1/audit/scan", s.handleAuditScan)
	mux.HandleFunc("POST /v1/audit/quarantine", s.handleQuarantine)
	mux.HandleFunc("DELETE /v1/audit/quarantine/{name}", s.handleUnquarantine)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	if s.metrics == nil {
		return mux
	}
	return obs.Middleware(s.metrics, mux)
}

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"malformed JSON: " + err.Error()})
		return
	}
	p, err := s.SubmitJoin(r.Context(), req.Name, req.Sponsor)
	if err != nil {
		writeOpError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, p)
}

func (s *Server) handleContribute(w http.ResponseWriter, r *http.Request) {
	var req contributeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"malformed JSON: " + err.Error()})
		return
	}
	p, err := s.SubmitContribute(r.Context(), req.Name, req.Amount)
	if err != nil {
		writeOpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, p)
}

// writeOpError maps a write-path failure to its HTTP shape: a full
// ingest queue is admission control (429 with a Retry-After hint), a
// closed pipeline or abandoned request is a 503, and anything else is
// the op's own validation error (400).
func writeOpError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ingest.ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorResponse{err.Error()})
	case errors.Is(err, ingest.ErrClosed), errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
	}
}

func (s *Server) handleParticipant(w http.ResponseWriter, r *http.Request) {
	p, err := s.participant(r.PathValue("name"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorResponse{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, p)
}

// participant evaluates the mechanism and returns one participant's view.
func (s *Server) participant(name string) (Participant, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	id, ok := s.byKey[name]
	if !ok {
		return Participant{}, fmt.Errorf("unknown participant %q", name)
	}
	rewards, mask, err := s.servedRewardsLocked()
	if err != nil {
		return Participant{}, err
	}
	return s.viewLocked(id, rewards, mask), nil
}

// rewardsLocked returns the current reward table, served from the
// incremental engine when one is attached and by full mechanism
// evaluation otherwise. Callers hold at least the read lock.
func (s *Server) rewardsLocked() (core.Rewards, error) {
	if s.engine != nil {
		return s.engine.Rewards(), nil
	}
	return s.mech.Rewards(s.tree)
}

// viewLocked builds one participant's wire view. rewards is the table
// as served (already masked when a quarantine is active); mask, when
// non-nil, flags the nodes whose payout is withheld.
func (s *Server) viewLocked(id tree.NodeID, rewards core.Rewards, mask []bool) Participant {
	sponsor := ""
	if p := s.tree.Parent(id); p != tree.Root {
		sponsor = s.tree.Label(p)
	}
	return Participant{
		Name:         s.tree.Label(id),
		Sponsor:      sponsor,
		Contribution: s.tree.Contribution(id),
		Reward:       rewards.Of(id),
		Profit:       core.Profit(s.tree, rewards, id),
		Recruits:     s.tree.NumChildren(id),
		Quarantined:  mask != nil && int(id) < len(mask) && mask[id],
	}
}

func (s *Server) handleTree(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	writeJSON(w, http.StatusOK, s.tree)
}

// statsResponse is the enriched /v1/stats payload: tree shape plus the
// paper-level budget view (R(T), Phi*C(T), and their ratio) and, when
// metrics are attached, a structured snapshot of every recorded metric.
type statsResponse struct {
	Mechanism         string      `json:"mechanism"`
	Params            core.Params `json:"params"`
	Tree              tree.Stats  `json:"tree"`
	TotalReward       float64     `json:"total_reward"`
	Budget            float64     `json:"budget"`
	BudgetUtilization float64     `json:"budget_utilization"`
	LastSeq           uint64      `json:"last_seq"`
	// Quarantined counts the quarantine flags currently set. TotalReward
	// above stays the mechanism-level R(T): budget accounting is about
	// what the mechanism allocates, not what payout withholds.
	Quarantined int               `json:"quarantined,omitempty"`
	Metrics     []obs.MetricValue `json:"metrics,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	rewards, err := s.rewardsLocked()
	if err != nil {
		s.mu.RUnlock()
		writeJSON(w, http.StatusInternalServerError, errorResponse{err.Error()})
		return
	}
	resp := statsResponse{
		Mechanism:   s.mech.Name(),
		Params:      s.mech.Params(),
		Tree:        s.tree.ComputeStats(),
		TotalReward: rewards.Total(),
		Budget:      s.mech.Params().Phi * s.tree.Total(),
		LastSeq:     s.lastSeq,
		Quarantined: len(s.quarantined),
	}
	s.mu.RUnlock()
	if resp.Budget > 0 {
		resp.BudgetUtilization = resp.TotalReward / resp.Budget
	}
	if s.metrics != nil {
		resp.Metrics = s.metrics.Snapshot()
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors past the header are unrecoverable mid-response;
	// the types marshalled here cannot fail.
	_ = json.NewEncoder(w).Encode(v)
}
