// Package server exposes an Incentive Tree deployment as an in-memory
// JSON-over-HTTP referral service: participants join (optionally naming
// their solicitor), record contributions, and query their reward under
// the configured mechanism. This is the shape of the web campaign
// deployments the paper's introduction describes (sign-up links,
// referral codes, reward dashboards).
//
// Endpoints:
//
//	POST /v1/join        {"name": "...", "sponsor": "..."}   -> participant
//	POST /v1/contribute  {"name": "...", "amount": 1.5}      -> participant
//	GET  /v1/participants/{name}                             -> participant
//	GET  /v1/rewards                                         -> reward table
//	GET  /v1/tree                                            -> referral tree (nested JSON)
//	GET  /v1/stats                                           -> tree statistics
//	GET  /v1/healthz                                         -> 200 ok
//
// All state lives in memory behind a single RWMutex; reward evaluation is
// O(n) per query, which is plenty for campaign-sized trees.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"

	"incentivetree/internal/core"
	"incentivetree/internal/incremental"
	"incentivetree/internal/journal"
	"incentivetree/internal/obs"
	"incentivetree/internal/tree"
)

// Server is the shared state behind the HTTP handler.
type Server struct {
	mech      core.Mechanism
	journal   *journal.Writer
	metrics   *obs.Registry // nil = uninstrumented
	useEngine bool          // WithIncremental requested

	mu      sync.RWMutex
	tree    *tree.Tree
	byKey   map[string]tree.NodeID
	lastSeq uint64
	// engine, when non-nil, owns tree and maintains rewards in O(depth)
	// per write; all writes must route through it.
	engine incremental.Engine
}

// New creates an empty deployment under the mechanism.
func New(m core.Mechanism, opts ...Option) *Server {
	s := &Server{mech: m, tree: tree.New(), byKey: make(map[string]tree.NodeID)}
	for _, opt := range opts {
		opt(s)
	}
	if s.useEngine {
		if e, ok := incremental.ForMechanism(m); ok {
			s.engine = e
			s.tree = e.Tree()
		}
	}
	return s
}

// WithIncremental serves rewards from an incrementally-maintained
// engine (internal/incremental) when the mechanism admits one
// (Geometric, CDRM family): writes cost O(depth) and reward reads skip
// the O(n) mechanism evaluation. Mechanisms without a local
// decomposition (TDRM, L-Pachira) silently keep per-read full
// evaluation. Engine-served rewards equal full evaluation up to
// floating-point summation order; deployments that need bit-identical
// reward tables across snapshot recovery should leave this off.
func WithIncremental() Option {
	return func(s *Server) { s.useEngine = true }
}

// Participant is the wire representation of one participant's state.
type Participant struct {
	Name         string  `json:"name"`
	Sponsor      string  `json:"sponsor,omitempty"`
	Contribution float64 `json:"contribution"`
	Reward       float64 `json:"reward"`
	Profit       float64 `json:"profit"`
	Recruits     int     `json:"recruits"`
}

type joinRequest struct {
	Name    string `json:"name"`
	Sponsor string `json:"sponsor"`
}

type contributeRequest struct {
	Name   string  `json:"name"`
	Amount float64 `json:"amount"`
}

type rewardsResponse struct {
	Mechanism    string        `json:"mechanism"`
	Total        float64       `json:"total_contribution"`
	TotalReward  float64       `json:"total_reward"`
	Budget       float64       `json:"budget"`
	Participants []Participant `json:"participants"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the HTTP API. With WithMetrics configured, every
// route is wrapped in obs.Middleware, recording request counts, status
// classes, and latency histograms keyed by route pattern.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/join", s.handleJoin)
	mux.HandleFunc("POST /v1/contribute", s.handleContribute)
	mux.HandleFunc("GET /v1/participants/{name}", s.handleParticipant)
	mux.HandleFunc("GET /v1/rewards", s.handleRewards)
	mux.HandleFunc("GET /v1/tree", s.handleTree)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("POST /v1/restore", s.handleRestore)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	if s.metrics == nil {
		return mux
	}
	return obs.Middleware(s.metrics, mux)
}

// Join registers a participant programmatically (used by the daemon's
// seeding flag and by tests).
func (s *Server) Join(name, sponsor string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.joinLocked(name, sponsor)
}

func (s *Server) joinLocked(name, sponsor string) error {
	name = strings.TrimSpace(name)
	if name == "" {
		return errors.New("name must not be empty")
	}
	if _, dup := s.byKey[name]; dup {
		return fmt.Errorf("participant %q already exists", name)
	}
	parent := tree.Root
	if sponsor != "" {
		p, ok := s.byKey[sponsor]
		if !ok {
			return fmt.Errorf("unknown sponsor %q", sponsor)
		}
		parent = p
	}
	var id tree.NodeID
	var err error
	if s.engine != nil {
		id, err = s.engine.Join(parent, 0)
	} else {
		id, err = s.tree.Add(parent, 0)
	}
	if err != nil {
		return err
	}
	if err := s.tree.SetLabel(id, name); err != nil {
		return err
	}
	s.byKey[name] = id
	return s.appendJournal(journal.Event{Kind: journal.KindJoin, Name: name, Sponsor: sponsor})
}

// Contribute records work done by an existing participant.
func (s *Server) Contribute(name string, amount float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if amount <= 0 {
		return fmt.Errorf("amount %v must be positive", amount)
	}
	id, ok := s.byKey[name]
	if !ok {
		return fmt.Errorf("unknown participant %q", name)
	}
	var err error
	if s.engine != nil {
		err = s.engine.AddContribution(id, amount)
	} else {
		err = s.tree.AddContribution(id, amount)
	}
	if err != nil {
		return err
	}
	return s.appendJournal(journal.Event{Kind: journal.KindContribute, Name: name, Amount: amount})
}

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"malformed JSON: " + err.Error()})
		return
	}
	s.mu.Lock()
	err := s.joinLocked(req.Name, req.Sponsor)
	s.mu.Unlock()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	p, err := s.participant(req.Name)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{err.Error()})
		return
	}
	writeJSON(w, http.StatusCreated, p)
}

func (s *Server) handleContribute(w http.ResponseWriter, r *http.Request) {
	var req contributeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"malformed JSON: " + err.Error()})
		return
	}
	if err := s.Contribute(req.Name, req.Amount); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	p, err := s.participant(req.Name)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, p)
}

func (s *Server) handleParticipant(w http.ResponseWriter, r *http.Request) {
	p, err := s.participant(r.PathValue("name"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorResponse{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, p)
}

// participant evaluates the mechanism and returns one participant's view.
func (s *Server) participant(name string) (Participant, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	id, ok := s.byKey[name]
	if !ok {
		return Participant{}, fmt.Errorf("unknown participant %q", name)
	}
	rewards, err := s.rewardsLocked()
	if err != nil {
		return Participant{}, err
	}
	return s.viewLocked(id, rewards), nil
}

// rewardsLocked returns the current reward table, served from the
// incremental engine when one is attached and by full mechanism
// evaluation otherwise. Callers hold at least the read lock.
func (s *Server) rewardsLocked() (core.Rewards, error) {
	if s.engine != nil {
		return s.engine.Rewards(), nil
	}
	return s.mech.Rewards(s.tree)
}

func (s *Server) viewLocked(id tree.NodeID, rewards core.Rewards) Participant {
	sponsor := ""
	if p := s.tree.Parent(id); p != tree.Root {
		sponsor = s.tree.Label(p)
	}
	return Participant{
		Name:         s.tree.Label(id),
		Sponsor:      sponsor,
		Contribution: s.tree.Contribution(id),
		Reward:       rewards.Of(id),
		Profit:       core.Profit(s.tree, rewards, id),
		Recruits:     len(s.tree.Children(id)),
	}
}

func (s *Server) handleRewards(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rewards, err := s.rewardsLocked()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{err.Error()})
		return
	}
	resp := rewardsResponse{
		Mechanism:   s.mech.Name(),
		Total:       s.tree.Total(),
		TotalReward: rewards.Total(),
		Budget:      s.mech.Params().Phi * s.tree.Total(),
	}
	for _, u := range s.tree.Nodes() {
		resp.Participants = append(resp.Participants, s.viewLocked(u, rewards))
	}
	// Sorted by name so the table is deterministic even across snapshot
	// restores, which renumber node ids in DFS preorder.
	sort.Slice(resp.Participants, func(i, j int) bool {
		return resp.Participants[i].Name < resp.Participants[j].Name
	})
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTree(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	writeJSON(w, http.StatusOK, s.tree)
}

// statsResponse is the enriched /v1/stats payload: tree shape plus the
// paper-level budget view (R(T), Phi*C(T), and their ratio) and, when
// metrics are attached, a structured snapshot of every recorded metric.
type statsResponse struct {
	Mechanism         string            `json:"mechanism"`
	Params            core.Params       `json:"params"`
	Tree              tree.Stats        `json:"tree"`
	TotalReward       float64           `json:"total_reward"`
	Budget            float64           `json:"budget"`
	BudgetUtilization float64           `json:"budget_utilization"`
	LastSeq           uint64            `json:"last_seq"`
	Metrics           []obs.MetricValue `json:"metrics,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	rewards, err := s.rewardsLocked()
	if err != nil {
		s.mu.RUnlock()
		writeJSON(w, http.StatusInternalServerError, errorResponse{err.Error()})
		return
	}
	resp := statsResponse{
		Mechanism:   s.mech.Name(),
		Params:      s.mech.Params(),
		Tree:        s.tree.ComputeStats(),
		TotalReward: rewards.Total(),
		Budget:      s.mech.Params().Phi * s.tree.Total(),
		LastSeq:     s.lastSeq,
	}
	s.mu.RUnlock()
	if resp.Budget > 0 {
		resp.BudgetUtilization = resp.TotalReward / resp.Budget
	}
	if s.metrics != nil {
		resp.Metrics = s.metrics.Snapshot()
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors past the header are unrecoverable mid-response;
	// the types marshalled here cannot fail.
	_ = json.NewEncoder(w).Encode(v)
}
