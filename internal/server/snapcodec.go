package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"incentivetree/internal/journal"
	"incentivetree/internal/tree"
)

// Binary snapshot codec. The JSON snapshot remains the HTTP wire format
// (/v1/snapshot, /v1/restore, the replica bootstrap document) and the
// debug/export representation; the binary form is what checkpoints
// write to disk, because decoding it is a handful of linear array scans
// instead of a million-node recursive JSON unmarshal.
//
// Layout (integers little-endian, varints canonical):
//
//	"ITS1"              4-byte magic
//	byte                version (1, or 2 when settled epochs follow)
//	uvarint             last_seq
//	tree payload        tree.AppendBinary (flat arena arrays)
//	uvarint             number of quarantined names
//	uvarint + bytes     each quarantined name, in the snapshot's
//	                    (sorted) order
//	-- version 2 only --
//	uvarint             number of settled epochs (>= 1)
//	per epoch:          uvarint epoch number
//	                    8-byte LE float64 pool
//	                    8-byte LE float64 ctotal
//	                    uvarint share count, then per share
//	                    uvarint + bytes name, 8-byte LE float64 amount
//	                    uvarint claimant count, then per claimant
//	                    uvarint + bytes name (journal arrival order)
//	-- end version 2 --
//	4-byte LE uint32    CRC-32C of everything before it
//
// A snapshot with no settled epochs is written as version 1, byte for
// byte what older releases produced; version 2 with zero epochs is
// rejected as non-canonical. Both keep the codec's decode∘encode
// identity (FuzzSnapshotRoundTrip).
//
// DecodeSnapshot also accepts the JSON form — documents are
// distinguished by their first byte — so recovery reads snapshots
// written by any version, and `itree convert` translates both ways.

// snapshotMagic marks a binary snapshot file.
var snapshotMagic = []byte("ITS1")

const (
	snapshotVersion       = 1
	snapshotVersionLedger = 2
)

var snapCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrSnapshotCorrupt reports a binary snapshot that failed structural or
// CRC validation.
var ErrSnapshotCorrupt = errors.New("server: corrupt binary snapshot")

// EncodeSnapshotBinary serializes snap in the binary snapshot format.
func EncodeSnapshotBinary(snap *Snapshot) ([]byte, error) {
	if snap.Tree == nil {
		return nil, fmt.Errorf("server: snapshot without tree")
	}
	size := len(snapshotMagic) + 1 + 10 + snap.Tree.BinarySize() + 10 + 4
	for _, q := range snap.Quarantined {
		size += 10 + len(q)
	}
	version := byte(snapshotVersion)
	if len(snap.Epochs) > 0 {
		version = snapshotVersionLedger
		for _, se := range snap.Epochs {
			size += 10 + 8 + 8 + 10 + 10
			for _, r := range se.Rewards {
				size += 10 + len(r.Name) + 8
			}
			for _, c := range se.Claimed {
				size += 10 + len(c)
			}
		}
	}
	buf := make([]byte, 0, size)
	buf = append(buf, snapshotMagic...)
	buf = append(buf, version)
	buf = binary.AppendUvarint(buf, snap.LastSeq)
	buf = snap.Tree.AppendBinary(buf)
	buf = binary.AppendUvarint(buf, uint64(len(snap.Quarantined)))
	for _, q := range snap.Quarantined {
		buf = binary.AppendUvarint(buf, uint64(len(q)))
		buf = append(buf, q...)
	}
	if version == snapshotVersionLedger {
		buf = binary.AppendUvarint(buf, uint64(len(snap.Epochs)))
		for _, se := range snap.Epochs {
			buf = binary.AppendUvarint(buf, se.Epoch)
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(se.Pool))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(se.CTotal))
			buf = binary.AppendUvarint(buf, uint64(len(se.Rewards)))
			for _, r := range se.Rewards {
				buf = binary.AppendUvarint(buf, uint64(len(r.Name)))
				buf = append(buf, r.Name...)
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Amount))
			}
			buf = binary.AppendUvarint(buf, uint64(len(se.Claimed)))
			for _, c := range se.Claimed {
				buf = binary.AppendUvarint(buf, uint64(len(c)))
				buf = append(buf, c...)
			}
		}
	}
	crc := crc32.Checksum(buf, snapCastagnoli)
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	return buf, nil
}

// IsBinarySnapshot reports whether data starts like a binary snapshot.
func IsBinarySnapshot(data []byte) bool {
	return bytes.HasPrefix(data, snapshotMagic)
}

// DecodeSnapshot decodes either snapshot representation, detected by
// the leading bytes: the binary magic, or a JSON document.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	if IsBinarySnapshot(data) {
		return decodeSnapshotBinary(data)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("server: decode snapshot: %w", err)
	}
	return &snap, nil
}

func decodeSnapshotBinary(data []byte) (*Snapshot, error) {
	if len(data) < len(snapshotMagic)+1+4 {
		return nil, fmt.Errorf("%w: truncated header", ErrSnapshotCorrupt)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	want := binary.LittleEndian.Uint32(tail)
	if got := crc32.Checksum(body, snapCastagnoli); got != want {
		return nil, fmt.Errorf("%w: CRC mismatch (%08x != %08x)", ErrSnapshotCorrupt, got, want)
	}
	off := len(snapshotMagic)
	version := body[off]
	if version != snapshotVersion && version != snapshotVersionLedger {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrSnapshotCorrupt, version)
	}
	off++
	lastSeq, err := snapUvarint(body, &off, "last_seq")
	if err != nil {
		return nil, err
	}
	t, used, err := tree.DecodeBinary(body[off:])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}
	off += used
	nq, err := snapUvarint(body, &off, "quarantine count")
	if err != nil {
		return nil, err
	}
	if nq > uint64(len(body)-off) {
		return nil, fmt.Errorf("%w: quarantine count %d overruns input", ErrSnapshotCorrupt, nq)
	}
	var quarantined []string
	for i := uint64(0); i < nq; i++ {
		ln, err := snapUvarint(body, &off, "quarantine name length")
		if err != nil {
			return nil, err
		}
		if ln > uint64(len(body)-off) {
			return nil, fmt.Errorf("%w: truncated quarantine name %d", ErrSnapshotCorrupt, i)
		}
		quarantined = append(quarantined, string(body[off:off+int(ln)]))
		off += int(ln)
	}
	var epochs []journal.SettledEpoch
	if version == snapshotVersionLedger {
		ne, err := snapUvarint(body, &off, "epoch count")
		if err != nil {
			return nil, err
		}
		if ne == 0 {
			// The canonical encoding of an empty ledger is version 1;
			// accepting this shape would break decode∘encode identity.
			return nil, fmt.Errorf("%w: version 2 snapshot with no epochs", ErrSnapshotCorrupt)
		}
		if ne > uint64(len(body)-off) {
			return nil, fmt.Errorf("%w: epoch count %d overruns input", ErrSnapshotCorrupt, ne)
		}
		for i := uint64(0); i < ne; i++ {
			var se journal.SettledEpoch
			if se.Epoch, err = snapUvarint(body, &off, "epoch number"); err != nil {
				return nil, err
			}
			if se.Pool, err = snapFloat(body, &off, "epoch pool"); err != nil {
				return nil, err
			}
			if se.CTotal, err = snapFloat(body, &off, "epoch ctotal"); err != nil {
				return nil, err
			}
			ns, err := snapUvarint(body, &off, "share count")
			if err != nil {
				return nil, err
			}
			if ns > uint64(len(body)-off)/9 {
				return nil, fmt.Errorf("%w: share count %d overruns input", ErrSnapshotCorrupt, ns)
			}
			for j := uint64(0); j < ns; j++ {
				var r journal.RewardShare
				if r.Name, err = snapString(body, &off, "share name"); err != nil {
					return nil, err
				}
				if r.Amount, err = snapFloat(body, &off, "share amount"); err != nil {
					return nil, err
				}
				se.Rewards = append(se.Rewards, r)
			}
			nc, err := snapUvarint(body, &off, "claimant count")
			if err != nil {
				return nil, err
			}
			if nc > uint64(len(body)-off) {
				return nil, fmt.Errorf("%w: claimant count %d overruns input", ErrSnapshotCorrupt, nc)
			}
			for j := uint64(0); j < nc; j++ {
				name, err := snapString(body, &off, "claimant name")
				if err != nil {
					return nil, err
				}
				se.Claimed = append(se.Claimed, name)
			}
			epochs = append(epochs, se)
		}
	}
	if off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrSnapshotCorrupt, len(body)-off)
	}
	return &Snapshot{LastSeq: lastSeq, Tree: t, Quarantined: quarantined, Epochs: epochs}, nil
}

// snapString reads a length-prefixed string at *off.
func snapString(body []byte, off *int, what string) (string, error) {
	ln, err := snapUvarint(body, off, what+" length")
	if err != nil {
		return "", err
	}
	if ln > uint64(len(body)-*off) {
		return "", fmt.Errorf("%w: truncated %s", ErrSnapshotCorrupt, what)
	}
	s := string(body[*off : *off+int(ln)])
	*off += int(ln)
	return s, nil
}

// snapFloat reads an 8-byte little-endian float64 at *off.
func snapFloat(body []byte, off *int, what string) (float64, error) {
	if len(body)-*off < 8 {
		return 0, fmt.Errorf("%w: truncated %s", ErrSnapshotCorrupt, what)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(body[*off:]))
	*off += 8
	return v, nil
}

// snapUvarint reads a canonical uvarint — non-minimal encodings are
// rejected so that decoding then re-encoding a valid snapshot
// reproduces its bytes exactly (the FuzzSnapshotRoundTrip property).
func snapUvarint(body []byte, off *int, what string) (uint64, error) {
	v, n := binary.Uvarint(body[*off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated %s", ErrSnapshotCorrupt, what)
	}
	min := 1
	for x := v; x >= 0x80; x >>= 7 {
		min++
	}
	if n != min {
		return 0, fmt.Errorf("%w: non-canonical %s varint", ErrSnapshotCorrupt, what)
	}
	*off += n
	return v, nil
}
