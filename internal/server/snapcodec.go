package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"

	"incentivetree/internal/tree"
)

// Binary snapshot codec. The JSON snapshot remains the HTTP wire format
// (/v1/snapshot, /v1/restore, the replica bootstrap document) and the
// debug/export representation; the binary form is what checkpoints
// write to disk, because decoding it is a handful of linear array scans
// instead of a million-node recursive JSON unmarshal.
//
// Layout (integers little-endian, varints canonical):
//
//	"ITS1"              4-byte magic
//	byte                version (1)
//	uvarint             last_seq
//	tree payload        tree.AppendBinary (flat arena arrays)
//	uvarint             number of quarantined names
//	uvarint + bytes     each quarantined name, in the snapshot's
//	                    (sorted) order
//	4-byte LE uint32    CRC-32C of everything before it
//
// DecodeSnapshot also accepts the JSON form — documents are
// distinguished by their first byte — so recovery reads snapshots
// written by any version, and `itree convert` translates both ways.

// snapshotMagic marks a binary snapshot file.
var snapshotMagic = []byte("ITS1")

const snapshotVersion = 1

var snapCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrSnapshotCorrupt reports a binary snapshot that failed structural or
// CRC validation.
var ErrSnapshotCorrupt = errors.New("server: corrupt binary snapshot")

// EncodeSnapshotBinary serializes snap in the binary snapshot format.
func EncodeSnapshotBinary(snap *Snapshot) ([]byte, error) {
	if snap.Tree == nil {
		return nil, fmt.Errorf("server: snapshot without tree")
	}
	size := len(snapshotMagic) + 1 + 10 + snap.Tree.BinarySize() + 10 + 4
	for _, q := range snap.Quarantined {
		size += 10 + len(q)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, snapshotMagic...)
	buf = append(buf, snapshotVersion)
	buf = binary.AppendUvarint(buf, snap.LastSeq)
	buf = snap.Tree.AppendBinary(buf)
	buf = binary.AppendUvarint(buf, uint64(len(snap.Quarantined)))
	for _, q := range snap.Quarantined {
		buf = binary.AppendUvarint(buf, uint64(len(q)))
		buf = append(buf, q...)
	}
	crc := crc32.Checksum(buf, snapCastagnoli)
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	return buf, nil
}

// IsBinarySnapshot reports whether data starts like a binary snapshot.
func IsBinarySnapshot(data []byte) bool {
	return bytes.HasPrefix(data, snapshotMagic)
}

// DecodeSnapshot decodes either snapshot representation, detected by
// the leading bytes: the binary magic, or a JSON document.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	if IsBinarySnapshot(data) {
		return decodeSnapshotBinary(data)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("server: decode snapshot: %w", err)
	}
	return &snap, nil
}

func decodeSnapshotBinary(data []byte) (*Snapshot, error) {
	if len(data) < len(snapshotMagic)+1+4 {
		return nil, fmt.Errorf("%w: truncated header", ErrSnapshotCorrupt)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	want := binary.LittleEndian.Uint32(tail)
	if got := crc32.Checksum(body, snapCastagnoli); got != want {
		return nil, fmt.Errorf("%w: CRC mismatch (%08x != %08x)", ErrSnapshotCorrupt, got, want)
	}
	off := len(snapshotMagic)
	if body[off] != snapshotVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrSnapshotCorrupt, body[off])
	}
	off++
	lastSeq, err := snapUvarint(body, &off, "last_seq")
	if err != nil {
		return nil, err
	}
	t, used, err := tree.DecodeBinary(body[off:])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}
	off += used
	nq, err := snapUvarint(body, &off, "quarantine count")
	if err != nil {
		return nil, err
	}
	if nq > uint64(len(body)-off) {
		return nil, fmt.Errorf("%w: quarantine count %d overruns input", ErrSnapshotCorrupt, nq)
	}
	var quarantined []string
	for i := uint64(0); i < nq; i++ {
		ln, err := snapUvarint(body, &off, "quarantine name length")
		if err != nil {
			return nil, err
		}
		if ln > uint64(len(body)-off) {
			return nil, fmt.Errorf("%w: truncated quarantine name %d", ErrSnapshotCorrupt, i)
		}
		quarantined = append(quarantined, string(body[off:off+int(ln)]))
		off += int(ln)
	}
	if off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrSnapshotCorrupt, len(body)-off)
	}
	return &Snapshot{LastSeq: lastSeq, Tree: t, Quarantined: quarantined}, nil
}

// snapUvarint reads a canonical uvarint — non-minimal encodings are
// rejected so that decoding then re-encoding a valid snapshot
// reproduces its bytes exactly (the FuzzSnapshotRoundTrip property).
func snapUvarint(body []byte, off *int, what string) (uint64, error) {
	v, n := binary.Uvarint(body[*off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated %s", ErrSnapshotCorrupt, what)
	}
	min := 1
	for x := v; x >= 0x80; x >>= 7 {
		min++
	}
	if n != min {
		return 0, fmt.Errorf("%w: non-canonical %s varint", ErrSnapshotCorrupt, what)
	}
	*off += n
	return v, nil
}
