package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"

	"incentivetree/internal/incremental"
	"incentivetree/internal/ingest"
	"incentivetree/internal/journal"
	"incentivetree/internal/tree"
)

// WithBatching routes HTTP writes through a group-commit ingest
// pipeline (see internal/ingest): requests enqueue onto a bounded
// queue, a committer goroutine drains them into batches, and each
// batch applies under one lock acquisition with one journal write
// (one fsync under journal.SyncAlways) and one reward recompute.
// A full queue sheds writes with 429 + Retry-After. When the options'
// Registry is unset, the pipeline inherits the server's metrics
// registry and labels. Callers owning the server's lifecycle must
// call CloseIngest before closing the journal beneath it.
func WithBatching(o ingest.Options) Option {
	return func(s *Server) { opt := o; s.batching = &opt }
}

// CloseIngest stops the ingest committer, draining queued writes into
// a final commit. Idempotent; a no-op for servers without batching.
func (s *Server) CloseIngest() {
	if s.committer != nil {
		s.committer.Close()
	}
}

// IngestQueueLen reports the ingest queue's current depth (0 without
// batching) — used by tests and operational probes.
func (s *Server) IngestQueueLen() int {
	if s.committer == nil {
		return 0
	}
	return s.committer.QueueLen()
}

// Join registers a participant programmatically (used by the daemon's
// seeding flag and by tests). It applies directly — a batch of one —
// without passing through the ingest queue.
func (s *Server) Join(name, sponsor string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applyLocked([]ingest.Op{{Kind: ingest.OpJoin, Name: name, Sponsor: sponsor}})[0]
}

// Contribute records work done by an existing participant, applied
// directly as a batch of one.
func (s *Server) Contribute(name string, amount float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applyLocked([]ingest.Op{{Kind: ingest.OpContribute, Name: name, Amount: amount}})[0]
}

// SubmitJoin routes a join through the ingest pipeline when one is
// attached — blocking until its batch commits — and applies it as a
// direct batch of one otherwise. The returned view is built from the
// batch's single reward recompute.
func (s *Server) SubmitJoin(ctx context.Context, name, sponsor string) (Participant, error) {
	return s.submit(ctx, ingest.Op{Kind: ingest.OpJoin, Name: name, Sponsor: sponsor})
}

// SubmitContribute is SubmitJoin for contributions.
func (s *Server) SubmitContribute(ctx context.Context, name string, amount float64) (Participant, error) {
	return s.submit(ctx, ingest.Op{Kind: ingest.OpContribute, Name: name, Amount: amount})
}

func (s *Server) submit(ctx context.Context, op ingest.Op) (Participant, error) {
	if s.committer == nil {
		res := s.ApplyBatch([]ingest.Op{op})[0]
		if res.Err != nil {
			return Participant{}, res.Err
		}
		return res.Value.(Participant), nil
	}
	v, err := s.committer.Submit(ctx, op)
	if err != nil {
		return Participant{}, err
	}
	return v.(Participant), nil
}

// ApplyBatch implements ingest.Applier: the whole batch applies under
// one write-lock acquisition, journals with a single write, and pays
// one reward recompute to build every success's post-commit view.
// Per-op validation errors are reported individually and never fail
// the rest of the batch.
func (s *Server) ApplyBatch(ops []ingest.Op) []ingest.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	errs := s.applyLocked(ops)
	results := make([]ingest.Result, len(ops))
	committed := false
	for i, err := range errs {
		if err != nil {
			results[i].Err = err
		} else {
			committed = true
		}
	}
	if !committed {
		return results
	}
	rewards, mask, rerr := s.servedRewardsLocked()
	for i, op := range ops {
		if errs[i] != nil {
			continue
		}
		if rerr != nil {
			results[i].Err = rerr
			continue
		}
		name := op.Name
		if op.Kind == ingest.OpJoin {
			name = strings.TrimSpace(name)
		}
		results[i].Value = s.viewLocked(s.byKey[name], rewards, mask)
	}
	return results
}

// applyLocked validates and applies ops in order under the held write
// lock, then journals every success as one batch append. errs[i] is
// op i's individual outcome. If the journal rejects the batch, every
// in-memory mutation is rolled back so memory never diverges from what
// a restart would replay, and the append error is reported on each op
// that had applied.
func (s *Server) applyLocked(ops []ingest.Op) []error {
	errs := make([]error, len(ops))
	events := make([]journal.Event, 0, len(ops))
	eventOps := make([]int, 0, len(ops))
	mark := s.tree.Mark()
	var joins []string
	var contribs []contribUndo
	for i, op := range ops {
		switch op.Kind {
		case ingest.OpJoin:
			name, err := s.joinLocked(op.Name, op.Sponsor)
			if err != nil {
				errs[i] = err
				continue
			}
			joins = append(joins, name)
			events = append(events, journal.Event{Kind: journal.KindJoin, Name: name, Sponsor: op.Sponsor})
			eventOps = append(eventOps, i)
		case ingest.OpContribute:
			undo, err := s.contributeLocked(op.Name, op.Amount)
			if err != nil {
				errs[i] = err
				continue
			}
			contribs = append(contribs, undo)
			events = append(events, journal.Event{Kind: journal.KindContribute, Name: op.Name, Amount: op.Amount})
			eventOps = append(eventOps, i)
		default:
			errs[i] = fmt.Errorf("server: unknown op kind %d", op.Kind)
		}
	}
	if len(events) == 0 {
		return errs
	}
	if s.journal != nil {
		persisted, err := s.journal.AppendBatch(events)
		if err != nil {
			s.rollbackLocked(mark, joins, contribs)
			err = fmt.Errorf("server: journal append: %w", err)
			for _, oi := range eventOps {
				errs[oi] = err
			}
			return errs
		}
		s.lastSeq = persisted[len(persisted)-1].Seq
	} else {
		s.lastSeq += uint64(len(events))
	}
	s.version++
	if s.commitHook != nil {
		touched := make([]string, len(events))
		for i, e := range events {
			touched[i] = e.Name
		}
		s.commitHook(s.version, touched)
	}
	return errs
}

// joinLocked validates and applies one join, returning the
// (whitespace-trimmed) name recorded in the journal event.
func (s *Server) joinLocked(name, sponsor string) (string, error) {
	name = strings.TrimSpace(name)
	if name == "" {
		return "", errors.New("name must not be empty")
	}
	if _, dup := s.byKey[name]; dup {
		return "", fmt.Errorf("participant %q already exists", name)
	}
	parent := tree.Root
	if sponsor != "" {
		p, ok := s.byKey[sponsor]
		if !ok {
			return "", fmt.Errorf("unknown sponsor %q", sponsor)
		}
		parent = p
	}
	var id tree.NodeID
	var err error
	if s.engine != nil {
		id, err = s.engine.Join(parent, 0)
	} else {
		id, err = s.tree.Add(parent, 0)
	}
	if err != nil {
		return "", err
	}
	if err := s.tree.SetLabel(id, name); err != nil {
		return "", err
	}
	s.byKey[name] = id
	return name, nil
}

// contribUndo records the pre-op contribution of one participant so a
// failed batch can restore the exact value (no floating-point drift).
type contribUndo struct {
	id  tree.NodeID
	old float64
}

// contributeLocked validates and applies one contribution, returning
// its undo record.
func (s *Server) contributeLocked(name string, amount float64) (contribUndo, error) {
	// NaN fails every comparison, so the positivity check alone would
	// admit it (and ±Inf); reject non-finite amounts explicitly.
	if math.IsNaN(amount) || math.IsInf(amount, 0) {
		return contribUndo{}, fmt.Errorf("amount %v must be finite", amount)
	}
	if amount <= 0 {
		return contribUndo{}, fmt.Errorf("amount %v must be positive", amount)
	}
	id, ok := s.byKey[name]
	if !ok {
		return contribUndo{}, fmt.Errorf("unknown participant %q", name)
	}
	undo := contribUndo{id: id, old: s.tree.Contribution(id)}
	var err error
	if s.engine != nil {
		err = s.engine.AddContribution(id, amount)
	} else {
		err = s.tree.AddContribution(id, amount)
	}
	if err != nil {
		return contribUndo{}, err
	}
	return undo, nil
}

// rollbackLocked undoes an applied-but-unjournaled batch: restore
// contribution values (reverse order, so repeated contributions to one
// participant land back on the first-recorded value), drop the name
// index entries of batch joins, truncate their tree nodes, and rebuild
// the incremental engine whose derived sums in-place undo cannot reach.
func (s *Server) rollbackLocked(mark tree.Mark, joins []string, contribs []contribUndo) {
	for i := len(contribs) - 1; i >= 0; i-- {
		// Restoring a recorded prior value of an existing node cannot fail.
		_ = s.tree.SetContribution(contribs[i].id, contribs[i].old)
	}
	for _, name := range joins {
		delete(s.byKey, name)
	}
	// The tree always holds at least the imaginary root, so the mark is
	// valid by construction.
	_ = s.tree.ResetTo(mark)
	if s.engine != nil {
		// O(n) rebuild, but this path only runs when the journal itself
		// failed — durability is already broken and the operator is told.
		if e, ok := incremental.ForTree(s.mech, s.tree); ok {
			s.engine = e
			s.tree = e.Tree()
		} else {
			s.engine = nil
		}
	}
}
