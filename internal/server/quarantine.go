package server

import (
	"errors"
	"fmt"
	"sort"

	"incentivetree/internal/core"
	"incentivetree/internal/journal"
	"incentivetree/internal/tree"
)

// Quarantine error sentinels, matched with errors.Is by the HTTP layer.
var (
	// ErrUnknownParticipant reports a quarantine op naming nobody.
	ErrUnknownParticipant = errors.New("unknown participant")
	// ErrAlreadyQuarantined reports a redundant quarantine.
	ErrAlreadyQuarantined = errors.New("already quarantined")
	// ErrNotQuarantined reports an unquarantine of an unflagged name.
	ErrNotQuarantined = errors.New("not quarantined")
)

// Quarantine withholds the subtree rooted at name from payout: rewards
// for the node and all its descendants are served as zero in
// /v1/rewards, /v1/leaderboard, and participant views, while raw
// contributions — and hence every other participant's reward — stay
// exactly as recorded. The flag is journaled (crash-recoverable,
// replicated) and bumps the commit version so cached reward tables
// rebuild immediately.
func (s *Server) Quarantine(name string) error { return s.setQuarantine(name, true) }

// Unquarantine clears a quarantine flag set by Quarantine.
func (s *Server) Unquarantine(name string) error { return s.setQuarantine(name, false) }

func (s *Server) setQuarantine(name string, on bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byKey[name]; !ok {
		return fmt.Errorf("%w %q", ErrUnknownParticipant, name)
	}
	if on && s.quarantined[name] {
		return fmt.Errorf("participant %q is %w", name, ErrAlreadyQuarantined)
	}
	if !on && !s.quarantined[name] {
		return fmt.Errorf("participant %q is %w", name, ErrNotQuarantined)
	}
	kind := journal.KindQuarantine
	if !on {
		kind = journal.KindUnquarantine
	}
	// Journal first: nothing mutates until the record is durable, so a
	// failed append leaves memory and log in agreement.
	if s.journal != nil {
		e, err := s.journal.Append(journal.Event{Kind: kind, Name: name})
		if err != nil {
			return fmt.Errorf("server: journal append: %w", err)
		}
		s.lastSeq = e.Seq
	} else {
		s.lastSeq++
	}
	if on {
		s.quarantined[name] = true
	} else {
		delete(s.quarantined, name)
	}
	// The versioned read cache keys on the commit version, so this bump
	// guarantees no pre-quarantine reward table is ever served again.
	s.version++
	return nil
}

// QuarantinedNames returns the currently flagged names, sorted.
func (s *Server) QuarantinedNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.quarantinedNamesLocked()
}

func (s *Server) quarantinedNamesLocked() []string {
	if len(s.quarantined) == 0 {
		return nil
	}
	names := make([]string, 0, len(s.quarantined))
	for n := range s.quarantined {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// QuarantineCount reports how many quarantine flags are set.
func (s *Server) QuarantineCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.quarantined)
}

// IsQuarantined reports whether name itself carries a quarantine flag
// (not whether an ancestor masks it).
func (s *Server) IsQuarantined(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.quarantined[name]
}

// quarantineMaskLocked computes, per node id, whether the node's payout
// is withheld — true when the node or any ancestor carries a flag. It
// returns nil when nothing is quarantined, so the common case costs one
// map-length check.
func (s *Server) quarantineMaskLocked() []bool {
	if len(s.quarantined) == 0 {
		return nil
	}
	mask := make([]bool, s.tree.Len())
	for name := range s.quarantined {
		id, ok := s.byKey[name]
		if !ok {
			continue
		}
		s.tree.Walk(id, func(v tree.NodeID) bool {
			mask[v] = true
			return true
		})
	}
	return mask
}

// maskRewards returns a copy of rewards with masked entries zeroed.
// The input is never mutated (it may be the incremental engine's
// internal buffer).
func maskRewards(rewards core.Rewards, mask []bool) core.Rewards {
	out := make(core.Rewards, len(rewards))
	copy(out, rewards)
	for id, hit := range mask {
		if hit && id < len(out) {
			out[id] = 0
		}
	}
	return out
}

// servedRewardsLocked returns the reward table as the API serves it:
// the mechanism's table with quarantined subtrees zeroed, plus the
// mask used (nil when no quarantine is active).
func (s *Server) servedRewardsLocked() (core.Rewards, []bool, error) {
	rewards, err := s.rewardsLocked()
	if err != nil {
		return nil, nil, err
	}
	mask := s.quarantineMaskLocked()
	if mask != nil {
		rewards = maskRewards(rewards, mask)
	}
	return rewards, mask, nil
}

// SetCommitObserver installs fn to be called after every committed
// write batch and state restore, with the new commit version and the
// participant names the batch touched (nil means "anything may have
// changed" — restores and replicated batches). fn runs while the write
// lock is held: it must be fast and must not call back into the
// server. The background auditor uses this to maintain its dirty set.
func (s *Server) SetCommitObserver(fn func(version uint64, touched []string)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.commitHook = fn
}

// Mechanism returns the deployment's reward mechanism (immutable).
func (s *Server) Mechanism() core.Mechanism { return s.mech }

// AuditSnapshot clones the current state for the background auditor:
// an owned copy of the tree, the sorted quarantine list, and the commit
// version they correspond to.
func (s *Server) AuditSnapshot() (*tree.Tree, []string, uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.Clone(), s.quarantinedNamesLocked(), s.version
}
