package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"hash/crc32"
	"testing"

	"incentivetree/internal/tree"
)

// snapTestSnapshot builds a snapshot with labels, contributions, and a
// quarantine set — every field the codec carries.
func snapTestSnapshot(t *testing.T) *Snapshot {
	t.Helper()
	tr := tree.New()
	a, _ := tr.Add(tree.Root, 0)
	b, _ := tr.Add(a, 0)
	c, _ := tr.Add(a, 0)
	d, _ := tr.Add(b, 0)
	for id, name := range map[tree.NodeID]string{a: "alice", b: "bob", c: "carol", d: "dave"} {
		if err := tr.SetLabel(id, name); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.SetContribution(b, 2.5); err != nil {
		t.Fatal(err)
	}
	if err := tr.SetContribution(d, 0.125); err != nil {
		t.Fatal(err)
	}
	return &Snapshot{LastSeq: 42, Tree: tr, Quarantined: []string{"bob", "dave"}}
}

// TestSnapshotBinaryRoundTrip: encode → decode must reproduce the
// state, and re-encoding the decoded snapshot must reproduce the bytes
// (the canonical-encoding property the fuzz target checks at scale).
func TestSnapshotBinaryRoundTrip(t *testing.T) {
	snap := snapTestSnapshot(t)
	data, err := EncodeSnapshotBinary(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !IsBinarySnapshot(data) {
		t.Fatal("encoded snapshot does not carry the binary magic")
	}
	got, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.LastSeq != snap.LastSeq {
		t.Fatalf("LastSeq = %d, want %d", got.LastSeq, snap.LastSeq)
	}
	if got.Tree.CanonicalString() != snap.Tree.CanonicalString() {
		t.Fatalf("tree mismatch:\n%s\nwant\n%s", got.Tree.CanonicalString(), snap.Tree.CanonicalString())
	}
	for _, u := range snap.Tree.Nodes() {
		if got.Tree.Label(u) != snap.Tree.Label(u) {
			t.Fatalf("label of %d = %q, want %q", u, got.Tree.Label(u), snap.Tree.Label(u))
		}
	}
	if len(got.Quarantined) != 2 || got.Quarantined[0] != "bob" || got.Quarantined[1] != "dave" {
		t.Fatalf("Quarantined = %v", got.Quarantined)
	}
	reenc, err := EncodeSnapshotBinary(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, reenc) {
		t.Fatal("re-encoding a decoded snapshot changed its bytes")
	}
}

// TestDecodeSnapshotJSONFallback: DecodeSnapshot reads the JSON
// representation too, detected by its leading byte.
func TestDecodeSnapshotJSONFallback(t *testing.T) {
	snap := snapTestSnapshot(t)
	jsonData, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(jsonData)
	if err != nil {
		t.Fatal(err)
	}
	if got.LastSeq != snap.LastSeq || got.Tree.CanonicalString() != snap.Tree.CanonicalString() {
		t.Fatal("JSON snapshot decoded to different state")
	}
}

// TestSnapshotBinaryRejectsCorruption: every single-byte flip and every
// truncation of a valid binary snapshot must fail to decode — the CRC
// (or a structural check it backstops) catches them all.
func TestSnapshotBinaryRejectsCorruption(t *testing.T) {
	snap := snapTestSnapshot(t)
	data, err := EncodeSnapshotBinary(snap)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x01
		if _, err := decodeSnapshotBinary(bad); err == nil {
			// Flips in the magic make the document "not binary"; those
			// reach the JSON path in DecodeSnapshot and fail there.
			t.Fatalf("flip at byte %d decoded cleanly", i)
		}
	}
	for cut := len(snapshotMagic); cut < len(data); cut++ {
		if _, err := DecodeSnapshot(append([]byte(nil), data[:cut]...)); err == nil {
			t.Fatalf("truncation to %d bytes decoded cleanly", cut)
		}
	}
}

// TestSnapshotBinaryVersionGate: a bumped version byte must be refused,
// not misparsed.
func TestSnapshotBinaryVersionGate(t *testing.T) {
	data, err := EncodeSnapshotBinary(snapTestSnapshot(t))
	if err != nil {
		t.Fatal(err)
	}
	data[len(snapshotMagic)] = snapshotVersion + 1
	// Recompute the CRC so only the version differs.
	data = data[:len(data)-4]
	data = binary.LittleEndian.AppendUint32(data, crc32.Checksum(data, snapCastagnoli))
	_, err = DecodeSnapshot(data)
	if !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("err = %v, want ErrSnapshotCorrupt", err)
	}
}
