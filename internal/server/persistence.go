package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"incentivetree/internal/incremental"
	"incentivetree/internal/journal"
	"incentivetree/internal/tree"
)

// Option configures a Server.
type Option func(*Server)

// WithJournal attaches a write-ahead event log: every successful join
// and contribution is appended to jw, so `snapshot + journal suffix`
// reconstructs the deployment after a restart (see internal/journal).
func WithJournal(jw *journal.Writer) Option {
	return func(s *Server) { s.journal = jw }
}

// Snapshot is the wire format of a full state export.
type Snapshot struct {
	// LastSeq is the journal sequence number the snapshot includes
	// (0 when no journal is attached).
	LastSeq uint64 `json:"last_seq"`
	// Tree is the full referral tree with labels and contributions.
	Tree *tree.Tree `json:"tree"`
	// Quarantined lists the payout-quarantine flags in force, sorted by
	// name. Absent in pre-quarantine snapshots, which decode as none.
	Quarantined []string `json:"quarantined,omitempty"`
	// Epochs holds the settled payout epochs, oldest first. Absent in
	// pre-settlement snapshots, which decode as an empty ledger — and
	// absent when the ledger is empty, so those snapshots' bytes stay
	// identical to older releases.
	Epochs []journal.SettledEpoch `json:"epochs,omitempty"`
}

// SnapshotState exports the current deployment state.
func (s *Server) SnapshotState() Snapshot {
	return s.SnapshotAt(nil)
}

// SnapshotAt exports the current state and, if fn is non-nil, invokes
// it while the read lock is still held. Writes take the write lock, so
// fn observes external positions — e.g. the journal file's byte size —
// exactly consistent with the snapshot boundary. This is the primitive
// the store's checkpointer builds on: snapshot at seq k, remember the
// journal offset holding events 1..k, later drop that prefix once the
// snapshot is durable.
func (s *Server) SnapshotAt(fn func()) Snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	snap := Snapshot{LastSeq: s.lastSeq, Tree: s.tree.Clone(), Quarantined: s.quarantinedNamesLocked(), Epochs: s.ledger.Snapshot()}
	if fn != nil {
		fn()
	}
	return snap
}

// LastSeq returns the sequence number of the last applied event.
func (s *Server) LastSeq() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.lastSeq
}

// RestoreState replaces the deployment state with the snapshot. The
// snapshot's participant names must be unique (they are the API keys).
func (s *Server) RestoreState(snap Snapshot) error {
	st, err := stateFromSnapshot(snap)
	if err != nil {
		return err
	}
	s.adoptState(st)
	return nil
}

// stateFromSnapshot validates a snapshot and converts it to replay
// state, including its quarantine flags.
func stateFromSnapshot(snap Snapshot) (*journal.State, error) {
	if snap.Tree == nil {
		return nil, fmt.Errorf("server: snapshot without tree")
	}
	if err := snap.Tree.Validate(); err != nil {
		return nil, fmt.Errorf("server: snapshot invalid: %w", err)
	}
	st, err := journal.StateFromTree(snap.Tree, snap.LastSeq)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	for _, name := range snap.Quarantined {
		if _, ok := st.ByName[name]; !ok {
			return nil, fmt.Errorf("server: snapshot quarantines unknown participant %q", name)
		}
		st.Quarantined[name] = true
	}
	if len(snap.Epochs) > 0 {
		for _, se := range snap.Epochs {
			for _, r := range se.Rewards {
				if _, ok := st.ByName[r.Name]; !ok {
					return nil, fmt.Errorf("server: snapshot epoch %d settles unknown participant %q", se.Epoch, r.Name)
				}
			}
		}
		ledger, err := journal.LedgerFromEpochs(snap.Epochs)
		if err != nil {
			return nil, fmt.Errorf("server: snapshot ledger: %w", err)
		}
		st.Ledger = ledger
	}
	return st, nil
}

// adoptState installs a replayed state, rebuilding the incremental
// engine (if one is configured) from the new tree.
func (s *Server) adoptState(st *journal.State) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tree = st.Tree
	s.byKey = st.ByName
	s.lastSeq = st.LastSeq
	s.quarantined = st.Quarantined
	if s.quarantined == nil {
		s.quarantined = make(map[string]bool)
	}
	s.ledger = st.Ledger
	if s.ledger == nil {
		s.ledger = journal.NewLedger()
	}
	// lastSeq may move backwards on a restore, but the cache version must
	// not alias old numbers onto new state — keep it strictly advancing.
	s.version++
	if s.useEngine {
		if e, ok := incremental.ForTree(s.mech, s.tree); ok {
			s.engine = e
		} else {
			s.engine = nil
		}
	}
	if s.commitHook != nil {
		// A restore invalidates any incremental knowledge downstream.
		s.commitHook(s.version, nil)
	}
}

// ApplyReplicated applies a contiguous batch of journal events
// replicated from a primary, under the write lock and through the same
// replay code as crash recovery — so a follower that applies the
// primary's journal reaches byte-identical state. The batch must
// extend the current state exactly (first event at LastSeq+1, no
// gaps); this is checked before anything mutates. On a replay error
// the state may be partially advanced: the caller (a replication
// follower) must discard the deployment and re-bootstrap from a
// snapshot, which is its recovery path for any divergence.
func (s *Server) ApplyReplicated(events []journal.Event) error {
	if len(events) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if events[0].Seq != s.lastSeq+1 {
		return fmt.Errorf("server: replicated batch starts at seq %d, state is at %d", events[0].Seq, s.lastSeq)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			return fmt.Errorf("server: replicated batch has a gap: %d after %d", events[i].Seq, events[i-1].Seq)
		}
	}
	st := &journal.State{Tree: s.tree, ByName: s.byKey, LastSeq: s.lastSeq, Quarantined: s.quarantined, Ledger: s.ledger}
	st, err := journal.Replay(st, events)
	if err != nil {
		// Keep the cache from serving the partially mutated tree.
		s.version++
		return err
	}
	s.lastSeq = st.LastSeq
	s.quarantined = st.Quarantined
	s.ledger = st.Ledger
	s.version++
	if s.useEngine && s.engine != nil {
		// Replay bypassed the engine's O(depth) bookkeeping; rebuild its
		// derived sums from the tree. Followers normally run without an
		// engine (full evaluation keeps reward bytes identical to the
		// primary), so this is a programmatic-use safety net, not a hot
		// path.
		if e, ok := incremental.ForTree(s.mech, s.tree); ok {
			s.engine = e
		} else {
			s.engine = nil
		}
	}
	return nil
}

// Recover rebuilds a server from a snapshot plus the journal events
// recorded after it. Either part may be empty.
func Recover(s *Server, snap *Snapshot, events []journal.Event) error {
	base := (*journal.State)(nil)
	if snap != nil {
		st, err := stateFromSnapshot(*snap)
		if err != nil {
			return err
		}
		base = st
	}
	// Drop events already covered by the snapshot.
	var suffix []journal.Event
	last := uint64(0)
	if base != nil {
		last = base.LastSeq
	}
	for _, e := range events {
		if e.Seq > last {
			suffix = append(suffix, e)
		}
	}
	st, err := journal.Replay(base, suffix)
	if err != nil {
		return err
	}
	s.adoptState(st)
	return nil
}

func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.SnapshotState())
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	var snap Snapshot
	if err := json.NewDecoder(r.Body).Decode(&snap); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"malformed snapshot: " + err.Error()})
		return
	}
	if err := s.RestoreState(snap); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"restored": true, "last_seq": snap.LastSeq})
}
