package server

import (
	"incentivetree/internal/obs"
)

// WithMetrics attaches an observability registry: Handler() wraps the
// API in obs.Middleware (per-route request counts, status classes,
// latency histograms) and the deployment's domain gauges are registered
// for scraping:
//
//	itree_participants         current number of participants
//	itree_tree_depth_max       deepest participant
//	itree_contribution_total   C(T), total contribution
//	itree_reward_total         R(T) under the configured mechanism
//	itree_budget_utilization   R(T) / (Phi * C(T)), the spent fraction
//	                           of the paper's budget constraint
//	itree_journal_last_seq     last persisted journal sequence number
//
// Gauges are computed at scrape time under the server's read lock; the
// reward gauges cost one O(n) mechanism evaluation per scrape. If
// several servers share one registry without distinguishing labels, the
// gauges describe the server registered last — multi-tenant callers
// should use WithMetricsLabels instead.
func WithMetrics(reg *obs.Registry) Option {
	return func(s *Server) {
		s.metrics = reg
		s.registerGauges(reg)
	}
}

// WithMetricsLabels is WithMetrics with a fixed label set (variadic
// key/value pairs, e.g. "campaign", id) stamped on every domain gauge,
// so many deployments — the store's campaigns — can share one registry
// without clobbering each other's series.
func WithMetricsLabels(reg *obs.Registry, labels ...string) Option {
	return func(s *Server) {
		s.metrics = reg
		s.labels = labels
		s.registerGauges(reg, labels...)
	}
}

// domainGauges lists every gauge family registerGauges creates, so
// UnregisterMetrics can remove a deployment's series when it is torn
// down.
var domainGauges = []string{
	"itree_participants",
	"itree_tree_depth_max",
	"itree_contribution_total",
	"itree_reward_total",
	"itree_budget_utilization",
	"itree_journal_last_seq",
	"itree_rewards_cache_hits_total",
	"itree_rewards_cache_misses_total",
	"itree_settle_epochs",
	"itree_settle_carry",
	"itree_settle_amount",
	"itree_claims_amount",
	"itree_claims_unclaimed",
	"itree_settle_commits_total",
	"itree_settle_capped_total",
	"itree_claims_commits_total",
	"itree_claims_conflicts_total",
}

// UnregisterMetrics removes the domain-gauge series registered under
// the given label set — the inverse of WithMetricsLabels, used when a
// campaign is deleted.
func UnregisterMetrics(reg *obs.Registry, labels ...string) {
	for _, name := range domainGauges {
		reg.Unregister(name, labels...)
	}
}

func (s *Server) registerGauges(reg *obs.Registry, labels ...string) {
	reg.GaugeFunc("itree_participants",
		"Number of participants in the referral tree.", func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return float64(s.tree.NumParticipants())
		}, labels...)
	reg.GaugeFunc("itree_tree_depth_max",
		"Depth of the deepest participant (root children are depth 1).", func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return float64(s.tree.ComputeStats().MaxDepth)
		}, labels...)
	reg.GaugeFunc("itree_contribution_total",
		"Total contribution C(T).", func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return s.tree.Total()
		}, labels...)
	reg.GaugeFunc("itree_reward_total",
		"Total reward R(T) under the configured mechanism.", func() float64 {
			total, _ := s.rewardTotals()
			return total
		}, labels...)
	reg.GaugeFunc("itree_budget_utilization",
		"Budget utilization R(T)/(Phi*C(T)); the paper's budget constraint holds iff <= 1.", func() float64 {
			_, util := s.rewardTotals()
			return util
		}, labels...)
	reg.GaugeFunc("itree_journal_last_seq",
		"Sequence number of the last journal event applied.", func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return float64(s.lastSeq)
		}, labels...)
	reg.GaugeFunc("itree_settle_epochs",
		"Number of settled payout epochs.", func() float64 {
			epochs, _, _, _ := s.LedgerView()
			return float64(epochs)
		}, labels...)
	reg.GaugeFunc("itree_settle_carry",
		"Unallocated budget carried into the next epoch.", func() float64 {
			_, _, _, carry := s.LedgerView()
			return carry
		}, labels...)
	reg.GaugeFunc("itree_settle_amount",
		"Cumulative reward settled across all epochs.", func() float64 {
			_, settled, _, _ := s.LedgerView()
			return settled
		}, labels...)
	reg.GaugeFunc("itree_claims_amount",
		"Cumulative reward claimed across all epochs.", func() float64 {
			_, _, claimed, _ := s.LedgerView()
			return claimed
		}, labels...)
	reg.GaugeFunc("itree_claims_unclaimed",
		"Settled but not yet claimed reward.", func() float64 {
			_, settled, claimed, _ := s.LedgerView()
			return settled - claimed
		}, labels...)
	s.settleObs = newSettleCounters(reg, labels...)
}

// rewardTotals evaluates the mechanism once and returns R(T) and the
// budget utilization R(T)/(Phi*C(T)) (0 for an empty deployment or a
// failed evaluation — gauges have no error channel).
func (s *Server) rewardTotals() (total, utilization float64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rewards, err := s.rewardsLocked()
	if err != nil {
		return 0, 0
	}
	total = rewards.Total()
	if budget := s.mech.Params().Phi * s.tree.Total(); budget > 0 {
		utilization = total / budget
	}
	return total, utilization
}
