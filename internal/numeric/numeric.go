// Package numeric provides small floating-point utilities shared by the
// mechanisms and property checkers: compensated summation, tolerant
// comparison, numeric differentiation and series helpers.
package numeric

import "math"

// Eps is the default absolute/relative tolerance used by the property
// checkers when comparing rewards. Rewards are sums of products of
// O(1)-magnitude terms, so 1e-9 leaves ample headroom above float64 noise
// while still catching genuine violations.
const Eps = 1e-9

// AlmostEqual reports |a-b| <= tol*(1+max(|a|,|b|)), a combined
// absolute/relative test.
func AlmostEqual(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	scale := 1 + math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}

// LessOrAlmostEqual reports a <= b up to tolerance: a is either smaller or
// within tol of b.
func LessOrAlmostEqual(a, b, tol float64) bool {
	return a <= b || AlmostEqual(a, b, tol)
}

// StrictlyGreater reports a > b by more than tolerance.
func StrictlyGreater(a, b, tol float64) bool {
	return a > b && !AlmostEqual(a, b, tol)
}

// KahanSum adds the values with compensated (Kahan) summation, which keeps
// budget audits exact enough on trees with millions of nodes.
func KahanSum(values []float64) float64 {
	var sum, comp float64
	for _, v := range values {
		y := v - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// Accumulator is an incremental Kahan summation.
type Accumulator struct {
	sum, comp float64
}

// Add folds v into the accumulator.
func (a *Accumulator) Add(v float64) {
	y := v - a.comp
	t := a.sum + y
	a.comp = (t - a.sum) - y
	a.sum = t
}

// Sum returns the accumulated total.
func (a *Accumulator) Sum() float64 { return a.sum }

// Derivative estimates df/dx at x by the symmetric difference quotient
// with step h.
func Derivative(f func(float64) float64, x, h float64) float64 {
	return (f(x+h) - f(x-h)) / (2 * h)
}

// GeometricSeries returns sum_{i=0}^{n-1} a^i. For |a| < 1 and n < 0 it
// returns the infinite-series limit 1/(1-a).
func GeometricSeries(a float64, n int) float64 {
	if n < 0 {
		if math.Abs(a) >= 1 {
			return math.Inf(1)
		}
		return 1 / (1 - a)
	}
	if a == 1 {
		return float64(n)
	}
	return (1 - math.Pow(a, float64(n))) / (1 - a)
}

// Grid returns n evenly spaced values covering [lo, hi] inclusive.
// n must be at least 2.
func Grid(lo, hi float64, n int) []float64 {
	if n < 2 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo
	case v > hi:
		return hi
	default:
		return v
	}
}
