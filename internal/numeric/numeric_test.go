package numeric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAlmostEqual(t *testing.T) {
	tests := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 1e-9, true},
		{1, 1 + 1e-12, 1e-9, true},
		{1, 1.1, 1e-9, false},
		{1e12, 1e12 + 1, 1e-9, true}, // relative part dominates
		{0, 1e-12, 1e-9, true},       // absolute part dominates
		{0, 1e-3, 1e-9, false},
	}
	for _, tc := range tests {
		if got := AlmostEqual(tc.a, tc.b, tc.tol); got != tc.want {
			t.Errorf("AlmostEqual(%v, %v, %v) = %v, want %v", tc.a, tc.b, tc.tol, got, tc.want)
		}
	}
}

func TestLessOrAlmostEqual(t *testing.T) {
	if !LessOrAlmostEqual(1, 2, Eps) {
		t.Error("1 <= 2 should hold")
	}
	if !LessOrAlmostEqual(2+1e-12, 2, Eps) {
		t.Error("tiny overshoot should be tolerated")
	}
	if LessOrAlmostEqual(2.1, 2, Eps) {
		t.Error("2.1 <= 2 should fail")
	}
}

func TestStrictlyGreater(t *testing.T) {
	if !StrictlyGreater(2, 1, Eps) {
		t.Error("2 > 1 should hold")
	}
	if StrictlyGreater(1+1e-13, 1, Eps) {
		t.Error("noise-level difference should not count as greater")
	}
	if StrictlyGreater(1, 2, Eps) {
		t.Error("1 > 2 should fail")
	}
}

func TestKahanSumPrecision(t *testing.T) {
	// 1 + n*eps summed naively loses the small terms; Kahan keeps them.
	n := 10_000_000
	small := 1e-10
	values := make([]float64, n+1)
	values[0] = 1
	for i := 1; i <= n; i++ {
		values[i] = small
	}
	got := KahanSum(values)
	want := 1 + float64(n)*small
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("KahanSum = %.15f, want %.15f", got, want)
	}
}

func TestAccumulatorMatchesKahanSum(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	values := make([]float64, 1000)
	for i := range values {
		values[i] = r.Float64() * math.Pow(10, float64(r.Intn(10)-5))
	}
	var acc Accumulator
	for _, v := range values {
		acc.Add(v)
	}
	if got, want := acc.Sum(), KahanSum(values); got != want {
		t.Fatalf("Accumulator = %v, KahanSum = %v", got, want)
	}
}

func TestDerivative(t *testing.T) {
	// d/dx x^2 at 3 is 6.
	got := Derivative(func(x float64) float64 { return x * x }, 3, 1e-6)
	if math.Abs(got-6) > 1e-6 {
		t.Fatalf("Derivative = %v, want 6", got)
	}
	// d/dx sin at 0 is 1.
	got = Derivative(math.Sin, 0, 1e-6)
	if math.Abs(got-1) > 1e-6 {
		t.Fatalf("Derivative(sin, 0) = %v, want 1", got)
	}
}

func TestGeometricSeries(t *testing.T) {
	tests := []struct {
		a    float64
		n    int
		want float64
	}{
		{0.5, 3, 1.75},
		{0.5, -1, 2},
		{1, 4, 4},
		{2, 3, 7},
		{0.9, 0, 0},
	}
	for _, tc := range tests {
		if got := GeometricSeries(tc.a, tc.n); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("GeometricSeries(%v, %d) = %v, want %v", tc.a, tc.n, got, tc.want)
		}
	}
	if got := GeometricSeries(1.5, -1); !math.IsInf(got, 1) {
		t.Errorf("divergent series = %v, want +Inf", got)
	}
}

func TestGrid(t *testing.T) {
	g := Grid(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	if len(g) != len(want) {
		t.Fatalf("Grid len = %d, want %d", len(g), len(want))
	}
	for i := range g {
		if math.Abs(g[i]-want[i]) > 1e-12 {
			t.Errorf("Grid[%d] = %v, want %v", i, g[i], want[i])
		}
	}
	if got := Grid(3, 7, 1); len(got) != 1 || got[0] != 3 {
		t.Fatalf("Grid(n=1) = %v", got)
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 1); got != 1 {
		t.Errorf("Clamp high = %v", got)
	}
	if got := Clamp(-5, 0, 1); got != 0 {
		t.Errorf("Clamp low = %v", got)
	}
	if got := Clamp(0.5, 0, 1); got != 0.5 {
		t.Errorf("Clamp mid = %v", got)
	}
}

func TestAlmostEqualSymmetric(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		return AlmostEqual(a, b, Eps) == AlmostEqual(b, a, Eps)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKahanSumMatchesExactForSmallInputs(t *testing.T) {
	f := func(a, b, c float64) bool {
		for _, v := range []float64{a, b, c} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		// Use modest magnitudes to make naive and Kahan agree exactly.
		a, b, c = math.Mod(a, 100), math.Mod(b, 100), math.Mod(c, 100)
		got := KahanSum([]float64{a, b, c})
		naive := a + b + c
		return AlmostEqual(got, naive, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
