package sybil

import (
	"fmt"

	"incentivetree/internal/core"
	"incentivetree/internal/numeric"
)

// SearchOptions bounds the exhaustive attack enumeration.
type SearchOptions struct {
	// MaxIdentities is the largest identity count k tried (>= 1).
	MaxIdentities int
	// Grains is the resolution of the contribution split: each identity
	// receives an integer number of C/Grains units (>= MaxIdentities).
	Grains int
	// ContributionFactors are the multipliers of the scenario
	// contribution tried for generalized (UGSA) attacks. Factor 1 must
	// be present for plain USA search; factors > 1 model buying more.
	ContributionFactors []float64
	// MaxAssignEnum bounds full child-assignment enumeration: with more
	// than MaxAssignEnum child subtrees the k^s assignment space is
	// replaced by the "all children under one identity" assignments
	// (optimal per the paper's Lemma 4) plus a round-robin spread.
	MaxAssignEnum int
}

// DefaultSearch bounds the search to the attack shapes the paper's
// lemmas identify as candidates, at a grid fine enough to reproduce all
// of its counterexamples.
func DefaultSearch() SearchOptions {
	return SearchOptions{
		MaxIdentities:       4,
		Grains:              4,
		ContributionFactors: []float64{1},
		MaxAssignEnum:       3,
	}
}

// GeneralizedSearch extends DefaultSearch with contribution increases for
// UGSA falsification.
func GeneralizedSearch() SearchOptions {
	o := DefaultSearch()
	o.ContributionFactors = []float64{1, 1.25, 1.5, 2, 4}
	return o
}

func (o SearchOptions) validate() error {
	if o.MaxIdentities < 1 {
		return fmt.Errorf("sybil: MaxIdentities = %d, need >= 1", o.MaxIdentities)
	}
	if o.Grains < o.MaxIdentities {
		return fmt.Errorf("sybil: Grains = %d below MaxIdentities = %d", o.Grains, o.MaxIdentities)
	}
	if len(o.ContributionFactors) == 0 {
		return fmt.Errorf("sybil: no contribution factors")
	}
	return nil
}

// compositions enumerates all ways to write total as k positive integer
// parts (order matters), invoking fn with each.
func compositions(total, k int, fn func([]int)) {
	parts := make([]int, k)
	var rec func(idx, remaining int)
	rec = func(idx, remaining int) {
		if idx == k-1 {
			if remaining >= 1 {
				parts[idx] = remaining
				fn(parts)
			}
			return
		}
		for v := 1; v <= remaining-(k-1-idx); v++ {
			parts[idx] = v
			rec(idx+1, remaining-v)
		}
	}
	if k >= 1 && total >= k {
		rec(0, total)
	}
}

// parentVectors enumerates all topologies of k identities: ParentIdx[0]
// is always -1 (the first identity attaches under the scenario parent);
// later identities attach under the scenario parent or any earlier
// identity.
func parentVectors(k int, fn func([]int)) {
	vec := make([]int, k)
	vec[0] = -1
	var rec func(i int)
	rec = func(i int) {
		if i == k {
			fn(vec)
			return
		}
		for p := -1; p < i; p++ {
			vec[i] = p
			rec(i + 1)
		}
	}
	rec(1)
}

// assignments enumerates functions from s children to k identities: all
// k^s of them when s <= limit, otherwise the k "all under one identity"
// assignments (optimal per Lemma 4) plus a round-robin spread.
func assignments(s, k, limit int, fn func([]int)) {
	vec := make([]int, s)
	if s > limit {
		for idx := 0; idx < k; idx++ {
			for j := range vec {
				vec[j] = idx
			}
			fn(vec)
		}
		if k > 1 {
			for j := range vec {
				vec[j] = j % k
			}
			fn(vec)
		}
		return
	}
	var rec func(j int)
	rec = func(j int) {
		if j == s {
			fn(vec)
			return
		}
		for idx := 0; idx < k; idx++ {
			vec[j] = idx
			rec(j + 1)
		}
	}
	rec(0)
}

// Enumerate invokes fn with every arrangement within the option bounds
// for the given scenario. Arrangements share backing arrays; fn must not
// retain them (Execute copies what it needs).
func Enumerate(s Scenario, o SearchOptions, fn func(Arrangement) error) error {
	if err := o.validate(); err != nil {
		return err
	}
	nc := len(s.ChildTrees)
	var err error
	for _, factor := range o.ContributionFactors {
		total := s.Contribution * factor
		for k := 1; k <= o.MaxIdentities; k++ {
			compositions(o.Grains, k, func(grains []int) {
				if err != nil {
					return
				}
				parts := make([]float64, k)
				for i, g := range grains {
					parts[i] = total * float64(g) / float64(o.Grains)
				}
				parentVectors(k, func(parents []int) {
					if err != nil {
						return
					}
					assignments(nc, k, o.MaxAssignEnum, func(assign []int) {
						if err != nil {
							return
						}
						a := Arrangement{
							Parts:       append([]float64(nil), parts...),
							ParentIdx:   append([]int(nil), parents...),
							ChildAssign: append([]int(nil), assign...),
						}
						err = fn(a)
					})
				})
			})
			if err != nil {
				return err
			}
		}
	}
	return err
}

// Report is the result of an attack search.
type Report struct {
	// Baseline is the honest single-identity outcome.
	Baseline Outcome
	// Best is the best attack found (including the baseline itself).
	Best Outcome
	// Evaluated counts the arrangements tried.
	Evaluated int
}

// RewardGain is Best.Reward - Baseline.Reward (the USA violation margin).
func (r Report) RewardGain() float64 { return r.Best.Reward - r.Baseline.Reward }

// ProfitGain is Best.Profit() - Baseline.Profit() (the UGSA violation
// margin).
func (r Report) ProfitGain() float64 { return r.Best.Profit() - r.Baseline.Profit() }

// BestRewardAttack searches for the arrangement maximizing total REWARD
// at fixed total contribution (the USA attack model). A strictly positive
// RewardGain in the returned report is a USA violation witness.
func BestRewardAttack(m core.Mechanism, s Scenario, o SearchOptions) (Report, error) {
	o.ContributionFactors = []float64{1}
	return search(m, s, o, func(candidate, best Outcome) bool {
		return candidate.Reward > best.Reward
	})
}

// BestProfitAttack searches for the arrangement maximizing PROFIT with
// contribution increases allowed (the UGSA attack model). A strictly
// positive ProfitGain in the returned report is a UGSA violation witness.
func BestProfitAttack(m core.Mechanism, s Scenario, o SearchOptions) (Report, error) {
	return search(m, s, o, func(candidate, best Outcome) bool {
		return candidate.Profit() > best.Profit()
	})
}

func search(m core.Mechanism, s Scenario, o SearchOptions, better func(candidate, best Outcome) bool) (Report, error) {
	baseline, err := Execute(m, s, Single(s.Contribution, len(s.ChildTrees)))
	if err != nil {
		return Report{}, err
	}
	rep := Report{Baseline: baseline, Best: baseline}
	err = Enumerate(s, o, func(a Arrangement) error {
		out, err := Execute(m, s, a)
		if err != nil {
			return err
		}
		rep.Evaluated++
		if better(out, rep.Best) {
			rep.Best = out
		}
		return nil
	})
	if err != nil {
		return Report{}, err
	}
	return rep, nil
}

// ViolatesUSA reports whether the search found a reward-increasing split.
func ViolatesUSA(rep Report) bool {
	return numeric.StrictlyGreater(rep.Best.Reward, rep.Baseline.Reward, numeric.Eps)
}

// ViolatesUGSA reports whether the search found a profit-increasing
// generalized attack.
func ViolatesUGSA(rep Report) bool {
	return numeric.StrictlyGreater(rep.Best.Profit(), rep.Baseline.Profit(), numeric.Eps)
}
