package sybil

import (
	"fmt"
	"sort"
	"sync/atomic"

	"incentivetree/internal/core"
	"incentivetree/internal/numeric"
	"incentivetree/internal/obs"
	"incentivetree/internal/pool"
)

// SearchOptions bounds the exhaustive attack enumeration.
type SearchOptions struct {
	// MaxIdentities is the largest identity count k tried (>= 1).
	MaxIdentities int
	// Grains is the resolution of the contribution split: each identity
	// receives an integer number of C/Grains units (>= MaxIdentities).
	Grains int
	// ContributionFactors are the multipliers of the scenario
	// contribution tried for generalized (UGSA) attacks. Factor 1 must
	// be present for plain USA search; factors > 1 model buying more.
	ContributionFactors []float64
	// MaxAssignEnum bounds full child-assignment enumeration: with more
	// than MaxAssignEnum child subtrees the k^s assignment space is
	// replaced by the "all children under one identity" assignments
	// (optimal per the paper's Lemma 4) plus a round-robin spread.
	MaxAssignEnum int
	// Workers is the number of parallel search workers: 0 means
	// GOMAXPROCS, 1 forces the single-goroutine legacy path (kept for
	// differential testing). Search reports are identical at every
	// worker count — ties between equal-score arrangements always go to
	// the lowest enumeration index.
	Workers int
}

// DefaultSearch bounds the search to the attack shapes the paper's
// lemmas identify as candidates, at a grid fine enough to reproduce all
// of its counterexamples.
func DefaultSearch() SearchOptions {
	return SearchOptions{
		MaxIdentities:       4,
		Grains:              4,
		ContributionFactors: []float64{1},
		MaxAssignEnum:       3,
	}
}

// GeneralizedSearch extends DefaultSearch with contribution increases for
// UGSA falsification.
func GeneralizedSearch() SearchOptions {
	o := DefaultSearch()
	o.ContributionFactors = []float64{1, 1.25, 1.5, 2, 4}
	return o
}

func (o SearchOptions) validate() error {
	if o.MaxIdentities < 1 {
		return fmt.Errorf("sybil: MaxIdentities = %d, need >= 1", o.MaxIdentities)
	}
	if o.Grains < o.MaxIdentities {
		return fmt.Errorf("sybil: Grains = %d below MaxIdentities = %d", o.Grains, o.MaxIdentities)
	}
	if len(o.ContributionFactors) == 0 {
		return fmt.Errorf("sybil: no contribution factors")
	}
	if o.Workers < 0 {
		return fmt.Errorf("sybil: Workers = %d, need >= 0", o.Workers)
	}
	return nil
}

// compositions enumerates all ways to write total as k positive integer
// parts (order matters), invoking fn with each. Runs once per search at
// block-construction time, never in the evaluation loop.
func compositions(total, k int, fn func([]int)) {
	parts := make([]int, k)
	var rec func(idx, remaining int)
	rec = func(idx, remaining int) {
		if idx == k-1 {
			if remaining >= 1 {
				parts[idx] = remaining
				fn(parts)
			}
			return
		}
		for v := 1; v <= remaining-(k-1-idx); v++ {
			parts[idx] = v
			rec(idx+1, remaining-v)
		}
	}
	if k >= 1 && total >= k {
		rec(0, total)
	}
}

// parentVectors enumerates all topologies of len(vec) identities into
// vec: vec[0] is always -1 (the first identity attaches under the
// scenario parent); later identities attach under the scenario parent or
// any earlier identity. fn returning false aborts the enumeration;
// parentVectors reports whether it ran to completion.
func parentVectors(vec []int, fn func([]int) bool) bool {
	k := len(vec)
	vec[0] = -1
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == k {
			return fn(vec)
		}
		for p := -1; p < i; p++ {
			vec[i] = p
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	return rec(1)
}

// assignments enumerates functions from len(vec) children to k identities
// into vec: all k^s of them when s <= limit, otherwise the k "all under
// one identity" assignments (optimal per Lemma 4) plus a round-robin
// spread. fn returning false aborts; assignments reports whether it ran
// to completion.
func assignments(vec []int, k, limit int, fn func([]int) bool) bool {
	s := len(vec)
	if s > limit {
		for idx := 0; idx < k; idx++ {
			for j := range vec {
				vec[j] = idx
			}
			if !fn(vec) {
				return false
			}
		}
		if k > 1 {
			for j := range vec {
				vec[j] = j % k
			}
			if !fn(vec) {
				return false
			}
		}
		return true
	}
	var rec func(j int) bool
	rec = func(j int) bool {
		if j == s {
			return fn(vec)
		}
		for idx := 0; idx < k; idx++ {
			vec[j] = idx
			if !rec(j + 1) {
				return false
			}
		}
		return true
	}
	return rec(0)
}

// block is one shard of the enumeration space: a (contribution factor,
// identity count, integer composition) triple. Within a block the
// parent-vector and child-assignment spaces are enumerated serially;
// across blocks the search parallelizes. Blocks are ordered exactly as
// the serial enumeration visits them, so the pair (block index, in-block
// index) is the arrangement's global enumeration position.
type block struct {
	factor float64
	k      int
	grains []int
}

// buildBlocks materializes the block list for the options in serial
// enumeration order.
func buildBlocks(o SearchOptions) []block {
	var blocks []block
	for _, factor := range o.ContributionFactors {
		for k := 1; k <= o.MaxIdentities; k++ {
			compositions(o.Grains, k, func(g []int) {
				blocks = append(blocks, block{
					factor: factor,
					k:      k,
					grains: append([]int(nil), g...),
				})
			})
		}
	}
	return blocks
}

// enumScratch holds the arrangement buffers one enumerating goroutine
// reuses across every arrangement it visits.
type enumScratch struct {
	parts   []float64
	parents []int
	assign  []int
}

func newEnumScratch(o SearchOptions, numChildren int) *enumScratch {
	return &enumScratch{
		parts:   make([]float64, o.MaxIdentities),
		parents: make([]int, o.MaxIdentities),
		assign:  make([]int, numChildren),
	}
}

// enumerateBlock invokes fn with every arrangement of blk in serial
// order, sharing sc's buffers across invocations (fn must not retain
// them). fn returning false aborts; enumerateBlock reports whether it ran
// to completion.
func enumerateBlock(s Scenario, o SearchOptions, blk block, sc *enumScratch, fn func(Arrangement) bool) bool {
	total := s.Contribution * blk.factor
	parts := sc.parts[:blk.k]
	for i, g := range blk.grains {
		parts[i] = total * float64(g) / float64(o.Grains)
	}
	assign := sc.assign[:len(s.ChildTrees)]
	return parentVectors(sc.parents[:blk.k], func(parents []int) bool {
		return assignments(assign, blk.k, o.MaxAssignEnum, func(av []int) bool {
			return fn(Arrangement{Parts: parts, ParentIdx: parents, ChildAssign: av})
		})
	})
}

// Enumerate invokes fn with every arrangement within the option bounds
// for the given scenario, in deterministic order. Arrangements share
// backing arrays; fn must not retain them (Executor.Execute reads them
// before returning; copy what outlives the callback). A non-nil error
// from fn aborts the enumeration immediately and is returned.
func Enumerate(s Scenario, o SearchOptions, fn func(Arrangement) error) error {
	if err := o.validate(); err != nil {
		return err
	}
	sc := newEnumScratch(o, len(s.ChildTrees))
	var err error
	for _, blk := range buildBlocks(o) {
		if !enumerateBlock(s, o, blk, sc, func(a Arrangement) bool {
			err = fn(a)
			return err == nil
		}) {
			return err
		}
	}
	return nil
}

// Report is the result of an attack search.
type Report struct {
	// Baseline is the honest single-identity outcome.
	Baseline Outcome
	// Best is the best attack found (including the baseline itself).
	Best Outcome
	// Evaluated counts the arrangements tried.
	Evaluated int
}

// RewardGain is Best.Reward - Baseline.Reward (the USA violation margin).
func (r Report) RewardGain() float64 { return r.Best.Reward - r.Baseline.Reward }

// ProfitGain is Best.Profit() - Baseline.Profit() (the UGSA violation
// margin).
func (r Report) ProfitGain() float64 { return r.Best.Profit() - r.Baseline.Profit() }

// BestRewardAttack searches for the arrangement maximizing total REWARD
// at fixed total contribution (the USA attack model). A strictly positive
// RewardGain in the returned report is a USA violation witness.
func BestRewardAttack(m core.Mechanism, s Scenario, o SearchOptions) (Report, error) {
	o.ContributionFactors = []float64{1}
	return search(m, s, o, func(reward, contribution float64, best Outcome) bool {
		return reward > best.Reward
	})
}

// BestProfitAttack searches for the arrangement maximizing PROFIT with
// contribution increases allowed (the UGSA attack model). A strictly
// positive ProfitGain in the returned report is a UGSA violation witness.
func BestProfitAttack(m core.Mechanism, s Scenario, o SearchOptions) (Report, error) {
	return search(m, s, o, func(reward, contribution float64, best Outcome) bool {
		return reward-contribution > best.Profit()
	})
}

func cloneArrangement(a Arrangement) Arrangement {
	return Arrangement{
		Parts:       append([]float64(nil), a.Parts...),
		ParentIdx:   append([]int(nil), a.ParentIdx...),
		ChildAssign: append([]int(nil), a.ChildAssign...),
	}
}

var (
	searchesTotal     = obs.Default().Counter("itree_sybil_searches_total", "Completed Sybil attack searches.")
	arrangementsTotal = obs.Default().Counter("itree_sybil_arrangements_total", "Arrangements evaluated by Sybil attack searches.")
)

// workerBest is one worker's running best together with the global
// enumeration position ((block, index-within-block), lexicographic) where
// it was found, and the first error the worker hit.
type workerBest struct {
	out       Outcome
	found     bool
	block     int
	idx       int
	evaluated int
	err       error
	errBlock  int
	errIdx    int
}

// search runs the bounded attack enumeration, sharded across workers by
// block. Every worker keeps the FIRST maximum of its own subsequence
// (strict better fold); the merge folds those per-worker bests over the
// baseline in global position order with the same strict comparison.
// The globally earliest maximum-scoring arrangement is necessarily its
// own worker's kept best and wins the merge, so the result is identical
// to the serial fold at every worker count. The comparator takes the
// candidate as a bare (reward, contribution) pair so the inner loop
// never materializes an Outcome for arrangements that don't win.
func search(m core.Mechanism, s Scenario, o SearchOptions, better func(reward, contribution float64, best Outcome) bool) (Report, error) {
	if err := o.validate(); err != nil {
		return Report{}, err
	}
	baseline, err := Execute(m, s, Single(s.Contribution, len(s.ChildTrees)))
	if err != nil {
		return Report{}, err
	}
	rep := Report{Baseline: baseline, Best: baseline}

	if o.Workers == 1 {
		// Legacy single-goroutine path, kept as the differential-testing
		// reference: one Executor, plain Enumerate fold.
		ex := NewExecutor(m, s)
		err := Enumerate(s, o, func(a Arrangement) error {
			reward, contribution, err := ex.executeScore(a)
			if err != nil {
				return err
			}
			rep.Evaluated++
			if better(reward, contribution, rep.Best) {
				rep.Best = Outcome{Arrangement: cloneArrangement(a), Reward: reward, Contribution: contribution}
			}
			return nil
		})
		if err != nil {
			return Report{}, err
		}
		searchesTotal.Inc()
		arrangementsTotal.Add(uint64(rep.Evaluated))
		return rep, nil
	}

	blocks := buildBlocks(o)
	workers := o.Workers
	if workers <= 0 {
		workers = pool.Default()
	}
	if workers > len(blocks) {
		workers = len(blocks)
	}
	bests := make([]workerBest, workers)
	var failed atomic.Bool
	pool.ForEachWorker(len(blocks), workers, func(w int, next func() (int, bool)) {
		ex := NewExecutor(m, s)
		sc := newEnumScratch(o, len(s.ChildTrees))
		wb := &bests[w]
		for bi, ok := next(); ok; bi, ok = next() {
			if failed.Load() {
				return
			}
			idx := 0
			if !enumerateBlock(s, o, blocks[bi], sc, func(a Arrangement) bool {
				reward, contribution, err := ex.executeScore(a)
				if err != nil {
					wb.err, wb.errBlock, wb.errIdx = err, bi, idx
					failed.Store(true)
					return false
				}
				wb.evaluated++
				if !wb.found || better(reward, contribution, wb.out) {
					wb.out = Outcome{Arrangement: cloneArrangement(a), Reward: reward, Contribution: contribution}
					wb.found = true
					wb.block, wb.idx = bi, idx
				}
				idx++
				return true
			}) {
				return
			}
		}
	})
	for _, wb := range bests {
		rep.Evaluated += wb.evaluated
	}
	if failed.Load() {
		// Deterministic choice among simultaneous failures: lowest
		// enumeration position wins.
		var firstErr error
		eb, ei := 0, 0
		for _, wb := range bests {
			if wb.err == nil {
				continue
			}
			if firstErr == nil || wb.errBlock < eb || (wb.errBlock == eb && wb.errIdx < ei) {
				firstErr, eb, ei = wb.err, wb.errBlock, wb.errIdx
			}
		}
		return Report{}, firstErr
	}
	// Merge per-worker bests over the baseline in global position order.
	found := bests[:0:0]
	for _, wb := range bests {
		if wb.found {
			found = append(found, wb)
		}
	}
	sort.Slice(found, func(i, j int) bool {
		if found[i].block != found[j].block {
			return found[i].block < found[j].block
		}
		return found[i].idx < found[j].idx
	})
	for _, wb := range found {
		if better(wb.out.Reward, wb.out.Contribution, rep.Best) {
			rep.Best = wb.out
		}
	}
	searchesTotal.Inc()
	arrangementsTotal.Add(uint64(rep.Evaluated))
	return rep, nil
}

// ViolatesUSA reports whether the search found a reward-increasing split.
func ViolatesUSA(rep Report) bool {
	return numeric.StrictlyGreater(rep.Best.Reward, rep.Baseline.Reward, numeric.Eps)
}

// ViolatesUGSA reports whether the search found a profit-increasing
// generalized attack.
func ViolatesUGSA(rep Report) bool {
	return numeric.StrictlyGreater(rep.Best.Profit(), rep.Baseline.Profit(), numeric.Eps)
}
