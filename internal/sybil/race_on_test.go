//go:build race

package sybil

// raceEnabled reports that the race detector is active; allocation
// pinning is meaningless then (instrumentation and sync.Pool behavior
// change allocation counts).
const raceEnabled = true
