// Package sybil implements multi-identity (Sybil) attacks against
// Incentive Tree mechanisms and a bounded exhaustive search for the best
// attack, used to falsify (or fail to falsify) the USA and UGSA
// properties.
//
// The paper's attack model (Sect. 3.2): a participant u about to join a
// referral tree with contribution C may instead join as a set of
// identities u_1, ..., u_k, arbitrarily connected, splitting C (USA) or
// even increasing it (UGSA) among them; any child u later solicits can be
// attached under any identity. The appendix lemmas show that optimal
// attacks have small canonical shapes (chains and epsilon-chains), so a
// bounded enumeration over identity counts, contribution splits, identity
// topologies and child assignments finds the violations the paper
// exhibits while remaining exact on its witnesses.
package sybil

import (
	"fmt"
	"math"

	"incentivetree/internal/core"
	"incentivetree/internal/tree"
)

// Scenario describes a join decision: a participant with the given
// contribution is about to join Base under Parent, and will afterwards
// solicit the given child subtrees (each of which attaches under one of
// the participant's identities).
type Scenario struct {
	// Base is the existing referral tree. It is never mutated.
	Base *tree.Tree
	// Parent is the node the participant was solicited by.
	Parent tree.NodeID
	// Contribution is the participant's intended total contribution C.
	Contribution float64
	// ChildTrees are the subtrees of the participant's future solicitees.
	ChildTrees []tree.Spec
}

// Arrangement is one concrete multi-identity join plan.
type Arrangement struct {
	// Parts are the contributions of the k identities; Parts[i] >= 0 and
	// sum(Parts) is the attacker's total contribution.
	Parts []float64
	// ParentIdx[i] is the index of identity i's parent among the
	// identities, or -1 to attach under the scenario parent.
	// ParentIdx[i] < i, so identities are added in topological order.
	ParentIdx []int
	// ChildAssign[j] is the identity index the j-th child subtree
	// attaches to.
	ChildAssign []int
}

// Single returns the trivial arrangement: one identity holding
// everything, all children under it.
func Single(c float64, numChildren int) Arrangement {
	return Arrangement{
		Parts:       []float64{c},
		ParentIdx:   []int{-1},
		ChildAssign: make([]int, numChildren),
	}
}

// ChainSplit splits c into k equal parts arranged in a downward chain
// with all children under the deepest identity — the classic attack that
// defeats the Geometric mechanism (Sect. 4.1).
func ChainSplit(c float64, k, numChildren int) Arrangement {
	a := Arrangement{
		Parts:       make([]float64, k),
		ParentIdx:   make([]int, k),
		ChildAssign: make([]int, numChildren),
	}
	for i := 0; i < k; i++ {
		a.Parts[i] = c / float64(k)
		a.ParentIdx[i] = i - 1 // identity 0 attaches to the scenario parent
	}
	for j := range a.ChildAssign {
		a.ChildAssign[j] = k - 1
	}
	return a
}

// StarSplit splits c into k equal sibling identities, children under the
// first.
func StarSplit(c float64, k, numChildren int) Arrangement {
	a := Arrangement{
		Parts:       make([]float64, k),
		ParentIdx:   make([]int, k),
		ChildAssign: make([]int, numChildren),
	}
	for i := 0; i < k; i++ {
		a.Parts[i] = c / float64(k)
		a.ParentIdx[i] = -1
	}
	return a
}

// EpsilonChain splits c the way TDRM's reward computation tree would:
// remainder at the head, mu-sized blocks below, children under the tail.
func EpsilonChain(c, mu float64, numChildren int) Arrangement {
	k := 1
	if c > 0 {
		k = int(math.Ceil(c / mu))
	}
	a := Arrangement{
		Parts:       make([]float64, k),
		ParentIdx:   make([]int, k),
		ChildAssign: make([]int, numChildren),
	}
	for i := 0; i < k; i++ {
		a.Parts[i] = mu
		a.ParentIdx[i] = i - 1
	}
	a.Parts[0] = c - float64(k-1)*mu
	for j := range a.ChildAssign {
		a.ChildAssign[j] = k - 1
	}
	return a
}

// Validate checks structural sanity of an arrangement against a scenario.
func (a Arrangement) Validate(s Scenario) error {
	if len(a.Parts) == 0 {
		return fmt.Errorf("sybil: arrangement has no identities")
	}
	if len(a.Parts) != len(a.ParentIdx) {
		return fmt.Errorf("sybil: %d parts, %d parent indices", len(a.Parts), len(a.ParentIdx))
	}
	if len(a.ChildAssign) != len(s.ChildTrees) {
		return fmt.Errorf("sybil: %d child assignments for %d child trees",
			len(a.ChildAssign), len(s.ChildTrees))
	}
	for i, p := range a.ParentIdx {
		if p >= i || p < -1 {
			return fmt.Errorf("sybil: identity %d has invalid parent index %d", i, p)
		}
	}
	for j, idx := range a.ChildAssign {
		if idx < 0 || idx >= len(a.Parts) {
			return fmt.Errorf("sybil: child %d assigned to invalid identity %d", j, idx)
		}
	}
	for i, c := range a.Parts {
		if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("sybil: identity %d has invalid contribution %v", i, c)
		}
	}
	return nil
}

// Total returns the arrangement's total contribution.
func (a Arrangement) Total() float64 {
	t := 0.0
	for _, c := range a.Parts {
		t += c
	}
	return t
}

// Outcome is the result of executing an arrangement under a mechanism.
type Outcome struct {
	Arrangement Arrangement
	// Reward is the total reward collected by all identities.
	Reward float64
	// Contribution is the total contribution spent by all identities.
	Contribution float64
}

// Profit returns reward minus contribution.
func (o Outcome) Profit() float64 { return o.Reward - o.Contribution }

// Execute joins the scenario's base tree according to the arrangement and
// evaluates the mechanism, returning the attacker's aggregate outcome.
// One-shot convenience over Executor; loops evaluating many arrangements
// of one scenario should hold an Executor instead.
func Execute(m core.Mechanism, s Scenario, a Arrangement) (Outcome, error) {
	return NewExecutor(m, s).Execute(a)
}

// Executor evaluates arrangements of a single (mechanism, scenario) pair
// without per-arrangement allocations: the base tree is cloned once and
// rolled back with tree.ResetTo between arrangements, and the reward
// vector is computed through the mechanism's RewardsInto fast path into a
// reused buffer. An Executor is not safe for concurrent use; parallel
// searches hold one per worker.
type Executor struct {
	m    core.Mechanism
	s    Scenario
	t    *tree.Tree
	mark tree.Mark
	ids  []tree.NodeID
	buf  core.Rewards
	// flat holds the scenario's child trees pre-flattened into preorder
	// arrays, validated once at construction, so each arrangement attaches
	// them with bare arena appends instead of re-walking (and
	// re-validating) the recursive Spec per candidate.
	flat      [][]flatSpecNode
	flatNodes int
	err       error
}

// flatSpecNode is one node of a pre-flattened child-tree spec: its
// parent as a preorder index within the same spec (-1 for the attach
// point) and its contribution.
type flatSpecNode struct {
	parent int32
	c      float64
}

// flattenSpec appends s in preorder — the exact order tree.AttachSpec
// adds nodes, so ids and float summation order are unchanged. It panics
// on invalid contributions, as AttachSpec would, just earlier.
func flattenSpec(s tree.Spec, out []flatSpecNode, parent int32) []flatSpecNode {
	if math.IsNaN(s.C) || math.IsInf(s.C, 0) || s.C < 0 {
		panic(fmt.Errorf("sybil: invalid child-tree contribution %v", s.C))
	}
	idx := int32(len(out))
	out = append(out, flatSpecNode{parent: parent, c: s.C})
	for _, k := range s.Kids {
		out = flattenSpec(k, out, idx)
	}
	return out
}

// NewExecutor clones the scenario's base tree into the executor's scratch
// tree. The scenario's base must not be mutated while the executor is in
// use.
func NewExecutor(m core.Mechanism, s Scenario) *Executor {
	t := s.Base.Clone()
	e := &Executor{m: m, s: s, t: t, mark: t.Mark()}
	if !t.Exists(s.Parent) {
		e.err = fmt.Errorf("sybil: execute: scenario parent %d not in base tree", s.Parent)
	}
	e.flat = make([][]flatSpecNode, len(s.ChildTrees))
	for j, spec := range s.ChildTrees {
		e.flat[j] = flattenSpec(spec, nil, -1)
		e.flatNodes += len(e.flat[j])
	}
	return e
}

// Execute evaluates one arrangement. The returned Outcome's Arrangement
// field aliases a's slices; searches that keep an outcome across further
// enumeration copy them.
func (e *Executor) Execute(a Arrangement) (Outcome, error) {
	if err := a.Validate(e.s); err != nil {
		return Outcome{}, err
	}
	reward, contribution, err := e.executeScore(a)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{Arrangement: a, Reward: reward, Contribution: contribution}, nil
}

// executeScore is the enumeration fast path: evaluate one arrangement
// and return only its score. Validation is the caller's duty —
// arrangements coming out of the enumerator are valid by construction,
// so the per-candidate loop is pure AddUnchecked arena appends (the
// scenario parent and child specs were validated at construction, the
// arrangement's parts and indices by Arrangement.Validate or the
// enumerator); skipping the re-validation walk plus the Outcome copy
// per candidate is a measurable share of search time.
func (e *Executor) executeScore(a Arrangement) (reward, contribution float64, err error) {
	if e.err != nil {
		return 0, 0, e.err
	}
	if err := e.t.ResetTo(e.mark); err != nil {
		return 0, 0, err
	}
	if e.t.Len() > math.MaxInt32-len(a.Parts)-e.flatNodes {
		return 0, 0, fmt.Errorf("sybil: execute: %w", tree.ErrTreeFull)
	}
	if cap(e.ids) < len(a.Parts) {
		e.ids = make([]tree.NodeID, len(a.Parts))
	}
	ids := e.ids[:len(a.Parts)]
	for i, c := range a.Parts {
		parent := e.s.Parent
		if a.ParentIdx[i] >= 0 {
			parent = ids[a.ParentIdx[i]]
		}
		ids[i] = e.t.AddUnchecked(parent, c)
	}
	for j, flat := range e.flat {
		attach := ids[a.ChildAssign[j]]
		base := tree.NodeID(e.t.Len())
		for _, fn := range flat {
			parent := attach
			if fn.parent >= 0 {
				parent = base + tree.NodeID(fn.parent)
			}
			e.t.AddUnchecked(parent, fn.c)
		}
	}
	r, err := core.EvalInto(e.m, e.t, e.buf)
	if err != nil {
		return 0, 0, err
	}
	e.buf = r
	for _, id := range ids {
		reward += r.Of(id)
	}
	return reward, a.Total(), nil
}
