package sybil

import (
	"math"
	"testing"

	"incentivetree/internal/core"
	"incentivetree/internal/tdrm"
	"incentivetree/internal/tree"
)

// TestEpsilonChainMatchesTDRMTransform is the cross-module invariant
// behind Theorem 4: manually joining as the EpsilonChain arrangement
// yields exactly the same total reward as joining as a single node and
// letting TDRM's reward computation tree do the splitting.
func TestEpsilonChainMatchesTDRMTransform(t *testing.T) {
	m, err := tdrm.Default(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []float64{0.4, 1, 1.7, 2, 3.25, 7} {
		s := Scenario{
			Base:         tree.FromSpecs(tree.Spec{C: 1}),
			Parent:       1,
			Contribution: c,
			ChildTrees:   []tree.Spec{{C: 1.5}, {C: 0.5, Kids: []tree.Spec{{C: 2}}}},
		}
		single, err := Execute(m, s, Single(c, len(s.ChildTrees)))
		if err != nil {
			t.Fatal(err)
		}
		manual, err := Execute(m, s, EpsilonChain(c, m.Mu(), len(s.ChildTrees)))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(single.Reward-manual.Reward) > 1e-9 {
			t.Fatalf("C=%v: single join %v != manual epsilon-chain %v",
				c, single.Reward, manual.Reward)
		}
	}
}

// TestRestrictedAssignmentEnumeration pins the reduced child-assignment
// mode used for large solicitation lists.
func TestRestrictedAssignmentEnumeration(t *testing.T) {
	kids := make([]tree.Spec, 5)
	for i := range kids {
		kids[i] = tree.Spec{C: 1}
	}
	s := Scenario{Base: tree.New(), Parent: tree.Root, Contribution: 2, ChildTrees: kids}
	o := SearchOptions{
		MaxIdentities:       2,
		Grains:              2,
		ContributionFactors: []float64{1},
		MaxAssignEnum:       3, // 5 children > 3: restricted mode
	}
	n := 0
	seenAssignments := map[string]bool{}
	err := Enumerate(s, o, func(a Arrangement) error {
		n++
		key := ""
		for _, idx := range a.ChildAssign {
			key += string(rune('0' + idx))
		}
		seenAssignments[key] = true
		return a.Validate(s)
	})
	if err != nil {
		t.Fatal(err)
	}
	// k=1: 1 comp * 1 parent * 1 assign (all-to-0; round robin also
	// degenerates to all-to-0 but is emitted separately) ... count only
	// matters loosely; what we pin is the assignment *set* for k=2:
	// all-to-0, all-to-1, round-robin.
	want := map[string]bool{"00000": true, "11111": true, "01010": true}
	for k := range want {
		if !seenAssignments[k] {
			t.Fatalf("restricted mode missing assignment %q (saw %v)", k, seenAssignments)
		}
	}
	for k := range seenAssignments {
		if !want[k] {
			t.Fatalf("unexpected assignment %q in restricted mode", k)
		}
	}
	if n == 0 {
		t.Fatal("nothing enumerated")
	}
}

// TestFullAssignmentEnumerationBelowLimit: with few children the full
// k^s assignment space is explored.
func TestFullAssignmentEnumerationBelowLimit(t *testing.T) {
	s := Scenario{Base: tree.New(), Parent: tree.Root, Contribution: 2,
		ChildTrees: []tree.Spec{{C: 1}, {C: 1}}}
	o := SearchOptions{
		MaxIdentities:       2,
		Grains:              2,
		ContributionFactors: []float64{1},
		MaxAssignEnum:       3,
	}
	assignments := map[string]bool{}
	err := Enumerate(s, o, func(a Arrangement) error {
		if len(a.Parts) == 2 {
			key := ""
			for _, idx := range a.ChildAssign {
				key += string(rune('0' + idx))
			}
			assignments[key] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"00", "01", "10", "11"} {
		if !assignments[want] {
			t.Fatalf("full mode missing assignment %q (saw %v)", want, assignments)
		}
	}
}
