package sybil

import (
	"math"
	"testing"

	"incentivetree/internal/cdrm"
	"incentivetree/internal/core"
	"incentivetree/internal/geometric"
	"incentivetree/internal/tdrm"
	"incentivetree/internal/tree"
)

func geo(t *testing.T) core.Mechanism {
	t.Helper()
	m, err := geometric.Default(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func leafScenario(c float64) Scenario {
	return Scenario{Base: tree.New(), Parent: tree.Root, Contribution: c}
}

func TestSingleArrangement(t *testing.T) {
	a := Single(3, 2)
	if err := a.Validate(Scenario{Base: tree.New(), Parent: tree.Root, Contribution: 3,
		ChildTrees: []tree.Spec{{C: 1}, {C: 1}}}); err != nil {
		t.Fatal(err)
	}
	if a.Total() != 3 {
		t.Fatalf("Total = %v", a.Total())
	}
}

func TestChainSplitShape(t *testing.T) {
	a := ChainSplit(4, 4, 1)
	if len(a.Parts) != 4 {
		t.Fatalf("parts = %v", a.Parts)
	}
	for i, p := range a.ParentIdx {
		if p != i-1 {
			t.Fatalf("ParentIdx[%d] = %d, want %d", i, p, i-1)
		}
	}
	if a.ChildAssign[0] != 3 {
		t.Fatalf("children should attach to the deepest identity, got %d", a.ChildAssign[0])
	}
	if a.Total() != 4 {
		t.Fatalf("Total = %v", a.Total())
	}
}

func TestStarSplitShape(t *testing.T) {
	a := StarSplit(2, 4, 0)
	for _, p := range a.ParentIdx {
		if p != -1 {
			t.Fatalf("star identities must attach to the scenario parent, got %d", p)
		}
	}
}

func TestEpsilonChainShape(t *testing.T) {
	a := EpsilonChain(2.5, 1, 1)
	if len(a.Parts) != 3 {
		t.Fatalf("parts = %v", a.Parts)
	}
	if math.Abs(a.Parts[0]-0.5) > 1e-12 {
		t.Fatalf("head part = %v, want 0.5", a.Parts[0])
	}
	if a.Parts[1] != 1 || a.Parts[2] != 1 {
		t.Fatalf("tail parts = %v", a.Parts[1:])
	}
	if a.ChildAssign[0] != 2 {
		t.Fatalf("children should hang under the tail")
	}
	if got := EpsilonChain(0, 1, 0); len(got.Parts) != 1 || got.Parts[0] != 0 {
		t.Fatalf("zero-contribution epsilon chain = %+v", got)
	}
}

func TestArrangementValidate(t *testing.T) {
	s := Scenario{Base: tree.New(), Parent: tree.Root, Contribution: 2,
		ChildTrees: []tree.Spec{{C: 1}}}
	tests := []struct {
		name string
		a    Arrangement
	}{
		{"empty", Arrangement{}},
		{"length mismatch", Arrangement{Parts: []float64{1, 1}, ParentIdx: []int{-1}, ChildAssign: []int{0}}},
		{"child assign mismatch", Arrangement{Parts: []float64{2}, ParentIdx: []int{-1}}},
		{"forward parent", Arrangement{Parts: []float64{1, 1}, ParentIdx: []int{-1, 1}, ChildAssign: []int{0}}},
		{"bad parent", Arrangement{Parts: []float64{1}, ParentIdx: []int{-2}, ChildAssign: []int{0}}},
		{"bad child assign", Arrangement{Parts: []float64{2}, ParentIdx: []int{-1}, ChildAssign: []int{5}}},
		{"negative part", Arrangement{Parts: []float64{-1}, ParentIdx: []int{-1}, ChildAssign: []int{0}}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.a.Validate(s); err == nil {
				t.Fatal("Validate should fail")
			}
		})
	}
}

func TestExecuteBuildsExpectedTree(t *testing.T) {
	m := geo(t)
	s := Scenario{
		Base:         tree.FromSpecs(tree.Spec{C: 1}),
		Parent:       1,
		Contribution: 2,
		ChildTrees:   []tree.Spec{{C: 3}},
	}
	out, err := Execute(m, s, Single(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if out.Contribution != 2 {
		t.Fatalf("Contribution = %v", out.Contribution)
	}
	// Base must not be mutated.
	if s.Base.NumParticipants() != 1 {
		t.Fatalf("base mutated: %d participants", s.Base.NumParticipants())
	}
	// Reward equals the mechanism's reward of a hand-built tree.
	want := tree.FromSpecs(tree.Spec{C: 1, Kids: []tree.Spec{{C: 2, Kids: []tree.Spec{{C: 3}}}}})
	r, err := m.Rewards(want)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.Reward-r.Of(2)) > 1e-12 {
		t.Fatalf("Reward = %v, want %v", out.Reward, r.Of(2))
	}
}

func TestExecuteChainAgainstGeometric(t *testing.T) {
	// Under Geometric, a 2-identity chain split of C=2 earns strictly more
	// than a single join: the head collects the tail's bubble-up.
	m := geo(t)
	s := leafScenario(2)
	single, err := Execute(m, s, Single(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	chain, err := Execute(m, s, ChainSplit(2, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if chain.Reward <= single.Reward {
		t.Fatalf("chain split reward %v should beat single %v", chain.Reward, single.Reward)
	}
	if got := chain.Profit(); math.Abs(got-(chain.Reward-2)) > 1e-12 {
		t.Fatalf("Profit = %v", got)
	}
}

func TestEnumerateCountsAndValidity(t *testing.T) {
	s := Scenario{Base: tree.New(), Parent: tree.Root, Contribution: 2,
		ChildTrees: []tree.Spec{{C: 1}}}
	o := SearchOptions{MaxIdentities: 3, Grains: 3, ContributionFactors: []float64{1}, MaxAssignEnum: 3}
	n := 0
	err := Enumerate(s, o, func(a Arrangement) error {
		if err := a.Validate(s); err != nil {
			return err
		}
		if math.Abs(a.Total()-2) > 1e-12 {
			t.Fatalf("arrangement total = %v, want 2", a.Total())
		}
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// k=1: 1 comp * 1 parent * 1 assign = 1
	// k=2: 1 comp ([1,2],[2,1]) -> 2 comps * 2 parents * 2 assigns = 8
	// k=3: 1 comp * 6 parents * 3 assigns = 18
	if n != 1+8+18 {
		t.Fatalf("enumerated %d arrangements, want 27", n)
	}
}

func TestEnumerateOptionValidation(t *testing.T) {
	s := leafScenario(1)
	bad := []SearchOptions{
		{MaxIdentities: 0, Grains: 4, ContributionFactors: []float64{1}},
		{MaxIdentities: 4, Grains: 2, ContributionFactors: []float64{1}},
		{MaxIdentities: 2, Grains: 4},
	}
	for i, o := range bad {
		if err := Enumerate(s, o, func(Arrangement) error { return nil }); err == nil {
			t.Fatalf("options %d should be rejected", i)
		}
	}
}

func TestBestRewardAttackFindsGeometricViolation(t *testing.T) {
	rep, err := BestRewardAttack(geo(t), leafScenario(2), DefaultSearch())
	if err != nil {
		t.Fatal(err)
	}
	if !ViolatesUSA(rep) {
		t.Fatal("search should find a USA violation for Geometric")
	}
	if rep.RewardGain() <= 0 {
		t.Fatalf("RewardGain = %v", rep.RewardGain())
	}
	if rep.Evaluated == 0 {
		t.Fatal("no arrangements evaluated")
	}
	// The winning attack against Geometric is a chain.
	best := rep.Best.Arrangement
	if len(best.Parts) < 2 {
		t.Fatalf("best attack uses %d identities, expected a split", len(best.Parts))
	}
}

func TestTDRMSurvivesRewardSearch(t *testing.T) {
	m, err := tdrm.Default(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	scenarios := []Scenario{
		leafScenario(2),
		{Base: tree.New(), Parent: tree.Root, Contribution: 1.7,
			ChildTrees: []tree.Spec{{C: 1}, {C: 2.5, Kids: []tree.Spec{{C: 1}}}}},
	}
	for i, s := range scenarios {
		rep, err := BestRewardAttack(m, s, DefaultSearch())
		if err != nil {
			t.Fatal(err)
		}
		if ViolatesUSA(rep) {
			t.Fatalf("scenario %d: TDRM USA violated, gain %v by %+v",
				i, rep.RewardGain(), rep.Best.Arrangement)
		}
	}
}

func TestCDRMSurvivesProfitSearch(t *testing.T) {
	m, err := cdrm.DefaultReciprocal(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s := Scenario{Base: tree.New(), Parent: tree.Root, Contribution: 1.5,
		ChildTrees: []tree.Spec{{C: 2}}}
	rep, err := BestProfitAttack(m, s, GeneralizedSearch())
	if err != nil {
		t.Fatal(err)
	}
	if ViolatesUGSA(rep) {
		t.Fatalf("CDRM UGSA violated, gain %v by %+v", rep.ProfitGain(), rep.Best.Arrangement)
	}
}

func TestTDRMFailsProfitSearch(t *testing.T) {
	// The paper's UGSA counterexample: small own contribution, many
	// mu-sized children. The generalized search must find the violation.
	m, err := tdrm.Default(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	kids := make([]tree.Spec, 30)
	for i := range kids {
		kids[i] = tree.Spec{C: m.Mu()}
	}
	s := Scenario{Base: tree.New(), Parent: tree.Root, Contribution: m.Mu() / 2,
		ChildTrees: kids}
	o := SearchOptions{MaxIdentities: 1, Grains: 1, ContributionFactors: []float64{1, 2}}
	rep, err := BestProfitAttack(m, s, o)
	if err != nil {
		t.Fatal(err)
	}
	if !ViolatesUGSA(rep) {
		t.Fatal("generalized search should reproduce the TDRM UGSA counterexample")
	}
}

func TestExecuteRejectsInvalidArrangement(t *testing.T) {
	if _, err := Execute(geo(t), leafScenario(1), Arrangement{}); err == nil {
		t.Fatal("invalid arrangement should be rejected")
	}
}
