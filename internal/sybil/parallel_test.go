package sybil

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"incentivetree/internal/core"
	"incentivetree/internal/emek"
	"incentivetree/internal/geometric"
	"incentivetree/internal/lottree"
	"incentivetree/internal/tdrm"
	"incentivetree/internal/tree"
	"incentivetree/internal/treegen"
)

func searchTestMechanisms(t *testing.T) []core.Mechanism {
	t.Helper()
	p := core.DefaultParams()
	geo, err := geometric.Default(p)
	if err != nil {
		t.Fatal(err)
	}
	pach, err := lottree.NewLPachira(p, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	td, err := tdrm.Default(p)
	if err != nil {
		t.Fatal(err)
	}
	return []core.Mechanism{geo, pach, td}
}

// randomScenario draws a join decision over a random base tree: random
// parent, contribution, and up to two future child subtrees.
func randomScenario(r *rand.Rand) Scenario {
	base := treegen.Random(r, treegen.Config{N: 1 + r.Intn(10)})
	parent := tree.Root
	if nodes := base.Nodes(); len(nodes) > 0 && r.Intn(2) == 0 {
		parent = nodes[r.Intn(len(nodes))]
	}
	var kids []tree.Spec
	for i := r.Intn(3); i > 0; i-- {
		k := tree.Spec{C: 0.25 + 2*r.Float64()}
		if r.Intn(2) == 0 {
			k.Kids = []tree.Spec{{C: r.Float64()}}
		}
		kids = append(kids, k)
	}
	return Scenario{
		Base:         base,
		Parent:       parent,
		Contribution: 0.5 + 3*r.Float64(),
		ChildTrees:   kids,
	}
}

// TestParallelSearchMatchesSerial is the determinism contract of the
// sharded search: for every worker count, BestRewardAttack and
// BestProfitAttack return Reports identical to the single-goroutine
// legacy path — same Best arrangement (ties broken by enumeration
// index), same scores, same Evaluated count.
func TestParallelSearchMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	mechs := searchTestMechanisms(t)
	for round := 0; round < 3; round++ {
		s := randomScenario(r)
		for _, m := range mechs {
			reward := DefaultSearch()
			reward.Workers = 1
			wantReward, err := BestRewardAttack(m, s, reward)
			if err != nil {
				t.Fatal(err)
			}
			profit := GeneralizedSearch()
			profit.Workers = 1
			wantProfit, err := BestProfitAttack(m, s, profit)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{0, 2, 3, 8} {
				reward.Workers = w
				got, err := BestRewardAttack(m, s, reward)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, wantReward) {
					t.Fatalf("round %d, %s, %d workers: reward report %+v != serial %+v",
						round, m.Name(), w, got, wantReward)
				}
				profit.Workers = w
				gotP, err := BestProfitAttack(m, s, profit)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gotP, wantProfit) {
					t.Fatalf("round %d, %s, %d workers: profit report %+v != serial %+v",
						round, m.Name(), w, gotP, wantProfit)
				}
			}
		}
	}
}

// TestExecutorMatchesExecute pins the scratch-tree rollback path against
// the clone-per-call Execute across arrangement shapes.
func TestExecutorMatchesExecute(t *testing.T) {
	s := Scenario{
		Base:         tree.FromSpecs(tree.Spec{C: 2, Kids: []tree.Spec{{C: 1}}}),
		Parent:       2,
		Contribution: 2.5,
		ChildTrees:   []tree.Spec{{C: 1}, {C: 2, Kids: []tree.Spec{{C: 0.5}}}},
	}
	arrs := []Arrangement{
		Single(2.5, 2),
		ChainSplit(2.5, 3, 2),
		StarSplit(2.5, 4, 2),
		EpsilonChain(2.5, 1, 2),
	}
	for _, m := range searchTestMechanisms(t) {
		ex := NewExecutor(m, s)
		for i, a := range arrs {
			want, err := Execute(m, s, a)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ex.Execute(a)
			if err != nil {
				t.Fatal(err)
			}
			if got.Reward != want.Reward || got.Contribution != want.Contribution {
				t.Fatalf("%s, arrangement %d: executor outcome (%v, %v) != execute (%v, %v)",
					m.Name(), i, got.Reward, got.Contribution, want.Reward, want.Contribution)
			}
		}
	}
}

// TestExecutorSteadyStateAllocs pins the allocation-free evaluation
// path: once an Executor's scratch tree and reward buffer have grown to
// the arrangement sizes in play, further evaluations allocate nothing
// (the TDRM pool may very occasionally be emptied by a concurrent GC, so
// the bound is one allocation per 4-arrangement round rather than zero).
func TestExecutorSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	p := core.DefaultParams()
	em, err := emek.Default(p)
	if err != nil {
		t.Fatal(err)
	}
	mechs := append(searchTestMechanisms(t), em)
	s := Scenario{
		Base:         tree.FromSpecs(tree.Spec{C: 1}),
		Parent:       1,
		Contribution: 2.5,
		ChildTrees:   []tree.Spec{{C: 1}, {C: 0.5, Kids: []tree.Spec{{C: 2}}}},
	}
	arrs := []Arrangement{
		Single(2.5, 2),
		ChainSplit(2.5, 4, 2),
		StarSplit(2.5, 3, 2),
		EpsilonChain(2.5, 1, 2),
	}
	for _, m := range mechs {
		ex := NewExecutor(m, s)
		run := func() {
			for _, a := range arrs {
				if _, err := ex.Execute(a); err != nil {
					t.Fatal(err)
				}
			}
		}
		run() // grow scratch to steady state
		if allocs := testing.AllocsPerRun(100, run); allocs >= 1 {
			t.Errorf("%s: %v allocations per 4-arrangement round, want allocation-free", m.Name(), allocs)
		}
	}
}

// TestEnumerateStopsOnError is the early-exit contract: a non-nil error
// from the callback aborts the enumeration immediately instead of
// merely muting the remaining callbacks.
func TestEnumerateStopsOnError(t *testing.T) {
	s := Scenario{Base: tree.New(), Parent: tree.Root, Contribution: 2}
	sentinel := errors.New("stop")
	calls := 0
	err := Enumerate(s, DefaultSearch(), func(Arrangement) error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Enumerate returned %v, want the callback's error", err)
	}
	if calls != 1 {
		t.Fatalf("enumeration invoked the callback %d times after an error, want 1", calls)
	}
}

// TestSearchWorkerCapping pins that worker counts beyond the block count
// are harmless (extra workers simply find the queue drained).
func TestSearchWorkerCapping(t *testing.T) {
	m, err := geometric.Default(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s := Scenario{Base: tree.New(), Parent: tree.Root, Contribution: 1}
	o := SearchOptions{
		MaxIdentities:       2,
		Grains:              2,
		ContributionFactors: []float64{1},
		MaxAssignEnum:       3,
		Workers:             64, // far beyond the 3 blocks this space has
	}
	rep, err := BestRewardAttack(m, s, o)
	if err != nil {
		t.Fatal(err)
	}
	o.Workers = 1
	want, err := BestRewardAttack(m, s, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, want) {
		t.Fatalf("oversubscribed search report %+v != serial %+v", rep, want)
	}
}
