//go:build !race

package sybil

const raceEnabled = false
