package replica

import (
	"fmt"
	"net/http"
	"strings"
)

// defaultCampaignID mirrors the store's legacy default-campaign id, so
// staleness gating covers the unprefixed /v1/* routes too. (replica
// cannot import internal/store — the dependency points the other way.)
const defaultCampaignID = "default"

// redirectResponse is the 307 body a follower answers writes with.
type redirectResponse struct {
	Error   string `json:"error"`
	Primary string `json:"primary"`
}

// Handler wraps a follower's API handler with the replication
// contract:
//
//   - Writes (anything but GET/HEAD/OPTIONS) are rejected with 307 and
//     a Location on the primary — a follower is strictly read-only.
//   - Reads on replicated campaigns carry X-Itree-Staleness and are
//     rejected with 503 once staleness exceeds Options.MaxStaleness
//     (or while the campaign has no replicated state to serve yet).
//   - /v1/healthz is answered directly: liveness must not depend on
//     the primary being reachable or a sync having completed.
func (m *Manager) Handler(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet, http.MethodHead, http.MethodOptions:
		default:
			loc := m.primary + r.URL.RequestURI()
			w.Header().Set("Location", loc)
			writeJSON(w, http.StatusTemporaryRedirect, redirectResponse{
				Error:   "follower is read-only; retry the request against the primary",
				Primary: loc,
			})
			return
		}
		if r.URL.Path == "/v1/healthz" {
			// Answered here, not by the store: a follower has no default
			// campaign until its first sync, and liveness must not depend
			// on one (or on the primary being reachable).
			writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
			return
		}
		id, ok := campaignForPath(r.URL.Path)
		if !ok {
			next.ServeHTTP(w, r)
			return
		}
		records, age, state := m.Staleness(id)
		switch state {
		case Untracked:
			if m.listed.Load() {
				// The primary does not have this campaign either; let the
				// store produce its normal 404.
				next.ServeHTTP(w, r)
				return
			}
			// Nothing is known yet — the follower has not even listed the
			// primary's campaigns. 503, not a misleading 404.
			m.mStaleReads.Inc()
			w.Header().Set(HeaderStaleness, "unsynced")
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable,
				errorResponse{"follower has not completed its first sync with the primary"})
			return
		case Unsynced:
			m.mStaleReads.Inc()
			w.Header().Set(HeaderStaleness, "unsynced")
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable,
				errorResponse{fmt.Sprintf("campaign %s has no replicated state yet", id)})
			return
		}
		w.Header().Set(HeaderStaleness, fmt.Sprintf("records=%d seconds=%.3f", records, age.Seconds()))
		if max := m.opts.MaxStaleness; max > 0 && age > max {
			m.mStaleReads.Inc()
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{fmt.Sprintf(
				"replica staleness %.3fs exceeds the %s bound (lag %d records)",
				age.Seconds(), max, records)})
			return
		}
		next.ServeHTTP(w, r)
	})
}

// campaignForPath maps an API path to the campaign whose staleness
// governs it. The campaign list endpoint and non-API paths are not
// gated (false); unprefixed legacy routes belong to the default
// campaign.
func campaignForPath(path string) (string, bool) {
	rest, ok := strings.CutPrefix(path, "/v1/")
	if !ok || rest == "" {
		return "", false
	}
	if rest == "campaigns" || rest == "campaigns/" {
		return "", false
	}
	if id, ok := strings.CutPrefix(rest, "campaigns/"); ok {
		if i := strings.IndexByte(id, '/'); i >= 0 {
			id = id[:i]
		}
		if id == "" {
			return "", false
		}
		return id, true
	}
	return defaultCampaignID, true
}
