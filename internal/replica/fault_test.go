package replica_test

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"incentivetree/internal/replica"
	"incentivetree/internal/store"
)

// flexProxy sits between follower and primary so tests can inject the
// failures a real network delivers: severed connections mid-record,
// unreachable primaries, and primaries that change identity (restart).
type flexProxy struct {
	target  atomic.Value // string: current primary base URL
	gateAll atomic.Bool  // refuse everything (primary unreachable)
	// tearJournal > 0: that many journal responses are truncated
	// mid-record and the connection severed.
	tearJournal atomic.Int64
	tears       atomic.Int64
}

func newFlexProxy(target string) *flexProxy {
	p := &flexProxy{}
	p.target.Store(target)
	return p
}

func (p *flexProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if p.gateAll.Load() {
		http.Error(w, "proxy gate closed", http.StatusBadGateway)
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method,
		p.target.Load().(string)+r.URL.RequestURI(), r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	isJournal := strings.Contains(r.URL.Path, "/replica/journal")
	if isJournal && resp.StatusCode == http.StatusOK && len(bytes.TrimSpace(body)) > 20 &&
		p.tearJournal.Load() > 0 && p.tearJournal.Add(-1) >= 0 {
		// Sever the stream mid-record: ship all but the tail of the
		// body, then abort the connection without a clean close.
		p.tears.Add(1)
		w.WriteHeader(resp.StatusCode)
		w.Write(body[:len(body)-10])
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
		}
		panic(http.ErrAbortHandler)
	}
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
}

func TestTornStreamResumesToIdenticalState(t *testing.T) {
	p := startPrimary(t, t.TempDir())
	defer p.stop()
	proxy := newFlexProxy(p.ts.URL)
	pts := httptest.NewServer(proxy)
	defer pts.Close()

	p.write(store.DefaultID, 0, 2)
	f := startFollower(t, pts.URL, 0)
	f.waitApplied(store.DefaultID, p.lastSeq(store.DefaultID))

	// With the follower synced and tailing, sever the next three
	// journal streams mid-record while new writes flow.
	proxy.tearJournal.Store(3)
	p.write(store.DefaultID, 10, 10)
	st := f.waitApplied(store.DefaultID, p.lastSeq(store.DefaultID))
	if proxy.tears.Load() == 0 {
		t.Fatal("proxy never tore a stream; fault not exercised")
	}
	if st.Disconnects == 0 {
		t.Fatal("torn streams should surface as disconnects")
	}
	if st.Resyncs != 1 {
		t.Fatalf("torn streams must resume by tailing, not re-bootstrapping (resyncs=%d)", st.Resyncs)
	}
	requireIdenticalReads(t, p.ts.URL, f.ts.URL, store.DefaultID)

	// And the applied bytes are still exactly the primary's journal.
	p.write(store.DefaultID, 50, 5)
	f.waitApplied(store.DefaultID, p.lastSeq(store.DefaultID))
	requireIdenticalReads(t, p.ts.URL, f.ts.URL, store.DefaultID)
}

func TestPrimaryCrashRestartMidTail(t *testing.T) {
	dir := t.TempDir()
	p := startPrimary(t, dir)
	proxy := newFlexProxy(p.ts.URL)
	pts := httptest.NewServer(proxy)
	defer pts.Close()

	p.write(store.DefaultID, 0, 10)
	f := startFollower(t, pts.URL, 0)
	f.waitApplied(store.DefaultID, p.lastSeq(store.DefaultID))

	// Kill the primary without flush or checkpoint, then bring a new
	// process up over the same data directory (journal replay).
	p.crash()
	p2 := startPrimary(t, dir)
	defer p2.stop()
	proxy.target.Store(p2.ts.URL)
	if got, want := p2.lastSeq(store.DefaultID), uint64(20); got != want {
		t.Fatalf("restarted primary recovered to seq %d, want %d", got, want)
	}
	p2.write(store.DefaultID, 100, 10)

	st := f.waitApplied(store.DefaultID, p2.lastSeq(store.DefaultID))
	if st.Resyncs != 1 {
		t.Fatalf("a primary restart with intact journal should not force a re-bootstrap (resyncs=%d)", st.Resyncs)
	}
	requireIdenticalReads(t, p2.ts.URL, f.ts.URL, store.DefaultID)
}

func TestFollowerRestartMidApply(t *testing.T) {
	p := startPrimary(t, t.TempDir())
	defer p.stop()
	p.write(store.DefaultID, 0, 10)

	f1 := startFollower(t, p.ts.URL, 0)
	f1.waitApplied(store.DefaultID, p.lastSeq(store.DefaultID))
	f1.stop() // kill the follower (its in-memory state evaporates)

	p.write(store.DefaultID, 200, 10)

	// A restarted follower is a fresh process: it re-bootstraps from
	// snapshot and lands on the same bytes.
	f2 := startFollower(t, p.ts.URL, 0)
	f2.waitApplied(store.DefaultID, p.lastSeq(store.DefaultID))
	requireIdenticalReads(t, p.ts.URL, f2.ts.URL, store.DefaultID)
}

func TestCompactionGapForcesReBootstrap(t *testing.T) {
	p := startPrimary(t, t.TempDir())
	defer p.stop()
	proxy := newFlexProxy(p.ts.URL)
	pts := httptest.NewServer(proxy)
	defer pts.Close()

	p.write(store.DefaultID, 0, 5)
	f := startFollower(t, pts.URL, 0)
	f.waitApplied(store.DefaultID, p.lastSeq(store.DefaultID))

	// Cut the follower off, then advance and compact the primary's
	// journal past the follower's position. A long-poll that slipped
	// past the gate may still be held at the primary; let it drain
	// (empty) before writing, or it would deliver the new records.
	proxy.gateAll.Store(true)
	time.Sleep(400 * time.Millisecond)
	p.write(store.DefaultID, 300, 5)
	resp, err := http.Post(p.ts.URL+"/v1/campaigns/"+store.DefaultID+"/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	proxy.gateAll.Store(false)

	// The follower's next poll predates the retained journal: it must
	// get the 410, re-bootstrap from snapshot, and converge.
	st := f.waitApplied(store.DefaultID, p.lastSeq(store.DefaultID))
	if st.Resyncs < 2 {
		t.Fatalf("compaction gap must force a re-bootstrap, got %d resyncs", st.Resyncs)
	}
	requireIdenticalReads(t, p.ts.URL, f.ts.URL, store.DefaultID)
}

func TestStalenessBoundAndWriteRedirect(t *testing.T) {
	p := startPrimary(t, t.TempDir())
	defer p.stop()
	proxy := newFlexProxy(p.ts.URL)
	pts := httptest.NewServer(proxy)
	defer pts.Close()

	p.write(store.DefaultID, 0, 5)
	f := startFollower(t, pts.URL, 300*time.Millisecond)
	f.waitApplied(store.DefaultID, p.lastSeq(store.DefaultID))

	// Healthy: reads pass with a staleness header.
	status, hdr, _ := get(t, f.ts.URL+"/v1/rewards")
	if status != http.StatusOK || !strings.HasPrefix(hdr.Get(replica.HeaderStaleness), "records=") {
		t.Fatalf("healthy read: HTTP %d, staleness %q", status, hdr.Get(replica.HeaderStaleness))
	}

	// Writes never apply locally: 307 with the primary's address.
	noRedirect := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	wresp, err := noRedirect.Post(f.ts.URL+"/v1/contribute", "application/json",
		strings.NewReader(`{"name":"p0000","amount":1}`))
	if err != nil {
		t.Fatal(err)
	}
	wresp.Body.Close()
	if wresp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("write on follower: HTTP %d, want 307", wresp.StatusCode)
	}
	if loc := wresp.Header.Get("Location"); loc != pts.URL+"/v1/contribute" {
		t.Fatalf("redirect Location %q, want %q", loc, pts.URL+"/v1/contribute")
	}

	// Primary gone: once the bound is exceeded, reads are refused.
	proxy.gateAll.Store(true)
	deadline := time.Now().Add(waitTimeout)
	for {
		status, hdr, body := get(t, f.ts.URL+"/v1/rewards")
		if status == http.StatusServiceUnavailable {
			if !strings.HasPrefix(hdr.Get(replica.HeaderStaleness), "records=") {
				t.Fatalf("503 lost the staleness header: %q", hdr.Get(replica.HeaderStaleness))
			}
			if !strings.Contains(string(body), "staleness") {
				t.Fatalf("503 body %q does not explain staleness", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("reads never hit the staleness bound after the primary vanished")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The rejection is visible on the metric surface too.
	var stale float64
	for _, mv := range f.reg.Snapshot() {
		if mv.Name == "itree_replica_stale_reads_total" {
			stale = mv.Value
		}
	}
	if stale < 1 {
		t.Fatalf("itree_replica_stale_reads_total = %v, want >= 1", stale)
	}

	// Back online: the follower recovers and reads open up again.
	proxy.gateAll.Store(false)
	deadline = time.Now().Add(waitTimeout)
	for {
		if status, _, _ := get(t, f.ts.URL+"/v1/rewards"); status == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("reads did not recover after the primary returned")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestHealthzAndPreSyncReads(t *testing.T) {
	// A follower pointed at a dead primary: healthz must answer, data
	// reads must 503 (never a misleading 404).
	f := startFollower(t, "http://127.0.0.1:1", 0)
	if status, _, body := get(t, f.ts.URL+"/v1/healthz"); status != http.StatusOK {
		t.Fatalf("healthz on unsynced follower: HTTP %d (%s)", status, body)
	}
	status, hdr, _ := get(t, f.ts.URL+"/v1/rewards")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("pre-sync read: HTTP %d, want 503", status)
	}
	if hdr.Get(replica.HeaderStaleness) != "unsynced" {
		t.Fatalf("pre-sync staleness header %q, want unsynced", hdr.Get(replica.HeaderStaleness))
	}
}
