package replica

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"os"
	"strconv"
	"time"

	"incentivetree/internal/journal"
	"incentivetree/internal/obs"
	"incentivetree/internal/server"
)

// Streaming tunables for the journal endpoint.
const (
	// maxWait caps the long-poll hold a client may request.
	maxWait = 30 * time.Second
	// pollInterval is how often a held request re-checks the journal.
	pollInterval = 20 * time.Millisecond
	// heartbeatEvery paces blank-line heartbeats during a hold.
	heartbeatEvery = 500 * time.Millisecond
	// flushEvery flushes the response after this many streamed records,
	// so a follower catching up over a large suffix sees steady progress.
	flushEvery = 256
)

// PrimaryCampaign is the read-side view of one hosted campaign that
// the replication endpoints need. internal/store adapts its Campaign;
// tests build it directly around a bare server.Server.
type PrimaryCampaign struct {
	// Meta is the campaign configuration shipped to followers.
	Meta Meta
	// Snapshot exports an atomic state snapshot (server.SnapshotState).
	Snapshot func() server.Snapshot
	// LastSeq returns the committed sequence number.
	LastSeq func() uint64
	// CheckpointedSeq returns the highest sequence covered by a durable
	// snapshot — the journal retains nothing at or below it after
	// compaction. Zero when the campaign has never checkpointed.
	CheckpointedSeq func() uint64
	// JournalPath locates the campaign's journal file; empty means the
	// campaign has no store-managed journal and cannot stream.
	JournalPath string
}

// Publisher serves the primary side of the replication protocol. A
// single Publisher handles every campaign; per-request state lives on
// the stack. Pass a nil registry to run uninstrumented.
type Publisher struct {
	mSnapshots    *obs.Counter
	mStreams      *obs.Counter
	mStreamEvents *obs.Counter
	mGapResponses *obs.Counter
}

// NewPublisher builds a Publisher, registering its counters on reg
// (nil = unregistered counters, still safe to use).
func NewPublisher(reg *obs.Registry) *Publisher {
	p := &Publisher{
		mSnapshots:    new(obs.Counter),
		mStreams:      new(obs.Counter),
		mStreamEvents: new(obs.Counter),
		mGapResponses: new(obs.Counter),
	}
	if reg != nil {
		p.mSnapshots = reg.Counter("itree_replica_snapshots_served_total",
			"Replication snapshot requests served to followers.")
		p.mStreams = reg.Counter("itree_replica_streams_total",
			"Replication journal-stream requests served to followers.")
		p.mStreamEvents = reg.Counter("itree_replica_stream_events_total",
			"Journal events streamed to followers.")
		p.mGapResponses = reg.Counter("itree_replica_gap_responses_total",
			"Journal-stream requests refused with 410 because compaction dropped the requested records.")
	}
	return p
}

// ServeSnapshot answers GET .../replica/snapshot: the campaign meta
// plus an atomic state snapshot, stamped with the committed sequence.
func (p *Publisher) ServeSnapshot(w http.ResponseWriter, r *http.Request, c PrimaryCampaign) {
	snap := c.Snapshot()
	w.Header().Set(HeaderCommittedSeq, strconv.FormatUint(c.LastSeq(), 10))
	writeJSON(w, http.StatusOK, SnapshotDoc{Meta: c.Meta, Snapshot: snap})
	p.mSnapshots.Inc()
}

// gapResponse is the 410 body telling a follower to re-bootstrap.
type gapResponse struct {
	Error           string `json:"error"`
	CheckpointedSeq uint64 `json:"checkpointed_seq"`
}

// ServeJournal answers GET .../replica/journal?from=<seq>&wait=<dur>:
// a long-poll NDJSON stream of journal records from <seq> onward.
//
// The response is one batch: everything available is streamed and the
// request completes; the follower immediately re-polls from its new
// position. When nothing is available yet the request is held up to
// <wait> (emitting heartbeats), so a caught-up follower learns of new
// commits within one round trip. Records compacted away by a
// checkpoint yield 410 — the distinct "snapshot required" signal — and
// never an empty stream.
func (p *Publisher) ServeJournal(w http.ResponseWriter, r *http.Request, c PrimaryCampaign) {
	p.mStreams.Inc()
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil || from == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{"from must be a positive sequence number"})
		return
	}
	var wait time.Duration
	if ws := r.URL.Query().Get("wait"); ws != "" {
		wait, err = time.ParseDuration(ws)
		if err != nil || wait < 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{"wait must be a non-negative duration"})
			return
		}
		if wait > maxWait {
			wait = maxWait
		}
	}
	if c.JournalPath == "" {
		writeJSON(w, http.StatusServiceUnavailable,
			errorResponse{"campaign has no managed journal; replication requires -data-dir persistence"})
		return
	}
	if cp := c.CheckpointedSeq(); from <= cp {
		p.mGapResponses.Inc()
		w.Header().Set(HeaderCommittedSeq, strconv.FormatUint(c.LastSeq(), 10))
		writeJSON(w, http.StatusGone, gapResponse{
			Error:           fmt.Sprintf("records at seq %d were compacted (checkpoint covers %d); snapshot required", from, cp),
			CheckpointedSeq: cp,
		})
		return
	}

	s := &journalStream{pub: p, w: w, c: c, next: from}
	s.flusher, _ = w.(http.Flusher)
	defer s.closeFile()
	if err := s.openFile(); err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{err.Error()})
		return
	}
	s.run(r.Context(), time.Now().Add(wait))
}

// journalStream is the per-request state of one ServeJournal call.
type journalStream struct {
	pub     *Publisher
	w       http.ResponseWriter
	flusher http.Flusher
	c       PrimaryCampaign

	f      *os.File // nil once the stream is aborted; may be reopened
	offset int64    // consumed complete-record prefix of f
	next   uint64   // the sequence number the follower needs next
	sent   int
	enc    *journal.Encoder // non-nil once headers are out
}

func (s *journalStream) openFile() error {
	f, err := os.Open(s.c.JournalPath)
	if errors.Is(err, fs.ErrNotExist) {
		return nil // empty journal: nothing to stream yet
	}
	if err != nil {
		return fmt.Errorf("open journal: %w", err)
	}
	s.f = f
	s.offset = 0
	return nil
}

func (s *journalStream) closeFile() {
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
}

// sendHeader commits the 200 response. The committed sequence is
// captured at this moment; records streamed later may exceed it and
// the follower takes the max.
func (s *journalStream) sendHeader() {
	if s.enc != nil {
		return
	}
	s.w.Header().Set(HeaderCommittedSeq, strconv.FormatUint(s.c.LastSeq(), 10))
	s.w.Header().Set("Content-Type", "application/x-ndjson")
	//itreevet:ignore httpcontract streaming NDJSON response, not a JSON error; the s.enc guard makes the commit idempotent
	s.w.WriteHeader(http.StatusOK)
	s.enc = journal.NewEncoder(s.w)
}

func (s *journalStream) flush() {
	if s.flusher != nil {
		s.flusher.Flush()
	}
}

// scan streams every complete record >= next currently in the file.
// It returns stop=true when the response cannot usefully continue
// (write error, mid-log corruption, or a compaction gap).
func (s *journalStream) scan() (stop bool) {
	if s.f == nil {
		return false
	}
	if _, err := s.f.Seek(s.offset, io.SeekStart); err != nil {
		return true
	}
	dec := journal.NewDecoder(s.f)
	for {
		e, err := dec.Next()
		if err != nil {
			s.offset += dec.Offset()
			// io.EOF is a clean boundary; a torn tail is an append still
			// in flight — both mean "drained for now". Anything else is
			// mid-log corruption: abandon the stream.
			return err != io.EOF && !errors.Is(err, journal.ErrTornTail)
		}
		if e.Seq < s.next {
			continue // prefix the follower already has
		}
		if e.Seq > s.next {
			// The records between next and e.Seq no longer exist here —
			// compaction replaced the file mid-stream. If headers are not
			// out yet this surfaces as 410; otherwise the stream just
			// ends and the follower's next poll gets the 410.
			if s.enc == nil {
				s.pub.mGapResponses.Inc()
				//itreevet:ignore httpcontract the enc==nil guard proves headers are not out on this path
				writeJSON(s.w, http.StatusGone, gapResponse{
					Error:           fmt.Sprintf("records at seq %d were compacted; snapshot required", s.next),
					CheckpointedSeq: s.c.CheckpointedSeq(),
				})
			}
			return true
		}
		s.sendHeader() //itreevet:ignore httpcontract idempotent: sendHeader returns early once s.enc is set
		// Re-encode in the mode the record had on disk, so the bytes a
		// follower hashes equal the bytes in this file.
		s.enc.SetMode(dec.Mode())
		if err := s.enc.Encode(e); err != nil {
			return true // client went away
		}
		s.next++
		s.sent++
		s.pub.mStreamEvents.Inc()
		if s.sent%flushEvery == 0 {
			s.flush()
		}
	}
}

// run drives the scan/hold loop until a batch is delivered, the
// deadline passes, or the client disconnects.
func (s *journalStream) run(ctx context.Context, deadline time.Time) {
	lastBeat := time.Now()
	for ctx.Err() == nil {
		//itreevet:ignore httpcontract scan only writes through the idempotent sendHeader or the enc==nil-guarded 410
		if stop := s.scan(); stop {
			return
		}
		if s.sent > 0 {
			break // one batch per request: deliver and complete
		}
		if !time.Now().Before(deadline) {
			break
		}
		// Hold for the first record. Headers go out now so heartbeats
		// can flow and intermediaries keep the connection open.
		s.sendHeader() //itreevet:ignore httpcontract idempotent: sendHeader returns early once s.enc is set
		if time.Since(lastBeat) >= heartbeatEvery {
			if s.enc.Heartbeat() != nil {
				return
			}
			lastBeat = time.Now()
		}
		s.flush()
		select {
		case <-ctx.Done():
			return
		case <-time.After(pollInterval):
		}
		if s.c.LastSeq() >= s.next && s.f != nil {
			// Committed records we cannot see: the checkpointer replaced
			// the journal file under our descriptor (appends after a
			// compaction go to the new inode). Reopen and rescan.
			if fi, err := s.f.Stat(); err == nil {
				if cur, err2 := os.Stat(s.c.JournalPath); err2 == nil && !os.SameFile(fi, cur) {
					s.closeFile()
					if s.openFile() != nil {
						return
					}
				}
			}
		}
	}
	//itreevet:ignore httpcontract an empty hold still answers 200 with the committed seq; idempotent via the s.enc guard
	s.sendHeader()
	s.flush()
}
