package replica

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"incentivetree/internal/journal"
	"incentivetree/internal/obs"
	"incentivetree/internal/server"
)

// Follower tunables (overridable via Options).
const (
	defaultRefresh    = 2 * time.Second
	defaultWait       = time.Second
	defaultMaxBackoff = 2 * time.Second
	minBackoff        = 50 * time.Millisecond
	// applyBatchMax bounds events applied per write-lock acquisition
	// while catching up, so reads interleave with a large backlog.
	applyBatchMax = 512
)

// Applier is the follower-side deployment of one campaign:
// *server.Server satisfies it.
type Applier interface {
	ApplyReplicated(events []journal.Event) error
	LastSeq() uint64
}

// Target is the follower-side campaign collection the Manager
// populates. *store.Store in follower mode implements it: Adopt
// installs (or replaces) a campaign from a replicated snapshot, Drop
// removes one that disappeared from the primary.
type Target interface {
	Adopt(meta Meta, snap server.Snapshot) (Applier, error)
	Drop(id string) error
}

// Options configure a Manager.
type Options struct {
	// Primary is the primary's base URL, e.g. "http://10.0.0.1:8080".
	Primary string
	// Target receives replicated campaigns. Required.
	Target Target
	// Registry, when set, receives the replica metric family.
	Registry *obs.Registry
	// Client is the HTTP client for primary requests (default: a client
	// with no overall timeout, since journal requests long-poll).
	Client *http.Client
	// MaxStaleness bounds follower reads: beyond it the Handler answers
	// 503. Zero disables the bound (reads always serve, however stale).
	MaxStaleness time.Duration
	// Refresh is the campaign-list poll period (default 2s).
	Refresh time.Duration
	// Wait is the journal long-poll hold requested from the primary
	// (default 1s). It bounds how stale an idle, healthy follower can
	// be: staleness is confirmed once per completed poll.
	Wait time.Duration
	// MaxBackoff caps the retry backoff after stream failures
	// (default 2s, starting at 50ms).
	MaxBackoff time.Duration
}

// SyncState classifies a campaign's replication state on a follower.
type SyncState int

const (
	// Untracked: the Manager is not replicating this campaign.
	Untracked SyncState = iota
	// Unsynced: replication is starting but no snapshot has been
	// adopted yet — there is no state to serve.
	Unsynced
	// Synced: the campaign serves replicated state (possibly stale).
	Synced
)

// Manager replicates every campaign of one primary into a Target and
// serves the follower side of the staleness contract. Create with
// NewManager, drive with Run.
type Manager struct {
	opts    Options
	primary string
	client  *http.Client

	mu    sync.Mutex
	tails map[string]*tail

	// listed flips once the first campaign listing succeeds; before
	// that, every read is answered 503 (the follower knows nothing).
	listed atomic.Bool

	mApplied     *obs.Counter
	mResyncs     *obs.Counter
	mDisconnects *obs.Counter
	mStaleReads  *obs.Counter
}

// NewManager builds a Manager over opts.
func NewManager(opts Options) (*Manager, error) {
	if opts.Primary == "" {
		return nil, errors.New("replica: Options.Primary is required")
	}
	if opts.Target == nil {
		return nil, errors.New("replica: Options.Target is required")
	}
	if opts.Refresh <= 0 {
		opts.Refresh = defaultRefresh
	}
	if opts.Wait <= 0 {
		opts.Wait = defaultWait
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = defaultMaxBackoff
	}
	m := &Manager{
		opts:         opts,
		primary:      strings.TrimRight(opts.Primary, "/"),
		client:       opts.Client,
		tails:        make(map[string]*tail),
		mApplied:     new(obs.Counter),
		mResyncs:     new(obs.Counter),
		mDisconnects: new(obs.Counter),
		mStaleReads:  new(obs.Counter),
	}
	if m.client == nil {
		m.client = &http.Client{}
	}
	if reg := opts.Registry; reg != nil {
		m.mApplied = reg.Counter("itree_replica_applied_total",
			"Journal events applied from the primary.")
		m.mResyncs = reg.Counter("itree_replica_resyncs_total",
			"Snapshot bootstraps: initial syncs plus gap- or divergence-forced re-bootstraps.")
		m.mDisconnects = reg.Counter("itree_replica_disconnects_total",
			"Journal-stream failures that triggered a reconnect with backoff.")
		m.mStaleReads = reg.Counter("itree_replica_stale_reads_total",
			"Follower reads rejected with 503 for exceeding the staleness bound (or pre-sync).")
	}
	return m, nil
}

// tail is the replication state of one campaign on the follower.
type tail struct {
	id      string
	cancel  context.CancelFunc
	done    chan struct{}
	started time.Time

	applier Applier // owned by the tail goroutine after bootstrap

	synced        atomic.Bool   // a snapshot is adopted and the stream is trusted
	applied       atomic.Uint64 // last sequence replayed into the Target
	committed     atomic.Uint64 // highest committed sequence learned from the primary
	confirmedNano atomic.Int64  // wall clock of the last confirmed caught-up poll
	resyncs       atomic.Uint64
	disconnects   atomic.Uint64

	// hashMu guards the rolling hash of applied record bytes (canonical
	// journal encoding) since baseSeq — the journal-hash half of the
	// byte-identity tests.
	hashMu  sync.Mutex
	hash    hash.Hash
	baseSeq uint64
}

func (t *tail) confirm() { t.confirmedNano.Store(time.Now().UnixNano()) }

// storeMax raises a to v if v is larger.
func storeMax(a *atomic.Uint64, v uint64) {
	for {
		old := a.Load()
		if v <= old || a.CompareAndSwap(old, v) {
			return
		}
	}
}

// Run drives replication until ctx is cancelled: it polls the
// primary's campaign list, keeps one tailing goroutine per campaign,
// and tears down campaigns that disappear. It always returns nil after
// a clean shutdown (tails drained).
func (m *Manager) Run(ctx context.Context) error {
	ticker := time.NewTicker(m.opts.Refresh)
	defer ticker.Stop()
	m.refresh(ctx)
	for {
		select {
		case <-ctx.Done():
			m.stopAll()
			return nil
		case <-ticker.C:
			m.refresh(ctx)
		}
	}
}

// refresh reconciles the tail set against the primary's campaign list.
// Listing failures keep the current set: existing tails back off on
// their own, and serving (bounded-stale) state through a primary
// outage is the point of a replica.
func (m *Manager) refresh(ctx context.Context) {
	ids, err := m.listCampaigns(ctx)
	if err != nil {
		if ctx.Err() == nil {
			log.Printf("replica: list campaigns: %v", err)
		}
		return
	}
	m.listed.Store(true)
	want := make(map[string]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	m.mu.Lock()
	var stale []*tail
	for id, t := range m.tails {
		if !want[id] {
			stale = append(stale, t)
			delete(m.tails, id)
		}
	}
	var fresh []string
	for _, id := range ids {
		if _, ok := m.tails[id]; !ok {
			fresh = append(fresh, id)
			m.tails[id] = m.newTail(ctx, id)
		}
	}
	m.mu.Unlock()
	for _, t := range stale {
		t.cancel()
		<-t.done
		m.unregisterGauges(t.id)
		if err := m.opts.Target.Drop(t.id); err != nil {
			log.Printf("replica: drop %s: %v", t.id, err)
		}
	}
	_ = fresh
}

// newTail starts replicating one campaign. Caller holds m.mu.
func (m *Manager) newTail(ctx context.Context, id string) *tail {
	tctx, cancel := context.WithCancel(ctx)
	t := &tail{
		id:      id,
		cancel:  cancel,
		done:    make(chan struct{}),
		started: time.Now(),
		hash:    sha256.New(),
	}
	m.registerGauges(id)
	go m.runTail(tctx, t)
	return t
}

func (m *Manager) registerGauges(id string) {
	reg := m.opts.Registry
	if reg == nil {
		return
	}
	reg.GaugeFunc("itree_replica_lag_records",
		"Journal records the primary has committed beyond this follower.", func() float64 {
			records, _, _ := m.Staleness(id)
			return float64(records)
		}, "campaign", id)
	reg.GaugeFunc("itree_replica_lag_seconds",
		"Seconds since this follower last confirmed it was caught up with the primary.", func() float64 {
			_, age, state := m.Staleness(id)
			if state == Untracked {
				return 0
			}
			return age.Seconds()
		}, "campaign", id)
}

func (m *Manager) unregisterGauges(id string) {
	if reg := m.opts.Registry; reg != nil {
		reg.Unregister("itree_replica_lag_records", "campaign", id)
		reg.Unregister("itree_replica_lag_seconds", "campaign", id)
	}
}

// stopAll cancels and drains every tail (shutdown path). Replicated
// state stays in the Target: the process is exiting anyway, and tests
// inspect it after Run returns.
func (m *Manager) stopAll() {
	m.mu.Lock()
	tails := make([]*tail, 0, len(m.tails))
	for _, t := range m.tails {
		tails = append(tails, t)
	}
	m.tails = make(map[string]*tail)
	m.mu.Unlock()
	for _, t := range tails {
		t.cancel()
		<-t.done
		m.unregisterGauges(t.id)
	}
}

// runTail is one campaign's replication loop: bootstrap when needed,
// stream, and back off exponentially on failures.
func (m *Manager) runTail(ctx context.Context, t *tail) {
	defer close(t.done)
	backoff := minBackoff
	for ctx.Err() == nil {
		err := m.syncOnce(ctx, t)
		if ctx.Err() != nil {
			return
		}
		if err == nil {
			backoff = minBackoff
			continue
		}
		t.disconnects.Add(1)
		m.mDisconnects.Inc()
		select {
		case <-ctx.Done():
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > m.opts.MaxBackoff {
			backoff = m.opts.MaxBackoff
		}
	}
}

// syncOnce performs one protocol round: a snapshot bootstrap if the
// campaign is not synced, then one journal poll.
func (m *Manager) syncOnce(ctx context.Context, t *tail) error {
	if !t.synced.Load() {
		if err := m.bootstrap(ctx, t); err != nil {
			return err
		}
	}
	return m.tailOnce(ctx, t)
}

// bootstrap adopts the primary's current snapshot, resetting the
// applied position and the record hash.
func (m *Manager) bootstrap(ctx context.Context, t *tail) error {
	resp, err := m.get(ctx, "/v1/campaigns/"+t.id+"/replica/snapshot")
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("snapshot %s: HTTP %d", t.id, resp.StatusCode)
	}
	committedHdr, _ := strconv.ParseUint(resp.Header.Get(HeaderCommittedSeq), 10, 64)
	var doc SnapshotDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return fmt.Errorf("snapshot %s: decode: %w", t.id, err)
	}
	if doc.Meta.ID != t.id {
		return fmt.Errorf("snapshot %s: document claims campaign %q", t.id, doc.Meta.ID)
	}
	applier, err := m.opts.Target.Adopt(doc.Meta, doc.Snapshot)
	if err != nil {
		return fmt.Errorf("adopt %s: %w", t.id, err)
	}
	base := doc.Snapshot.LastSeq
	t.applier = applier
	t.hashMu.Lock()
	t.hash = sha256.New()
	t.baseSeq = base
	t.hashMu.Unlock()
	t.applied.Store(base)
	t.committed.Store(base)
	storeMax(&t.committed, committedHdr)
	t.synced.Store(true)
	t.resyncs.Add(1)
	m.mResyncs.Inc()
	if base >= t.committed.Load() {
		t.confirm()
	}
	return nil
}

// tailOnce issues one long-poll journal request and applies whatever
// arrives. A 410 flips the campaign back to unsynced (re-bootstrap on
// the next round, without backoff); stream errors reconnect with
// backoff after applying the complete prefix that did arrive.
func (m *Manager) tailOnce(ctx context.Context, t *tail) error {
	from := t.applied.Load() + 1
	resp, err := m.get(ctx, fmt.Sprintf("/v1/campaigns/%s/replica/journal?from=%d&wait=%s", t.id, from, m.opts.Wait))
	if err != nil {
		return err
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		// The records we need were compacted away: snapshot required.
		t.synced.Store(false)
		return nil
	default:
		return fmt.Errorf("journal %s: HTTP %d", t.id, resp.StatusCode)
	}
	committedHdr, _ := strconv.ParseUint(resp.Header.Get(HeaderCommittedSeq), 10, 64)
	if committedHdr < t.applied.Load() {
		// The primary is behind what we already applied: it lost events
		// (restored from an older state). Our suffix never happened —
		// re-bootstrap to converge on the primary's truth.
		t.synced.Store(false)
		return nil
	}
	storeMax(&t.committed, committedHdr)

	dec := journal.NewDecoder(resp.Body)
	dec.ExpectSeq(from)
	batch := make([]streamRecord, 0, applyBatchMax)
	var streamErr error
	for streamErr == nil {
		e, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			// Torn record (connection cut mid-line), wire gap, or
			// corruption: keep the complete prefix, reconnect for the
			// rest. Persistent gaps resolve through the 410 path.
			streamErr = fmt.Errorf("journal %s: stream: %w", t.id, err)
			break
		}
		batch = append(batch, streamRecord{ev: e, mode: dec.Mode()})
		if len(batch) >= applyBatchMax {
			if err := m.apply(t, batch); err != nil {
				return err
			}
			batch = batch[:0]
		}
	}
	if err := m.apply(t, batch); err != nil {
		return err
	}
	if streamErr != nil {
		return streamErr
	}
	if t.applied.Load() >= t.committed.Load() {
		// A completed poll with nothing outstanding: the follower was
		// provably caught up at this instant.
		t.confirm()
	}
	return nil
}

// streamRecord is one event off the replication stream together with
// the wire format it arrived in — the format the record has in the
// primary's journal file, which the rolling hash must reproduce.
type streamRecord struct {
	ev   journal.Event
	mode journal.Mode
}

// apply replays one batch into the campaign's deployment and extends
// the rolling record hash.
func (m *Manager) apply(t *tail, batch []streamRecord) error {
	if len(batch) == 0 {
		return nil
	}
	events := make([]journal.Event, len(batch))
	for i, r := range batch {
		events[i] = r.ev
	}
	if err := t.applier.ApplyReplicated(events); err != nil {
		// Divergence (the state may be partially advanced): discard and
		// re-bootstrap rather than serve a state no primary ever had.
		t.synced.Store(false)
		return fmt.Errorf("apply %s: %w", t.id, err)
	}
	last := events[len(events)-1].Seq
	t.applied.Store(last)
	storeMax(&t.committed, last)
	m.mApplied.Add(uint64(len(batch)))
	t.hashMu.Lock()
	enc := journal.NewEncoder(t.hash)
	for _, r := range batch {
		// Each record re-encodes in the mode it was decoded from, so the
		// hash tracks the primary's file bytes regardless of format (or
		// mixture). Events came off a Decoder, so they re-encode
		// losslessly; sha256 writes cannot fail.
		enc.SetMode(r.mode)
		_ = enc.Encode(r.ev)
	}
	t.hashMu.Unlock()
	return nil
}

// listCampaigns fetches the primary's campaign ids.
func (m *Manager) listCampaigns(ctx context.Context) ([]string, error) {
	resp, err := m.get(ctx, "/v1/campaigns")
	if err != nil {
		return nil, err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	var list []struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return nil, err
	}
	ids := make([]string, 0, len(list))
	for _, c := range list {
		ids = append(ids, c.ID)
	}
	return ids, nil
}

func (m *Manager) get(ctx context.Context, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.primary+path, nil)
	if err != nil {
		return nil, err
	}
	return m.client.Do(req)
}

// drain consumes the rest of a response body so connections are
// reused, then closes it.
func drain(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// Staleness reports a campaign's replication lag: outstanding records,
// the age since the follower last confirmed it was caught up, and the
// sync state. For Unsynced campaigns the age counts from tail start.
func (m *Manager) Staleness(id string) (records uint64, age time.Duration, state SyncState) {
	m.mu.Lock()
	t := m.tails[id]
	m.mu.Unlock()
	if t == nil {
		return 0, 0, Untracked
	}
	applied, committed := t.applied.Load(), t.committed.Load()
	if committed > applied {
		records = committed - applied
	}
	if t.resyncs.Load() == 0 {
		return records, time.Since(t.started), Unsynced
	}
	conf := t.confirmedNano.Load()
	if conf == 0 {
		return records, time.Since(t.started), Synced
	}
	return records, time.Since(time.Unix(0, conf)), Synced
}

// Status is a point-in-time view of one campaign's replication state,
// for operations and the byte-identity tests.
type Status struct {
	ID           string
	State        SyncState
	AppliedSeq   uint64
	CommittedSeq uint64
	LagRecords   uint64
	Age          time.Duration
	Resyncs      uint64
	Disconnects  uint64
	// BaseSeq is the snapshot sequence the current bootstrap started
	// from; AppliedHash is the hex sha256 of every record byte applied
	// since (canonical journal encoding). A follower bootstrapped at
	// BaseSeq 0 hashes exactly the primary's journal file.
	BaseSeq     uint64
	AppliedHash string
}

// Status returns the replication status of one campaign.
func (m *Manager) Status(id string) (Status, bool) {
	m.mu.Lock()
	t := m.tails[id]
	m.mu.Unlock()
	if t == nil {
		return Status{}, false
	}
	records, age, state := m.Staleness(id)
	t.hashMu.Lock()
	sum := hex.EncodeToString(t.hash.Sum(nil))
	base := t.baseSeq
	t.hashMu.Unlock()
	return Status{
		ID:           id,
		State:        state,
		AppliedSeq:   t.applied.Load(),
		CommittedSeq: t.committed.Load(),
		LagRecords:   records,
		Age:          age,
		Resyncs:      t.resyncs.Load(),
		Disconnects:  t.disconnects.Load(),
		BaseSeq:      base,
		AppliedHash:  sum,
	}, true
}
