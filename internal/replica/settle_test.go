package replica_test

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"incentivetree/internal/store"
)

// settleEpoch settles the next payout epoch on the primary over HTTP.
func settleEpoch(t *testing.T, baseURL, campaign string) {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/campaigns/"+campaign+"/epochs/settle", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("settle: HTTP %d", resp.StatusCode)
	}
}

// claim claims one (participant, epoch) share on the primary and
// returns the HTTP status.
func claim(t *testing.T, baseURL, campaign, name string, epoch uint64) int {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/campaigns/"+campaign+"/claims", "application/json",
		strings.NewReader(fmt.Sprintf(`{"name":%q,"epoch":%d}`, name, epoch)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// requireIdenticalLedger compares the settlement read surface — the
// epoch list, one epoch's frozen share table, and a participant's
// claims account — byte for byte between primary and follower.
func requireIdenticalLedger(t *testing.T, primaryURL, followerURL, campaign, name string) {
	t.Helper()
	for _, path := range []string{"/epochs", "/epochs/1", "/claims", "/claims?name=" + name} {
		p := mustGet(t, primaryURL+"/v1/campaigns/"+campaign+path)
		f := mustGet(t, followerURL+"/v1/campaigns/"+campaign+path)
		if !bytes.Equal(p, f) {
			t.Fatalf("%s %s: ledger bytes differ:\nprimary:  %s\nfollower: %s", campaign, path, p, f)
		}
	}
}

// TestSettleReplicatesThroughFaults is the replication contract for
// the settlement subsystem: settle and claim records replay on
// followers to byte-identical ledgers — through torn journal streams,
// a primary crash-restart, and a cold follower bootstrap whose ledger
// arrives inside the checkpoint snapshot rather than the live tail.
func TestSettleReplicatesThroughFaults(t *testing.T) {
	dir := t.TempDir()
	p := startPrimary(t, dir)
	proxy := newFlexProxy(p.ts.URL)
	pts := httptest.NewServer(proxy)
	defer pts.Close()

	p.write(store.DefaultID, 0, 6)
	settleEpoch(t, p.ts.URL, store.DefaultID)
	if code := claim(t, p.ts.URL, store.DefaultID, "p0000", 1); code != http.StatusOK {
		t.Fatalf("claim: HTTP %d", code)
	}

	f := startFollower(t, pts.URL, 0)
	f.waitApplied(store.DefaultID, p.lastSeq(store.DefaultID))
	requireIdenticalReads(t, p.ts.URL, f.ts.URL, store.DefaultID)
	requireIdenticalLedger(t, p.ts.URL, f.ts.URL, store.DefaultID, "p0000")

	// Settlement writes never apply on a follower: 307 to the primary.
	noRedirect := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	for _, path := range []string{"/epochs/settle", "/claims"} {
		resp, err := noRedirect.Post(f.ts.URL+"/v1/campaigns/"+store.DefaultID+path,
			"application/json", strings.NewReader(`{"name":"p0001","epoch":1}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusTemporaryRedirect {
			t.Fatalf("POST %s on follower: HTTP %d, want 307", path, resp.StatusCode)
		}
	}

	// Sever the next journal streams mid-record while settle and claim
	// records flow: the follower must resume tailing onto exact bytes.
	proxy.tearJournal.Store(2)
	p.write(store.DefaultID, 10, 6)
	settleEpoch(t, p.ts.URL, store.DefaultID)
	if code := claim(t, p.ts.URL, store.DefaultID, "p0011", 2); code != http.StatusOK {
		t.Fatalf("claim after tear: HTTP %d", code)
	}
	st := f.waitApplied(store.DefaultID, p.lastSeq(store.DefaultID))
	if proxy.tears.Load() == 0 {
		t.Fatal("proxy never tore a stream; fault not exercised")
	}
	if st.Resyncs != 1 {
		t.Fatalf("torn settle stream must resume by tailing, not re-bootstrapping (resyncs=%d)", st.Resyncs)
	}
	requireIdenticalReads(t, p.ts.URL, f.ts.URL, store.DefaultID)
	requireIdenticalLedger(t, p.ts.URL, f.ts.URL, store.DefaultID, "p0000")

	// Kill the primary without flush or checkpoint. The restart replays
	// the settle/claim records from its journal; the follower resumes.
	p.crash()
	p2 := startPrimary(t, dir)
	defer p2.stop()
	proxy.target.Store(p2.ts.URL)
	// The replayed ledger is authoritative: the claimed shares stay
	// claimed across the crash.
	for _, c := range []struct {
		name  string
		epoch uint64
	}{{"p0000", 1}, {"p0011", 2}} {
		if code := claim(t, p2.ts.URL, store.DefaultID, c.name, c.epoch); code != http.StatusConflict {
			t.Fatalf("re-claim %s epoch %d after crash: HTTP %d, want 409", c.name, c.epoch, code)
		}
	}
	p2.write(store.DefaultID, 100, 4)
	st = f.waitApplied(store.DefaultID, p2.lastSeq(store.DefaultID))
	if st.Resyncs != 1 {
		t.Fatalf("primary restart with intact journal should not force a re-bootstrap (resyncs=%d)", st.Resyncs)
	}
	requireIdenticalReads(t, p2.ts.URL, f.ts.URL, store.DefaultID)
	requireIdenticalLedger(t, p2.ts.URL, f.ts.URL, store.DefaultID, "p0000")

	// Checkpoint, then cold-bootstrap a fresh follower: its ledger must
	// arrive through the snapshot/journal-suffix hand-off, not the tail.
	c, _ := p2.st.Get(store.DefaultID)
	if _, err := p2.st.Checkpoint(c); err != nil {
		t.Fatal(err)
	}
	settleEpoch(t, p2.ts.URL, store.DefaultID) // epoch 3 rides the suffix
	f2 := startFollower(t, pts.URL, 0)
	f2.waitApplied(store.DefaultID, p2.lastSeq(store.DefaultID))
	requireIdenticalReads(t, p2.ts.URL, f2.ts.URL, store.DefaultID)
	requireIdenticalLedger(t, p2.ts.URL, f2.ts.URL, store.DefaultID, "p0000")
}
