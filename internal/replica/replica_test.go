package replica_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"incentivetree/internal/core"
	"incentivetree/internal/experiments"
	"incentivetree/internal/obs"
	"incentivetree/internal/replica"
	"incentivetree/internal/store"
)

const waitTimeout = 10 * time.Second

func newMech(name string, p core.Params) (core.Mechanism, error) {
	return experiments.ByName(p, name)
}

// primary is a store-backed itreed API under test, with crash
// (listener close, no final checkpoint) and clean-stop teardown.
type primary struct {
	t   *testing.T
	dir string
	st  *store.Store
	ts  *httptest.Server

	stopped bool
}

func startPrimary(t *testing.T, dir string) *primary {
	t.Helper()
	st, err := store.Open(store.Config{
		DataDir:            dir,
		CheckpointInterval: -1, // checkpoints only when a test asks
		CheckpointBytes:    -1,
		BatchMax:           1, // deterministic arrival-order journal
		NewMechanism:       newMech,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &primary{t: t, dir: dir, st: st, ts: httptest.NewServer(st.Handler())}
}

// crash simulates kill -9: the listener dies, nothing is flushed or
// checkpointed, the journal keeps whatever was appended.
func (p *primary) crash() {
	if p.stopped {
		return
	}
	p.stopped = true
	p.ts.Close()
}

func (p *primary) stop() {
	if p.stopped {
		return
	}
	p.stopped = true
	p.ts.Close()
	if err := p.st.Close(); err != nil {
		p.t.Errorf("primary close: %v", err)
	}
}

// write appends n join+contribute pairs to a campaign, directly
// through its deployment (journaled exactly like HTTP writes).
func (p *primary) write(campaign string, start, n int) {
	p.t.Helper()
	c, ok := p.st.Get(campaign)
	if !ok {
		p.t.Fatalf("campaign %s not found", campaign)
	}
	srv := c.Server()
	for i := start; i < start+n; i++ {
		name := fmt.Sprintf("p%04d", i)
		if err := srv.Join(name, ""); err != nil {
			p.t.Fatal(err)
		}
		if err := srv.Contribute(name, float64(i%7)+0.25); err != nil {
			p.t.Fatal(err)
		}
	}
}

func (p *primary) lastSeq(campaign string) uint64 {
	p.t.Helper()
	c, ok := p.st.Get(campaign)
	if !ok {
		p.t.Fatalf("campaign %s not found", campaign)
	}
	return c.Server().LastSeq()
}

// follower is a follower-mode store plus its replication manager and
// middleware-wrapped listener.
type follower struct {
	t      *testing.T
	st     *store.Store
	mgr    *replica.Manager
	reg    *obs.Registry
	ts     *httptest.Server
	cancel context.CancelFunc
	done   chan struct{}

	stopped bool
}

func startFollower(t *testing.T, primaryURL string, maxStaleness time.Duration) *follower {
	t.Helper()
	reg := obs.NewRegistry()
	st, err := store.Open(store.Config{
		Follower:     true,
		BatchMax:     -1,
		Metrics:      reg,
		NewMechanism: newMech,
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := replica.NewManager(replica.Options{
		Primary:      primaryURL,
		Target:       st,
		Registry:     reg,
		MaxStaleness: maxStaleness,
		Refresh:      25 * time.Millisecond,
		Wait:         150 * time.Millisecond,
		MaxBackoff:   100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	f := &follower{
		t:      t,
		st:     st,
		mgr:    mgr,
		reg:    reg,
		ts:     httptest.NewServer(mgr.Handler(st.Handler())),
		cancel: cancel,
		done:   make(chan struct{}),
	}
	go func() {
		mgr.Run(ctx)
		close(f.done)
	}()
	t.Cleanup(f.stop)
	return f
}

func (f *follower) stop() {
	if f.stopped {
		return
	}
	f.stopped = true
	f.cancel()
	<-f.done
	f.ts.Close()
}

// waitApplied blocks until the follower has applied through seq on the
// campaign (and is synced), or fails the test.
func (f *follower) waitApplied(campaign string, seq uint64) replica.Status {
	f.t.Helper()
	deadline := time.Now().Add(waitTimeout)
	for {
		st, ok := f.mgr.Status(campaign)
		if ok && st.State == replica.Synced && st.AppliedSeq >= seq {
			return st
		}
		if time.Now().After(deadline) {
			f.t.Fatalf("follower did not reach seq %d on %s (status %+v, tracked %v)", seq, campaign, st, ok)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// get fetches a URL and returns status, headers, and body.
func get(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, resp.Header, body
}

// mustGet fails unless the URL answers 200, and returns the body.
func mustGet(t *testing.T, url string) []byte {
	t.Helper()
	status, _, body := get(t, url)
	if status != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d: %s", url, status, body)
	}
	return body
}

// requireIdenticalReads asserts the primary and follower serve
// byte-identical responses for a campaign's full read surface.
func requireIdenticalReads(t *testing.T, primaryURL, followerURL, campaign string) {
	t.Helper()
	// /stats is excluded: it embeds a dump of the node's own metric
	// registry, which legitimately differs between primary and replica.
	for _, path := range []string{"/rewards", "/leaderboard?k=10", "/tree", "/epochs", "/claims"} {
		p := mustGet(t, primaryURL+"/v1/campaigns/"+campaign+path)
		f := mustGet(t, followerURL+"/v1/campaigns/"+campaign+path)
		if !bytes.Equal(p, f) {
			t.Fatalf("%s %s: primary and follower bytes differ:\nprimary:  %s\nfollower: %s", campaign, path, p, f)
		}
	}
}

func TestFollowerConvergesByteIdentical(t *testing.T) {
	p := startPrimary(t, t.TempDir())
	defer p.stop()

	// A second campaign beside the default one: replication is
	// per-campaign, discovered from the primary's campaign list.
	resp, err := http.Post(p.ts.URL+"/v1/campaigns", "application/json",
		strings.NewReader(`{"id":"acme","mechanism":"geometric"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create campaign: HTTP %d", resp.StatusCode)
	}
	p.write(store.DefaultID, 0, 12)
	p.write("acme", 0, 9)

	f := startFollower(t, p.ts.URL, 0)
	f.waitApplied(store.DefaultID, p.lastSeq(store.DefaultID))
	f.waitApplied("acme", p.lastSeq("acme"))
	requireIdenticalReads(t, p.ts.URL, f.ts.URL, store.DefaultID)
	requireIdenticalReads(t, p.ts.URL, f.ts.URL, "acme")

	// The legacy unprefixed surface maps to the default campaign on
	// both sides.
	if pb, fb := mustGet(t, p.ts.URL+"/v1/rewards"), mustGet(t, f.ts.URL+"/v1/rewards"); !bytes.Equal(pb, fb) {
		t.Fatalf("legacy rewards differ:\nprimary:  %s\nfollower: %s", pb, fb)
	}

	// New writes keep flowing through the stream.
	p.write(store.DefaultID, 100, 8)
	st := f.waitApplied(store.DefaultID, p.lastSeq(store.DefaultID))
	requireIdenticalReads(t, p.ts.URL, f.ts.URL, store.DefaultID)
	if st.Resyncs != 1 {
		t.Fatalf("steady-state tailing should bootstrap exactly once, got %d resyncs", st.Resyncs)
	}

	// Reads carry the staleness header; caught up means zero records.
	_, hdr, _ := get(t, f.ts.URL+"/v1/campaigns/acme/rewards")
	if s := hdr.Get(replica.HeaderStaleness); !strings.HasPrefix(s, "records=0 seconds=") {
		t.Fatalf("staleness header = %q, want records=0 seconds=...", s)
	}
}

func TestFollowerHashMatchesPrimaryJournal(t *testing.T) {
	dir := t.TempDir()
	p := startPrimary(t, dir)
	defer p.stop()
	f := startFollower(t, p.ts.URL, 0)

	// Bootstrap before any writes, so the follower's rolling hash
	// covers the journal from byte zero.
	deadline := time.Now().Add(waitTimeout)
	for {
		if st, ok := f.mgr.Status(store.DefaultID); ok && st.State == replica.Synced && st.BaseSeq == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower did not bootstrap at base seq 0")
		}
		time.Sleep(5 * time.Millisecond)
	}

	p.write(store.DefaultID, 0, 25)
	st := f.waitApplied(store.DefaultID, p.lastSeq(store.DefaultID))
	if st.BaseSeq != 0 {
		t.Fatalf("follower re-bootstrapped mid-test (base %d); hash comparison void", st.BaseSeq)
	}
	data, err := os.ReadFile(filepath.Join(dir, "campaigns", store.DefaultID, "journal.log"))
	if err != nil {
		t.Fatal(err)
	}
	want := sha256.Sum256(data)
	if got := st.AppliedHash; got != hex.EncodeToString(want[:]) {
		t.Fatalf("applied-record hash %s != primary journal hash %s", got, hex.EncodeToString(want[:]))
	}
}

func TestFollowerDropsDeletedCampaigns(t *testing.T) {
	p := startPrimary(t, t.TempDir())
	defer p.stop()
	resp, err := http.Post(p.ts.URL+"/v1/campaigns", "application/json", strings.NewReader(`{"id":"gone"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	p.write("gone", 0, 3)

	f := startFollower(t, p.ts.URL, 0)
	f.waitApplied("gone", p.lastSeq("gone"))

	req, _ := http.NewRequest(http.MethodDelete, p.ts.URL+"/v1/campaigns/gone", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()

	deadline := time.Now().Add(waitTimeout)
	for {
		_, tracked := f.mgr.Status("gone")
		_, stored := f.st.Get("gone")
		if !tracked && !stored {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("deleted campaign still on follower (tracked=%v stored=%v)", tracked, stored)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestJournalEndpointGapAndEmptyPoll(t *testing.T) {
	p := startPrimary(t, t.TempDir())
	defer p.stop()
	p.write(store.DefaultID, 0, 5) // seq 1..10
	base := p.ts.URL + "/v1/campaigns/" + store.DefaultID + "/replica/journal"

	cresp, err := http.Post(p.ts.URL+"/v1/campaigns/"+store.DefaultID+"/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()

	// Compacted prefix: a distinct 410 "snapshot required", never an
	// empty 200.
	status, _, body := get(t, base+"?from=1")
	if status != http.StatusGone {
		t.Fatalf("from=1 after checkpoint: HTTP %d (%s), want 410", status, body)
	}
	var gap struct {
		Error           string `json:"error"`
		CheckpointedSeq uint64 `json:"checkpointed_seq"`
	}
	if err := json.Unmarshal(body, &gap); err != nil {
		t.Fatalf("410 body %q: %v", body, err)
	}
	if gap.CheckpointedSeq != 10 || !strings.Contains(gap.Error, "snapshot required") {
		t.Fatalf("410 body = %+v, want checkpointed_seq 10 and 'snapshot required'", gap)
	}

	// Just past the checkpoint: an empty poll is a clean 200 stamped
	// with the committed sequence.
	status, hdr, body := get(t, base+"?from=11&wait=0")
	if status != http.StatusOK {
		t.Fatalf("from=11: HTTP %d (%s)", status, body)
	}
	if got := hdr.Get(replica.HeaderCommittedSeq); got != "10" {
		t.Fatalf("committed header %q, want 10", got)
	}
	if len(bytes.TrimSpace(body)) != 0 {
		t.Fatalf("empty poll returned records: %q", body)
	}

	// Bad cursors are rejected, not treated as 1.
	if status, _, _ := get(t, base+"?from=0"); status != http.StatusBadRequest {
		t.Fatalf("from=0: HTTP %d, want 400", status)
	}
}
