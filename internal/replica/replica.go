// Package replica implements journal-streaming replication: follower
// read replicas that are byte-identical to their primary, built from
// the exact machinery crash recovery already trusts.
//
// # Protocol
//
// The primary exposes two read-only endpoints per campaign (served by
// internal/store on the regular API listener):
//
//	GET /v1/campaigns/{id}/replica/snapshot
//	    -> 200 {"meta":{...},"snapshot":{"last_seq":k,"tree":{...}}}
//	       X-Itree-Committed-Seq: <committed>
//
//	GET /v1/campaigns/{id}/replica/journal?from=<seq>&wait=<dur>
//	    -> 200 application/x-ndjson: the journal records from <seq>
//	       onward, one JSON line each — the on-disk journal format,
//	       byte for byte. X-Itree-Committed-Seq carries the committed
//	       sequence at response start. With no records available the
//	       primary holds the request up to <dur> (long poll), emitting
//	       blank-line heartbeats, and returns what arrived (possibly
//	       nothing).
//	    -> 410 when <seq> predates the oldest retained record (the
//	       checkpointer compacted it away): the follower cannot catch
//	       up by tailing and must re-bootstrap from snapshot.
//
// A follower bootstraps each campaign from the snapshot endpoint, then
// tails the journal stream with retry/backoff, resuming from its last
// applied sequence. Records are applied through the same replay code
// as crash recovery (server.ApplyReplicated), so follower state —
// including reward-table bytes — is identical to a primary that
// journaled the same events. Any divergence (gap, replay error,
// compaction overrun) is handled one way: drop the deployment and
// re-bootstrap.
//
// # Staleness
//
// A follower knows two sequence numbers per campaign: applied (what it
// has replayed) and committed (the primary's position, learned from
// stream responses). Their difference is the lag in records; the time
// since the follower last confirmed it was caught up bounds the lag in
// seconds. Both are exported as itree_replica_lag_records and
// itree_replica_lag_seconds gauges, stamped on every read in the
// X-Itree-Staleness header, and enforced by the follower's HTTP
// middleware: reads return 503 once staleness exceeds the configured
// bound (writes always redirect to the primary with 307).
package replica

import (
	"encoding/json"
	"net/http"

	"incentivetree/internal/core"
	"incentivetree/internal/server"
)

// Wire protocol headers.
const (
	// HeaderCommittedSeq carries the primary's committed sequence number
	// on snapshot and journal responses.
	HeaderCommittedSeq = "X-Itree-Committed-Seq"
	// HeaderStaleness reports a follower's lag on read responses, as
	// "records=<n> seconds=<s>" (or "unsynced" before the first
	// successful bootstrap).
	HeaderStaleness = "X-Itree-Staleness"
)

// Meta is the wire form of a campaign's configuration, enough for a
// follower to rebuild the mechanism. Incremental is carried for
// transparency but followers force full evaluation: incremental
// engines accumulate floats in update order, and only full evaluation
// guarantees reward tables byte-identical to the primary's.
type Meta struct {
	ID          string      `json:"id"`
	Mechanism   string      `json:"mechanism"`
	Params      core.Params `json:"params"`
	Incremental bool        `json:"incremental,omitempty"`
}

// SnapshotDoc is the body of GET .../replica/snapshot.
type SnapshotDoc struct {
	Meta     Meta            `json:"meta"`
	Snapshot server.Snapshot `json:"snapshot"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
