package replica_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"incentivetree/internal/replica"
	"incentivetree/internal/store"
)

// startAuditPrimary is startPrimary with the audit service attached:
// a long interval (tests drive scans directly) and auto-quarantine on.
func startAuditPrimary(t *testing.T, dir string) *primary {
	t.Helper()
	st, err := store.Open(store.Config{
		DataDir:            dir,
		CheckpointInterval: -1,
		CheckpointBytes:    -1,
		BatchMax:           1,
		NewMechanism:       newMech,
		AuditInterval:      time.Hour,
		AuditQuarantine:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &primary{t: t, dir: dir, st: st, ts: httptest.NewServer(st.Handler())}
}

// plantEpsilonChain grafts an ε-chain of n identities under sponsor,
// each contributing the same amount — the signature the auditor
// auto-quarantines. A decoy sibling keeps the sponsor branching so the
// chain head anchors at the graft point.
func plantEpsilonChain(t *testing.T, p *primary, campaign, sponsor string, n int) []string {
	t.Helper()
	c, ok := p.st.Get(campaign)
	if !ok {
		t.Fatalf("campaign %s not found", campaign)
	}
	srv := c.Server()
	if err := srv.Join("decoy", sponsor); err != nil {
		t.Fatal(err)
	}
	if err := srv.Contribute("decoy", 1.37); err != nil {
		t.Fatal(err)
	}
	names := make([]string, n)
	parent := sponsor
	for i := range names {
		names[i] = fmt.Sprintf("syb-%02d", i)
		if err := srv.Join(names[i], parent); err != nil {
			t.Fatal(err)
		}
		if err := srv.Contribute(names[i], 0.8); err != nil {
			t.Fatal(err)
		}
		parent = names[i]
	}
	return names
}

// followerReward reads one participant's payout from the follower's
// rewards document.
func followerReward(t *testing.T, baseURL, campaign, name string) float64 {
	t.Helper()
	var doc struct {
		Participants []struct {
			Name   string  `json:"name"`
			Reward float64 `json:"reward"`
		} `json:"participants"`
	}
	body := mustGet(t, baseURL+"/v1/campaigns/"+campaign+"/rewards")
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("rewards decode: %v (%s)", err, body)
	}
	for _, p := range doc.Participants {
		if p.Name == name {
			return p.Reward
		}
	}
	t.Fatalf("participant %s missing from follower rewards", name)
	return 0
}

// TestQuarantineReplicatesThroughFaults is the replication interplay
// contract for the audit service: quarantine and unquarantine records
// written by the primary's auditor replay on followers to byte-identical
// reads — through torn journal streams, a primary crash-restart, and a
// fresh follower bootstrap. Followers themselves never audit; they
// inherit the primary's quarantine decisions from the journal.
func TestQuarantineReplicatesThroughFaults(t *testing.T) {
	dir := t.TempDir()
	p := startAuditPrimary(t, dir)
	proxy := newFlexProxy(p.ts.URL)
	pts := httptest.NewServer(proxy)
	defer pts.Close()

	p.write(store.DefaultID, 0, 6)
	chain := plantEpsilonChain(t, p, store.DefaultID, "p0000", 5)

	f := startFollower(t, pts.URL, 0)
	f.waitApplied(store.DefaultID, p.lastSeq(store.DefaultID))
	if c, ok := f.st.Get(store.DefaultID); !ok || c.Auditor() != nil {
		t.Fatal("follower must not run its own auditor")
	}

	// Sever the next journal streams mid-record while the auditor's
	// quarantine records flow: the follower must resume by tailing and
	// still land on the primary's exact bytes.
	proxy.tearJournal.Store(2)
	c, _ := p.st.Get(store.DefaultID)
	c.Auditor().Scan()
	if stats := c.Auditor().Scan(); stats.Quarantined == 0 {
		t.Fatalf("auditor did not quarantine the planted chain: %+v", stats)
	}
	st := f.waitApplied(store.DefaultID, p.lastSeq(store.DefaultID))
	if proxy.tears.Load() == 0 {
		t.Fatal("proxy never tore a stream; fault not exercised")
	}
	if st.Resyncs != 1 {
		t.Fatalf("torn quarantine stream must resume by tailing, not re-bootstrapping (resyncs=%d)", st.Resyncs)
	}
	requireIdenticalReads(t, p.ts.URL, f.ts.URL, store.DefaultID)
	if r := followerReward(t, f.ts.URL, store.DefaultID, chain[0]); r != 0 {
		t.Fatalf("quarantined chain head paid %v on the follower", r)
	}
	if r := followerReward(t, f.ts.URL, store.DefaultID, "decoy"); r <= 0 {
		t.Fatalf("honest decoy unpaid on the follower: %v", r)
	}

	// An operator lifting the flag replicates the same way.
	req, _ := http.NewRequest(http.MethodDelete,
		p.ts.URL+"/v1/campaigns/"+store.DefaultID+"/audit/quarantine/"+chain[0], nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unquarantine: HTTP %d", resp.StatusCode)
	}
	f.waitApplied(store.DefaultID, p.lastSeq(store.DefaultID))
	requireIdenticalReads(t, p.ts.URL, f.ts.URL, store.DefaultID)
	if r := followerReward(t, f.ts.URL, store.DefaultID, chain[0]); r <= 0 {
		t.Fatalf("unquarantined chain head still zeroed on the follower: %v", r)
	}

	// Re-quarantine by hand, then kill the primary without flush or
	// checkpoint. The restarted primary replays the quarantine record
	// from its journal; the follower resumes tailing against it.
	qresp, err := http.Post(p.ts.URL+"/v1/campaigns/"+store.DefaultID+"/audit/quarantine",
		"application/json", strings.NewReader(fmt.Sprintf(`{"name":%q}`, chain[0])))
	if err != nil {
		t.Fatal(err)
	}
	qresp.Body.Close()
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("re-quarantine: HTTP %d", qresp.StatusCode)
	}
	f.waitApplied(store.DefaultID, p.lastSeq(store.DefaultID))

	p.crash()
	p2 := startAuditPrimary(t, dir)
	defer p2.stop()
	proxy.target.Store(p2.ts.URL)
	p2.write(store.DefaultID, 100, 4)
	st = f.waitApplied(store.DefaultID, p2.lastSeq(store.DefaultID))
	if st.Resyncs != 1 {
		t.Fatalf("primary restart with intact journal should not force a re-bootstrap (resyncs=%d)", st.Resyncs)
	}
	requireIdenticalReads(t, p2.ts.URL, f.ts.URL, store.DefaultID)
	if r := followerReward(t, f.ts.URL, store.DefaultID, chain[0]); r != 0 {
		t.Fatalf("quarantine lost across primary crash-restart: follower pays %v", r)
	}

	// A fresh follower is a cold bootstrap: the quarantine must arrive
	// through the snapshot/journal hand-off, not just the live tail.
	f2 := startFollower(t, pts.URL, 0)
	f2.waitApplied(store.DefaultID, p2.lastSeq(store.DefaultID))
	requireIdenticalReads(t, p2.ts.URL, f2.ts.URL, store.DefaultID)
	if r := followerReward(t, f2.ts.URL, store.DefaultID, chain[0]); r != 0 {
		t.Fatalf("fresh follower bootstrap dropped the quarantine: pays %v", r)
	}

	// And staleness surfacing still works over the quarantined state.
	_, hdr, _ := get(t, f2.ts.URL+"/v1/campaigns/"+store.DefaultID+"/rewards")
	if s := hdr.Get(replica.HeaderStaleness); s == "" {
		t.Fatal("follower reads lost the staleness header")
	}
}
