package cdrm

import (
	"math"
	"testing"

	"incentivetree/internal/core"
	"incentivetree/internal/numeric"
	"incentivetree/internal/tree"
	"incentivetree/internal/treegen"
)

func TestNewBlendValidation(t *testing.T) {
	p := core.DefaultParams()
	if _, err := NewBlend(p, 0.5, 0.3); err != nil {
		t.Fatalf("valid blend rejected: %v", err)
	}
	for _, w := range []float64{0, 1, -0.5, 2} {
		if _, err := NewBlend(p, w, 0.3); err == nil {
			t.Errorf("weight %v should be rejected", w)
		}
	}
	if _, err := NewBlend(p, 0.5, 0.9); err == nil {
		t.Error("theta above ceiling should be rejected")
	}
}

func TestBlendEvalIsConvexCombination(t *testing.T) {
	p := core.DefaultParams()
	b := Blend{W: 0.25, A: Reciprocal{Phi: p.Phi, Theta: 0.3}, B: Log{Phi: p.Phi, Theta: 0.3}}
	x, y := 2.0, 5.0
	want := 0.25*b.A.Eval(x, y) + 0.75*b.B.Eval(x, y)
	if got := b.Eval(x, y); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Eval = %v, want %v", got, want)
	}
}

// TestBlendIsSuccessfullyContributionDeterministic: the family is closed
// under convex combination, so a blend must pass the full condition
// verifier.
func TestBlendIsSuccessfullyContributionDeterministic(t *testing.T) {
	p := core.DefaultParams()
	for _, w := range []float64{0.1, 0.5, 0.9} {
		m, err := NewBlend(p, w, 0.8*(p.Phi-p.FairShare))
		if err != nil {
			t.Fatal(err)
		}
		if vs := Verify(m.Func(), p, DefaultGrid()); len(vs) != 0 {
			t.Fatalf("w=%v: %d violations, first: %s", w, len(vs), vs[0])
		}
	}
}

func TestBlendBetweenParents(t *testing.T) {
	// The blend's reward lies between its parents' rewards pointwise.
	p := core.DefaultParams()
	rec, err := DefaultReciprocal(p)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := DefaultLog(p)
	if err != nil {
		t.Fatal(err)
	}
	blend, err := NewBlend(p, 0.5, 0.8*(p.Phi-p.FairShare))
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range treegen.Corpus(81, 5, 30) {
		rr, err := rec.Rewards(tr)
		if err != nil {
			t.Fatal(err)
		}
		rl, err := lg.Rewards(tr)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := blend.Rewards(tr)
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range tr.Nodes() {
			lo := math.Min(rr.Of(u), rl.Of(u))
			hi := math.Max(rr.Of(u), rl.Of(u))
			if rb.Of(u) < lo-1e-12 || rb.Of(u) > hi+1e-12 {
				t.Fatalf("blend reward %v outside parents [%v, %v]", rb.Of(u), lo, hi)
			}
		}
	}
}

func TestBlendBudgetAndAudit(t *testing.T) {
	p := core.DefaultParams()
	m, err := NewBlend(p, 0.3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	tr := tree.FromSpecs(tree.Spec{C: 2, Kids: []tree.Spec{{C: 3}}})
	r, err := m.Rewards(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Audit(m, tr, r); err != nil {
		t.Fatal(err)
	}
	if m.Name() == "" || !numeric.LessOrAlmostEqual(r.Total(), p.Phi*tr.Total(), numeric.Eps) {
		t.Fatalf("blend audit: name %q, total %v", m.Name(), r.Total())
	}
}
