// Package cdrm implements the Contribution-Deterministic Reward
// Mechanisms of Sect. 6 of the paper: mechanisms whose reward
// R(u) = R(x_u, y_u) depends only on a participant's own contribution
// x_u = C(u) and the total contribution of its proper descendants
// y_u = C(T_u \ {u}) — never on the topology of the subtree.
//
// A function R(x, y) is "successfully contribution-deterministic" when,
// for all x > 0 and y >= 0,
//
//	(i)   0 < dR/dx < 1
//	(ii)  0 < dR/dy
//	(iii) phi*x < R(x, y) < Phi*x
//	(iv)  R(x, y) >= R(x', x''+y) + R(x'', y)  whenever x' + x'' = x.
//
// Theorem 5: a mechanism distributing rewards by such a function achieves
// every desirable property except URO (and hence PO). The package
// provides the two concrete instances from Algorithm 5 and a numeric
// verifier for the four conditions.
package cdrm

import (
	"fmt"
	"math"

	"incentivetree/internal/core"
	"incentivetree/internal/tree"
)

// Function is a candidate contribution-deterministic reward function
// R(x, y).
type Function interface {
	// Name identifies the function in experiment output.
	Name() string
	// Eval returns R(x, y) for own contribution x >= 0 and descendant
	// contribution y >= 0.
	Eval(x, y float64) float64
}

// Reciprocal is instance (i) of Algorithm 5:
//
//	R(x, y) = (Phi - theta/(1 + x + y)) * x,  theta + phi < Phi.
type Reciprocal struct {
	Phi   float64
	Theta float64
}

// Name implements Function.
func (f Reciprocal) Name() string {
	return fmt.Sprintf("CDRM-Reciprocal(theta=%.3g)", f.Theta)
}

// Eval implements Function.
func (f Reciprocal) Eval(x, y float64) float64 {
	return (f.Phi - f.Theta/(1+x+y)) * x
}

// Log is instance (ii) of Algorithm 5:
//
//	R(x, y) = Phi*x + theta * ln((1+y)/(x+y+1)),  theta + phi < Phi.
type Log struct {
	Phi   float64
	Theta float64
}

// Name implements Function.
func (f Log) Name() string { return fmt.Sprintf("CDRM-Log(theta=%.3g)", f.Theta) }

// Eval implements Function.
func (f Log) Eval(x, y float64) float64 {
	if x == 0 {
		return 0
	}
	return f.Phi*x + f.Theta*math.Log((1+y)/(x+y+1))
}

// Blend is the convex combination W*A + (1-W)*B of two candidate
// functions. The family of successfully contribution-deterministic
// functions is closed under convex combination — each of conditions
// (i)-(iv) is preserved by positive weighted sums — so blending two
// admissible instances yields a third, letting deployments interpolate
// between reward schedules (e.g. mostly-Reciprocal with a Log component).
type Blend struct {
	// W is the weight of A, in (0, 1).
	W    float64
	A, B Function
}

// Name implements Function.
func (f Blend) Name() string {
	return fmt.Sprintf("CDRM-Blend(%.3g*%s + %.3g*%s)", f.W, f.A.Name(), 1-f.W, f.B.Name())
}

// Eval implements Function.
func (f Blend) Eval(x, y float64) float64 {
	return f.W*f.A.Eval(x, y) + (1-f.W)*f.B.Eval(x, y)
}

// NewBlend validates the weight and wraps the blend of both Algorithm 5
// instances at the given theta.
func NewBlend(p core.Params, w, theta float64) (*Mechanism, error) {
	if !(w > 0 && w < 1) {
		return nil, fmt.Errorf("%w: blend weight %v, need 0 < w < 1", core.ErrBadParams, w)
	}
	if err := validateTheta(p, theta); err != nil {
		return nil, err
	}
	return New(p, Blend{
		W: w,
		A: Reciprocal{Phi: p.Phi, Theta: theta},
		B: Log{Phi: p.Phi, Theta: theta},
	})
}

// Mechanism adapts a contribution-deterministic function to
// core.Mechanism.
type Mechanism struct {
	params core.Params
	fn     Function
}

// New wraps fn. The caller is responsible for choosing a function whose
// parameters respect theta + phi < Phi; the constructors NewReciprocal
// and NewLog enforce that regime.
func New(p core.Params, fn Function) (*Mechanism, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Mechanism{params: p, fn: fn}, nil
}

// NewReciprocal builds the Reciprocal instance, validating
// 0 < theta and theta + phi < Phi.
func NewReciprocal(p core.Params, theta float64) (*Mechanism, error) {
	if err := validateTheta(p, theta); err != nil {
		return nil, err
	}
	return New(p, Reciprocal{Phi: p.Phi, Theta: theta})
}

// NewLog builds the Log instance, validating 0 < theta and
// theta + phi < Phi.
func NewLog(p core.Params, theta float64) (*Mechanism, error) {
	if err := validateTheta(p, theta); err != nil {
		return nil, err
	}
	return New(p, Log{Phi: p.Phi, Theta: theta})
}

func validateTheta(p core.Params, theta float64) error {
	if !(theta > 0) {
		return fmt.Errorf("%w: theta = %v, need theta > 0", core.ErrBadParams, theta)
	}
	if !(theta+p.FairShare < p.Phi) {
		return fmt.Errorf("%w: theta = %v, need theta + phi < Phi (phi = %v, Phi = %v)",
			core.ErrBadParams, theta, p.FairShare, p.Phi)
	}
	return nil
}

// DefaultReciprocal returns the Reciprocal instance used across the
// experiments, with theta at 80% of its admissible ceiling.
func DefaultReciprocal(p core.Params) (*Mechanism, error) {
	return NewReciprocal(p, 0.8*(p.Phi-p.FairShare))
}

// DefaultLog returns the Log instance used across the experiments.
func DefaultLog(p core.Params) (*Mechanism, error) {
	return NewLog(p, 0.8*(p.Phi-p.FairShare))
}

// Name implements core.Mechanism.
func (m *Mechanism) Name() string { return m.fn.Name() }

// Params implements core.Mechanism.
func (m *Mechanism) Params() core.Params { return m.params }

// Func returns the underlying reward function.
func (m *Mechanism) Func() Function { return m.fn }

// Rewards implements core.Mechanism in O(n) using one bottom-up pass for
// the subtree sums.
func (m *Mechanism) Rewards(t *tree.Tree) (core.Rewards, error) {
	return m.RewardsInto(t, nil)
}

// RewardsInto implements core.IntoMechanism with zero allocations: buf
// first holds the subtree sums, then is rewritten in place in id order
// (entry u only reads sums[u], which is still intact when u is reached).
func (m *Mechanism) RewardsInto(t *tree.Tree, buf core.Rewards) (core.Rewards, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	sums := t.SubtreeSumsInto([]float64(buf))
	r := core.Rewards(sums)
	for id := 1; id < t.Len(); id++ {
		u := tree.NodeID(id)
		x := t.Contribution(u)
		y := sums[u] - x
		r[u] = m.fn.Eval(x, y)
	}
	r[tree.Root] = 0
	return r, nil
}
