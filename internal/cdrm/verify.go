package cdrm

import (
	"fmt"

	"incentivetree/internal/core"
	"incentivetree/internal/numeric"
)

// Condition identifies one of the four requirements on a successfully
// contribution-deterministic function (Sect. 6).
type Condition int

// The four conditions of Sect. 6.
const (
	// CondContributionSlope is (i): 0 < dR/dx < 1.
	CondContributionSlope Condition = iota + 1
	// CondSolicitationSlope is (ii): 0 < dR/dy.
	CondSolicitationSlope
	// CondFairnessBudget is (iii): phi*x < R(x,y) < Phi*x.
	CondFairnessBudget
	// CondSuperadditivity is (iv): R(x,y) >= R(x', x''+y) + R(x'', y)
	// for every split x' + x'' = x.
	CondSuperadditivity
)

// String implements fmt.Stringer.
func (c Condition) String() string {
	switch c {
	case CondContributionSlope:
		return "(i) 0 < dR/dx < 1"
	case CondSolicitationSlope:
		return "(ii) 0 < dR/dy"
	case CondFairnessBudget:
		return "(iii) phi*x < R < Phi*x"
	case CondSuperadditivity:
		return "(iv) split superadditivity"
	default:
		return fmt.Sprintf("Condition(%d)", int(c))
	}
}

// Violation records a grid point at which a condition fails.
type Violation struct {
	Cond   Condition
	X, Y   float64
	XSplit float64 // the x' of a failed superadditivity split (cond iv)
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s violated at x=%.4g y=%.4g: %s", v.Cond, v.X, v.Y, v.Detail)
}

// VerifyGrid is the domain over which Verify checks the four conditions.
type VerifyGrid struct {
	XMax   float64 // largest own contribution checked (> 0)
	YMax   float64 // largest descendant sum checked
	Points int     // grid resolution per axis (>= 2)
	Splits int     // number of x-splits checked per point for (iv)
}

// DefaultGrid covers contributions across four orders of magnitude.
func DefaultGrid() VerifyGrid { return VerifyGrid{XMax: 100, YMax: 1000, Points: 25, Splits: 7} }

// Verify numerically checks the four conditions of a candidate function
// over the grid and returns every violation found (nil means the function
// passed, i.e. it is successfully contribution-deterministic as far as
// the grid can tell). Derivatives are estimated by symmetric differences.
func Verify(fn Function, p core.Params, g VerifyGrid) []Violation {
	const h = 1e-6
	var out []Violation
	xs := numeric.Grid(g.XMax/float64(g.Points), g.XMax, g.Points)
	ys := numeric.Grid(0, g.YMax, g.Points)
	for _, x := range xs {
		for _, y := range ys {
			// (i) 0 < dR/dx < 1.
			dx := numeric.Derivative(func(t float64) float64 { return fn.Eval(t, y) }, x, h)
			if dx <= 0 || dx >= 1 {
				out = append(out, Violation{Cond: CondContributionSlope, X: x, Y: y,
					Detail: fmt.Sprintf("dR/dx = %v", dx)})
			}
			// (ii) dR/dy > 0.
			dy := numeric.Derivative(func(t float64) float64 { return fn.Eval(x, t) }, y+h, h)
			if dy <= 0 {
				out = append(out, Violation{Cond: CondSolicitationSlope, X: x, Y: y,
					Detail: fmt.Sprintf("dR/dy = %v", dy)})
			}
			// (iii) phi*x < R < Phi*x.
			r := fn.Eval(x, y)
			if !(r > p.FairShare*x && r < p.Phi*x) {
				out = append(out, Violation{Cond: CondFairnessBudget, X: x, Y: y,
					Detail: fmt.Sprintf("R = %v, bounds (%v, %v)", r, p.FairShare*x, p.Phi*x)})
			}
			// (iv) superadditivity over splits of x.
			for s := 1; s <= g.Splits; s++ {
				x1 := x * float64(s) / float64(g.Splits+1)
				x2 := x - x1
				split := fn.Eval(x1, x2+y) + fn.Eval(x2, y)
				if !numeric.LessOrAlmostEqual(split, r, numeric.Eps) {
					out = append(out, Violation{Cond: CondSuperadditivity, X: x, Y: y, XSplit: x1,
						Detail: fmt.Sprintf("R(x',x''+y)+R(x'',y) = %v > R = %v", split, r)})
				}
			}
		}
	}
	return out
}
