package cdrm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"incentivetree/internal/core"
	"incentivetree/internal/numeric"
)

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(777))}
}

// domain maps arbitrary uint16 fuzz inputs onto the (x, y) quadrant the
// conditions quantify over, spanning several orders of magnitude.
func domain(rawX, rawY uint16) (x, y float64) {
	x = 0.001 * math.Pow(1.0002, float64(rawX)) // (0, ~500]
	y = 0.001 * (math.Pow(1.0002, float64(rawY)) - 1)
	return x, y
}

func bothFuncs(t *testing.T) []Function {
	t.Helper()
	p := core.DefaultParams()
	rec, err := DefaultReciprocal(p)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := DefaultLog(p)
	if err != nil {
		t.Fatal(err)
	}
	return []Function{rec.Func(), lg.Func()}
}

// TestQuickBoundsAndMonotonicity fuzzes conditions (i)-(iii) over the
// whole quadrant, far beyond the fixed verification grid.
func TestQuickBoundsAndMonotonicity(t *testing.T) {
	p := core.DefaultParams()
	for _, fn := range bothFuncs(t) {
		fn := fn
		t.Run(fn.Name(), func(t *testing.T) {
			f := func(rawX, rawY uint16) bool {
				x, y := domain(rawX, rawY)
				r := fn.Eval(x, y)
				// (iii) phi*x < R < Phi*x.
				if !(r > p.FairShare*x && r < p.Phi*x) {
					return false
				}
				// (i)/(ii) discrete monotonicity.
				if fn.Eval(x*1.01, y) <= r {
					return false
				}
				if fn.Eval(x, y+0.5) <= r {
					return false
				}
				// (i) slope below 1: the increment is smaller than dx.
				if fn.Eval(x+0.1, y)-r >= 0.1 {
					return false
				}
				return true
			}
			if err := quick.Check(f, quickCfg()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestQuickSuperadditivity fuzzes condition (iv): splitting x into a
// chain never pays.
func TestQuickSuperadditivity(t *testing.T) {
	for _, fn := range bothFuncs(t) {
		fn := fn
		t.Run(fn.Name(), func(t *testing.T) {
			f := func(rawX, rawY uint16, rawSplit uint8) bool {
				x, y := domain(rawX, rawY)
				frac := (float64(rawSplit) + 0.5) / 256 // (0, 1)
				x1 := x * frac
				x2 := x - x1
				split := fn.Eval(x1, x2+y) + fn.Eval(x2, y)
				return numeric.LessOrAlmostEqual(split, fn.Eval(x, y), numeric.Eps)
			}
			if err := quick.Check(f, quickCfg()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestQuickThreeWaySplit extends (iv) to three identities by induction:
// a chain of three parts never beats the merged node.
func TestQuickThreeWaySplit(t *testing.T) {
	for _, fn := range bothFuncs(t) {
		fn := fn
		t.Run(fn.Name(), func(t *testing.T) {
			f := func(rawX, rawY uint16, rawA, rawB uint8) bool {
				x, y := domain(rawX, rawY)
				fa := (float64(rawA) + 0.5) / 256
				fb := (float64(rawB) + 0.5) / 256
				x1 := x * fa
				x2 := (x - x1) * fb
				x3 := x - x1 - x2
				chain := fn.Eval(x1, x2+x3+y) + fn.Eval(x2, x3+y) + fn.Eval(x3, y)
				return numeric.LessOrAlmostEqual(chain, fn.Eval(x, y), numeric.Eps)
			}
			if err := quick.Check(f, quickCfg()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestQuickProfitDecreasesInContribution is the UGSA mechanism at the
// function level: x - R(x, y) strictly increases in x (slope of R below
// 1), so buying more always costs more than it returns.
func TestQuickProfitDecreasesInContribution(t *testing.T) {
	for _, fn := range bothFuncs(t) {
		fn := fn
		t.Run(fn.Name(), func(t *testing.T) {
			f := func(rawX, rawY uint16, rawEps uint8) bool {
				x, y := domain(rawX, rawY)
				eps := 0.01 + float64(rawEps)/64
				payBefore := x - fn.Eval(x, y)
				payAfter := (x + eps) - fn.Eval(x+eps, y)
				return payAfter > payBefore
			}
			if err := quick.Check(f, quickCfg()); err != nil {
				t.Fatal(err)
			}
		})
	}
}
