package cdrm

import (
	"errors"
	"math"
	"testing"

	"incentivetree/internal/core"
	"incentivetree/internal/numeric"
	"incentivetree/internal/tree"
	"incentivetree/internal/treegen"
)

func defaultBoth(t *testing.T) []*Mechanism {
	t.Helper()
	p := core.DefaultParams()
	rec, err := DefaultReciprocal(p)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := DefaultLog(p)
	if err != nil {
		t.Fatal(err)
	}
	return []*Mechanism{rec, lg}
}

func TestThetaValidation(t *testing.T) {
	p := core.Params{Phi: 0.5, FairShare: 0.1} // ceiling: theta < 0.4
	tests := []struct {
		theta   float64
		wantErr bool
	}{
		{0.2, false},
		{0.39, false},
		{0, true},
		{-0.1, true},
		{0.4, true},
		{0.5, true},
	}
	for _, tc := range tests {
		if _, err := NewReciprocal(p, tc.theta); (err != nil) != tc.wantErr {
			t.Errorf("NewReciprocal(theta=%v) err = %v, wantErr %v", tc.theta, err, tc.wantErr)
		}
		if _, err := NewLog(p, tc.theta); (err != nil) != tc.wantErr {
			t.Errorf("NewLog(theta=%v) err = %v, wantErr %v", tc.theta, err, tc.wantErr)
		}
	}
	if _, err := NewReciprocal(core.Params{Phi: -1}, 0.1); !errors.Is(err, core.ErrBadParams) {
		t.Errorf("bad shared params err = %v", err)
	}
}

func TestReciprocalHandComputed(t *testing.T) {
	// R(x, y) = (Phi - theta/(1+x+y)) * x with Phi = 0.5, theta = 0.3:
	// R(2, 1) = (0.5 - 0.3/4)*2 = 0.85.
	f := Reciprocal{Phi: 0.5, Theta: 0.3}
	if got := f.Eval(2, 1); math.Abs(got-0.85) > 1e-12 {
		t.Fatalf("Eval(2,1) = %v, want 0.85", got)
	}
	if got := f.Eval(0, 5); got != 0 {
		t.Fatalf("Eval(0,5) = %v, want 0", got)
	}
}

func TestLogHandComputed(t *testing.T) {
	// R(x, y) = Phi*x + theta*ln((1+y)/(x+y+1)) with Phi = 0.5,
	// theta = 0.3: R(1, 0) = 0.5 + 0.3*ln(1/2).
	f := Log{Phi: 0.5, Theta: 0.3}
	want := 0.5 + 0.3*math.Log(0.5)
	if got := f.Eval(1, 0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Eval(1,0) = %v, want %v", got, want)
	}
	if got := f.Eval(0, 7); got != 0 {
		t.Fatalf("Eval(0,7) = %v, want 0", got)
	}
}

func TestRewardsDependOnlyOnXAndY(t *testing.T) {
	// Same (x, y) pair under different subtree topologies must yield the
	// same reward: that is the defining feature of CDRM.
	for _, m := range defaultBoth(t) {
		star := tree.FromSpecs(tree.Star(2, 1, 1, 1))
		chain := tree.FromSpecs(tree.Chain(2, 1, 1, 1))
		rs, err := m.Rewards(star)
		if err != nil {
			t.Fatal(err)
		}
		rc, err := m.Rewards(chain)
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.AlmostEqual(rs.Of(1), rc.Of(1), numeric.Eps) {
			t.Fatalf("%s: star root R = %v, chain root R = %v (topology leaked in)",
				m.Name(), rs.Of(1), rc.Of(1))
		}
	}
}

func TestRewardsMatchFunctionOnCorpus(t *testing.T) {
	for _, m := range defaultBoth(t) {
		for _, tr := range treegen.Corpus(51, 10, 40) {
			r, err := m.Rewards(tr)
			if err != nil {
				t.Fatal(err)
			}
			for _, u := range tr.Nodes() {
				want := m.Func().Eval(tr.Contribution(u), tr.DescendantSum(u))
				if !numeric.AlmostEqual(r.Of(u), want, numeric.Eps) {
					t.Fatalf("%s: R(%d) = %v, want %v", m.Name(), u, r.Of(u), want)
				}
			}
		}
	}
}

func TestBudgetOnCorpus(t *testing.T) {
	for _, m := range defaultBoth(t) {
		for i, tr := range treegen.Corpus(52, 20, 60) {
			r, err := m.Rewards(tr)
			if err != nil {
				t.Fatalf("tree %d: %v", i, err)
			}
			if err := core.Audit(m, tr, r); err != nil {
				t.Fatalf("tree %d: %v", i, err)
			}
		}
	}
}

func TestRewardBoundedByPhiX(t *testing.T) {
	// The structural reason CDRM fails URO/PO: R(u) < Phi * C(u) always,
	// so profit is always negative.
	for _, m := range defaultBoth(t) {
		for _, tr := range treegen.Corpus(53, 10, 50) {
			r, err := m.Rewards(tr)
			if err != nil {
				t.Fatal(err)
			}
			for _, u := range tr.Nodes() {
				x := tr.Contribution(u)
				if x == 0 {
					continue
				}
				if got := r.Of(u); got >= m.Params().Phi*x {
					t.Fatalf("%s: R(%d) = %v >= Phi*x = %v", m.Name(), u, got, m.Params().Phi*x)
				}
				if core.Profit(tr, r, u) >= 0 {
					t.Fatalf("%s: non-negative profit %v (PO should fail)",
						m.Name(), core.Profit(tr, r, u))
				}
			}
		}
	}
}

func TestVerifyConditionsPassForBothInstances(t *testing.T) {
	p := core.DefaultParams()
	for _, m := range defaultBoth(t) {
		if vs := Verify(m.Func(), p, DefaultGrid()); len(vs) != 0 {
			t.Fatalf("%s: %d violations, first: %s", m.Name(), len(vs), vs[0])
		}
	}
}

// brokenFn fails (i) (slope > 1) and (iv) (convex in x), to prove the
// verifier has teeth.
type brokenFn struct{}

func (brokenFn) Name() string { return "broken" }
func (brokenFn) Eval(x, y float64) float64 {
	return 2 * x * (1 + y/(1+y)) // dR/dx >= 2
}

func TestVerifyDetectsViolations(t *testing.T) {
	p := core.DefaultParams()
	vs := Verify(brokenFn{}, p, VerifyGrid{XMax: 10, YMax: 10, Points: 5, Splits: 3})
	if len(vs) == 0 {
		t.Fatal("verifier passed a broken function")
	}
	seen := map[Condition]bool{}
	for _, v := range vs {
		seen[v.Cond] = true
		if v.String() == "" {
			t.Fatal("empty violation string")
		}
	}
	if !seen[CondContributionSlope] {
		t.Fatal("slope violation not detected")
	}
	if !seen[CondFairnessBudget] {
		t.Fatal("budget violation not detected")
	}
}

func TestConditionString(t *testing.T) {
	for _, c := range []Condition{CondContributionSlope, CondSolicitationSlope,
		CondFairnessBudget, CondSuperadditivity, Condition(99)} {
		if c.String() == "" {
			t.Fatalf("empty string for condition %d", int(c))
		}
	}
}

func TestLogSuperadditivityIsTight(t *testing.T) {
	// For the Log instance, condition (iv) holds with equality — the
	// split terms telescope. This pins the analytic structure.
	f := Log{Phi: 0.5, Theta: 0.3}
	x, y := 3.0, 2.0
	for _, x1 := range []float64{0.5, 1, 1.5, 2.9} {
		x2 := x - x1
		split := f.Eval(x1, x2+y) + f.Eval(x2, y)
		if !numeric.AlmostEqual(split, f.Eval(x, y), 1e-9) {
			t.Fatalf("split %v != whole %v (should telescope exactly)", split, f.Eval(x, y))
		}
	}
}

func TestNames(t *testing.T) {
	for _, m := range defaultBoth(t) {
		if m.Name() == "" {
			t.Fatal("empty mechanism name")
		}
	}
}

func TestRewardsRejectsInvalidTree(t *testing.T) {
	for _, m := range defaultBoth(t) {
		var empty tree.Tree
		if _, err := m.Rewards(&empty); err == nil {
			t.Fatal("rootless tree should be rejected")
		}
	}
}
