// Package query provides the read-side companion to the ingest
// pipeline: a versioned cache for derived views (reward tables,
// leaderboards) that are expensive to build and invalidated by writes.
//
// The cache is keyed by a monotone state version supplied by the data
// source — for a server deployment, a counter bumped once per committed
// batch. A cached view therefore always corresponds to a batch
// boundary: because the build function runs under the source's read
// lock and batches apply under its write lock, a view can never
// observe a torn mid-batch state, and a stale hit is simply the
// consistent view of an earlier batch.
package query

import (
	"sync"

	"incentivetree/internal/obs"
)

// Cache memoizes one derived view of type T per state version. It is
// safe for concurrent use; concurrent misses are collapsed into a
// single rebuild.
type Cache[T any] struct {
	// version reads the source's current state version cheaply (e.g.
	// under a read lock).
	version func() uint64
	// build constructs the view and returns the version it observed;
	// it must read source state and version atomically (run under the
	// source's read lock).
	build func() (uint64, T, error)

	mu    sync.RWMutex
	valid bool
	ver   uint64
	val   T

	hits, misses *obs.Counter // nil = uninstrumented
}

// New builds a cache over a version reader and a view builder.
func New[T any](version func() uint64, build func() (uint64, T, error)) *Cache[T] {
	return &Cache[T]{version: version, build: build}
}

// Counters attaches hit/miss counters (either may be nil).
func (c *Cache[T]) Counters(hits, misses *obs.Counter) {
	c.hits, c.misses = hits, misses
}

// Get returns the view for the source's current version, rebuilding it
// on a version mismatch. Rebuilds are serialized: concurrent readers of
// a stale cache block on one build and then all serve its result.
func (c *Cache[T]) Get() (T, error) {
	cur := c.version()
	c.mu.RLock()
	if c.valid && c.ver == cur {
		v := c.val
		c.mu.RUnlock()
		if c.hits != nil {
			c.hits.Inc()
		}
		return v, nil
	}
	c.mu.RUnlock()

	c.mu.Lock()
	defer c.mu.Unlock()
	// Another reader may have rebuilt while we waited for the lock; a
	// version at least as new as the one we observed is good to serve.
	if c.valid && c.ver >= cur {
		if c.hits != nil {
			c.hits.Inc()
		}
		return c.val, nil
	}
	if c.misses != nil {
		c.misses.Inc()
	}
	ver, v, err := c.build()
	if err != nil {
		var zero T
		return zero, err
	}
	c.ver, c.val, c.valid = ver, v, true
	return v, nil
}

// Invalidate drops the cached view unconditionally. Sources whose
// version counter can move backwards (state restores) call this to
// avoid aliasing an old version number onto new state; sources with a
// strictly monotone counter never need it.
func (c *Cache[T]) Invalidate() {
	c.mu.Lock()
	c.valid = false
	c.mu.Unlock()
}

// Version returns the version of the currently cached view and whether
// one is cached (for tests and introspection).
func (c *Cache[T]) Version() (uint64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ver, c.valid
}
