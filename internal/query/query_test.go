package query

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"incentivetree/internal/obs"
)

// source is a fake versioned data source counting builds.
type source struct {
	version atomic.Uint64
	builds  atomic.Int64
	fail    atomic.Bool
}

func (s *source) cache(reg *obs.Registry) *Cache[int] {
	c := New(
		func() uint64 { return s.version.Load() },
		func() (uint64, int, error) {
			s.builds.Add(1)
			if s.fail.Load() {
				return 0, 0, errors.New("build failed")
			}
			v := s.version.Load()
			return v, int(v) * 10, nil
		},
	)
	if reg != nil {
		c.Counters(reg.Counter("hits", ""), reg.Counter("misses", ""))
	}
	return c
}

func TestGetCachesPerVersion(t *testing.T) {
	var s source
	reg := obs.NewRegistry()
	c := s.cache(reg)

	for i := 0; i < 3; i++ {
		v, err := c.Get()
		if err != nil {
			t.Fatal(err)
		}
		if v != 0 {
			t.Fatalf("value = %d, want 0", v)
		}
	}
	if n := s.builds.Load(); n != 1 {
		t.Fatalf("builds = %d, want 1 (two hits)", n)
	}
	if h := reg.Counter("hits", "").Value(); h != 2 {
		t.Fatalf("hits = %d, want 2", h)
	}
	if m := reg.Counter("misses", "").Value(); m != 1 {
		t.Fatalf("misses = %d, want 1", m)
	}

	// A version bump invalidates exactly once.
	s.version.Store(7)
	v, err := c.Get()
	if err != nil {
		t.Fatal(err)
	}
	if v != 70 {
		t.Fatalf("value = %d, want 70", v)
	}
	if n := s.builds.Load(); n != 2 {
		t.Fatalf("builds = %d, want 2", n)
	}
	if ver, ok := c.Version(); !ok || ver != 7 {
		t.Fatalf("cached version = %d/%v, want 7/true", ver, ok)
	}
}

func TestInvalidateForcesRebuild(t *testing.T) {
	var s source
	c := s.cache(nil)
	if _, err := c.Get(); err != nil {
		t.Fatal(err)
	}
	c.Invalidate()
	if _, ok := c.Version(); ok {
		t.Fatal("cache still valid after Invalidate")
	}
	if _, err := c.Get(); err != nil {
		t.Fatal(err)
	}
	if n := s.builds.Load(); n != 2 {
		t.Fatalf("builds = %d, want 2", n)
	}
}

// TestBuildErrorNotCached: a failed build propagates and the next Get
// retries instead of serving a poisoned entry.
func TestBuildErrorNotCached(t *testing.T) {
	var s source
	c := s.cache(nil)
	s.fail.Store(true)
	if _, err := c.Get(); err == nil {
		t.Fatal("expected build error")
	}
	s.fail.Store(false)
	v, err := c.Get()
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("value = %d, want 0", v)
	}
	if n := s.builds.Load(); n != 2 {
		t.Fatalf("builds = %d, want 2 (error retried)", n)
	}
}

// TestConcurrentMissesCollapse: readers racing on a cold cache are
// serialized into one build per observed version.
func TestConcurrentMissesCollapse(t *testing.T) {
	var s source
	c := s.cache(nil)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if v, err := c.Get(); err != nil || v != 0 {
				t.Errorf("Get = %d, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if n := s.builds.Load(); n != 1 {
		t.Fatalf("builds = %d, want 1", n)
	}
}
