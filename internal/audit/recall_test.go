package audit_test

import (
	"math/rand"
	"strings"
	"testing"

	"incentivetree/internal/audit"
	"incentivetree/internal/core"
	"incentivetree/internal/geometric"
	"incentivetree/internal/server"
	"incentivetree/internal/treegen"
)

// applyScenario streams a generated scenario into a live server.
func applyScenario(t *testing.T, s *server.Server, sc treegen.Scenario) {
	t.Helper()
	for _, op := range sc.Ops() {
		var err error
		switch op.Kind {
		case treegen.OpJoin:
			err = s.Join(op.Name, op.Sponsor)
		case treegen.OpContribute:
			err = s.Contribute(op.Name, op.Amount)
		}
		if err != nil {
			t.Fatalf("applying %+v: %v", op, err)
		}
	}
}

func newAuditedServer(t *testing.T, cfg audit.Config) (*server.Server, *audit.Auditor) {
	t.Helper()
	m, err := geometric.Default(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(m)
	a := audit.New(cfg, s)
	s.SetCommitObserver(a.NotifyCommit)
	return s, a
}

// matches reports whether a finding identifies the injection: the
// member sets overlap (star roots are honest sponsors, so root-only
// matching would miss them).
func matches(f audit.Finding, inj treegen.Injection) bool {
	planted := make(map[string]bool, len(inj.Members))
	for _, m := range inj.Members {
		planted[m] = true
	}
	if planted[f.Root] {
		return true
	}
	for _, m := range f.Members {
		if planted[m] {
			return true
		}
	}
	return false
}

// TestAdversarialRecall is the headline regression: on a mixed
// adversarial scenario with known ground truth, the auditor must flag
// at least 90% of the injected arrangements, never flag an honest
// participant, and auto-quarantine only planted identities.
func TestAdversarialRecall(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		sc := treegen.Mix(rand.New(rand.NewSource(seed)), treegen.ScenarioConfig{
			Honest:        64,
			EpsilonChains: 3,
			Chains:        3,
			Stars:         3,
		})
		s, a := newAuditedServer(t, audit.Config{AutoQuarantine: true})
		applyScenario(t, s, sc)

		// Two scans: hysteresis needs a confirming pass before flagging.
		a.Scan()
		a.Scan()
		rep := a.Report()

		matched := 0
		for _, inj := range sc.Injected {
			found := false
			for _, f := range rep.Findings {
				if f.Flagged && matches(f, inj) {
					found = true
					break
				}
			}
			if found {
				matched++
			} else {
				t.Logf("seed %d: missed %s at %q (members %v)", seed, inj.Shape, inj.Root, inj.Members)
			}
		}
		recall := float64(matched) / float64(len(sc.Injected))
		if recall < 0.9 {
			t.Errorf("seed %d: recall = %d/%d = %.2f, want >= 0.9", seed, matched, len(sc.Injected), recall)
		}

		// Precision: no flagged finding may implicate honest members, and
		// every flagged chain root must itself be planted.
		syb := sc.SybilNames()
		for _, f := range rep.Findings {
			if !f.Flagged {
				continue
			}
			for _, m := range f.Members {
				if !syb[m] {
					t.Errorf("seed %d: flagged finding at %q implicates honest %q", seed, f.Root, m)
				}
			}
			if f.Shape != audit.ShapeStar && !syb[f.Root] {
				t.Errorf("seed %d: flagged %s anchored at honest %q", seed, f.Shape, f.Root)
			}
		}

		// Auto-quarantine touches planted identities only.
		for _, name := range s.QuarantinedNames() {
			if !strings.HasPrefix(name, "syb-") {
				t.Errorf("seed %d: quarantined honest participant %q", seed, name)
			}
		}
		if s.QuarantineCount() == 0 {
			t.Errorf("seed %d: no injection crossed the auto-quarantine gate", seed)
		}
	}
}

// TestHonestOnlyNoQuarantines: organic traffic — preferential
// attachment, cascades, churn — must never be quarantined, and must
// never match the equal-split signatures (continuous contribution
// amounts make exact equality measure-zero). Irregular deep chains DO
// grow organically, so advisory chain flags are permitted — that is
// exactly why plain chains never cross the auto-quarantine gate.
func TestHonestOnlyNoQuarantines(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		sc := treegen.Mix(rand.New(rand.NewSource(seed)), treegen.ScenarioConfig{Honest: 96})
		s, a := newAuditedServer(t, audit.Config{AutoQuarantine: true})
		applyScenario(t, s, sc)
		for i := 0; i < 3; i++ {
			a.Scan()
		}
		for _, f := range a.Report().Findings {
			if f.Shape != audit.ShapeChain {
				t.Errorf("seed %d: honest traffic matched equal-split shape %q at %q", seed, f.Shape, f.Root)
			}
		}
		if n := s.QuarantineCount(); n != 0 {
			t.Errorf("seed %d: %d honest participants quarantined: %v", seed, n, s.QuarantinedNames())
		}
	}
}

// TestIncrementalScanCatchesLateInjection: the dirty-set path (not the
// initial full pass) must pick up an attack arriving after the auditor
// has gone idle.
func TestIncrementalScanCatchesLateInjection(t *testing.T) {
	sc := treegen.Mix(rand.New(rand.NewSource(11)), treegen.ScenarioConfig{Honest: 32})
	s, a := newAuditedServer(t, audit.Config{})
	applyScenario(t, s, sc)
	a.Scan()
	if st := a.Scan(); !st.Skipped {
		t.Fatalf("idle honest server still scanning: %+v", st)
	}

	sponsor := sc.Honest[0]
	prev := sponsor
	chain := []string{"syb-late-0", "syb-late-1", "syb-late-2", "syb-late-3", "syb-late-4"}
	for _, n := range chain {
		if err := s.Join(n, prev); err != nil {
			t.Fatal(err)
		}
		if err := s.Contribute(n, 0.8); err != nil {
			t.Fatal(err)
		}
		prev = n
	}
	a.Scan()
	st := a.Scan()
	if st.Flagged != 1 {
		t.Fatalf("late ε-chain not flagged: %+v, report %+v", st, a.Report())
	}
	rep := a.Report()
	if len(rep.Findings) != 1 || rep.Findings[0].Root != chain[0] || rep.Findings[0].Shape != audit.ShapeEpsilonChain {
		t.Fatalf("findings %+v, want one ε-chain at %q", rep.Findings, chain[0])
	}
}
