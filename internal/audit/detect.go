package audit

import (
	"math"
	"sort"

	"incentivetree/internal/tree"
)

// The reportable attack shapes, in the paper's Theorem-4 taxonomy.
const (
	// ShapeEpsilonChain is a single-child chain whose tail blocks carry
	// exactly equal contributions with the head holding at most one more
	// block — the TDRM-style ε-chain, the strongest signature.
	ShapeEpsilonChain = "epsilon-chain"
	// ShapeChain is a deep single-child chain with irregular
	// contributions — structurally attack-shaped but weaker evidence.
	ShapeChain = "chain"
	// ShapeStar is a burst of equal-contribution siblings under one
	// sponsor, at most one of them with recruits of its own.
	ShapeStar = "star"
)

// Shape severities: the initial evidence weight of one detection.
const (
	severityEpsilonChain = 1.0
	severityStar         = 0.9
	severityChain        = 0.8
)

// shapeSeverity returns a shape's base severity — what the
// auto-quarantine gate compares against, deliberately ignoring probe
// boosts (see the package comment).
func shapeSeverity(shape string) float64 {
	switch shape {
	case ShapeEpsilonChain:
		return severityEpsilonChain
	case ShapeStar:
		return severityStar
	default:
		return severityChain
	}
}

// detection is one raw shape match, before hysteresis.
type detection struct {
	shape    string
	severity float64
	// root anchors the detection: chain head, or star center.
	root tree.NodeID
	// members are the suspected identities in topological (id) order.
	// For chains this includes root; for stars the root (sponsor) is
	// not a member.
	members   []tree.NodeID
	probeGain float64
}

// rootName returns the stable report/score key for the detection: the
// root's label, except for a star under the tree root, which anchors at
// its first member (the tree root is not a participant).
func (d detection) rootName(t *tree.Tree) string {
	if d.root == tree.Root {
		return t.Label(d.members[0])
	}
	return t.Label(d.root)
}

// memberNames resolves the member ids to participant names.
func (d detection) memberNames(t *tree.Tree) []string {
	names := make([]string, len(d.members))
	for i, id := range d.members {
		names[i] = t.Label(id)
	}
	return names
}

// quarantineTargets returns the names AutoQuarantine withholds. Chains
// quarantine the head — subtree masking covers the rest — while stars
// quarantine each member individually: the center is the sponsor, which
// may well be an honest participant the attacker joined under.
func (d detection) quarantineTargets(t *tree.Tree) []string {
	if d.shape == ShapeStar {
		return d.memberNames(t)
	}
	return []string{t.Label(d.root)}
}

// chainHead walks up from u to the top of its maximal single-child
// chain: the highest ancestor reachable from u through parents that
// have exactly one child. u itself when its parent branches.
func chainHead(t *tree.Tree, u tree.NodeID) tree.NodeID {
	if u == tree.Root {
		return u
	}
	for {
		p := t.Parent(u)
		if p == tree.Root || t.NumChildren(p) != 1 {
			return u
		}
		u = p
	}
}

// detectShapes runs every detector anchored at id, returning zero, one,
// or two detections (a node can head a chain and center a star).
func detectShapes(t *tree.Tree, id tree.NodeID, cfg Config) []detection {
	var out []detection
	if id != tree.Root && chainHead(t, id) == id {
		if d, ok := detectChain(t, id, cfg); ok {
			out = append(out, d)
		}
	}
	if d, ok := detectStar(t, id, cfg); ok {
		out = append(out, d)
	}
	return out
}

// detectChain matches the maximal single-child chain headed at head:
// nodes v1..vk where each of v1..v(k-1) has exactly one child. Chains
// of MinChainDepth or more are suspicious; equal tail blocks with the
// head holding at most one block (the TDRM reward-tree split) upgrade
// the match to an ε-chain.
func detectChain(t *tree.Tree, head tree.NodeID, cfg Config) (detection, bool) {
	members := []tree.NodeID{head}
	cur := head
	for t.NumChildren(cur) == 1 {
		cur = t.FirstChild(cur)
		members = append(members, cur)
	}
	if len(members) < cfg.MinChainDepth {
		return detection{}, false
	}
	d := detection{shape: ShapeChain, severity: severityChain, root: head, members: members}
	if isEpsilonSplit(t, members, cfg.Tolerance) {
		d.shape = ShapeEpsilonChain
		d.severity = severityEpsilonChain
	}
	return d, true
}

// isEpsilonSplit reports whether the chain's contributions look like an
// equal-block split: all tail blocks equal (within tolerance) and
// positive, and the head carrying no more than one block.
func isEpsilonSplit(t *tree.Tree, members []tree.NodeID, tol float64) bool {
	if len(members) < 2 {
		return false
	}
	block := t.Contribution(members[1])
	if block <= 0 {
		return false
	}
	for _, id := range members[2:] {
		if !relEqual(t.Contribution(id), block, tol) {
			return false
		}
	}
	head := t.Contribution(members[0])
	return head <= block*(1+tol)
}

// detectStar matches a burst of equal-contribution children under
// center, at most one of which has children of its own (the attack
// attaches the real solicitees under one identity). Zero-contribution
// children never group — freshly joined honest recruits all sit at 0.
func detectStar(t *tree.Tree, center tree.NodeID, cfg Config) (detection, bool) {
	if t.NumChildren(center) < cfg.MinStarFanout {
		return detection{}, false
	}
	type kc struct {
		id tree.NodeID
		c  float64
	}
	group := make([]kc, 0, t.NumChildren(center))
	for k := t.FirstChild(center); k != tree.None; k = t.NextSibling(k) {
		if c := t.Contribution(k); c > 0 {
			group = append(group, kc{k, c})
		}
	}
	if len(group) < cfg.MinStarFanout {
		return detection{}, false
	}
	sort.Slice(group, func(i, j int) bool {
		if group[i].c != group[j].c {
			return group[i].c < group[j].c
		}
		return group[i].id < group[j].id
	})
	// Longest run of equal contributions.
	bestLo, bestHi, lo := 0, 0, 0
	for hi := 1; hi <= len(group); hi++ {
		if hi < len(group) && relEqual(group[hi].c, group[lo].c, cfg.Tolerance) {
			continue
		}
		if hi-lo > bestHi-bestLo {
			bestLo, bestHi = lo, hi
		}
		lo = hi
	}
	if bestHi-bestLo < cfg.MinStarFanout {
		return detection{}, false
	}
	run := group[bestLo:bestHi]
	withKids := 0
	for _, m := range run {
		if t.NumChildren(m.id) > 0 {
			withKids++
		}
	}
	if withKids > 1 {
		return detection{}, false
	}
	members := make([]tree.NodeID, len(run))
	for i, m := range run {
		members[i] = m.id
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	return detection{shape: ShapeStar, severity: severityStar, root: center, members: members}, true
}

// relEqual compares with relative tolerance (absolute near zero).
func relEqual(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	return diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}
