// Package audit implements the online Sybil auditor: a per-campaign
// background service that watches committed write batches and
// incrementally re-scores recently-mutated subtrees for the canonical
// attack shapes of the paper's Theorem-4 appendix — ε-chains, deep
// single-child chains, and star bursts — plus a bounded counterfactual
// probe (internal/sybil) asking whether the subtree's reward could be
// replicated by one honest node.
//
// Suspicion is tracked per subtree root with hysteresis: each scan that
// re-detects a shape pulls the root's score toward the shape's severity
// (EWMA), each clean scan decays it, and a root is flagged once the
// score crosses FlagScore and unflagged only when it falls below
// ClearScore. With AutoQuarantine, flagged roots whose shape severity
// clears QuarantineSeverity are quarantined from payout through the
// journaled quarantine path. Only the exact equal-split signatures —
// ε-chains and star bursts — cross that gate: organic growth draws
// contributions from a continuum, so exact equality is measure-zero
// evidence of coordination, whereas deep chains with irregular
// contributions arise naturally under preferential attachment (and the
// probe rightly shows the mechanism rewards them — gaming potential is
// a property of the shape, not proof of intent). Those stay in the
// report for operator review, probe evidence attached.
package audit

import (
	"sort"
	"sync"
	"time"

	"incentivetree/internal/core"
	"incentivetree/internal/obs"
	"incentivetree/internal/tree"
)

// Source is the audited deployment. *server.Server implements it.
type Source interface {
	// AuditSnapshot returns an owned clone of the current tree, the
	// sorted quarantine list, and the commit version they correspond to.
	AuditSnapshot() (*tree.Tree, []string, uint64)
	// Mechanism returns the deployment's reward mechanism.
	Mechanism() core.Mechanism
	// Quarantine withholds the named subtree from payout (journaled).
	Quarantine(name string) error
	// QuarantineCount reports how many quarantine flags are set.
	QuarantineCount() int
}

// Config tunes the auditor. Zero values select the defaults.
type Config struct {
	// MinChainDepth is the minimum single-child chain length (number of
	// identities) reported as a chain shape. Default 4.
	MinChainDepth int
	// MinStarFanout is the minimum equal-contribution sibling group
	// reported as a star burst. Default 6.
	MinStarFanout int
	// Tolerance is the relative tolerance for "equal contribution"
	// comparisons. Default 1e-9.
	Tolerance float64
	// Alpha is the EWMA gain pulling a root's score toward the detected
	// severity on each confirming scan. Default 0.5.
	Alpha float64
	// Decay multiplies a tracked score on each scan that no longer
	// detects the shape. Default 0.4.
	Decay float64
	// FlagScore is the score at which a root becomes flagged.
	// Default 0.6 — canonical shapes flag after two confirming scans.
	FlagScore float64
	// ClearScore is the score below which a flagged root unflags.
	// Default 0.3 — roughly two clean scans after a flag.
	ClearScore float64
	// QuarantineSeverity gates AutoQuarantine on the shape's base
	// severity (before any probe boost). Default 0.85, which admits
	// ε-chains (1.0) and star bursts (0.9) but not deep chains (0.8):
	// honest trees grow irregular chains naturally, so chains — even
	// probe-confirmed ones — always need an operator.
	QuarantineSeverity float64
	// MaxProbeNodes bounds the sybil-probe footprint (identities plus
	// re-attached child subtree nodes); larger candidates skip the
	// probe. Default 512.
	MaxProbeNodes int
	// AutoQuarantine lets the auditor quarantine flagged high-severity
	// roots itself (through Source.Quarantine).
	AutoQuarantine bool
	// Registry receives the itree_audit_* metric family (nil disables).
	Registry *obs.Registry
	// Labels are the metric labels (e.g. "campaign", id).
	Labels []string
}

func (c Config) withDefaults() Config {
	if c.MinChainDepth <= 0 {
		c.MinChainDepth = 4
	}
	if c.MinStarFanout <= 0 {
		c.MinStarFanout = 6
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 1e-9
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.5
	}
	if c.Decay <= 0 {
		c.Decay = 0.4
	}
	if c.FlagScore <= 0 {
		c.FlagScore = 0.6
	}
	if c.ClearScore <= 0 {
		c.ClearScore = 0.3
	}
	if c.QuarantineSeverity <= 0 {
		c.QuarantineSeverity = 0.85
	}
	if c.MaxProbeNodes <= 0 {
		c.MaxProbeNodes = 512
	}
	return c
}

// Finding is one scored suspect subtree in the audit report.
type Finding struct {
	// Root anchors the finding: the chain head, or the star center
	// (the first member when the center is the tree root). For chain
	// shapes Root is itself a suspected identity; for stars it is the
	// — possibly honest — sponsor the burst hangs under.
	Root string `json:"root"`
	// Shape is "epsilon-chain", "chain", or "star".
	Shape string `json:"shape"`
	// Score is the hysteresis-tracked suspicion in [0, 1].
	Score float64 `json:"score"`
	// Severity is the last-detected shape severity in [0, 1].
	Severity float64 `json:"severity"`
	// Flagged reports whether Score has crossed FlagScore (and not yet
	// fallen below ClearScore).
	Flagged bool `json:"flagged"`
	// Members are the suspected identity names (the shape witness).
	Members []string `json:"members"`
	// ProbeGain, when the sybil probe ran, is the reward advantage of
	// the observed arrangement over a single honest join (>0 means the
	// arrangement extracts more than one node would).
	ProbeGain float64 `json:"probe_gain,omitempty"`
	// AutoQuarantined reports that this auditor quarantined the finding.
	AutoQuarantined bool `json:"auto_quarantined,omitempty"`
	// FirstScan/LastScan are the scan indices bracketing the detections.
	FirstScan uint64 `json:"first_scan"`
	LastScan  uint64 `json:"last_scan"`
}

// Report is the wire payload of GET /v1/campaigns/{id}/audit.
type Report struct {
	// Scans counts completed (non-skipped) scan passes.
	Scans uint64 `json:"scans"`
	// Version is the commit version of the last scanned state.
	Version uint64 `json:"version"`
	// Flagged counts currently flagged roots.
	Flagged int `json:"flagged"`
	// Findings lists every tracked suspect, best score first.
	Findings []Finding `json:"findings"`
}

// Stats summarizes one Scan call.
type Stats struct {
	// Skipped is true when nothing was dirty and no suspects needed
	// re-examination, so no snapshot was taken.
	Skipped bool
	// Candidates is the number of subtree roots examined.
	Candidates int
	// Detected is the number of roots with a shape detection this scan.
	Detected int
	// Flagged is the number of currently flagged roots after the scan.
	Flagged int
	// Quarantined is the number of names quarantined by this scan.
	Quarantined int
}

// suspect is the tracked per-root state behind a Finding.
type suspect struct {
	shape           string
	score           float64
	severity        float64
	members         []string
	probeGain       float64
	flagged         bool
	autoQuarantined bool
	firstScan       uint64
	lastScan        uint64
}

// Auditor incrementally audits one deployment. All methods are safe
// for concurrent use; concurrent Scan calls (the store's audit ticker
// racing an operator's scan-now request) serialize on scanMu.
type Auditor struct {
	cfg Config
	src Source

	// scanMu serializes whole Scan passes.
	scanMu sync.Mutex
	mu     sync.Mutex
	dirty  map[string]struct{}
	full   bool
	scores map[string]*suspect
	scans  uint64
	// version is the commit version of the last scanned snapshot.
	version uint64

	metricScans    *obs.Counter
	metricAutoQ    *obs.Counter
	metricFindings map[string]*obs.Counter
	metricFlagged  *obs.Gauge
	metricLatency  *obs.Histogram
}

// shapes are the reportable shape names (stable metric label values).
var shapes = []string{ShapeEpsilonChain, ShapeChain, ShapeStar}

// New creates an auditor over src. The first Scan is always a full
// pass, so commits from before the auditor attached are never missed.
func New(cfg Config, src Source) *Auditor {
	a := &Auditor{
		cfg:    cfg.withDefaults(),
		src:    src,
		dirty:  make(map[string]struct{}),
		full:   true,
		scores: make(map[string]*suspect),
	}
	if r := a.cfg.Registry; r != nil {
		labels := a.cfg.Labels
		a.metricScans = r.Counter("itree_audit_scans_total",
			"Completed audit scan passes.", labels...)
		a.metricAutoQ = r.Counter("itree_audit_quarantines_total",
			"Names auto-quarantined by the auditor.", labels...)
		a.metricFlagged = r.Gauge("itree_audit_flagged",
			"Subtree roots currently flagged as attack-shaped.", labels...)
		a.metricLatency = r.Histogram("itree_audit_scan_seconds",
			"Audit scan latency.", nil, labels...)
		r.GaugeFunc("itree_audit_quarantined_nodes",
			"Quarantine flags currently withholding payout.",
			func() float64 { return float64(src.QuarantineCount()) }, labels...)
		a.metricFindings = make(map[string]*obs.Counter, len(shapes))
		for _, s := range shapes {
			a.metricFindings[s] = r.Counter("itree_audit_findings_total",
				"Roots newly flagged, by attack shape.", append(append([]string{}, labels...), "shape", s)...)
		}
	}
	return a
}

// Close releases the auditor's metric series. The auditor must not be
// used afterwards.
func (a *Auditor) Close() {
	r := a.cfg.Registry
	if r == nil {
		return
	}
	labels := a.cfg.Labels
	r.Unregister("itree_audit_scans_total", labels...)
	r.Unregister("itree_audit_quarantines_total", labels...)
	r.Unregister("itree_audit_flagged", labels...)
	r.Unregister("itree_audit_scan_seconds", labels...)
	r.Unregister("itree_audit_quarantined_nodes", labels...)
	for _, s := range shapes {
		r.Unregister("itree_audit_findings_total", append(append([]string{}, labels...), "shape", s)...)
	}
}

// NotifyCommit records a committed batch's touched participant names
// for the next incremental scan. A nil touched list (state restore,
// replicated catch-up) forces the next scan to be a full pass. It is
// the server's commit observer: it runs under the server's write lock
// and must stay cheap.
func (a *Auditor) NotifyCommit(version uint64, touched []string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	_ = version
	if touched == nil {
		a.full = true
		return
	}
	for _, name := range touched {
		a.dirty[name] = struct{}{}
	}
}

// Scan runs one audit pass: it drains the dirty set, re-examines the
// mutated subtrees plus every tracked suspect against the shape
// detectors (and the sybil probe for detections), updates hysteresis
// scores, and — with AutoQuarantine — quarantines flagged
// high-severity roots. A scan with nothing to do returns immediately
// with Stats.Skipped.
func (a *Auditor) Scan() Stats {
	a.scanMu.Lock()
	defer a.scanMu.Unlock()
	a.mu.Lock()
	full := a.full
	dirty := a.dirty
	a.full = false
	a.dirty = make(map[string]struct{})
	suspectKeys := make([]string, 0, len(a.scores))
	for key := range a.scores {
		suspectKeys = append(suspectKeys, key)
	}
	a.mu.Unlock()

	if !full && len(dirty) == 0 && len(suspectKeys) == 0 {
		return Stats{Skipped: true}
	}

	start := time.Now()
	t, quarantined, version := a.src.AuditSnapshot()
	byName := make(map[string]tree.NodeID, t.NumParticipants())
	for _, u := range t.Nodes() {
		byName[t.Label(u)] = u
	}

	// Candidate roots: for every dirty name, the head of its enclosing
	// single-child chain (a contribution to a chain tail implicates the
	// head) and its parent (a join under a sponsor may complete a star
	// burst there); plus every tracked suspect, so hysteresis keeps
	// moving after writes stop.
	candidates := make(map[tree.NodeID]struct{})
	add := func(name string) {
		id, ok := byName[name]
		if !ok {
			return
		}
		candidates[id] = struct{}{}
		candidates[chainHead(t, id)] = struct{}{}
		candidates[t.Parent(id)] = struct{}{}
	}
	if full {
		for _, u := range t.Nodes() {
			candidates[u] = struct{}{}
		}
		candidates[tree.Root] = struct{}{}
	} else {
		for name := range dirty {
			add(name)
		}
		for _, key := range suspectKeys {
			add(key)
		}
	}

	// Deterministic examination order.
	order := make([]tree.NodeID, 0, len(candidates))
	for id := range candidates {
		order = append(order, id)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	detected := make(map[string]detection)
	for _, id := range order {
		for _, d := range detectShapes(t, id, a.cfg) {
			key := d.rootName(t)
			if prev, ok := detected[key]; ok && prev.severity >= d.severity {
				continue
			}
			detected[key] = d
		}
	}

	// Probe each detection's counterfactual: would one honest node
	// holding the same total earn at least as much? A positive gain is
	// direct evidence the arrangement games the mechanism.
	mech := a.src.Mechanism()
	for key, d := range detected {
		gain, ok := probeGain(mech, t, d.members, a.cfg.MaxProbeNodes)
		if !ok {
			continue
		}
		d.probeGain = gain
		if gain > probeGainEps {
			d.severity = min(1, d.severity+probeSeverityBoost)
		}
		detected[key] = d
	}

	alreadyQuarantined := make(map[string]bool, len(quarantined))
	for _, name := range quarantined {
		alreadyQuarantined[name] = true
	}

	type quarantinePlan struct {
		key     string
		targets []string
	}
	a.mu.Lock()
	a.scans++
	a.version = version
	scan := a.scans
	var plans []quarantinePlan
	for key, d := range detected {
		sc := a.scores[key]
		if sc == nil {
			sc = &suspect{firstScan: scan}
			a.scores[key] = sc
		}
		sc.score += a.cfg.Alpha * (d.severity - sc.score)
		sc.shape = d.shape
		sc.severity = d.severity
		sc.members = d.memberNames(t)
		sc.probeGain = d.probeGain
		sc.lastScan = scan
		if !sc.flagged && sc.score >= a.cfg.FlagScore {
			sc.flagged = true
			if c := a.metricFindings[sc.shape]; c != nil {
				c.Inc()
			}
		}
		if a.cfg.AutoQuarantine && sc.flagged && !sc.autoQuarantined && shapeSeverity(sc.shape) >= a.cfg.QuarantineSeverity {
			targets := d.quarantineTargets(t)
			pending := targets[:0]
			for _, name := range targets {
				if !alreadyQuarantined[name] {
					pending = append(pending, name)
				}
			}
			if len(pending) == 0 {
				sc.autoQuarantined = true
				continue
			}
			plans = append(plans, quarantinePlan{key: key, targets: append([]string(nil), pending...)})
		}
	}
	for key, sc := range a.scores {
		if _, ok := detected[key]; ok {
			continue
		}
		// Every suspect was a candidate this scan (or the scan was
		// full), so no detection means the shape is gone: decay.
		sc.score *= a.cfg.Decay
		if sc.flagged && sc.score < a.cfg.ClearScore {
			sc.flagged = false
		}
		if !sc.flagged && sc.score < dropScore {
			delete(a.scores, key)
		}
	}
	flagged := 0
	for _, sc := range a.scores {
		if sc.flagged {
			flagged++
		}
	}
	a.mu.Unlock()

	// Quarantine outside the auditor lock: Source.Quarantine takes the
	// server's write lock and appends to the journal.
	sort.Slice(plans, func(i, j int) bool { return plans[i].key < plans[j].key })
	quarantinedNow := 0
	var done []string
	for _, plan := range plans {
		ok := true
		for _, name := range plan.targets {
			if err := a.src.Quarantine(name); err != nil {
				// Retried next scan (the suspect stays un-marked); the
				// pre-check against the snapshot's quarantine list keeps
				// the common already-quarantined case from looping.
				ok = false
				continue
			}
			quarantinedNow++
			if a.metricAutoQ != nil {
				a.metricAutoQ.Inc()
			}
		}
		if ok {
			done = append(done, plan.key)
		}
	}
	if len(done) > 0 {
		a.mu.Lock()
		for _, key := range done {
			if sc := a.scores[key]; sc != nil {
				sc.autoQuarantined = true
			}
		}
		a.mu.Unlock()
	}

	if a.metricScans != nil {
		a.metricScans.Inc()
		a.metricFlagged.Set(float64(flagged))
		a.metricLatency.Observe(time.Since(start).Seconds())
	}
	return Stats{
		Candidates:  len(order),
		Detected:    len(detected),
		Flagged:     flagged,
		Quarantined: quarantinedNow,
	}
}

// Report returns the current findings, best score first (ties by root
// name, so the report is deterministic).
func (a *Auditor) Report() Report {
	a.mu.Lock()
	defer a.mu.Unlock()
	rep := Report{Scans: a.scans, Version: a.version, Findings: make([]Finding, 0, len(a.scores))}
	for key, sc := range a.scores {
		if sc.flagged {
			rep.Flagged++
		}
		rep.Findings = append(rep.Findings, Finding{
			Root:            key,
			Shape:           sc.shape,
			Score:           sc.score,
			Severity:        sc.severity,
			Flagged:         sc.flagged,
			Members:         append([]string(nil), sc.members...),
			ProbeGain:       sc.probeGain,
			AutoQuarantined: sc.autoQuarantined,
			FirstScan:       sc.firstScan,
			LastScan:        sc.lastScan,
		})
	}
	sort.Slice(rep.Findings, func(i, j int) bool {
		if rep.Findings[i].Score != rep.Findings[j].Score {
			return rep.Findings[i].Score > rep.Findings[j].Score
		}
		return rep.Findings[i].Root < rep.Findings[j].Root
	})
	return rep
}

const (
	// dropScore is the score below which an unflagged suspect is
	// forgotten entirely.
	dropScore = 0.05
	// probeGainEps is the minimum probe gain treated as real (absorbs
	// float noise in reward sums).
	probeGainEps = 1e-9
	// probeSeverityBoost is added to a detection's severity when the
	// probe shows the arrangement out-earns a single honest join.
	probeSeverityBoost = 0.2
)
