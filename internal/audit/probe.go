package audit

import (
	"incentivetree/internal/core"
	"incentivetree/internal/sybil"
	"incentivetree/internal/tree"
)

// probeGain runs the bounded counterfactual probe on a detected
// identity set: rebuild the scenario the members faced (the tree
// without them, their external children as attachable subtrees),
// execute their observed arrangement and the single-honest-node
// arrangement through the sybil Executor, and return the reward
// difference. A positive gain means the arrangement extracts more than
// one honest participant with the same total contribution would — the
// mechanism-level definition of a profitable Sybil attack.
//
// Returns ok=false when the probe is skipped: members not forming one
// attachable group (all external parents must be above the set), a
// footprint beyond maxNodes, or an evaluation error.
func probeGain(m core.Mechanism, t *tree.Tree, members []tree.NodeID, maxNodes int) (float64, bool) {
	if len(members) == 0 || len(members) > maxNodes {
		return 0, false
	}
	n := t.Len()
	memberIdx := make(map[tree.NodeID]int, len(members))
	for i, id := range members {
		if !t.Exists(id) || id == tree.Root {
			return 0, false
		}
		memberIdx[id] = i
	}
	// A member's parent must be another member or the common external
	// parent (members are topological by id, so parents precede them).
	external := t.Parent(members[0])
	if _, in := memberIdx[external]; in {
		return 0, false
	}
	for _, id := range members[1:] {
		p := t.Parent(id)
		if _, in := memberIdx[p]; !in && p != external {
			return 0, false
		}
	}

	// excluded = members plus all their descendants; downward-closed,
	// computable in one id-order pass since parent < child.
	excluded := make([]bool, n)
	for _, id := range members {
		excluded[id] = true
	}
	footprint := len(members)
	for id := 1; id < n; id++ {
		if excluded[id] {
			continue
		}
		if excluded[t.Parent(tree.NodeID(id))] {
			excluded[id] = true
			footprint++
			if footprint > maxNodes {
				return 0, false
			}
		}
	}

	// The base tree: everything except the excluded set, ids remapped.
	base := tree.New()
	mapping := make([]tree.NodeID, n)
	mapping[tree.Root] = tree.Root
	total := 0.0
	for id := 1; id < n; id++ {
		u := tree.NodeID(id)
		if excluded[id] {
			continue
		}
		nid, err := base.Add(mapping[t.Parent(u)], t.Contribution(u))
		if err != nil {
			return 0, false
		}
		mapping[id] = nid
	}

	// The members' external children become the scenario's attachable
	// child subtrees, remembering which identity held each.
	scenario := sybil.Scenario{Base: base, Parent: mapping[external]}
	var childAssign []int
	for i, id := range members {
		for k := t.FirstChild(id); k != tree.None; k = t.NextSibling(k) {
			if _, in := memberIdx[k]; in {
				continue
			}
			spec, err := t.ToSpec(k)
			if err != nil {
				return 0, false
			}
			scenario.ChildTrees = append(scenario.ChildTrees, spec)
			childAssign = append(childAssign, i)
		}
	}

	observed := sybil.Arrangement{
		Parts:       make([]float64, len(members)),
		ParentIdx:   make([]int, len(members)),
		ChildAssign: childAssign,
	}
	for i, id := range members {
		c := t.Contribution(id)
		observed.Parts[i] = c
		total += c
		if pi, in := memberIdx[t.Parent(id)]; in {
			observed.ParentIdx[i] = pi
		} else {
			observed.ParentIdx[i] = -1
		}
	}
	scenario.Contribution = total

	ex := sybil.NewExecutor(m, scenario)
	got, err := ex.Execute(observed)
	if err != nil {
		return 0, false
	}
	honest, err := ex.Execute(sybil.Single(total, len(scenario.ChildTrees)))
	if err != nil {
		return 0, false
	}
	return got.Reward - honest.Reward, true
}
