package audit

import (
	"errors"
	"sort"
	"strings"
	"testing"

	"incentivetree/internal/core"
	"incentivetree/internal/geometric"
	"incentivetree/internal/obs"
	"incentivetree/internal/tree"
)

// fakeSource is a Source over a mutable tree, for driving the auditor
// directly in unit tests.
type fakeSource struct {
	t           *tree.Tree
	m           core.Mechanism
	version     uint64
	quarantined map[string]bool
	failWith    error
}

func newFakeSource(t *testing.T) *fakeSource {
	t.Helper()
	m, err := geometric.Default(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return &fakeSource{t: tree.New(), m: m, quarantined: make(map[string]bool)}
}

func (f *fakeSource) AuditSnapshot() (*tree.Tree, []string, uint64) {
	names := make([]string, 0, len(f.quarantined))
	for n := range f.quarantined {
		names = append(names, n)
	}
	sort.Strings(names)
	return f.t.Clone(), names, f.version
}

func (f *fakeSource) Mechanism() core.Mechanism { return f.m }

func (f *fakeSource) Quarantine(name string) error {
	if f.failWith != nil {
		return f.failWith
	}
	f.quarantined[name] = true
	return nil
}

func (f *fakeSource) QuarantineCount() int { return len(f.quarantined) }

func findingFor(rep Report, root string) (Finding, bool) {
	for _, fd := range rep.Findings {
		if fd.Root == root {
			return fd, true
		}
	}
	return Finding{}, false
}

// TestHysteresis walks a suspect through its whole lifecycle: two
// confirming scans to flag, decay while the shape persists elsewhere is
// absent, unflag below ClearScore, and eventual eviction.
func TestHysteresis(t *testing.T) {
	src := newFakeSource(t)
	sponsor := src.t.MustAdd(tree.Root, 2)
	src.t.MustAdd(sponsor, 3)
	ids := buildChain(src.t, sponsor, 4, []float64{0.7, 0.7, 0.7, 0.7})
	head := src.t.Label(ids[0])

	a := New(Config{}, src)
	st := a.Scan()
	if st.Skipped || st.Detected != 1 {
		t.Fatalf("first scan: %+v, want one detection", st)
	}
	fd, ok := findingFor(a.Report(), head)
	if !ok || fd.Flagged {
		t.Fatalf("after one scan: %+v ok=%v, want tracked but unflagged", fd, ok)
	}
	if fd.Shape != ShapeEpsilonChain {
		t.Fatalf("shape = %q, want ε-chain", fd.Shape)
	}

	if st = a.Scan(); st.Flagged != 1 {
		t.Fatalf("second scan: %+v, want the suspect flagged", st)
	}
	fd, _ = findingFor(a.Report(), head)
	if !fd.Flagged || fd.Score < a.cfg.FlagScore {
		t.Fatalf("after two scans: %+v, want flagged", fd)
	}

	// Break the shape: the head branches, so no single-child chain of
	// depth 4 remains. Decay takes over.
	src.t.MustAdd(ids[0], 0.2)
	src.t.MustAdd(ids[0], 0.3)
	a.Scan()
	fd, ok = findingFor(a.Report(), head)
	if !ok || !fd.Flagged {
		t.Fatalf("one clean scan: %+v ok=%v, hysteresis should hold the flag", fd, ok)
	}
	a.Scan()
	fd, ok = findingFor(a.Report(), head)
	if !ok || fd.Flagged {
		t.Fatalf("two clean scans: %+v ok=%v, want unflagged but tracked", fd, ok)
	}
	a.Scan()
	if fd, ok = findingFor(a.Report(), head); ok {
		t.Fatalf("three clean scans: suspect %+v still tracked, want evicted", fd)
	}
}

func TestScanSkipsWhenIdle(t *testing.T) {
	src := newFakeSource(t)
	src.t.MustAdd(tree.Root, 1)
	a := New(Config{}, src)
	if st := a.Scan(); st.Skipped {
		t.Fatal("first scan skipped; must be a full pass")
	}
	if st := a.Scan(); !st.Skipped {
		t.Fatalf("idle scan not skipped: %+v", st)
	}
	a.NotifyCommit(1, []string{"u1"})
	if st := a.Scan(); st.Skipped {
		t.Fatal("scan after a commit notification skipped")
	}
}

func TestAutoQuarantine(t *testing.T) {
	src := newFakeSource(t)
	sponsor := src.t.MustAdd(tree.Root, 2)
	src.t.MustAdd(sponsor, 3)
	ids := buildChain(src.t, sponsor, 5, []float64{0.7, 0.7, 0.7, 0.7, 0.7})
	head := src.t.Label(ids[0])

	a := New(Config{AutoQuarantine: true}, src)
	a.Scan()
	if len(src.quarantined) != 0 {
		t.Fatalf("quarantined before the flag threshold: %v", src.quarantined)
	}
	st := a.Scan()
	// ε-chain severity 1.0 ≥ QuarantineSeverity: the head — and only
	// the head, masking covers the subtree — is quarantined.
	if st.Quarantined != 1 || !src.quarantined[head] || len(src.quarantined) != 1 {
		t.Fatalf("stats %+v quarantined %v, want exactly the chain head %q", st, src.quarantined, head)
	}
	fd, _ := findingFor(a.Report(), head)
	if !fd.AutoQuarantined {
		t.Fatalf("finding %+v not marked auto-quarantined", fd)
	}
	// Idempotent: re-scans do not retry quarantined roots.
	if st = a.Scan(); st.Quarantined != 0 {
		t.Fatalf("re-scan quarantined again: %+v", st)
	}
}

// TestAutoQuarantineSeverityGate: an irregular chain (base severity
// 0.8) flags for the report but is never quarantined automatically —
// even when the sybil probe confirms the shape out-earns a single
// honest node. Honest trees grow irregular chains too, so the gate
// compares the shape's base severity, not the probe-boosted one.
func TestAutoQuarantineSeverityGate(t *testing.T) {
	src := newFakeSource(t)
	sponsor := src.t.MustAdd(tree.Root, 2)
	src.t.MustAdd(sponsor, 3)
	ids := buildChain(src.t, sponsor, 4, []float64{0.5, 1.7, 2.3, 0.9})
	head := src.t.Label(ids[0])

	a := New(Config{AutoQuarantine: true}, src)
	a.Scan()
	a.Scan()
	fd, ok := findingFor(a.Report(), head)
	if !ok || !fd.Flagged || fd.Shape != ShapeChain {
		t.Fatalf("finding %+v ok=%v, want flagged plain chain", fd, ok)
	}
	if fd.ProbeGain <= 0 {
		t.Fatalf("finding %+v, want positive probe gain (geometric rewards chains)", fd)
	}
	if fd.Severity <= severityChain {
		t.Fatalf("severity %v not probe-boosted", fd.Severity)
	}
	if len(src.quarantined) != 0 {
		t.Fatalf("probe-boosted plain chain auto-quarantined: %v", src.quarantined)
	}
}

func TestAutoQuarantineRetriesAfterFailure(t *testing.T) {
	src := newFakeSource(t)
	sponsor := src.t.MustAdd(tree.Root, 2)
	src.t.MustAdd(sponsor, 3)
	buildChain(src.t, sponsor, 4, []float64{0.7, 0.7, 0.7, 0.7})

	src.failWith = errors.New("journal down")
	a := New(Config{AutoQuarantine: true}, src)
	a.Scan()
	if st := a.Scan(); st.Quarantined != 0 {
		t.Fatalf("quarantine reported despite failure: %+v", st)
	}
	src.failWith = nil
	if st := a.Scan(); st.Quarantined != 1 {
		t.Fatalf("failed quarantine not retried: %+v", st)
	}
}

// TestProbeSingleIdentityIsNeutral: one identity holding the whole
// contribution IS the honest arrangement, so the gain is exactly zero.
func TestProbeSingleIdentityIsNeutral(t *testing.T) {
	src := newFakeSource(t)
	sponsor := src.t.MustAdd(tree.Root, 2)
	leaf := src.t.MustAdd(sponsor, 1.5)
	gain, ok := probeGain(src.m, src.t, []tree.NodeID{leaf}, 64)
	if !ok || gain != 0 {
		t.Fatalf("gain = %v ok = %v, want exactly 0", gain, ok)
	}
}

func TestProbeRejectsInvalidSets(t *testing.T) {
	src := newFakeSource(t)
	a := src.t.MustAdd(tree.Root, 1)
	b := src.t.MustAdd(tree.Root, 1)
	ab := src.t.MustAdd(a, 1)
	if _, ok := probeGain(src.m, src.t, nil, 64); ok {
		t.Fatal("empty member set probed")
	}
	// Members under two different external parents are not one
	// attachable arrangement.
	if _, ok := probeGain(src.m, src.t, []tree.NodeID{ab, b}, 64); ok {
		t.Fatal("scattered member set probed")
	}
	// Footprint cap: member plus its descendant subtree exceeds 1.
	if _, ok := probeGain(src.m, src.t, []tree.NodeID{a}, 1); ok {
		t.Fatal("over-budget probe ran")
	}
}

// TestProbeChainGain: the probe's verdict on an ε-chain must agree with
// the mechanism's actual reward arithmetic — computed here directly by
// evaluating both trees — not just have the right sign.
func TestProbeChainGain(t *testing.T) {
	src := newFakeSource(t)
	sponsor := src.t.MustAdd(tree.Root, 2)
	src.t.MustAdd(sponsor, 3)
	ids := buildChain(src.t, sponsor, 5, []float64{0.7, 0.7, 0.7, 0.7, 0.7})

	gain, ok := probeGain(src.m, src.t, ids, 64)
	if !ok {
		t.Fatal("chain probe skipped")
	}

	split, err := src.m.Rewards(src.t)
	if err != nil {
		t.Fatal(err)
	}
	chainTotal := 0.0
	for _, id := range ids {
		chainTotal += split[id]
	}
	// The honest counterfactual: same tree with the chain collapsed to
	// one node holding the total contribution.
	honest := tree.New()
	hs := honest.MustAdd(tree.Root, 2)
	honest.MustAdd(hs, 3)
	single := honest.MustAdd(hs, 5*0.7)
	hr, err := src.m.Rewards(honest)
	if err != nil {
		t.Fatal(err)
	}
	want := chainTotal - hr[single]
	if diff := gain - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("probe gain = %v, direct computation = %v", gain, want)
	}
}

func TestMetricsLifecycle(t *testing.T) {
	src := newFakeSource(t)
	sponsor := src.t.MustAdd(tree.Root, 2)
	src.t.MustAdd(sponsor, 3)
	buildChain(src.t, sponsor, 4, []float64{0.7, 0.7, 0.7, 0.7})

	reg := obs.NewRegistry()
	a := New(Config{Registry: reg, Labels: []string{"campaign", "c1"}, AutoQuarantine: true}, src)
	a.Scan()
	a.Scan()
	render := func() string {
		var b strings.Builder
		if err := reg.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	dump := render()
	for _, want := range []string{
		`itree_audit_scans_total{campaign="c1"} 2`,
		`itree_audit_findings_total{campaign="c1",shape="epsilon-chain"} 1`,
		`itree_audit_quarantines_total{campaign="c1"} 1`,
		`itree_audit_flagged{campaign="c1"} 1`,
		`itree_audit_quarantined_nodes{campaign="c1"} 1`,
	} {
		if !strings.Contains(dump, want) {
			t.Fatalf("metrics dump missing %q:\n%s", want, dump)
		}
	}
	a.Close()
	if dump := render(); strings.Contains(dump, "itree_audit_") {
		t.Fatalf("audit series survived Close:\n%s", dump)
	}
}
