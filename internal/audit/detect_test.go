package audit

import (
	"testing"

	"incentivetree/internal/tree"
)

func cfg() Config { return Config{}.withDefaults() }

// buildChain grows a single-child chain of n identities under parent,
// contributing parts[i] (or 1.0 when parts is nil), and returns the ids
// head-first.
func buildChain(t *tree.Tree, parent tree.NodeID, n int, parts []float64) []tree.NodeID {
	ids := make([]tree.NodeID, n)
	for i := range ids {
		c := 1.0
		if parts != nil {
			c = parts[i]
		}
		parent = t.MustAdd(parent, c)
		ids[i] = parent
	}
	return ids
}

func TestChainHead(t *testing.T) {
	tr := tree.New()
	sponsor := tr.MustAdd(tree.Root, 2)
	tr.MustAdd(sponsor, 3) // second child: the chain below cannot absorb sponsor
	ids := buildChain(tr, sponsor, 5, nil)

	for _, id := range ids {
		if got := chainHead(tr, id); got != ids[0] {
			t.Fatalf("chainHead(%d) = %d, want %d", id, got, ids[0])
		}
	}
	// With the branch removed the head's parent is a single-child node,
	// so a lone-child sponsor joins the chain.
	tr2 := tree.New()
	lone := tr2.MustAdd(tree.Root, 2)
	ids2 := buildChain(tr2, lone, 3, nil)
	if got := chainHead(tr2, ids2[2]); got != lone {
		t.Fatalf("chainHead through lone sponsor = %d, want %d", got, lone)
	}
	if got := chainHead(tr2, lone); got != lone {
		t.Fatalf("chainHead(top) = %d, want %d", got, lone)
	}
}

func TestDetectEpsilonChain(t *testing.T) {
	tr := tree.New()
	sponsor := tr.MustAdd(tree.Root, 2)
	tr.MustAdd(sponsor, 3)
	ids := buildChain(tr, sponsor, 4, []float64{0.7, 0.7, 0.7, 0.7})

	d, ok := detectChain(tr, ids[0], cfg())
	if !ok {
		t.Fatal("equal-block chain not detected")
	}
	if d.shape != ShapeEpsilonChain || d.severity != severityEpsilonChain {
		t.Fatalf("shape = %q severity %v, want ε-chain", d.shape, d.severity)
	}
	if len(d.members) != 4 || d.root != ids[0] {
		t.Fatalf("members %v root %d, want all four anchored at head", d.members, d.root)
	}

	// Head may hold at most one block: a heavier head is a plain chain.
	tr.SetContribution(ids[0], 1.5)
	d, ok = detectChain(tr, ids[0], cfg())
	if !ok || d.shape != ShapeChain {
		t.Fatalf("heavy-head chain: shape %q ok=%v, want plain chain", d.shape, ok)
	}
}

func TestDetectChainDepthGate(t *testing.T) {
	tr := tree.New()
	sponsor := tr.MustAdd(tree.Root, 2)
	tr.MustAdd(sponsor, 3)
	ids := buildChain(tr, sponsor, 3, []float64{0.5, 1.7, 2.3})
	if _, ok := detectChain(tr, ids[0], cfg()); ok {
		t.Fatal("depth-3 chain detected below MinChainDepth=4")
	}
	buildChain(tr, ids[2], 1, []float64{0.9}) // now depth 4
	d, ok := detectChain(tr, ids[0], cfg())
	if !ok || d.shape != ShapeChain || d.severity != severityChain {
		t.Fatalf("irregular depth-4 chain: %+v ok=%v, want chain/0.8", d, ok)
	}
}

func TestDetectStar(t *testing.T) {
	tr := tree.New()
	center := tr.MustAdd(tree.Root, 2)
	var kids []tree.NodeID
	for i := 0; i < 7; i++ {
		kids = append(kids, tr.MustAdd(center, 1.25))
	}
	d, ok := detectStar(tr, center, cfg())
	if !ok || d.shape != ShapeStar || len(d.members) != 7 {
		t.Fatalf("star burst: %+v ok=%v, want 7-member star", d, ok)
	}

	// One member recruiting is the attack's re-attachment point; two
	// recruiting members look organic.
	tr.MustAdd(kids[0], 0.4)
	if _, ok := detectStar(tr, center, cfg()); !ok {
		t.Fatal("star with one recruiting member rejected")
	}
	tr.MustAdd(kids[1], 0.4)
	if _, ok := detectStar(tr, center, cfg()); ok {
		t.Fatal("star with two recruiting members detected")
	}
}

func TestDetectStarIgnoresZeroAndUnequal(t *testing.T) {
	tr := tree.New()
	center := tr.MustAdd(tree.Root, 2)
	// Five equal contributors plus fresh zero-contribution joins: the
	// zeros must not pad the burst over the fan-out gate.
	for i := 0; i < 5; i++ {
		tr.MustAdd(center, 1.25)
	}
	for i := 0; i < 4; i++ {
		tr.MustAdd(center, 0)
	}
	if _, ok := detectStar(tr, center, cfg()); ok {
		t.Fatal("zero-contribution joins counted toward a star burst")
	}
	// Unequal positive contributions never group either.
	tr2 := tree.New()
	c2 := tr2.MustAdd(tree.Root, 2)
	for i := 0; i < 8; i++ {
		tr2.MustAdd(c2, 0.5+0.31*float64(i))
	}
	if _, ok := detectStar(tr2, c2, cfg()); ok {
		t.Fatal("unequal siblings detected as a star")
	}
}

func TestDetectShapesAnchorsAtChainHeadOnly(t *testing.T) {
	tr := tree.New()
	sponsor := tr.MustAdd(tree.Root, 2)
	tr.MustAdd(sponsor, 3)
	ids := buildChain(tr, sponsor, 5, nil)
	if ds := detectShapes(tr, ids[2], cfg()); len(ds) != 0 {
		t.Fatalf("mid-chain node produced detections %+v", ds)
	}
	ds := detectShapes(tr, ids[0], cfg())
	if len(ds) != 1 || ds[0].shape != ShapeEpsilonChain {
		t.Fatalf("head detections %+v, want one ε-chain", ds)
	}
}
