package vet

import (
	"go/token"
	"path/filepath"
	"reflect"
	"testing"
)

func diag(analyzer, file, msg string, line int) Diagnostic {
	return Diagnostic{
		Analyzer: analyzer,
		Message:  msg,
		Pos:      token.Position{Filename: "/mod/" + file, Line: line, Column: 1},
	}
}

func relTo(root string) func(string) string {
	return func(path string) string {
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return path
		}
		return filepath.ToSlash(rel)
	}
}

func TestBaselineDiff(t *testing.T) {
	b := &Baseline{Entries: []BaselineEntry{
		{Analyzer: "errflow", File: "internal/journal/file.go", Message: "sync error dropped"},
		{Analyzer: "httpcontract", File: "internal/replica/primary.go", Message: "double write"},
	}}
	findings := []Diagnostic{
		// Matches the first entry even though the line moved: entries key
		// on (analyzer, file, message), not position.
		diag("errflow", "internal/journal/file.go", "sync error dropped", 999),
		// A regression: same analyzer and file, different message.
		diag("errflow", "internal/journal/file.go", "append error dropped", 12),
		// A regression in a file with no entries at all.
		diag("lockorder", "internal/server/server.go", "lock acquisition cycle", 40),
	}
	news, baselined, stale := b.Diff(findings, relTo("/mod"))

	if len(baselined) != 1 || baselined[0].Message != "sync error dropped" {
		t.Fatalf("baselined = %+v, want the moved sync-error finding", baselined)
	}
	if len(news) != 2 {
		t.Fatalf("news = %+v, want the two regressions", news)
	}
	if news[0].Message != "append error dropped" || news[1].Message != "lock acquisition cycle" {
		t.Fatalf("news = %+v: wrong findings flagged as regressions", news)
	}
	// The httpcontract entry matched nothing: it must surface as stale so
	// the baseline can be regenerated and the shrink reviewed.
	wantStale := []BaselineEntry{{Analyzer: "httpcontract", File: "internal/replica/primary.go", Message: "double write"}}
	if !reflect.DeepEqual(stale, wantStale) {
		t.Fatalf("stale = %+v, want %+v", stale, wantStale)
	}
}

func TestBaselineDiffMultiset(t *testing.T) {
	// One entry waives exactly one occurrence: a waived pattern cannot
	// silently multiply.
	b := &Baseline{Entries: []BaselineEntry{
		{Analyzer: "errflow", File: "a.go", Message: "dropped"},
	}}
	findings := []Diagnostic{
		diag("errflow", "a.go", "dropped", 10),
		diag("errflow", "a.go", "dropped", 20),
	}
	news, baselined, stale := b.Diff(findings, relTo("/mod"))
	if len(baselined) != 1 || len(news) != 1 || len(stale) != 0 {
		t.Fatalf("got %d baselined, %d new, %d stale; want 1, 1, 0", len(baselined), len(news), len(stale))
	}

	// Two identical entries waive two identical findings.
	b.Entries = append(b.Entries, b.Entries[0])
	news, baselined, stale = b.Diff(findings, relTo("/mod"))
	if len(baselined) != 2 || len(news) != 0 || len(stale) != 0 {
		t.Fatalf("got %d baselined, %d new, %d stale; want 2, 0, 0", len(baselined), len(news), len(stale))
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vet.baseline.json")
	b := BaselineFromFindings([]Diagnostic{
		diag("zeta", "z.go", "m2", 3),
		diag("alpha", "a.go", "m1", 1),
	}, relTo("/mod"))
	if err := b.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []BaselineEntry{
		{Analyzer: "alpha", File: "a.go", Message: "m1"},
		{Analyzer: "zeta", File: "z.go", Message: "m2"},
	}
	if !reflect.DeepEqual(got.Entries, want) {
		t.Fatalf("round trip: got %+v, want %+v (sorted)", got.Entries, want)
	}

	// An empty diff against the committed state is the CI green path.
	news, _, _ := got.Diff([]Diagnostic{diag("alpha", "a.go", "m1", 99), diag("zeta", "z.go", "m2", 1)}, relTo("/mod"))
	if len(news) != 0 {
		t.Fatalf("clean run against own baseline produced regressions: %+v", news)
	}
}
