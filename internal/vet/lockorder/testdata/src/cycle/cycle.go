// Fixture: an AB/BA lock inversion inside one package, a transitive
// inversion through a helper, a self re-acquisition, and a pair of
// functions that nest consistently (no finding).
package cycle

import "sync"

type A struct {
	mu sync.Mutex
	n  int
}

type B struct {
	mu sync.Mutex
	n  int
}

// Forward nests B under A — the first-seen edge of the A/B cycle, so
// the finding anchors here.
func Forward(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `lock acquisition cycle: cycle.A.mu → cycle.B.mu → cycle.A.mu`
	b.n++
	b.mu.Unlock()
	a.n++
}

// Backward nests A under B: the inversion that closes the cycle.
func Backward(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
	b.n++
}

type C struct {
	mu sync.Mutex
	n  int
}

type D struct {
	mu sync.Mutex
	n  int
}

// Outer holds C.mu across a call to bumpD; Inner holds D.mu across a
// call to bumpC. The cycle only exists through the call graph.
func Outer(c *C, d *D) {
	c.mu.Lock()
	defer c.mu.Unlock()
	bumpD(d) // want `lock acquisition cycle: cycle.C.mu → cycle.D.mu → cycle.C.mu`
	c.n++
}

func Inner(c *C, d *D) {
	d.mu.Lock()
	defer d.mu.Unlock()
	bumpC(c)
	d.n++
}

func bumpC(c *C) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func bumpD(d *D) {
	d.mu.Lock()
	d.n++
	d.mu.Unlock()
}

type E struct {
	mu sync.Mutex
	n  int
}

// Reenter calls a helper that re-acquires the mutex it already holds:
// a guaranteed self-deadlock, the class lockedcall's *Locked contract
// exists to prevent.
func Reenter(e *E) {
	e.mu.Lock()
	defer e.mu.Unlock()
	bumpE(e) // want `lock acquisition cycle: cycle.E.mu → cycle.E.mu`
}

func bumpE(e *E) {
	e.mu.Lock()
	e.n++
	e.mu.Unlock()
}

type F struct {
	mu sync.Mutex
	n  int
}

type G struct {
	mu sync.Mutex
	n  int
}

// OrderedOne and OrderedTwo both nest G under F — a consistent global
// order, so no finding.
func OrderedOne(f *F, g *G) {
	f.mu.Lock()
	defer f.mu.Unlock()
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

func OrderedTwo(f *F, g *G) {
	f.mu.Lock()
	g.mu.Lock()
	f.n++
	g.n++
	g.mu.Unlock()
	f.mu.Unlock()
}

// Sequential locks the same classes one after another — never nested,
// so no edge and no finding.
func Sequential(a *A, b *B) {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
}
