package lockorder_test

import (
	"testing"

	"incentivetree/internal/vet/lockorder"
	"incentivetree/internal/vet/vettest"
)

func TestLockOrder(t *testing.T) {
	vettest.Run(t, "testdata", lockorder.New)
}
