// Package lockorder detects potential deadlocks: it builds the
// module-wide lock acquisition graph — one node per mutex class (a
// struct field like store.shard.mu or audit.Auditor.scanMu, or a
// package-level mutex), one edge A → B whenever B is acquired, or a
// function that may acquire B is called, while A is held — and
// reports every cycle. Edges are collected both from direct nesting
// inside one function body and transitively through the call graph
// (a helper that locks on the caller's behalf contributes the same
// edge as inline code would), so an AB/BA inversion split across
// packages is still one finding.
//
// The analyzer is module-wide: it consumes the shared call graph and
// reports from Finish. Construct a fresh instance per run.
package lockorder

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"incentivetree/internal/vet"
)

// New returns a fresh analyzer instance.
func New() *vet.Analyzer {
	var (
		fset  *token.FileSet
		graph *vet.Graph
		pkgs  []*vet.Package
	)
	return &vet.Analyzer{
		Name: "lockorder",
		Doc:  "mutex classes are acquired in one global order: any cycle in the module-wide acquisition graph is a potential deadlock",
		Run: func(pass *vet.Pass) {
			// All state is module-wide; the first pass pins the shared
			// structures and Finish does the work.
			if graph == nil {
				fset, graph, pkgs = pass.Fset, pass.Graph, pass.Pkgs
			}
		},
		Finish: func(report func(pos token.Position, format string, args ...any)) {
			if graph == nil {
				return
			}
			analyze(fset, graph, pkgs, report)
		},
	}
}

// lockEdge is one ordered acquisition A (held) → B (taken).
type lockEdge struct{ from, to vet.LockClass }

// evidence is the first-seen witness of an edge.
type evidence struct {
	pos  token.Position
	desc string
}

func analyze(fset *token.FileSet, graph *vet.Graph, pkgs []*vet.Package, report func(pos token.Position, format string, args ...any)) {
	lf := vet.NewLockFacts(graph, pkgs)

	edges := make(map[lockEdge]evidence)
	var order []lockEdge // first-seen, for deterministic reporting
	addEdge := func(from, to vet.LockClass, pos token.Position, desc string) {
		e := lockEdge{from, to}
		if _, ok := edges[e]; ok {
			return
		}
		edges[e] = evidence{pos: pos, desc: desc}
		order = append(order, e)
	}

	for _, fi := range graph.Funcs() {
		fn := fi.Func.Pkg().Name() + "." + fi.Func.Name()
		lf.WalkHeld(fi, func(ev vet.HeldEvent) {
			pos := fset.Position(ev.Site.Pos())
			switch {
			case ev.Acq != nil:
				for _, h := range ev.Held {
					if h.Class == ev.Acq.Class && h.Read && ev.Acq.Read {
						// Nested read locks of one class cannot invert an
						// order on their own (writer starvation is real but
						// is not an ordering cycle).
						continue
					}
					addEdge(h.Class, ev.Acq.Class, pos,
						fmt.Sprintf("%s acquired while holding %s in %s", ev.Acq.Class, h.Class, fn))
				}
			case ev.Callee != nil:
				callee := ev.Callee.Func.Pkg().Name() + "." + ev.Callee.Func.Name()
				for _, c := range lf.May(ev.Callee) {
					for _, h := range ev.Held {
						addEdge(h.Class, c, pos,
							fmt.Sprintf("call to %s (which may acquire %s) while holding %s in %s", callee, c, h.Class, fn))
					}
				}
			}
		})
	}

	reportCycles(edges, order, report)
}

// reportCycles finds the strongly connected components of the
// acquisition graph and reports one finding per cyclic component,
// anchored at the first-seen edge inside it.
func reportCycles(edges map[lockEdge]evidence, order []lockEdge, report func(pos token.Position, format string, args ...any)) {
	succs := make(map[vet.LockClass][]vet.LockClass)
	nodes := make(map[vet.LockClass]bool)
	for _, e := range order {
		succs[e.from] = append(succs[e.from], e.to)
		nodes[e.from], nodes[e.to] = true, true
	}

	sccOf := tarjan(nodes, succs)
	reported := make(map[int]bool)
	for _, e := range order {
		id := sccOf[e.from]
		if reported[id] {
			continue
		}
		// A self edge (re-acquiring a held class) is a cycle on its own;
		// otherwise two classes cycle iff they share a component.
		if e.from != e.to && id != sccOf[e.to] {
			continue
		}
		reported[id] = true
		ev := edges[e]
		report(ev.pos, "lock acquisition cycle: %s; %s", renderCycle(e, sccOf, succs), ev.desc)
	}
}

// renderCycle walks from e.from back to itself inside its component,
// preferring e.to as the first hop, and renders "A → B → A".
func renderCycle(e lockEdge, sccOf map[vet.LockClass]int, succs map[vet.LockClass][]vet.LockClass) string {
	id := sccOf[e.from]
	names := []string{e.from.String()}
	if e.from == e.to {
		return e.from.String() + " → " + e.from.String()
	}
	// BFS from e.to back to e.from staying inside the component.
	prev := map[vet.LockClass]vet.LockClass{}
	seen := map[vet.LockClass]bool{e.to: true}
	queue := []vet.LockClass{e.to}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n == e.from {
			break
		}
		for _, s := range succs[n] {
			if sccOf[s] != id || seen[s] {
				continue
			}
			seen[s] = true
			prev[s] = n
			queue = append(queue, s)
		}
	}
	var back []string
	for n := e.from; n != e.to; n = prev[n] {
		back = append(back, n.String())
		if _, ok := prev[n]; !ok && n != e.to {
			break
		}
	}
	back = append(back, e.to.String())
	for i := len(back) - 1; i >= 0; i-- {
		names = append(names, back[i])
	}
	return strings.Join(names, " → ")
}

// tarjan assigns a component id to every node. Iteration order is
// deterministic (nodes sorted by rendered name, then position).
func tarjan(nodes map[vet.LockClass]bool, succs map[vet.LockClass][]vet.LockClass) map[vet.LockClass]int {
	sorted := make([]vet.LockClass, 0, len(nodes))
	for n := range nodes {
		sorted = append(sorted, n)
	}
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.String() != b.String() {
			return a.String() < b.String()
		}
		return a.Obj.Pos() < b.Obj.Pos()
	})

	index := make(map[vet.LockClass]int)
	low := make(map[vet.LockClass]int)
	onStack := make(map[vet.LockClass]bool)
	sccOf := make(map[vet.LockClass]int)
	var stack []vet.LockClass
	next, comp := 0, 0

	var strongconnect func(v vet.LockClass)
	strongconnect = func(v vet.LockClass) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succs[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				sccOf[w] = comp
				if w == v {
					break
				}
			}
			comp++
		}
	}
	for _, n := range sorted {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}
	return sccOf
}
