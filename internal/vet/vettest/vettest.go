// Package vettest is the golden-file test harness for itreevet
// analyzers — the stdlib-only equivalent of x/tools' analysistest.
//
// A test points Run at a testdata directory laid out as
//
//	testdata/src/<pkg>/<files>.go
//
// where each directory is loaded as a package whose import path is
// its name (so stub packages — an `obs` or `journal` lookalike — can
// be imported by fixture code under the same names the analyzers
// match on). Expected diagnostics are declared in the fixtures as
// end-of-line comments:
//
//	sum += v // want `floating-point accumulation`
//
// The argument is a regular expression (quoted or backquoted, several
// per comment allowed) matched against the diagnostic message; the
// diagnostic must land on the comment's line. Every finding must be
// wanted and every want must be found. //itreevet:ignore annotations
// are honored exactly as in the real driver, so fixtures can assert
// the suppression path end to end.
package vettest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"incentivetree/internal/vet"
)

// Run loads dir/src, executes a freshly constructed analyzer over
// every package found, and diffs the diagnostics against the // want
// expectations.
func Run(t *testing.T, dir string, newAnalyzer func() *vet.Analyzer) {
	t.Helper()
	fset, pkgs, err := vet.Load(filepath.Join(dir, "src"), "")
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages under %s/src", dir)
	}
	res := vet.Run(fset, pkgs, []*vet.Analyzer{newAnalyzer()})
	wants := collectWants(t, fset, pkgs)

	for _, d := range res.Findings {
		if !claim(wants, d) {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected a diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// claim marks the first unmatched expectation that covers d.
func claim(wants []*want, d vet.Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants parses every // want comment in the loaded fixtures.
// Each comment holds one or more quoted (or backquoted) regular
// expressions; all anchor to the comment's own line.
func collectWants(t *testing.T, fset *token.FileSet, pkgs []*vet.Package) []*want {
	t.Helper()
	var wants []*want
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
					if !ok {
						continue
					}
					pos := fset.Position(c.Pos())
					for rest = strings.TrimSpace(rest); rest != ""; rest = strings.TrimSpace(rest) {
						lit, err := strconv.QuotedPrefix(rest)
						if err != nil {
							t.Fatalf("%s:%d: malformed want comment %q: %v", pos.Filename, pos.Line, c.Text, err)
						}
						pattern, err := strconv.Unquote(lit)
						if err != nil {
							t.Fatalf("%s:%d: unquote %s: %v", pos.Filename, pos.Line, lit, err)
						}
						re, err := regexp.Compile(pattern)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pattern, err)
						}
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
						rest = rest[len(lit):]
					}
				}
			}
		}
	}
	return wants
}
