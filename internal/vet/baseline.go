package vet

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// A Baseline is the committed ledger of reviewed findings
// (vet.baseline.json at the module root): the driver diffs a run's
// findings against it so new findings fail CI while waived ones stay
// auditable in version control. Entries key on analyzer, module-
// relative file, and message — deliberately not on line numbers, so
// unrelated edits that shift a waived finding up or down the file do
// not invalidate the waiver.
type Baseline struct {
	Entries []BaselineEntry `json:"entries"`
}

// BaselineEntry identifies one waived finding.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
}

// LoadBaseline reads a baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("vet: parse baseline %s: %w", path, err)
	}
	return &b, nil
}

// Write saves the baseline, entries sorted for stable diffs.
func (b *Baseline) Write(path string) error {
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// BaselineFromFindings builds a baseline covering every finding. rel
// maps absolute diagnostic paths to module-relative ones.
func BaselineFromFindings(findings []Diagnostic, rel func(string) string) *Baseline {
	b := &Baseline{Entries: []BaselineEntry{}}
	for _, d := range findings {
		b.Entries = append(b.Entries, BaselineEntry{
			Analyzer: d.Analyzer,
			File:     rel(d.Pos.Filename),
			Message:  d.Message,
		})
	}
	return b
}

// Diff splits findings into new ones (absent from the baseline) and
// baselined ones, and returns the stale entries no finding matched.
// Matching is multiset: two identical findings need two entries, so a
// waived pattern cannot silently multiply.
func (b *Baseline) Diff(findings []Diagnostic, rel func(string) string) (news, baselined []Diagnostic, stale []BaselineEntry) {
	remaining := make(map[BaselineEntry]int)
	for _, e := range b.Entries {
		remaining[e]++
	}
	for _, d := range findings {
		key := BaselineEntry{Analyzer: d.Analyzer, File: rel(d.Pos.Filename), Message: d.Message}
		if remaining[key] > 0 {
			remaining[key]--
			baselined = append(baselined, d)
			continue
		}
		news = append(news, d)
	}
	for _, e := range b.Entries {
		if remaining[e] > 0 {
			remaining[e]--
			stale = append(stale, e)
		}
	}
	return news, baselined, stale
}
