package vet

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// RootIdent returns the identifier at the base of a selector/index
// chain (`s` for s.tree.Add, s.mu, s.byKey[k]) or nil when the chain
// is rooted in a call or literal.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// ObjectOf resolves an identifier to its object via Uses or Defs.
func ObjectOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// IsMutex reports whether t (possibly behind pointers) is sync.Mutex
// or sync.RWMutex.
func IsMutex(t types.Type) bool {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// NamedReceiver returns the named type of a method's receiver
// (unwrapping pointers), or nil for plain functions.
func NamedReceiver(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// ConstString returns the compile-time constant string value of e, if
// it has one.
func ConstString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// CalleeFunc resolves the *types.Func a call invokes, whether through
// a plain identifier or a selector; nil for indirect calls through
// variables or conversions.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := ObjectOf(info, fun).(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			f, _ := sel.Obj().(*types.Func)
			return f
		}
		// Package-qualified call (pkg.Func): the selection map has no
		// entry; the Sel identifier resolves directly.
		f, _ := ObjectOf(info, fun.Sel).(*types.Func)
		return f
	}
	return nil
}

// CalleeName returns the bare name a call invokes (the Sel for method
// and package-qualified calls), or "" for indirect calls through
// non-identifier expressions.
func CalleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// ReceiverObject resolves the object at the root of a method call's
// receiver chain (`s` for s.tree.Add(...)), or nil when the call has
// no selector or the chain is rooted in a call or literal.
func ReceiverObject(info *types.Info, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id := RootIdent(sel.X)
	if id == nil {
		return nil
	}
	return ObjectOf(info, id)
}

// DeclReceiver returns the object of a method declaration's receiver
// identifier, or nil for plain functions and anonymous receivers.
func DeclReceiver(info *types.Info, fn *ast.FuncDecl) types.Object {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return nil
	}
	return info.Defs[fn.Recv.List[0].Names[0]]
}

// IsErrorType reports whether t is the built-in error interface.
func IsErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// IsFloat reports whether t's underlying type is a floating-point
// basic type.
func IsFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// IsMapType reports whether t's underlying type is a map.
func IsMapType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}
