// Package arenaindex guards the memory contract of the flat arena
// tree. The million-node refactor (PR 8) keeps the whole referral
// tree in parallel arrays indexed by tree.NodeID, a 4-byte handle —
// five arrays × 10^6 nodes is the difference between ~125 MB resident
// and roughly double that if node indices quietly widen to 8 bytes.
//
// The analyzer enforces three rules:
//
//  1. in package tree, every exported defined integer type whose name
//     ends in "ID" (the arena index types) must have underlying type
//     exactly int32 — widening the declaration doubles every parallel
//     array and the binary snapshot varints in one keystroke;
//  2. package tree's exported API never traffics in raw sized
//     integers (int32, int64, uint32, uint64): node indices cross the
//     boundary only as NodeID, counts and depths as plain int;
//  3. module-wide, a NodeID value is not converted to a wider integer
//     type (int64, uint64, ...) except as a direct argument to a real
//     call or as a comparison operand — pass-through to a varint
//     encoder and `p >= uint64(id)` bounds checks are fine, but
//     storing widened indices (variables, struct fields, append)
//     re-creates the 8-byte layout the arena exists to avoid. Conversely,
//     NodeID(x) where x is a 64-bit integer silently truncates above
//     2^31 and is flagged; decode paths that bounds-check first
//     suppress the finding visibly with //itreevet:ignore.
//
// Conversions from int are exempt in both directions: `int(id)` for
// len comparisons and `NodeID(i)` over loop indices are the arena's
// bread-and-butter idioms, and the arena growth path already caps
// lengths at int32 range.
package arenaindex

import (
	"go/ast"
	"go/token"
	"go/types"

	"incentivetree/internal/vet"
)

// treePkg is the package whose declarations and exported API the
// boundary rules (1 and 2) apply to.
const treePkg = "tree"

// New returns a fresh analyzer instance.
func New() *vet.Analyzer {
	return &vet.Analyzer{
		Name: "arenaindex",
		Doc:  "arena node indices stay int32: NodeID declarations, tree's exported API, and widening/truncating conversions",
		Run:  run,
	}
}

func run(pass *vet.Pass) {
	for _, file := range pass.Files {
		if pass.Pkg.Name() == treePkg {
			checkIndexDecls(pass, file)
			checkBoundary(pass, file)
		}
		checkConversions(pass, file)
	}
}

// checkIndexDecls enforces rule 1: exported *ID integer types in the
// tree package stay int32.
func checkIndexDecls(pass *vet.Pass, file *ast.File) {
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok || !ts.Name.IsExported() || !isIndexName(ts.Name.Name) {
				continue
			}
			obj := pass.Info.Defs[ts.Name]
			if obj == nil {
				continue
			}
			b, ok := obj.Type().Underlying().(*types.Basic)
			if !ok || b.Info()&types.IsInteger == 0 {
				continue
			}
			if b.Kind() != types.Int32 {
				pass.Report(ts.Pos(), "arena index type %s is declared %s, not int32: widening the handle doubles every parallel array and breaks the binary codec's varint bound", ts.Name.Name, b.Name())
			}
		}
	}
}

// isIndexName reports whether a type name marks an arena index
// ("NodeID", "SlotID", ...).
func isIndexName(name string) bool {
	return len(name) > 2 && name[len(name)-2:] == "ID"
}

// checkBoundary enforces rule 2: exported tree functions and methods
// take and return NodeID (or int for counts), never raw sized
// integers.
func checkBoundary(pass *vet.Pass, file *ast.File) {
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || !fn.Name.IsExported() {
			continue
		}
		checkFieldList(pass, fn.Type.Params, fn.Name.Name, "parameter")
		checkFieldList(pass, fn.Type.Results, fn.Name.Name, "result")
	}
}

func checkFieldList(pass *vet.Pass, fields *ast.FieldList, fnName, role string) {
	if fields == nil {
		return
	}
	for _, f := range fields.List {
		t := pass.Info.TypeOf(f.Type)
		if t == nil {
			continue
		}
		// Look through one level of slice/array: []int64 leaks the
		// same way a scalar does.
		switch u := t.(type) {
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		}
		b, ok := t.(*types.Basic) // unnamed basics only: NodeID itself is fine
		if !ok || !isSizedInt(b.Kind()) || b.Kind() == types.Uint8 {
			continue // uint8 exempt: []byte buffers are not index traffic
		}
		pass.Report(f.Type.Pos(), "exported tree API %s has raw %s %s: node indices cross the boundary only as NodeID, counts as int", fnName, b.Name(), role)
	}
}

// isSizedInt reports explicit-width integer kinds; plain int and
// NodeID's own int32-behind-a-name are handled by the callers.
func isSizedInt(k types.BasicKind) bool {
	switch k {
	case types.Int32, types.Int64, types.Uint32, types.Uint64,
		types.Int16, types.Uint16, types.Int8, types.Uint8, types.Uintptr, types.Uint:
		return true
	}
	return false
}

// checkConversions enforces rule 3 module-wide, tracking parents so a
// widening conversion that is itself a direct argument to a real call
// (varint encoders) is exempt.
func checkConversions(pass *vet.Pass, file *ast.File) {
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if call, ok := n.(*ast.CallExpr); ok {
			checkOneConversion(pass, call, stack)
		}
		stack = append(stack, n)
		return true
	})
}

func checkOneConversion(pass *vet.Pass, call *ast.CallExpr, stack []ast.Node) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	target := tv.Type
	src := pass.Info.TypeOf(call.Args[0])
	if src == nil {
		return
	}

	// Widening: NodeID → anything wider than its 4 bytes, unless the
	// widened value is consumed immediately by a real call.
	if isNodeID(src) {
		b, ok := target.Underlying().(*types.Basic)
		if ok && isSizedInt(b.Kind()) && b.Kind() != types.Int32 && !isPassThrough(pass, call, stack) {
			pass.Report(call.Pos(), "NodeID widened to %s and kept: store node indices as NodeID (int32) — widened copies re-create the 8-byte layout the arena avoids", target.String())
		}
		return
	}

	// Truncation: a 64-bit integer squeezed into NodeID.
	if isNodeID(target) {
		b, ok := src.Underlying().(*types.Basic)
		if ok && (b.Kind() == types.Int64 || b.Kind() == types.Uint64) {
			pass.Report(call.Pos(), "NodeID(%s) truncates silently above 2^31: bounds-check the value first and suppress with //itreevet:ignore, or carry it as NodeID throughout", b.Name())
		}
	}
}

// isNodeID reports whether t is the tree package's NodeID type.
func isNodeID(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "NodeID" && obj.Pkg() != nil && obj.Pkg().Name() == treePkg
}

// isPassThrough reports whether the widened value dies immediately:
// conv sits directly in the argument list of a genuine call (not
// another conversion, and not append/copy, which retain the value),
// or is an operand of a comparison (`p >= uint64(id)` bounds checks).
func isPassThrough(pass *vet.Pass, conv *ast.CallExpr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	if bin, ok := stack[len(stack)-1].(*ast.BinaryExpr); ok {
		switch bin.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			return true
		}
		return false
	}
	parent, ok := stack[len(stack)-1].(*ast.CallExpr)
	if !ok {
		return false
	}
	among := false
	for _, a := range parent.Args {
		if ast.Unparen(a) == conv {
			among = true
			break
		}
	}
	if !among {
		return false
	}
	if tv, ok := pass.Info.Types[parent.Fun]; ok && tv.IsType() {
		return false // parent is itself a conversion, not a call
	}
	if id, ok := ast.Unparen(parent.Fun).(*ast.Ident); ok {
		if id.Name == "append" || id.Name == "copy" {
			if _, isBuiltin := vet.ObjectOf(pass.Info, id).(*types.Builtin); isBuiltin {
				return false
			}
		}
	}
	return true
}
