// Package consumer exercises the module-wide conversion rule from
// outside the tree package: widened copies of NodeIDs are flagged,
// encoder pass-through and int round-trips are not.
package consumer

import "tree"

// appendUvarint stands in for binary.AppendUvarint.
func appendUvarint(dst []byte, v uint64) []byte { return dst }

func widen(t *tree.Tree, u tree.NodeID) {
	wide := int64(u) // want `NodeID widened to int64 and kept`
	_ = wide

	var table []uint64
	table = append(table, uint64(u)) // want `NodeID widened to uint64 and kept`
	_ = table

	// Pass-through to a real call is the varint-encoder idiom: the
	// widened value is consumed, not kept.
	_ = appendUvarint(nil, uint64(u))

	// int is the len-comparison idiom, exempt in both directions.
	if int(u) < t.Len() {
		_ = tree.NodeID(t.Len() - 1)
	}
}

// bigDelta has underlying int64: named types do not launder widening.
type bigDelta int64

func widenNamed(u tree.NodeID) bigDelta {
	return bigDelta(u) // want `NodeID widened to consumer.bigDelta and kept`
}

func truncate(x int64, w uint64) tree.NodeID {
	a := tree.NodeID(x) // want `NodeID\(int64\) truncates silently`
	b := tree.NodeID(w) // want `NodeID\(uint64\) truncates silently`

	if w < uint64(a) {
		//itreevet:ignore arenaindex w is bounds-checked on the line above
		b = tree.NodeID(w)
	}
	return a + b
}
