// Package tree is a fixture standing in for the real arena tree: the
// analyzer keys on the package name, so the declaration and boundary
// rules apply here exactly as they do to internal/tree.
package tree

// NodeID is the well-formed arena index type.
type NodeID int32

// SlotID widens an arena index declaration to 8 bytes.
type SlotID int64 // want `arena index type SlotID is declared int64, not int32`

// BucketID is unsigned 32-bit — still not the contract.
type BucketID uint32 // want `arena index type BucketID is declared uint32, not int32`

// Mark is a length, not an index: plain int is fine and the name
// does not end in ID.
type Mark int

// grid is unexported; the declaration rule only covers the exported
// API surface.
type grid int64

// Tree is a minimal arena.
type Tree struct {
	parent  []NodeID
	contrib []float64
}

// Len is a count: plain int is the contract.
func (t *Tree) Len() int { return len(t.parent) }

// Parent is index-in, index-out: NodeID both ways.
func (t *Tree) Parent(id NodeID) NodeID { return t.parent[id] }

// At leaks a raw 64-bit index through an exported signature.
func (t *Tree) At(i int64) NodeID { // want `exported tree API At has raw int64 parameter`
	return t.parent[i]
}

// Slots returns raw int32s where NodeIDs belong; slices leak the
// same way scalars do.
func (t *Tree) Slots() []int32 { // want `exported tree API Slots has raw int32 result`
	out := make([]int32, len(t.parent))
	for i, p := range t.parent {
		out[i] = int32(p)
	}
	return out
}

// AppendBinary takes and returns byte buffers: uint8 traffic is not
// index traffic.
func (t *Tree) AppendBinary(dst []byte) []byte { return dst }

// fill is unexported, so the boundary rule does not apply.
func (t *Tree) fill(raw []int32) {
	for _, p := range raw {
		t.parent = append(t.parent, NodeID(p))
	}
}
