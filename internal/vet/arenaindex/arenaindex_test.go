package arenaindex_test

import (
	"testing"

	"incentivetree/internal/vet/arenaindex"
	"incentivetree/internal/vet/vettest"
)

func TestArenaIndex(t *testing.T) {
	vettest.Run(t, "testdata", arenaindex.New)
}
