// Package httpcontract pins the module's HTTP error contract: every
// status an endpoint emits goes through the canonical JSON helper
// (writeJSON, which pairs the code with a JSON body) with a named
// status constant. Three shapes break the contract and are findings:
//
//  1. http.Error — a text/plain body where clients expect
//     errorResponse JSON;
//  2. a naked ResponseWriter.WriteHeader outside the canonical helper
//     (or an implementation of WriteHeader itself) — the status is
//     sent without the JSON error body;
//  3. writing the header twice on one control-flow path — a
//     writeJSON/WriteHeader that may execute after an earlier one
//     already committed the status (the classic missing-return after
//     an error write). This check is CFG-based, with may-write-header
//     facts propagated through the call graph so helper functions
//     like writeOpError count as writes at their call sites.
//
// Status arguments to WriteHeader and writeJSON must not be bare
// integer literals: named constants (http.StatusX or a module
// constant) keep the registered status surface greppable.
package httpcontract

import (
	"go/ast"
	"go/types"

	"incentivetree/internal/vet"
)

// New returns a fresh analyzer instance.
func New() *vet.Analyzer {
	var writers map[*vet.FuncInfo]bool
	return &vet.Analyzer{
		Name: "httpcontract",
		Doc:  "handler error paths emit the canonical JSON body with a named status constant: no http.Error, no naked or double WriteHeader",
		Run: func(pass *vet.Pass) {
			if writers == nil {
				writers = mayWriteHeader(pass.Graph)
			}
			run(pass, writers)
		},
	}
}

// mayWriteHeader computes the functions that may commit a response
// status, directly or through module calls, by fixpoint over the call
// graph (call edges only: referencing a handler value does not write,
// and a closure writes when it runs, not when its creator returns it).
func mayWriteHeader(graph *vet.Graph) map[*vet.FuncInfo]bool {
	writers := make(map[*vet.FuncInfo]bool)
	for _, fi := range graph.Funcs() {
		direct := false
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			if direct {
				return false
			}
			if _, ok := n.(*ast.FuncLit); ok {
				return false // runs on its own schedule
			}
			if call, ok := n.(*ast.CallExpr); ok && directHeaderWrite(fi.Pkg.Info, call) {
				direct = true
			}
			return true
		})
		if direct {
			writers[fi] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range graph.Funcs() {
			if writers[fi] {
				continue
			}
			for _, e := range fi.Edges {
				if !e.Ref && writers[e.Callee] {
					writers[fi] = true
					changed = true
					break
				}
			}
		}
	}
	return writers
}

// directHeaderWrite reports whether call itself commits a status:
// ResponseWriter.WriteHeader, or one of net/http's header-committing
// helpers.
func directHeaderWrite(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "WriteHeader":
		return isResponseWriter(info, sel.X)
	case "Error", "Redirect", "NotFound", "ServeFile":
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			if pkg, ok := vet.ObjectOf(info, id).(*types.PkgName); ok {
				return pkg.Imported().Name() == "http"
			}
		}
	}
	return false
}

// isResponseWriter reports whether e's type is http.ResponseWriter
// (matched by type and package name, so stubs work).
func isResponseWriter(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	n, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "ResponseWriter" && obj.Pkg() != nil && obj.Pkg().Name() == "http"
}

func run(pass *vet.Pass, writers map[*vet.FuncInfo]bool) {
	if pass.Pkg.Name() == "http" {
		return // the contract governs module handlers, not http itself (or a stub of it)
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			checkFunc(pass, fd, writers)
			return false
		})
	}
}

func checkFunc(pass *vet.Pass, fd *ast.FuncDecl, writers map[*vet.FuncInfo]bool) {
	info := pass.Info
	canonical := fd.Name.Name == "writeJSON" || fd.Name.Name == "WriteHeader"

	// Syntactic checks over the whole body, closures included.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := vet.CalleeName(call)
		if name == "Error" && directHeaderWrite(info, call) {
			pass.Report(call.Pos(), "http.Error sends a text/plain body: emit the canonical JSON error via writeJSON")
		}
		if name == "WriteHeader" && !canonical {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && isResponseWriter(info, sel.X) {
				pass.Report(call.Pos(), "naked WriteHeader outside the canonical helper: the status arrives without the JSON error body")
			}
		}
		checkStatusArg(pass, call, name)
		return true
	})

	// Double-write: forward may-analysis over the CFG.
	checkDoubleWrite(pass, fd.Body, writers)
}

// checkStatusArg flags bare integer literals as status arguments.
func checkStatusArg(pass *vet.Pass, call *ast.CallExpr, name string) {
	var arg ast.Expr
	switch {
	case name == "WriteHeader" && len(call.Args) == 1:
		arg = call.Args[0]
	case name == "writeJSON" && len(call.Args) >= 2:
		arg = call.Args[1]
	default:
		return
	}
	if lit, ok := ast.Unparen(arg).(*ast.BasicLit); ok {
		pass.Report(arg.Pos(), "status %s must be a named constant (http.StatusXxx): the registered status surface stays greppable", lit.Value)
	}
}

// checkDoubleWrite reports calls that may commit the response status
// after a path has already committed it.
func checkDoubleWrite(pass *vet.Pass, body *ast.BlockStmt, writers map[*vet.FuncInfo]bool) {
	cfg := vet.NewCFG(body)

	nodeWrites := func(n ast.Node) ast.Node {
		var site ast.Node
		ast.Inspect(n, func(c ast.Node) bool {
			if site != nil {
				return false
			}
			if _, ok := c.(*ast.FuncLit); ok {
				return false // runs on its own schedule
			}
			call, ok := c.(*ast.CallExpr)
			if !ok {
				return true
			}
			if directHeaderWrite(pass.Info, call) {
				site = call
				return false
			}
			if fn := vet.CalleeFunc(pass.Info, call); fn != nil {
				if fi := pass.Graph.Lookup(fn); fi != nil && writers[fi] {
					site = call
					return false
				}
			}
			return true
		})
		return site
	}

	// in[b] = OR over predecessors' out; out computed by scanning nodes.
	preds := make(map[*vet.Block][]*vet.Block)
	for _, b := range cfg.Blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b)
		}
	}
	in := make(map[*vet.Block]bool)
	out := make(map[*vet.Block]bool)
	for changed := true; changed; {
		changed = false
		for _, b := range cfg.Blocks {
			st := false
			for _, p := range preds[b] {
				st = st || out[p]
			}
			in[b] = st
			for _, n := range b.Nodes {
				if nodeWrites(n) != nil {
					st = true
				}
			}
			if st != out[b] {
				out[b] = st
				changed = true
			}
		}
	}
	for _, b := range cfg.Blocks {
		st := in[b]
		for _, n := range b.Nodes {
			site := nodeWrites(n)
			if site == nil {
				continue
			}
			if st {
				pass.Report(site.Pos(), "response status may already be committed on this path: write once, then return")
			}
			st = true
		}
	}
}
