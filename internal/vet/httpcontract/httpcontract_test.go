package httpcontract_test

import (
	"testing"

	"incentivetree/internal/vet/httpcontract"
	"incentivetree/internal/vet/vettest"
)

func TestHTTPContract(t *testing.T) {
	vettest.Run(t, "testdata", httpcontract.New)
}
