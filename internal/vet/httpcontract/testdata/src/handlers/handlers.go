// Fixture: the three contract violations — text/plain http.Error,
// naked WriteHeader, double write on a path (direct and through a
// helper) — plus a literal status code, next to the compliant shapes.
package handlers

import "http"

type errorResponse struct {
	Error string
}

// writeJSON is the canonical helper: its own WriteHeader is exempt.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.WriteHeader(status)
}

func handlePlainText(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "nope", http.StatusBadRequest) // want `http.Error sends a text/plain body`
}

func handleNaked(w http.ResponseWriter, ok bool) {
	if !ok {
		w.WriteHeader(http.StatusNotFound) // want `naked WriteHeader outside the canonical helper`
		return
	}
	writeJSON(w, http.StatusOK, nil)
}

func handleLiteral(w http.ResponseWriter) {
	writeJSON(w, 418, nil) // want `status 418 must be a named constant`
}

// handleDouble forgets the return after the error write: the happy
// path write may land on a response whose status is already committed.
func handleDouble(w http.ResponseWriter, err error) {
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
	}
	writeJSON(w, http.StatusOK, nil) // want `response status may already be committed on this path`
}

// writeErr commits the status through one level of indirection.
func writeErr(w http.ResponseWriter, err error) {
	writeJSON(w, http.StatusInternalServerError, errorResponse{err.Error()})
}

func handleHelperDouble(w http.ResponseWriter, err error) {
	if err != nil {
		writeErr(w, err)
	}
	writeJSON(w, http.StatusOK, nil) // want `response status may already be committed on this path`
}

// handleChecked returns after its error write: no finding.
func handleChecked(w http.ResponseWriter, err error) {
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, nil)
}

// handleSwitch writes exactly once per exclusive branch: no finding.
func handleSwitch(w http.ResponseWriter, code int) {
	switch code {
	case 1:
		writeJSON(w, http.StatusNotFound, errorResponse{"missing"})
	default:
		writeJSON(w, http.StatusOK, nil)
	}
}

// handleWaived shows the suppression path for a deliberate raw write
// (a streaming response, say).
func handleWaived(w http.ResponseWriter) {
	//itreevet:ignore httpcontract streaming response commits the status before the first chunk
	w.WriteHeader(http.StatusOK)
}
