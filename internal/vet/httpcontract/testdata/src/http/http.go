// Package http is a stub with the names the analyzer matches on:
// ResponseWriter, WriteHeader, Error, and the Status constants.
package http

type ResponseWriter interface {
	WriteHeader(status int)
	Write(b []byte) (int, error)
}

type Request struct {
	Method string
}

const (
	StatusOK                  = 200
	StatusBadRequest          = 400
	StatusNotFound            = 404
	StatusTeapot              = 418
	StatusInternalServerError = 500
)

func Error(w ResponseWriter, msg string, code int) {
	w.WriteHeader(code)
	w.Write([]byte(msg))
}
