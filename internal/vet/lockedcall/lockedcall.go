// Package lockedcall enforces the repo's *Locked naming contract.
//
// Methods whose name ends in "Locked" (rewardsLocked, viewLocked,
// joinLocked, syncLocked, ...) document that the caller already holds
// the receiver's mutex. The analyzer mechanically checks both sides
// of that contract:
//
//  1. A *Locked method must never itself call Lock/Unlock (or
//     RLock/RUnlock) on a mutex reachable from its receiver — that
//     would self-deadlock (sync.Mutex is not reentrant) or release a
//     lock the caller owns.
//  2. A call site x.fooLocked(...) is only legal when the enclosing
//     function either is itself a *Locked method on the same
//     receiver object, or acquires a mutex rooted at x (x.mu.Lock(),
//     x.mu.RLock()) earlier in the same function body.
//
// Check 2 is a dominating-path approximation: the acquire must
// precede the call textually within the innermost enclosing function
// (closures must acquire for themselves, since they may run after
// the outer frame returned). A caller that locks, unlocks, and only
// then calls fooLocked passes the check — the analyzer guards the
// idiomatic lock-then-delegate layering, not arbitrary control flow.
package lockedcall

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"incentivetree/internal/vet"
)

// New returns a fresh analyzer instance.
func New() *vet.Analyzer {
	return &vet.Analyzer{
		Name: "lockedcall",
		Doc:  "*Locked methods are called only under the receiver's mutex and never lock it themselves",
		Run:  run,
	}
}

// lockNames are the sync.Mutex/RWMutex methods that acquire.
var lockNames = map[string]bool{"Lock": true, "RLock": true}

// lockishNames additionally include the releases, forbidden inside
// *Locked methods.
var lockishNames = map[string]bool{"Lock": true, "RLock": true, "Unlock": true, "RUnlock": true, "TryLock": true, "TryRLock": true}

func run(pass *vet.Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
}

// checkFunc applies both contract directions to one top-level
// function and every function literal nested in it.
func checkFunc(pass *vet.Pass, fn *ast.FuncDecl) {
	recvObj := vet.DeclReceiver(pass.Info, fn)
	isLocked := strings.HasSuffix(fn.Name.Name, "Locked") && recvObj != nil

	// Direction 1: a *Locked method must not touch its own mutex.
	if isLocked {
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !lockishNames[sel.Sel.Name] || !vet.IsMutex(typeOf(pass.Info, sel.X)) {
				return true
			}
			if root := vet.RootIdent(sel.X); root != nil && vet.ObjectOf(pass.Info, root) == recvObj {
				pass.Report(call.Pos(), "%s is a *Locked method but calls %s on its receiver's mutex; the caller already holds it",
					fn.Name.Name, sel.Sel.Name)
			}
			return true
		})
	}

	// Direction 2: every *Locked call site must be covered by an
	// acquire in its innermost enclosing function. Track the function
	// nesting stack so closures are checked against their own body.
	type frame struct {
		node     ast.Node // *ast.FuncDecl or *ast.FuncLit
		body     *ast.BlockStmt
		lockedOn types.Object // non-nil when the frame is a *Locked method on that receiver
	}
	stack := []frame{{node: fn, body: fn.Body}}
	if isLocked {
		stack[0].lockedOn = recvObj
	}

	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				stack = append(stack, frame{node: x, body: x.Body})
				walk(x.Body)
				stack = stack[:len(stack)-1]
				return false
			case *ast.CallExpr:
				checkLockedCall(pass, x, stack[len(stack)-1].lockedOn, stack[len(stack)-1].body)
			}
			return true
		})
	}
	walk(fn.Body)
}

// checkLockedCall validates one call expression if it targets a
// *Locked method.
func checkLockedCall(pass *vet.Pass, call *ast.CallExpr, lockedOn types.Object, body *ast.BlockStmt) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !strings.HasSuffix(sel.Sel.Name, "Locked") {
		return
	}
	callee := vet.CalleeFunc(pass.Info, call)
	if callee == nil || vet.NamedReceiver(callee) == nil {
		return // not a method (or unresolvable): out of contract
	}
	root := vet.RootIdent(sel.X)
	if root == nil {
		pass.Report(call.Pos(), "call to %s on an unnamed receiver; the lock that guards it cannot be verified", sel.Sel.Name)
		return
	}
	rootObj := vet.ObjectOf(pass.Info, root)
	// Legal inside a *Locked method on the same receiver object.
	if lockedOn != nil && rootObj == lockedOn {
		return
	}
	// Otherwise an acquire rooted at the same object must appear
	// earlier in this function body.
	if acquiresBefore(pass.Info, body, rootObj, call.Pos()) {
		return
	}
	pass.Report(call.Pos(), "call to %s without holding %s's mutex: acquire %s.<mu>.Lock()/RLock() in this function first, or call from a *Locked method",
		sel.Sel.Name, root.Name, root.Name)
}

// acquiresBefore reports whether body contains a Lock/RLock call on a
// mutex rooted at obj at a position before pos, skipping nested
// function literals (their bodies execute on their own schedule).
func acquiresBefore(info *types.Info, body *ast.BlockStmt, obj types.Object, limit token.Pos) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= limit {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !lockNames[sel.Sel.Name] || !vet.IsMutex(typeOf(info, sel.X)) {
			return true
		}
		if root := vet.RootIdent(sel.X); root != nil && vet.ObjectOf(info, root) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return types.Typ[types.Invalid]
}
