// Package locked is the lockedcall golden fixture: every legal shape
// of the *Locked contract next to every violation the analyzer must
// catch.
package locked

import "sync"

type Svc struct {
	mu   sync.RWMutex
	data map[string]int
}

func (s *Svc) sumLocked() int {
	total := 0
	for _, v := range s.data {
		total += v
	}
	return total
}

func (s *Svc) viewLocked(k string) int { return s.data[k] }

// Sum is legal: the receiver's mutex is acquired before the call.
func (s *Svc) Sum() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sumLocked()
}

// View is legal: RLock also satisfies the contract.
func (s *Svc) View(k string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.viewLocked(k)
}

// bothLocked is legal: *Locked may delegate to *Locked on the same
// receiver.
func (s *Svc) bothLocked() int {
	return s.sumLocked() + s.viewLocked("a")
}

// Bad calls a *Locked method with no lock held.
func (s *Svc) Bad() int {
	return s.sumLocked() // want `call to sumLocked without holding s's mutex`
}

// badLocked violates direction 1: a *Locked method touching its own
// receiver's mutex.
func (s *Svc) badLocked() int {
	s.mu.Lock()         // want `badLocked is a \*Locked method but calls Lock`
	defer s.mu.Unlock() // want `badLocked is a \*Locked method but calls Unlock`
	return len(s.data)
}

// Closure is a violation: the literal may run after Closure returned
// and released the lock, so it must acquire for itself.
func (s *Svc) Closure() func() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return func() int {
		return s.sumLocked() // want `call to sumLocked without holding s's mutex`
	}
}

// ClosureGood is legal: the literal acquires on its own schedule.
func (s *Svc) ClosureGood() func() int {
	return func() int {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return s.sumLocked()
	}
}

// Two locks a's mutex but calls through b: the acquire must be rooted
// at the same object as the call.
func Two(a, b *Svc) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return b.sumLocked() // want `call to sumLocked without holding b's mutex`
}
