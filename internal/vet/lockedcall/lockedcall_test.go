package lockedcall_test

import (
	"testing"

	"incentivetree/internal/vet/lockedcall"
	"incentivetree/internal/vet/vettest"
)

func TestLockedCall(t *testing.T) {
	vettest.Run(t, "testdata", lockedcall.New)
}
