// Package vet is the analysis framework behind cmd/itreevet, the
// repo's project-specific static-analysis suite. It mirrors the shape
// of golang.org/x/tools/go/analysis — Analyzer, Pass, Diagnostic —
// but is built entirely on the standard library (go/parser, go/types,
// and the source importer), so the module stays dependency-free.
//
// Analyzers are constructed fresh per run (see the New functions under
// internal/vet/...), receive one Pass per package in deterministic
// (import-path) order, and may carry closure state across passes for
// module-wide invariants (metric-name uniqueness). Findings can be
// suppressed at the offending line with an inline annotation:
//
//	//itreevet:ignore <analyzer> <reason>
//
// placed on the same line as the finding or on the line directly
// above it. The reason is mandatory; the driver counts every
// suppression and reports it, so suppressed debt stays visible.
package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named invariant check. Run is invoked once per
// package; Finish, when non-nil, once after every package has been
// analyzed (for module-wide invariants). Analyzers with cross-pass
// state must be built fresh per run — use the per-analyzer New
// constructors, never a shared global.
type Analyzer struct {
	// Name identifies the analyzer in findings and in
	// //itreevet:ignore annotations. Lowercase, no spaces.
	Name string
	// Doc is the one-line invariant statement shown by -list.
	Doc string
	// Run analyzes one package and reports findings via pass.Report.
	Run func(pass *Pass)
	// Finish, if non-nil, runs after all passes; report emits a
	// finding at an arbitrary (previously recorded) position.
	Finish func(report func(pos token.Position, format string, args ...any))
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Fset  *token.FileSet
	Pkg   *types.Package
	Files []*ast.File
	Info  *types.Info

	// Graph is the module-wide call graph over every loaded package,
	// built once per run and shared by all passes. Pkgs is the full
	// loaded set in pass order. Together they are the substrate for
	// cross-package dataflow analyzers (lockorder, followerwrite).
	Graph *Graph
	Pkgs  []*Package

	report func(d Diagnostic)
	name   string
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Suppressed and Reason are set by the runner when an
	// //itreevet:ignore annotation covers the finding.
	Suppressed bool
	Reason     string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}
