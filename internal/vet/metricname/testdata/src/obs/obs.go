// Package obs is a stub mirroring the real obs.Registry surface; the
// analyzer matches registrations by package and type name.
package obs

type Counter struct{}

func (c *Counter) Inc() {}

type Gauge struct{}

func (g *Gauge) Set(v float64) {}

type Histogram struct{}

func (h *Histogram) Observe(v float64) {}

type Registry struct{}

func (r *Registry) Counter(name, help string, labels ...string) *Counter { return &Counter{} }

func (r *Registry) Gauge(name, help string, labels ...string) *Gauge { return &Gauge{} }

func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {}

func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	return &Histogram{}
}

func Default() *Registry { return &Registry{} }
