// Package metrics is the metricname golden fixture: compliant
// registrations next to each violation class.
package metrics

import "obs"

var reg = obs.Default()

const latencyName = "itree_apply_seconds"

var (
	applies = reg.Counter("itree_apply_total", "Total applies.")
	depth   = reg.Gauge("itree_tree_depth", "Current depth.")
	latency = reg.Histogram(latencyName, "Apply latency.", nil)
	badName = reg.Counter("apply_errors_total", "Missing prefix.") // want `does not match`
	badCase = reg.Gauge("itree_Depth", "Uppercase.")               // want `does not match`
	dupKind = reg.Gauge("itree_apply_total", "Total applies.")     // want `re-registered as a gauge`
	dupHelp = reg.Counter("itree_apply_total", "Other help.")      // want `different help text`
	again   = reg.Counter("itree_apply_total", "Total applies.")
)

// Register shows the one shape that cannot be audited statically.
func Register(r *obs.Registry, name string) {
	r.Counter(name, "computed name") // want `must be a string literal`
	r.GaugeFunc("itree_live", "Live nodes.", func() float64 { return 1 })
}
