// Package metricname pins the module's Prometheus surface. Every
// counter, gauge, or histogram registered on an obs.Registry from
// non-test code must:
//
//  1. carry a compile-time constant name (so the surface is greppable
//     and can be diffed between releases),
//  2. match ^itree_[a-z0-9_]+(_total|_seconds|_bytes)?$ — one shared
//     namespace prefix, lowercase, Prometheus-conventional suffixes,
//  3. be registered consistently module-wide: re-registering a name
//     with a different metric type or a different (non-empty) help
//     string forks the surface silently, since obs registries are
//     get-or-create.
//
// The uniqueness check is cross-package: the analyzer instance keeps
// the names seen across passes, so construct a fresh one per run.
package metricname

import (
	"go/ast"
	"go/token"
	"regexp"

	"incentivetree/internal/vet"
)

// namePattern is the required shape of a metric name.
var namePattern = regexp.MustCompile(`^itree_[a-z0-9_]+(_total|_seconds|_bytes)?$`)

// registration records where and how a metric name was first seen.
type registration struct {
	kind string
	help string
	pos  token.Position
}

// kinds maps obs.Registry method names to the metric kind they
// register; the value doubles as the help-argument index sentinel
// (help is always argument 1).
var kinds = map[string]string{
	"Counter":   "counter",
	"Gauge":     "gauge",
	"GaugeFunc": "gauge",
	"Histogram": "histogram",
}

// New returns a fresh analyzer instance (required: it accumulates
// module-wide state across passes).
func New() *vet.Analyzer {
	seen := make(map[string]registration)
	return &vet.Analyzer{
		Name: "metricname",
		Doc:  "obs metric names are literal, itree_-prefixed, and registered consistently module-wide",
		Run:  func(pass *vet.Pass) { run(pass, seen) },
	}
}

func run(pass *vet.Pass, seen map[string]registration) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			kind, ok := registryCall(pass, call)
			if !ok || len(call.Args) == 0 {
				return true
			}
			name, isConst := vet.ConstString(pass.Info, call.Args[0])
			if !isConst {
				pass.Report(call.Args[0].Pos(), "metric name must be a string literal (or constant), not a computed value: the Prometheus surface has to be auditable statically")
				return true
			}
			if !namePattern.MatchString(name) {
				pass.Report(call.Args[0].Pos(), "metric name %q does not match %s", name, namePattern)
			}
			help := ""
			if len(call.Args) > 1 {
				help, _ = vet.ConstString(pass.Info, call.Args[1])
			}
			pos := pass.Fset.Position(call.Args[0].Pos())
			prev, dup := seen[name]
			if !dup {
				seen[name] = registration{kind: kind, help: help, pos: pos}
				return true
			}
			switch {
			case prev.kind != kind:
				pass.Report(call.Args[0].Pos(), "metric %q re-registered as a %s; first registered as a %s at %s", name, kind, prev.kind, prev.pos)
			case help != "" && prev.help != "" && help != prev.help:
				pass.Report(call.Args[0].Pos(), "metric %q re-registered with different help text than at %s: the exposition would depend on registration order", name, prev.pos)
			case prev.help == "" && help != "":
				// Later site supplies the help: remember the richer one.
				seen[name] = registration{kind: kind, help: help, pos: pos}
			}
			return true
		})
	}
}

// registryCall reports whether call is a metric registration on an
// obs.Registry (matched by package and type name, so test stubs work
// like the real package) and which kind it registers.
func registryCall(pass *vet.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	kind, ok := kinds[sel.Sel.Name]
	if !ok {
		return "", false
	}
	fn := vet.CalleeFunc(pass.Info, call)
	if fn == nil {
		return "", false
	}
	named := vet.NamedReceiver(fn)
	if named == nil {
		return "", false
	}
	obj := named.Obj()
	if obj.Name() != "Registry" || obj.Pkg() == nil || obj.Pkg().Name() != "obs" {
		return "", false
	}
	return kind, true
}
