package metricname_test

import (
	"testing"

	"incentivetree/internal/vet/metricname"
	"incentivetree/internal/vet/vettest"
)

func TestMetricName(t *testing.T) {
	vettest.Run(t, "testdata", metricname.New)
}
