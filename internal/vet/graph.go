package vet

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Graph is the module-wide call graph over the loaded (type-checked)
// packages: one node per declared function or method, with edges for
// every statically resolvable call and for every function-value
// reference (a method value passed to HandleFunc, a func assigned to a
// field). Calls made inside function literals are attributed to the
// enclosing declaration as Ref edges — a closure carries its creator's
// obligations as far as reachability is concerned (the conservative
// direction for followerwrite), but it runs on its own schedule, so
// synchronous-fact fixpoints must not absorb its effects.
//
// The graph is deterministic: Funcs returns nodes in (package import
// path, file, declaration) order and every node's edges are in source
// order, so analyses built on it report findings stably.
type Graph struct {
	fset  *token.FileSet
	funcs map[*types.Func]*FuncInfo
	order []*FuncInfo
}

// FuncInfo is one declared function or method.
type FuncInfo struct {
	Func *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Edges holds this function's outgoing calls and references in
	// source order.
	Edges []*Edge
	// Callers holds every edge whose Callee is this function.
	Callers []*Edge
}

// Edge is one call site or function-value reference.
type Edge struct {
	Caller *FuncInfo
	Callee *FuncInfo
	// Site is the *ast.CallExpr for direct calls, or the referencing
	// expression for value references.
	Site ast.Node
	// Ref marks an edge whose callee runs on its own schedule rather
	// than synchronously inside the caller: a function-value reference
	// (the function escapes as a value and may be invoked later,
	// elsewhere) or a go-statement launch. Reachability analyses
	// (followerwrite) follow Ref edges; synchronous-fact fixpoints
	// (may-hold-lock, may-write-header) must not.
	Ref bool
}

// NewGraph builds the call graph of the loaded packages. pkgs must be
// the module's type-checked package set (any order; the graph resolves
// cross-package edges through the shared type information).
func NewGraph(fset *token.FileSet, pkgs []*Package) *Graph {
	g := &Graph{fset: fset, funcs: make(map[*types.Func]*FuncInfo)}

	// Deterministic node order regardless of the caller's pkgs order.
	sorted := make([]*Package, len(pkgs))
	copy(sorted, pkgs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })

	// Pass 1: declare every function.
	for _, p := range sorted {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{Func: fn, Decl: fd, Pkg: p}
				g.funcs[fn] = fi
				g.order = append(g.order, fi)
			}
		}
	}

	// Pass 2: edges. Calls resolve through CalleeFunc; any other use of
	// an identifier bound to a module function becomes a Ref edge.
	for _, fi := range g.order {
		info := fi.Pkg.Info
		// Calls that run on their own schedule: go-launched, or textually
		// inside a function literal (the closure is attributed to this
		// declaration but executes whenever its value is invoked).
		async := make(map[ast.Node]bool)
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.GoStmt:
				async[x.Call] = true
			case *ast.FuncLit:
				ast.Inspect(x.Body, func(m ast.Node) bool {
					if m != nil {
						async[m] = true
					}
					return true
				})
				return false
			}
			return true
		})
		callFuns := make(map[ast.Expr]bool) // Fun expressions already consumed by a call edge
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			if x, ok := n.(*ast.CallExpr); ok {
				callFuns[ast.Unparen(x.Fun)] = true
				if callee := CalleeFunc(info, x); callee != nil {
					if ti := g.funcs[callee]; ti != nil {
						g.addEdge(fi, ti, x, async[x])
					}
				}
			}
			return true
		})
		g.refWalk(fi, info, callFuns, fi.Decl.Body)
		g.finishEdges(fi)
	}
	return g
}

func (g *Graph) addEdge(from, to *FuncInfo, site ast.Node, ref bool) {
	e := &Edge{Caller: from, Callee: to, Site: site, Ref: ref}
	from.Edges = append(from.Edges, e)
}

// refWalk records function-value reference edges: selector or plain
// identifier uses of module functions outside call position. The Sel
// identifier of a handled SelectorExpr is skipped (it resolves to the
// same object the selector already reported).
func (g *Graph) refWalk(fi *FuncInfo, info *types.Info, callFuns map[ast.Expr]bool, root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			var obj types.Object
			if sel, ok := info.Selections[x]; ok {
				obj = sel.Obj() // method value s.handler
			} else {
				obj = ObjectOf(info, x.Sel) // package-qualified pkg.Func
			}
			if fn, ok := obj.(*types.Func); ok && !callFuns[ast.Expr(x)] {
				if ti := g.funcs[fn]; ti != nil {
					g.addEdge(fi, ti, x, true)
				}
			}
			g.refWalk(fi, info, callFuns, x.X)
			return false
		case *ast.Ident:
			if fn, ok := info.Uses[x].(*types.Func); ok && !callFuns[ast.Expr(x)] {
				if ti := g.funcs[fn]; ti != nil {
					g.addEdge(fi, ti, x, true)
				}
			}
		}
		return true
	})
}

// finishEdges orders a node's edges by source position (deterministic
// traversal across the interleaved call and reference passes) and
// links reverse edges.
func (g *Graph) finishEdges(fi *FuncInfo) {
	sort.SliceStable(fi.Edges, func(i, j int) bool { return fi.Edges[i].Site.Pos() < fi.Edges[j].Site.Pos() })
	for _, e := range fi.Edges {
		e.Callee.Callers = append(e.Callee.Callers, e)
	}
}

// Funcs returns every declared function in deterministic order.
func (g *Graph) Funcs() []*FuncInfo { return g.order }

// Lookup returns the node for fn, or nil when fn is not declared in
// the loaded packages (stdlib, interface methods).
func (g *Graph) Lookup(fn *types.Func) *FuncInfo { return g.funcs[fn] }

// Reachable computes the set of functions reachable from roots along
// edges admitted by follow (nil follows every edge, including value
// references). Roots are included.
func (g *Graph) Reachable(roots []*FuncInfo, follow func(*Edge) bool) map[*FuncInfo]bool {
	seen := make(map[*FuncInfo]bool)
	var stack []*FuncInfo
	for _, r := range roots {
		if r != nil && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		fi := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range fi.Edges {
			if follow != nil && !follow(e) {
				continue
			}
			if !seen[e.Callee] {
				seen[e.Callee] = true
				stack = append(stack, e.Callee)
			}
		}
	}
	return seen
}

// Path returns a shortest edge path from from to to along edges
// admitted by follow (nil = all), or nil when to is unreachable. The
// search is breadth-first over deterministic edge order, so the path
// is stable across runs.
func (g *Graph) Path(from, to *FuncInfo, follow func(*Edge) bool) []*Edge {
	if from == nil || to == nil {
		return nil
	}
	if from == to {
		return []*Edge{}
	}
	prev := make(map[*FuncInfo]*Edge)
	queue := []*FuncInfo{from}
	seen := map[*FuncInfo]bool{from: true}
	for len(queue) > 0 {
		fi := queue[0]
		queue = queue[1:]
		for _, e := range fi.Edges {
			if follow != nil && !follow(e) {
				continue
			}
			if seen[e.Callee] {
				continue
			}
			seen[e.Callee] = true
			prev[e.Callee] = e
			if e.Callee == to {
				var path []*Edge
				for n := to; n != from; n = prev[n].Caller {
					path = append(path, prev[n])
				}
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, e.Callee)
		}
	}
	return nil
}
