package vet_test

import (
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"testing"

	"incentivetree/internal/vet"
)

// The two-package fixture exercises the call-graph shapes the
// analyzers depend on: cross-package calls, method values passed as
// handlers (Ref edges), go-launched calls, and calls made inside
// function literals.
var graphFixture = map[string]string{
	"lib/lib.go": `package lib

type Store struct{}

func (s *Store) Put(k string) {}

func (s *Store) Get(k string) string { return k }

func Helper() {}
`,
	"app/app.go": `package app

import "lib"

type App struct {
	s  *lib.Store
	fn func()
}

func (a *App) Direct() {
	a.s.Put("k") // cross-package call edge
	lib.Helper() // cross-package package-func call edge
}

func (a *App) Register(reg func(func())) {
	reg(a.handle) // method value: Ref edge to handle
}

func (a *App) handle() {
	a.s.Put("h")
}

func (a *App) Launch() {
	go a.s.Put("bg") // go-launched: Ref edge
}

func (a *App) Closure() {
	a.fn = func() {
		a.s.Put("c") // inside a literal: Ref edge
	}
}
`,
}

func loadGraph(t *testing.T) *vet.Graph {
	t.Helper()
	root := t.TempDir()
	for name, src := range graphFixture {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	fset, pkgs, err := vet.Load(root, "")
	if err != nil {
		t.Fatal(err)
	}
	return vet.NewGraph(fset, pkgs)
}

// find returns the node whose rendered name has the given suffix.
func find(t *testing.T, g *vet.Graph, suffix string) *vet.FuncInfo {
	t.Helper()
	for _, fi := range g.Funcs() {
		if fmt.Sprintf("%s.%s", fi.Func.Pkg().Name(), fi.Func.Name()) == suffix {
			return fi
		}
	}
	t.Fatalf("no function %q in graph", suffix)
	return nil
}

func TestGraphCrossPackageEdges(t *testing.T) {
	g := loadGraph(t)
	direct := find(t, g, "app.Direct")

	var callees []string
	for _, e := range direct.Edges {
		callees = append(callees, e.Callee.Func.Pkg().Name()+"."+e.Callee.Func.Name())
		if e.Ref {
			t.Errorf("edge to %s marked Ref, want synchronous", e.Callee.Func.Name())
		}
	}
	want := []string{"lib.Put", "lib.Helper"}
	if len(callees) != len(want) {
		t.Fatalf("Direct edges = %v, want %v", callees, want)
	}
	for i := range want {
		if callees[i] != want[i] {
			t.Errorf("edge[%d] = %s, want %s (source order)", i, callees[i], want[i])
		}
	}

	// Reverse edges link back: lib.Put has callers in app.
	put := find(t, g, "lib.Put")
	if len(put.Callers) == 0 {
		t.Fatal("lib.Put has no callers; reverse edges missing")
	}
}

func TestGraphRefSemantics(t *testing.T) {
	g := loadGraph(t)
	for _, tc := range []struct {
		fn     string
		callee string
	}{
		{"app.Register", "app.handle"}, // method value
		{"app.Launch", "lib.Put"},      // go launch
		{"app.Closure", "lib.Put"},     // inside a function literal
	} {
		fi := find(t, g, tc.fn)
		found := false
		for _, e := range fi.Edges {
			name := e.Callee.Func.Pkg().Name() + "." + e.Callee.Func.Name()
			if name != tc.callee {
				continue
			}
			found = true
			if !e.Ref {
				t.Errorf("%s → %s: want Ref (runs on its own schedule), got synchronous", tc.fn, tc.callee)
			}
		}
		if !found {
			t.Errorf("%s: no edge to %s", tc.fn, tc.callee)
		}
	}
}

func TestGraphReachability(t *testing.T) {
	g := loadGraph(t)
	register := find(t, g, "app.Register")
	put := find(t, g, "lib.Put")

	// Following every edge, Register reaches Put through the handle
	// method value.
	all := g.Reachable([]*vet.FuncInfo{register}, nil)
	if !all[put] {
		t.Error("Register should reach lib.Put through the method-value Ref edge")
	}

	// Following only synchronous edges, it does not.
	sync := g.Reachable([]*vet.FuncInfo{register}, func(e *vet.Edge) bool { return !e.Ref })
	if sync[put] {
		t.Error("Register must not reach lib.Put synchronously")
	}

	// Path renders the route deterministically.
	path := g.Path(register, put, nil)
	if len(path) != 2 {
		t.Fatalf("path Register→Put has %d edges, want 2 (via handle)", len(path))
	}
	if path[0].Callee.Func.Name() != "handle" || path[1].Callee.Func.Name() != "Put" {
		t.Errorf("path = %s → %s, want handle → Put", path[0].Callee.Func.Name(), path[1].Callee.Func.Name())
	}
}

func TestGraphDeterministicOrder(t *testing.T) {
	// Two loads of the same tree produce identical node and edge
	// sequences: analyzers built on the graph report stably.
	render := func(g *vet.Graph) []string {
		var out []string
		for _, fi := range g.Funcs() {
			line := fi.Func.Pkg().Name() + "." + fi.Func.Name() + ":"
			for _, e := range fi.Edges {
				line += " " + e.Callee.Func.Name()
				if e.Ref {
					line += "(ref)"
				}
			}
			out = append(out, line)
		}
		return out
	}
	a := render(loadGraph(t))
	b := render(loadGraph(t))
	if len(a) != len(b) {
		t.Fatalf("node counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("order diverges at %d: %q vs %q", i, a[i], b[i])
		}
	}
	// Packages are visited in import-path order, so lib's functions
	// precede app's... actually app < lib lexically; just assert the
	// first node is from the lexically smaller path.
	if len(a) > 0 && a[0][:4] != "app." {
		t.Errorf("first node = %q, want an app function (import-path order)", a[0])
	}
}

func TestCFGShape(t *testing.T) {
	root := t.TempDir()
	src := `package p

func f(x int) int {
	if x > 0 {
		return 1
	}
	for i := 0; i < x; i++ {
		x--
	}
	return x
}
`
	if err := os.MkdirAll(filepath.Join(root, "p"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "p", "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	_, pkgs, err := vet.Load(root, "")
	if err != nil {
		t.Fatal(err)
	}
	var body *ast.BlockStmt
	for _, f := range pkgs[0].Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
				body = fd.Body
			}
		}
	}
	if body == nil {
		t.Fatal("no function f")
	}
	cfg := vet.NewCFG(body)
	if cfg.Entry == nil || cfg.Exit == nil {
		t.Fatal("CFG missing entry or exit")
	}
	// The loop introduces a back edge: some block's successor has a
	// smaller index.
	back := false
	for _, b := range cfg.Blocks {
		for _, s := range b.Succs {
			if s.Index < b.Index {
				back = true
			}
		}
	}
	if !back {
		t.Error("for loop produced no back edge")
	}
	// Exit is reachable from entry.
	seen := map[*vet.Block]bool{cfg.Entry: true}
	stack := []*vet.Block{cfg.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	if !seen[cfg.Exit] {
		t.Error("exit unreachable from entry")
	}
}
