package vet_test

import (
	"go/ast"
	"os"
	"path/filepath"
	"testing"

	"incentivetree/internal/vet"
)

// demoSource exercises every annotation shape against an analyzer
// that flags each function declaration.
const demoSource = `package demo

func A() int { return 1 } //itreevet:ignore demo covered by integration tests

//itreevet:ignore demo annotation on the line above also counts
func B() int { return 2 }

func C() int { return 3 } //itreevet:ignore other wrong analyzer name does not suppress

func D() int { return 4 } //itreevet:ignore demo
`

func TestIgnoreAnnotations(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "demo")
	if err := os.Mkdir(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "demo.go"), []byte(demoSource), 0o644); err != nil {
		t.Fatal(err)
	}
	fset, pkgs, err := vet.Load(root, "")
	if err != nil {
		t.Fatal(err)
	}
	demo := &vet.Analyzer{
		Name: "demo",
		Doc:  "flags every function declaration",
		Run: func(p *vet.Pass) {
			for _, f := range p.Files {
				for _, d := range f.Decls {
					if fd, ok := d.(*ast.FuncDecl); ok {
						p.Report(fd.Pos(), "func %s", fd.Name.Name)
					}
				}
			}
		},
	}
	res := vet.Run(fset, pkgs, []*vet.Analyzer{demo})

	// A and B are suppressed (same-line and line-above forms).
	if len(res.Suppressed) != 2 {
		t.Fatalf("suppressed = %v, want A and B", res.Suppressed)
	}
	if res.Suppressed[0].Message != "func A" || res.Suppressed[0].Reason != "covered by integration tests" {
		t.Errorf("suppressed[0] = %+v", res.Suppressed[0])
	}
	if res.Suppressed[1].Message != "func B" || res.Suppressed[1].Reason != "annotation on the line above also counts" {
		t.Errorf("suppressed[1] = %+v", res.Suppressed[1])
	}

	// C stands (analyzer name mismatch), D stands (its annotation is
	// malformed — no reason), and the malformed annotation is itself a
	// finding of the itreevet pseudo-analyzer.
	var got []string
	for _, d := range res.Findings {
		got = append(got, d.Analyzer+":"+d.Message)
	}
	want := []string{
		"demo:func C",
		"demo:func D",
		"itreevet:malformed ignore annotation: want //itreevet:ignore <analyzer> <reason>",
	}
	if len(got) != len(want) {
		t.Fatalf("findings = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("finding[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
