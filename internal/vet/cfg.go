package vet

import (
	"go/ast"
	"go/token"
)

// CFG is the intraprocedural control-flow graph of one function body:
// basic blocks of non-branching nodes connected by successor edges.
// It is the substrate of the dataflow analyzers (errflow's
// must-check-error walk, httpcontract's write-after-header paths) and
// deliberately follows the shape of x/tools' go/cfg while staying
// stdlib-only.
//
// Blocks hold ast.Nodes, not whole statements: composite statements
// contribute only their non-branching parts (an IfStmt contributes
// Init and Cond to the block that evaluates them; its Body and Else
// statements land in successor blocks). Nodes therefore never contain
// nested statement blocks — walkers can ast.Inspect a node without
// double-visiting, as long as they skip *ast.FuncLit (closure bodies
// run on their own schedule and get their own CFG).
type CFG struct {
	// Entry is executed first; Exit represents every way out of the
	// function (returns, panics, falling off the end). Exit holds no
	// nodes and has no successors.
	Entry  *Block
	Exit   *Block
	Blocks []*Block // every block, Entry first, in creation order
}

// Block is one straight-line run of nodes.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// NewCFG builds the control-flow graph of one function body. Function
// literals nested in the body are treated as opaque values: their
// bodies are not woven into this graph (build a separate CFG for
// them).
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = &Block{Index: -1}
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	// Falling off the end of the body returns.
	b.edge(b.cur, b.cfg.Exit)
	b.cfg.Exit.Index = len(b.cfg.Blocks)
	b.cfg.Blocks = append(b.cfg.Blocks, b.cfg.Exit)
	return b.cfg
}

// loopFrame is one enclosing loop or switch, the target of
// break/continue statements (labeled or not).
type loopFrame struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select frames
}

type cfgBuilder struct {
	cfg    *CFG
	cur    *Block
	frames []loopFrame
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// add appends a non-branching node to the current block.
func (b *cfgBuilder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt weaves one statement into the graph. label names the statement
// when it is the direct child of a LabeledStmt.
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch x := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(x.List)

	case *ast.LabeledStmt:
		b.stmt(x.Stmt, x.Label.Name)

	case *ast.IfStmt:
		if x.Init != nil {
			b.stmt(x.Init, "")
		}
		b.add(x.Cond)
		head := b.cur
		join := b.newBlock()
		then := b.newBlock()
		b.edge(head, then)
		b.cur = then
		b.stmtList(x.Body.List)
		b.edge(b.cur, join)
		if x.Else != nil {
			els := b.newBlock()
			b.edge(head, els)
			b.cur = els
			b.stmt(x.Else, "")
			b.edge(b.cur, join)
		} else {
			b.edge(head, join)
		}
		b.cur = join

	case *ast.ForStmt:
		if x.Init != nil {
			b.stmt(x.Init, "")
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		if x.Cond != nil {
			b.add(x.Cond)
		}
		body := b.newBlock()
		exit := b.newBlock()
		b.edge(head, body)
		if x.Cond != nil {
			b.edge(head, exit)
		}
		post := head
		if x.Post != nil {
			post = b.newBlock()
		}
		b.frames = append(b.frames, loopFrame{label: label, breakTo: exit, continueTo: post})
		b.cur = body
		b.stmtList(x.Body.List)
		b.frames = b.frames[:len(b.frames)-1]
		if x.Post != nil {
			b.edge(b.cur, post)
			b.cur = post
			b.stmt(x.Post, "")
			b.edge(b.cur, head)
		} else {
			b.edge(b.cur, head)
		}
		if x.Cond == nil {
			// `for { ... }` exits only via break; exit may be unreachable.
			_ = exit
		}
		b.cur = exit

	case *ast.RangeStmt:
		head := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		// The ranged expression (and the per-iteration key/value binding)
		// evaluates at the head; the statement's Body is woven separately,
		// so only X is recorded.
		b.add(x.X)
		body := b.newBlock()
		exit := b.newBlock()
		b.edge(head, body)
		b.edge(head, exit)
		b.frames = append(b.frames, loopFrame{label: label, breakTo: exit, continueTo: head})
		b.cur = body
		b.stmtList(x.Body.List)
		b.frames = b.frames[:len(b.frames)-1]
		b.edge(b.cur, head)
		b.cur = exit

	case *ast.SwitchStmt:
		b.switchStmt(x.Init, x.Tag, x.Body, label)

	case *ast.TypeSwitchStmt:
		// The assign (`v := y.(type)`) evaluates at the head like a tag.
		b.switchStmt(x.Init, x.Assign, x.Body, label)

	case *ast.SelectStmt:
		head := b.cur
		join := b.newBlock()
		b.frames = append(b.frames, loopFrame{label: label, breakTo: join})
		for _, c := range x.Body.List {
			cc := c.(*ast.CommClause)
			clause := b.newBlock()
			b.edge(head, clause)
			b.cur = clause
			if cc.Comm != nil {
				b.stmt(cc.Comm, "")
			}
			b.stmtList(cc.Body)
			b.edge(b.cur, join)
		}
		b.frames = b.frames[:len(b.frames)-1]
		if len(x.Body.List) == 0 {
			b.edge(head, join)
		}
		b.cur = join

	case *ast.ReturnStmt:
		b.add(x)
		b.edge(b.cur, b.cfg.Exit)
		b.cur = b.newBlock() // unreachable continuation

	case *ast.BranchStmt:
		b.add(x)
		switch x.Tok {
		case token.BREAK:
			if t := b.frame(x.Label); t != nil {
				b.edge(b.cur, t.breakTo)
			} else {
				b.edge(b.cur, b.cfg.Exit)
			}
		case token.CONTINUE:
			if t := b.frame(x.Label); t != nil && t.continueTo != nil {
				b.edge(b.cur, t.continueTo)
			} else {
				b.edge(b.cur, b.cfg.Exit)
			}
		case token.GOTO:
			// Rare in this module; conservatively treat as leaving the
			// function so no spurious fallthrough path is created.
			b.edge(b.cur, b.cfg.Exit)
		}
		if x.Tok != token.FALLTHROUGH {
			b.cur = b.newBlock() // unreachable continuation
		}

	case *ast.ExprStmt:
		b.add(x)
		if isPanicCall(x.X) {
			b.edge(b.cur, b.cfg.Exit)
			b.cur = b.newBlock()
		}

	default:
		// Assignments, declarations, sends, defers, go statements,
		// increments: straight-line nodes.
		b.add(s)
	}
}

// switchStmt weaves a (type) switch: init and tag at the head, one
// block per clause, fallthrough chaining, implicit default to join.
func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Node, body *ast.BlockStmt, label string) {
	if init != nil {
		b.stmt(init, "")
	}
	if tag != nil {
		b.add(tag)
	}
	head := b.cur
	join := b.newBlock()
	b.frames = append(b.frames, loopFrame{label: label, breakTo: join})
	var clauses []*Block
	hasDefault := false
	for range body.List {
		clauses = append(clauses, b.newBlock())
	}
	for i, c := range body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		blk := clauses[i]
		b.edge(head, blk)
		b.cur = blk
		for _, e := range cc.List {
			b.add(e)
		}
		fellThrough := false
		for _, s := range cc.Body {
			if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				if i+1 < len(clauses) {
					b.edge(b.cur, clauses[i+1])
					fellThrough = true
				}
				continue
			}
			b.stmt(s, "")
		}
		if !fellThrough {
			b.edge(b.cur, join)
		}
	}
	b.frames = b.frames[:len(b.frames)-1]
	if !hasDefault {
		b.edge(head, join)
	}
	b.cur = join
}

// frame resolves a break/continue target: the innermost frame, or the
// labeled one.
func (b *cfgBuilder) frame(label *ast.Ident) *loopFrame {
	if len(b.frames) == 0 {
		return nil
	}
	if label == nil {
		return &b.frames[len(b.frames)-1]
	}
	for i := len(b.frames) - 1; i >= 0; i-- {
		if b.frames[i].label == label.Name {
			return &b.frames[i]
		}
	}
	return nil
}

// isPanicCall reports whether e is a call to the builtin panic.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
