package vet

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked (non-test) package.
type Package struct {
	Path  string // import path
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// LoadModule loads and type-checks every non-test package of the
// module rooted at root (the directory holding go.mod), returning
// packages sorted by import path. Standard-library imports are
// resolved by the source importer, so no build artifacts or network
// access are needed.
func LoadModule(root string) (*token.FileSet, []*Package, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, nil, err
	}
	return Load(root, modPath)
}

// Load parses every directory under root holding non-test Go files
// and type-checks them in dependency order. The import path of a
// directory is modulePath joined with its path relative to root
// (modulePath itself for root; just the relative path when modulePath
// is empty — the layout vettest uses for testdata trees).
func Load(root, modulePath string) (*token.FileSet, []*Package, error) {
	fset := token.NewFileSet()
	pkgs := make(map[string]*Package)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "bin") {
			return filepath.SkipDir
		}
		p, err := parseDir(fset, path)
		if err != nil {
			return err
		}
		if p == nil {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		switch {
		case rel == ".":
			p.Path = modulePath
		case modulePath == "":
			p.Path = filepath.ToSlash(rel)
		default:
			p.Path = modulePath + "/" + filepath.ToSlash(rel)
		}
		if p.Path == "" {
			return nil // rootless layout with files at root: nothing to anchor them to
		}
		pkgs[p.Path] = p
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	ordered, err := topoSort(pkgs)
	if err != nil {
		return nil, nil, err
	}
	imp := &chainImporter{
		local: pkgs,
		src:   importer.ForCompiler(fset, "source", nil),
	}
	for _, p := range ordered {
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.Path, fset, p.Files, info)
		if err != nil {
			return nil, nil, fmt.Errorf("vet: type-check %s: %w", p.Path, err)
		}
		p.Types = tpkg
		p.Info = info
	}
	return fset, ordered, nil
}

// parseDir parses the non-test Go files of one directory, returning
// nil when there are none.
func parseDir(fset *token.FileSet, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)
	p := &Package{Dir: dir}
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		p.Files = append(p.Files, f)
	}
	return p, nil
}

// topoSort orders packages so every local import precedes its
// importer; ties break by import path for deterministic pass order.
func topoSort(pkgs map[string]*Package) ([]*Package, error) {
	paths := make([]string, 0, len(pkgs))
	for p := range pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var out []*Package
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case 1:
			return fmt.Errorf("vet: import cycle through %s", path)
		case 2:
			return nil
		}
		state[path] = 1
		p := pkgs[path]
		var deps []string
		for _, f := range p.Files {
			for _, spec := range f.Imports {
				ip := strings.Trim(spec.Path.Value, `"`)
				if _, ok := pkgs[ip]; ok {
					deps = append(deps, ip)
				}
			}
		}
		sort.Strings(deps)
		for _, d := range deps {
			if err := visit(d); err != nil {
				return err
			}
		}
		state[path] = 2
		out = append(out, p)
		return nil
	}
	for _, path := range paths {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// chainImporter resolves module-local packages from the loaded set
// (already type-checked, thanks to topological order) and delegates
// everything else — the standard library — to the source importer.
type chainImporter struct {
	local map[string]*Package
	src   types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.local[path]; ok {
		if p.Types == nil {
			return nil, fmt.Errorf("vet: import %s before it was checked", path)
		}
		return p.Types, nil
	}
	return c.src.Import(path)
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("vet: no module directive in %s", gomod)
}
