package vet

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// Probe: unlabeled continue inside a switch inside a for loop.
func TestReviewProbeContinueInSwitch(t *testing.T) {
	src := `package p
func f() {
	for i := 0; i < 10; i++ {
		switch i {
		case 1:
			continue
		}
	}
}`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	cfg := NewCFG(fd.Body)
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			br, ok := n.(*ast.BranchStmt)
			if !ok || br.Tok != token.CONTINUE {
				continue
			}
			for _, s := range b.Succs {
				if s == cfg.Exit {
					t.Errorf("continue block %d has an edge to Exit (should go to the loop head/post)", b.Index)
				}
			}
			if len(b.Succs) == 0 {
				t.Errorf("continue block %d has no successors", b.Index)
			}
		}
	}
}
