package journalfirst_test

import (
	"testing"

	"incentivetree/internal/vet/journalfirst"
	"incentivetree/internal/vet/vettest"
)

func TestJournalFirst(t *testing.T) {
	vettest.Run(t, "testdata", journalfirst.New)
}
