// Package journalfirst guards the durability contract of the write
// path: in the serving packages (server, store, ingest, replica,
// audit), in-memory
// guarded state and the journal must never diverge. A function that
// mutates receiver-reachable state BEFORE calling journal.Append /
// AppendBatch must roll the mutations back on the append-error path
// — otherwise the state survives in memory but vanishes on restart,
// the exact bug class PR 4 fixed in joinLocked.
//
// Concretely, for every function that calls Append/AppendBatch on a
// journal.Writer, if a state write on the receiver (field assignment,
// delete on a receiver map, or a call to a mutating method rooted at
// the receiver — Add*, Set*, *Locked, ...) precedes the append in the
// same body, the analyzer requires that:
//
//   - the append's error result is assigned (not discarded), and
//   - the `if err != nil` branch that follows invokes a compensating
//     call whose name contains rollback/undo/reset/restore.
//
// Functions that journal first and mutate only after the append
// succeeds satisfy the invariant trivially and are not flagged.
package journalfirst

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"incentivetree/internal/vet"
)

// New returns a fresh analyzer instance.
func New() *vet.Analyzer {
	return &vet.Analyzer{
		Name: "journalfirst",
		Doc:  "state mutated before a journal append must be rolled back on the append-error path",
		Run:  run,
	}
}

// scopedPackages are the package names the invariant applies to (the
// serving write path).
var scopedPackages = map[string]bool{"server": true, "store": true, "ingest": true, "replica": true, "audit": true, "settle": true}

// mutatorName matches method names that (by this repo's conventions)
// mutate state.
var mutatorName = regexp.MustCompile(`^(Add|Set|Join|Apply|Delete|Remove|Insert|Push|Put|Reset|Truncate|Restore|Adopt|Inc|Bump)|Locked$`)

// rollbackName matches compensating-call names accepted on the
// append-error path.
var rollbackName = regexp.MustCompile(`(?i)rollback|undo|reset|restore|compensat`)

func run(pass *vet.Pass) {
	if !scopedPackages[pass.Pkg.Name()] {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
}

func checkFunc(pass *vet.Pass, fn *ast.FuncDecl) {
	recv := vet.DeclReceiver(pass.Info, fn)
	if recv == nil {
		return // free functions hold no guarded state of their own
	}
	appends := journalAppends(pass.Info, fn.Body)
	if len(appends) == 0 {
		return
	}
	for _, app := range appends {
		write := firstWriteBefore(pass.Info, fn.Body, recv, app.call.Pos())
		if write == nil {
			continue // journal-first ordering: nothing to roll back
		}
		if !app.errHandled {
			pass.Report(app.call.Pos(),
				"journal %s error is not checked, but guarded state was already mutated at line %d; a failed append leaves memory ahead of the journal",
				app.name, pass.Fset.Position(write.Pos()).Line)
			continue
		}
		if !app.rollback {
			pass.Report(app.call.Pos(),
				"guarded state mutated at line %d before journal %s, but the append-error path has no rollback/undo/restore call; memory would survive what the journal lost",
				pass.Fset.Position(write.Pos()).Line, app.name)
		}
	}
}

// appendSite is one journal.Append/AppendBatch call with its error
// handling summarized.
type appendSite struct {
	call       *ast.CallExpr
	name       string
	errHandled bool
	rollback   bool
}

// journalAppends finds Append/AppendBatch calls on journal.Writer
// values and inspects the surrounding statements for error handling.
func journalAppends(info *types.Info, body *ast.BlockStmt) []appendSite {
	var sites []appendSite
	// Walk statement lists so each call can see its following
	// statement (the `if err != nil` idiom).
	var walkStmts func(list []ast.Stmt)
	walkStmts = func(list []ast.Stmt) {
		for i, stmt := range list {
			ast.Inspect(stmt, func(n ast.Node) bool {
				if blk, ok := n.(*ast.BlockStmt); ok && blk != nil {
					walkStmts(blk.List)
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok || !isJournalAppend(info, call) {
					return true
				}
				site := appendSite{call: call, name: vet.CalleeName(call)}
				site.errHandled, site.rollback = errHandling(info, stmt, i, list, call)
				sites = append(sites, site)
				return true
			})
		}
	}
	walkStmts(body.List)
	return sites
}

// errHandling determines whether the append call's error is bound and
// checked, and whether the error branch compensates.
func errHandling(info *types.Info, stmt ast.Stmt, idx int, list []ast.Stmt, call *ast.CallExpr) (handled, rollback bool) {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		errIdent := assignedError(info, s, call)
		if errIdent == nil {
			return false, false
		}
		// Look for `if errIdent != nil { ... }` in the following
		// statements (idiomatically the very next one).
		for _, next := range list[idx+1:] {
			ifs, ok := next.(*ast.IfStmt)
			if !ok {
				continue
			}
			if !condChecksErr(info, ifs.Cond, errIdent) {
				continue
			}
			return true, containsRollback(ifs.Body)
		}
		return false, false
	case *ast.IfStmt:
		// if _, err := jw.Append(e); err != nil { ... }
		if init, ok := s.Init.(*ast.AssignStmt); ok {
			if errIdent := assignedError(info, init, call); errIdent != nil && condChecksErr(info, s.Cond, errIdent) {
				return true, containsRollback(s.Body)
			}
		}
		return false, false
	case *ast.ReturnStmt:
		// The append's results are returned verbatim: the caller owns
		// the error; within this function nothing was left dangling
		// only if the caller can also roll back — which it cannot for
		// receiver state. Treat as unhandled.
		return false, false
	}
	return false, false
}

// assignedError returns the identifier binding the error result of
// call within assignment s, nil when discarded or absent.
func assignedError(info *types.Info, s *ast.AssignStmt, call *ast.CallExpr) *ast.Ident {
	for i, rhs := range s.Rhs {
		if ast.Unparen(rhs) != call {
			continue
		}
		// Multi-value call assigned to a matching LHS list, or a
		// single-value (error-only) call.
		var lhs ast.Expr
		if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
			lhs = s.Lhs[len(s.Lhs)-1] // error is the last result by convention
		} else if i < len(s.Lhs) {
			lhs = s.Lhs[i]
		}
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		if o := vet.ObjectOf(info, id); o != nil && o.Type() != nil && vet.IsErrorType(o.Type()) {
			return id
		}
		return nil
	}
	return nil
}

// condChecksErr reports whether cond is `err != nil` (or a compound
// condition containing it) for the given error identifier's object.
func condChecksErr(info *types.Info, cond ast.Expr, errIdent *ast.Ident) bool {
	target := vet.ObjectOf(info, errIdent)
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Op.String() != "!=" {
			return true
		}
		x, xo := ast.Unparen(be.X).(*ast.Ident)
		y, yo := ast.Unparen(be.Y).(*ast.Ident)
		if xo && yo && ((vet.ObjectOf(info, x) == target && y.Name == "nil") || (vet.ObjectOf(info, y) == target && x.Name == "nil")) {
			found = true
			return false
		}
		return true
	})
	return found
}

// containsRollback reports whether the block calls anything whose
// name reads as a compensation.
func containsRollback(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if rollbackName.MatchString(vet.CalleeName(call)) {
			found = true
			return false
		}
		return true
	})
	return found
}

// firstWriteBefore returns the earliest guarded-state write rooted at
// recv positioned before pos, or nil.
func firstWriteBefore(info *types.Info, body *ast.BlockStmt, recv types.Object, limit token.Pos) ast.Node {
	var first ast.Node
	consider := func(n ast.Node) {
		if n.Pos() >= limit {
			return
		}
		if first == nil || n.Pos() < first.Pos() {
			first = n
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if root := vet.RootIdent(lhs); root != nil && vet.ObjectOf(info, root) == recv && lhs != root {
					consider(x)
				}
			}
		case *ast.IncDecStmt:
			if root := vet.RootIdent(x.X); root != nil && vet.ObjectOf(info, root) == recv && x.X != root {
				consider(x)
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "delete" && len(x.Args) > 0 {
				if root := vet.RootIdent(x.Args[0]); root != nil && vet.ObjectOf(info, root) == recv {
					consider(x)
				}
			}
			sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
			if !ok || !mutatorName.MatchString(sel.Sel.Name) {
				return true
			}
			if root := vet.RootIdent(sel.X); root != nil && vet.ObjectOf(info, root) == recv {
				consider(x)
			}
		}
		return true
	})
	return first
}

// isJournalAppend matches method calls named Append/AppendBatch whose
// receiver is a journal.Writer (matched by package and type name, so
// test stubs work the same as the real package).
func isJournalAppend(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !strings.HasPrefix(sel.Sel.Name, "Append") {
		return false
	}
	callee := vet.CalleeFunc(info, call)
	if callee == nil {
		return false
	}
	named := vet.NamedReceiver(callee)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Writer" && obj.Pkg() != nil && obj.Pkg().Name() == "journal"
}
