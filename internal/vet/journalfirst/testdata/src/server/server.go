// Package server is the journalfirst golden fixture: the package name
// puts it in the analyzer's scope.
package server

import "journal"

type Server struct {
	jw    *journal.Writer
	byKey map[string]int
	seq   uint64
}

func (s *Server) rollbackKey(k string) { delete(s.byKey, k) }

func (s *Server) restoreSeq(v uint64) { s.seq = v }

// GoodRollback mutates first but compensates on the error path.
func (s *Server) GoodRollback(k string) error {
	s.byKey[k] = 1
	if _, err := s.jw.Append(journal.Event{Name: k}); err != nil {
		s.rollbackKey(k)
		return err
	}
	return nil
}

// GoodJournalFirst appends before touching guarded state: nothing to
// roll back.
func (s *Server) GoodJournalFirst(k string) error {
	if _, err := s.jw.Append(journal.Event{Name: k}); err != nil {
		return err
	}
	s.byKey[k] = 1
	return nil
}

// GoodBatch uses the assign-then-check idiom with a compensation.
func (s *Server) GoodBatch(events []journal.Event) error {
	mark := s.seq
	s.seq += uint64(len(events))
	persisted, err := s.jw.AppendBatch(events)
	if err != nil {
		s.restoreSeq(mark)
		return err
	}
	_ = persisted
	return nil
}

// BadNoRollback checks the error but leaves memory ahead of the
// journal.
func (s *Server) BadNoRollback(k string) error {
	s.byKey[k] = 1
	_, err := s.jw.Append(journal.Event{Name: k}) // want `no rollback/undo/restore call`
	if err != nil {
		return err
	}
	return nil
}

// BadIgnoredErr discards the append error entirely.
func (s *Server) BadIgnoredErr(k string) {
	s.byKey[k] = 1
	s.jw.Append(journal.Event{Name: k}) // want `error is not checked`
}

// BadBatch mutates, batches, and forgets the compensation.
func (s *Server) BadBatch(events []journal.Event) error {
	s.seq += uint64(len(events))
	_, err := s.jw.AppendBatch(events) // want `no rollback/undo/restore call`
	if err != nil {
		return err
	}
	return nil
}
