// Package replay reproduces the worst fixture pattern from the scoped
// packages — mutate, append, no rollback — but its package name is out
// of the analyzer's scope, so nothing here may be flagged.
package replay

import "journal"

type Rebuilder struct {
	jw    *journal.Writer
	count int
}

func (r *Rebuilder) Record(e journal.Event) error {
	r.count++
	_, err := r.jw.Append(e)
	if err != nil {
		return err
	}
	return nil
}
