package vet

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// ignoreDirective is the comment prefix of a suppression annotation.
const ignoreDirective = "//itreevet:ignore"

// annotation is one parsed //itreevet:ignore comment.
type annotation struct {
	analyzer string
	reason   string
	line     int
}

// Result is the outcome of one Run: findings that stand, findings
// that were suppressed by annotations (with their reasons), and
// malformed annotations (reported as findings of the "itreevet"
// pseudo-analyzer so they cannot silently rot).
type Result struct {
	Findings   []Diagnostic
	Suppressed []Diagnostic
}

// Run executes every analyzer over every package and applies
// //itreevet:ignore annotations. Output order is deterministic:
// findings sort by file, line, column, then analyzer name.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) Result {
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }

	graph := NewGraph(fset, pkgs)
	for _, a := range analyzers {
		for _, p := range pkgs {
			pass := &Pass{
				Fset:   fset,
				Pkg:    p.Types,
				Files:  p.Files,
				Info:   p.Info,
				Graph:  graph,
				Pkgs:   pkgs,
				report: report,
				name:   a.Name,
			}
			a.Run(pass)
		}
	}
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		name := a.Name
		a.Finish(func(pos token.Position, format string, args ...any) {
			report(Diagnostic{Analyzer: name, Pos: pos, Message: fmt.Sprintf(format, args...)})
		})
	}

	anns, bad := collectAnnotations(fset, pkgs)
	diags = append(diags, bad...)

	var res Result
	for _, d := range diags {
		if ann, ok := matchAnnotation(anns, d); ok {
			d.Suppressed = true
			d.Reason = ann.reason
			res.Suppressed = append(res.Suppressed, d)
			continue
		}
		res.Findings = append(res.Findings, d)
	}
	sortDiags(res.Findings)
	sortDiags(res.Suppressed)
	return res
}

// collectAnnotations parses every //itreevet:ignore comment in the
// loaded files. An annotation missing its analyzer or reason is
// itself a finding — unexplained suppressions defeat the point.
func collectAnnotations(fset *token.FileSet, pkgs []*Package) (map[string][]annotation, []Diagnostic) {
	anns := make(map[string][]annotation)
	var bad []Diagnostic
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, ignoreDirective)
					if !ok {
						continue
					}
					pos := fset.Position(c.Pos())
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						bad = append(bad, Diagnostic{
							Analyzer: "itreevet",
							Pos:      pos,
							Message:  "malformed ignore annotation: want //itreevet:ignore <analyzer> <reason>",
						})
						continue
					}
					anns[pos.Filename] = append(anns[pos.Filename], annotation{
						analyzer: fields[0],
						reason:   strings.Join(fields[1:], " "),
						line:     pos.Line,
					})
				}
			}
		}
	}
	return anns, bad
}

// matchAnnotation reports whether d is covered by an annotation for
// its analyzer on the same line or the line directly above.
func matchAnnotation(anns map[string][]annotation, d Diagnostic) (annotation, bool) {
	for _, a := range anns[d.Pos.Filename] {
		if a.analyzer != d.Analyzer {
			continue
		}
		if a.line == d.Pos.Line || a.line == d.Pos.Line-1 {
			return a, true
		}
	}
	return annotation{}, false
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
