package vet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The must-check-error walk: given a call whose results include an
// error the module requires callers to act on (journal appends, syncs,
// ledger applies), classify what actually happens to that error by
// following it forward through the function's CFG. The verdicts cover
// the loss modes errflow reports: blank assignment, wholesale discard,
// overwrite-before-read, and branch-local loss where one path out of
// the function never looks at the value.

// ErrVerdict classifies the fate of one tracked error value.
type ErrVerdict int

const (
	// ErrOK: the error is consumed — returned, passed to another call,
	// stored into a field, or read on every path out of the function.
	ErrOK ErrVerdict = iota
	// ErrBlank: the error result is assigned to the blank identifier.
	ErrBlank
	// ErrDiscarded: the call's results are not bound at all.
	ErrDiscarded
	// ErrOverwritten: the variable is reassigned before any read.
	ErrOverwritten
	// ErrLost: some path reaches the function exit without reading the
	// error (branch-local loss).
	ErrLost
)

// ErrFlow is the outcome of tracking one error-producing call.
type ErrFlow struct {
	Verdict ErrVerdict
	// Obj is the variable the error was bound to; nil for
	// Blank/Discarded and for subexpression consumption.
	Obj *types.Var
	// Site is the evidence: the binding statement for Blank/Discarded
	// and Lost, the clobbering statement for Overwritten.
	Site ast.Node
	// Reads lists the first reading node of each explored path, in
	// deterministic order, when the verdict is ErrOK with a tracked
	// variable. Analyzers judge from these whether the read acts on the
	// error (an `if err != nil` that does nothing is still a read).
	Reads []ast.Node
}

// CheckErrFlow tracks the error produced at result position errIndex
// of call through cfg. The call must belong to the function body cfg
// was built from (and must not sit inside a nested function literal —
// build the literal's own CFG for those).
func CheckErrFlow(info *types.Info, cfg *CFG, call *ast.CallExpr, errIndex int) ErrFlow {
	blk, idx, stmt := cfg.find(call)
	if stmt == nil {
		return ErrFlow{Verdict: ErrOK}
	}
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		// Only the form binding this call's results directly; a call
		// nested deeper in the RHS has its value consumed by the
		// surrounding expression.
		if len(s.Rhs) != 1 || ast.Unparen(s.Rhs[0]) != call || errIndex >= len(s.Lhs) {
			return ErrFlow{Verdict: ErrOK}
		}
		id, ok := ast.Unparen(s.Lhs[errIndex]).(*ast.Ident)
		if !ok {
			// Stored into a field, map, or slice element: kept alive
			// beyond this function's control flow.
			return ErrFlow{Verdict: ErrOK}
		}
		if id.Name == "_" {
			return ErrFlow{Verdict: ErrBlank, Site: s}
		}
		obj, _ := ObjectOf(info, id).(*types.Var)
		if obj == nil {
			return ErrFlow{Verdict: ErrOK}
		}
		return trackForward(info, cfg, blk, idx+1, obj, s)
	case *ast.ExprStmt:
		if ast.Unparen(s.X) == call {
			return ErrFlow{Verdict: ErrDiscarded, Site: s}
		}
		return ErrFlow{Verdict: ErrOK}
	default:
		// Return statement, condition, argument position: consumed.
		return ErrFlow{Verdict: ErrOK}
	}
}

// find locates the block and node index whose node contains n (by
// position; block nodes are disjoint, so at most one matches).
func (c *CFG) find(n ast.Node) (*Block, int, ast.Node) {
	for _, b := range c.Blocks {
		for i, nd := range b.Nodes {
			if nd.Pos() <= n.Pos() && n.End() <= nd.End() {
				return b, i, nd
			}
		}
	}
	return nil, 0, nil
}

// trackForward explores every path from just after the binding,
// stopping each path at its first read and failing fast on a clobber
// or on reaching Exit unread. Blocks are visited at most once (the
// walk is monotone: a block's first visit explores its full suffix),
// keeping the walk linear; loops re-entering the origin block are
// treated as converged rather than re-scanned.
func trackForward(info *types.Info, cfg *CFG, blk *Block, from int, obj *types.Var, origin ast.Node) ErrFlow {
	flow := ErrFlow{Verdict: ErrOK, Obj: obj}
	visited := map[*Block]bool{blk: true}
	var walk func(b *Block, i int) bool // false = finding recorded, stop
	walk = func(b *Block, i int) bool {
		for ; i < len(b.Nodes); i++ {
			read, kill := useOf(info, b.Nodes[i], obj)
			if read != nil {
				flow.Reads = append(flow.Reads, read)
				return true
			}
			if kill != nil {
				flow.Verdict = ErrOverwritten
				flow.Site = kill
				return false
			}
		}
		if b == cfg.Exit {
			flow.Verdict = ErrLost
			flow.Site = origin
			return false
		}
		for _, s := range b.Succs {
			if visited[s] {
				continue
			}
			visited[s] = true
			if !walk(s, 0) {
				return false
			}
		}
		return true
	}
	walk(blk, from)
	return flow
}

// useOf classifies node n with respect to obj: a read (any appearance
// outside a pure store target, closures included — a capturing literal
// keeps the value reachable), a kill (plain reassignment whose RHS
// does not mention obj), or neither.
func useOf(info *types.Info, n ast.Node, obj *types.Var) (read, kill ast.Node) {
	if as, ok := n.(*ast.AssignStmt); ok {
		target := false
		for _, l := range as.Lhs {
			if id, ok := ast.Unparen(l).(*ast.Ident); ok && ObjectOf(info, id) == obj {
				target = true
			}
		}
		if target {
			// err = fmt.Errorf("...: %w", err) and op-assignments read
			// the old value before storing.
			if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
				return as, nil
			}
			for _, r := range as.Rhs {
				if mentions(info, r, obj) {
					return as, nil
				}
			}
			return nil, as
		}
	}
	if mentions(info, n, obj) {
		return n, nil
	}
	return nil, nil
}

// mentions reports whether obj appears anywhere in n.
func mentions(info *types.Info, n ast.Node, obj *types.Var) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		if id, ok := c.(*ast.Ident); ok && ObjectOf(info, id) == obj {
			found = true
		}
		return !found
	})
	return found
}
