// Package floatorder guards the byte-determinism of reward math. The
// paper's CDRM guarantee (R(u) = R(x_u, y_u), Theorem 5) and the
// repo's crash tests both demand that recomputing rewards — live, or
// replayed after a crash — produces byte-identical float64 tables.
// Floating-point addition is not associative, so any iteration whose
// order the runtime randomizes silently breaks that, one ulp at a
// time (the PR 4 recovered-reward-table bug class).
//
// In the deterministic packages (tree, core, numeric, the mechanism
// packages, incremental, sybil, analysis) the analyzer flags:
//
//  1. floating-point accumulation (x += v, x = x + v) inside a
//     `for range` over a map — map iteration order is randomized per
//     run;
//  2. collecting map keys into a slice that is later iterated without
//     a sort call in between (the sorts-missing variant of 1);
//  3. any call of time.Now and any import of math/rand — wall clocks
//     and unseeded process randomness have no place in reward math.
//     Latency instrumentation that provably never feeds reward values
//     is suppressed inline with //itreevet:ignore.
package floatorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"incentivetree/internal/vet"
)

// New returns a fresh analyzer instance.
func New() *vet.Analyzer {
	return &vet.Analyzer{
		Name: "floatorder",
		Doc:  "deterministic packages must not accumulate floats over map order or consult time/rand",
		Run:  run,
	}
}

// deterministicPackages names the packages whose outputs must be
// byte-reproducible: the tree and numeric substrate, every mechanism,
// the incremental engines, the Sybil search, and reward attribution.
var deterministicPackages = map[string]bool{
	"tree": true, "core": true, "numeric": true,
	"geometric": true, "cdrm": true, "tdrm": true, "emek": true,
	"lottree": true, "mlm": true,
	"incremental": true, "sybil": true, "analysis": true,
}

func run(pass *vet.Pass) {
	if !deterministicPackages[pass.Pkg.Name()] {
		return
	}
	for _, file := range pass.Files {
		checkImports(pass, file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkMapRanges(pass, fn.Body)
			checkTimeNow(pass, fn.Body)
		}
	}
}

// checkImports flags math/rand (v1 and v2) imports.
func checkImports(pass *vet.Pass, file *ast.File) {
	for _, spec := range file.Imports {
		path := strings.Trim(spec.Path.Value, `"`)
		if path == "math/rand" || path == "math/rand/v2" {
			pass.Report(spec.Pos(), "deterministic package %s imports %s: randomness breaks byte-reproducible reward tables", pass.Pkg.Name(), path)
		}
	}
}

// checkTimeNow flags calls to time.Now.
func checkTimeNow(pass *vet.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := vet.CalleeFunc(pass.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if fn.Pkg().Path() == "time" && fn.Name() == "Now" {
			pass.Report(call.Pos(), "deterministic package %s calls time.Now: wall-clock values must not reach reward math", pass.Pkg.Name())
		}
		return true
	})
}

// checkMapRanges applies checks 1 and 2 to every range-over-map in
// one function body.
func checkMapRanges(pass *vet.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[rng.X]
		if !ok || !vet.IsMapType(tv.Type) {
			return true
		}
		checkFloatAccumulation(pass, rng)
		checkUnsortedKeys(pass, rng, body)
		return true
	})
}

// checkFloatAccumulation flags float accumulators updated inside a
// map range: the accumulator must be declared outside the loop body
// (otherwise each iteration starts fresh and order cannot matter).
func checkFloatAccumulation(pass *vet.Pass, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		case token.ASSIGN:
			// x = x + v style: RHS must reference the LHS root.
			if len(as.Lhs) != 1 || len(as.Rhs) != 1 || !mentionsObject(pass.Info, as.Rhs[0], rootObject(pass.Info, as.Lhs[0])) {
				return true
			}
		default:
			return true
		}
		for _, lhs := range as.Lhs {
			tv, ok := pass.Info.Types[lhs]
			if !ok || !vet.IsFloat(tv.Type) {
				continue
			}
			obj := rootObject(pass.Info, lhs)
			if obj == nil || definedWithin(obj, rng.Body) {
				continue
			}
			pass.Report(as.Pos(), "floating-point accumulation into %s inside range over map: iteration order is randomized, so the sum is not byte-deterministic — iterate sorted keys instead", exprString(lhs))
		}
		return true
	})
}

// checkUnsortedKeys flags the key-collection variant: keys appended
// to a slice inside the map range, with the slice iterated later in
// the same function and no sort call on it in between.
func checkUnsortedKeys(pass *vet.Pass, rng *ast.RangeStmt, body *ast.BlockStmt) {
	keyObj := rootObject(pass.Info, rng.Key)
	if keyObj == nil {
		return
	}
	// Find `slice = append(slice, key)` in the range body.
	var sliceObj types.Object
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
			return true
		}
		if len(call.Args) < 2 || !mentionsObject(pass.Info, call.Args[1], keyObj) {
			return true
		}
		sliceObj = rootObject(pass.Info, as.Lhs[0])
		return sliceObj == nil
	})
	if sliceObj == nil {
		return
	}
	// After the range: is the slice ranged over before any sort call?
	sorted := false
	var flagged ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil || flagged != nil || n.Pos() <= rng.End() {
			return true
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if fn := vet.CalleeFunc(pass.Info, x); fn != nil && fn.Pkg() != nil {
				pkg := fn.Pkg().Path()
				if (pkg == "sort" || pkg == "slices") && len(x.Args) > 0 && mentionsObject(pass.Info, x.Args[0], sliceObj) {
					sorted = true
				}
			}
		case *ast.RangeStmt:
			if !sorted && mentionsObject(pass.Info, x.X, sliceObj) {
				flagged = x
			}
		}
		return true
	})
	if flagged != nil {
		pass.Report(flagged.Pos(), "iterating %s, a slice of map keys, without sorting it first: the element order inherits the map's randomized iteration order", sliceObj.Name())
	}
}

// rootObject resolves the base identifier of e to its object.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	root := vet.RootIdent(e)
	if root == nil {
		return nil
	}
	return vet.ObjectOf(info, root)
}

// mentionsObject reports whether expression e references obj.
func mentionsObject(info *types.Info, e ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && vet.ObjectOf(info, id) == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}

// definedWithin reports whether obj's declaration lies inside node.
func definedWithin(obj types.Object, node ast.Node) bool {
	return obj.Pos() >= node.Pos() && obj.Pos() <= node.End()
}

func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	}
	return "expression"
}
