// Package workload replays every pattern the analyzer flags, but its
// package name is outside the deterministic set — nothing here may be
// reported.
package workload

import (
	"math/rand"
	"time"
)

func Jitter() time.Duration {
	return time.Duration(rand.Intn(50)) * time.Millisecond
}

func Mean(samples map[string]float64) float64 {
	sum := 0.0
	for _, v := range samples {
		sum += v
	}
	return sum / float64(len(samples)+1)
}

func Stamp() int64 {
	return time.Now().UnixNano()
}
