// Package core is the floatorder golden fixture: its package name
// places it in the deterministic set.
package core

import (
	"math/rand" // want `imports math/rand`
	"sort"
	"time"
)

type Rewards map[int]float64

// Total accumulates a float directly over map iteration order.
func Total(r Rewards) float64 {
	sum := 0.0
	for _, v := range r {
		sum += v // want `floating-point accumulation into sum inside range over map`
	}
	return sum
}

// TotalSorted is the blessed pattern: keys out, sort, then fold.
func TotalSorted(r Rewards) float64 {
	keys := make([]int, 0, len(r))
	for k := range r {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	sum := 0.0
	for _, k := range keys {
		sum += r[k]
	}
	return sum
}

// TotalUnsorted collects the keys but forgets the sort, so the slice
// inherits the randomized order.
func TotalUnsorted(r Rewards) float64 {
	keys := make([]int, 0, len(r))
	for k := range r {
		keys = append(keys, k)
	}
	sum := 0.0
	for _, k := range keys { // want `slice of map keys, without sorting`
		sum += r[k]
	}
	return sum
}

// Count shows integer accumulation over a map is exact and allowed.
func Count(r Rewards) int {
	n := 0
	for range r {
		n++
	}
	return n
}

// Max is order-independent selection, not accumulation: allowed.
func Max(r Rewards) float64 {
	max := 0.0
	for _, v := range r {
		if v > max {
			max = v
		}
	}
	return max
}

// PerNode only touches floats scoped inside the loop body: allowed.
func PerNode(r Rewards) Rewards {
	out := make(Rewards, len(r))
	for k, v := range r {
		scaled := v
		scaled *= 2
		out[k] = scaled
	}
	return out
}

// Stamp consults the wall clock from a deterministic package.
func Stamp() int64 {
	return time.Now().UnixNano() // want `calls time.Now`
}

// StampSuppressed carries a documented waiver, exercising the
// //itreevet:ignore path end to end: no finding may surface here.
func StampSuppressed() int64 {
	//itreevet:ignore floatorder fixture exercising the suppression path
	return time.Now().UnixNano()
}

// Roll exists to use the flagged import.
func Roll() int {
	return rand.Intn(6)
}
