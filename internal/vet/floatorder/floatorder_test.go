package floatorder_test

import (
	"testing"

	"incentivetree/internal/vet/floatorder"
	"incentivetree/internal/vet/vettest"
)

func TestFloatOrder(t *testing.T) {
	vettest.Run(t, "testdata", floatorder.New)
}
