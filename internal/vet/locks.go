package vet

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
)

// The may-hold-lock layer: mutexes are classified by their declaring
// object (a struct field like server.Server.mu, audit.Auditor.scanMu,
// or a package-level var), each function's direct acquisitions are
// discovered by an in-order body walk that tracks Lock/Unlock pairing,
// and a fixpoint over the call graph summarizes which classes each
// function may acquire transitively. lockorder builds its acquisition
// graph from these facts; any analyzer can ask "which locks may a call
// to f take?".

// LockClass identifies a mutex by declaration site: the *types.Var of
// the struct field or package-level variable holding it. Two stripes
// of the same field (shards[i].mu, shards[j].mu) share a class — the
// coarseness that makes cross-instance ordering checkable at all.
type LockClass struct {
	Obj *types.Var
}

// String renders pkg.Type.field (or pkg.var) for findings.
func (c LockClass) String() string {
	obj := c.Obj
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Name() + "."
	}
	if obj.IsField() {
		// Walk the scope for the named type owning the field is not
		// recorded on the Var; render via the field's parent when known.
		if owner := fieldOwner(obj); owner != "" {
			return pkg + owner + "." + obj.Name()
		}
	}
	return pkg + obj.Name()
}

// lockOwners caches field → owning named type names, filled by
// NewLockFacts from the loaded packages' type declarations.
var lockOwnerNames = map[*types.Var]string{}

func fieldOwner(v *types.Var) string { return lockOwnerNames[v] }

// Acquire is one Lock/RLock/TryLock call on a classified mutex.
type Acquire struct {
	Class LockClass
	Call  *ast.CallExpr
	// Read marks RLock/TryRLock acquisitions.
	Read bool
	// Root is the object at the base of the selector (the receiver or
	// variable the mutex was reached through), nil when unresolvable.
	Root types.Object
}

// LockFacts holds per-function lock acquisition facts over one graph.
type LockFacts struct {
	graph *Graph
	// direct lists each function's own acquisitions in body order.
	direct map[*FuncInfo][]Acquire
	// summary maps each function to every class it may acquire
	// synchronously: itself or transitively through direct module
	// calls. Ref edges (value references, go launches) and function
	// literals are excluded — their acquisitions happen on another
	// schedule and cannot create hold-and-wait with the caller.
	summary map[*FuncInfo]map[LockClass]bool
}

// NewLockFacts discovers mutex classes and computes acquisition
// summaries for every function in the graph.
func NewLockFacts(g *Graph, pkgs []*Package) *LockFacts {
	// Record field → owner names for rendering.
	for _, p := range pkgs {
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if IsMutex(f.Type()) {
					lockOwnerNames[f] = tn.Name()
				}
			}
		}
	}

	lf := &LockFacts{
		graph:   g,
		direct:  make(map[*FuncInfo][]Acquire),
		summary: make(map[*FuncInfo]map[LockClass]bool),
	}
	for _, fi := range g.Funcs() {
		lf.direct[fi] = directAcquires(fi)
	}
	lf.fixpoint()
	return lf
}

// directAcquires lists fn's own synchronous classified acquisitions
// in source order. Function literals are excluded: a closure acquires
// when it runs (a gauge scrape, a stored handler), not when its
// creator does.
func directAcquires(fi *FuncInfo) []Acquire {
	info := fi.Pkg.Info
	var out []Acquire
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, root, acquired, ok := mutexOp(info, call)
		if !ok || !acquired {
			return true
		}
		cls := classOf(info, call)
		if cls.Obj == nil {
			return true
		}
		out = append(out, Acquire{Class: cls, Call: call, Read: name == "RLock" || name == "TryRLock", Root: root})
		return true
	})
	return out
}

// Direct returns fn's own acquisitions in body order.
func (lf *LockFacts) Direct(fi *FuncInfo) []Acquire { return lf.direct[fi] }

// May returns every lock class fn may acquire, directly or through
// module calls, in deterministic (name, then position) order.
func (lf *LockFacts) May(fi *FuncInfo) []LockClass {
	m := lf.summary[fi]
	out := make([]LockClass, 0, len(m))
	for c := range m {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.String() != b.String() {
			return a.String() < b.String()
		}
		return a.Obj.Pos() < b.Obj.Pos()
	})
	return out
}

// fixpoint propagates acquisition summaries along call edges until
// stable (the call graph has cycles).
func (lf *LockFacts) fixpoint() {
	for _, fi := range lf.graph.Funcs() {
		m := make(map[LockClass]bool)
		for _, a := range lf.direct[fi] {
			m[a.Class] = true
		}
		lf.summary[fi] = m
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range lf.graph.Funcs() {
			m := lf.summary[fi]
			for _, e := range fi.Edges {
				if e.Ref {
					continue // runs on its own schedule
				}
				for c := range lf.summary[e.Callee] {
					if !m[c] {
						m[c] = true
						changed = true
					}
				}
			}
		}
	}
}

// HeldEvent is one observation made while at least one lock is held:
// either a further direct acquisition (Acq non-nil) or a call to a
// module function (Callee non-nil) that may acquire transitively.
type HeldEvent struct {
	// Held lists the acquisitions in force, outermost first.
	Held []Acquire
	// Site is the acquiring call or the call expression.
	Site ast.Node
	// Acq is set for direct acquisitions.
	Acq *Acquire
	// Callee is set for resolved module calls.
	Callee *FuncInfo
}

// WalkHeld walks fn's body in source order tracking which classified
// mutexes are held — Lock/RLock/TryLock acquires; a textual
// Unlock/RUnlock on the same root releases; `defer mu.Unlock()` holds
// to function end — and invokes visit for every further acquisition
// and every resolved synchronous module call made under a lock.
// Function literals get their own walk with a fresh held-state (they
// run on their own schedule, not under their creator's locks), and
// go-launched calls are skipped entirely: a goroutine blocking on a
// held mutex is contention, not hold-and-wait.
func (lf *LockFacts) WalkHeld(fi *FuncInfo, visit func(ev HeldEvent)) {
	var bodies []*ast.BlockStmt
	bodies = append(bodies, fi.Decl.Body)
	for len(bodies) > 0 {
		body := bodies[0]
		bodies = bodies[1:]
		bodies = append(bodies, lf.walkBody(fi, body, visit)...)
	}
}

// walkBody tracks held locks through one body (skipping nested
// literals, which it returns for their own walks).
func (lf *LockFacts) walkBody(fi *FuncInfo, body *ast.BlockStmt, visit func(ev HeldEvent)) []*ast.BlockStmt {
	info := fi.Pkg.Info
	var held []Acquire
	var nested []*ast.BlockStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if n == body {
			return true
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			nested = append(nested, x.Body)
			return false
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				nested = append(nested, lit.Body)
			}
			return false
		case *ast.DeferStmt:
			// defer mu.Unlock() releases at return; the lock stays held for
			// the rest of the walk. Skip so it is not mistaken for a
			// textual release.
			if cls, _, _, ok := mutexOp(info, x.Call); ok && !lockAcquireNames[cls] {
				return false
			}
		case *ast.CallExpr:
			name, root, acquired, ok := mutexOp(info, x)
			if !ok {
				// A module call made under a lock.
				if len(held) > 0 {
					if callee := CalleeFunc(info, x); callee != nil {
						if ti := lf.graph.Lookup(callee); ti != nil {
							visit(HeldEvent{Held: append([]Acquire(nil), held...), Site: x, Callee: ti})
						}
					}
				}
				return true
			}
			if acquired {
				acq := Acquire{Class: classOf(info, x), Call: x, Read: name == "RLock" || name == "TryRLock", Root: root}
				if acq.Class.Obj == nil {
					return true
				}
				if len(held) > 0 {
					a := acq
					visit(HeldEvent{Held: append([]Acquire(nil), held...), Site: x, Acq: &a})
				}
				held = append(held, acq)
				return true
			}
			// Textual release: drop the innermost held entry on the same
			// root (or same class when the root is unresolvable).
			for i := len(held) - 1; i >= 0; i-- {
				sameRoot := held[i].Root != nil && held[i].Root == root
				sameClass := held[i].Class == classOf(info, x)
				if sameRoot || (root == nil && sameClass) {
					held = append(held[:i], held[i+1:]...)
					break
				}
			}
		}
		return true
	})
	return nested
}

// lockAcquireNames are the sync methods that acquire.
var lockAcquireNames = map[string]bool{"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true}

// lockReleaseNames are the sync methods that release.
var lockReleaseNames = map[string]bool{"Unlock": true, "RUnlock": true}

// mutexOp classifies call as a mutex operation: its method name, the
// root object the mutex was reached through, and whether it acquires.
func mutexOp(info *types.Info, call *ast.CallExpr) (name string, root types.Object, acquired bool, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", nil, false, false
	}
	name = sel.Sel.Name
	if !lockAcquireNames[name] && !lockReleaseNames[name] {
		return "", nil, false, false
	}
	if tv, okT := info.Types[sel.X]; !okT || !IsMutex(tv.Type) {
		return "", nil, false, false
	}
	if id := RootIdent(sel.X); id != nil {
		root = ObjectOf(info, id)
	}
	return name, root, lockAcquireNames[name], true
}

// classOf resolves the mutex class of a Lock/Unlock call: the declared
// field or variable at the end of the selector chain.
func classOf(info *types.Info, call *ast.CallExpr) LockClass {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return LockClass{}
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		// s.mu.Lock(): the field Var of .mu
		if s, ok := info.Selections[x]; ok {
			if v, ok := s.Obj().(*types.Var); ok {
				return LockClass{Obj: v}
			}
		}
		if v, ok := ObjectOf(info, x.Sel).(*types.Var); ok {
			return LockClass{Obj: v}
		}
	case *ast.Ident:
		// mu.Lock(): package-level or local mutex variable. Embedded
		// mutexes (s.Lock()) also land here with x naming the receiver —
		// resolve to whatever Var the identifier is.
		if v, ok := ObjectOf(info, x).(*types.Var); ok {
			return LockClass{Obj: v}
		}
	case *ast.IndexExpr:
		// shards[i].mu handled by the SelectorExpr arm above (sel.X is the
		// selector); a bare indexed mutex mus[i].Lock() resolves to the
		// slice/array variable.
		if id := RootIdent(x); id != nil {
			if v, ok := ObjectOf(info, id).(*types.Var); ok {
				return LockClass{Obj: v}
			}
		}
	}
	return LockClass{}
}

// DescribeAcquire renders an acquisition for findings.
func DescribeAcquire(a Acquire) string {
	op := "Lock"
	if a.Read {
		op = "RLock"
	}
	return fmt.Sprintf("%s.%s()", a.Class, op)
}
