// Fixture: a server whose GET routes are follower-served. Reads are
// fine; a direct journal append, a transitive tree mutation, and a
// conversion-wrapped handler that appends are findings. POST routes
// are primary-only and may write.
package server

import (
	"journal"
	"tree"
)

type mux struct{}

func (m *mux) HandleFunc(pattern string, h func()) {}

func (m *mux) Handle(pattern string, h handler) {}

type handler func()

type Server struct {
	jw *journal.Writer
	t  *tree.Tree
}

func (s *Server) Routes() {
	m := &mux{}
	m.HandleFunc("GET /v1/size", s.handleSize)
	m.HandleFunc("GET /v1/touch", s.handleTouch)          // want `follower-served route "GET /v1/touch" handler server.Server.handleTouch can reach journal.Writer.Append \(journal append\)`
	m.HandleFunc("GET /v1/bump", s.handleBump)            // want `follower-served route "GET /v1/bump" handler server.Server.handleBump can reach tree.Tree.SetContribution \(tree mutation\): via server.Server.handleBump → server.Server.bump → tree.Tree.SetContribution`
	m.Handle("GET /v1/wrapped", handler(s.handleWrapped)) // want `follower-served route "GET /v1/wrapped" handler server.Server.handleWrapped can reach journal.Writer.Append \(journal append\)`
	m.HandleFunc("POST /v1/join", s.handleJoin)
}

func (s *Server) handleSize() {
	_ = s.t.Size()
}

func (s *Server) handleTouch() {
	s.jw.Append(journal.Event{Name: "touch"})
}

func (s *Server) handleBump() {
	s.bump("k")
}

func (s *Server) bump(key string) {
	s.t.SetContribution(key, s.t.Contribution(key)+1)
}

func (s *Server) handleWrapped() {
	s.jw.Append(journal.Event{Name: "wrapped"})
}

func (s *Server) handleJoin() {
	if _, err := s.jw.Append(journal.Event{Name: "join"}); err != nil {
		return
	}
	_ = s.t.Add("k")
}
