// Package tree is a stub with the real tree package's name, type, and
// mutator shapes.
package tree

type Tree struct {
	contrib map[string]float64
}

func New() *Tree {
	return &Tree{contrib: make(map[string]float64)}
}

func (t *Tree) Add(key string) error {
	t.contrib[key] = 0
	return nil
}

func (t *Tree) SetContribution(key string, v float64) {
	t.contrib[key] = v
}

func (t *Tree) Contribution(key string) float64 {
	return t.contrib[key]
}

func (t *Tree) Size() int { return len(t.contrib) }
