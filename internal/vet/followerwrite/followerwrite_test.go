package followerwrite_test

import (
	"testing"

	"incentivetree/internal/vet/followerwrite"
	"incentivetree/internal/vet/vettest"
)

func TestFollowerWrite(t *testing.T) {
	vettest.Run(t, "testdata", followerwrite.New)
}
