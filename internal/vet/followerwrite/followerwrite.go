// Package followerwrite enforces the replica read/write split:
// handlers registered on GET routes in the server and replica
// packages are served by followers, and nothing reachable from them —
// through any chain of calls or stored function values — may append
// to the journal, apply ledger entries, or mutate the tree. Writes
// must reach the primary via the follower's 307 redirect, never
// execute locally against a replica's state.
//
// Roots are found syntactically (HandleFunc/Handle registrations
// whose pattern is a "GET "-prefixed constant), reachability runs
// over the shared module call graph, and each finding cites a
// concrete call path so the leak is auditable. Matching is by package
// and type name, so test stubs behave like the real packages.
package followerwrite

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"incentivetree/internal/vet"
)

// servingPackages are the packages whose GET registrations are served
// by followers.
var servingPackages = map[string]bool{"server": true, "replica": true}

// treeMutators are the tree.Tree methods that mutate guarded state.
var treeMutators = map[string]bool{
	"Add": true, "AddUnchecked": true, "MustAdd": true,
	"SetContribution": true, "AddContribution": true,
	"SetLabel": true, "ResetTo": true,
}

// root is one follower-served route registration.
type root struct {
	fn      *types.Func
	pattern string
	pos     token.Position
}

// New returns a fresh analyzer instance.
func New() *vet.Analyzer {
	var (
		graph *vet.Graph
		roots []root
	)
	return &vet.Analyzer{
		Name: "followerwrite",
		Doc:  "handlers reachable from follower-served GET routes never append to the journal, apply ledger entries, or mutate the tree",
		Run: func(pass *vet.Pass) {
			if graph == nil {
				graph = pass.Graph
			}
			if !servingPackages[pass.Pkg.Name()] {
				return
			}
			for _, file := range pass.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if fn, pattern, ok := getRegistration(pass.Info, call); ok {
						roots = append(roots, root{fn: fn, pattern: pattern, pos: pass.Fset.Position(call.Pos())})
					}
					return true
				})
			}
		},
		Finish: func(report func(pos token.Position, format string, args ...any)) {
			if graph == nil {
				return
			}
			analyze(graph, roots, report)
		},
	}
}

// getRegistration matches mux.HandleFunc("GET /x", s.handler) (and
// Handle with a handler-wrapping conversion), returning the resolved
// handler function and the route pattern.
func getRegistration(info *types.Info, call *ast.CallExpr) (*types.Func, string, bool) {
	name := vet.CalleeName(call)
	if (name != "HandleFunc" && name != "Handle") || len(call.Args) < 2 {
		return nil, "", false
	}
	pattern, ok := vet.ConstString(info, call.Args[0])
	if !ok || !strings.HasPrefix(pattern, "GET ") {
		return nil, "", false
	}
	fn := handlerFunc(info, call.Args[1])
	if fn == nil {
		return nil, "", false
	}
	return fn, pattern, true
}

// handlerFunc resolves the function a handler expression denotes,
// unwrapping single-argument conversions (http.HandlerFunc(h)).
func handlerFunc(info *types.Info, e ast.Expr) *types.Func {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := vet.ObjectOf(info, x.Sel).(*types.Func)
		return fn
	case *ast.Ident:
		fn, _ := vet.ObjectOf(info, x).(*types.Func)
		return fn
	case *ast.CallExpr:
		if len(x.Args) == 1 {
			return handlerFunc(info, x.Args[0])
		}
	}
	return nil
}

func analyze(graph *vet.Graph, roots []root, report func(pos token.Position, format string, args ...any)) {
	// The banned set, in graph order for deterministic reporting.
	var banned []*vet.FuncInfo
	bannedDesc := make(map[*vet.FuncInfo]string)
	for _, fi := range graph.Funcs() {
		if d := bannedTarget(fi.Func); d != "" {
			banned = append(banned, fi)
			bannedDesc[fi] = d
		}
	}
	if len(banned) == 0 {
		return
	}

	seen := make(map[*types.Func]bool) // one report set per handler
	for _, r := range roots {
		if seen[r.fn] {
			continue
		}
		seen[r.fn] = true
		fi := graph.Lookup(r.fn)
		if fi == nil {
			continue
		}
		reachable := graph.Reachable([]*vet.FuncInfo{fi}, nil)
		for _, b := range banned {
			if !reachable[b] {
				continue
			}
			path := graph.Path(fi, b, nil)
			report(r.pos, "follower-served route %q handler %s can reach %s (%s): %s; writes must 307 to the primary",
				r.pattern, funcName(fi), funcName(b), bannedDesc[b], renderPath(fi, path))
		}
	}
}

// bannedTarget classifies fn as a write a follower must never perform.
func bannedTarget(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	recv := vet.NamedReceiver(fn)
	if recv == nil {
		return ""
	}
	pkg, typ, name := fn.Pkg().Name(), recv.Obj().Name(), fn.Name()
	switch {
	case pkg == "journal" && typ == "Writer" && strings.HasPrefix(name, "Append"):
		return "journal append"
	case pkg == "journal" && typ == "Ledger" && strings.HasPrefix(name, "Apply"):
		return "ledger mutation"
	case (pkg == "settle") && strings.HasPrefix(name, "Apply"):
		return "settlement mutation"
	case pkg == "tree" && typ == "Tree" && treeMutators[name]:
		return "tree mutation"
	}
	return ""
}

// funcName renders pkg.Type.Method or pkg.Func.
func funcName(fi *vet.FuncInfo) string {
	fn := fi.Func
	name := fn.Pkg().Name() + "."
	if recv := vet.NamedReceiver(fn); recv != nil {
		name += recv.Obj().Name() + "."
	}
	return name + fn.Name()
}

// renderPath joins a call chain as "via a → b → c".
func renderPath(from *vet.FuncInfo, path []*vet.Edge) string {
	names := []string{funcName(from)}
	for _, e := range path {
		names = append(names, funcName(e.Callee))
	}
	return "via " + strings.Join(names, " → ")
}
