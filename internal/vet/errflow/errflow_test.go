package errflow_test

import (
	"testing"

	"incentivetree/internal/vet/errflow"
	"incentivetree/internal/vet/vettest"
)

func TestErrFlow(t *testing.T) {
	vettest.Run(t, "testdata", errflow.New)
}
