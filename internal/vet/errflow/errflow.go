// Package errflow enforces error propagation on the calls whose
// failures threaten durability: journal appends (Writer.Append,
// AppendBatch), syncs (Writer.Sync, os.File.Sync — the fsync path),
// and ledger applies (Ledger.ApplySettle / ApplyClaim). The error each
// returns must reach a return statement, be stored, or be read on
// every path out of the enclosing function; assignment to the blank
// identifier, discarding the results outright, overwriting the
// variable before it is read, and branch-local loss (a path to return
// that never looks at the value) are findings.
//
// The check is CFG-based (vet.CheckErrFlow): each function body — and
// each function literal, on its own graph — is walked forward from
// the producing call, so shadowed redeclarations and loop back-edges
// are handled by object identity, not by name.
package errflow

import (
	"go/ast"
	"go/types"
	"strings"

	"incentivetree/internal/vet"
)

// New returns a fresh analyzer instance.
func New() *vet.Analyzer {
	return &vet.Analyzer{
		Name: "errflow",
		Doc:  "errors from journal appends, syncs, and ledger applies must reach a return, a store, or a read on every path",
		Run:  run,
	}
}

func run(pass *vet.Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			checkBody(pass, fd.Body)
			return false
		})
	}
}

// checkBody analyzes the calls lexically inside body (excluding nested
// function literals, which get their own CFG and recursive check).
func checkBody(pass *vet.Pass, body *ast.BlockStmt) {
	var cfg *vet.CFG // built lazily: most bodies have no tracked calls
	var nested []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			nested = append(nested, lit)
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, desc := trackedCall(pass.Info, call)
		if fn == nil {
			return true
		}
		errIndex, ok := errorResult(fn)
		if !ok {
			return true
		}
		if cfg == nil {
			cfg = vet.NewCFG(body)
		}
		flow := vet.CheckErrFlow(pass.Info, cfg, call, errIndex)
		switch flow.Verdict {
		case vet.ErrBlank:
			pass.Report(call.Pos(), "error from %s assigned to _: durability failures must propagate to a return or rollback", desc)
		case vet.ErrDiscarded:
			pass.Report(call.Pos(), "return values of %s discarded: its error must propagate to a return or rollback", desc)
		case vet.ErrOverwritten:
			pass.Report(flow.Site.Pos(), "error from %s overwritten before it is read", desc)
		case vet.ErrLost:
			pass.Report(call.Pos(), "error from %s is lost on a path out of the function: every branch must read it", desc)
		}
		return true
	})
	for _, lit := range nested {
		checkBody(pass, lit.Body)
	}
}

// trackedCall reports whether call is one of the durability-critical
// producers, returning the callee and a human description. Matching
// is by package, receiver, and method name (not import path), so test
// stubs behave like the real packages.
func trackedCall(info *types.Info, call *ast.CallExpr) (*types.Func, string) {
	fn := vet.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return nil, ""
	}
	recv := vet.NamedReceiver(fn)
	if recv == nil {
		return nil, ""
	}
	pkg, typ, name := fn.Pkg().Name(), recv.Obj().Name(), fn.Name()
	switch {
	case pkg == "journal" && typ == "Writer" && (strings.HasPrefix(name, "Append") || name == "Sync"):
		return fn, "journal." + name
	case pkg == "journal" && typ == "Ledger" && strings.HasPrefix(name, "Apply"):
		return fn, "journal.Ledger." + name
	case pkg == "settle" && strings.HasPrefix(name, "Apply"):
		return fn, "settle." + name
	case pkg == "os" && typ == "File" && name == "Sync":
		return fn, "File.Sync"
	}
	return nil, ""
}

// errorResult returns the index of fn's error result.
func errorResult(fn *types.Func) (int, bool) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return 0, false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if vet.IsErrorType(res.At(i).Type()) {
			return i, true
		}
	}
	return 0, false
}
