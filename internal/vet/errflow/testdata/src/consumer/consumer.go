// Fixture: every loss mode errflow reports, next to the shapes that
// legitimately consume the error.
package consumer

import (
	"fmt"

	"journal"
)

// Blank drops the append error on the floor.
func Blank(jw *journal.Writer, e journal.Event) journal.Event {
	ev, _ := jw.Append(e) // want `error from journal.Append assigned to _`
	return ev
}

// Discarded ignores the results entirely.
func Discarded(jw *journal.Writer, e journal.Event) {
	jw.Append(e) // want `return values of journal.Append discarded`
}

// Overwritten clobbers the sync error with the apply error before
// anyone reads it.
func Overwritten(jw *journal.Writer, l *journal.Ledger, e journal.Event) error {
	err := jw.Sync()
	err = l.ApplySettle(e) // want `error from journal.Sync overwritten before it is read`
	return err
}

// BranchLost reads the error only on the logging branch: the happy
// path returns without ever looking at it.
func BranchLost(jw *journal.Writer, e journal.Event, verbose bool) journal.Event {
	ev, err := jw.Append(e) // want `error from journal.Append is lost on a path out of the function`
	if verbose {
		fmt.Println(err)
	}
	return ev
}

// Shadowed loses the outer error: the inner := declares a new err and
// the outer one reaches the return unread.
func Shadowed(jw *journal.Writer, e journal.Event) error {
	_, err := jw.Append(e) // want `error from journal.Append is lost on a path out of the function`
	if e.Name != "" {
		err := jw.Sync()
		return err
	}
	_ = err
	return nil
}

// Returned propagates directly: no finding.
func Returned(jw *journal.Writer, e journal.Event) (journal.Event, error) {
	return jw.Append(e)
}

// Checked reads the error on every path: no finding.
func Checked(jw *journal.Writer, e journal.Event) (journal.Event, error) {
	ev, err := jw.Append(e)
	if err != nil {
		return journal.Event{}, fmt.Errorf("append: %w", err)
	}
	if err := jw.Sync(); err != nil {
		return journal.Event{}, err
	}
	return ev, nil
}

// Wrapped reads the error by rewrapping it in place: a read, then the
// rewrapped value is returned. No finding.
func Wrapped(l *journal.Ledger, e journal.Event) error {
	err := l.ApplyClaim(e)
	if err != nil {
		err = fmt.Errorf("claim: %w", err)
	}
	return err
}

// Stored keeps the error in a field for later inspection: no finding.
type sink struct {
	lastErr error
}

func (s *sink) Stored(jw *journal.Writer, e journal.Event) {
	_, s.lastErr = jw.Append(e)
}

// Looped reads the error before the back edge on every iteration: no
// finding.
func Looped(jw *journal.Writer, events []journal.Event) error {
	for _, e := range events {
		if _, err := jw.Append(e); err != nil {
			return err
		}
	}
	return jw.Sync()
}

// InClosure is tracked inside the literal's own CFG.
func InClosure(jw *journal.Writer, e journal.Event) func() {
	return func() {
		jw.Append(e) // want `return values of journal.Append discarded`
	}
}

// Waived shows the suppression path: the annotation absorbs what
// would otherwise be a finding.
func Waived(jw *journal.Writer, e journal.Event) journal.Event {
	//itreevet:ignore errflow fixture demonstrates a reviewed waiver
	ev, _ := jw.Append(e)
	return ev
}
