// Package journal is a stub with the same package name, type names,
// and method shapes as the real journal package — the analyzer
// matches on names, so fixtures exercise it without importing the
// module.
package journal

type Event struct {
	Name string
	Seq  uint64
}

type Writer struct {
	seq uint64
}

func (w *Writer) Append(e Event) (Event, error) {
	w.seq++
	e.Seq = w.seq
	return e, nil
}

func (w *Writer) AppendBatch(events []Event) ([]Event, error) {
	for i := range events {
		w.seq++
		events[i].Seq = w.seq
	}
	return events, nil
}

func (w *Writer) Sync() error { return nil }

type Ledger struct {
	applied uint64
}

func (l *Ledger) ApplySettle(e Event) error {
	l.applied++
	return nil
}

func (l *Ledger) ApplyClaim(e Event) error {
	l.applied++
	return nil
}
