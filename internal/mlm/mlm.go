// Package mlm implements the generalized multi-level-marketing view of
// the Incentive Tree model (Sect. 2 of the paper): participants are
// buyers, a participant's contribution is the total cost of goods it
// purchased, and the seller returns a fraction of his income as rewards.
// A buyer's effective payment is Pay(u) = C(u) - R(u) and his profit is
// P(u) = R(u) - C(u).
//
// The package maintains a purchase ledger on top of a referral tree and
// exposes the seller's books (income, reward liability, net revenue). The
// unit-price special case of Emek et al. (every buyer purchases exactly
// one item of unit price) is provided as a constructor, connecting this
// model back to the one the paper generalizes.
package mlm

import (
	"errors"
	"fmt"
	"sort"

	"incentivetree/internal/core"
	"incentivetree/internal/tree"
)

// ErrUnknownBuyer reports an operation on a buyer id that was never
// registered.
var ErrUnknownBuyer = errors.New("mlm: unknown buyer")

// Purchase is one ledger entry.
type Purchase struct {
	Buyer  tree.NodeID
	Amount float64
}

// Market is a multi-level-marketing deployment: a referral tree fed by
// purchases, evaluated under a reward mechanism.
type Market struct {
	mechanism core.Mechanism
	tree      *tree.Tree
	ledger    []Purchase
}

// NewMarket creates an empty market under the given mechanism.
func NewMarket(m core.Mechanism) *Market {
	return &Market{mechanism: m, tree: tree.New()}
}

// Join registers a new buyer solicited by sponsor (tree.Root for
// organic/unsolicited joins). The buyer starts with zero purchases.
func (mk *Market) Join(sponsor tree.NodeID, name string) (tree.NodeID, error) {
	id, err := mk.tree.Add(sponsor, 0)
	if err != nil {
		return tree.None, fmt.Errorf("mlm: join: %w", err)
	}
	if name != "" {
		if err := mk.tree.SetLabel(id, name); err != nil {
			return tree.None, err
		}
	}
	return id, nil
}

// Buy records a purchase of the given amount by an existing buyer,
// increasing the buyer's contribution.
func (mk *Market) Buy(buyer tree.NodeID, amount float64) error {
	if !mk.tree.Exists(buyer) || buyer == tree.Root {
		return fmt.Errorf("%w: %d", ErrUnknownBuyer, buyer)
	}
	if amount <= 0 {
		return fmt.Errorf("mlm: purchase amount %v must be positive", amount)
	}
	if err := mk.tree.AddContribution(buyer, amount); err != nil {
		return fmt.Errorf("mlm: buy: %w", err)
	}
	mk.ledger = append(mk.ledger, Purchase{Buyer: buyer, Amount: amount})
	return nil
}

// Tree returns the underlying referral tree (read-only by convention).
func (mk *Market) Tree() *tree.Tree { return mk.tree }

// Ledger returns a copy of the purchase history.
func (mk *Market) Ledger() []Purchase { return append([]Purchase(nil), mk.ledger...) }

// Buyers returns the number of registered buyers.
func (mk *Market) Buyers() int { return mk.tree.NumParticipants() }

// Statement is a buyer's settled account.
type Statement struct {
	Buyer    tree.NodeID
	Name     string
	Spent    float64 // C(u): total purchases
	Reward   float64 // R(u)
	Payment  float64 // Pay(u) = C(u) - R(u)
	Profit   float64 // P(u) = R(u) - C(u)
	Sponsor  tree.NodeID
	Recruits int // direct solicitees
}

// Books is the seller-side settlement of the whole market.
type Books struct {
	Income     float64 // total purchases = C(T)
	Rewards    float64 // total reward liability = R(T)
	Net        float64 // Income - Rewards
	BudgetCap  float64 // Phi * C(T)
	Statements []Statement
}

// Settle evaluates the mechanism on the current tree and returns the
// complete books. The statements are ordered by buyer id.
func (mk *Market) Settle() (Books, error) {
	r, err := mk.mechanism.Rewards(mk.tree)
	if err != nil {
		return Books{}, fmt.Errorf("mlm: settle: %w", err)
	}
	if err := core.Audit(mk.mechanism, mk.tree, r); err != nil {
		return Books{}, err
	}
	b := Books{
		Income:    mk.tree.Total(),
		Rewards:   r.Total(),
		BudgetCap: mk.mechanism.Params().Phi * mk.tree.Total(),
	}
	b.Net = b.Income - b.Rewards
	for _, u := range mk.tree.Nodes() {
		b.Statements = append(b.Statements, Statement{
			Buyer:    u,
			Name:     mk.tree.Label(u),
			Spent:    mk.tree.Contribution(u),
			Reward:   r.Of(u),
			Payment:  core.Payment(mk.tree, r, u),
			Profit:   core.Profit(mk.tree, r, u),
			Sponsor:  mk.tree.Parent(u),
			Recruits: mk.tree.NumChildren(u),
		})
	}
	return b, nil
}

// TopEarners returns the n statements with the highest reward,
// ties broken by buyer id.
func (b Books) TopEarners(n int) []Statement {
	s := append([]Statement(nil), b.Statements...)
	sort.SliceStable(s, func(i, j int) bool { return s[i].Reward > s[j].Reward })
	if n > len(s) {
		n = len(s)
	}
	return s[:n]
}

// UnitPriceMarket builds the Emek et al. special case: a market whose
// buyers each purchase exactly one item of unit price at join time.
// The returned join function enforces the single-unit discipline.
type UnitPriceMarket struct {
	*Market
}

// NewUnitPriceMarket creates a unit-price market.
func NewUnitPriceMarket(m core.Mechanism) *UnitPriceMarket {
	return &UnitPriceMarket{Market: NewMarket(m)}
}

// JoinAndBuy registers a buyer and records its single unit purchase.
func (mk *UnitPriceMarket) JoinAndBuy(sponsor tree.NodeID, name string) (tree.NodeID, error) {
	id, err := mk.Join(sponsor, name)
	if err != nil {
		return tree.None, err
	}
	if err := mk.Buy(id, 1); err != nil {
		return tree.None, err
	}
	return id, nil
}

// Buy rejects further purchases: in the unit-price model each buyer
// purchases exactly one item.
func (mk *UnitPriceMarket) Buy(buyer tree.NodeID, amount float64) error {
	if mk.Tree().Contribution(buyer) > 0 {
		return fmt.Errorf("mlm: unit-price model allows a single unit purchase per buyer")
	}
	return mk.Market.Buy(buyer, amount)
}
