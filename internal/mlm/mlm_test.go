package mlm

import (
	"errors"
	"math"
	"testing"

	"incentivetree/internal/core"
	"incentivetree/internal/geometric"
	"incentivetree/internal/tree"
)

func newMarket(t *testing.T) *Market {
	t.Helper()
	m, err := geometric.Default(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return NewMarket(m)
}

func TestJoinAndBuy(t *testing.T) {
	mk := newMarket(t)
	alice, err := mk.Join(tree.Root, "alice")
	if err != nil {
		t.Fatal(err)
	}
	bob, err := mk.Join(alice, "bob")
	if err != nil {
		t.Fatal(err)
	}
	if err := mk.Buy(alice, 10); err != nil {
		t.Fatal(err)
	}
	if err := mk.Buy(bob, 4); err != nil {
		t.Fatal(err)
	}
	if err := mk.Buy(bob, 2); err != nil {
		t.Fatal(err)
	}
	if got := mk.Buyers(); got != 2 {
		t.Fatalf("Buyers = %d", got)
	}
	if got := mk.Tree().Contribution(bob); got != 6 {
		t.Fatalf("bob contribution = %v, want 6", got)
	}
	if got := len(mk.Ledger()); got != 3 {
		t.Fatalf("ledger entries = %d, want 3", got)
	}
}

func TestBuyErrors(t *testing.T) {
	mk := newMarket(t)
	if err := mk.Buy(tree.NodeID(5), 1); !errors.Is(err, ErrUnknownBuyer) {
		t.Fatalf("unknown buyer err = %v", err)
	}
	if err := mk.Buy(tree.Root, 1); !errors.Is(err, ErrUnknownBuyer) {
		t.Fatalf("root buyer err = %v", err)
	}
	alice, _ := mk.Join(tree.Root, "alice")
	if err := mk.Buy(alice, 0); err == nil {
		t.Fatal("zero purchase should be rejected")
	}
	if err := mk.Buy(alice, -2); err == nil {
		t.Fatal("negative purchase should be rejected")
	}
}

func TestJoinUnderMissingSponsor(t *testing.T) {
	mk := newMarket(t)
	if _, err := mk.Join(tree.NodeID(9), "x"); err == nil {
		t.Fatal("join under missing sponsor should fail")
	}
}

func TestSettleBooks(t *testing.T) {
	mk := newMarket(t)
	alice, _ := mk.Join(tree.Root, "alice")
	bob, _ := mk.Join(alice, "bob")
	if err := mk.Buy(alice, 10); err != nil {
		t.Fatal(err)
	}
	if err := mk.Buy(bob, 6); err != nil {
		t.Fatal(err)
	}
	b, err := mk.Settle()
	if err != nil {
		t.Fatal(err)
	}
	if b.Income != 16 {
		t.Fatalf("Income = %v, want 16", b.Income)
	}
	if b.BudgetCap != 8 { // Phi = 0.5
		t.Fatalf("BudgetCap = %v, want 8", b.BudgetCap)
	}
	if b.Rewards > b.BudgetCap {
		t.Fatalf("Rewards %v exceed cap %v", b.Rewards, b.BudgetCap)
	}
	if math.Abs(b.Net-(b.Income-b.Rewards)) > 1e-12 {
		t.Fatalf("Net = %v", b.Net)
	}
	if len(b.Statements) != 2 {
		t.Fatalf("statements = %d", len(b.Statements))
	}
	st := b.Statements[0]
	if st.Name != "alice" || st.Recruits != 1 || st.Sponsor != tree.Root {
		t.Fatalf("alice statement = %+v", st)
	}
	if math.Abs(st.Payment-(st.Spent-st.Reward)) > 1e-12 {
		t.Fatalf("Payment = %v", st.Payment)
	}
	if math.Abs(st.Profit+st.Payment) > 1e-12 {
		t.Fatalf("Profit %v should be -Payment %v", st.Profit, st.Payment)
	}
}

func TestSettleEmptyMarket(t *testing.T) {
	mk := newMarket(t)
	b, err := mk.Settle()
	if err != nil {
		t.Fatal(err)
	}
	if b.Income != 0 || b.Rewards != 0 || len(b.Statements) != 0 {
		t.Fatalf("empty books = %+v", b)
	}
}

func TestTopEarners(t *testing.T) {
	mk := newMarket(t)
	alice, _ := mk.Join(tree.Root, "alice")
	bob, _ := mk.Join(alice, "bob")
	carol, _ := mk.Join(bob, "carol")
	for id, amt := range map[tree.NodeID]float64{alice: 1, bob: 5, carol: 3} {
		if err := mk.Buy(id, amt); err != nil {
			t.Fatal(err)
		}
	}
	b, err := mk.Settle()
	if err != nil {
		t.Fatal(err)
	}
	top := b.TopEarners(2)
	if len(top) != 2 {
		t.Fatalf("top = %d entries", len(top))
	}
	if top[0].Reward < top[1].Reward {
		t.Fatal("top earners not sorted")
	}
	if got := b.TopEarners(100); len(got) != 3 {
		t.Fatalf("TopEarners(100) = %d entries", len(got))
	}
}

func TestUnitPriceMarket(t *testing.T) {
	m, err := geometric.Default(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	mk := NewUnitPriceMarket(m)
	alice, err := mk.JoinAndBuy(tree.Root, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if got := mk.Tree().Contribution(alice); got != 1 {
		t.Fatalf("unit buyer contribution = %v, want 1", got)
	}
	if err := mk.Buy(alice, 1); err == nil {
		t.Fatal("second purchase should be rejected in the unit-price model")
	}
	bob, err := mk.JoinAndBuy(alice, "bob")
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk.Settle()
	if err != nil {
		t.Fatal(err)
	}
	if b.Income != 2 {
		t.Fatalf("Income = %v, want 2", b.Income)
	}
	_ = bob
}

func TestLedgerIsACopy(t *testing.T) {
	mk := newMarket(t)
	alice, _ := mk.Join(tree.Root, "alice")
	if err := mk.Buy(alice, 2); err != nil {
		t.Fatal(err)
	}
	l := mk.Ledger()
	l[0].Amount = 999
	if mk.Ledger()[0].Amount != 2 {
		t.Fatal("ledger mutated through copy")
	}
}
