package geometric

import (
	"errors"
	"math"
	"testing"

	"incentivetree/internal/core"
	"incentivetree/internal/numeric"
	"incentivetree/internal/tree"
	"incentivetree/internal/treegen"
)

func mustNew(t *testing.T, p core.Params, a, b float64) *Mechanism {
	t.Helper()
	m, err := New(p, a, b)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	p := core.Params{Phi: 0.5, FairShare: 0.05}
	tests := []struct {
		name    string
		a, b    float64
		wantErr bool
	}{
		{"valid", 0.5, 0.2, false},
		{"valid at budget bound", 0.5, 0.25, false},
		{"a zero", 0, 0.2, true},
		{"a one", 1, 0.2, true},
		{"a negative", -0.3, 0.2, true},
		{"b zero", 0.5, 0, true},
		{"b below fairness", 0.5, 0.01, true},
		{"b above budget bound", 0.5, 0.3, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(p, tc.a, tc.b)
			if (err != nil) != tc.wantErr {
				t.Fatalf("New(a=%v, b=%v) err = %v, wantErr %v", tc.a, tc.b, err, tc.wantErr)
			}
			if err != nil && !errors.Is(err, core.ErrBadParams) {
				t.Fatalf("error should wrap ErrBadParams, got %v", err)
			}
		})
	}
}

func TestNewRejectsBadParams(t *testing.T) {
	if _, err := New(core.Params{Phi: 2}, 0.5, 0.2); err == nil {
		t.Fatal("invalid shared params should be rejected")
	}
}

func TestDefault(t *testing.T) {
	m, err := Default(core.DefaultParams())
	if err != nil {
		t.Fatalf("Default: %v", err)
	}
	if got := m.B(); math.Abs(got-(1-m.A())*0.5) > 1e-12 {
		t.Fatalf("Default b = %v, want budget bound", got)
	}
}

// TestRewardsHandComputed checks Algorithm 1 on a hand-evaluated tree.
//
//	r -> u(4) -> { v(2) -> w(1), x(3) }
//
// With a = 1/2, b = 1/4:
//
//	R(w) = b*1                     = 0.25
//	R(v) = b*(2 + a*1)             = 0.625
//	R(x) = b*3                     = 0.75
//	R(u) = b*(4 + a*(2+a*1) + a*3) = b*(4 + 1.25 + 1.5) = 1.6875
func TestRewardsHandComputed(t *testing.T) {
	tr := tree.FromSpecs(tree.Spec{C: 4, Kids: []tree.Spec{
		{C: 2, Kids: []tree.Spec{{C: 1}}},
		{C: 3},
	}})
	m := mustNew(t, core.Params{Phi: 0.5, FairShare: 0}, 0.5, 0.25)
	r, err := m.Rewards(tr)
	if err != nil {
		t.Fatalf("Rewards: %v", err)
	}
	wants := map[tree.NodeID]float64{1: 1.6875, 2: 0.625, 3: 0.25, 4: 0.75}
	for id, want := range wants {
		if got := r.Of(id); math.Abs(got-want) > 1e-12 {
			t.Errorf("R(%d) = %v, want %v", id, got, want)
		}
	}
	if got := r.Of(tree.Root); got != 0 {
		t.Errorf("root reward = %v", got)
	}
}

// TestRewardsMatchesDefinition cross-checks the O(n) implementation
// against the paper's O(n^2) definition on random trees.
func TestRewardsMatchesDefinition(t *testing.T) {
	m := mustNew(t, core.DefaultParams(), 0.4, 0.2)
	for _, tr := range treegen.Corpus(99, 15, 40) {
		r, err := m.Rewards(tr)
		if err != nil {
			t.Fatalf("Rewards: %v", err)
		}
		for _, u := range tr.Nodes() {
			want := 0.0
			tr.WalkDepth(u, func(v tree.NodeID, d int) bool {
				want += math.Pow(m.A(), float64(d)) * m.B() * tr.Contribution(v)
				return true
			})
			if got := r.Of(u); !numeric.AlmostEqual(got, want, 1e-9) {
				t.Fatalf("R(%d) = %v, want %v (definition)", u, got, want)
			}
		}
	}
}

func TestBudgetConstraintOnCorpus(t *testing.T) {
	m, err := Default(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range treegen.Corpus(5, 25, 80) {
		r, err := m.Rewards(tr)
		if err != nil {
			t.Fatalf("tree %d: %v", i, err)
		}
		if err := core.Audit(m, tr, r); err != nil {
			t.Fatalf("tree %d: %v", i, err)
		}
	}
}

func TestFairnessFloorOnCorpus(t *testing.T) {
	p := core.Params{Phi: 0.5, FairShare: 0.1}
	m := mustNew(t, p, 0.5, 0.2)
	for _, tr := range treegen.Corpus(6, 10, 50) {
		r, err := m.Rewards(tr)
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range tr.Nodes() {
			if floor := p.FairShare * tr.Contribution(u); r.Of(u) < floor-1e-12 {
				t.Fatalf("R(%d) = %v below phi*C = %v", u, r.Of(u), floor)
			}
		}
	}
}

func TestRewardsRejectInvalidTree(t *testing.T) {
	m := mustNew(t, core.DefaultParams(), 0.5, 0.2)
	bad := tree.FromSpecs(tree.Spec{C: 1})
	// Corrupt through JSON round trip? Simpler: build an invalid tree via
	// unsafe reflection is overkill; instead check a valid tree passes and
	// rely on tree.Validate tests for corruption. Here we exercise the
	// error path with an empty (rootless) tree value.
	var empty tree.Tree
	if _, err := m.Rewards(&empty); err == nil {
		t.Fatal("Rewards should reject a rootless tree")
	}
	if _, err := m.Rewards(bad); err != nil {
		t.Fatalf("valid tree rejected: %v", err)
	}
}

func TestDeepChainRewardConverges(t *testing.T) {
	// On an infinite unit chain, the top node's reward tends to
	// b * 1/(1-a). A depth-60 chain is numerically there already.
	a, b := 0.5, 0.25
	m := mustNew(t, core.Params{Phi: 0.5}, a, b)
	tr := treegen.ChainTree(60, 1)
	r, err := m.Rewards(tr)
	if err != nil {
		t.Fatal(err)
	}
	want := b / (1 - a)
	if got := r.Of(1); math.Abs(got-want) > 1e-9 {
		t.Fatalf("chain-top reward = %v, want %v", got, want)
	}
}

func TestName(t *testing.T) {
	m := mustNew(t, core.DefaultParams(), 0.5, 0.2)
	if got := m.Name(); got != "Geometric(a=0.5,b=0.2)" {
		t.Fatalf("Name = %q", got)
	}
}
